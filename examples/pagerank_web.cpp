// pagerank_web — PageRank (Fig. 7/8) on a synthetic web-like graph: an
// R-MAT power-law graph standing in for a hyperlink crawl. Prints the top
// pages and checks the rank distribution invariant.
//
//   $ ./examples/pagerank_web [scale] [seed]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "algorithms/dsl_algorithms.hpp"
#include "algorithms/pagerank.hpp"
#include "generators/rmat.hpp"
#include "pygb/pygb.hpp"

using namespace pygb;  // NOLINT

int main(int argc, char** argv) {
  gen::RmatParams params;
  params.scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 10;
  params.edge_factor = 8;
  params.seed = argc > 2 ? std::atoll(argv[2]) : 7;

  std::cout << "== PageRank on an R-MAT web graph (2^" << params.scale
            << " pages) ==\n";
  auto el = gen::rmat(params);
  Matrix web = Matrix::from_edge_list(el);
  std::cout << el.num_vertices << " pages, " << el.edges.size()
            << " links\n";

  // DSL tier (Fig. 7).
  Vector rank = algo::dsl_page_rank(web, 0.85, 1e-7);

  double total = reduce(rank).to_double();
  std::cout << "rank mass: " << total << " (should be ~1)\n";

  // Top-5 pages by rank.
  std::vector<std::pair<double, gbtl::IndexType>> ranked;
  for (gbtl::IndexType v = 0; v < web.nrows(); ++v) {
    if (rank.has_element(v)) ranked.push_back({rank.get(v), v});
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::cout << "top pages:\n";
  for (std::size_t k = 0; k < 5 && k < ranked.size(); ++k) {
    std::cout << "  #" << k + 1 << "  page " << ranked[k].second
              << "  rank " << ranked[k].first << "\n";
  }

  // Cross-check with the native tier.
  gbtl::Vector<double> nat(web.nrows());
  algo::page_rank(web.typed<double>(), nat, 0.85, 1e-7);
  double max_diff = 0;
  for (gbtl::IndexType v = 0; v < web.nrows(); ++v) {
    max_diff = std::max(max_diff,
                        std::abs(nat.extractElement(v) - rank.get(v)));
  }
  std::cout << "max |DSL - native| = " << max_diff << "\n";
  return max_diff < 1e-9 ? 0 : 1;
}
