// quickstart — a tour of the PyGB-style DSL: containers, dtypes, operator
// contexts, masks, deferred expressions, and the dispatch layer.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <iostream>

#include "pygb/pygb.hpp"

using namespace pygb;  // NOLINT

int main() {
  std::cout << "== PyGB quickstart ==\n\n";

  // --- construction (Fig. 3) ------------------------------------------------
  // Dense data; zeros are implied and not stored.
  Matrix m({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  // Coordinate data with a dtype deduced from the value vector.
  std::vector<std::int64_t> vals{10, 20, 30};
  gbtl::IndexArray rows{0, 1, 2}, cols{2, 0, 1};
  Matrix coo(vals, rows, cols, 3, 3);
  Vector v({1, 0, 1});

  std::cout << "m: " << m.nrows() << "x" << m.ncols() << ", nvals "
            << m.nvals() << ", dtype " << display_name(m.dtype()) << "\n";
  std::cout << "coo dtype deduced: " << display_name(coo.dtype()) << "\n\n";

  // --- expressions ---------------------------------------------------------
  // `matmul` is the C++ spelling of Python's @. Operations are deferred:
  // work happens when the expression is assigned into a target.
  Matrix c(3, 3);
  c[None] = matmul(m, m);  // arithmetic semiring by default
  std::cout << "(m @ m)(0,0) = " << c.get(0, 0) << "\n";

  // Operator context blocks replace Python's `with` statements.
  {
    With ctx(MinPlusSemiring());
    c[None] = matmul(m, m);
  }
  std::cout << "(m min.+ m)(0,0) = " << c.get(0, 0) << "\n";

  // Element-wise ops: + is eWiseAdd (union), * is eWiseMult (intersection).
  Matrix s(3, 3);
  s[None] = m + coo.astype(DType::kFP64);
  std::cout << "(m + coo)(0,2) = " << s.get(0, 2) << "\n";

  // --- masks and replace -----------------------------------------------------
  Matrix mask(3, 3, DType::kBool);
  mask.set(0, 0, Scalar(true));
  mask.set(2, 2, Scalar(true));
  Matrix masked(3, 3);
  {
    With ctx(Replace);
    masked[mask] = m + m;  // only masked-in positions are written
  }
  std::cout << "masked result nvals = " << masked.nvals() << "\n";

  // Complemented masks: ~mask selects the OTHER positions.
  masked[~mask] = 0.5;
  std::cout << "after ~mask constant fill: nvals = " << masked.nvals()
            << "\n\n";

  // --- accumulate, apply, reduce ---------------------------------------------
  Vector w(3);
  w[Slice::all()] = 100.0;
  {
    With ctx(Accumulator("Min"), ArithmeticSemiring());
    w[None] += matmul(m, v);  // w = min(w, m @ v)
  }
  std::cout << "accumulated w(0) = " << w.get(0) << "\n";

  {
    With ctx(UnaryOp("Times", 0.1));
    w[None] = apply(w);
  }
  std::cout << "scaled w(0) = " << w.get(0) << "\n";
  std::cout << "reduce(m) = " << reduce(m).to_double() << "\n";
  std::cout << "reduce(m, MaxMonoid) = "
            << reduce(m, MaxMonoid()).to_double() << "\n\n";

  // --- the dispatch layer -----------------------------------------------------
  auto& reg = jit::Registry::instance();
  const auto st = reg.stats();
  std::cout << "dispatch stats: " << st.lookups << " lookups, "
            << st.static_hits << " static hits, " << st.compiles
            << " JIT compiles, " << st.interp_dispatches
            << " interpreted\n";
  std::cout << "statically instantiated kernels: "
            << reg.static_kernel_count() << "\n";
  std::cout << "mxm ahead-of-time combination space: "
            << jit::combination_space(jit::func::kMxM)
            << " (why the paper JIT-compiles)\n";
  return 0;
}
