// triangle_social — triangle counting (Fig. 5) on a synthetic social
// network, reporting the global clustering coefficient. Triangles are the
// canonical "friends of friends are friends" metric.
//
//   $ ./examples/triangle_social [num_people] [seed]
#include <cstdlib>
#include <iostream>

#include "algorithms/dsl_algorithms.hpp"
#include "algorithms/triangle_count.hpp"
#include "generators/erdos_renyi.hpp"
#include "generators/rmat.hpp"
#include "pygb/pygb.hpp"

using namespace pygb;  // NOLINT

int main(int argc, char** argv) {
  const gbtl::IndexType n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 512;
  const unsigned seed = argc > 2 ? std::atoi(argv[2]) : 5;

  std::cout << "== Triangle counting on a social graph (" << n
            << " people) ==\n";
  Matrix friendships =
      Matrix::from_edge_list(gen::paper_graph(n, seed, /*symmetric=*/true));
  std::cout << friendships.nvals() << " (directed) friendship edges\n";

  // Split off the strictly-lower triangle (Fig. 5's L).
  auto [lower, upper] = split_triangles(friendships);

  // DSL tier (Fig. 5a): B[L] = L @ L.T; triangles = reduce(B).
  const auto triangles = algo::dsl_triangle_count(lower);
  std::cout << "triangles: " << triangles << "\n";

  // Wedges (paths of length 2) via row degrees: sum over v of C(deg, 2).
  Vector degrees(n, DType::kFP64);
  degrees[None] = reduce_rows(friendships, PlusMonoid());
  double wedges = 0;
  for (gbtl::IndexType v = 0; v < n; ++v) {
    if (degrees.has_element(v)) {
      const double d = degrees.get(v);
      wedges += d * (d - 1) / 2.0;
    }
  }
  const double clustering =
      wedges > 0 ? 3.0 * static_cast<double>(triangles) / wedges : 0.0;
  std::cout << "wedges: " << wedges
            << ", global clustering coefficient: " << clustering << "\n";

  // Cross-check all three tiers.
  const auto t_whole = algo::whole_triangle_count(lower);
  const auto t_native =
      pygb::algo::triangle_count<std::int64_t>(lower.typed<double>());
  std::cout << "whole-dispatch: " << t_whole << ", native: " << t_native
            << (triangles == t_whole && t_whole == t_native
                    ? " — all tiers agree\n"
                    : " — MISMATCH!\n");
  return triangles == t_native ? 0 : 1;
}
