// custom_ops — the §VIII/§V extensions in action: user-defined operators
// whose bodies are C++ snippets compiled by the JIT, and fused chains that
// compile a whole statement sequence into one module.
//
// Scenario: a reliability network. Edge values are independent success
// probabilities; the "best path reliability" semiring is (Max, Times), and
// a custom saturating combiner models capped link budgets.
//
//   $ ./examples/custom_ops
#include <iostream>

#include "pygb/jit/compiler.hpp"
#include "pygb/pygb.hpp"

using namespace pygb;  // NOLINT

int main() {
  if (!jit::compiler_available()) {
    std::cout << "no C++ compiler available — this example needs the JIT\n";
    return 0;
  }

  std::cout << "== user-defined operators (paper §VIII) ==\n";

  // A 4-node reliability network (edge value = link success probability).
  Matrix net({{0.0, 0.9, 0.5, 0.0},
              {0.0, 0.0, 0.8, 0.3},
              {0.0, 0.0, 0.0, 0.95},
              {0.0, 0.0, 0.0, 0.0}});

  // Best two-hop reliability: (Max, Times) — expressible with built-ins.
  Matrix two_hop(4, 4);
  {
    With ctx(MaxTimesSemiring());
    two_hop[None] = matmul(net, net);
  }
  std::cout << "best 2-hop reliability 0 -> 3: " << two_hop.get(0, 3)
            << " (via 0->1->? or 0->2->3)\n";

  // A custom operator: decibel-style loss flooring. Body is a C++
  // expression over `a`, `b` and the output type `C`; the JIT compiles it
  // into the kernel module.
  UserBinaryOp floor_combine("floor_combine",
                             "a * b < 0.2 ? C(0) : C(a * b)");
  Matrix floored(4, 4);
  floored[None] = ewise_mult(two_hop, two_hop, floor_combine);
  std::cout << "squared reliability with a 0.2 floor at (0,3): "
            << floored.get(0, 3) << "\n";

  UserUnaryOp to_percent("to_percent", "a * 100.0");
  Matrix pct(4, 4);
  pct[None] = apply(floored, to_percent);
  std::cout << "0 -> 3 as percentage: " << pct.get(0, 3) << "%\n\n";

  std::cout << "== fused chains (paper §V planned feature) ==\n";

  // Fuse "one damped propagation step + norm check" into one module.
  FusedChain step("reliability_step");
  const int x = step.vector_param("x");
  const int a = step.matrix_param("net");
  const int y = step.vector_param("y");
  const int damp = step.scalar_param("damping");
  // Propagate along OUT-edges: y = net^T max.* x.
  step.mxv(y, a, x, MaxTimesSemiring(), std::nullopt,
           /*a_transposed=*/true);
  step.apply_bound(y, y, BinaryOp("Times"), damp);
  step.reduce(y, MaxMonoid());

  Vector probe({1.0, 0, 0, 0});
  Vector out(4);
  auto r1 = step.run({probe, net, out, 1.0});
  std::cout << "one fused step (mxv + damp + reduce): max reach prob = "
            << r1.scalar.to_double() << "\n";
  auto r2 = step.run({out, net, probe, 0.5});
  std::cout << "second fused step (damped 0.5), same compiled module: "
            << r2.scalar.to_double() << "\n";

  const auto st = jit::Registry::instance().stats();
  std::cout << "\n[dispatch: " << st.lookups << " lookups, " << st.compiles
            << " JIT compiles — custom ops and the chain each compiled "
               "once, then cached]\n";
  return 0;
}
