// sssp_roads — single-source shortest paths (Fig. 4) on a synthetic road
// network: a grid with random travel times, solved with the min-plus
// semiring and cross-checked between DSL and native tiers.
//
//   $ ./examples/sssp_roads [grid_side] [seed]
#include <cstdlib>
#include <iostream>
#include <random>

#include "algorithms/dsl_algorithms.hpp"
#include "algorithms/sssp.hpp"
#include "pygb/pygb.hpp"

using namespace pygb;  // NOLINT

namespace {

/// Build a side x side 4-neighbour grid with random edge weights — the
/// classic road-network stand-in.
gen::EdgeList make_road_grid(gbtl::IndexType side, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> travel_time(1.0, 10.0);
  gen::EdgeList el;
  el.num_vertices = side * side;
  auto id = [side](gbtl::IndexType r, gbtl::IndexType c) {
    return r * side + c;
  };
  for (gbtl::IndexType r = 0; r < side; ++r) {
    for (gbtl::IndexType c = 0; c < side; ++c) {
      if (c + 1 < side) {
        const double w = travel_time(rng);
        el.edges.push_back({id(r, c), id(r, c + 1), w});
        el.edges.push_back({id(r, c + 1), id(r, c), w});
      }
      if (r + 1 < side) {
        const double w = travel_time(rng);
        el.edges.push_back({id(r, c), id(r + 1, c), w});
        el.edges.push_back({id(r + 1, c), id(r, c), w});
      }
    }
  }
  return el;
}

}  // namespace

int main(int argc, char** argv) {
  const gbtl::IndexType side =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 24;
  const unsigned seed = argc > 2 ? std::atoi(argv[2]) : 11;

  std::cout << "== SSSP on a " << side << "x" << side << " road grid ==\n";
  auto el = make_road_grid(side, seed);
  Matrix roads = Matrix::from_edge_list(el);
  std::cout << roads.nrows() << " intersections, " << el.edges.size()
            << " road segments\n";

  // DSL tier (Fig. 4a): relax with MinPlusSemiring + Min accumulator.
  Vector path(roads.nrows(), DType::kFP64);
  path.set(0, 0.0);  // source: the top-left corner
  algo::dsl_sssp(roads, path);

  const auto corner = roads.nrows() - 1;
  std::cout << "travel time to opposite corner: " << path.get(corner)
            << "\n";
  std::cout << "reachable intersections: " << path.nvals() << " / "
            << roads.nrows() << "\n";

  // Native tier cross-check.
  gbtl::Vector<double> nat(roads.nrows());
  algo::sssp_from(roads.typed<double>(), 0, nat);
  bool agree = path.typed<double>() == nat;
  std::cout << (agree ? "DSL and native agree exactly\n"
                      : "MISMATCH between tiers!\n");

  // Sanity: Manhattan lower bound — at least (2*side - 2) minimum-weight
  // hops are needed to reach the far corner.
  const double lower_bound = static_cast<double>(2 * side - 2) * 1.0;
  std::cout << "Manhattan lower bound: " << lower_bound
            << (path.get(corner) >= lower_bound - 1e-9 ? " (satisfied)\n"
                                                       : " (VIOLATED)\n");
  return agree ? 0 : 1;
}
