// bfs_levels — the paper's Fig. 2 walkthrough: BFS levels on a balanced
// tree and on an Erdős–Rényi graph, in all three implementation tiers.
//
//   $ ./examples/bfs_levels [num_vertices] [seed]
#include <cstdlib>
#include <iostream>

#include "algorithms/bfs.hpp"
#include "algorithms/dsl_algorithms.hpp"
#include "generators/classic.hpp"
#include "generators/erdos_renyi.hpp"
#include "pygb/pygb.hpp"

using namespace pygb;  // NOLINT

int main(int argc, char** argv) {
  const gbtl::IndexType n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1024;
  const unsigned seed = argc > 2 ? std::atoi(argv[2]) : 42;

  // Small, fully checkable example: a balanced binary tree (Fig. 3b's
  // nx.balanced_tree analog).
  std::cout << "== BFS on balanced_tree(r=2, h=4) ==\n";
  Matrix tree = Matrix::from_edge_list(gen::balanced_tree(2, 4));
  Vector tree_frontier(tree.nrows(), DType::kBool);
  tree_frontier.set(0, Scalar(true));
  Vector tree_levels(tree.nrows(), DType::kInt64);
  const auto tree_depth = algo::dsl_bfs(tree, tree_frontier, tree_levels);
  std::cout << "depth " << tree_depth << " (expected 5)\n";
  std::cout << "level of vertex 0: " << tree_levels.get_element(0).to_int64()
            << ", of last leaf: "
            << tree_levels.get_element(tree.nrows() - 1).to_int64() << "\n\n";

  // The paper's evaluation workload: ER graph with |E| = n^1.5.
  std::cout << "== BFS on Erdos-Renyi n=" << n << " |E|=n^1.5 ==\n";
  Matrix graph =
      Matrix::from_edge_list(gen::paper_graph(n, seed, /*symmetric=*/true));
  Vector frontier(n, DType::kBool);
  frontier.set(0, Scalar(true));

  Vector dsl_levels(n, DType::kInt64);
  const auto d1 = algo::dsl_bfs(graph, frontier.dup(), dsl_levels);

  Vector whole_levels(n, DType::kInt64);
  const auto d2 = algo::whole_bfs(graph, frontier, whole_levels);

  gbtl::Vector<std::int64_t> native_levels(n);
  const auto d3 = algo::bfs_from(graph.typed<double>(), 0, native_levels);

  std::cout << "DSL (per-op dispatch):      depth " << d1 << ", reached "
            << dsl_levels.nvals() << "\n";
  std::cout << "whole-algorithm dispatch:   depth " << d2 << ", reached "
            << whole_levels.nvals() << "\n";
  std::cout << "native GBTL:                depth " << d3 << ", reached "
            << native_levels.nvals() << "\n";
  std::cout << (dsl_levels.typed<std::int64_t>() == native_levels &&
                        whole_levels.typed<std::int64_t>() == native_levels
                    ? "all three tiers agree\n"
                    : "MISMATCH between tiers!\n");
  return 0;
}
