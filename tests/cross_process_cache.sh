#!/usr/bin/env bash
# Cross-process module-cache test (ISSUE 2 acceptance): two concurrent
# pygb_cli processes sharing one COLD cache directory must coalesce onto
# exactly one g++ invocation per module (per-stem flock), with the loser
# taking a disk hit on the atomically published .so. Also asserts the
# cache ends clean (no .tmp litter) and that a third, sequential run
# compiles nothing.
#
# usage: cross_process_cache.sh <path-to-pygb_cli>
set -euo pipefail

CLI="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

printf '0 1 1.0\n1 2 1.0\n2 0 1.0\n' > "$TMP/ring.txt"
export PYGB_CACHE_DIR="$TMP/cache"
export PYGB_JIT_MODE=jit   # every op goes through the JIT tier; failures throw

"$CLI" pagerank "$TMP/ring.txt" --tier dsl > "$TMP/a.out" 2>&1 &
pa=$!
"$CLI" pagerank "$TMP/ring.txt" --tier dsl > "$TMP/b.out" 2>&1 &
pb=$!
wait "$pa"
wait "$pb"

# The dsl tier reports the final rank mass once the iteration is done.
grep -q "rank mass:" "$TMP/a.out" || { echo "FAIL: process A did not finish"; cat "$TMP/a.out"; exit 1; }
grep -q "rank mass:" "$TMP/b.out" || { echo "FAIL: process B did not finish"; cat "$TMP/b.out"; exit 1; }

# The dispatch summary line looks like:
#   [dispatch: 57 ops, 0 static, 45 memory, 3 disk, 4 compiled, 0 interpreted]
field() { sed -n "s/.*\\[dispatch:.*[, ]\\([0-9][0-9]*\\) $2.*/\\1/p" "$1"; }

ca="$(field "$TMP/a.out" compiled)"; cb="$(field "$TMP/b.out" compiled)"
da="$(field "$TMP/a.out" disk)";     db="$(field "$TMP/b.out" disk)"
so_count="$(find "$TMP/cache" -name '*.so' | wc -l)"
tmp_count="$(find "$TMP/cache" -name '*.tmp' | wc -l)"

echo "A: $ca compiled, $da disk; B: $cb compiled, $db disk; modules: $so_count"

[ "$so_count" -gt 0 ] || { echo "FAIL: no modules were published"; exit 1; }
[ "$tmp_count" -eq 0 ] || { echo "FAIL: $tmp_count .tmp files leaked"; exit 1; }

# Exactly one compile per module across BOTH processes (the flock
# coalesced every race), and the other process's first encounter of each
# key was a disk hit on the published module.
[ "$((ca + cb))" -eq "$so_count" ] || {
  echo "FAIL: $((ca + cb)) compiles across two processes for $so_count modules"
  exit 1
}
[ "$((da + db))" -eq "$so_count" ] || {
  echo "FAIL: $((da + db)) disk hits across two processes for $so_count modules"
  exit 1
}

# A third, sequential run on the warm cache: zero compiles, all disk hits.
"$CLI" pagerank "$TMP/ring.txt" --tier dsl > "$TMP/c.out" 2>&1
cc="$(field "$TMP/c.out" compiled)"; dc="$(field "$TMP/c.out" disk)"
[ "$cc" -eq 0 ] || { echo "FAIL: warm run recompiled $cc modules"; exit 1; }
[ "$dc" -eq "$so_count" ] || { echo "FAIL: warm run took $dc disk hits, want $so_count"; exit 1; }

echo "PASS"
