// Tests: betweenness centrality — closed-form fixtures and a brute-force
// Brandes reference on random graphs.
#include <gtest/gtest.h>

#include <deque>

#include "algorithms/betweenness.hpp"
#include "generators/classic.hpp"
#include "generators/erdos_renyi.hpp"

namespace {

using namespace pygb;  // NOLINT

/// Textbook Brandes (adjacency-list, per-source BFS) as reference.
std::vector<double> brandes_reference(const gen::EdgeList& el) {
  const auto n = el.num_vertices;
  std::vector<std::vector<gbtl::IndexType>> adj(n);
  for (const auto& e : el.edges) adj[e.src].push_back(e.dst);
  std::vector<double> bc(n, 0.0);
  for (gbtl::IndexType s = 0; s < n; ++s) {
    std::vector<std::vector<gbtl::IndexType>> pred(n);
    std::vector<double> sigma(n, 0.0);
    std::vector<long> dist(n, -1);
    std::vector<gbtl::IndexType> order;
    sigma[s] = 1.0;
    dist[s] = 0;
    std::deque<gbtl::IndexType> queue{s};
    while (!queue.empty()) {
      const auto v = queue.front();
      queue.pop_front();
      order.push_back(v);
      for (auto w : adj[v]) {
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          queue.push_back(w);
        }
        if (dist[w] == dist[v] + 1) {
          sigma[w] += sigma[v];
          pred[w].push_back(v);
        }
      }
    }
    std::vector<double> delta(n, 0.0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const auto w = *it;
      for (auto v : pred[w]) {
        delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
      }
      if (w != s) bc[w] += delta[w];
    }
  }
  return bc;
}

TEST(Betweenness, PathGraphCenterDominates) {
  // Directed path 0->1->2->3->4: vertex 2 lies on the most s-t paths.
  auto el = gen::path_graph(5);
  auto g = gen::to_adjacency<double>(el);
  auto bc = algo::betweenness_centrality(g);
  // Vertex v (interior) lies on paths s < v < t: v * (4 - v) ... for the
  // directed path, bc(v) = v * (n-1-v).
  EXPECT_DOUBLE_EQ(bc.extractElement(0), 0.0);
  EXPECT_DOUBLE_EQ(bc.extractElement(1), 3.0);
  EXPECT_DOUBLE_EQ(bc.extractElement(2), 4.0);
  EXPECT_DOUBLE_EQ(bc.extractElement(3), 3.0);
  EXPECT_DOUBLE_EQ(bc.extractElement(4), 0.0);
}

TEST(Betweenness, StarHubCarriesAllPaths) {
  // Bidirectional star: every spoke-to-spoke shortest path runs through
  // the hub; bc(hub) = (n-1)(n-2) for directed counting.
  auto el = gen::star_graph(6, /*symmetric=*/true);
  auto g = gen::to_adjacency<double>(el);
  auto bc = algo::betweenness_centrality(g);
  EXPECT_DOUBLE_EQ(bc.extractElement(0), 20.0);  // 5*4
  for (gbtl::IndexType v = 1; v < 6; ++v) {
    EXPECT_DOUBLE_EQ(bc.extractElement(v), 0.0);
  }
}

TEST(Betweenness, CompleteGraphAllZero) {
  // Every pair is adjacent: no vertex mediates any shortest path.
  auto el = gen::complete_graph(5);
  auto g = gen::to_adjacency<double>(el);
  auto bc = algo::betweenness_centrality(g);
  for (gbtl::IndexType v = 0; v < 5; ++v) {
    EXPECT_DOUBLE_EQ(bc.extractElement(v), 0.0);
  }
}

TEST(Betweenness, SplitPathsShareCredit) {
  // 0 -> {1, 2} -> 3: two equal shortest paths; 1 and 2 get 1/2 each.
  gbtl::Matrix<double> g(4, 4);
  g.setElement(0, 1, 1.0);
  g.setElement(0, 2, 1.0);
  g.setElement(1, 3, 1.0);
  g.setElement(2, 3, 1.0);
  auto bc = algo::betweenness_centrality(g);
  EXPECT_DOUBLE_EQ(bc.extractElement(1), 0.5);
  EXPECT_DOUBLE_EQ(bc.extractElement(2), 0.5);
  EXPECT_DOUBLE_EQ(bc.extractElement(0), 0.0);
  EXPECT_DOUBLE_EQ(bc.extractElement(3), 0.0);
}

TEST(Betweenness, MatchesBrandesReferenceOnRandomGraphs) {
  for (unsigned seed : {81u, 82u, 83u}) {
    auto el = gen::paper_graph(40, seed, /*symmetric=*/true);
    auto g = gen::to_adjacency<double>(el);
    auto bc = algo::betweenness_centrality(g);
    const auto ref = brandes_reference(el);
    for (gbtl::IndexType v = 0; v < 40; ++v) {
      EXPECT_NEAR(bc.extractElement(v), ref[v], 1e-9)
          << "vertex " << v << ", seed " << seed;
    }
  }
}

TEST(Betweenness, SingleSourceLevelsCount) {
  auto el = gen::path_graph(6);
  auto g = gen::to_adjacency<double>(el);
  gbtl::Vector<double> bc(6);
  gbtl::assign(bc, gbtl::NoMask{}, gbtl::NoAccumulate{}, 0.0,
               gbtl::AllIndices{});
  const auto levels = algo::bc_from_source(g, 0, bc);
  EXPECT_EQ(levels, 6u);
}

}  // namespace
