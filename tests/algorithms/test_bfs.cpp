// Tests: BFS — native GBTL, DSL, and whole-dispatch forms on graphs with
// known level structure.
#include <gtest/gtest.h>

#include "algorithms/bfs.hpp"
#include "algorithms/dsl_algorithms.hpp"
#include "generators/classic.hpp"
#include "generators/erdos_renyi.hpp"

namespace {

using namespace pygb;  // NOLINT

TEST(BfsNative, PathGraphLevels) {
  auto el = gen::path_graph(5);
  auto g = gen::to_adjacency<double>(el);
  gbtl::Vector<std::int64_t> levels(5);
  const auto depth = algo::bfs_from(g, 0, levels);
  EXPECT_EQ(depth, 5u);
  for (gbtl::IndexType v = 0; v < 5; ++v) {
    EXPECT_EQ(levels.extractElement(v), static_cast<std::int64_t>(v + 1));
  }
}

TEST(BfsNative, BalancedTreeLevelsMatchDepth) {
  auto el = gen::balanced_tree(2, 3);
  auto g = gen::to_adjacency<double>(el);
  gbtl::Vector<std::int64_t> levels(el.num_vertices);
  algo::bfs_from(g, 0, levels);
  // Vertex v in a BFS-ordered binary tree sits at level floor(log2(v+1)).
  for (gbtl::IndexType v = 0; v < el.num_vertices; ++v) {
    std::int64_t expect = 1;
    gbtl::IndexType w = v;
    while (w > 0) {
      w = (w - 1) / 2;
      ++expect;
    }
    EXPECT_EQ(levels.extractElement(v), expect) << "vertex " << v;
  }
}

TEST(BfsNative, DisconnectedVerticesStayAbsent) {
  gbtl::Matrix<double> g(4, 4);
  g.setElement(0, 1, 1.0);  // 2, 3 unreachable
  gbtl::Vector<std::int64_t> levels(4);
  const auto depth = algo::bfs_from(g, 0, levels);
  EXPECT_EQ(depth, 2u);
  EXPECT_EQ(levels.nvals(), 2u);
  EXPECT_FALSE(levels.hasElement(2));
  EXPECT_FALSE(levels.hasElement(3));
}

TEST(BfsNative, CycleWrapsAround) {
  auto el = gen::cycle_graph(6);
  auto g = gen::to_adjacency<double>(el);
  gbtl::Vector<std::int64_t> levels(6);
  const auto depth = algo::bfs_from(g, 2, levels);
  EXPECT_EQ(depth, 6u);
  EXPECT_EQ(levels.extractElement(2), 1);
  EXPECT_EQ(levels.extractElement(1), 6);  // all the way around
}

TEST(BfsNative, MultiSourceFrontier) {
  auto el = gen::path_graph(6);
  auto g = gen::to_adjacency<double>(el);
  gbtl::Vector<bool> frontier(6);
  frontier.setElement(0, true);
  frontier.setElement(5, true);
  gbtl::Vector<std::int64_t> levels(6);
  algo::bfs(g, frontier, levels);
  EXPECT_EQ(levels.extractElement(0), 1);
  EXPECT_EQ(levels.extractElement(5), 1);
  EXPECT_EQ(levels.extractElement(1), 2);
}

TEST(BfsDsl, MatchesNativeOnTree) {
  auto el = gen::balanced_tree(3, 3);
  Matrix graph = Matrix::from_edge_list(el);
  Vector frontier(graph.nrows(), DType::kBool);
  frontier.set(0, Scalar(true));
  Vector levels(graph.nrows(), DType::kInt64);
  const auto d_dsl = algo::dsl_bfs(graph, frontier.dup(), levels);

  gbtl::Vector<std::int64_t> nat(graph.nrows());
  const auto d_nat = algo::bfs_from(graph.typed<double>(), 0, nat);
  EXPECT_EQ(d_dsl, d_nat);
  EXPECT_TRUE(levels.typed<std::int64_t>() == nat);
}

TEST(BfsWholeDispatch, MatchesDsl) {
  auto el = gen::paper_graph(128, 3, /*symmetric=*/true);
  Matrix graph = Matrix::from_edge_list(el);
  Vector frontier(graph.nrows(), DType::kBool);
  frontier.set(0, Scalar(true));

  Vector l1(graph.nrows(), DType::kInt64);
  const auto d1 = algo::dsl_bfs(graph, frontier.dup(), l1);
  Vector l2(graph.nrows(), DType::kInt64);
  const auto d2 = algo::whole_bfs(graph, frontier, l2);
  EXPECT_EQ(d1, d2);
  EXPECT_TRUE(l1.equals(l2));
}

TEST(BfsProperty, LevelsDifferByOneAcrossEdges) {
  // For any reached edge (u, v): level(v) <= level(u) + 1.
  for (unsigned seed : {3u, 4u, 5u}) {
    auto el = gen::paper_graph(96, seed, /*symmetric=*/true);
    auto g = gen::to_adjacency<double>(el);
    gbtl::Vector<std::int64_t> levels(96);
    algo::bfs_from(g, 0, levels);
    for (const auto& e : el.edges) {
      if (levels.hasElement(e.src)) {
        ASSERT_TRUE(levels.hasElement(e.dst));
        EXPECT_LE(levels.extractElement(e.dst),
                  levels.extractElement(e.src) + 1);
      }
    }
  }
}

}  // namespace
