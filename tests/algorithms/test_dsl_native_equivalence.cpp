// Integration property sweep: for every paper algorithm, the three
// implementation tiers of Fig. 10 — DSL with host-language outer loops,
// single whole-algorithm dispatch, and native GBTL — produce identical
// results across random graphs (parameterized over seeds and sizes).
#include <gtest/gtest.h>

#include "algorithms/bfs.hpp"
#include "algorithms/dsl_algorithms.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/triangle_count.hpp"
#include "generators/erdos_renyi.hpp"

namespace {

using namespace pygb;  // NOLINT

struct GraphCase {
  gbtl::IndexType n;
  unsigned seed;
};

class ThreeTier : public ::testing::TestWithParam<GraphCase> {
 protected:
  Matrix make_graph(bool weighted) const {
    const auto p = GetParam();
    auto el = gen::paper_graph(p.n, p.seed, /*symmetric=*/true, 1.0,
                               weighted ? 8.0 : 1.0);
    return Matrix::from_edge_list(el);
  }
};

TEST_P(ThreeTier, Bfs) {
  Matrix graph = make_graph(false);
  const auto n = graph.nrows();
  Vector frontier(n, DType::kBool);
  frontier.set(0, Scalar(true));

  Vector dsl_levels(n, DType::kInt64);
  const auto d1 = algo::dsl_bfs(graph, frontier.dup(), dsl_levels);

  Vector whole_levels(n, DType::kInt64);
  const auto d2 = algo::whole_bfs(graph, frontier, whole_levels);

  gbtl::Vector<std::int64_t> native_levels(n);
  const auto d3 = algo::bfs_from(graph.typed<double>(), 0, native_levels);

  EXPECT_EQ(d1, d3);
  EXPECT_EQ(d2, d3);
  EXPECT_TRUE(dsl_levels.typed<std::int64_t>() == native_levels);
  EXPECT_TRUE(whole_levels.typed<std::int64_t>() == native_levels);
}

TEST_P(ThreeTier, Sssp) {
  Matrix graph = make_graph(true);
  const auto n = graph.nrows();

  Vector dsl_path(n, DType::kFP64);
  dsl_path.set(0, 0.0);
  algo::dsl_sssp(graph, dsl_path);

  Vector whole_path(n, DType::kFP64);
  whole_path.set(0, 0.0);
  algo::whole_sssp(graph, whole_path);

  gbtl::Vector<double> native_path(n);
  algo::sssp_from(graph.typed<double>(), 0, native_path);

  EXPECT_TRUE(dsl_path.typed<double>() == native_path);
  EXPECT_TRUE(whole_path.typed<double>() == native_path);
}

TEST_P(ThreeTier, TriangleCount) {
  Matrix graph = make_graph(false);
  auto [lower, upper] = split_triangles(graph);
  const auto t_dsl = algo::dsl_triangle_count(lower);
  const auto t_whole = algo::whole_triangle_count(lower);
  const auto t_native =
      algo::triangle_count<std::int64_t>(lower.typed<double>());
  EXPECT_EQ(t_dsl, t_native);
  EXPECT_EQ(t_whole, t_native);
}

TEST_P(ThreeTier, PageRank) {
  Matrix graph = make_graph(false);
  const auto n = graph.nrows();

  Vector dsl_rank = algo::dsl_page_rank(graph);
  Vector whole_rank(n, DType::kFP64);
  algo::whole_page_rank(graph, whole_rank);
  gbtl::Vector<double> native_rank(n);
  algo::page_rank(graph.typed<double>(), native_rank);

  for (gbtl::IndexType v = 0; v < n; ++v) {
    EXPECT_NEAR(dsl_rank.get(v), native_rank.extractElement(v), 1e-12);
    EXPECT_NEAR(whole_rank.get(v), native_rank.extractElement(v), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ThreeTier,
    ::testing::Values(GraphCase{32, 101}, GraphCase{64, 102},
                      GraphCase{128, 103}, GraphCase{200, 104},
                      GraphCase{64, 105}),
    [](const ::testing::TestParamInfo<GraphCase>& info) {
      return "n" + std::to_string(info.param.n) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
