// Tests: triangle counting — closed-form fixtures (K_n, trees, cycles),
// and agreement across native / DSL / whole-dispatch forms.
#include <gtest/gtest.h>

#include "algorithms/dsl_algorithms.hpp"
#include "algorithms/triangle_count.hpp"
#include "generators/classic.hpp"
#include "generators/erdos_renyi.hpp"

namespace {

using namespace pygb;  // NOLINT

TEST(TriangleCountNative, SingleTriangle) {
  gbtl::Matrix<int> l(3, 3);
  l.setElement(1, 0, 1);
  l.setElement(2, 0, 1);
  l.setElement(2, 1, 1);
  EXPECT_EQ(algo::triangle_count<int>(l), 1);
}

TEST(TriangleCountNative, CompleteGraphClosedForm) {
  // K_n has C(n, 3) triangles.
  for (gbtl::IndexType n : {4u, 5u, 6u, 8u}) {
    auto el = gen::complete_graph(n);
    auto adj = gen::to_adjacency<std::int64_t>(el);
    const auto count = algo::triangle_count_adjacency<std::int64_t>(adj);
    const std::int64_t expect =
        static_cast<std::int64_t>(n) * (n - 1) * (n - 2) / 6;
    EXPECT_EQ(count, expect) << "K_" << n;
  }
}

TEST(TriangleCountNative, TreesAndCyclesHaveNone) {
  auto tree = gen::balanced_tree(2, 4, /*symmetric=*/true);
  EXPECT_EQ(algo::triangle_count_adjacency<int>(
                gen::to_adjacency<int>(tree)),
            0);
  auto cyc = gen::cycle_graph(8, /*symmetric=*/true);
  EXPECT_EQ(algo::triangle_count_adjacency<int>(gen::to_adjacency<int>(cyc)),
            0);
  // Triangle = 3-cycle.
  auto c3 = gen::cycle_graph(3, /*symmetric=*/true);
  EXPECT_EQ(algo::triangle_count_adjacency<int>(gen::to_adjacency<int>(c3)),
            1);
}

/// Brute-force reference over the adjacency matrix.
std::int64_t brute_force_triangles(const gbtl::Matrix<double>& adj) {
  std::int64_t count = 0;
  const auto n = adj.nrows();
  for (gbtl::IndexType i = 0; i < n; ++i) {
    for (gbtl::IndexType j = i + 1; j < n; ++j) {
      if (!adj.hasElement(i, j)) continue;
      for (gbtl::IndexType k = j + 1; k < n; ++k) {
        if (adj.hasElement(i, k) && adj.hasElement(j, k)) ++count;
      }
    }
  }
  return count;
}

TEST(TriangleCountNative, MatchesBruteForceOnRandomGraphs) {
  for (unsigned seed : {21u, 22u, 23u}) {
    auto el = gen::paper_graph(64, seed, /*symmetric=*/true);
    auto adj = gen::to_adjacency<double>(el);
    EXPECT_EQ(algo::triangle_count_adjacency<std::int64_t>(adj),
              brute_force_triangles(adj))
        << "seed " << seed;
  }
}

TEST(TriangleCountDsl, MatchesNative) {
  auto el = gen::paper_graph(96, 31, /*symmetric=*/true);
  Matrix adj = Matrix::from_edge_list(el);
  auto [lower, upper] = split_triangles(adj);
  const auto dsl = algo::dsl_triangle_count(lower);
  const auto nat =
      algo::triangle_count<std::int64_t>(lower.typed<double>());
  EXPECT_EQ(dsl, nat);
}

TEST(TriangleCountWholeDispatch, MatchesDsl) {
  auto el = gen::paper_graph(96, 32, /*symmetric=*/true);
  Matrix adj = Matrix::from_edge_list(el);
  auto [lower, upper] = split_triangles(adj);
  EXPECT_EQ(algo::whole_triangle_count(lower),
            algo::dsl_triangle_count(lower));
}

TEST(TriangleCountProperty, InvariantUnderVertexRelabeling) {
  // Reversing vertex ids preserves the triangle count.
  auto el = gen::paper_graph(48, 33, /*symmetric=*/true);
  auto relabeled = el;
  for (auto& e : relabeled.edges) {
    e.src = el.num_vertices - 1 - e.src;
    e.dst = el.num_vertices - 1 - e.dst;
  }
  auto a1 = gen::to_adjacency<double>(el);
  auto a2 = gen::to_adjacency<double>(relabeled);
  EXPECT_EQ(algo::triangle_count_adjacency<std::int64_t>(a1),
            algo::triangle_count_adjacency<std::int64_t>(a2));
}

}  // namespace
