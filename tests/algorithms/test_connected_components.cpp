// Tests: connected components — known component structures, a union-find
// reference on random graphs, and DSL/native agreement.
#include <gtest/gtest.h>

#include <numeric>

#include "algorithms/connected_components.hpp"
#include "algorithms/dsl_algorithms.hpp"
#include "generators/classic.hpp"
#include "generators/erdos_renyi.hpp"
#include "pygb/jit/registry.hpp"

namespace {

using namespace pygb;  // NOLINT

/// Union-find reference.
struct UnionFind {
  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent[find(a)] = find(b); }
  std::vector<std::size_t> parent;
};

TEST(ConnectedComponents, SingleComponentPath) {
  auto el = gen::path_graph(8, /*symmetric=*/true);
  auto g = gen::to_adjacency<double>(el);
  gbtl::Vector<std::int64_t> labels(8);
  algo::connected_components(g, labels);
  for (gbtl::IndexType v = 0; v < 8; ++v) {
    EXPECT_EQ(labels.extractElement(v), 0);
  }
  EXPECT_EQ(algo::count_components(labels), 1u);
}

TEST(ConnectedComponents, TwoDisjointCycles) {
  gbtl::Matrix<double> g(8, 8);
  auto edge = [&](gbtl::IndexType a, gbtl::IndexType b) {
    g.setElement(a, b, 1.0);
    g.setElement(b, a, 1.0);
  };
  edge(0, 1);
  edge(1, 2);
  edge(2, 0);  // component {0,1,2}
  edge(4, 5);
  edge(5, 6);
  edge(6, 7);
  edge(7, 4);  // component {4,5,6,7}; vertex 3 isolated
  gbtl::Vector<std::int64_t> labels(8);
  algo::connected_components(g, labels);
  EXPECT_EQ(labels.extractElement(2), 0);
  EXPECT_EQ(labels.extractElement(7), 4);
  EXPECT_EQ(labels.extractElement(3), 3);
  EXPECT_EQ(algo::count_components(labels), 3u);
}

TEST(ConnectedComponents, MatchesUnionFindOnRandomGraphs) {
  for (unsigned seed : {71u, 72u, 73u}) {
    const gbtl::IndexType n = 100;
    // Sparse enough to leave several components.
    gen::ErdosRenyiParams p;
    p.num_vertices = n;
    p.num_edges = 60;
    p.symmetric = true;
    p.seed = seed;
    auto el = gen::erdos_renyi(p);
    auto g = gen::to_adjacency<double>(el);

    gbtl::Vector<std::int64_t> labels(n);
    algo::connected_components(g, labels);

    UnionFind uf(n);
    for (const auto& e : el.edges) uf.unite(e.src, e.dst);
    // Same partition: labels equal iff union-find roots equal.
    for (gbtl::IndexType a = 0; a < n; ++a) {
      for (gbtl::IndexType b = a + 1; b < n; ++b) {
        EXPECT_EQ(labels.extractElement(a) == labels.extractElement(b),
                  uf.find(a) == uf.find(b))
            << "pair (" << a << ", " << b << "), seed " << seed;
      }
    }
  }
}

TEST(ConnectedComponents, LabelIsComponentMinimum) {
  auto el = gen::balanced_tree(2, 4, /*symmetric=*/true);
  auto g = gen::to_adjacency<double>(el);
  gbtl::Vector<std::int64_t> labels(el.num_vertices);
  algo::connected_components(g, labels);
  for (gbtl::IndexType v = 0; v < el.num_vertices; ++v) {
    EXPECT_EQ(labels.extractElement(v), 0);  // root has the smallest id
  }
}

TEST(ConnectedComponents, DslMatchesNative) {
  // The DSL transliteration uses ops outside the curated static set; pin
  // auto mode so a forced PYGB_JIT_MODE=static environment can't break it
  // (auto degrades static → jit → interp and always serves the request).
  auto& reg = jit::Registry::instance();
  const auto saved_mode = reg.mode();
  reg.set_mode(jit::Mode::kAuto);

  gen::ErdosRenyiParams p;
  p.num_vertices = 80;
  p.num_edges = 50;
  p.symmetric = true;
  p.seed = 74;
  auto el = gen::erdos_renyi(p);
  Matrix graph = Matrix::from_edge_list(el);

  Vector dsl_labels(80, DType::kInt64);
  algo::dsl_connected_components(graph, dsl_labels);

  gbtl::Vector<std::int64_t> nat(80);
  algo::connected_components(graph.typed<double>(), nat);
  reg.set_mode(saved_mode);
  EXPECT_TRUE(dsl_labels.typed<std::int64_t>() == nat);
}

TEST(ConnectedComponents, RoundsBoundedByDiameter) {
  // A path of length 32: labels need ~n rounds to flow end to end; the
  // early-exit must stop right after the fixed point.
  auto el = gen::path_graph(32, /*symmetric=*/true);
  auto g = gen::to_adjacency<double>(el);
  gbtl::Vector<std::int64_t> labels(32);
  const auto rounds = algo::connected_components(g, labels);
  EXPECT_LE(rounds, 32u);
  EXPECT_GE(rounds, 31u);  // min label must traverse the whole path
}

}  // namespace
