// Tests: SSSP — native, DSL, whole-dispatch, and a Dijkstra reference.
#include <gtest/gtest.h>

#include <cmath>
#include <queue>

#include "algorithms/dsl_algorithms.hpp"
#include "algorithms/sssp.hpp"
#include "generators/classic.hpp"
#include "generators/erdos_renyi.hpp"

namespace {

using namespace pygb;  // NOLINT

/// Dijkstra reference over an edge list (non-negative weights).
std::vector<double> dijkstra(const gen::EdgeList& el, gbtl::IndexType src) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<std::pair<gbtl::IndexType, double>>> adj(
      el.num_vertices);
  for (const auto& e : el.edges) adj[e.src].push_back({e.dst, e.weight});
  std::vector<double> dist(el.num_vertices, inf);
  dist[src] = 0;
  using QE = std::pair<double, gbtl::IndexType>;
  std::priority_queue<QE, std::vector<QE>, std::greater<>> pq;
  pq.push({0, src});
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;
    for (auto [w, wt] : adj[v]) {
      if (d + wt < dist[w]) {
        dist[w] = d + wt;
        pq.push({dist[w], w});
      }
    }
  }
  return dist;
}

TEST(SsspNative, WeightedPath) {
  gbtl::Matrix<double> g(4, 4);
  g.setElement(0, 1, 2.0);
  g.setElement(1, 2, 3.0);
  g.setElement(2, 3, 4.0);
  g.setElement(0, 3, 100.0);  // worse direct edge
  gbtl::Vector<double> path(4);
  algo::sssp_from(g, 0, path);
  EXPECT_DOUBLE_EQ(path.extractElement(0), 0.0);
  EXPECT_DOUBLE_EQ(path.extractElement(1), 2.0);
  EXPECT_DOUBLE_EQ(path.extractElement(3), 9.0);  // 2+3+4 beats 100
}

TEST(SsspNative, UnreachableStaysAbsent) {
  gbtl::Matrix<double> g(3, 3);
  g.setElement(0, 1, 1.0);
  gbtl::Vector<double> path(3);
  algo::sssp_from(g, 0, path);
  EXPECT_FALSE(path.hasElement(2));
}

TEST(SsspNative, MatchesDijkstraOnRandomGraphs) {
  for (unsigned seed : {5u, 6u, 7u}) {
    auto el = gen::paper_graph(80, seed, /*symmetric=*/true, 1.0, 10.0);
    auto g = gen::to_adjacency<double>(el);
    gbtl::Vector<double> path(80);
    algo::sssp_from(g, 0, path);
    const auto ref = dijkstra(el, 0);
    for (gbtl::IndexType v = 0; v < 80; ++v) {
      if (std::isinf(ref[v])) {
        EXPECT_FALSE(path.hasElement(v)) << "vertex " << v;
      } else {
        ASSERT_TRUE(path.hasElement(v)) << "vertex " << v;
        EXPECT_NEAR(path.extractElement(v), ref[v], 1e-9) << "vertex " << v;
      }
    }
  }
}

TEST(SsspNative, EarlyExitAgreesAndTerminatesSooner) {
  auto el = gen::path_graph(64);
  auto g = gen::to_adjacency<double>(el);
  gbtl::Vector<double> full(64), early(64);
  full.setElement(0, 0.0);
  early.setElement(0, 0.0);
  algo::sssp(g, full);
  const auto rounds = algo::sssp_early_exit(g, early);
  EXPECT_TRUE(full == early);
  EXPECT_LE(rounds, 64u);
}

TEST(SsspDsl, MatchesNative) {
  auto el = gen::paper_graph(64, 11, /*symmetric=*/true, 1.0, 5.0);
  Matrix graph = Matrix::from_edge_list(el);
  Vector path(64, DType::kFP64);
  path.set(0, 0.0);
  algo::dsl_sssp(graph, path);

  gbtl::Vector<double> nat(64);
  algo::sssp_from(graph.typed<double>(), 0, nat);
  EXPECT_TRUE(path.typed<double>() == nat);
}

TEST(SsspWholeDispatch, MatchesDsl) {
  auto el = gen::paper_graph(48, 12, /*symmetric=*/true, 1.0, 5.0);
  Matrix graph = Matrix::from_edge_list(el);
  Vector p1(48, DType::kFP64);
  p1.set(0, 0.0);
  algo::dsl_sssp(graph, p1);
  Vector p2(48, DType::kFP64);
  p2.set(0, 0.0);
  algo::whole_sssp(graph, p2);
  EXPECT_TRUE(p1.equals(p2));
}

TEST(SsspProperty, TriangleInequalityOnEdges) {
  auto el = gen::paper_graph(64, 13, true, 1.0, 9.0);
  auto g = gen::to_adjacency<double>(el);
  gbtl::Vector<double> path(64);
  algo::sssp_from(g, 0, path);
  for (const auto& e : el.edges) {
    if (path.hasElement(e.src)) {
      ASSERT_TRUE(path.hasElement(e.dst));
      EXPECT_LE(path.extractElement(e.dst),
                path.extractElement(e.src) + e.weight + 1e-9);
    }
  }
}

}  // namespace
