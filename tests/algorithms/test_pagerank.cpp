// Tests: PageRank — distribution invariants, closed-form fixtures, and
// native/DSL/whole-dispatch agreement.
#include <gtest/gtest.h>

#include "algorithms/dsl_algorithms.hpp"
#include "algorithms/pagerank.hpp"
#include "generators/classic.hpp"
#include "generators/erdos_renyi.hpp"

namespace {

using namespace pygb;  // NOLINT

double rank_sum(const gbtl::Vector<double>& r) {
  double s = 0;
  gbtl::reduce(s, gbtl::NoAccumulate{}, gbtl::PlusMonoid<double>{}, r);
  return s;
}

TEST(PageRankNative, SumsToOneWithoutDanglingVertices) {
  // A cycle has no dangling vertices, so no rank mass leaks (the Fig. 7/8
  // algorithm, like the paper's, does not redistribute dangling mass).
  auto el = gen::cycle_graph(64);
  auto g = gen::to_adjacency<double>(el);
  gbtl::Vector<double> rank(64);
  const auto iters = algo::page_rank(g, rank);
  EXPECT_GT(iters, 0u);
  EXPECT_EQ(rank.nvals(), 64u);
  EXPECT_NEAR(rank_sum(rank), 1.0, 1e-6);
}

TEST(PageRankNative, BoundedMassOnGraphsWithDanglingVertices) {
  // ER graphs may contain isolated vertices; rank mass then leaks (a known
  // property of the paper's formulation) but stays a valid sub-probability
  // distribution and every vertex ends with at least the teleport term.
  auto el = gen::paper_graph(128, 41, /*symmetric=*/true);
  auto g = gen::to_adjacency<double>(el);
  gbtl::Vector<double> rank(128);
  algo::page_rank(g, rank);
  EXPECT_EQ(rank.nvals(), 128u);
  const double total = rank_sum(rank);
  EXPECT_GT(total, 0.5);
  EXPECT_LE(total, 1.0 + 1e-9);
  const double teleport = 0.15 / 128;
  for (gbtl::IndexType v = 0; v < 128; ++v) {
    EXPECT_GE(rank.extractElement(v), teleport - 1e-12);
  }
}

TEST(PageRankNative, UniformOnCycle) {
  // A directed cycle is perfectly symmetric: every vertex gets 1/n.
  auto el = gen::cycle_graph(10);
  auto g = gen::to_adjacency<double>(el);
  gbtl::Vector<double> rank(10);
  algo::page_rank(g, rank);
  for (gbtl::IndexType v = 0; v < 10; ++v) {
    EXPECT_NEAR(rank.extractElement(v), 0.1, 1e-6);
  }
}

TEST(PageRankNative, HubOutranksSpokes) {
  // Bidirectional star: the hub collects rank from every spoke while each
  // spoke only receives 1/4 of the hub's — the hub must dominate.
  gbtl::Matrix<double> g(5, 5);
  for (gbtl::IndexType v = 1; v < 5; ++v) {
    g.setElement(v, 0, 1.0);
    g.setElement(0, v, 1.0);
  }
  gbtl::Vector<double> rank(5);
  algo::page_rank(g, rank);
  for (gbtl::IndexType v = 1; v < 5; ++v) {
    EXPECT_GT(rank.extractElement(0), rank.extractElement(v));
  }
}

TEST(PageRankNative, DampingZeroGivesUniform) {
  auto el = gen::paper_graph(32, 43, /*symmetric=*/true);
  auto g = gen::to_adjacency<double>(el);
  gbtl::Vector<double> rank(32);
  algo::page_rank(g, rank, 0.0);
  for (gbtl::IndexType v = 0; v < 32; ++v) {
    EXPECT_NEAR(rank.extractElement(v), 1.0 / 32, 1e-9);
  }
}

TEST(PageRankNative, MaxItersBoundsWork) {
  auto el = gen::paper_graph(64, 44, /*symmetric=*/true);
  auto g = gen::to_adjacency<double>(el);
  gbtl::Vector<double> rank(64);
  const auto iters = algo::page_rank(g, rank, 0.85, 1e-12, 3);
  EXPECT_EQ(iters, 3u);
}

TEST(PageRankDsl, MatchesNativeExactly) {
  // The DSL version performs the identical operation sequence, so the
  // fixed-point values agree to machine precision.
  for (unsigned seed : {51u, 52u}) {
    auto el = gen::paper_graph(96, seed, /*symmetric=*/true);
    Matrix graph = Matrix::from_edge_list(el);
    Vector dsl_rank = algo::dsl_page_rank(graph);
    gbtl::Vector<double> nat(96);
    algo::page_rank(graph.typed<double>(), nat);
    ASSERT_EQ(dsl_rank.nvals(), nat.nvals());
    for (gbtl::IndexType v = 0; v < 96; ++v) {
      EXPECT_NEAR(dsl_rank.get(v), nat.extractElement(v), 1e-12);
    }
  }
}

TEST(PageRankWholeDispatch, MatchesNative) {
  auto el = gen::paper_graph(64, 53, /*symmetric=*/true);
  Matrix graph = Matrix::from_edge_list(el);
  Vector rank(64, DType::kFP64);
  const auto iters = algo::whole_page_rank(graph, rank);
  gbtl::Vector<double> nat(64);
  const auto nat_iters = algo::page_rank(graph.typed<double>(), nat);
  EXPECT_EQ(iters, nat_iters);
  EXPECT_TRUE(rank.typed<double>() == nat);
}

TEST(PageRankDsl, CustomParametersForwarded) {
  auto el = gen::paper_graph(48, 54, /*symmetric=*/true);
  Matrix graph = Matrix::from_edge_list(el);
  Vector r1 = algo::dsl_page_rank(graph, 0.5, 1e-8);
  gbtl::Vector<double> nat(48);
  algo::page_rank(graph.typed<double>(), nat, 0.5, 1e-8);
  for (gbtl::IndexType v = 0; v < 48; ++v) {
    EXPECT_NEAR(r1.get(v), nat.extractElement(v), 1e-12);
  }
}

}  // namespace
