// Tests: R-MAT generator.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "generators/rmat.hpp"

namespace {

using namespace pygb::gen;  // NOLINT

TEST(Rmat, VertexCountIsPowerOfScale) {
  RmatParams p;
  p.scale = 6;
  p.edge_factor = 8;
  auto el = rmat(p);
  EXPECT_EQ(el.num_vertices, 64u);
  for (const auto& e : el.edges) {
    EXPECT_LT(e.src, 64u);
    EXPECT_LT(e.dst, 64u);
  }
}

TEST(Rmat, RespectsSelfLoopAndDedupFlags) {
  RmatParams p;
  p.scale = 5;
  p.edge_factor = 8;
  p.seed = 9;
  auto el = rmat(p);
  std::set<std::pair<gbtl::IndexType, gbtl::IndexType>> seen;
  for (const auto& e : el.edges) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_TRUE(seen.insert({e.src, e.dst}).second);
  }
}

TEST(Rmat, Deterministic) {
  RmatParams p;
  p.scale = 5;
  p.seed = 11;
  auto a = rmat(p);
  auto b = rmat(p);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (std::size_t k = 0; k < a.edges.size(); ++k) {
    EXPECT_EQ(a.edges[k].src, b.edges[k].src);
    EXPECT_EQ(a.edges[k].dst, b.edges[k].dst);
  }
}

TEST(Rmat, SkewedDegreeDistribution) {
  // With the default (0.57, 0.19, 0.19) parameters the out-degree
  // distribution is heavily skewed: the max out-degree far exceeds the
  // mean (which a uniform ER graph would not show at this scale).
  RmatParams p;
  p.scale = 9;
  p.edge_factor = 8;
  p.seed = 13;
  auto el = rmat(p);
  std::map<gbtl::IndexType, std::size_t> degree;
  for (const auto& e : el.edges) ++degree[e.src];
  std::size_t max_deg = 0;
  for (const auto& [v, d] : degree) max_deg = std::max(max_deg, d);
  const double mean = static_cast<double>(el.edges.size()) /
                      static_cast<double>(el.num_vertices);
  EXPECT_GT(static_cast<double>(max_deg), 4.0 * mean);
}

TEST(Rmat, InvalidProbabilitiesThrow) {
  RmatParams p;
  p.a = 0.5;
  p.b = 0.3;
  p.c = 0.3;
  EXPECT_THROW(rmat(p), std::invalid_argument);
}

}  // namespace
