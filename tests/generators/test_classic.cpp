// Tests: deterministic graph families (balanced tree, path, cycle,
// complete, star) and the adjacency conversion.
#include <gtest/gtest.h>

#include "generators/classic.hpp"

namespace {

using namespace pygb::gen;  // NOLINT

TEST(BalancedTree, VertexAndEdgeCounts) {
  // r=2, h=3: 1 + 2 + 4 + 8 = 15 vertices, 14 edges.
  auto el = balanced_tree(2, 3);
  EXPECT_EQ(el.num_vertices, 15u);
  EXPECT_EQ(el.edges.size(), 14u);
}

TEST(BalancedTree, TernaryCounts) {
  // r=3, h=2: 1 + 3 + 9 = 13 vertices.
  auto el = balanced_tree(3, 2);
  EXPECT_EQ(el.num_vertices, 13u);
  EXPECT_EQ(el.edges.size(), 12u);
}

TEST(BalancedTree, UnaryChainIsAPath) {
  auto el = balanced_tree(1, 4);
  EXPECT_EQ(el.num_vertices, 5u);
  EXPECT_EQ(el.edges.size(), 4u);
}

TEST(BalancedTree, ChildIndexingIsBfsOrder) {
  auto el = balanced_tree(2, 2);
  // Root 0 -> 1, 2; vertex 1 -> 3, 4; vertex 2 -> 5, 6.
  EXPECT_EQ(el.edges[0].src, 0u);
  EXPECT_EQ(el.edges[0].dst, 1u);
  EXPECT_EQ(el.edges[1].dst, 2u);
  EXPECT_EQ(el.edges[2].src, 1u);
  EXPECT_EQ(el.edges[2].dst, 3u);
}

TEST(BalancedTree, SymmetricDoublesEdges) {
  auto el = balanced_tree(2, 3, /*symmetric=*/true);
  EXPECT_EQ(el.edges.size(), 28u);
}

TEST(BalancedTree, ZeroBranchingThrows) {
  EXPECT_THROW(balanced_tree(0, 3), std::invalid_argument);
}

TEST(PathGraph, Structure) {
  auto el = path_graph(4);
  EXPECT_EQ(el.num_vertices, 4u);
  ASSERT_EQ(el.edges.size(), 3u);
  EXPECT_EQ(el.edges[2].src, 2u);
  EXPECT_EQ(el.edges[2].dst, 3u);
}

TEST(CycleGraph, ClosesLoop) {
  auto el = cycle_graph(5);
  EXPECT_EQ(el.edges.size(), 5u);
  EXPECT_EQ(el.edges.back().src, 4u);
  EXPECT_EQ(el.edges.back().dst, 0u);
}

TEST(CycleGraph, TooSmallThrows) {
  EXPECT_THROW(cycle_graph(1), std::invalid_argument);
}

TEST(CompleteGraph, AllPairs) {
  auto el = complete_graph(4);
  EXPECT_EQ(el.edges.size(), 12u);  // 4*3 directed
}

TEST(StarGraph, HubAndSpokes) {
  auto el = star_graph(5);
  EXPECT_EQ(el.edges.size(), 4u);
  for (const auto& e : el.edges) EXPECT_EQ(e.src, 0u);
}

TEST(ToAdjacency, BuildsCorrectMatrix) {
  auto el = path_graph(3);
  auto m = to_adjacency<double>(el);
  EXPECT_EQ(m.nrows(), 3u);
  EXPECT_EQ(m.nvals(), 2u);
  EXPECT_DOUBLE_EQ(m.extractElement(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.extractElement(1, 2), 1.0);
  EXPECT_FALSE(m.hasElement(1, 0));
}

}  // namespace
