// Tests: Erdős–Rényi generator and the paper's |E| = n^1.5 density rule.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "generators/erdos_renyi.hpp"

namespace {

using namespace pygb::gen;  // NOLINT

TEST(ErdosRenyi, ExactEdgeCount) {
  ErdosRenyiParams p;
  p.num_vertices = 50;
  p.num_edges = 200;
  p.seed = 1;
  auto el = erdos_renyi(p);
  EXPECT_EQ(el.num_vertices, 50u);
  EXPECT_EQ(el.edges.size(), 200u);
}

TEST(ErdosRenyi, NoDuplicatesNoSelfLoops) {
  ErdosRenyiParams p;
  p.num_vertices = 40;
  p.num_edges = 300;
  p.seed = 2;
  auto el = erdos_renyi(p);
  std::set<std::pair<gbtl::IndexType, gbtl::IndexType>> seen;
  for (const auto& e : el.edges) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_LT(e.src, 40u);
    EXPECT_LT(e.dst, 40u);
    EXPECT_TRUE(seen.insert({e.src, e.dst}).second) << "duplicate edge";
  }
}

TEST(ErdosRenyi, DeterministicForSeed) {
  ErdosRenyiParams p;
  p.num_vertices = 30;
  p.num_edges = 100;
  p.seed = 7;
  auto a = erdos_renyi(p);
  auto b = erdos_renyi(p);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (std::size_t k = 0; k < a.edges.size(); ++k) {
    EXPECT_EQ(a.edges[k].src, b.edges[k].src);
    EXPECT_EQ(a.edges[k].dst, b.edges[k].dst);
    EXPECT_DOUBLE_EQ(a.edges[k].weight, b.edges[k].weight);
  }
  p.seed = 8;
  auto c = erdos_renyi(p);
  bool differs = false;
  for (std::size_t k = 0; k < a.edges.size() && !differs; ++k) {
    differs = a.edges[k].src != c.edges[k].src ||
              a.edges[k].dst != c.edges[k].dst;
  }
  EXPECT_TRUE(differs);
}

TEST(ErdosRenyi, SymmetricMirrorsEveryEdge) {
  ErdosRenyiParams p;
  p.num_vertices = 25;
  p.num_edges = 60;
  p.symmetric = true;
  p.seed = 3;
  auto el = erdos_renyi(p);
  EXPECT_EQ(el.edges.size(), 120u);
  std::set<std::pair<gbtl::IndexType, gbtl::IndexType>> seen;
  for (const auto& e : el.edges) seen.insert({e.src, e.dst});
  for (const auto& e : el.edges) {
    EXPECT_TRUE(seen.count({e.dst, e.src})) << "missing mirror";
  }
}

TEST(ErdosRenyi, WeightsInRange) {
  ErdosRenyiParams p;
  p.num_vertices = 20;
  p.num_edges = 50;
  p.min_weight = 2.0;
  p.max_weight = 5.0;
  p.seed = 4;
  auto el = erdos_renyi(p);
  for (const auto& e : el.edges) {
    EXPECT_GE(e.weight, 2.0);
    EXPECT_LE(e.weight, 5.0);
  }
}

TEST(ErdosRenyi, TooManyEdgesThrows) {
  ErdosRenyiParams p;
  p.num_vertices = 3;
  p.num_edges = 7;  // max is 3*2 = 6 directed edges
  EXPECT_THROW(erdos_renyi(p), std::invalid_argument);
}

TEST(ErdosRenyi, EmptyVertexSetThrows) {
  ErdosRenyiParams p;
  EXPECT_THROW(erdos_renyi(p), std::invalid_argument);
}

TEST(PaperEdgeCount, FollowsNToTheOnePointFive) {
  EXPECT_EQ(paper_edge_count(100), 1000u);  // 100^1.5
  EXPECT_EQ(paper_edge_count(1024), 32768u);
  // Clamped to n(n-1) for tiny n: 4^1.5 = 8 <= 12, unclamped.
  EXPECT_EQ(paper_edge_count(4), 8u);
  EXPECT_EQ(paper_edge_count(2), 2u);  // 2^1.5 = 2.83 -> clamp to 2
}

TEST(PaperGraph, MatchesDensityRule) {
  auto el = paper_graph(256, 5);
  EXPECT_EQ(el.num_vertices, 256u);
  EXPECT_EQ(el.edges.size(), paper_edge_count(256));
}

TEST(PaperGraph, SymmetricKeepsTotalStoredEdges) {
  auto el = paper_graph(128, 5, /*symmetric=*/true);
  // Canonical pairs halved, then mirrored: total ~= n^1.5 (exactly, since
  // every sampled pair is off-diagonal).
  EXPECT_EQ(el.edges.size(), (paper_edge_count(128) / 2) * 2);
}

}  // namespace
