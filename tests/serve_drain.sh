#!/usr/bin/env bash
# Graceful-drain acceptance for pygb_serve (docs/SERVING.md): SIGTERM while
# a request is in flight must
#
#   * deliver the in-flight client a TYPED reply (ok if it finished inside
#     the drain window; cancelled/deadline_exceeded past the cap — never a
#     dropped connection),
#   * refuse new work with a typed `shutting_down` (or refuse the connect
#     outright once the listener is closed),
#   * flush the metrics file (the SIGTERM flush path), and
#   * exit 0.
#
# usage: serve_drain.sh <path-to-pygb_serve>
set -euo pipefail

SERVE="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"; kill "$SERVER_PID" 2>/dev/null || true' EXIT

if ! command -v python3 >/dev/null 2>&1; then
  echo "serve_drain: python3 unavailable, skipping"
  exit 0
fi

SOCK="$TMP/serve.sock"
METRICS="$TMP/metrics.json"

"$SERVE" --socket "$SOCK" --threads 2 --drain-ms 4000 \
  --metrics-json "$METRICS" > "$TMP/serve.log" 2>&1 &
SERVER_PID=$!

# Wait for the listener.
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "FAIL: server never bound $SOCK"; cat "$TMP/serve.log"; exit 1; }

# Client: send one moderately-sized request, then hold the connection open
# waiting for the reply while the parent SIGTERMs the server.
python3 - "$SOCK" > "$TMP/client.out" <<'PY' &
import socket, struct, sys

sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
sock.connect(sys.argv[1])
payload = b"pygb-serve/1\nalgo=pagerank\ngraph=er:192\nmax_iters=200\nthreshold=0.0000000001\n"
sock.sendall(struct.pack("<I", len(payload)) + payload)

def read_exact(n):
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise SystemExit("FAIL: connection dropped without a reply")
        buf += chunk
    return buf

(length,) = struct.unpack("<I", read_exact(4))
reply = read_exact(length).decode()
code = ""
for line in reply.splitlines():
    if line.startswith("code="):
        code = line[5:]
print(f"reply_code={code}")
if code not in ("ok", "cancelled", "deadline_exceeded"):
    raise SystemExit(f"FAIL: unexpected drain reply code {code!r}:\n{reply}")
PY
CLIENT_PID=$!

# Let the request get in flight, then ask for a graceful stop.
sleep 0.4
kill -TERM "$SERVER_PID"

wait "$CLIENT_PID" || { echo "FAIL: client saw no typed reply"; cat "$TMP/client.out"; cat "$TMP/serve.log"; exit 1; }
grep -q "reply_code=" "$TMP/client.out" || { echo "FAIL: no reply code"; exit 1; }

# The server must exit 0 (clean drain), not die to the signal.
SERVER_RC=0
wait "$SERVER_PID" || SERVER_RC=$?
if [ "$SERVER_RC" -ne 0 ]; then
  echo "FAIL: server exited $SERVER_RC (wanted 0)"; cat "$TMP/serve.log"; exit 1
fi
grep -q "drained" "$TMP/serve.log" || { echo "FAIL: no drain announcement"; cat "$TMP/serve.log"; exit 1; }

# Metrics flushed on the way out.
[ -s "$METRICS" ] || { echo "FAIL: metrics file missing/empty after drain"; exit 1; }
grep -q "pygb.metrics" "$METRICS" || { echo "FAIL: metrics file not a pygb.metrics snapshot"; exit 1; }

# New work after drain: connect must fail (listener closed) — a typed
# shutting_down would also have been acceptable mid-drain.
if python3 - "$SOCK" <<'PY' 2>/dev/null
import socket, sys
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.settimeout(1.0)
s.connect(sys.argv[1])
PY
then
  echo "FAIL: server still accepting after drain"; exit 1
fi

echo "PASS: typed reply ($(cat "$TMP/client.out")), exit 0, metrics flushed"
