// Tests: the §VIII future-work features implemented as extensions —
// direct file loading, zero-copy container adoption, and JIT-compiled
// user-defined operators.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "io/coo_text.hpp"
#include "io/matrix_market.hpp"
#include "pygb/jit/compiler.hpp"
#include "pygb/pygb.hpp"

namespace {

using namespace pygb;  // NOLINT

class TempFile {
 public:
  explicit TempFile(const std::string& suffix)
      : path_((std::filesystem::temp_directory_path() /
               ("pygb_ext_test_" + std::to_string(::getpid()) + suffix))
                  .string()) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(DirectLoad, TripletTextFile) {
  TempFile f(".txt");
  io::Coo coo;
  coo.nrows = 4;
  coo.ncols = 4;
  coo.rows = {0, 2};
  coo.cols = {1, 3};
  coo.vals = {1.5, 2.5};
  io::write_coo_text(f.path(), coo);

  Matrix m = Matrix::from_file(f.path());
  EXPECT_EQ(m.nrows(), 4u);
  EXPECT_EQ(m.nvals(), 2u);
  EXPECT_DOUBLE_EQ(m.get(2, 3), 2.5);
}

TEST(DirectLoad, MatrixMarketFile) {
  TempFile f(".mtx");
  {
    std::ofstream out(f.path());
    out << "%%MatrixMarket matrix coordinate real general\n"
        << "3 3 1\n"
        << "2 3 7.0\n";
  }
  Matrix m = Matrix::from_file(f.path(), DType::kInt32);
  EXPECT_EQ(m.dtype(), DType::kInt32);
  EXPECT_EQ(m.get_element(1, 2).to_int64(), 7);
}

TEST(DirectLoad, MatchesListPathResult) {
  // The fast loader and the boxed "Python list" path must agree (Fig. 11's
  // two ingestion pipelines produce the same container).
  TempFile f(".txt");
  io::Coo coo;
  coo.nrows = 5;
  coo.ncols = 5;
  coo.rows = {0, 1, 4};
  coo.cols = {4, 2, 0};
  coo.vals = {1, 2, 3};
  io::write_coo_text(f.path(), coo);

  Matrix fast = Matrix::from_file(f.path());
  Matrix slow = Matrix::from_coo(
      io::pylists_to_coo(io::read_file_as_pylists(f.path())));
  EXPECT_TRUE(fast.equals(slow));
}

TEST(Adopt, MatrixTakesOwnershipWithoutCopy) {
  gbtl::Matrix<std::int32_t> native(3, 3);
  native.setElement(1, 2, 42);
  Matrix m = Matrix::adopt(std::move(native));
  EXPECT_EQ(m.dtype(), DType::kInt32);
  EXPECT_EQ(m.nvals(), 1u);
  EXPECT_EQ(m.get_element(1, 2).to_int64(), 42);
  // The adopted container is fully operational in the DSL.
  Matrix c(3, 3, DType::kInt32);
  c[None] = m + m;
  EXPECT_EQ(c.get_element(1, 2).to_int64(), 84);
}

TEST(Adopt, VectorTakesOwnership) {
  gbtl::Vector<double> native(4);
  native.setElement(0, 2.5);
  Vector v = Vector::adopt(std::move(native));
  EXPECT_EQ(v.dtype(), DType::kFP64);
  EXPECT_DOUBLE_EQ(v.get(0), 2.5);
  EXPECT_DOUBLE_EQ(reduce(v).to_double(), 2.5);
}

// --- user-defined operators (JIT required) ---------------------------------

class UserOps : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& reg = jit::Registry::instance();
    saved_mode_ = reg.mode();
    if (!jit::compiler_available()) {
      GTEST_SKIP() << "no C++ compiler; user-defined ops need the JIT";
    }
    // User-defined operators are C++ snippets compiled into the kernel:
    // pin auto mode so a forced PYGB_JIT_MODE=static|interp environment
    // can't make them unservable (tests that probe specific modes set
    // their own and restore).
    reg.set_mode(jit::Mode::kAuto);
  }
  void TearDown() override {
    jit::Registry::instance().set_mode(saved_mode_);
  }

  jit::Mode saved_mode_{};
};

TEST_F(UserOps, NameValidation) {
  EXPECT_THROW(UserBinaryOp("bad name", "a + b"), std::invalid_argument);
  EXPECT_THROW(UserBinaryOp("1leading", "a + b"), std::invalid_argument);
  EXPECT_THROW(UserBinaryOp("ok", ""), std::invalid_argument);
  EXPECT_NO_THROW(UserBinaryOp("snake_case_2", "a + b"));
}

TEST_F(UserOps, SaturatingAddBinary) {
  UserBinaryOp sat_add("sat_add_t1", "a + b > 100 ? C(100) : C(a + b)");
  Vector u({60, 10}, DType::kInt64);
  Vector v({70, 20}, DType::kInt64);
  Vector w(2, DType::kInt64);
  w[None] = ewise_add(u, v, sat_add);
  EXPECT_EQ(w.get_element(0).to_int64(), 100);  // saturated
  EXPECT_EQ(w.get_element(1).to_int64(), 30);
}

TEST_F(UserOps, UnionVsIntersectionStructure) {
  UserBinaryOp diff2("abs_diff_t2", "a > b ? a - b : b - a");
  Matrix a(2, 2, DType::kInt64);
  a.set(0, 0, 7.0);
  Matrix b(2, 2, DType::kInt64);
  b.set(0, 0, 3.0);
  b.set(1, 1, 5.0);
  Matrix sum(2, 2, DType::kInt64), prod(2, 2, DType::kInt64);
  sum[None] = ewise_add(a, b, diff2);
  prod[None] = ewise_mult(a, b, diff2);
  EXPECT_EQ(sum.nvals(), 2u);   // union
  EXPECT_EQ(prod.nvals(), 1u);  // intersection
  EXPECT_EQ(sum.get_element(0, 0).to_int64(), 4);
  EXPECT_EQ(sum.get_element(1, 1).to_int64(), 5);
}

TEST_F(UserOps, UnaryClampAndSquare) {
  UserUnaryOp square("square_t3", "a * a");
  Vector u({2, 3, 4});
  Vector w(3);
  w[None] = apply(u, square);
  EXPECT_DOUBLE_EQ(w.get(1), 9.0);

  UserUnaryOp clamp01("clamp01_t3", "a < 0 ? C(0) : (a > 1 ? C(1) : C(a))");
  Vector x({-2.0, 0.5, 7.0});
  Vector y(3);
  y[None] = apply(x, clamp01);
  EXPECT_DOUBLE_EQ(y.get(0), 0.0);
  EXPECT_DOUBLE_EQ(y.get(1), 0.5);
  EXPECT_DOUBLE_EQ(y.get(2), 1.0);
}

TEST_F(UserOps, WorksWithMasksAndContextReplace) {
  UserBinaryOp take_max("take_max_t4", "a > b ? a : b");
  Vector u({1, 9, 1});
  Vector v({5, 5, 5});
  Vector mask(3, DType::kBool);
  mask.set(1, Scalar(true));
  Vector w({7, 7, 7});
  {
    With ctx(Replace);
    w[mask] = ewise_add(u, v, take_max);
  }
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_DOUBLE_EQ(w.get(1), 9.0);
}

TEST_F(UserOps, InterpBackendRefusesUserOps) {
  auto& reg = jit::Registry::instance();
  const auto saved = reg.mode();
  reg.set_mode(jit::Mode::kInterp);
  UserBinaryOp op("refused_t5", "a + b");
  Vector u({1, 2}), v({3, 4}), w(2);
  EXPECT_THROW((w[None] = ewise_add(u, v, op)), jit::NoKernelError);
  reg.set_mode(jit::Mode::kStatic);
  EXPECT_THROW((w[None] = ewise_add(u, v, op)), jit::NoKernelError);
  reg.set_mode(saved);
}

TEST_F(UserOps, BadExpressionSurfacesCompilerLog) {
  UserBinaryOp broken("broken_t6", "this is not C++ at all @@@");
  Vector u({1, 2}), v({3, 4}), w(2);
  try {
    w[None] = ewise_add(u, v, broken);
    FAIL() << "expected NoKernelError";
  } catch (const jit::NoKernelError& e) {
    EXPECT_NE(std::string(e.what()).find("compilation failed"),
              std::string::npos);
  }
}

TEST_F(UserOps, EditedBodyCompilesFreshModule) {
  // Same operator name, different expression: the dispatch key includes a
  // body hash, so the edited op must NOT reuse the stale cached module.
  Vector u({10, 20}), v({1, 2}), w(2);
  UserBinaryOp first("edited_t8", "a + b");
  w[None] = ewise_add(u, v, first);
  EXPECT_DOUBLE_EQ(w.get(0), 11.0);
  UserBinaryOp second("edited_t8", "a - b");
  w[None] = ewise_add(u, v, second);
  EXPECT_DOUBLE_EQ(w.get(0), 9.0);
}

TEST_F(UserOps, ModuleCachedAcrossCalls) {
  auto& reg = jit::Registry::instance();
  reg.reset_stats();
  UserBinaryOp op("cached_t7", "a * 10 + b");
  Vector u({1, 2}), v({3, 4}), w(2);
  w[None] = ewise_add(u, v, op);
  const auto compiles_first = reg.stats().compiles;
  w[None] = ewise_add(u, v, op);
  EXPECT_EQ(reg.stats().compiles, compiles_first);  // cache hit second time
  EXPECT_DOUBLE_EQ(w.get(0), 13.0);
}

}  // namespace
