// Tests: fused chains (§V's planned lazy-evaluation feature) — one
// compiled module per recorded statement sequence must reproduce the
// step-by-step DSL exactly, cache across invocations, and validate its
// bindings. JIT-gated.
#include <gtest/gtest.h>

#include "algorithms/pagerank.hpp"
#include "generators/erdos_renyi.hpp"
#include "pygb/jit/compiler.hpp"
#include "pygb/pygb.hpp"

namespace {

using namespace pygb;  // NOLINT

class FusedChainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& reg = jit::Registry::instance();
    saved_mode_ = reg.mode();
    if (!jit::compiler_available()) {
      GTEST_SKIP() << "no C++ compiler; fused chains need the JIT";
    }
    // Chains are compiled units: pin the mode so a forced
    // PYGB_JIT_MODE=static|interp environment can't make them unservable.
    reg.set_mode(jit::Mode::kJit);
  }
  void TearDown() override {
    jit::Registry::instance().set_mode(saved_mode_);
  }

  jit::Mode saved_mode_{};
};

TEST_F(FusedChainTest, SingleStatementMatchesDsl) {
  FusedChain chain("single_mxv");
  const int w = chain.vector_param("w");
  const int a = chain.matrix_param("a");
  const int u = chain.vector_param("u");
  chain.mxv(w, a, u, ArithmeticSemiring());

  Matrix graph({{1, 2}, {3, 4}});
  Vector x({5, 6});
  Vector fused_out(2);
  chain.run({fused_out, graph, x});

  Vector dsl_out(2);
  dsl_out[None] = matmul(graph, x);
  EXPECT_TRUE(fused_out.equals(dsl_out));
}

TEST_F(FusedChainTest, PageRankIterationBodyMatchesNative) {
  // Fuse the Fig. 7 iteration body (vxm + teleport apply + delta compute +
  // squared-error reduce) into one module and compare one iteration
  // against hand-executed GBTL calls.
  const gbtl::IndexType n = 64;
  auto el = gen::paper_graph(n, 5, /*symmetric=*/true);
  Matrix graph = Matrix::from_edge_list(el);

  // Prepare the normalized, damped matrix exactly as PageRank does.
  Matrix m(n, n, DType::kFP64);
  m[None] = graph;
  normalize_rows(m);
  {
    With ctx(UnaryOp("Times", 0.85));
    m[None] = apply(m);
  }

  FusedChain iter("pr_iteration");
  const int rank = iter.vector_param("rank");
  const int mat = iter.matrix_param("m");
  const int new_rank = iter.vector_param("new_rank");
  const int delta = iter.vector_param("delta");
  const int teleport = iter.scalar_param("teleport");
  iter.vxm(new_rank, rank, mat, ArithmeticSemiring(),
           Accumulator("Second"));
  iter.apply_bound(new_rank, new_rank, BinaryOp("Plus"), teleport);
  iter.ewise_add(delta, rank, new_rank, BinaryOp("Minus"));
  iter.ewise_mult(delta, delta, delta, BinaryOp("Times"));
  iter.reduce(delta, PlusMonoid());

  const double tel = 0.15 / static_cast<double>(n);
  Vector rank_v(n, DType::kFP64);
  rank_v[Slice::all()] = 1.0 / static_cast<double>(n);
  Vector new_rank_v(n, DType::kFP64);
  Vector delta_v(n, DType::kFP64);
  const auto result =
      iter.run({rank_v, m, new_rank_v, delta_v, tel});

  // Mirror with direct GBTL calls.
  gbtl::Vector<double> g_rank(n), g_new(n), g_delta(n);
  gbtl::assign(g_rank, gbtl::NoMask{}, gbtl::NoAccumulate{},
               1.0 / static_cast<double>(n), gbtl::AllIndices{});
  gbtl::vxm(g_new, gbtl::NoMask{}, gbtl::Second<double>{},
            gbtl::ArithmeticSemiring<double>{}, g_rank, m.typed<double>());
  gbtl::apply(g_new, gbtl::NoMask{}, gbtl::NoAccumulate{},
              gbtl::BinaryOpBind2nd<double, gbtl::Plus<double>>(tel),
              g_new);
  gbtl::eWiseAdd(g_delta, gbtl::NoMask{}, gbtl::NoAccumulate{},
                 gbtl::Minus<double>{}, g_rank, g_new);
  gbtl::eWiseMult(g_delta, gbtl::NoMask{}, gbtl::NoAccumulate{},
                  gbtl::Times<double>{}, g_delta, g_delta);
  double g_err = 0;
  gbtl::reduce(g_err, gbtl::NoAccumulate{}, gbtl::PlusMonoid<double>{},
               g_delta);

  EXPECT_TRUE(new_rank_v.typed<double>() == g_new);
  EXPECT_TRUE(delta_v.typed<double>() == g_delta);
  EXPECT_NEAR(result.scalar.to_double(), g_err, 1e-15);
}

TEST_F(FusedChainTest, FullPageRankViaRepeatedChainRuns) {
  // Drive the fused iteration body in a host loop to convergence and
  // compare the final ranks against the native algorithm.
  const gbtl::IndexType n = 48;
  auto el = gen::paper_graph(n, 9, /*symmetric=*/true);
  Matrix graph = Matrix::from_edge_list(el);
  Matrix m(n, n, DType::kFP64);
  m[None] = graph;
  normalize_rows(m);
  {
    With ctx(UnaryOp("Times", 0.85));
    m[None] = apply(m);
  }

  FusedChain iter("pr_iteration_full");
  const int rank = iter.vector_param("rank");
  const int mat = iter.matrix_param("m");
  const int new_rank = iter.vector_param("new_rank");
  const int delta = iter.vector_param("delta");
  const int teleport = iter.scalar_param("teleport");
  iter.vxm(new_rank, rank, mat, ArithmeticSemiring(),
           Accumulator("Second"));
  iter.apply_bound(new_rank, new_rank, BinaryOp("Plus"), teleport);
  iter.ewise_add(delta, rank, new_rank, BinaryOp("Minus"));
  iter.ewise_mult(delta, delta, delta, BinaryOp("Times"));
  iter.reduce(delta, PlusMonoid());

  const double nd = static_cast<double>(n);
  const double tel = 0.15 / nd;
  Vector rank_v(n, DType::kFP64);
  rank_v[Slice::all()] = 1.0 / nd;
  Vector new_rank_v(n, DType::kFP64);
  Vector delta_v(n, DType::kFP64);

  for (int k = 0; k < 100000; ++k) {
    const auto r = iter.run({rank_v, m, new_rank_v, delta_v, tel});
    rank_v[Slice::all()] = new_rank_v;
    if (r.scalar.to_double() / nd < 1e-5) break;
  }
  // Final never-ranked fill, matching Fig. 8.
  new_rank_v[Slice::all()] = tel;
  {
    With ctx(BinaryOp("Plus"));
    rank_v[~rank_v] = rank_v + new_rank_v;
  }

  gbtl::Vector<double> nat(n);
  algo::page_rank(graph.typed<double>(), nat);
  for (gbtl::IndexType v = 0; v < n; ++v) {
    EXPECT_NEAR(rank_v.get(v), nat.extractElement(v), 1e-12);
  }
}

TEST_F(FusedChainTest, OneCompileManyRuns) {
  auto& reg = jit::Registry::instance();
  FusedChain chain("cache_check");
  const int w = chain.vector_param("w");
  const int u = chain.vector_param("u");
  const int v = chain.vector_param("v");
  chain.ewise_add(w, u, v, BinaryOp("Plus"));
  chain.ewise_mult(w, w, w, BinaryOp("Times"));

  Vector a({1, 2}), b({3, 4}), out(2);
  reg.reset_stats();
  chain.run({out, a, b});
  const auto after_first = reg.stats().compiles;
  for (int k = 0; k < 10; ++k) chain.run({out, a, b});
  EXPECT_EQ(reg.stats().compiles, after_first);
  EXPECT_DOUBLE_EQ(out.get(0), 16.0);  // (1+3)^2
}

TEST_F(FusedChainTest, TransposedMatrixOperand) {
  FusedChain chain("sssp_relax");
  const int path = chain.vector_param("path");
  const int g = chain.matrix_param("g");
  chain.mxv(path, g, path, MinPlusSemiring(), Accumulator("Min"),
            /*a_transposed=*/true);

  Matrix graph(3, 3, DType::kFP64);
  graph.set(0, 1, 2.0);
  graph.set(1, 2, 3.0);
  Vector p(3, DType::kFP64);
  p.set(0, 0.0);
  chain.run({p, graph});  // one relaxation
  EXPECT_DOUBLE_EQ(p.get(1), 2.0);
  chain.run({p, graph});
  EXPECT_DOUBLE_EQ(p.get(2), 5.0);
}

TEST_F(FusedChainTest, MxmAndApplyStatements) {
  // Matrix statements: square the adjacency, halve it, fill-and-count.
  FusedChain chain("matrix_pipeline");
  const int a = chain.matrix_param("a");
  const int c = chain.matrix_param("c");
  const int half = chain.scalar_param("half");
  const int counts = chain.vector_param("counts");
  const int fill = chain.scalar_param("fill");
  chain.mxm(c, a, a, ArithmeticSemiring());
  chain.apply_bound(c, c, BinaryOp("Times"), half);
  chain.assign_constant(counts, fill);
  chain.reduce(counts, PlusMonoid());

  Matrix m({{0, 2}, {2, 0}});
  Matrix out(2, 2);
  Vector cnt(2);
  const auto r = chain.run({m, out, 0.5, cnt, 3.0});
  EXPECT_DOUBLE_EQ(out.get(0, 0), 2.0);  // (2*2) * 0.5
  EXPECT_DOUBLE_EQ(cnt.get(1), 3.0);
  EXPECT_DOUBLE_EQ(r.scalar.to_double(), 6.0);
}

TEST_F(FusedChainTest, PlainUnaryStatement) {
  FusedChain chain("negate_chain");
  const int w = chain.vector_param("w");
  const int u = chain.vector_param("u");
  chain.apply(w, u, UnaryOpName::kAdditiveInverse);
  Vector in({1, 2, 3}), out(3);
  chain.run({out, in});
  EXPECT_DOUBLE_EQ(out.get(2), -3.0);
}

TEST_F(FusedChainTest, BindingValidation) {
  FusedChain chain("validation");
  const int w = chain.vector_param("w");
  const int a = chain.matrix_param("a");
  chain.mxv(w, a, w, ArithmeticSemiring());

  Matrix m({{1, 0}, {0, 1}});
  Vector v({1, 2});
  EXPECT_THROW(chain.run({v}), std::invalid_argument);  // wrong arity
  EXPECT_THROW(chain.run({m, m}), std::invalid_argument);  // kind mismatch
  Vector wrong_dtype({1, 2}, DType::kFP32);
  EXPECT_THROW(chain.run({wrong_dtype, m}), std::invalid_argument);
}

TEST_F(FusedChainTest, StatementValidation) {
  FusedChain chain("stmt_validation");
  const int w = chain.vector_param("w");
  const int a = chain.matrix_param("a");
  EXPECT_THROW(chain.mxv(a, a, w, ArithmeticSemiring()),
               std::invalid_argument);  // matrix as mxv target
  EXPECT_THROW(chain.mxv(w, a, 99, ArithmeticSemiring()),
               std::out_of_range);
  EXPECT_THROW(FusedChain("bad name"), std::invalid_argument);
}

TEST_F(FusedChainTest, InterpAndStaticBackendsRefuseChains) {
  FusedChain chain("refused_chain");
  const int w = chain.vector_param("w");
  const int u = chain.vector_param("u");
  chain.ewise_add(w, u, u, BinaryOp("Plus"));
  Vector a({1, 2}), out(2);

  auto& reg = jit::Registry::instance();
  const auto saved = reg.mode();
  reg.set_mode(jit::Mode::kInterp);
  EXPECT_THROW(chain.run({out, a}), jit::NoKernelError);
  reg.set_mode(jit::Mode::kStatic);
  EXPECT_THROW(chain.run({out, a}), jit::NoKernelError);
  reg.set_mode(saved);
}

TEST_F(FusedChainTest, SignatureDistinguishesChains) {
  FusedChain c1("sig_a");
  const int w1 = c1.vector_param("w");
  const int u1 = c1.vector_param("u");
  c1.ewise_add(w1, u1, u1, BinaryOp("Plus"));

  FusedChain c2("sig_a");
  const int w2 = c2.vector_param("w");
  const int u2 = c2.vector_param("u");
  c2.ewise_add(w2, u2, u2, BinaryOp("Min"));

  EXPECT_NE(c1.signature(), c2.signature());
  EXPECT_EQ(c1.num_statements(), 1u);
  EXPECT_EQ(c1.num_params(), 2u);
}

}  // namespace
