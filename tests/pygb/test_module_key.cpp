// Tests: OpRequest canonical keys — stability and sensitivity to every
// compile-time-relevant field (and insensitivity to runtime-only values).
#include <gtest/gtest.h>

#include "pygb/jit/module_key.hpp"
#include "pygb/jit/registry.hpp"

namespace {

using namespace pygb;       // NOLINT
using namespace pygb::jit;  // NOLINT

OpRequest base_mxm() {
  OpRequest r;
  r.func = func::kMxM;
  r.c = DType::kFP64;
  r.a = DType::kFP64;
  r.b = DType::kFP64;
  r.semiring = ArithmeticSemiring();
  return r;
}

TEST(ModuleKey, DeterministicForEqualRequests) {
  EXPECT_EQ(base_mxm().key(), base_mxm().key());
}

TEST(ModuleKey, SensitiveToFunc) {
  auto a = base_mxm();
  auto b = base_mxm();
  b.func = func::kMxV;
  EXPECT_NE(a.key(), b.key());
}

TEST(ModuleKey, SensitiveToEveryDtypeSlot) {
  auto a = base_mxm();
  auto b = base_mxm();
  b.c = DType::kFP32;
  EXPECT_NE(a.key(), b.key());
  b = base_mxm();
  b.a = DType::kInt64;
  EXPECT_NE(a.key(), b.key());
  b = base_mxm();
  b.b = DType::kBool;
  EXPECT_NE(a.key(), b.key());
}

TEST(ModuleKey, SensitiveToTransposesAndMask) {
  auto a = base_mxm();
  auto b = base_mxm();
  b.a_transposed = true;
  EXPECT_NE(a.key(), b.key());
  b = base_mxm();
  b.b_transposed = true;
  EXPECT_NE(a.key(), b.key());
  b = base_mxm();
  b.mask = MaskKind::kMatrix;
  EXPECT_NE(a.key(), b.key());
  auto c = base_mxm();
  c.mask = MaskKind::kMatrixComp;
  EXPECT_NE(b.key(), c.key());
}

TEST(ModuleKey, SensitiveToOperators) {
  auto a = base_mxm();
  auto b = base_mxm();
  b.semiring = MinPlusSemiring();
  EXPECT_NE(a.key(), b.key());
  auto c = base_mxm();
  c.accum = BinaryOp("Plus");
  EXPECT_NE(a.key(), c.key());
  auto d = base_mxm();
  d.accum = BinaryOp("Min");
  EXPECT_NE(c.key(), d.key());
}

TEST(ModuleKey, BoundUnaryValueIsRuntimeOnly) {
  OpRequest a;
  a.func = func::kApplyV;
  a.c = DType::kFP64;
  a.a = DType::kFP64;
  a.unary_op = UnaryOp("Times", 0.85);
  OpRequest b = a;
  b.unary_op = UnaryOp("Times", 0.25);
  // Same module: the constant travels in KernelArgs.
  EXPECT_EQ(a.key(), b.key());
  OpRequest c = a;
  c.unary_op = UnaryOp("Plus", 0.85);
  EXPECT_NE(a.key(), c.key());
}

TEST(ModuleKey, CustomIdentityDistinguishesMonoids) {
  OpRequest a;
  a.func = func::kReduceVS;
  a.c = DType::kInt64;
  a.a = DType::kInt64;
  a.monoid = Monoid(BinaryOp("Plus"), MonoidIdentity(Scalar(0)));
  OpRequest b = a;
  b.monoid = Monoid(BinaryOp("Plus"), MonoidIdentity(Scalar(5)));
  EXPECT_NE(a.key(), b.key());
}

TEST(ModuleKey, HashIsStableAndSpreads) {
  const auto k1 = base_mxm().key();
  EXPECT_EQ(key_hash(k1), key_hash(k1));
  auto r2 = base_mxm();
  r2.c = DType::kFP32;
  EXPECT_NE(key_hash(k1), key_hash(r2.key()));
  // FNV-1a of the empty string (spec constant) — guards accidental
  // algorithm changes that would orphan existing disk caches.
  EXPECT_EQ(key_hash(""), 0xcbf29ce484222325ULL);
}

TEST(ModuleKey, MaskKindNames) {
  EXPECT_STREQ(to_string(MaskKind::kNone), "none");
  EXPECT_STREQ(to_string(MaskKind::kMatrix), "mat");
  EXPECT_STREQ(to_string(MaskKind::kMatrixComp), "matc");
  EXPECT_STREQ(to_string(MaskKind::kVector), "vec");
  EXPECT_STREQ(to_string(MaskKind::kVectorComp), "vecc");
}

}  // namespace
