// Tests: the dynamic-compilation pipeline of Fig. 9 — source generation,
// g++ invocation, dlopen, and the three cache levels. Skipped gracefully
// when no compiler is reachable.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "pygb/jit/codegen.hpp"
#include "pygb/jit/compiler.hpp"
#include "pygb/pygb.hpp"

namespace {

using namespace pygb;       // NOLINT
using namespace pygb::jit;  // NOLINT

class JitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!compiler_available()) {
      GTEST_SKIP() << "no C++ compiler reachable; JIT tests skipped";
    }
    auto& reg = Registry::instance();
    saved_mode_ = reg.mode();
    saved_dir_ = reg.cache_dir();
    cache_dir_ = (std::filesystem::temp_directory_path() /
                  ("pygb_jit_test_" + std::to_string(::getpid())))
                     .string();
    reg.set_cache_dir(cache_dir_);
    reg.clear_disk_cache();
    reg.set_mode(Mode::kJit);
    reg.reset_stats();
  }
  void TearDown() override {
    auto& reg = Registry::instance();
    reg.clear_disk_cache();
    reg.set_cache_dir(saved_dir_);
    reg.set_mode(saved_mode_);
  }
  Mode saved_mode_;
  std::string saved_dir_;
  std::string cache_dir_;
};

TEST_F(JitTest, ColdCompileWarmMemoryThenDisk) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix c(2, 2);
  auto& reg = Registry::instance();

  c[None] = matmul(a, a);  // cold: generate + compile + dlopen
  auto st = reg.stats();
  EXPECT_EQ(st.compiles, 1u);
  EXPECT_GT(st.compile_seconds, 0.0);
  EXPECT_DOUBLE_EQ(c.get(0, 0), 7.0);

  c[None] = matmul(a, a);  // warm: in-memory module cache
  st = reg.stats();
  EXPECT_EQ(st.compiles, 1u);
  EXPECT_EQ(st.memory_hits, 1u);

  reg.clear_memory_cache();
  c[None] = matmul(a, a);  // disk: .so found and dlopen'd
  st = reg.stats();
  EXPECT_EQ(st.compiles, 1u);
  EXPECT_EQ(st.disk_hits, 1u);
}

TEST_F(JitTest, JitResultMatchesStatic) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix b({{0, 1}, {1, 1}});
  Matrix cj(2, 2);
  {
    With ctx(MinPlusSemiring());
    cj[None] = matmul(a, b);
  }
  Registry::instance().set_mode(Mode::kStatic);
  Matrix cs(2, 2);
  {
    With ctx(MinPlusSemiring());
    cs[None] = matmul(a, b);
  }
  Registry::instance().set_mode(Mode::kJit);
  EXPECT_TRUE(cj.equals(cs));
}

TEST_F(JitTest, CompilesExoticDtypeCombination) {
  // uint16 is outside the static set: only reachable via JIT (or interp),
  // and the JIT keeps exact integer semantics.
  Matrix a(2, 2, DType::kUInt16);
  a.set(0, 0, 300.0);
  a.set(0, 1, 2.0);
  a.set(1, 0, 5.0);
  Matrix c(2, 2, DType::kUInt16);
  c[None] = matmul(a, a);
  EXPECT_EQ(c.get_element(0, 0).to_int64(), 300 * 300 + 2 * 5 - 65536);
}

TEST_F(JitTest, CustomMonoidIdentityCodegen) {
  // A monoid with a non-canonical identity value requires an emitted
  // module-local identity provider.
  Vector u(3, DType::kInt64);
  u.set(0, 2.0);
  u.set(2, 3.0);
  const Monoid weird(BinaryOp("Plus"), MonoidIdentity(Scalar(100)));
  const auto r = reduce(u, weird);
  EXPECT_EQ(r.to_int64(), 105);  // 100 + 2 + 3
}

TEST_F(JitTest, BoundConstantSharedAcrossValues) {
  // Different bound constants reuse one compiled module (the value is a
  // runtime argument) — exactly one compile for both calls.
  Vector u({2, 4});
  Vector w(2);
  Registry::instance().reset_stats();
  {
    With ctx(UnaryOp("Times", 0.5));
    w[None] = apply(u);
  }
  EXPECT_DOUBLE_EQ(w.get(0), 1.0);
  {
    With ctx(UnaryOp("Times", 10.0));
    w[None] = apply(u);
  }
  EXPECT_DOUBLE_EQ(w.get(0), 20.0);
  EXPECT_EQ(Registry::instance().stats().compiles, 1u);
}

TEST_F(JitTest, GeneratedSourceMentionsConcreteTypes) {
  OpRequest req;
  req.func = func::kMxM;
  req.c = DType::kFP32;
  req.a = DType::kInt8;
  req.b = DType::kFP32;
  req.b_transposed = true;
  req.mask = MaskKind::kMatrixComp;
  req.semiring = MinPlusSemiring();
  req.accum = BinaryOp("Max");
  const std::string src = generate_source(req);
  EXPECT_NE(src.find("run_mxm"), std::string::npos);
  EXPECT_NE(src.find("float"), std::string::npos);
  EXPECT_NE(src.find("int8_t"), std::string::npos);
  EXPECT_NE(src.find("gbtl::Min"), std::string::npos);
  EXPECT_NE(src.find("IdMaxLimit"), std::string::npos);
  EXPECT_NE(src.find("MaskKind::kMatrixComp"), std::string::npos);
  EXPECT_NE(src.find("gbtl::Max<float>"), std::string::npos);
  EXPECT_NE(src.find("extern \"C\""), std::string::npos);
}

TEST_F(JitTest, CodegenRejectsUnknownFunc) {
  OpRequest req;
  req.func = "frobnicate";
  EXPECT_THROW(generate_source(req), std::invalid_argument);
}

TEST_F(JitTest, WholeAlgorithmViaJit) {
  // An algorithm entry point not in the static set: float BFS levels.
  Matrix g(3, 3, DType::kFP32);
  g.set(0, 1, 1.0);
  g.set(1, 2, 1.0);
  Vector frontier(3, DType::kBool);
  frontier.set(0, Scalar(true));
  Vector levels(3, DType::kInt32);
  const auto depth = detail::dispatch_algo_bfs(g, frontier, levels);
  EXPECT_EQ(depth, 3u);
  EXPECT_EQ(levels.get_element(2).to_int64(), 3);
}

TEST(JitCompiler, ReportsCommandAndIncludeDir) {
  EXPECT_FALSE(compiler_command().empty());
  if (compiler_available()) {
    EXPECT_FALSE(source_include_dir().empty());
  }
}

TEST(JitCompiler, FailedCompileReportsLog) {
  if (!compiler_available()) GTEST_SKIP();
  const auto dir = std::filesystem::temp_directory_path();
  const auto src = dir / "pygb_bad_module.cpp";
  {
    std::ofstream out(src);
    out << "this is not C++\n";
  }
  const auto result =
      compile_module(src.string(), (dir / "pygb_bad_module.so").string());
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.log.empty());
  std::filesystem::remove(src);
}

}  // namespace
