// Tests: deferred expressions — operator capture at construction (§IV),
// evaluation via terminating operations, result dtype/shape inference, and
// the C = expr (rebind) vs C[None] = expr (in-place) distinction.
#include <gtest/gtest.h>

#include "pygb/pygb.hpp"

namespace {

using namespace pygb;  // NOLINT

// DSL-semantics tests sweep operator/dtype combinations outside the
// curated static kernel set: pin auto mode (static → jit → interp ladder)
// so a forced PYGB_JIT_MODE=static environment can't make them unservable.
class Expr : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& reg = jit::Registry::instance();
    saved_mode_ = reg.mode();
    reg.set_mode(jit::Mode::kAuto);
  }
  void TearDown() override {
    jit::Registry::instance().set_mode(saved_mode_);
  }

  jit::Mode saved_mode_{};
};

TEST_F(Expr, MatmulCapturesSemiringAtConstruction) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix b({{1, 0}, {0, 1}});
  // Build the expression under MinPlus, evaluate it outside the block: the
  // captured operator must win (the paper's expression-object capture).
  MatrixExpr expr = [&] {
    With ctx(MinPlusSemiring());
    return matmul(a, b);
  }();
  Matrix c(2, 2);
  c[None] = expr;
  // MinPlus with identity-ish b: c(0,0) = min(1+1, skip) over stored pairs:
  // a(0,0)*b(0,0) = 1+1 = 2 only (b(1,0) absent).
  EXPECT_DOUBLE_EQ(c.get(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c.get(0, 1), 3.0);  // a(0,1) + b(1,1) = 2 + 1
}

TEST_F(Expr, DefaultSemiringIsArithmetic) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix b({{5, 6}, {7, 8}});
  Matrix c(2, 2);
  c[None] = matmul(a, b);
  EXPECT_DOUBLE_EQ(c.get(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.get(1, 1), 50.0);
}

TEST_F(Expr, PlusIsEWiseAddStarIsEWiseMult) {
  Matrix a({{1, 0}, {0, 2}});
  Matrix b({{3, 4}, {0, 5}});
  Matrix sum(2, 2), prod(2, 2);
  sum[None] = a + b;
  prod[None] = a * b;
  EXPECT_EQ(sum.nvals(), 3u);
  EXPECT_DOUBLE_EQ(sum.get(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(sum.get(0, 1), 4.0);
  EXPECT_EQ(prod.nvals(), 2u);
  EXPECT_DOUBLE_EQ(prod.get(1, 1), 10.0);
}

TEST_F(Expr, ContextOpGovernsEwise) {
  // Fig. 7: with gb.BinaryOp("Minus"): delta[None] = page_rank + new_rank.
  Vector u({10, 20});
  Vector v({3, 4});
  Vector d(2);
  {
    With ctx(BinaryOp("Minus"));
    d[None] = u + v;
  }
  EXPECT_DOUBLE_EQ(d.get(0), 7.0);
  EXPECT_DOUBLE_EQ(d.get(1), 16.0);
}

TEST_F(Expr, RebindVsInPlace) {
  Matrix a({{1, 0}, {0, 1}});
  Matrix c(2, 2);
  Matrix alias = c;
  // C[None] = expr mutates in place: the alias observes the result.
  c[None] = a + a;
  EXPECT_TRUE(c.same_object(alias));
  EXPECT_DOUBLE_EQ(alias.get(0, 0), 2.0);
  // C = expr rebinds to a fresh container: the alias is detached.
  c = matmul(a, a);
  EXPECT_FALSE(c.same_object(alias));
  EXPECT_DOUBLE_EQ(alias.get(0, 0), 2.0);  // alias keeps old data
  EXPECT_DOUBLE_EQ(c.get(0, 0), 1.0);
}

TEST_F(Expr, EvalCreatesCorrectShapeAndDtype) {
  Matrix a(3, 5, DType::kInt32);
  Matrix b(5, 2, DType::kInt64);
  auto e = matmul(a, b);
  Matrix c = e.eval();
  EXPECT_EQ(c.nrows(), 3u);
  EXPECT_EQ(c.ncols(), 2u);
  EXPECT_EQ(c.dtype(), DType::kInt64);  // promote(i32, i64)
}

TEST_F(Expr, TransposedOperandShapes) {
  Matrix a(3, 5);
  Matrix b(3, 2);
  Matrix c = matmul(a.T(), b).eval();  // (5x3)(3x2)
  EXPECT_EQ(c.nrows(), 5u);
  EXPECT_EQ(c.ncols(), 2u);
}

TEST_F(Expr, TransposeRoundTripMarker) {
  Matrix a(3, 5);
  // (A.T).T is A again.
  Matrix back = a.T().T();
  EXPECT_TRUE(back.same_object(a));
}

TEST_F(Expr, MxvAndVxm) {
  Matrix a({{1, 2}, {3, 4}});
  Vector u({5, 6});
  Vector w(2);
  w[None] = matmul(a, u);
  EXPECT_DOUBLE_EQ(w.get(0), 17.0);
  w[None] = matmul(u, a);
  EXPECT_DOUBLE_EQ(w.get(0), 23.0);
  w[None] = matmul(a.T(), u);  // == vxm
  EXPECT_DOUBLE_EQ(w.get(0), 23.0);
}

TEST_F(Expr, ApplyWithContextAndExplicitOp) {
  Vector u({2, 4});
  Vector w(2);
  {
    With ctx(UnaryOp("Times", 0.5));
    w[None] = apply(u);
  }
  EXPECT_DOUBLE_EQ(w.get(0), 1.0);
  w[None] = apply(u, UnaryOp("AdditiveInverse"));
  EXPECT_DOUBLE_EQ(w.get(1), -4.0);
}

TEST_F(Expr, ReduceUsesContextMonoid) {
  Matrix a({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(reduce(a).to_double(), 10.0);  // default PlusMonoid
  {
    With ctx(MaxMonoid());
    EXPECT_DOUBLE_EQ(reduce(a).to_double(), 4.0);
  }
  EXPECT_DOUBLE_EQ(reduce(a, MinMonoid()).to_double(), 1.0);
}

TEST_F(Expr, ReduceVector) {
  Vector u({1, 0, 3}, DType::kInt64);
  EXPECT_EQ(reduce(u).to_int64(), 4);
  EXPECT_EQ(reduce(u).dtype(), DType::kInt64);
}

TEST_F(Expr, ReduceRowsDeferred) {
  Matrix a({{1, 2}, {0, 0}, {3, 4}});
  Vector w(3);
  w[None] = reduce_rows(a);
  EXPECT_DOUBLE_EQ(w.get(0), 3.0);
  EXPECT_FALSE(w.has_element(1));
  EXPECT_DOUBLE_EQ(w.get(2), 7.0);
}

TEST_F(Expr, TransposedAsValue) {
  Matrix a({{1, 2}, {0, 3}});
  Matrix c(2, 2);
  c[None] = transposed(a);
  EXPECT_DOUBLE_EQ(c.get(1, 0), 2.0);
  EXPECT_FALSE(c.has_element(0, 1));
}

TEST_F(Expr, TerminatingOperationsForceEvaluation) {
  // Combining an expression with a container evaluates the expression
  // first (§IV "terminating operations").
  Matrix a({{1, 0}, {0, 1}});
  Matrix b({{2, 0}, {0, 2}});
  Matrix c(2, 2);
  c[None] = matmul(a, b) + a;  // (A·B) evaluated, then eWiseAdd
  EXPECT_DOUBLE_EQ(c.get(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(reduce(matmul(a, b)).to_double(), 4.0);
}

TEST_F(Expr, MixedDtypePromotion) {
  Matrix a({{1, 0}, {0, 1}}, DType::kInt32);
  Matrix b({{2, 0}, {0, 2}}, DType::kFP32);
  Matrix c = (a + b).eval();
  EXPECT_EQ(c.dtype(), DType::kFP32);
  EXPECT_DOUBLE_EQ(c.get(0, 0), 3.0);
}

}  // namespace
