// Tests: the with-block operator stack — nesting precedence, role-based
// resolution, accumulator fallback, and the replace flag.
#include <gtest/gtest.h>

#include "pygb/context.hpp"

namespace {

using namespace pygb;  // NOLINT

TEST(Context, EmptyStackDefaults) {
  ASSERT_EQ(context_depth(), 0u);
  EXPECT_EQ(current_semiring().key(), ArithmeticSemiring().key());
  EXPECT_EQ(current_add_op().name(), BinaryOpName::kPlus);
  EXPECT_EQ(current_mult_op().name(), BinaryOpName::kTimes);
  EXPECT_EQ(current_monoid().key(), PlusMonoid().key());
  EXPECT_FALSE(current_unary_op().is_bound());
  EXPECT_EQ(current_unary_op().unary_name(), UnaryOpName::kIdentity);
  EXPECT_FALSE(current_accumulator().has_value());
  EXPECT_FALSE(current_replace());
}

TEST(Context, GuardPushesAndPops) {
  EXPECT_EQ(context_depth(), 0u);
  {
    With ctx(MinPlusSemiring(), Accumulator("Min"));
    EXPECT_EQ(context_depth(), 2u);
  }
  EXPECT_EQ(context_depth(), 0u);
}

TEST(Context, SemiringResolution) {
  With ctx(MinPlusSemiring());
  EXPECT_EQ(current_semiring().key(), MinPlusSemiring().key());
}

TEST(Context, InnermostWins) {
  With outer(ArithmeticSemiring());
  {
    With inner(LogicalSemiring());
    EXPECT_EQ(current_semiring().key(), LogicalSemiring().key());
  }
  EXPECT_EQ(current_semiring().key(), ArithmeticSemiring().key());
}

TEST(Context, BinaryOpTakesPrecedenceOverSemiringForEwise) {
  // Fig. 7 lines 27-28: BinaryOp("Minus") inside an ArithmeticSemiring
  // block governs the + expression.
  With outer(ArithmeticSemiring());
  With inner(BinaryOp("Minus"));
  EXPECT_EQ(current_add_op().name(), BinaryOpName::kMinus);
  EXPECT_EQ(current_mult_op().name(), BinaryOpName::kMinus);
}

TEST(Context, SemiringProvidesRoleSpecificOps) {
  // A + B under a semiring uses its add op; A * B uses its multiply op.
  With ctx(MinPlusSemiring());
  EXPECT_EQ(current_add_op().name(), BinaryOpName::kMin);
  EXPECT_EQ(current_mult_op().name(), BinaryOpName::kPlus);
}

TEST(Context, MonoidProvidesItsOpForBothRoles) {
  With ctx(MaxMonoid());
  EXPECT_EQ(current_add_op().name(), BinaryOpName::kMax);
  EXPECT_EQ(current_mult_op().name(), BinaryOpName::kMax);
  EXPECT_EQ(current_monoid().key(), MaxMonoid().key());
}

TEST(Context, ReduceFindsSemiringAddMonoid) {
  With ctx(MinPlusSemiring());
  EXPECT_EQ(current_monoid().key(), MinMonoid().key());
}

TEST(Context, BareBinaryOpActsAsMonoidWhenCanonical) {
  With ctx(BinaryOp("Max"));
  EXPECT_EQ(current_monoid().key(), MaxMonoid().key());
}

TEST(Context, NonMonoidBinaryOpSkippedForReduce) {
  // Minus has no canonical identity: the monoid search skips it and falls
  // through to the outer entry.
  With outer(MinMonoid());
  With inner(BinaryOp("Minus"));
  EXPECT_EQ(current_monoid().key(), MinMonoid().key());
}

TEST(Context, ExplicitAccumulatorWins) {
  // Fig. 4a: MinPlusSemiring + Accumulator("Min").
  With ctx(MinPlusSemiring(), Accumulator("Min"));
  auto acc = current_accumulator();
  ASSERT_TRUE(acc.has_value());
  EXPECT_EQ(acc->op().name(), BinaryOpName::kMin);
}

TEST(Context, AccumulatorFallsBackToSemiringMonoid) {
  // §III: "the accumulation step will fall back to the MinMonoid from the
  // MinPlusSemiring" when the Accumulator is omitted.
  With ctx(MinPlusSemiring());
  auto acc = current_accumulator();
  ASSERT_TRUE(acc.has_value());
  EXPECT_EQ(acc->op().name(), BinaryOpName::kMin);
}

TEST(Context, AccumulatorFallsBackToMonoid) {
  With ctx(PlusMonoid());
  auto acc = current_accumulator();
  ASSERT_TRUE(acc.has_value());
  EXPECT_EQ(acc->op().name(), BinaryOpName::kPlus);
}

TEST(Context, UnaryOpResolution) {
  With ctx(UnaryOp("Times", 0.85));
  auto f = current_unary_op();
  ASSERT_TRUE(f.is_bound());
  EXPECT_EQ(f.bound_op(), BinaryOpName::kTimes);
  EXPECT_DOUBLE_EQ(f.bound_value().to_double(), 0.85);
}

TEST(Context, ReplaceFlagScoping) {
  EXPECT_FALSE(current_replace());
  {
    With ctx(Replace);
    EXPECT_TRUE(current_replace());
    {
      With inner(Merge);
      EXPECT_FALSE(current_replace());
    }
    EXPECT_TRUE(current_replace());
  }
  EXPECT_FALSE(current_replace());
}

TEST(Context, MixedEntriesResolveIndependently) {
  // Fig. 2b: with gb.LogicalSemiring, gb.Replace.
  With ctx(LogicalSemiring(), Replace);
  EXPECT_EQ(current_semiring().key(), LogicalSemiring().key());
  EXPECT_TRUE(current_replace());
}

TEST(Context, DeepNestingBehavesAsStack) {
  With a(ArithmeticSemiring());
  {
    With b(MinPlusSemiring());
    {
      With c(BinaryOp("Max"));
      EXPECT_EQ(current_semiring().key(), MinPlusSemiring().key());
      EXPECT_EQ(current_add_op().name(), BinaryOpName::kMax);
    }
    EXPECT_EQ(current_add_op().name(), BinaryOpName::kMin);
  }
  EXPECT_EQ(current_add_op().name(), BinaryOpName::kPlus);
}

}  // namespace
