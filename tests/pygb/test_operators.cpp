// Tests: runtime operator descriptors — parsing of the Fig. 6 catalogue,
// monoid identity inference, bound unary ops, and stable dispatch keys.
#include <gtest/gtest.h>

#include "pygb/operators.hpp"

namespace {

using namespace pygb;  // NOLINT

TEST(Operators, AllSeventeenBinaryNamesParse) {
  const char* names[] = {"LogicalOr", "LessThan",     "Second",
                         "LogicalAnd", "GreaterEqual", "Min",
                         "LogicalXor", "LessEqual",    "Max",
                         "Equal",      "Times",        "Plus",
                         "NotEqual",   "Div",          "Minus",
                         "GreaterThan", "First"};
  for (const char* n : names) {
    BinaryOp op(n);
    EXPECT_EQ(op.gbtl_name(), n);
  }
  EXPECT_THROW(BinaryOp("NotAnOp"), std::invalid_argument);
}

TEST(Operators, AllFourUnaryNamesParse) {
  for (const char* n : {"Identity", "AdditiveInverse",
                        "MultiplicativeInverse", "LogicalNot"}) {
    UnaryOp op{std::string(n)};
    EXPECT_FALSE(op.is_bound());
    EXPECT_EQ(op.key(), n);
  }
  EXPECT_THROW(UnaryOp("Nope"), std::invalid_argument);
}

TEST(Operators, ComparisonClassification) {
  EXPECT_TRUE(is_comparison(BinaryOpName::kEqual));
  EXPECT_TRUE(is_comparison(BinaryOpName::kLessEqual));
  EXPECT_FALSE(is_comparison(BinaryOpName::kPlus));
  EXPECT_FALSE(is_comparison(BinaryOpName::kFirst));
}

TEST(Operators, BoundUnaryOpCanonicalizesChannels) {
  // Fig. 6: UnaryOp("Times", damping) binds the 2nd operand. The bound
  // value's dtype is canonicalized to the int or float channel so that
  // modules are shared across constants.
  UnaryOp a("Times", 0.85);
  EXPECT_TRUE(a.is_bound());
  EXPECT_EQ(a.bound_op(), BinaryOpName::kTimes);
  EXPECT_EQ(a.bound_value().dtype(), DType::kFP64);
  EXPECT_DOUBLE_EQ(a.bound_value().to_double(), 0.85);

  UnaryOp b("Plus", 2);  // int literal -> i64 channel
  EXPECT_EQ(b.bound_value().dtype(), DType::kInt64);
  EXPECT_EQ(b.bound_value().to_int64(), 2);

  UnaryOp c("Plus", std::int8_t{3});
  EXPECT_EQ(c.bound_value().dtype(), DType::kInt64);
}

TEST(Operators, BoundStructuralKeyOmitsValue) {
  UnaryOp a("Times", 0.85);
  UnaryOp b("Times", 0.5);
  EXPECT_EQ(a.structural_key(), b.structural_key());
  EXPECT_NE(a.key(), b.key());
  UnaryOp c("Times", 2);
  EXPECT_NE(a.structural_key(), c.structural_key());  // channel differs
}

TEST(Operators, MonoidCanonicalIdentities) {
  EXPECT_EQ(Monoid(BinaryOp("Plus")).identity().kind(),
            MonoidIdentity::Kind::kValue);
  EXPECT_EQ(Monoid(BinaryOp("Plus")).identity().value().to_int64(), 0);
  EXPECT_EQ(Monoid(BinaryOp("Times")).identity().value().to_int64(), 1);
  EXPECT_EQ(Monoid(BinaryOp("Min")).identity().kind(),
            MonoidIdentity::Kind::kMaxLimit);
  EXPECT_EQ(Monoid(BinaryOp("Max")).identity().kind(),
            MonoidIdentity::Kind::kLowestLimit);
  EXPECT_EQ(Monoid(BinaryOp("LogicalAnd")).identity().value().to_int64(), 1);
}

TEST(Operators, NonMonoidOpWithoutIdentityThrows) {
  EXPECT_THROW(Monoid(BinaryOp("Minus")), std::invalid_argument);
  EXPECT_THROW(Monoid(BinaryOp("First")), std::invalid_argument);
  // ...but an explicit identity makes anything a "monoid" descriptor.
  EXPECT_NO_THROW(Monoid(BinaryOp("Minus"), MonoidIdentity(Scalar(0))));
}

TEST(Operators, NamedIdentities) {
  // Fig. 4a: gb.Monoid("Min", "MinIdentity").
  Monoid m("Min", MonoidIdentity("MinIdentity"));
  EXPECT_EQ(m.identity().kind(), MonoidIdentity::Kind::kMaxLimit);
  Monoid x("Max", MonoidIdentity("MaxIdentity"));
  EXPECT_EQ(x.identity().kind(), MonoidIdentity::Kind::kLowestLimit);
  EXPECT_THROW(MonoidIdentity("BogusIdentity"), std::invalid_argument);
}

TEST(Operators, IdentityCppExprForCodegen) {
  EXPECT_EQ(MonoidIdentity::max_limit().cpp_expr("double"),
            "std::numeric_limits<double>::max()");
  EXPECT_EQ(MonoidIdentity::lowest_limit().cpp_expr("int32_t"),
            "std::numeric_limits<int32_t>::lowest()");
  EXPECT_EQ(MonoidIdentity(Scalar(0)).cpp_expr("int64_t"),
            "static_cast<int64_t>(0LL)");
}

TEST(Operators, PredefinedSemiringsMatchPaperDefinitions) {
  // gb.MinPlusSemiring == gb.Semiring(gb.MinMonoid, "Plus") and
  // gb.MinMonoid == gb.Monoid("Min", "MinIdentity")  (§III).
  EXPECT_EQ(MinPlusSemiring().key(),
            Semiring(Monoid("Min", MonoidIdentity("MinIdentity")), "Plus")
                .key());
  EXPECT_EQ(ArithmeticSemiring().key(),
            Semiring(Monoid(BinaryOp("Plus"), Scalar(0)), "Times").key());
  EXPECT_EQ(LogicalSemiring().add().op().name(), BinaryOpName::kLogicalOr);
  EXPECT_EQ(LogicalSemiring().mult().name(), BinaryOpName::kLogicalAnd);
  EXPECT_EQ(MinSelect2ndSemiring().mult().name(), BinaryOpName::kSecond);
}

TEST(Operators, KeysDistinguishOperators) {
  EXPECT_NE(ArithmeticSemiring().key(), MinPlusSemiring().key());
  EXPECT_NE(MinSelect1stSemiring().key(), MinSelect2ndSemiring().key());
  EXPECT_NE(PlusMonoid().key(), MinMonoid().key());
}

TEST(Operators, AccumulatorWrapsBinaryOp) {
  Accumulator acc("Min");
  EXPECT_EQ(acc.op().name(), BinaryOpName::kMin);
  Accumulator acc2(BinaryOp("Second"));
  EXPECT_EQ(acc2.op().gbtl_name(), "Second");
}

TEST(Operators, FigSixConstructorExamples) {
  // The exact constructor forms from Fig. 6.
  auto AdditiveInv = UnaryOp("AdditiveInverse");
  auto PlusOp = BinaryOp("Plus");
  auto TimesOp = BinaryOp("Times");
  auto PlusAccumulate = Accumulator(PlusOp);
  auto PlusMonoid_ = Monoid(PlusOp, Scalar(0));
  auto ArithmeticSR = Semiring(PlusMonoid_, TimesOp);
  EXPECT_FALSE(AdditiveInv.is_bound());
  EXPECT_EQ(PlusAccumulate.op().name(), BinaryOpName::kPlus);
  EXPECT_EQ(ArithmeticSR.mult().name(), BinaryOpName::kTimes);
}

}  // namespace
