// Tests: the DSL runtime type system — tags, names, promotion (C++ usual
// arithmetic conversions), Scalar exactness, and the dtype visitor.
#include <gtest/gtest.h>

#include "pygb/dtype.hpp"

namespace {

using namespace pygb;  // NOLINT

TEST(DType, CppNamesForCodegen) {
  EXPECT_STREQ(cpp_name(DType::kBool), "bool");
  EXPECT_STREQ(cpp_name(DType::kInt8), "int8_t");
  EXPECT_STREQ(cpp_name(DType::kUInt64), "uint64_t");
  EXPECT_STREQ(cpp_name(DType::kFP32), "float");
  EXPECT_STREQ(cpp_name(DType::kFP64), "double");
}

TEST(DType, ParseRoundTrip) {
  for (int k = 0; k < kNumDTypes; ++k) {
    const auto dt = static_cast<DType>(k);
    EXPECT_EQ(parse_dtype(cpp_name(dt)), dt);
    EXPECT_EQ(parse_dtype(display_name(dt)), dt);
  }
}

TEST(DType, NumpyStyleAliases) {
  EXPECT_EQ(parse_dtype("float64"), DType::kFP64);
  EXPECT_EQ(parse_dtype("float32"), DType::kFP32);
  EXPECT_EQ(parse_dtype("int"), DType::kInt64);
  // "float" is FP32's C++ spelling; it wins over the Python-float alias.
  EXPECT_EQ(parse_dtype("float"), DType::kFP32);
  EXPECT_THROW(parse_dtype("complex128"), std::invalid_argument);
}

TEST(DType, SizeAndClassification) {
  EXPECT_EQ(size_of(DType::kInt16), 2u);
  EXPECT_EQ(size_of(DType::kFP64), 8u);
  EXPECT_TRUE(is_floating(DType::kFP32));
  EXPECT_FALSE(is_floating(DType::kInt64));
  EXPECT_TRUE(is_signed(DType::kInt8));
  EXPECT_FALSE(is_signed(DType::kUInt32));
}

TEST(DType, DtypeOfMapsAllTypes) {
  EXPECT_EQ(dtype_of<bool>(), DType::kBool);
  EXPECT_EQ(dtype_of<std::int32_t>(), DType::kInt32);
  EXPECT_EQ(dtype_of<std::uint8_t>(), DType::kUInt8);
  EXPECT_EQ(dtype_of<double>(), DType::kFP64);
}

TEST(DType, PromotionFollowsUsualArithmeticConversions) {
  // Same type -> same type.
  EXPECT_EQ(promote(DType::kInt32, DType::kInt32), DType::kInt32);
  EXPECT_EQ(promote(DType::kBool, DType::kBool), DType::kBool);
  // Integer widening.
  EXPECT_EQ(promote(DType::kInt8, DType::kInt32), DType::kInt32);
  EXPECT_EQ(promote(DType::kInt32, DType::kInt64), DType::kInt64);
  // Float wins over int.
  EXPECT_EQ(promote(DType::kInt64, DType::kFP32), DType::kFP32);
  EXPECT_EQ(promote(DType::kInt32, DType::kFP64), DType::kFP64);
  EXPECT_EQ(promote(DType::kFP32, DType::kFP64), DType::kFP64);
  // Mixed signedness at same width: unsigned wins (C++ rule).
  EXPECT_EQ(promote(DType::kInt32, DType::kUInt32), DType::kUInt32);
  EXPECT_EQ(promote(DType::kInt64, DType::kUInt64), DType::kUInt64);
  // bool with int8 promotes to int (C++ integer promotion).
  EXPECT_EQ(promote(DType::kBool, DType::kInt8), DType::kInt32);
  // Symmetry.
  for (int a = 0; a < kNumDTypes; ++a) {
    for (int b = 0; b < kNumDTypes; ++b) {
      EXPECT_EQ(promote(static_cast<DType>(a), static_cast<DType>(b)),
                promote(static_cast<DType>(b), static_cast<DType>(a)));
    }
  }
}

TEST(DType, VisitDispatchesConcreteType) {
  const auto sz = visit_dtype(DType::kInt16, [](auto tag) {
    using T = typename decltype(tag)::type;
    return sizeof(T);
  });
  EXPECT_EQ(sz, 2u);
}

TEST(Scalar, PreservesIntegersExactly) {
  const std::int64_t big = (1LL << 60) + 12345;
  Scalar s(big);
  EXPECT_EQ(s.dtype(), DType::kInt64);
  EXPECT_EQ(s.to_int64(), big);  // would be lossy through double
}

TEST(Scalar, PreservesUnsigned) {
  const std::uint64_t big = ~std::uint64_t{0} - 7;
  Scalar s(big);
  EXPECT_EQ(s.dtype(), DType::kUInt64);
  EXPECT_EQ(s.as<std::uint64_t>(), big);
}

TEST(Scalar, FloatChannel) {
  Scalar s(2.5);
  EXPECT_EQ(s.dtype(), DType::kFP64);
  EXPECT_DOUBLE_EQ(s.to_double(), 2.5);
  EXPECT_EQ(s.to_int64(), 2);
}

TEST(Scalar, BoolTagged) {
  Scalar s(true);
  EXPECT_EQ(s.dtype(), DType::kBool);
  EXPECT_EQ(s.as<bool>(), true);
}

TEST(Scalar, ExplicitDtypeConversion) {
  Scalar s(3.9, DType::kInt32);
  EXPECT_EQ(s.dtype(), DType::kInt32);
  EXPECT_EQ(s.to_int64(), 3);  // truncated at construction
}

TEST(Scalar, ToStringIncludesDtype) {
  EXPECT_EQ(Scalar(5).to_string(), "i32(5)");
  EXPECT_EQ(Scalar(1.5).to_string(), "f64(1.5)");
}

}  // namespace
