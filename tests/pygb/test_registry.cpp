// Tests: the module registry — backend modes, cache statistics, the
// static-mode failure (the paper's precompilation-infeasibility point),
// and the §V combination-space counts.
#include <gtest/gtest.h>

#include "pygb/pygb.hpp"

namespace {

using namespace pygb;       // NOLINT
using namespace pygb::jit;  // NOLINT

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_mode_ = Registry::instance().mode();
    Registry::instance().reset_stats();
  }
  void TearDown() override { Registry::instance().set_mode(saved_mode_); }
  Mode saved_mode_;
};

TEST_F(RegistryTest, ModeParseRoundTrip) {
  for (auto m : {Mode::kAuto, Mode::kStatic, Mode::kJit, Mode::kInterp}) {
    EXPECT_EQ(parse_mode(to_string(m)), m);
  }
  EXPECT_THROW(parse_mode("bogus"), std::invalid_argument);
}

TEST_F(RegistryTest, StaticTableIsPopulated) {
  // The curated build-time set registers on first use of the registry.
  EXPECT_GT(Registry::instance().static_kernel_count(), 500u);
}

TEST_F(RegistryTest, StaticHitCounts) {
  Registry::instance().set_mode(Mode::kStatic);
  Matrix a({{1, 2}, {3, 4}});
  Matrix c(2, 2);
  c[None] = matmul(a, a);
  auto st = Registry::instance().stats();
  EXPECT_EQ(st.lookups, 1u);
  EXPECT_EQ(st.static_hits, 1u);
  EXPECT_EQ(st.compiles, 0u);
  EXPECT_EQ(st.interp_dispatches, 0u);
}

TEST_F(RegistryTest, StaticModeRejectsUnregisteredCombination) {
  Registry::instance().set_mode(Mode::kStatic);
  // uint16 mxm is far outside the curated set.
  Matrix a(2, 2, DType::kUInt16);
  a.set(0, 0, 1.0);
  Matrix c(2, 2, DType::kUInt16);
  EXPECT_THROW((c[None] = matmul(a, a)), NoKernelError);
}

TEST_F(RegistryTest, InterpModeHandlesAnything) {
  Registry::instance().set_mode(Mode::kInterp);
  Matrix a(2, 2, DType::kUInt16);
  a.set(0, 0, 3.0);
  a.set(0, 1, 4.0);
  a.set(1, 0, 1.0);
  Matrix c(2, 2, DType::kUInt16);
  c[None] = matmul(a, a);
  EXPECT_EQ(c.get_element(0, 0).to_int64(), 13);  // 3*3 + 4*1
  auto st = Registry::instance().stats();
  EXPECT_GE(st.interp_dispatches, 1u);
}

TEST_F(RegistryTest, AutoPrefersStatic) {
  Registry::instance().set_mode(Mode::kAuto);
  Matrix a({{1, 0}, {0, 1}});
  Matrix c(2, 2);
  c[None] = a + a;
  auto st = Registry::instance().stats();
  EXPECT_EQ(st.static_hits, st.lookups);
}

TEST_F(RegistryTest, InterpAndStaticAgree) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix b({{0, 1}, {1, 0}});
  Matrix cs(2, 2), ci(2, 2);
  Registry::instance().set_mode(Mode::kStatic);
  cs[None] = matmul(a, b);
  Registry::instance().set_mode(Mode::kInterp);
  ci[None] = matmul(a, b);
  EXPECT_TRUE(cs.equals(ci));
}

TEST_F(RegistryTest, ResetStatsClears) {
  Matrix a({{1, 0}, {0, 1}});
  Matrix c(2, 2);
  c[None] = a + a;
  Registry::instance().reset_stats();
  auto st = Registry::instance().stats();
  EXPECT_EQ(st.lookups, 0u);
  EXPECT_EQ(st.static_hits, 0u);
}

TEST(CombinationSpace, MatchesPaperScale) {
  // §V: "roughly 6 trillion combinations of template parameters for mxm".
  const auto mxm = combination_space(func::kMxM);
  EXPECT_GT(mxm, 1'000'000'000'000ull);  // > 10^12
  // Every op class is far beyond any plausible ahead-of-time build.
  EXPECT_GT(combination_space(func::kMxV), 100'000'000ull);
  EXPECT_GT(combination_space(func::kEWiseAddMM), 10'000'000ull);
  EXPECT_GT(combination_space(func::kApplyM), 100'000ull);
  EXPECT_GT(combination_space(func::kReduceMS), 10'000ull);
  // ...and the curated static table is a vanishing fraction.
  EXPECT_LT(Registry::instance().static_kernel_count(), 100'000u);
}

TEST(InterpSim, OverheadConfigurable) {
  set_interp_overhead_ns(0);
  EXPECT_EQ(interp_overhead_ns(), 0);
  set_interp_overhead_ns(1500);
  EXPECT_EQ(interp_overhead_ns(), 1500);
  set_interp_overhead_ns(0);
}

}  // namespace
