// Differential harness: one seeded random DSL program is executed under
// every dispatch mode (interp, static, jit) crossed with kernel backends
// (scalar, simd — docs/BACKENDS.md) and worker counts (1, 4), mirrored
// step-for-step against direct native GBTL calls, and the final states of
// all combos are compared element-exactly. All modes funnel into the same
// gbtl templates, the worker pool's combine structure is
// partition-independent, and the simd backend's kernels (AVX2 dense loops,
// direction-optimized mxv, tiled mxm, mask push-down) are constructed to
// preserve fold orders — so agreement must be bit-exact, for doubles too.
// The exercised vocabulary (masked, complement-masked, and accumulated
// variants included) is deliberately restricted to statically registered
// kernels: under Mode::kStatic a miss throws NoKernelError, which fails
// the test loudly instead of silently falling back.
#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "gbtl/detail/backend.hpp"
#include "gbtl/detail/parallel.hpp"
#include "gbtl/gbtl.hpp"
#include "pygb/jit/compiler.hpp"
#include "pygb/pygb.hpp"
#include "../gbtl/reference.hpp"

namespace {

using namespace pygb;  // NOLINT

// Large enough that parallel_for_rows actually fans out (the pool runs
// ranges under 2 * kMinRowsPerThread = 128 inline).
constexpr gbtl::IndexType kN = 160;
constexpr int kSteps = 12;

struct MirroredState {
  std::vector<Matrix> dsl_m;
  std::vector<gbtl::Matrix<double>> nat_m;
  std::vector<Vector> dsl_v;
  std::vector<gbtl::Vector<double>> nat_v;
  Matrix mask_m;
  Vector mask_v;

  bool consistent() const {
    for (std::size_t k = 0; k < dsl_m.size(); ++k) {
      if (!(dsl_m[k].typed<double>() == nat_m[k])) return false;
    }
    for (std::size_t k = 0; k < dsl_v.size(); ++k) {
      if (!(dsl_v[k].typed<double>() == nat_v[k])) return false;
    }
    return true;
  }
};

MirroredState make_state(unsigned seed) {
  MirroredState s;
  for (unsigned k = 0; k < 3; ++k) {
    auto nat = testref::random_matrix<double>(kN, kN, 0.05, seed + k);
    s.nat_m.push_back(nat);
    s.dsl_m.push_back(Matrix::adopt(std::move(nat)));
  }
  for (unsigned k = 0; k < 2; ++k) {
    auto nat = testref::random_vector<double>(kN, 0.5, seed + 10 + k);
    s.nat_v.push_back(nat);
    s.dsl_v.push_back(Vector::adopt(std::move(nat)));
  }
  s.mask_m = Matrix::adopt(testref::random_matrix<bool>(kN, kN, 0.4,
                                                        seed + 20, false,
                                                        true));
  s.mask_v = Vector::adopt(
      testref::random_vector<bool>(kN, 0.4, seed + 21, false, true));
  return s;
}

/// One random step applied to both sides; every branch uses only
/// statically registered kernel shapes. Returns a description for failure
/// messages.
std::string step(MirroredState& s, std::mt19937& rng) {
  std::uniform_int_distribution<int> op_pick(0, 6);
  std::uniform_int_distribution<int> reg3(0, 2);
  std::uniform_int_distribution<int> reg2(0, 1);
  std::uniform_int_distribution<int> coin(0, 1);

  const int op = op_pick(rng);
  const bool masked = coin(rng) == 1;
  const bool replace = masked && coin(rng) == 1;
  const auto outp =
      replace ? gbtl::OutputControl::kReplace : gbtl::OutputControl::kMerge;

  auto run_dsl = [&](auto&& assign_fn) {
    if (replace) {
      With ctx(Replace);
      assign_fn();
    } else {
      assign_fn();
    }
  };

  switch (op) {
    case 0: {  // mxm arithmetic, optional matrix mask
      const int ai = reg3(rng), bi = reg3(rng), ci = reg3(rng);
      if (masked) {
        run_dsl([&] {
          s.dsl_m[ci][s.mask_m] = matmul(s.dsl_m[ai], s.dsl_m[bi]);
        });
        gbtl::mxm(s.nat_m[ci], s.mask_m.typed<bool>(), gbtl::NoAccumulate{},
                  gbtl::ArithmeticSemiring<double>{}, s.nat_m[ai],
                  s.nat_m[bi], outp);
      } else {
        s.dsl_m[ci][None] = matmul(s.dsl_m[ai], s.dsl_m[bi]);
        gbtl::mxm(s.nat_m[ci], gbtl::NoMask{}, gbtl::NoAccumulate{},
                  gbtl::ArithmeticSemiring<double>{}, s.nat_m[ai],
                  s.nat_m[bi]);
      }
      return "mxm";
    }
    case 1: {  // mxv arithmetic, optional vector mask
      const int ai = reg3(rng), ui = reg2(rng), wi = reg2(rng);
      if (masked) {
        run_dsl([&] {
          s.dsl_v[wi][s.mask_v] = matmul(s.dsl_m[ai], s.dsl_v[ui]);
        });
        gbtl::mxv(s.nat_v[wi], s.mask_v.typed<bool>(), gbtl::NoAccumulate{},
                  gbtl::ArithmeticSemiring<double>{}, s.nat_m[ai],
                  s.nat_v[ui], outp);
      } else {
        s.dsl_v[wi][None] = matmul(s.dsl_m[ai], s.dsl_v[ui]);
        gbtl::mxv(s.nat_v[wi], gbtl::NoMask{}, gbtl::NoAccumulate{},
                  gbtl::ArithmeticSemiring<double>{}, s.nat_m[ai],
                  s.nat_v[ui]);
      }
      return "mxv";
    }
    case 2: {  // matrix eWiseAdd/eWiseMult, Plus or Min, unmasked
      const int ai = reg3(rng), bi = reg3(rng), ci = reg3(rng);
      const bool is_add = coin(rng) == 1;
      const bool use_min = coin(rng) == 1;
      {
        With ctx(use_min ? BinaryOp("Min") : BinaryOp("Plus"));
        if (is_add) {
          s.dsl_m[ci][None] = s.dsl_m[ai] + s.dsl_m[bi];
        } else {
          s.dsl_m[ci][None] = s.dsl_m[ai] * s.dsl_m[bi];
        }
      }
      auto apply_native = [&](auto opfn) {
        if (is_add) {
          gbtl::eWiseAdd(s.nat_m[ci], gbtl::NoMask{}, gbtl::NoAccumulate{},
                         opfn, s.nat_m[ai], s.nat_m[bi]);
        } else {
          gbtl::eWiseMult(s.nat_m[ci], gbtl::NoMask{}, gbtl::NoAccumulate{},
                          opfn, s.nat_m[ai], s.nat_m[bi]);
        }
      };
      if (use_min) {
        apply_native(gbtl::Min<double>{});
      } else {
        apply_native(gbtl::Plus<double>{});
      }
      return "ewise matrix";
    }
    case 3: {  // accumulating vxm (the PageRank shape)
      const int ai = reg3(rng), ui = reg2(rng), wi = reg2(rng);
      {
        With ctx(Accumulator("Plus"), ArithmeticSemiring());
        s.dsl_v[wi][None] += matmul(s.dsl_v[ui], s.dsl_m[ai]);
      }
      gbtl::vxm(s.nat_v[wi], gbtl::NoMask{}, gbtl::Plus<double>{},
                gbtl::ArithmeticSemiring<double>{}, s.nat_v[ui],
                s.nat_m[ai]);
      return "vxm accum";
    }
    case 4: {  // apply with a bound constant
      const int ai = reg3(rng), ci = reg3(rng);
      {
        With ctx(UnaryOp("Times", 0.5));
        s.dsl_m[ci][None] = apply(s.dsl_m[ai]);
      }
      gbtl::apply(s.nat_m[ci], gbtl::NoMask{}, gbtl::NoAccumulate{},
                  gbtl::BinaryOpBind2nd<double, gbtl::Times<double>>(0.5),
                  s.nat_m[ai]);
      return "apply bound";
    }
    case 5: {  // masked constant assign (the BFS levels shape)
      const int wi = reg2(rng);
      run_dsl([&] {
        if (masked) {
          s.dsl_v[wi][s.mask_v] = 7.0;
        } else {
          s.dsl_v[wi][Slice::all()] = 7.0;
        }
      });
      if (masked) {
        gbtl::assign(s.nat_v[wi], s.mask_v.typed<bool>(),
                     gbtl::NoAccumulate{}, 7.0, gbtl::AllIndices{}, outp);
      } else {
        gbtl::assign(s.nat_v[wi], gbtl::NoMask{}, gbtl::NoAccumulate{}, 7.0,
                     gbtl::AllIndices{});
      }
      return "assign const";
    }
    default: {  // complemented-mask vector eWiseAdd
      const int ui = reg2(rng), wi = reg2(rng);
      {
        With ctx(BinaryOp("Plus"));
        s.dsl_v[wi][~s.mask_v] = s.dsl_v[wi] + s.dsl_v[ui];
      }
      gbtl::eWiseAdd(s.nat_v[wi], gbtl::complement(s.mask_v.typed<bool>()),
                     gbtl::NoAccumulate{}, gbtl::Plus<double>{},
                     s.nat_v[wi], s.nat_v[ui]);
      return "ewise ~mask";
    }
  }
}

struct Combo {
  jit::Mode mode;
  gbtl::detail::Backend backend;
  unsigned threads;
  const char* name;
};

using gbtl::detail::Backend;

constexpr Combo kCombos[] = {
    {jit::Mode::kInterp, Backend::kScalar, 1, "interp/scalar/1t"},
    {jit::Mode::kInterp, Backend::kScalar, 4, "interp/scalar/4t"},
    {jit::Mode::kInterp, Backend::kSimd, 1, "interp/simd/1t"},
    {jit::Mode::kInterp, Backend::kSimd, 4, "interp/simd/4t"},
    {jit::Mode::kStatic, Backend::kScalar, 1, "static/scalar/1t"},
    {jit::Mode::kStatic, Backend::kScalar, 4, "static/scalar/4t"},
    {jit::Mode::kStatic, Backend::kSimd, 1, "static/simd/1t"},
    {jit::Mode::kStatic, Backend::kSimd, 4, "static/simd/4t"},
    {jit::Mode::kJit, Backend::kScalar, 1, "jit/scalar/1t"},
    {jit::Mode::kJit, Backend::kScalar, 4, "jit/scalar/4t"},
    {jit::Mode::kJit, Backend::kSimd, 1, "jit/simd/1t"},
    {jit::Mode::kJit, Backend::kSimd, 4, "jit/simd/4t"},
};

/// Run the seed's program under one combo, asserting per-step consistency
/// with the native mirror. Returns the final mirrored state. The backend
/// applies to BOTH sides of the mirror: the native GBTL calls read the
/// same process default, so each combo checks simd-vs-scalar agreement
/// through the final cross-combo comparison, not just DSL-vs-native.
MirroredState run_program(unsigned seed, const Combo& combo) {
  jit::Registry::instance().set_mode(combo.mode);
  gbtl::detail::set_default_backend(combo.backend);
  gbtl::detail::set_num_threads(combo.threads);
  auto s = make_state(seed);
  EXPECT_TRUE(s.consistent()) << "bad initial state, seed " << seed;
  std::mt19937 rng(seed);
  for (int k = 0; k < kSteps; ++k) {
    const std::string what = step(s, rng);
    EXPECT_TRUE(s.consistent())
        << "DSL diverged from native at step " << k << " (" << what
        << "), seed " << seed << ", combo " << combo.name;
  }
  return s;
}

/// The same seeded program, recorded through the lazy op DAG
/// (docs/FUSION.md): every unmasked op defers onto the planner and is
/// fused/replayed at materialization points instead of dispatching
/// immediately. Per-step consistency checks are skipped — mid-program the
/// DSL side may legitimately lag its native mirror — and the scope exit
/// flushes everything before the final comparison.
MirroredState run_program_lazy(unsigned seed, const Combo& combo) {
  jit::Registry::instance().set_mode(combo.mode);
  gbtl::detail::set_default_backend(combo.backend);
  gbtl::detail::set_num_threads(combo.threads);
  auto s = make_state(seed);
  std::mt19937 rng(seed);
  {
    fusion::LazyScope lazy;
    for (int k = 0; k < kSteps; ++k) {
      step(s, rng);
    }
  }
  EXPECT_TRUE(s.consistent())
      << "lazy DAG diverged from native, seed " << seed << ", combo "
      << combo.name;
  return s;
}

/// True when every register of `a` equals the same register of `b`
/// element-exactly (gbtl operator== compares stored structure and values).
bool states_equal(const MirroredState& a, const MirroredState& b) {
  for (std::size_t k = 0; k < a.nat_m.size(); ++k) {
    if (!(a.nat_m[k] == b.nat_m[k])) return false;
  }
  for (std::size_t k = 0; k < a.nat_v.size(); ++k) {
    if (!(a.nat_v[k] == b.nat_v[k])) return false;
  }
  return true;
}

class Differential : public ::testing::TestWithParam<unsigned> {
 protected:
  void SetUp() override {
    auto& reg = jit::Registry::instance();
    saved_mode_ = reg.mode();
    saved_backend_ = gbtl::detail::default_backend();
    saved_threads_ = gbtl::detail::num_threads();
    saved_dir_ = reg.cache_dir();
    // Stable shared dir: the per-seed test processes reuse each other's
    // compiled modules (the disk cache's flock coalescing makes concurrent
    // cold starts safe — see docs/CACHE.md) instead of recompiling.
    cache_dir_ = (std::filesystem::temp_directory_path() /
                  "pygb_differential_cache")
                     .string();
    reg.set_cache_dir(cache_dir_);
  }
  void TearDown() override {
    auto& reg = jit::Registry::instance();
    reg.set_cache_dir(saved_dir_);
    reg.set_mode(saved_mode_);
    gbtl::detail::set_default_backend(saved_backend_);
    gbtl::detail::set_num_threads(saved_threads_);
  }

  jit::Mode saved_mode_{};
  gbtl::detail::Backend saved_backend_{};
  unsigned saved_threads_ = 1;
  std::string saved_dir_;
  std::string cache_dir_;
};

TEST_P(Differential, AllBackendsAndThreadCountsAgreeExactly) {
  const unsigned seed = GetParam();
  const bool jit_ok = jit::compiler_available();

  bool have_baseline = false;
  MirroredState baseline;
  const char* baseline_name = nullptr;
  for (const auto& combo : kCombos) {
    if (combo.mode == jit::Mode::kJit && !jit_ok) continue;
    auto final_state = run_program(seed, combo);
    if (::testing::Test::HasFailure()) {
      FAIL() << "stopping after first divergence; seed " << seed;
    }
    if (!have_baseline) {
      baseline = std::move(final_state);
      baseline_name = combo.name;
      have_baseline = true;
      continue;
    }
    EXPECT_TRUE(states_equal(baseline, final_state))
        << "final state of combo " << combo.name << " differs from "
        << baseline_name << ", seed " << seed;
  }
  if (!jit_ok) {
    GTEST_LOG_(INFO) << "no C++ compiler reachable; jit combos skipped";
  }
}

// The 12-step programs again, but recorded through the lazy op DAG: the
// final state of every combo's lazy run must equal its eager run
// element-exactly. (With PYGB_FUSION=off the scope defers nothing and the
// two runs are the same code path — still a valid identity.)
TEST_P(Differential, LazyDagMatchesEagerExactly) {
  const unsigned seed = GetParam();
  const bool jit_ok = jit::compiler_available();
  const bool saved_fusion = fusion::enabled();
  for (const auto& combo : kCombos) {
    if (combo.mode == jit::Mode::kJit && !jit_ok) continue;
    auto eager_state = run_program(seed, combo);
    if (::testing::Test::HasFailure()) {
      FAIL() << "eager reference run failed; seed " << seed;
    }
    auto lazy_state = run_program_lazy(seed, combo);
    EXPECT_TRUE(states_equal(eager_state, lazy_state))
        << "lazy DAG final state differs from eager, seed " << seed
        << ", combo " << combo.name;
  }
  fusion::set_enabled(saved_fusion);
  if (!jit_ok) {
    GTEST_LOG_(INFO) << "no C++ compiler reachable; jit combos skipped";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Values(101u, 202u, 303u));

}  // namespace
