// Tests: the registry's compile-concurrency contract — the mutex guards
// only the in-memory maps, never a g++ invocation. A JIT compile in one
// thread must not block a memory-cache hit for a different key, and
// concurrent requests for the SAME cold key must coalesce into exactly one
// compile (the waiters park on the per-key in-flight record).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "pygb/jit/compiler.hpp"
#include "pygb/pygb.hpp"

namespace {

using namespace pygb;  // NOLINT
using namespace pygb::jit;  // NOLINT
using Clock = std::chrono::steady_clock;

class RegistryConcurrency : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!compiler_available()) {
      GTEST_SKIP() << "no C++ compiler reachable; JIT tests skipped";
    }
    auto& reg = Registry::instance();
    saved_mode_ = reg.mode();
    saved_dir_ = reg.cache_dir();
    cache_dir_ = (std::filesystem::temp_directory_path() /
                  ("pygb_regcc_test_" + std::to_string(::getpid())))
                     .string();
    reg.set_cache_dir(cache_dir_);
    reg.clear_disk_cache();
    reg.clear_memory_cache();
    reg.set_mode(Mode::kJit);
    reg.reset_stats();
  }
  void TearDown() override {
    if (!compiler_available()) return;
    auto& reg = Registry::instance();
    reg.clear_disk_cache();
    reg.set_cache_dir(saved_dir_);
    reg.set_mode(saved_mode_);
  }
  Mode saved_mode_;
  std::string saved_dir_;
  std::string cache_dir_;
};

TEST_F(RegistryConcurrency, CompileDoesNotBlockOtherKeys) {
  auto& reg = Registry::instance();

  // Warm one key (arithmetic mxm) into the memory cache.
  {
    Matrix a({{1, 2}, {3, 4}});
    Matrix c(2, 2);
    c[None] = matmul(a, a);
    ASSERT_DOUBLE_EQ(c.get(0, 0), 7.0);
  }
  ASSERT_EQ(reg.stats().compiles, 1u);

  // Kick off a cold compile of a DIFFERENT key (min-plus mxm) in a
  // background thread. JIT compiles pull in the full gbtl headers, so this
  // holds the compiler for a long stretch relative to a cache hit.
  std::atomic<bool> compile_done{false};
  std::thread compiler_thread([&] {
    With ctx(MinPlusSemiring());
    Matrix a({{1, 2}, {3, 4}});
    Matrix c(2, 2);
    c[None] = matmul(a, a);
    compile_done = true;
  });

  // Wait until the compile is registered in flight.
  const auto deadline = Clock::now() + std::chrono::seconds(30);
  while (reg.inflight_count() == 0 && !compile_done &&
         Clock::now() < deadline) {
    std::this_thread::yield();
  }

  // While that compile runs, memory-cache hits for the warm key must go
  // straight through. Each hit is microseconds; a hit that serialized
  // behind the compile would take its full duration.
  int hits_during_compile = 0;
  Matrix a({{1, 2}, {3, 4}});
  while (!compile_done) {
    const auto t0 = Clock::now();
    Matrix c(2, 2);
    c[None] = matmul(a, a);
    const auto elapsed = Clock::now() - t0;
    ASSERT_DOUBLE_EQ(c.get(1, 1), 22.0);
    if (reg.inflight_count() > 0) {
      ++hits_during_compile;
      EXPECT_LT(elapsed, std::chrono::seconds(1))
          << "memory-cache hit appears to have waited behind the compile";
    }
  }
  compiler_thread.join();

  EXPECT_GT(hits_during_compile, 0)
      << "never observed a cache hit while the compile was in flight";
  EXPECT_EQ(reg.inflight_count(), 0u);
  const auto st = reg.stats();
  EXPECT_EQ(st.compiles, 2u);  // one per distinct key, none repeated
  EXPECT_GT(st.memory_hits, 0u);
}

TEST_F(RegistryConcurrency, ConcurrentSameKeyCompilesOnce) {
  auto& reg = Registry::instance();
  constexpr int kThreads = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Matrix a({{1, 2}, {3, 4}});
      Matrix c(2, 2);
      c[None] = matmul(a, a);
      if (c.get(0, 0) != 7.0 || c.get(1, 1) != 22.0) ++failures;
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  const auto st = reg.stats();
  EXPECT_EQ(st.compiles, 1u)
      << "same-key requests must coalesce into one g++ invocation";
  EXPECT_EQ(st.lookups, static_cast<std::size_t>(kThreads));
  // Every non-compiling thread either waited on the in-flight record or
  // arrived after completion; both count as memory hits.
  EXPECT_EQ(st.memory_hits, static_cast<std::size_t>(kThreads - 1));
  EXPECT_EQ(reg.inflight_count(), 0u);
}

TEST_F(RegistryConcurrency, InFlightErrorPropagatesToWaiters) {
  // With the compiler "available" but the cache dir unusable, the build
  // fails; both the owner and any waiter must see the exception and the
  // in-flight record must not leak. A path below a regular file cannot be
  // created by any user (ENOTDIR), unlike a merely missing directory.
  auto& reg = Registry::instance();
  const auto blocker = (std::filesystem::temp_directory_path() /
                        ("pygb_regcc_blocker_" + std::to_string(::getpid())))
                           .string();
  { std::ofstream(blocker) << "not a directory"; }
  reg.set_cache_dir(blocker + "/cache");
  constexpr int kThreads = 3;
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      try {
        Matrix a({{1, 2}, {3, 4}});
        Matrix c(2, 2);
        c[None] = matmul(a, a);
      } catch (const std::exception&) {
        ++errors;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), kThreads);
  EXPECT_EQ(reg.inflight_count(), 0u);
  reg.set_cache_dir(cache_dir_);
  std::filesystem::remove(blocker);
}

}  // namespace
