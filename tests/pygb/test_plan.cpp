// Lazy-DAG / fusion-planner acceptance (docs/FUSION.md):
//
//   * output-aliasing regressions (`w = A @ w`, `C = C + A`, mask aliases
//     target) in BOTH eager and lazy modes, across every backend;
//   * expression lifetime: mutating an operand between expression build and
//     materialization must not change what the expression computes
//     (snapshot-on-mutate), in eager and lazy modes;
//   * planner legality: masked ops never defer, multi-use intermediates and
//     diamond DAGs stay correct, dead stores are eliminated;
//   * fused chains go through the ordinary module cache (compile once,
//     memory hit on the second flush) and respect typed scalar parameters;
//   * the PageRank inner loop fuses into one chain kernel per iteration.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "algorithms/dsl_algorithms.hpp"
#include "gbtl/detail/parallel.hpp"
#include "pygb/jit/compiler.hpp"
#include "pygb/obs/flightrec.hpp"
#include "pygb/obs/obs.hpp"
#include "pygb/pygb.hpp"

namespace {

using namespace pygb;  // NOLINT

std::uint64_t ctr(obs::Counter c) { return obs::counter_value(c); }

/// Backends to cross every semantic test with. JIT combos are skipped when
/// no compiler is reachable (chains then fall back to eager replay, which
/// the interp/static rows already cover).
std::vector<jit::Mode> test_modes() {
  std::vector<jit::Mode> modes{jit::Mode::kInterp, jit::Mode::kStatic};
  if (jit::compiler_available()) modes.push_back(jit::Mode::kJit);
  return modes;
}

const char* mode_name(jit::Mode m) {
  switch (m) {
    case jit::Mode::kInterp:
      return "interp";
    case jit::Mode::kStatic:
      return "static";
    case jit::Mode::kJit:
      return "jit";
    default:
      return "auto";
  }
}

Matrix test_matrix() {
  return Matrix({{0, 2, 0, 1},
                 {1, 0, 3, 0},
                 {0, 4, 0, 5},
                 {2, 0, 6, 0}});
}

Vector test_vector() { return Vector({1, 2, 3, 4}); }

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& reg = jit::Registry::instance();
    saved_mode_ = reg.mode();
    saved_threads_ = gbtl::detail::num_threads();
    saved_fusion_ = fusion::enabled();
    // The CI fusion axis exports PYGB_FUSION=off for some jobs; these tests
    // assert deferral mechanics, so force the planner on (the off-axis
    // behavior has its own test below).
    fusion::set_enabled(true);
  }
  void TearDown() override {
    fusion::wait();
    fusion::set_enabled(saved_fusion_);
    jit::Registry::instance().set_mode(saved_mode_);
    gbtl::detail::set_num_threads(saved_threads_);
  }

  jit::Mode saved_mode_{};
  unsigned saved_threads_ = 1;
  bool saved_fusion_ = true;
};

// ---------------------------------------------------------------------------
// Satellite 1: output aliasing, eager mode.
// ---------------------------------------------------------------------------

TEST_F(PlanTest, AliasedMxvEagerAllBackends) {
  for (jit::Mode mode : test_modes()) {
    jit::Registry::instance().set_mode(mode);
    Matrix a = test_matrix();
    Vector w = test_vector();
    Vector expect(4);
    {
      With ctx(ArithmeticSemiring());
      Vector frozen = w.dup();
      expect[None] = matmul(a, frozen);
      w[None] = matmul(a, w);  // target is also an operand
    }
    EXPECT_TRUE(w.equals(expect)) << "mode " << mode_name(mode);
  }
}

TEST_F(PlanTest, AliasedEwiseEagerAllBackends) {
  for (jit::Mode mode : test_modes()) {
    jit::Registry::instance().set_mode(mode);
    Matrix a = test_matrix();
    Matrix c = test_matrix();
    Matrix expect(4, 4);
    {
      With ctx(BinaryOp("Plus"));
      Matrix frozen = c.dup();
      expect[None] = frozen + a;
      c[None] = c + a;  // C = C + A
    }
    EXPECT_TRUE(c.equals(expect)) << "mode " << mode_name(mode);

    Vector d = test_vector();
    Vector dexpect(4);
    {
      With ctx(BinaryOp("Times"));
      Vector frozen = d.dup();
      dexpect[None] = frozen * frozen;
      d[None] = d * d;  // the PageRank delta-squaring shape
    }
    EXPECT_TRUE(d.equals(dexpect)) << "mode " << mode_name(mode);
  }
}

TEST_F(PlanTest, AliasedAccumulateEager) {
  for (jit::Mode mode : test_modes()) {
    // The curated static table has no accumulating eWise kernels (see
    // static_kernels_ewise.cpp) — forced-static cannot serve this op at
    // all, aliased or not. The aliasing guarantee under static is covered
    // by the mxv/ewise/assign cases above.
    if (mode == jit::Mode::kStatic) continue;
    jit::Registry::instance().set_mode(mode);
    Vector w = test_vector();
    Vector u({2, 2, 2, 2});
    Vector expect(4);
    {
      With ctx(BinaryOp("Plus"));
      Vector frozen = w.dup();
      Vector sum(4);
      sum[None] = frozen + u;       // w + u
      expect[None] = frozen + sum;  // w ⊕ (w + u)
      w[None] += w + u;  // accumulating into an operand of the expression
    }
    EXPECT_TRUE(w.equals(expect)) << "mode " << mode_name(mode);
  }
}

TEST_F(PlanTest, MaskAliasingTargetEager) {
  for (jit::Mode mode : test_modes()) {
    jit::Registry::instance().set_mode(mode);
    Vector w({1, 0, 3, 0});
    Vector u = test_vector();
    Vector expect(4);
    {
      With ctx(BinaryOp("Plus"));
      Vector frozen_mask = w.dup();
      Vector frozen = w.dup();
      expect[frozen_mask] = frozen + u;
      w[w] = w + u;  // the mask IS the target
    }
    EXPECT_TRUE(w.equals(expect)) << "mode " << mode_name(mode);
  }
}

TEST_F(PlanTest, SubRefSelfAssignEager) {
  for (jit::Mode mode : test_modes()) {
    jit::Registry::instance().set_mode(mode);
    Vector w = test_vector();
    Vector expect = w.dup();
    w[Slice::all()] = w;  // assign_container with src == target
    EXPECT_TRUE(w.equals(expect)) << "mode " << mode_name(mode);
  }
}

// ---------------------------------------------------------------------------
// Satellite 1 (continued): the same aliasing shapes inside a lazy scope.
// ---------------------------------------------------------------------------

TEST_F(PlanTest, AliasedOpsLazyAllBackends) {
  for (jit::Mode mode : test_modes()) {
    jit::Registry::instance().set_mode(mode);
    Matrix a = test_matrix();
    Vector w = test_vector();
    Vector d = test_vector();
    Vector wexpect(4), dexpect(4);
    {
      With ctx(ArithmeticSemiring());
      Vector frozen_w = w.dup();
      wexpect[None] = matmul(a, frozen_w);
    }
    {
      With ctx(BinaryOp("Times"));
      Vector frozen_d = d.dup();
      dexpect[None] = frozen_d * frozen_d;
    }
    {
      fusion::LazyScope lazy;
      {
        With ctx(ArithmeticSemiring());
        w[None] = matmul(a, w);
      }
      {
        With ctx(BinaryOp("Times"));
        d[None] = d * d;
      }
    }
    EXPECT_TRUE(w.equals(wexpect)) << "mode " << mode_name(mode);
    EXPECT_TRUE(d.equals(dexpect)) << "mode " << mode_name(mode);
  }
}

// ---------------------------------------------------------------------------
// Satellite 2: expression lifetime / snapshot-on-mutate.
// ---------------------------------------------------------------------------

TEST_F(PlanTest, MutateOperandAfterBuildEager) {
  jit::Registry::instance().set_mode(jit::Mode::kStatic);
  Vector u = test_vector();
  Vector v = test_vector();
  With ctx(BinaryOp("Plus"));
  VectorExpr e = u + v;
  u.set(0, Scalar(100.0));  // mutation between build and materialization
  Vector out(4);
  out[None] = e;
  EXPECT_DOUBLE_EQ(out.get(0), 2.0) << "expression saw the mutation";
  EXPECT_DOUBLE_EQ(u.get(0), 100.0);
}

TEST_F(PlanTest, MutateOperandAfterBuildViaClear) {
  jit::Registry::instance().set_mode(jit::Mode::kStatic);
  Matrix a = test_matrix();
  Matrix b = test_matrix();
  With ctx(BinaryOp("Plus"));
  MatrixExpr e = a + b;
  a.clear();
  Matrix out(4, 4);
  out[None] = e;
  Matrix expect(4, 4);
  {
    Matrix a2 = test_matrix();
    expect[None] = a2 + b;
  }
  EXPECT_TRUE(out.equals(expect));
  EXPECT_EQ(a.nvals(), 0u);
}

TEST_F(PlanTest, MutateOperandWithDeferredOpPending) {
  for (jit::Mode mode : test_modes()) {
    jit::Registry::instance().set_mode(mode);
    Vector u = test_vector();
    Vector v = test_vector();
    Vector out(4);
    {
      fusion::LazyScope lazy;
      With ctx(BinaryOp("Plus"));
      out[None] = u + v;  // deferred
      // Mutating an involved container is a materialization point: the
      // pending op must flush (observing pre-mutation values) first.
      u.set(0, Scalar(100.0));
      EXPECT_EQ(fusion::pending_count(), 0u) << "mode " << mode_name(mode);
    }
    EXPECT_DOUBLE_EQ(out.get(0), 2.0) << "mode " << mode_name(mode);
  }
}

// ---------------------------------------------------------------------------
// Tentpole: planner mechanics.
// ---------------------------------------------------------------------------

TEST_F(PlanTest, MaskedOpsAreNeverDeferred) {
  jit::Registry::instance().set_mode(jit::Mode::kStatic);
  Vector u = test_vector();
  Vector w(4);
  Vector mask({1, 0, 1, 0});
  fusion::LazyScope lazy;
  With ctx(BinaryOp("Plus"));
  w[mask] = u + u;  // masked: must execute eagerly, not defer
  EXPECT_EQ(fusion::pending_count(), 0u);
  EXPECT_DOUBLE_EQ(w.get(0), 2.0);
  EXPECT_FALSE(w.has_element(1));
}

TEST_F(PlanTest, UnmaskedOpsDeferUntilRead) {
  jit::Registry::instance().set_mode(jit::Mode::kStatic);
  Vector u = test_vector();
  Vector w(4);
  fusion::LazyScope lazy;
  {
    With ctx(BinaryOp("Plus"));
    w[None] = u + u;
  }
  EXPECT_GE(fusion::pending_count(), 1u);
  // Element read = materialization point.
  EXPECT_DOUBLE_EQ(w.get(1), 4.0);
  EXPECT_EQ(fusion::pending_count(), 0u);
}

TEST_F(PlanTest, DisabledPlannerNeverDefers) {
  jit::Registry::instance().set_mode(jit::Mode::kStatic);
  fusion::set_enabled(false);
  Vector u = test_vector();
  Vector w(4);
  fusion::LazyScope lazy;
  {
    With ctx(BinaryOp("Plus"));
    w[None] = u + u;
  }
  EXPECT_EQ(fusion::pending_count(), 0u);
  EXPECT_DOUBLE_EQ(w.get(0), 2.0);
}

TEST_F(PlanTest, DiamondAndMultiUseIntermediates) {
  for (jit::Mode mode : test_modes()) {
    jit::Registry::instance().set_mode(mode);
    Vector u = test_vector();
    Vector v({2, 2, 2, 2});
    Vector t(4), a(4), b(4), texp(4), aexp(4), bexp(4);
    {
      With ctx(BinaryOp("Plus"));
      texp[None] = u + v;
      {
        With m(BinaryOp("Times"));
        aexp[None] = texp * texp;
      }
      bexp[None] = texp + u;
    }
    {
      fusion::LazyScope lazy;
      With ctx(BinaryOp("Plus"));
      t[None] = u + v;  // intermediate with two consumers (diamond)
      {
        With m(BinaryOp("Times"));
        a[None] = t * t;
      }
      b[None] = t + u;
      fusion::wait();
    }
    EXPECT_TRUE(t.equals(texp)) << "mode " << mode_name(mode);
    EXPECT_TRUE(a.equals(aexp)) << "mode " << mode_name(mode);
    EXPECT_TRUE(b.equals(bexp)) << "mode " << mode_name(mode);
  }
}

TEST_F(PlanTest, DeadStoreElimination) {
  jit::Registry::instance().set_mode(jit::Mode::kStatic);
  Vector u = test_vector();
  Vector v({2, 2, 2, 2});
  Vector t(4);
  const std::uint64_t dce_before = ctr(obs::Counter::kFusionDce);
  {
    fusion::LazyScope lazy;
    {
      With ctx(BinaryOp("Plus"));
      t[None] = u + v;  // dead: overwritten below, never read in between
    }
    {
      With ctx(BinaryOp("Times"));
      t[None] = u * v;
    }
  }
  EXPECT_EQ(ctr(obs::Counter::kFusionDce), dce_before + 1);
  Vector expect(4);
  {
    With ctx(BinaryOp("Times"));
    expect[None] = u * v;
  }
  EXPECT_TRUE(t.equals(expect));
}

TEST_F(PlanTest, OverwrittenButReadIntermediateIsNotEliminated) {
  jit::Registry::instance().set_mode(jit::Mode::kStatic);
  Vector u = test_vector();
  Vector t(4), out(4);
  const std::uint64_t dce_before = ctr(obs::Counter::kFusionDce);
  {
    fusion::LazyScope lazy;
    With ctx(BinaryOp("Plus"));
    t[None] = u + u;    // read by the next statement: live
    out[None] = t + u;
    {
      With m(BinaryOp("Times"));
      t[None] = u * u;  // overwrite AFTER the read
    }
  }
  EXPECT_EQ(ctr(obs::Counter::kFusionDce), dce_before);
  EXPECT_DOUBLE_EQ(out.get(0), 3.0);
  EXPECT_DOUBLE_EQ(t.get(0), 1.0);
}

TEST_F(PlanTest, IndependentSubgraphsBothComplete) {
  for (unsigned threads : {1u, 4u}) {
    gbtl::detail::set_num_threads(threads);
    jit::Registry::instance().set_mode(jit::Mode::kStatic);
    Vector u = test_vector();
    Vector v({5, 6, 7, 8});
    Vector a(4), b(4);
    {
      fusion::LazyScope lazy;
      With ctx(BinaryOp("Plus"));
      a[None] = u + u;  // component 1
      b[None] = v + v;  // component 2 (no shared containers)
    }
    EXPECT_DOUBLE_EQ(a.get(3), 8.0) << threads << " threads";
    EXPECT_DOUBLE_EQ(b.get(3), 16.0) << threads << " threads";
  }
}

TEST_F(PlanTest, ExceptionUnwindDiscardsPendingOps) {
  jit::Registry::instance().set_mode(jit::Mode::kStatic);
  Vector u = test_vector();
  Vector w(4);
  try {
    fusion::LazyScope lazy;
    With ctx(BinaryOp("Plus"));
    w[None] = u + u;
    throw std::runtime_error("abort the scope");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(fusion::pending_count(), 0u);
  EXPECT_EQ(w.nvals(), 0u) << "discarded op must not have executed";
}

// ---------------------------------------------------------------------------
// Tentpole: fused chains through the JIT cache + observability.
// ---------------------------------------------------------------------------

TEST_F(PlanTest, FusedChainCompilesOnceThenHitsCache) {
  if (!jit::compiler_available()) GTEST_SKIP() << "no compiler";
  jit::Registry::instance().set_mode(jit::Mode::kJit);

  auto program = [](Vector& out, const Vector& u, const Vector& v) {
    fusion::LazyScope lazy;
    With ctx(BinaryOp("Plus"));
    out[None] = u + v;
    {
      With m(BinaryOp("Times"));
      out[None] = out * v;
    }
  };

  Vector u = test_vector();
  Vector v({2, 2, 2, 2});
  Vector out(4);
  const std::uint64_t chains_before = ctr(obs::Counter::kFusionChains);
  program(out, u, v);
  const std::uint64_t chains_mid = ctr(obs::Counter::kFusionChains);
  ASSERT_EQ(chains_mid, chains_before + 1) << "expected one fused dispatch";
  EXPECT_DOUBLE_EQ(out.get(0), 6.0);

  // Second flush of the identical program: same chain signature, so the
  // module must come from the in-memory cache — no new compile.
  const std::uint64_t compiles_before = ctr(obs::Counter::kCompiles);
  const std::uint64_t memhits_before = ctr(obs::Counter::kMemoryHits);
  program(out, u, v);
  EXPECT_EQ(ctr(obs::Counter::kFusionChains), chains_mid + 1);
  EXPECT_EQ(ctr(obs::Counter::kCompiles), compiles_before);
  EXPECT_GE(ctr(obs::Counter::kMemoryHits), memhits_before + 1);
  EXPECT_DOUBLE_EQ(out.get(0), 6.0);
}

TEST_F(PlanTest, PlannerDecisionsAreObservable) {
  jit::Registry::instance().set_mode(jit::Mode::kStatic);
  const std::uint64_t deferred = ctr(obs::Counter::kFusionDeferred);
  const std::uint64_t flushes = ctr(obs::Counter::kFusionFlushes);
  Vector u = test_vector();
  Vector w(4);
  {
    fusion::LazyScope lazy;
    With ctx(BinaryOp("Plus"));
    w[None] = u + u;
  }
  EXPECT_EQ(ctr(obs::Counter::kFusionDeferred), deferred + 1);
  EXPECT_EQ(ctr(obs::Counter::kFusionFlushes), flushes + 1);

  bool saw_flush_event = false;
  for (const auto& e : flightrec::snapshot()) {
    if (e.kind == flightrec::EventKind::kFusionPlan &&
        std::string(e.detail) == "flush") {
      saw_flush_event = true;
    }
  }
  EXPECT_TRUE(saw_flush_event) << "kFusionPlan flush event missing";
}

TEST_F(PlanTest, PageRankInnerLoopFusesIntoOneChain) {
  if (!jit::compiler_available()) GTEST_SKIP() << "no compiler";
  jit::Registry::instance().set_mode(jit::Mode::kJit);
  // Deliberately irregular: a regular graph row-normalizes to a doubly
  // stochastic matrix whose uniform start is already stationary, and
  // PageRank would converge after ONE iteration (one chain).
  Matrix graph = Matrix({{0, 1, 1, 0, 0},
                         {0, 0, 1, 0, 0},
                         {1, 0, 0, 1, 0},
                         {0, 0, 0, 0, 1},
                         {1, 0, 0, 0, 0}});
  const std::uint64_t chains_before = ctr(obs::Counter::kFusionChains);
  const std::uint64_t stmts_before = ctr(obs::Counter::kFusionFusedStatements);
  const std::uint64_t eager_before = ctr(obs::Counter::kFusionEagerOps);
  Vector pr = algo::dsl_page_rank(graph, 0.85, 1e-9, 30);
  const std::uint64_t chains = ctr(obs::Counter::kFusionChains) - chains_before;
  const std::uint64_t stmts =
      ctr(obs::Counter::kFusionFusedStatements) - stmts_before;
  ASSERT_GE(chains, 2u) << "inner loop did not fuse";
  // Every iteration's four value ops land in ONE chain dispatch: exactly
  // 4 fused statements per chain, and nothing degraded to eager replay.
  EXPECT_EQ(stmts, chains * 4);
  EXPECT_EQ(ctr(obs::Counter::kFusionEagerOps), eager_before);
  // And the result is still a probability-ish distribution.
  double sum = 0.0;
  for (gbtl::IndexType i = 0; i < pr.size(); ++i) sum += pr.get(i);
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST_F(PlanTest, PageRankLazyMatchesEagerExactly) {
  for (jit::Mode mode : test_modes()) {
    jit::Registry::instance().set_mode(mode);
    Matrix graph = Matrix({{0, 1, 0, 0, 1},
                           {1, 0, 1, 0, 0},
                           {0, 1, 0, 1, 0},
                           {0, 0, 1, 0, 1},
                           {1, 0, 0, 1, 0}});
    Vector lazy_pr = algo::dsl_page_rank(graph, 0.85, 1e-9, 30);
    fusion::set_enabled(false);
    Vector eager_pr = algo::dsl_page_rank(graph, 0.85, 1e-9, 30);
    fusion::set_enabled(true);
    EXPECT_TRUE(lazy_pr.equals(eager_pr)) << "mode " << mode_name(mode);
  }
}

// ---------------------------------------------------------------------------
// Satellite 3: typed scalar chain parameters.
// ---------------------------------------------------------------------------

TEST_F(PlanTest, ScalarParamDtypeInSignature) {
  FusedChain f64("sig_probe");
  f64.vector_param("t", DType::kFP64);
  f64.scalar_param("s");  // defaults to kFP64
  FusedChain f32("sig_probe");
  f32.vector_param("t", DType::kFP64);
  f32.scalar_param("s", DType::kFP32);
  EXPECT_NE(f64.signature(), f32.signature())
      << "scalar dtype must be part of the module key";
}

TEST_F(PlanTest, ScalarBindingRejectsMismatchedDtype) {
  FusedChain chain("typed_scalar");
  const int t = chain.vector_param("t", DType::kFP64);
  const int s = chain.scalar_param("s", DType::kFP32);
  chain.assign_constant(t, s);
  Vector out(4);
  // A bare double literal only binds kFP64 scalar params.
  EXPECT_THROW(chain.run({out, 3.0}), ChainBindingError);
  // A Scalar of the wrong dtype is rejected too.
  EXPECT_THROW(chain.run({out, Scalar(3.0, DType::kFP64)}),
               ChainBindingError);
  // ChainBindingError stays catchable as std::invalid_argument.
  EXPECT_THROW(chain.run({out, 3.0}), std::invalid_argument);
}

TEST_F(PlanTest, TypedScalarBindingRunsAtDeclaredDtype) {
  if (!jit::compiler_available()) GTEST_SKIP() << "no compiler";
  jit::Registry::instance().set_mode(jit::Mode::kJit);
  FusedChain chain("typed_scalar_run");
  const int t = chain.vector_param("t", DType::kInt32);
  const int s = chain.scalar_param("s", DType::kInt32);
  chain.assign_constant(t, s);
  Vector out(3, DType::kInt32);
  chain.run({out, Scalar(std::int32_t{7})});
  EXPECT_EQ(out.get_element(0).to_int64(), 7);
  EXPECT_EQ(out.get_element(2).to_int64(), 7);
}

}  // namespace
