// Tests: the interpreted backend agrees with the compiled backends across
// the full operation surface (parameterized over operations).
#include <gtest/gtest.h>

#include "pygb/pygb.hpp"

namespace {

using namespace pygb;       // NOLINT
using jit::Mode;
using jit::Registry;

/// Run `body` once per backend and check both targets end up equal.
template <typename Body>
void check_backend_agreement(Body&& body) {
  Registry::instance().set_mode(Mode::kStatic);
  Matrix ms = body();
  Registry::instance().set_mode(Mode::kInterp);
  Matrix mi = body();
  Registry::instance().set_mode(Mode::kAuto);
  EXPECT_TRUE(ms.equals(mi));
}

template <typename Body>
void check_backend_agreement_v(Body&& body) {
  Registry::instance().set_mode(Mode::kStatic);
  Vector vs = body();
  Registry::instance().set_mode(Mode::kInterp);
  Vector vi = body();
  Registry::instance().set_mode(Mode::kAuto);
  EXPECT_TRUE(vs.equals(vi));
}

Matrix fixture_a() {
  return Matrix({{1, 0, 2}, {0, 3, 0}, {4, 0, 5}}, DType::kInt64);
}
Matrix fixture_b() {
  return Matrix({{0, 1, 0}, {2, 0, 3}, {0, 4, 0}}, DType::kInt64);
}

TEST(InterpBackend, MxmAgreement) {
  check_backend_agreement([] {
    Matrix c(3, 3, DType::kInt64);
    c[None] = matmul(fixture_a(), fixture_b());
    return c;
  });
}

TEST(InterpBackend, MxmTransposedMaskedAgreement) {
  check_backend_agreement([] {
    Matrix mask(3, 3, DType::kBool);
    mask.set(0, 0, Scalar(true));
    mask.set(2, 1, Scalar(true));
    Matrix c(3, 3, DType::kInt64);
    With ctx(Replace);
    c[mask] = matmul(fixture_a(), fixture_b().T());
    return c;
  });
}

TEST(InterpBackend, MxvVxmAgreement) {
  check_backend_agreement_v([] {
    Vector u({1, 2, 3}, DType::kInt64);
    Vector w(3, DType::kInt64);
    w[None] = matmul(fixture_a(), u);
    return w;
  });
  check_backend_agreement_v([] {
    Vector u({1, 2, 3}, DType::kInt64);
    Vector w(3, DType::kInt64);
    w[None] = matmul(u, fixture_a());
    return w;
  });
}

TEST(InterpBackend, MinPlusWithAccumAgreement) {
  check_backend_agreement_v([] {
    Vector path(3, DType::kFP64);
    path.set(0, 0.0);
    Matrix g = fixture_a().astype(DType::kFP64);
    With ctx(MinPlusSemiring(), Accumulator("Min"));
    path[None] += matmul(g.T(), path);
    return path;
  });
}

TEST(InterpBackend, EWiseAgreement) {
  check_backend_agreement([] {
    Matrix c(3, 3, DType::kInt64);
    c[None] = fixture_a() + fixture_b();
    return c;
  });
  check_backend_agreement([] {
    Matrix c(3, 3, DType::kInt64);
    With ctx(BinaryOp("Minus"));
    c[None] = fixture_a() + fixture_b();
    return c;
  });
  check_backend_agreement([] {
    Matrix c(3, 3, DType::kInt64);
    c[None] = fixture_a() * fixture_b();
    return c;
  });
}

TEST(InterpBackend, ApplyAgreement) {
  check_backend_agreement([] {
    Matrix c(3, 3, DType::kInt64);
    With ctx(UnaryOp("Times", 3));
    c[None] = apply(fixture_a());
    return c;
  });
  check_backend_agreement([] {
    Matrix c(3, 3, DType::kInt64);
    c[None] = apply(fixture_a(), UnaryOp("AdditiveInverse"));
    return c;
  });
}

TEST(InterpBackend, ReduceAgreement) {
  Registry::instance().set_mode(Mode::kStatic);
  const auto rs = reduce(fixture_a());
  Registry::instance().set_mode(Mode::kInterp);
  const auto ri = reduce(fixture_a());
  Registry::instance().set_mode(Mode::kAuto);
  EXPECT_EQ(rs.to_int64(), ri.to_int64());
  EXPECT_EQ(rs.to_int64(), 15);
}

TEST(InterpBackend, ReduceRowsAgreement) {
  check_backend_agreement_v([] {
    Vector w(3, DType::kInt64);
    w[None] = reduce_rows(fixture_a(), MaxMonoid());
    return w;
  });
}

TEST(InterpBackend, AssignExtractAgreement) {
  check_backend_agreement([] {
    Matrix c(3, 3, DType::kInt64);
    c(Slice(0, 2), Slice(0, 2)) = Matrix({{7, 8}, {9, 0}}, DType::kInt64);
    return c;
  });
  check_backend_agreement([] {
    return fixture_a()(Slice(1, 3), Slice(0, 2)).extract();
  });
  check_backend_agreement_v([] {
    Vector w(5, DType::kInt64);
    Vector mask(5, DType::kBool);
    mask.set(2, Scalar(true));
    mask.set(4, Scalar(true));
    w[mask] = 42.0;
    return w;
  });
}

TEST(InterpBackend, TransposeAgreement) {
  check_backend_agreement([] {
    Matrix c(3, 3, DType::kInt64);
    c[None] = transposed(fixture_a());
    return c;
  });
}

TEST(InterpBackend, DocumentedPrecisionLimitForHugeIntegers) {
  // Integers beyond 2^53 lose exactness in the interp backend (double
  // staging) — this is the rejected-design cost the paper describes; the
  // compiled backends stay exact.
  const std::int64_t big = (std::int64_t{1} << 60) + 1;
  Vector u(1, DType::kInt64);
  u.set(0, Scalar(big));

  Registry::instance().set_mode(Mode::kStatic);
  const auto exact = reduce(u);
  EXPECT_EQ(exact.to_int64(), big);

  Registry::instance().set_mode(Mode::kInterp);
  const auto lossy = reduce(u);
  Registry::instance().set_mode(Mode::kAuto);
  EXPECT_NE(lossy.to_int64(), big);  // rounded through double
}

}  // namespace
