// Tests: deadline-bounded, fault-injected JIT compilation — the sandboxed
// compiler subprocess (fork/execvp, wall-clock deadline, kill escalation,
// transient-retry), the per-key circuit breaker, bounded flock and waiter
// deadlines, and the pygb::faultinj chaos hooks. The end-to-end "a real
// hung child is killed within the deadline" property also has a
// cross-process ctest (tests/jit_timeout.sh, driving pygb_cli).
#include <gtest/gtest.h>

#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gbtl/detail/parallel.hpp"
#include "gbtl/detail/pool.hpp"
#include "gbtl/gbtl.hpp"
#include "pygb/faultinj.hpp"
#include "pygb/governor.hpp"
#include "pygb/jit/breaker.hpp"
#include "pygb/jit/cache.hpp"
#include "pygb/jit/compiler.hpp"
#include "pygb/jit/subprocess.hpp"
#include "pygb/pygb.hpp"

namespace {

namespace fs = std::filesystem;
using namespace pygb;       // NOLINT
using namespace pygb::jit;  // NOLINT

void write_file(const fs::path& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

void make_executable(const fs::path& path) { ::chmod(path.c_str(), 0755); }

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Set an env var for the test body, restoring the prior state on exit.
class EnvGuard {
 public:
  EnvGuard(const char* name, const std::string& value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) old_ = old;
    ::setenv(name, value.c_str(), 1);
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

std::vector<fs::path> list_with_suffix(const std::string& dir,
                                       const std::string& suffix) {
  std::vector<fs::path> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      out.push_back(entry.path());
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Subprocess runner unit tests (no compiler, no registry).
// ---------------------------------------------------------------------------

TEST(SubprocessRun, DecodesExitCode) {
  RunOptions opt;
  opt.argv = {"/bin/sh", "-c", "exit 7"};
  const RunOutcome ro = run_subprocess(opt);
  EXPECT_EQ(ro.status, RunStatus::kExitNonzero);
  EXPECT_EQ(ro.exit_code, 7);
  EXPECT_FALSE(ro.transient);
  EXPECT_EQ(ro.attempts, 1);
  EXPECT_NE(ro.describe().find("exit status 7"), std::string::npos);
}

TEST(SubprocessRun, CapturesStderrAndStdout) {
  RunOptions opt;
  opt.argv = {"/bin/sh", "-c", "echo out-words; echo err-words >&2"};
  opt.capture_stdout = true;
  const RunOutcome ro = run_subprocess(opt);
  EXPECT_TRUE(ro.ok());
  EXPECT_NE(ro.out.find("out-words"), std::string::npos);
  EXPECT_NE(ro.captured.find("err-words"), std::string::npos);
}

TEST(SubprocessRun, DeadlineKillsHungChildQuickly) {
  RunOptions opt;
  opt.argv = {"/bin/sleep", "86399"};
  opt.timeout_ms = 300;
  const auto start = std::chrono::steady_clock::now();
  const RunOutcome ro = run_subprocess(opt);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_EQ(ro.status, RunStatus::kTimeout);
  EXPECT_TRUE(ro.transient);  // the key is not doomed
  EXPECT_EQ(ro.term_signal, SIGTERM);
  EXPECT_LT(elapsed, 5000);
  EXPECT_NE(ro.describe().find("deadline exceeded"), std::string::npos);
}

TEST(SubprocessRun, SigtermImmuneChildEscalatesToSigkill) {
  RunOptions opt;
  opt.argv = {"/bin/sh", "-c", "trap '' TERM; sleep 86399"};
  opt.timeout_ms = 200;
  opt.kill_grace_ms = 200;
  const auto start = std::chrono::steady_clock::now();
  const RunOutcome ro = run_subprocess(opt);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_EQ(ro.status, RunStatus::kTimeout);
  EXPECT_EQ(ro.term_signal, SIGKILL);
  EXPECT_LT(elapsed, 5000);
}

TEST(SubprocessRun, SpawnFailureReportsErrno) {
  RunOptions opt;
  opt.argv = {"/nonexistent/pygb-no-such-binary"};
  const RunOutcome ro = run_subprocess(opt);
  EXPECT_EQ(ro.status, RunStatus::kSpawnFailed);
  EXPECT_EQ(ro.spawn_errno, ENOENT);
  EXPECT_NE(ro.describe().find("failed to launch"), std::string::npos);
}

TEST(SubprocessRun, SignaledChildIsTransientAndRetried) {
  RunOptions opt;
  opt.argv = {"/bin/sh", "-c", "kill -KILL $$"};
  opt.max_attempts = 3;
  opt.backoff_ms = 1;
  const RunOutcome ro = run_subprocess(opt);
  EXPECT_EQ(ro.status, RunStatus::kSignaled);
  EXPECT_TRUE(ro.transient);
  EXPECT_EQ(ro.attempts, 3);  // every attempt taken, all signaled
  EXPECT_NE(ro.captured.find("retrying"), std::string::npos);
}

TEST(SubprocessRun, SplitCommandSplitsOnWhitespace) {
  const auto words = split_command("  ccache   g++ -pipe ");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "ccache");
  EXPECT_EQ(words[1], "g++");
  EXPECT_EQ(words[2], "-pipe");
  EXPECT_TRUE(split_command("").empty());
}

TEST(SubprocessRun, CompilesSourceInPathWithSpaces) {
  if (!compiler_available()) GTEST_SKIP();
  // std::system-with-string-concat would have parsed this path as two
  // arguments; argv exec treats it as bytes.
  const auto dir = fs::temp_directory_path() /
                   ("pygb jit spaces " + std::to_string(::getpid()));
  fs::create_directories(dir);
  const auto src = dir / "with space.cpp";
  write_file(src, "extern \"C\" int pygb_probe() { return 7; }\n");
  const auto out = dir / "with space.so";
  const CompileResult cr = compile_module(src.string(), out.string());
  EXPECT_TRUE(cr.ok) << cr.log;
  EXPECT_TRUE(fs::exists(out));
  std::error_code ec;
  fs::remove_all(dir, ec);
}

// ---------------------------------------------------------------------------
// Fault-injection spec engine.
// ---------------------------------------------------------------------------

TEST(FaultSpec, ParsesArmsAndDisarms) {
  faultinj::configure("compile:hang:p=1,dlopen:fail:p=0.5,seed=42");
  EXPECT_TRUE(faultinj::armed());
  EXPECT_EQ(faultinj::current_spec(),
            "compile:hang:p=1,dlopen:fail:p=0.5,seed=42");
  faultinj::configure("");
  EXPECT_FALSE(faultinj::armed());
  EXPECT_FALSE(faultinj::check(faultinj::site::kCompile));
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(faultinj::configure("compile"), std::invalid_argument);
  EXPECT_THROW(faultinj::configure("compile:explode"), std::invalid_argument);
  EXPECT_THROW(faultinj::configure("compile:fail:p=2"), std::invalid_argument);
  EXPECT_THROW(faultinj::configure("compile:fail:q=1"), std::invalid_argument);
  faultinj::configure("");
}

TEST(FaultSpec, DrawsAreDeterministicForASeed) {
  std::vector<bool> first;
  faultinj::configure("x:fail:p=0.5,seed=7");
  for (int i = 0; i < 64; ++i) first.push_back(bool(faultinj::check("x")));
  faultinj::configure("x:fail:p=0.5,seed=7");
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(bool(faultinj::check("x")), first[static_cast<std::size_t>(i)])
        << "draw " << i << " diverged";
  }
  // p=0.5 over 64 draws fires sometimes and spares sometimes.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
  faultinj::configure("");
}

TEST(FaultSpec, BudgetLimitsFires) {
  faultinj::configure("y:fail:n=2");
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    if (faultinj::check("y")) ++fired;
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(faultinj::fired_count(), 2u);
  faultinj::configure("");
}

TEST(FaultSpec, PoolSubmitFaultPropagatesToCaller) {
  faultinj::configure("pool_submit:fail:p=1:n=1");
  EXPECT_THROW(gbtl::detail::pool_parallel_for(
                   64, [](void*, gbtl::IndexType, gbtl::IndexType) {}, nullptr),
               std::runtime_error);
  // Budget exhausted: the pool is healthy again.
  gbtl::detail::pool_parallel_for(
      64, [](void*, gbtl::IndexType, gbtl::IndexType) {}, nullptr);
  faultinj::configure("");
}

// ---------------------------------------------------------------------------
// Bounded flock.
// ---------------------------------------------------------------------------

TEST(BoundedFlock, TimesOutAgainstALiveHolderThenAcquires) {
  const auto dir = fs::temp_directory_path() /
                   ("pygb_flock_test_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string path = (dir / "stem.lock").string();

  const int holder = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
  ASSERT_GE(holder, 0);
  ASSERT_EQ(::flock(holder, LOCK_EX), 0);

  const auto start = std::chrono::steady_clock::now();
  {
    FileLock contender(path, 150);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_FALSE(contender.held());
    EXPECT_TRUE(contender.timed_out());
    EXPECT_GE(elapsed, 150);
    EXPECT_LT(elapsed, 5000);
  }

  ::flock(holder, LOCK_UN);
  ::close(holder);
  FileLock after(path, 1000);
  EXPECT_TRUE(after.held());
  EXPECT_FALSE(after.timed_out());
  std::error_code ec;
  fs::remove_all(dir, ec);
}

// ---------------------------------------------------------------------------
// Registry-level chaos: fixture with a private cache dir per test.
// ---------------------------------------------------------------------------

class JitFaultsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!compiler_available()) {
      GTEST_SKIP() << "no C++ compiler reachable; chaos tests skipped";
    }
    auto& reg = Registry::instance();
    saved_mode_ = reg.mode();
    saved_dir_ = reg.cache_dir();
    scratch_ = (fs::temp_directory_path() /
                ("pygb_faults_test_" + std::to_string(::getpid())))
                   .string();
    cache_dir_ = scratch_ + "/cache";
    fs::create_directories(scratch_);
    reg.set_cache_dir(cache_dir_);
    reg.clear_disk_cache();
    reg.set_mode(Mode::kAuto);
    reg.reset_stats();
  }
  void TearDown() override {
    faultinj::configure("");
    auto& reg = Registry::instance();
    reg.clear_disk_cache();
    reg.set_cache_dir(saved_dir_);
    reg.set_mode(saved_mode_);
    std::error_code ec;
    fs::remove_all(scratch_, ec);
  }

  /// A compiler that answers --version then acts per the body lines.
  fs::path write_fake_cxx(const std::string& name, const std::string& body) {
    const fs::path fake = fs::path(scratch_) / name;
    write_file(fake,
               "#!/bin/sh\n"
               "case \"$*\" in *--version*) echo fake-g++ 1.0; exit 0;; esac\n" +
                   body);
    make_executable(fake);
    return fake;
  }

  /// uint16 mxm is outside the static set → kAuto must reach for the JIT.
  static std::int64_t uint16_mxm_corner() {
    Matrix a(2, 2, DType::kUInt16);
    a.set(0, 0, 3.0);
    a.set(0, 1, 2.0);
    a.set(1, 0, 5.0);
    Matrix c(2, 2, DType::kUInt16);
    c[None] = matmul(a, a);
    return c.get_element(0, 0).to_int64();
  }
  static constexpr std::int64_t kExpectedCorner = 3 * 3 + 2 * 5;

  Mode saved_mode_;
  std::string saved_dir_;
  std::string scratch_;
  std::string cache_dir_;
};

TEST_F(JitFaultsTest, HangingCompilerTimesOutAndFallsBackToInterp) {
  const auto fake = write_fake_cxx("hang_cxx.sh", "exec sleep 86399\n");
  EnvGuard cxx("PYGB_CXX", fake.string());
  EnvGuard timeout("PYGB_JIT_TIMEOUT_MS", "1500");
  EnvGuard retries("PYGB_JIT_RETRIES", "0");
  auto& reg = Registry::instance();
  reg.clear_memory_cache();
  reg.reset_stats();
  ASSERT_TRUE(reg.compiler_available());

  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(uint16_mxm_corner(), kExpectedCorner);  // via the interpreter
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  // The acceptance bound: deadline + 2s grace, with scheduling slack.
  EXPECT_LT(elapsed, 1500 + 2000 + 3000);

  const auto st = reg.stats();
  EXPECT_EQ(st.compiles, 1u);
  EXPECT_GE(st.jit_timeouts, 1u);
  EXPECT_GE(st.jit_fallbacks, 1u);
  EXPECT_GE(st.interp_dispatches, 1u);

  // Killed-compile hygiene: no orphaned .tmp output; the .log persists
  // and explains the kill.
  EXPECT_TRUE(list_with_suffix(cache_dir_, ".tmp").empty());
  const auto logs = list_with_suffix(cache_dir_, ".log");
  ASSERT_FALSE(logs.empty());
  const std::string log = read_file(logs.front());
  EXPECT_NE(log.find("killed after"), std::string::npos) << log;
  EXPECT_NE(log.find("PYGB_JIT_TIMEOUT_MS"), std::string::npos) << log;
}

TEST_F(JitFaultsTest, TransientFailureIsRetriedToSuccess) {
  // Self-SIGTERMs on the first compile (signaled → transient → retried),
  // then execs the real compiler.
  const fs::path counter = fs::path(scratch_) / "attempts";
  const auto fake = write_fake_cxx(
      "flaky_cxx.sh",
      "c=$(cat '" + counter.string() + "' 2>/dev/null || echo 0)\n"
      "echo $((c+1)) > '" + counter.string() + "'\n"
      "if [ \"$c\" -lt 1 ]; then kill -TERM $$; fi\n"
      "exec g++ \"$@\"\n");
  EnvGuard cxx("PYGB_CXX", fake.string());
  EnvGuard retries("PYGB_JIT_RETRIES", "2");
  auto& reg = Registry::instance();
  reg.clear_memory_cache();
  reg.reset_stats();

  EXPECT_EQ(uint16_mxm_corner(), kExpectedCorner);
  const auto st = reg.stats();
  EXPECT_EQ(st.compiles, 1u);       // one compile_module call…
  EXPECT_GE(st.jit_retries, 1u);    // …with an internal retry
  EXPECT_EQ(st.jit_fallbacks, 0u);  // no degradation: the retry healed it
}

TEST_F(JitFaultsTest, BreakerOpensAfterConsecutiveTransientFailures) {
  const auto fake = write_fake_cxx("dying_cxx.sh", "kill -TERM $$\n");
  EnvGuard cxx("PYGB_CXX", fake.string());
  EnvGuard retries("PYGB_JIT_RETRIES", "0");
  EnvGuard threshold("PYGB_BREAKER_THRESHOLD", "2");
  auto& reg = Registry::instance();
  reg.clear_memory_cache();  // also re-reads the breaker env knobs
  reg.reset_stats();

  // Failures 1 and 2 each attempt a compile; failure 2 crosses the
  // threshold and opens the circuit.
  EXPECT_EQ(uint16_mxm_corner(), kExpectedCorner);
  EXPECT_EQ(reg.stats().compiles, 1u);
  EXPECT_EQ(uint16_mxm_corner(), kExpectedCorner);
  EXPECT_EQ(reg.stats().compiles, 2u);
  EXPECT_GE(reg.stats().breaker_opens, 1u);

  // Open circuit: straight to the interpreter, no compile attempt.
  EXPECT_EQ(uint16_mxm_corner(), kExpectedCorner);
  const auto st = reg.stats();
  EXPECT_EQ(st.compiles, 2u);
  EXPECT_GE(st.breaker_short_circuits, 1u);
  EXPECT_GE(st.jit_fallbacks, 3u);
}

TEST_F(JitFaultsTest, BreakerHalfOpenProbeHeals) {
  const fs::path flag = fs::path(scratch_) / "broken";
  write_file(flag, "x");
  const auto fake = write_fake_cxx(
      "healing_cxx.sh",
      "if [ -e '" + flag.string() + "' ]; then kill -TERM $$; fi\n"
      "exec g++ \"$@\"\n");
  EnvGuard cxx("PYGB_CXX", fake.string());
  EnvGuard retries("PYGB_JIT_RETRIES", "0");
  EnvGuard threshold("PYGB_BREAKER_THRESHOLD", "1");
  EnvGuard ttl("PYGB_BREAKER_TTL_MS", "200");
  auto& reg = Registry::instance();
  reg.clear_memory_cache();
  reg.reset_stats();

  EXPECT_EQ(uint16_mxm_corner(), kExpectedCorner);  // transient fail → open
  EXPECT_EQ(reg.stats().compiles, 1u);
  EXPECT_GE(reg.stats().breaker_opens, 1u);
  EXPECT_EQ(uint16_mxm_corner(), kExpectedCorner);  // open → short-circuit
  EXPECT_EQ(reg.stats().compiles, 1u);

  // The environment heals; after the TTL one caller carries a probe.
  fs::remove(flag);
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_EQ(uint16_mxm_corner(), kExpectedCorner);
  const auto st = reg.stats();
  EXPECT_EQ(st.compiles, 2u);  // the probe compiled for real
  EXPECT_GE(st.breaker_probes, 1u);
  // Healed: subsequent calls hit the JIT module from memory.
  EXPECT_EQ(uint16_mxm_corner(), kExpectedCorner);
  EXPECT_EQ(reg.stats().compiles, 2u);
  EXPECT_EQ(reg.stats().jit_fallbacks, 2u);  // only the two failures
}

TEST_F(JitFaultsTest, CoalescedWaitersAreDeadlineBounded) {
  const auto fake = write_fake_cxx("hang2_cxx.sh", "exec sleep 86399\n");
  EnvGuard cxx("PYGB_CXX", fake.string());
  EnvGuard timeout("PYGB_JIT_TIMEOUT_MS", "1000");
  EnvGuard retries("PYGB_JIT_RETRIES", "0");
  auto& reg = Registry::instance();
  reg.clear_memory_cache();
  reg.reset_stats();
  ASSERT_TRUE(reg.compiler_available());

  // One leader hangs in the compile; the others coalesce onto its
  // in-flight record. EVERY thread must complete within deadline + grace
  // — nobody is parked on an unbounded wait.
  constexpr int kThreads = 4;
  std::atomic<int> correct{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      if (uint16_mxm_corner() == kExpectedCorner) ++correct;
    });
  }
  for (auto& t : threads) t.join();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_EQ(correct.load(), kThreads);
  EXPECT_LT(elapsed, 1000 + 2000 + 3000);  // deadline + grace + slack
  EXPECT_GE(reg.stats().jit_timeouts, 1u);
  EXPECT_GE(reg.stats().jit_fallbacks, 1u);
}

TEST_F(JitFaultsTest, InjectedCompileHangFallsBackWithinDeadline) {
  auto& reg = Registry::instance();
  {
    // The real compiler, but the faultinj hook parks the forked child
    // before exec — exercising the genuine kill/reap machinery.
    EnvGuard timeout("PYGB_JIT_TIMEOUT_MS", "800");
    EnvGuard retries("PYGB_JIT_RETRIES", "0");
    faultinj::configure("compile:hang:p=1");
    reg.clear_memory_cache();
    reg.reset_stats();

    EXPECT_EQ(uint16_mxm_corner(), kExpectedCorner);
    EXPECT_GE(reg.stats().jit_timeouts, 1u);
    EXPECT_GE(reg.stats().jit_fallbacks, 1u);
    EXPECT_GE(faultinj::fired_count(), 1u);
  }

  // Disarmed (and back on the default deadline), the same key compiles
  // and dispatches through the JIT.
  faultinj::configure("");
  reg.clear_memory_cache();
  reg.reset_stats();
  EXPECT_EQ(uint16_mxm_corner(), kExpectedCorner);
  EXPECT_EQ(reg.stats().compiles, 1u);
  EXPECT_EQ(reg.stats().jit_fallbacks, 0u);
}

TEST_F(JitFaultsTest, InjectedDlopenFailureDegradesAndHeals) {
  faultinj::configure("dlopen:fail:p=1");
  auto& reg = Registry::instance();
  reg.clear_memory_cache();
  reg.reset_stats();

  EXPECT_EQ(uint16_mxm_corner(), kExpectedCorner);  // interp fallback
  EXPECT_GE(reg.stats().jit_fallbacks, 1u);
  EXPECT_GE(faultinj::fired_count(), 1u);

  faultinj::configure("");
  reg.clear_memory_cache();
  reg.reset_stats();
  EXPECT_EQ(uint16_mxm_corner(), kExpectedCorner);
  EXPECT_EQ(reg.stats().jit_fallbacks, 0u);
}

TEST_F(JitFaultsTest, InjectedPublishCorruptionIsQuarantined) {
  faultinj::configure("cache_publish:corrupt:p=1,seed=1");
  auto& reg = Registry::instance();
  reg.clear_memory_cache();
  reg.reset_stats();

  // The compile succeeds but the published bytes are garbled: the stamp
  // scan must reject and quarantine them, never dlopen them.
  EXPECT_EQ(uint16_mxm_corner(), kExpectedCorner);
  EXPECT_GE(reg.stats().cache_quarantines, 1u);
  EXPECT_GE(reg.stats().jit_fallbacks, 1u);
  EXPECT_FALSE(list_with_suffix(cache_dir_, ".bad").empty());
  faultinj::configure("");
}

TEST_F(JitFaultsTest, HeldLockFallsBackToPrivateCompile) {
  // A peer wedged while HOLDING the stem lock must cost coalescing, not
  // liveness: after PYGB_LOCK_TIMEOUT_MS the compile proceeds privately.
  EnvGuard lock_timeout("PYGB_LOCK_TIMEOUT_MS", "200");
  auto& reg = Registry::instance();
  reg.set_mode(Mode::kJit);
  reg.clear_memory_cache();
  reg.reset_stats();

  OpRequest req;
  req.func = func::kMxM;
  req.a = DType::kUInt16;
  req.b = DType::kUInt16;
  req.semiring = MinPlusSemiring();
  const std::string key = req.key();
  fs::create_directories(cache_dir_);
  const std::string lock_path =
      (fs::path(cache_dir_) / (module_stem(key) + ".lock")).string();
  const int holder = ::open(lock_path.c_str(), O_CREAT | O_RDWR, 0644);
  ASSERT_GE(holder, 0);
  ASSERT_EQ(::flock(holder, LOCK_EX), 0);

  ResolveInfo info;
  KernelFn fn = reg.get(req, &info);
  EXPECT_NE(fn, nullptr);
  EXPECT_STREQ(info.backend, "jit-compile");
  EXPECT_GE(reg.stats().lock_timeouts, 1u);

  ::flock(holder, LOCK_UN);
  ::close(holder);
}

TEST_F(JitFaultsTest, BreakerStateIsObservable) {
  auto& reg = Registry::instance();
  CircuitBreaker& breaker = reg.breaker();
  EXPECT_EQ(breaker.state("some-key"), BreakerState::kClosed);
  breaker.on_failure("some-key", /*transient=*/false, "broken toolchain");
  EXPECT_EQ(breaker.state("some-key"), BreakerState::kOpen);
  const std::string desc = breaker.describe("some-key");
  EXPECT_NE(desc.find("open"), std::string::npos);
  EXPECT_NE(desc.find("permanent"), std::string::npos);
  EXPECT_NE(desc.find("broken toolchain"), std::string::npos);
  EXPECT_EQ(breaker.acquire("some-key"),
            CircuitBreaker::Decision::kShortCircuit);
  breaker.on_success("some-key");
  EXPECT_EQ(breaker.state("some-key"), BreakerState::kClosed);
}

// ---------------------------------------------------------------------------
// Governor chaos: resource aborts mid-kernel with the pool fanned out.
// ---------------------------------------------------------------------------

class GovernorChaos : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_threads_ = gbtl::detail::num_threads();
    governor::set_mem_limit_bytes(0);
    faultinj::configure("");
  }
  void TearDown() override {
    governor::set_mem_limit_bytes(0);
    faultinj::configure("");
    gbtl::detail::set_num_threads(saved_threads_);
  }

  static gbtl::Matrix<double> band_matrix(gbtl::IndexType n) {
    gbtl::Matrix<double> m(n, n);
    for (gbtl::IndexType i = 0; i < n; ++i) {
      for (gbtl::IndexType d = 0; d < 4; ++d) {
        m.setElement(i, (i + d) % n, static_cast<double>(i + d + 1));
      }
    }
    return m;
  }

  unsigned saved_threads_ = 1;
};

TEST_F(GovernorChaos, BudgetExhaustionMidMxmAtFourThreads) {
  // Budget sized so mxm's up-front row-table charge fits but the first
  // per-worker SpA accumulator charge does not: the abort happens with all
  // four workers live inside the kernel. The first exception wins, the
  // pool stays healthy, and the output is untouched.
  constexpr gbtl::IndexType kN = 512;
  const auto a = band_matrix(kN);
  const auto b = band_matrix(kN);
  gbtl::detail::set_num_threads(4);

  gbtl::Matrix<double> c(kN, kN);
  const std::uint64_t row_table = kN * sizeof(gbtl::Matrix<double>::Row);
  const std::uint64_t spa = kN * (sizeof(double) + 1);
  governor::set_mem_limit_bytes(row_table + spa / 2);
  EXPECT_THROW(gbtl::mxm(c, gbtl::NoMask{}, gbtl::NoAccumulate{},
                         gbtl::ArithmeticSemiring<double>{}, a, b),
               governor::ResourceExhausted);
  EXPECT_EQ(c.nvals(), 0u);  // strong guarantee
  // No charge leaked out of the unwind.
  EXPECT_EQ(governor::stats().mem_current_bytes, 0u);

  // Budget reset => the same op succeeds, and matches the single-thread
  // reference bit-for-bit (the pool survived the mid-flight unwind).
  governor::set_mem_limit_bytes(0);
  gbtl::mxm(c, gbtl::NoMask{}, gbtl::NoAccumulate{},
            gbtl::ArithmeticSemiring<double>{}, a, b);
  gbtl::detail::set_num_threads(1);
  gbtl::Matrix<double> ref(kN, kN);
  gbtl::mxm(ref, gbtl::NoMask{}, gbtl::NoAccumulate{},
            gbtl::ArithmeticSemiring<double>{}, a, b);
  EXPECT_TRUE(c == ref);
}

TEST_F(GovernorChaos, InjectedGovernorFaultMidMxmAtFourThreads) {
  // Same shape driven by the faultinj site instead of a real budget: the
  // Nth checkpoint fires inside the row loop with the pool fanned out.
  constexpr gbtl::IndexType kN = 256;
  const auto a = band_matrix(kN);
  const auto b = band_matrix(kN);
  gbtl::detail::set_num_threads(4);

  gbtl::Matrix<double> c(kN, kN);
  faultinj::configure("governor:fail:n=1");
  EXPECT_THROW(gbtl::mxm(c, gbtl::NoMask{}, gbtl::NoAccumulate{},
                         gbtl::ArithmeticSemiring<double>{}, a, b),
               governor::ResourceExhausted);
  EXPECT_EQ(c.nvals(), 0u);
  faultinj::configure("");

  gbtl::mxm(c, gbtl::NoMask{}, gbtl::NoAccumulate{},
            gbtl::ArithmeticSemiring<double>{}, a, b);
  EXPECT_EQ(c.nrows(), kN);
  EXPECT_GT(c.nvals(), 0u);
}

}  // namespace
