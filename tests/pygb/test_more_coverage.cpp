// Additional coverage: DSL surface corners not exercised by the main
// suites — masked indexed assignment, masked row-reduce, accumulating
// region ops, handle rebinding through proxies, and odd-but-legal
// combinations from the C API.
#include <gtest/gtest.h>

#include "gbtl/gbtl.hpp"
#include "algorithms/dsl_algorithms.hpp"
#include "pygb/pygb.hpp"

namespace {

using namespace pygb;  // NOLINT

// These corners reach operator/dtype combinations outside the curated
// static kernel set: pin auto mode (static → jit → interp ladder) so a
// forced PYGB_JIT_MODE=static environment can't make them unservable.
class Coverage : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& reg = jit::Registry::instance();
    saved_mode_ = reg.mode();
    reg.set_mode(jit::Mode::kAuto);
  }
  void TearDown() override {
    jit::Registry::instance().set_mode(saved_mode_);
  }

  jit::Mode saved_mode_{};
};

TEST_F(Coverage, MaskedIndexedMatrixAssign) {
  // C[M](rows, cols) = A — mask over the whole container, region indexed.
  Matrix c(3, 3);
  Matrix mask(3, 3, DType::kBool);
  mask.set(0, 1, Scalar(true));
  mask.set(1, 1, Scalar(true));
  Matrix src({{7, 8}, {9, 10}});
  c[mask](Slice(0, 2), Slice(0, 2)) = src;
  // Only masked-in positions of the region land.
  EXPECT_EQ(c.nvals(), 2u);
  EXPECT_DOUBLE_EQ(c.get(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(c.get(1, 1), 10.0);
}

TEST_F(Coverage, MaskedRowReduce) {
  Matrix a({{1, 2}, {3, 4}, {5, 6}});
  Vector mask(3, DType::kBool);
  mask.set(1, Scalar(true));
  Vector w(3);
  w[Slice::all()] = 100.0;
  {
    With ctx(Replace);
    w[mask] = reduce_rows(a, PlusMonoid());
  }
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_DOUBLE_EQ(w.get(1), 7.0);
}

TEST_F(Coverage, SubMatrixPlusEquals) {
  Matrix c({{1, 1}, {1, 1}});
  Matrix add({{5}});
  {
    With ctx(Accumulator("Plus"));
    c(gbtl::IndexArray{1}, gbtl::IndexArray{0}) += add;
  }
  EXPECT_DOUBLE_EQ(c.get(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(c.get(0, 0), 1.0);
}

TEST_F(Coverage, MatrixConstantAssignViaSlices) {
  Matrix c(3, 3, DType::kInt32);
  c(Slice(1, 3), Slice(0, 2)) = 4.0;
  EXPECT_EQ(c.nvals(), 4u);
  EXPECT_EQ(c.get_element(2, 1).to_int64(), 4);
  EXPECT_FALSE(c.has_element(0, 0));
}

TEST_F(Coverage, ComplementMaskOnMatrixExpression) {
  Matrix a({{1, 1}, {1, 1}});
  Matrix mask(2, 2, DType::kInt64);  // non-bool: coerced
  mask.set(0, 0, 5.0);   // truthy
  mask.set(1, 1, 0.0);   // stored falsy -> complement treats as IN
  Matrix c(2, 2);
  c[~mask] = a * a;
  EXPECT_FALSE(c.has_element(0, 0));
  EXPECT_TRUE(c.has_element(1, 1));
  EXPECT_TRUE(c.has_element(0, 1));
  EXPECT_EQ(c.nvals(), 3u);
}

TEST_F(Coverage, RebindThroughExpressionKeepsDtypeOfOperands) {
  Matrix a({{1, 0}, {0, 1}}, DType::kInt32);
  Matrix c;  // undefined handle
  c = matmul(a, a);
  EXPECT_TRUE(c.defined());
  EXPECT_EQ(c.dtype(), DType::kInt32);
}

TEST_F(Coverage, InterpAgreementRowReduceMasked) {
  auto body = [] {
    Matrix a({{1, 2, 3}, {0, 0, 0}, {4, 5, 6}}, DType::kInt64);
    Vector mask(3, DType::kBool);
    mask.set(0, Scalar(true));
    mask.set(2, Scalar(true));
    Vector w(3, DType::kInt64);
    w[mask] = reduce_rows(a, MaxMonoid());
    return w;
  };
  auto& reg = jit::Registry::instance();
  reg.set_mode(jit::Mode::kStatic);
  Vector s = body();
  reg.set_mode(jit::Mode::kInterp);
  Vector i = body();
  reg.set_mode(jit::Mode::kAuto);
  EXPECT_TRUE(s.equals(i));
  EXPECT_EQ(s.get_element(2).to_int64(), 6);
}

TEST_F(Coverage, VectorExtractWithStep) {
  Vector u({10, 20, 30, 40, 50, 60});
  Vector sub = u[Slice(1, 6, 2)].extract();
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub.get(0), 20.0);
  EXPECT_DOUBLE_EQ(sub.get(1), 40.0);
  EXPECT_DOUBLE_EQ(sub.get(2), 60.0);
}

TEST_F(Coverage, AccumulateIntoMaskedRegionKeepsOutside) {
  Vector w({1, 1, 1, 1});
  Vector mask(4, DType::kBool);
  mask.set(0, Scalar(true));
  mask.set(2, Scalar(true));
  Vector u({10, 10, 10, 10});
  {
    With ctx(Accumulator("Plus"));
    w[mask] += apply(u, UnaryOp("Identity"));
  }
  EXPECT_DOUBLE_EQ(w.get(0), 11.0);
  EXPECT_DOUBLE_EQ(w.get(1), 1.0);
  EXPECT_DOUBLE_EQ(w.get(2), 11.0);
}

TEST_F(Coverage, BoolContainersThroughDsl) {
  Matrix a(2, 2, DType::kBool);
  a.set(0, 0, Scalar(true));
  a.set(0, 1, Scalar(true));
  a.set(1, 0, Scalar(true));
  Matrix c(2, 2, DType::kBool);
  {
    With ctx(LogicalSemiring());
    c[None] = matmul(a, a);
  }
  EXPECT_TRUE(c.has_element(0, 0));
  EXPECT_EQ(c.get_element(1, 1).to_int64(), 1);
  EXPECT_EQ(reduce(c, LogicalOrMonoid()).to_int64(), 1);
}

TEST_F(Coverage, ChainedWithBlocksRestoreState) {
  // Pathological nesting: every guard must pop exactly its own entries.
  for (int round = 0; round < 3; ++round) {
    With a(ArithmeticSemiring());
    {
      With b(MinPlusSemiring(), Replace, Accumulator("Min"));
      {
        With c(LogicalSemiring());
        EXPECT_EQ(current_semiring().key(), LogicalSemiring().key());
      }
      EXPECT_EQ(current_semiring().key(), MinPlusSemiring().key());
      EXPECT_TRUE(current_replace());
    }
    EXPECT_EQ(current_semiring().key(), ArithmeticSemiring().key());
    EXPECT_FALSE(current_replace());
  }
  EXPECT_EQ(context_depth(), 0u);
}

TEST_F(Coverage, NativeExtractWithAccumulator) {
  gbtl::Matrix<int> a({{1, 2}, {3, 4}});
  gbtl::Matrix<int> c({{10, 10}, {10, 10}});
  gbtl::extract(c, gbtl::NoMask{}, gbtl::Plus<int>{}, a,
                gbtl::IndexArray{0, 1}, gbtl::IndexArray{0, 1});
  EXPECT_EQ(c.extractElement(0, 0), 11);
  EXPECT_EQ(c.extractElement(1, 1), 14);
}

TEST_F(Coverage, NativeRowReduceWithAccumAndReplace) {
  gbtl::Matrix<int> a({{1, 2}, {0, 0}});
  gbtl::Vector<int> w{100, 100};
  gbtl::Vector<bool> mask(2);
  mask.setElement(0, true);
  gbtl::reduce(w, mask, gbtl::Plus<int>{}, gbtl::PlusMonoid<int>{}, a,
               gbtl::OutputControl::kReplace);
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_EQ(w.extractElement(0), 103);
}

TEST_F(Coverage, EmptyFrontierBfsTerminatesImmediately) {
  Matrix graph({{0, 1}, {0, 0}});
  Vector frontier(2, DType::kBool);  // no source set
  Vector levels(2, DType::kInt64);
  EXPECT_EQ(pygb::algo::dsl_bfs(graph, frontier, levels), 0u);
  EXPECT_EQ(levels.nvals(), 0u);
}

TEST_F(Coverage, ScalarAssignRespectsTargetDtype) {
  Vector v(3, DType::kInt8);
  v[Slice::all()] = 300.0;  // truncated into int8 (implementation-defined
                            // wrap via static_cast, exercised for coverage)
  EXPECT_EQ(v.nvals(), 3u);
  Vector f(3, DType::kFP32);
  f[Slice::all()] = 0.5;
  EXPECT_DOUBLE_EQ(f.get(0), 0.5);
}

}  // namespace
