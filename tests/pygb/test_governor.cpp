// Tests: pygb::governor — error taxonomy, memory budgets, deadlines,
// cooperative cancellation, and the strong no-partial-output guarantee
// across every backend and thread count (docs/ROBUSTNESS.md).
//
// The acceptance matrix: PageRank under a small PYGB_OP_TIMEOUT_MS must
// raise DeadlineExceeded within 2x the deadline at 1 and 4 threads in all
// of {interp, static, jit}, leave the output container untouched, and the
// worker pool must accept the next operation.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>

#include "algorithms/dsl_algorithms.hpp"
#include "algorithms/pagerank.hpp"
#include "gbtl/detail/backend.hpp"
#include "gbtl/detail/parallel.hpp"
#include "gbtl/gbtl.hpp"
#include "generators/classic.hpp"
#include "generators/erdos_renyi.hpp"
#include "pygb/faultinj.hpp"
#include "pygb/governor.hpp"
#include "pygb/jit/compiler.hpp"
#include "pygb/jit/registry.hpp"
#include "pygb/obs/obs.hpp"
#include "pygb/pygb.hpp"

namespace {

using namespace pygb;  // NOLINT
namespace gov = pygb::governor;

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Restores every knob the suite can twist: governor config, any pending
/// cancel, faultinj spec, dispatch mode, thread count.
class GovernorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_mode_ = jit::Registry::instance().mode();
    saved_threads_ = gbtl::detail::num_threads();
    saved_backend_ = gbtl::detail::default_backend();
    saved_tile_bytes_ = gbtl::detail::mxm_tile_bytes();
    gov::set_mem_limit_bytes(0);
    gov::set_op_timeout_ms(0);
    drain_cancel();
    faultinj::configure("");
  }
  void TearDown() override {
    gov::set_mem_limit_bytes(0);
    gov::set_op_timeout_ms(0);
    drain_cancel();
    faultinj::configure("");
    jit::Registry::instance().set_mode(saved_mode_);
    gbtl::detail::set_num_threads(saved_threads_);
    gbtl::detail::set_default_backend(saved_backend_);
    gbtl::detail::mxm_tile_bytes() = saved_tile_bytes_;
  }

  /// Consume a cancel request this test may have left pending (an unscoped
  /// checkpoint consumes it; swallow the resulting Cancelled).
  static void drain_cancel() {
    if (gov::cancel_requested()) {
      try {
        gov::checkpoint();
      } catch (const gov::Cancelled&) {
      }
    }
  }

  jit::Mode saved_mode_{};
  unsigned saved_threads_ = 1;
  gbtl::detail::Backend saved_backend_{};
  std::uint64_t saved_tile_bytes_ = 0;
};

// --- taxonomy --------------------------------------------------------------

TEST_F(GovernorTest, TaxonomyTransienceClassification) {
  gov::ResourceExhausted re("x");
  gov::DeadlineExceeded de("x");
  gov::Cancelled ca("x");
  EXPECT_TRUE(re.transient());
  EXPECT_TRUE(de.transient());
  EXPECT_FALSE(ca.transient());
  // All three unify under GovernorError and std::runtime_error.
  EXPECT_NE(dynamic_cast<const gov::GovernorError*>(&re), nullptr);
  EXPECT_NE(dynamic_cast<const std::runtime_error*>(&ca), nullptr);
}

// --- memory budget ---------------------------------------------------------

TEST_F(GovernorTest, MemReserveRejectsOverBudgetWithoutRetaining) {
  const auto before = gov::stats();
  gov::set_mem_limit_bytes(1024);
  gov::mem_reserve(512);  // fits
  EXPECT_THROW(gov::mem_reserve(1024), gov::ResourceExhausted);
  const auto after = gov::stats();
  EXPECT_EQ(after.mem_budget_rejections, before.mem_budget_rejections + 1);
  // The rejected charge was not retained; only the granted 512 remain.
  EXPECT_EQ(after.mem_current_bytes, before.mem_current_bytes + 512);
  gov::mem_release(512);
}

TEST_F(GovernorTest, MemChargeRaiiReleasesOnScopeExit) {
  const auto base = gov::stats().mem_current_bytes;
  {
    gov::MemCharge charge(4096);
    EXPECT_EQ(gov::stats().mem_current_bytes, base + 4096);
    charge.add(1000);
    EXPECT_EQ(charge.held(), 5096u);
  }
  EXPECT_EQ(gov::stats().mem_current_bytes, base);
}

TEST_F(GovernorTest, PeakTracksGrantedChargesOnly) {
  gov::reset_stats();
  const auto base = gov::stats().mem_current_bytes;
  gov::set_mem_limit_bytes(base + 8192);
  { gov::MemCharge charge(8000); }
  EXPECT_THROW(gov::mem_reserve(base + 100000), gov::ResourceExhausted);
  // The peak saw the granted 8000 but not the rejected 100000.
  EXPECT_GE(gov::stats().mem_peak_bytes, base + 8000);
  EXPECT_LT(gov::stats().mem_peak_bytes, base + 100000);
}

TEST_F(GovernorTest, ReleaseClampsAtZero) {
  const auto base = gov::stats().mem_current_bytes;
  gov::mem_release(base + 999999);  // unmatched release must not wrap
  EXPECT_EQ(gov::stats().mem_current_bytes, 0u);
}

// --- checkpoints and cancellation ------------------------------------------

TEST_F(GovernorTest, CheckpointDisarmedIsANoop) {
  EXPECT_NO_THROW(gov::checkpoint());
}

TEST_F(GovernorTest, CancelConsumedByExactlyOneCheckpoint) {
  const auto before = gov::stats().ops_cancelled;
  gov::cancel();
  EXPECT_TRUE(gov::cancel_requested());
  EXPECT_THROW(gov::checkpoint(), gov::Cancelled);
  EXPECT_FALSE(gov::cancel_requested());
  // The request is consumed: the next checkpoint (and op) proceeds.
  EXPECT_NO_THROW(gov::checkpoint());
  EXPECT_EQ(gov::stats().ops_cancelled, before + 1);
}

TEST_F(GovernorTest, CancelAbortsNativePagerankWithoutTouchingOutput) {
  auto el = gen::paper_graph(256, 77, /*symmetric=*/true);
  auto g = gen::to_adjacency<double>(el);
  gbtl::Vector<double> rank(256);
  gov::cancel();
  EXPECT_THROW(algo::page_rank(g, rank), gov::Cancelled);
  EXPECT_EQ(rank.nvals(), 0u);  // strong guarantee: no partial commit
  // And the very same call succeeds now that the cancel is consumed.
  EXPECT_NO_THROW(algo::page_rank(g, rank));
  EXPECT_EQ(rank.nvals(), 256u);
}

// --- fault injection -------------------------------------------------------

TEST_F(GovernorTest, InjectedBudgetExhaustionAtCheckpoint) {
  faultinj::configure("governor:fail:n=1");
  const auto before = gov::stats().mem_budget_rejections;
  EXPECT_THROW(gov::checkpoint(), gov::ResourceExhausted);
  EXPECT_EQ(gov::stats().mem_budget_rejections, before + 1);
  faultinj::configure("");
  EXPECT_NO_THROW(gov::checkpoint());
}

TEST_F(GovernorTest, InjectedDeadlineAtCheckpoint) {
  faultinj::configure("governor:hang:n=1");
  const auto before = gov::stats().ops_deadline_exceeded;
  EXPECT_THROW(gov::checkpoint(), gov::DeadlineExceeded);
  EXPECT_EQ(gov::stats().ops_deadline_exceeded, before + 1);
  faultinj::configure("");
}

// --- obs mirror ------------------------------------------------------------

TEST_F(GovernorTest, ObsCountersMirrorGovernorStats) {
  faultinj::configure("governor:fail:n=1");
  try {
    gov::checkpoint();
  } catch (const gov::ResourceExhausted&) {
  }
  faultinj::configure("");
  EXPECT_EQ(obs::counter_value(obs::Counter::kMemBudgetRejections),
            gov::stats().mem_budget_rejections);
  EXPECT_EQ(obs::counter_value(obs::Counter::kOpsDeadlineExceeded),
            gov::stats().ops_deadline_exceeded);
  EXPECT_EQ(obs::counter_value(obs::Counter::kOpsCancelled),
            gov::stats().ops_cancelled);
  EXPECT_EQ(obs::counter_value(obs::Counter::kMemPeakBytes),
            gov::stats().mem_peak_bytes);
}

// --- acceptance matrix: deadline x backend x threads -----------------------

struct Combo {
  jit::Mode mode;
  unsigned threads;
  const char* name;
};

constexpr Combo kCombos[] = {
    {jit::Mode::kInterp, 1, "interp/1t"}, {jit::Mode::kInterp, 4, "interp/4t"},
    {jit::Mode::kStatic, 1, "static/1t"}, {jit::Mode::kStatic, 4, "static/4t"},
    {jit::Mode::kJit, 1, "jit/1t"},       {jit::Mode::kJit, 4, "jit/4t"},
};

constexpr std::uint64_t kDeadlineMs = 400;

TEST_F(GovernorTest, PagerankDeadlineAcrossBackendsAndThreads) {
  auto el = gen::paper_graph(1024, 88, /*symmetric=*/true);
  Matrix graph = Matrix::from_edge_list(el);
  const bool jit_ok = jit::compiler_available();

  for (const auto& combo : kCombos) {
    if (combo.mode == jit::Mode::kJit && !jit_ok) continue;
    SCOPED_TRACE(combo.name);
    jit::Registry::instance().set_mode(combo.mode);
    gbtl::detail::set_num_threads(combo.threads);

    // Warm the kernel with no deadline so JIT compilation (bounded by its
    // own PYGB_JIT_TIMEOUT_MS) stays out of the timing below.
    {
      Vector warm(1024, DType::kFP64);
      algo::whole_page_rank(graph, warm, 0.85, 1e-5, 3);
    }

    // threshold=0 never converges (squared_error < 0 is false), so only
    // the deadline can stop the run.
    Vector rank(1024, DType::kFP64);
    gov::set_op_timeout_ms(kDeadlineMs);
    const std::uint64_t t0 = now_ms();
    EXPECT_THROW(algo::whole_page_rank(graph, rank, 0.85, 0.0, 100000000u),
                 gov::DeadlineExceeded);
    const std::uint64_t elapsed = now_ms() - t0;
    gov::set_op_timeout_ms(0);

    EXPECT_LT(elapsed, 2 * kDeadlineMs) << "checkpoints too sparse";
    // Strong guarantee: the aborted op never touched the output.
    EXPECT_EQ(rank.nvals(), 0u);
    // The pool survived the mid-flight unwind: the next op completes.
    const auto iters = algo::whole_page_rank(graph, rank, 0.85, 1e-5, 50);
    EXPECT_GT(iters, 0u);
    EXPECT_EQ(rank.nvals(), 1024u);
  }
  if (!jit_ok) {
    GTEST_LOG_(INFO) << "no C++ compiler reachable; jit combos skipped";
  }
  EXPECT_GE(gov::stats().ops_deadline_exceeded, 1u);
}

TEST_F(GovernorTest, PagerankMemBudgetRaisesInsteadOfOom) {
  auto el = gen::paper_graph(1024, 89, /*symmetric=*/true);
  Matrix graph = Matrix::from_edge_list(el);
  jit::Registry::instance().set_mode(jit::Mode::kStatic);
  gbtl::detail::set_num_threads(4);

  Vector rank(1024, DType::kFP64);
  gov::set_mem_limit_bytes(2048);  // below any kernel's staging charge
  EXPECT_THROW(algo::whole_page_rank(graph, rank, 0.85, 1e-5, 50),
               gov::ResourceExhausted);
  EXPECT_EQ(rank.nvals(), 0u);

  // Budget restored => the identical call succeeds.
  gov::set_mem_limit_bytes(0);
  EXPECT_NO_THROW(algo::whole_page_rank(graph, rank, 0.85, 1e-5, 50));
  EXPECT_EQ(rank.nvals(), 1024u);
}

// --- simd backend: deadline + no-partial-output with tiled kernels ---------

// The acceptance matrix extended along the backend axis (docs/BACKENDS.md):
// under the simd backend at 4 threads — with the L2-tiled mxm budget forced
// to its minimum so every matrix multiply runs the tiled kernel — the
// deadline must still fire within 2x, the output container must stay
// untouched, and the pool must accept the next op.
TEST_F(GovernorTest, SimdDeadlineAtFourThreadsHoldsGuarantees) {
  auto el = gen::paper_graph(1024, 90, /*symmetric=*/true);
  Matrix graph = Matrix::from_edge_list(el);
  jit::Registry::instance().set_mode(jit::Mode::kStatic);
  gbtl::detail::set_num_threads(4);
  gbtl::detail::set_default_backend(gbtl::detail::Backend::kSimd);
  gbtl::detail::mxm_tile_bytes() = 1;

  {
    Vector warm(1024, DType::kFP64);
    algo::whole_page_rank(graph, warm, 0.85, 1e-5, 3);
  }

  Vector rank(1024, DType::kFP64);
  gov::set_op_timeout_ms(kDeadlineMs);
  const std::uint64_t t0 = now_ms();
  EXPECT_THROW(algo::whole_page_rank(graph, rank, 0.85, 0.0, 100000000u),
               gov::DeadlineExceeded);
  const std::uint64_t elapsed = now_ms() - t0;
  gov::set_op_timeout_ms(0);

  EXPECT_LT(elapsed, 2 * kDeadlineMs)
      << "simd kernels starved the deadline checkpoints";
  EXPECT_EQ(rank.nvals(), 0u);
  const auto iters = algo::whole_page_rank(graph, rank, 0.85, 1e-5, 50);
  EXPECT_GT(iters, 0u);
  EXPECT_EQ(rank.nvals(), 1024u);
}

// Cooperative cancellation mid-flight inside the tiled simd Gustavson
// kernel: the abort unwinds through the worker pool without committing any
// rows, and the identical call then succeeds (cache left consistent too —
// the transposed operand means a cancelled run must not publish a partial
// cached transpose).
TEST_F(GovernorTest, SimdTiledMxmCancelLeavesOutputUntouched) {
  auto el = gen::paper_graph(512, 91, /*symmetric=*/true);
  auto g = gen::to_adjacency<double>(el);
  gbtl::detail::set_num_threads(4);
  gbtl::detail::set_default_backend(gbtl::detail::Backend::kSimd);
  gbtl::detail::mxm_tile_bytes() = 1;

  gbtl::Matrix<double> c(512, 512);
  gov::cancel();
  EXPECT_THROW(gbtl::mxm(c, gbtl::NoMask{}, gbtl::NoAccumulate{},
                         gbtl::ArithmeticSemiring<double>{},
                         gbtl::transpose(g), g),
               gov::Cancelled);
  EXPECT_EQ(c.nvals(), 0u);  // strong guarantee: no partial commit

  EXPECT_NO_THROW(gbtl::mxm(c, gbtl::NoMask{}, gbtl::NoAccumulate{},
                            gbtl::ArithmeticSemiring<double>{},
                            gbtl::transpose(g), g));
  EXPECT_GT(c.nvals(), 0u);

  // The result matches the scalar backend's bit-for-bit: the cancelled
  // attempt left no partial state behind that could skew the rerun.
  gbtl::detail::set_default_backend(gbtl::detail::Backend::kScalar);
  gbtl::Matrix<double> ref(512, 512);
  gbtl::mxm(ref, gbtl::NoMask{}, gbtl::NoAccumulate{},
            gbtl::ArithmeticSemiring<double>{}, gbtl::transpose(g), g);
  EXPECT_TRUE(c == ref);
}

TEST_F(GovernorTest, DeadlineErrorNamesOpAndElapsed) {
  auto el = gen::cycle_graph(512);
  Matrix graph = Matrix::from_edge_list(el);
  jit::Registry::instance().set_mode(jit::Mode::kStatic);
  Vector rank(512, DType::kFP64);
  gov::set_op_timeout_ms(100);
  try {
    algo::whole_page_rank(graph, rank, 0.85, 0.0, 100000000u);
    FAIL() << "expected DeadlineExceeded";
  } catch (const gov::DeadlineExceeded& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("algo_pagerank"), std::string::npos) << msg;
    EXPECT_NE(msg.find("PYGB_OP_TIMEOUT_MS"), std::string::npos) << msg;
  }
}

}  // namespace
