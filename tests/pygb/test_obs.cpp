// Tests: the pygb::obs observability layer — histogram bucket math, span
// nesting and thread attribution, the zero-overhead disabled path, Chrome
// trace_event JSON well-formedness (parsed back by a small validator), and
// torn-event-free concurrent tracing. ObsPipelineTrace runs a real dispatch
// and asserts one span per Fig. 9 pipeline stage lands in the trace.
#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "pygb/obs/obs.hpp"
#include "pygb/pygb.hpp"

namespace {

using namespace pygb;  // NOLINT

// ---------------------------------------------------------------------------
// A minimal JSON validator: parses the full grammar (objects, arrays,
// strings with escapes, numbers, literals) and rejects trailing garbage.
// Enough to prove the exporters emit well-formed documents.
// ---------------------------------------------------------------------------

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int k = 1; k <= 4; ++k) {
            if (pos_ + k >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(s_[pos_ + k])) == 0) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(peek_uc()) != 0) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (std::isdigit(peek_uc()) == 0) return false;
      while (std::isdigit(peek_uc()) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (std::isdigit(peek_uc()) == 0) return false;
      while (std::isdigit(peek_uc()) != 0) ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(
                               s_[pos_ - 1])) != 0;
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  int peek_uc() const { return static_cast<unsigned char>(peek()); }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

bool json_contains_name(const std::string& json, const std::string& name) {
  return json.find("\"name\":\"" + name + "\"") != std::string::npos;
}

/// Every obs test starts and ends with both facilities off and empty.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    obs::set_tracing_enabled(false);
    obs::set_metrics_enabled(false);
    obs::clear_trace_events();
    obs::reset_metrics();
  }
};

// ---------------------------------------------------------------------------
// Histogram bucket math
// ---------------------------------------------------------------------------

using ObsHistogram = ObsTest;

TEST_F(ObsHistogram, BucketMath) {
  EXPECT_EQ(obs::value_bucket(0), 0);
  EXPECT_EQ(obs::value_bucket(1), 1);
  EXPECT_EQ(obs::value_bucket(2), 2);
  EXPECT_EQ(obs::value_bucket(3), 2);
  EXPECT_EQ(obs::value_bucket(4), 3);
  EXPECT_EQ(obs::value_bucket(1023), 10);
  EXPECT_EQ(obs::value_bucket(1024), 11);
  EXPECT_EQ(obs::value_bucket(~std::uint64_t{0}), obs::kHistogramBuckets - 1);

  EXPECT_EQ(obs::bucket_lower_bound(0), 0u);
  EXPECT_EQ(obs::bucket_lower_bound(1), 1u);
  EXPECT_EQ(obs::bucket_lower_bound(2), 2u);
  EXPECT_EQ(obs::bucket_lower_bound(3), 4u);

  // Every value lands in the bucket whose [lower, next-lower) range
  // contains it (except the saturated top bucket).
  for (std::uint64_t v : {1ull, 2ull, 3ull, 7ull, 8ull, 1000ull, 1ull << 40}) {
    const int b = obs::value_bucket(v);
    EXPECT_GE(v, obs::bucket_lower_bound(b)) << v;
    if (b < obs::kHistogramBuckets - 1) {
      EXPECT_LT(v, obs::bucket_lower_bound(b + 1)) << v;
    }
  }
}

TEST_F(ObsHistogram, RecordAggregatesAndPercentiles) {
  obs::set_metrics_enabled(true);
  for (std::uint64_t v : {1u, 2u, 4u, 8u}) {
    obs::record_value("test_hist_ns", v);
  }
  const auto snap = obs::metrics_snapshot();
  const auto it = snap.histograms.find("test_hist_ns");
  ASSERT_NE(it, snap.histograms.end());
  const auto& h = it->second;
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum, 15u);
  EXPECT_EQ(h.buckets[1], 1u);  // value 1
  EXPECT_EQ(h.buckets[2], 1u);  // value 2
  EXPECT_EQ(h.buckets[3], 1u);  // value 4
  EXPECT_EQ(h.buckets[4], 1u);  // value 8
  EXPECT_EQ(h.percentile(0.0), 1u);
  EXPECT_EQ(h.percentile(0.5), 4u);
  EXPECT_EQ(h.percentile(1.0), 8u);
}

TEST_F(ObsHistogram, DisabledRecordIsDropped) {
  ASSERT_FALSE(obs::metrics_enabled());
  obs::record_value("test_disabled_hist", 42);
  const auto snap = obs::metrics_snapshot();
  const auto it = snap.histograms.find("test_disabled_hist");
  if (it != snap.histograms.end()) {
    EXPECT_EQ(it->second.count, 0u);  // name may persist from other runs
  }
}

TEST_F(ObsHistogram, ResetClearsCountsButKeepsNames) {
  obs::set_metrics_enabled(true);
  obs::record_value("test_reset_hist", 7);
  obs::reset_metrics();
  const auto snap = obs::metrics_snapshot();
  const auto it = snap.histograms.find("test_reset_hist");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_EQ(it->second.count, 0u);
  EXPECT_EQ(it->second.sum, 0u);
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

using ObsCounters = ObsTest;

TEST_F(ObsCounters, AddReadReset) {
  obs::reset_counters();
  obs::counter_add(obs::Counter::kCompiles, 3);
  obs::counter_add(obs::Counter::kCompiles);
  EXPECT_EQ(obs::counter_value(obs::Counter::kCompiles), 4u);
  obs::reset_counters();
  EXPECT_EQ(obs::counter_value(obs::Counter::kCompiles), 0u);
}

TEST_F(ObsCounters, EveryCounterHasAName) {
  std::set<std::string> names;
  for (unsigned i = 0; i < obs::kCounterCount; ++i) {
    const char* n = obs::counter_name(static_cast<obs::Counter>(i));
    ASSERT_NE(n, nullptr);
    EXPECT_TRUE(names.insert(n).second) << "duplicate counter name " << n;
  }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

using ObsSpan = ObsTest;

TEST_F(ObsSpan, DisabledSpanIsInertAndEmitsNothing) {
  ASSERT_FALSE(obs::tracing_enabled());
  const std::size_t before = obs::trace_event_count();
  {
    obs::Span span("test.disabled");
    EXPECT_FALSE(span.active());
    span.attr("key", "value").attr("n", std::uint64_t{42});
  }
  EXPECT_EQ(obs::trace_event_count(), before);
}

TEST_F(ObsSpan, NestedSpansSortParentFirst) {
  obs::set_tracing_enabled(true);
  {
    obs::Span outer("test.outer");
    outer.attr("role", "parent");
    {
      obs::Span inner("test.inner");
      inner.attr("role", "child");
    }
  }
  obs::set_tracing_enabled(false);

  const auto events = obs::collect_trace_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "test.outer");
  EXPECT_STREQ(events[1].name, "test.inner");
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  EXPECT_GE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_NE(events[0].args.find("\"role\":\"parent\""), std::string::npos);
}

TEST_F(ObsSpan, ThreadsGetDistinctStableTids) {
  obs::set_tracing_enabled(true);
  const std::uint32_t main_tid = obs::current_thread_tid();
  std::uint32_t worker_tid = 0;
  std::thread worker([&] {
    obs::Span span("test.worker");
    worker_tid = obs::current_thread_tid();
  });
  worker.join();
  obs::set_tracing_enabled(false);

  EXPECT_NE(main_tid, worker_tid);
  EXPECT_EQ(obs::current_thread_tid(), main_tid);  // stable on re-query

  bool saw_worker_event = false;
  for (const auto& e : obs::collect_trace_events()) {
    if (std::string_view(e.name) == "test.worker") {
      saw_worker_event = true;
      EXPECT_EQ(e.tid, worker_tid);
    }
  }
  EXPECT_TRUE(saw_worker_event);
}

TEST_F(ObsSpan, ConcurrentTracingLosesNoEventsAndTearsNothing) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  obs::set_tracing_enabled(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int k = 0; k < kSpansPerThread; ++k) {
        obs::Span span("test.concurrent");
        span.attr("thread", std::int64_t{t}).attr("k", std::int64_t{k});
      }
    });
  }
  for (auto& th : threads) th.join();
  obs::set_tracing_enabled(false);

  const auto events = obs::collect_trace_events();
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
  std::set<std::uint32_t> tids;
  for (const auto& e : events) {
    EXPECT_STREQ(e.name, "test.concurrent");
    EXPECT_GT(e.tid, 0u);
    tids.insert(e.tid);
    // Args must be a coherent JSON fragment, not an interleaving of two
    // threads' writes.
    EXPECT_NE(e.args.find("\"thread\":"), std::string::npos);
    EXPECT_NE(e.args.find("\"k\":"), std::string::npos);
    EXPECT_TRUE(JsonValidator("{" + e.args + "}").valid()) << e.args;
  }
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

using ObsTraceExport = ObsTest;

TEST_F(ObsTraceExport, ChromeTraceJsonParsesBack) {
  obs::set_tracing_enabled(true);
  {
    obs::Span span("test.export");
    span.attr("text", "quote \" backslash \\ newline \n tab \t done")
        .attr("count", std::uint64_t{7})
        .attr("ratio", 0.5);
  }
  { obs::Span span("test.second"); }
  obs::set_tracing_enabled(false);

  const std::string json = obs::chrome_trace_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_TRUE(json_contains_name(json, "test.export"));
  EXPECT_TRUE(json_contains_name(json, "test.second"));
}

TEST_F(ObsTraceExport, WriteChromeTraceRoundTrips) {
  obs::set_tracing_enabled(true);
  { obs::Span span("test.file"); }
  obs::set_tracing_enabled(false);

  const auto path = (std::filesystem::temp_directory_path() /
                     ("pygb_obs_trace_" + std::to_string(::getpid()) +
                      ".json"))
                        .string();
  std::string error;
  ASSERT_TRUE(obs::write_chrome_trace(path, &error)) << error;
  std::ifstream in(path);
  const std::string content((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  std::filesystem::remove(path);
  EXPECT_TRUE(JsonValidator(content).valid());
  EXPECT_TRUE(json_contains_name(content, "test.file"));
}

TEST_F(ObsTraceExport, WriteToUnwritablePathReportsError) {
  std::string error;
  EXPECT_FALSE(obs::write_chrome_trace(
      "/nonexistent_dir_pygb/trace.json", &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(ObsTraceExport, MetricsJsonParsesBack) {
  obs::set_metrics_enabled(true);
  obs::record_value("test_json_hist", 123);
  obs::counter_add(obs::Counter::kRegistryLookups, 5);
  const std::string json = obs::metrics_to_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test_json_hist\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Pipeline instrumentation: one span per Fig. 9 stage
// ---------------------------------------------------------------------------

class ObsPipelineTrace : public ObsTest {
 protected:
  std::set<std::string> traced_names() {
    std::set<std::string> names;
    for (const auto& e : obs::collect_trace_events()) {
      names.insert(e.name);
    }
    return names;
  }
};

TEST_F(ObsPipelineTrace, StaticDispatchEmitsStageSpans) {
  obs::set_tracing_enabled(true);
  {
    Matrix a({{1, 2}, {3, 4}});
    Matrix c(2, 2);
    c[None] = matmul(a, a);
    EXPECT_DOUBLE_EQ(c.get(0, 0), 7.0);
  }
  obs::set_tracing_enabled(false);

  const auto names = traced_names();
  EXPECT_TRUE(names.count("pygb.eval"));
  EXPECT_TRUE(names.count("pygb.dispatch"));
  EXPECT_TRUE(names.count("registry.get"));
  EXPECT_TRUE(names.count("kernel"));

  // And the exported document carries them, well-formed.
  const std::string json = obs::chrome_trace_json();
  EXPECT_TRUE(JsonValidator(json).valid());
  for (const char* stage :
       {"pygb.eval", "pygb.dispatch", "registry.get", "kernel"}) {
    EXPECT_TRUE(json_contains_name(json, stage)) << stage;
  }
}

TEST_F(ObsPipelineTrace, ColdJitDispatchTracesCompileStages) {
  auto& reg = jit::Registry::instance();
  if (!reg.compiler_available()) {
    GTEST_SKIP() << "no C++ compiler reachable";
  }
  const auto saved_mode = reg.mode();
  const auto saved_dir = reg.cache_dir();
  const auto cache_dir = (std::filesystem::temp_directory_path() /
                          ("pygb_obs_jit_" + std::to_string(::getpid())))
                             .string();
  reg.set_cache_dir(cache_dir);
  reg.clear_disk_cache();
  reg.clear_memory_cache();
  reg.set_mode(jit::Mode::kJit);

  obs::set_tracing_enabled(true);
  {
    Matrix a({{1, 2}, {3, 4}});
    Matrix c(2, 2);
    c[None] = matmul(a, a);
    EXPECT_DOUBLE_EQ(c.get(1, 1), 22.0);
  }
  obs::set_tracing_enabled(false);

  reg.clear_disk_cache();
  reg.set_cache_dir(saved_dir);
  reg.set_mode(saved_mode);

  const auto names = traced_names();
  for (const char* stage : {"pygb.dispatch", "registry.get", "jit.codegen",
                            "jit.compile", "jit.load", "kernel"}) {
    EXPECT_TRUE(names.count(stage)) << "missing pipeline span: " << stage;
  }
  EXPECT_TRUE(JsonValidator(obs::chrome_trace_json()).valid());
}

// ---------------------------------------------------------------------------
// Span stack (the crash handler's "what was this thread doing" context)
// ---------------------------------------------------------------------------

using ObsSpanStack = ObsTest;

TEST_F(ObsSpanStack, TracksNestingForCrashReports) {
  const char* names[obs::detail::kSpanStackMax];
  EXPECT_EQ(obs::span_stack_unsafe(names, obs::detail::kSpanStackMax), 0);

  obs::set_tracing_enabled(true);
  {
    obs::Span outer("outer.op");
    {
      obs::Span inner("inner.kernel");
      const int depth =
          obs::span_stack_unsafe(names, obs::detail::kSpanStackMax);
      ASSERT_EQ(depth, 2);
      EXPECT_STREQ(names[0], "outer.op");
      EXPECT_STREQ(names[1], "inner.kernel");
    }
    EXPECT_EQ(obs::span_stack_unsafe(names, obs::detail::kSpanStackMax), 1);
    EXPECT_STREQ(names[0], "outer.op");
  }
  obs::set_tracing_enabled(false);
  EXPECT_EQ(obs::span_stack_unsafe(names, obs::detail::kSpanStackMax), 0);
}

TEST_F(ObsSpanStack, OverflowReportsTrueDepthButCapsNames) {
  obs::set_tracing_enabled(true);
  {
    std::vector<std::unique_ptr<obs::Span>> spans;
    const int kOver = obs::detail::kSpanStackMax + 4;
    for (int i = 0; i < kOver; ++i) {
      spans.push_back(std::make_unique<obs::Span>("deep.span"));
    }
    const char* names[obs::detail::kSpanStackMax];
    const int depth =
        obs::span_stack_unsafe(names, obs::detail::kSpanStackMax);
    EXPECT_EQ(depth, kOver);  // true depth, even past the name cap
    for (int i = 0; i < obs::detail::kSpanStackMax; ++i) {
      EXPECT_STREQ(names[i], "deep.span");
    }
    spans.clear();
    EXPECT_EQ(obs::span_stack_unsafe(names, obs::detail::kSpanStackMax), 0);
  }
  obs::set_tracing_enabled(false);
}

}  // namespace
