// Randomized integration tests: seeded "programs" — sequences of DSL
// operations with randomly chosen operators, masks, and replace flags —
// are mirrored step-for-step with direct native GBTL calls; state must
// stay identical after every step. This sweeps operator/mask/flag
// combinations no hand-written test enumerates.
#include <gtest/gtest.h>

#include <random>

#include "gbtl/gbtl.hpp"
#include "pygb/pygb.hpp"
#include "../gbtl/reference.hpp"

namespace {

using namespace pygb;  // NOLINT

constexpr gbtl::IndexType kN = 12;

struct MirroredState {
  // Three matrix registers and two vector registers, each held as a DSL
  // handle plus an independent native copy.
  std::vector<Matrix> dsl_m;
  std::vector<gbtl::Matrix<double>> nat_m;
  std::vector<Vector> dsl_v;
  std::vector<gbtl::Vector<double>> nat_v;
  Matrix mask_m;   // boolean mask fixtures
  Vector mask_v;

  bool consistent() const {
    for (std::size_t k = 0; k < dsl_m.size(); ++k) {
      if (!(dsl_m[k].typed<double>() == nat_m[k])) return false;
    }
    for (std::size_t k = 0; k < dsl_v.size(); ++k) {
      if (!(dsl_v[k].typed<double>() == nat_v[k])) return false;
    }
    return true;
  }
};

MirroredState make_state(unsigned seed) {
  MirroredState s;
  for (unsigned k = 0; k < 3; ++k) {
    auto nat = testref::random_matrix<double>(kN, kN, 0.3, seed + k);
    s.nat_m.push_back(nat);
    s.dsl_m.push_back(Matrix::adopt(std::move(nat)));
  }
  for (unsigned k = 0; k < 2; ++k) {
    auto nat = testref::random_vector<double>(kN, 0.5, seed + 10 + k);
    s.nat_v.push_back(nat);
    s.dsl_v.push_back(Vector::adopt(std::move(nat)));
  }
  s.mask_m = Matrix::adopt(testref::random_matrix<bool>(kN, kN, 0.4,
                                                        seed + 20, false,
                                                        true));
  s.mask_v = Vector::adopt(
      testref::random_vector<bool>(kN, 0.4, seed + 21, false, true));
  return s;
}

/// One random step applied to both sides. Returns a description for
/// failure messages.
std::string step(MirroredState& s, std::mt19937& rng) {
  std::uniform_int_distribution<int> op_pick(0, 7);
  std::uniform_int_distribution<int> reg3(0, 2);
  std::uniform_int_distribution<int> reg2(0, 1);
  std::uniform_int_distribution<int> coin(0, 1);

  const int op = op_pick(rng);
  const bool masked = coin(rng) == 1;
  const bool replace = masked && coin(rng) == 1;
  const auto outp =
      replace ? gbtl::OutputControl::kReplace : gbtl::OutputControl::kMerge;

  auto run_dsl = [&](auto&& assign_fn) {
    if (replace) {
      With ctx(Replace);
      assign_fn();
    } else {
      assign_fn();
    }
  };

  switch (op) {
    case 0: {  // mxm arithmetic
      const int ai = reg3(rng), bi = reg3(rng), ci = reg3(rng);
      if (masked) {
        run_dsl([&] {
          s.dsl_m[ci][s.mask_m] = matmul(s.dsl_m[ai], s.dsl_m[bi]);
        });
        gbtl::mxm(s.nat_m[ci], s.mask_m.typed<bool>(), gbtl::NoAccumulate{},
                  gbtl::ArithmeticSemiring<double>{}, s.nat_m[ai],
                  s.nat_m[bi], outp);
      } else {
        s.dsl_m[ci][None] = matmul(s.dsl_m[ai], s.dsl_m[bi]);
        gbtl::mxm(s.nat_m[ci], gbtl::NoMask{}, gbtl::NoAccumulate{},
                  gbtl::ArithmeticSemiring<double>{}, s.nat_m[ai],
                  s.nat_m[bi]);
      }
      return "mxm";
    }
    case 1: {  // mxm min-plus with B transposed
      const int ai = reg3(rng), bi = reg3(rng), ci = reg3(rng);
      {
        With ctx(MinPlusSemiring());
        s.dsl_m[ci][None] = matmul(s.dsl_m[ai], s.dsl_m[bi].T());
      }
      gbtl::mxm(s.nat_m[ci], gbtl::NoMask{}, gbtl::NoAccumulate{},
                gbtl::MinPlusSemiring<double>{}, s.nat_m[ai],
                gbtl::transpose(s.nat_m[bi]));
      return "mxm minplus B^T";
    }
    case 2: {  // eWiseAdd / eWiseMult with a random op
      const int ai = reg3(rng), bi = reg3(rng), ci = reg3(rng);
      const bool is_add = coin(rng) == 1;
      const bool use_min = coin(rng) == 1;
      {
        With ctx(use_min ? BinaryOp("Min") : BinaryOp("Plus"));
        if (is_add) {
          s.dsl_m[ci][None] = s.dsl_m[ai] + s.dsl_m[bi];
        } else {
          s.dsl_m[ci][None] = s.dsl_m[ai] * s.dsl_m[bi];
        }
      }
      auto apply_native = [&](auto opfn) {
        if (is_add) {
          gbtl::eWiseAdd(s.nat_m[ci], gbtl::NoMask{}, gbtl::NoAccumulate{},
                         opfn, s.nat_m[ai], s.nat_m[bi]);
        } else {
          gbtl::eWiseMult(s.nat_m[ci], gbtl::NoMask{}, gbtl::NoAccumulate{},
                          opfn, s.nat_m[ai], s.nat_m[bi]);
        }
      };
      if (use_min) {
        apply_native(gbtl::Min<double>{});
      } else {
        apply_native(gbtl::Plus<double>{});
      }
      return "ewise";
    }
    case 3: {  // mxv with optional mask
      const int ai = reg3(rng), ui = reg2(rng), wi = reg2(rng);
      if (masked) {
        run_dsl([&] {
          s.dsl_v[wi][s.mask_v] = matmul(s.dsl_m[ai], s.dsl_v[ui]);
        });
        gbtl::mxv(s.nat_v[wi], s.mask_v.typed<bool>(), gbtl::NoAccumulate{},
                  gbtl::ArithmeticSemiring<double>{}, s.nat_m[ai],
                  s.nat_v[ui], outp);
      } else {
        s.dsl_v[wi][None] = matmul(s.dsl_m[ai], s.dsl_v[ui]);
        gbtl::mxv(s.nat_v[wi], gbtl::NoMask{}, gbtl::NoAccumulate{},
                  gbtl::ArithmeticSemiring<double>{}, s.nat_m[ai],
                  s.nat_v[ui]);
      }
      return "mxv";
    }
    case 4: {  // accumulating vxm (the SSSP/PageRank shape)
      const int ai = reg3(rng), ui = reg2(rng), wi = reg2(rng);
      {
        With ctx(Accumulator("Min"), ArithmeticSemiring());
        s.dsl_v[wi][None] += matmul(s.dsl_v[ui], s.dsl_m[ai]);
      }
      gbtl::vxm(s.nat_v[wi], gbtl::NoMask{}, gbtl::Min<double>{},
                gbtl::ArithmeticSemiring<double>{}, s.nat_v[ui],
                s.nat_m[ai]);
      return "vxm accum";
    }
    case 5: {  // apply with a bound constant
      const int ai = reg3(rng), ci = reg3(rng);
      {
        With ctx(UnaryOp("Times", 0.5));
        s.dsl_m[ci][None] = apply(s.dsl_m[ai]);
      }
      gbtl::apply(s.nat_m[ci], gbtl::NoMask{}, gbtl::NoAccumulate{},
                  gbtl::BinaryOpBind2nd<double, gbtl::Times<double>>(0.5),
                  s.nat_m[ai]);
      return "apply bound";
    }
    case 6: {  // masked constant assign (the BFS levels shape)
      const int wi = reg2(rng);
      run_dsl([&] {
        if (masked) {
          s.dsl_v[wi][s.mask_v] = 7.0;
        } else {
          s.dsl_v[wi][Slice::all()] = 7.0;
        }
      });
      if (masked) {
        gbtl::assign(s.nat_v[wi], s.mask_v.typed<bool>(),
                     gbtl::NoAccumulate{}, 7.0, gbtl::AllIndices{}, outp);
      } else {
        gbtl::assign(s.nat_v[wi], gbtl::NoMask{}, gbtl::NoAccumulate{}, 7.0,
                     gbtl::AllIndices{});
      }
      return "assign const";
    }
    default: {  // complemented-mask ewise on vectors (Fig. 8's last line)
      const int ui = reg2(rng), wi = reg2(rng);
      {
        With ctx(BinaryOp("Plus"));
        s.dsl_v[wi][~s.mask_v] = s.dsl_v[wi] + s.dsl_v[ui];
      }
      gbtl::eWiseAdd(s.nat_v[wi], gbtl::complement(s.mask_v.typed<bool>()),
                     gbtl::NoAccumulate{}, gbtl::Plus<double>{},
                     s.nat_v[wi], s.nat_v[ui]);
      return "ewise ~mask";
    }
  }
}

class RandomPrograms : public ::testing::TestWithParam<unsigned> {
 protected:
  // Random programs sweep operator/mask combinations far outside the
  // curated static set: pin auto mode (static → jit → interp ladder) so a
  // forced PYGB_JIT_MODE=static environment can't make a step unservable.
  void SetUp() override {
    auto& reg = jit::Registry::instance();
    saved_mode_ = reg.mode();
    reg.set_mode(jit::Mode::kAuto);
  }
  void TearDown() override {
    jit::Registry::instance().set_mode(saved_mode_);
  }

  jit::Mode saved_mode_{};
};

TEST_P(RandomPrograms, DslMirrorsNativeStepForStep) {
  const unsigned seed = GetParam();
  auto s = make_state(seed);
  ASSERT_TRUE(s.consistent());
  std::mt19937 rng(seed);
  for (int k = 0; k < 60; ++k) {
    const std::string what = step(s, rng);
    ASSERT_TRUE(s.consistent())
        << "diverged at step " << k << " (" << what << "), seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
