// Tests: the DSL's concurrency story (§IV). The paper: "each thread would
// need to keep track of its own operator stack" — our context stack is
// thread_local, so With blocks in different threads never interact; and
// the module registry is mutex-guarded, so concurrent dispatch (the
// multiprocessing-analog workload) is safe.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "pygb/pygb.hpp"

namespace {

using namespace pygb;  // NOLINT

TEST(Threading, ContextStackIsThreadLocal) {
  With outer(MinPlusSemiring());
  ASSERT_EQ(current_semiring().key(), MinPlusSemiring().key());

  std::atomic<bool> other_saw_default{false};
  std::atomic<bool> other_scoped_ok{false};
  std::thread worker([&] {
    // A fresh thread starts with an empty stack regardless of the parent.
    other_saw_default = context_depth() == 0 &&
                        current_semiring().key() ==
                            ArithmeticSemiring().key();
    With inner(LogicalSemiring(), Replace);
    other_scoped_ok =
        current_semiring().key() == LogicalSemiring().key() &&
        current_replace();
  });
  worker.join();
  EXPECT_TRUE(other_saw_default.load());
  EXPECT_TRUE(other_scoped_ok.load());
  // The worker's blocks never touched this thread's stack.
  EXPECT_EQ(current_semiring().key(), MinPlusSemiring().key());
  EXPECT_FALSE(current_replace());
}

TEST(Threading, NestedContextsPerThreadIndependent) {
  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Alternate operator stacks per thread; each must only ever observe
      // its own entries.
      for (int round = 0; round < 50; ++round) {
        if (t % 2 == 0) {
          With ctx(MinPlusSemiring());
          if (current_add_op().name() != BinaryOpName::kMin) ++failures;
        } else {
          With ctx(MaxMonoid());
          if (current_add_op().name() != BinaryOpName::kMax) ++failures;
        }
        if (context_depth() != 0) {
          // Outside any block the stack must be empty again.
        }
      }
      if (context_depth() != 0) ++failures;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Threading, ConcurrentDispatchIsSafe) {
  // Hammer the registry from several threads with a mix of operations
  // (all static-table hits) and verify every result.
  constexpr int kThreads = 6;
  constexpr int kRounds = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Matrix a({{1, 2}, {3, 4}});
      Matrix b({{1, 0}, {0, 1}});
      for (int r = 0; r < kRounds; ++r) {
        Matrix c(2, 2);
        if (t % 2 == 0) {
          c[None] = matmul(a, b);
          if (c.get(1, 0) != 3.0) ++failures;
        } else {
          With ctx(MinPlusSemiring());
          c[None] = matmul(a, b);
          if (c.get(0, 0) != 2.0) ++failures;
        }
        const double total = reduce(c).to_double();
        if (total <= 0.0) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Threading, RegistryStatsConsistentUnderConcurrency) {
  auto& reg = jit::Registry::instance();
  // The static_hits == lookups assertion needs static resolution; pin the
  // mode so a forced PYGB_JIT_MODE=jit|interp environment doesn't skew it.
  const auto saved_mode = reg.mode();
  reg.set_mode(jit::Mode::kStatic);
  reg.reset_stats();
  constexpr int kThreads = 4;
  constexpr int kRounds = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Matrix a({{1, 0}, {0, 1}});
      for (int r = 0; r < kRounds; ++r) {
        Matrix c(2, 2);
        c[None] = a + a;
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto st = reg.stats();
  reg.set_mode(saved_mode);
  EXPECT_EQ(st.lookups, static_cast<std::size_t>(kThreads * kRounds));
  EXPECT_EQ(st.static_hits, st.lookups);
}

}  // namespace
