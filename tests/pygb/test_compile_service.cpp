// Tests: the supervised persistent compile service (pygb_compiled) and the
// background-tiering path — the wire protocol's torn-frame/oversize/timeout
// classification, warm-worker reuse, SIGKILL-mid-request degradation with
// restart, the service-level breaker falling back to in-process fork/exec,
// stale-protocol rejection, and PYGB_TIER=async serving the interpreter
// immediately while the module compiles in the background
// (docs/ROBUSTNESS.md degradation ladder).
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pygb/faultinj.hpp"
#include "pygb/jit/codegen.hpp"
#include "pygb/jit/compile_service.hpp"
#include "pygb/jit/compiler.hpp"
#include "pygb/jit/registry.hpp"
#include "pygb/pygb.hpp"

namespace {

namespace fs = std::filesystem;
using namespace pygb;       // NOLINT
using namespace pygb::jit;  // NOLINT

void write_file(const fs::path& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

/// Set an env var for the test body, restoring the prior state on exit.
class EnvGuard {
 public:
  EnvGuard(const char* name, const std::string& value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) old_ = old;
    ::setenv(name, value.c_str(), 1);
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

std::vector<fs::path> list_with_suffix(const std::string& dir,
                                       const std::string& suffix) {
  std::vector<fs::path> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      out.push_back(entry.path());
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Wire protocol unit tests (no worker process).
// ---------------------------------------------------------------------------

TEST(CompiledProtocol, SplitFieldsKeepsFinalFieldVerbatim) {
  std::string f[4];
  // The last field may contain the separator (a compiler stderr tail is
  // arbitrary bytes) without shifting the grammar.
  const std::string payload = std::string("RSP") + compiled::kSep + "7" +
                              compiled::kSep + "ok" + compiled::kSep +
                              "tail with " + compiled::kSep + " inside";
  compiled::split_fields(payload, compiled::kSep, 4, f);
  EXPECT_EQ(f[0], "RSP");
  EXPECT_EQ(f[1], "7");
  EXPECT_EQ(f[2], "ok");
  EXPECT_EQ(f[3], std::string("tail with ") + compiled::kSep + " inside");

  // Short payloads leave trailing fields empty instead of crashing.
  compiled::split_fields("just-one", compiled::kSep, 4, f);
  EXPECT_EQ(f[0], "just-one");
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[3], "");
}

class SocketPair : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv_), 0);
  }
  void TearDown() override {
    if (sv_[0] >= 0) ::close(sv_[0]);
    if (sv_[1] >= 0) ::close(sv_[1]);
  }
  void close_write_end() {
    ::close(sv_[1]);
    sv_[1] = -1;
  }
  int sv_[2] = {-1, -1};
};

TEST_F(SocketPair, FrameRoundtrips) {
  const std::string payload = "hello\x1fworld";
  ASSERT_TRUE(compiled::write_frame(sv_[1], payload));
  std::string got;
  EXPECT_EQ(compiled::read_frame(sv_[0], &got, 1000),
            compiled::ReadResult::kOk);
  EXPECT_EQ(got, payload);

  ASSERT_TRUE(compiled::write_frame(sv_[1], ""));
  EXPECT_EQ(compiled::read_frame(sv_[0], &got, 1000),
            compiled::ReadResult::kOk);
  EXPECT_EQ(got, "");
}

TEST_F(SocketPair, CleanCloseIsEofNotCorruption) {
  close_write_end();
  std::string got;
  EXPECT_EQ(compiled::read_frame(sv_[0], &got, 1000),
            compiled::ReadResult::kEof);
}

TEST_F(SocketPair, SilenceIsATimeout) {
  const auto start = std::chrono::steady_clock::now();
  std::string got;
  EXPECT_EQ(compiled::read_frame(sv_[0], &got, 150),
            compiled::ReadResult::kTimeout);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_GE(elapsed, 100);  // poll() may wake a tick early
  EXPECT_LT(elapsed, 5000);
}

TEST_F(SocketPair, OversizedLengthIsMalformed) {
  // A header promising more than kMaxFrameBytes is corruption, not an
  // allocation request.
  const unsigned char hdr[4] = {0xff, 0xff, 0xff, 0x7f};
  ASSERT_EQ(::send(sv_[1], hdr, 4, 0), 4);
  std::string got;
  EXPECT_EQ(compiled::read_frame(sv_[0], &got, 1000),
            compiled::ReadResult::kMalformed);
}

TEST_F(SocketPair, TornFrameIsMalformedNotEof) {
  // Header promises 10 payload bytes; the peer dies after 3. The supervisor
  // must classify this as corruption (a mid-frame death), not a clean EOF.
  const unsigned char hdr[4] = {10, 0, 0, 0};
  ASSERT_EQ(::send(sv_[1], hdr, 4, 0), 4);
  ASSERT_EQ(::send(sv_[1], "abc", 3, 0), 3);
  close_write_end();
  std::string got;
  EXPECT_EQ(compiled::read_frame(sv_[0], &got, 1000),
            compiled::ReadResult::kMalformed);
}

// ---------------------------------------------------------------------------
// Service supervision: a REAL pygb_compiled worker process.
// ---------------------------------------------------------------------------

class CompileServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!compiler_available()) {
      GTEST_SKIP() << "no C++ compiler reachable";
    }
    std::error_code ec;
    if (!fs::exists(compiled_worker_path(), ec)) {
      GTEST_SKIP() << "pygb_compiled worker not found at "
                   << compiled_worker_path();
    }
    scratch_ = (fs::temp_directory_path() /
                ("pygb_compiled_test_" + std::to_string(::getpid())))
                   .string();
    fs::create_directories(scratch_);
    env_.emplace_back(new EnvGuard("PYGB_COMPILED", "on"));
    // Skip the PCH build: these tests exercise supervision, not warm-compile
    // latency, and a fast handshake keeps the suite quick.
    env_.emplace_back(new EnvGuard("PYGB_COMPILED_PCH", "off"));
    env_.emplace_back(new EnvGuard("PYGB_COMPILED_TIMEOUT_MS", "30000"));
    faultinj::configure("");
    CompileService::instance().reset();
  }
  void TearDown() override {
    env_.clear();  // restore env BEFORE reset so the service re-disables
    CompileService::instance().reset();
    faultinj::configure("");
    std::error_code ec;
    fs::remove_all(scratch_, ec);
  }

  /// A trivial instantly-compiling translation unit.
  std::string trivial_source(const std::string& stem) {
    const fs::path src = fs::path(scratch_) / (stem + ".cpp");
    write_file(src, "extern \"C\" int pygb_probe() { return 7; }\n");
    return src.string();
  }

  /// A REAL generated kernel module — seconds of g++ work, wide enough a
  /// window to SIGKILL the worker mid-compile deterministically.
  std::string slow_source(const std::string& stem) {
    OpRequest req;
    req.func = func::kEWiseAddVV;
    req.a = DType::kFP64;
    req.b = DType::kFP64;
    req.binary_op = BinaryOp(BinaryOpName::kPlus);
    const fs::path src = fs::path(scratch_) / (stem + ".cpp");
    write_file(src, generate_source(req));
    return src.string();
  }

  std::string out_path(const std::string& stem) {
    return (fs::path(scratch_) / (stem + ".so")).string();
  }

  std::vector<std::unique_ptr<EnvGuard>> env_;
  std::string scratch_;
};

TEST_F(CompileServiceTest, WarmWorkerServesConsecutiveCompiles) {
  auto& svc = CompileService::instance();
  ASSERT_TRUE(svc.enabled());

  const auto a1 = svc.compile(trivial_source("warm1"), out_path("warm1"), 0);
  ASSERT_TRUE(a1.serviced) << a1.note;
  EXPECT_TRUE(a1.result.ok) << a1.result.log;
  EXPECT_TRUE(fs::exists(out_path("warm1")));

  const auto st1 = svc.state();
  EXPECT_TRUE(st1.running);
  EXPECT_GT(st1.worker_pid, 0);
  EXPECT_EQ(st1.restarts, 0);

  const auto a2 = svc.compile(trivial_source("warm2"), out_path("warm2"), 0);
  ASSERT_TRUE(a2.serviced) << a2.note;
  EXPECT_TRUE(a2.result.ok) << a2.result.log;

  // Same worker served both: warm reuse, no respawn.
  const auto st2 = svc.state();
  EXPECT_EQ(st2.worker_pid, st1.worker_pid);
  EXPECT_EQ(st2.restarts, 0);
}

TEST_F(CompileServiceTest, CompilerDiagnosticIsServicedNotAServiceFailure) {
  auto& svc = CompileService::instance();
  const fs::path bad = fs::path(scratch_) / "bad.cpp";
  write_file(bad, "this is not C++ at all\n");

  const auto att = svc.compile(bad.string(), out_path("bad"), 0);
  // The WORKER answered — a compile diagnostic is a healthy service.
  ASSERT_TRUE(att.serviced) << att.note;
  EXPECT_FALSE(att.result.ok);
  EXPECT_NE(att.result.log.find("via compile service"), std::string::npos)
      << att.result.log;
  EXPECT_NE(att.result.log.find("error"), std::string::npos)
      << att.result.log;

  const auto st = svc.state();
  EXPECT_TRUE(st.running);  // the worker survived the diagnostic
  EXPECT_EQ(st.consecutive_failures, 0);
}

TEST_F(CompileServiceTest, SigkilledWorkerMidRequestFallsBackAndRestarts) {
  auto& svc = CompileService::instance();

  // Warm the service so the kill hits an established worker.
  const auto warm = svc.compile(trivial_source("pre"), out_path("pre"), 0);
  ASSERT_TRUE(warm.serviced) << warm.note;
  const pid_t pid1 = svc.state().worker_pid;
  ASSERT_GT(pid1, 0);

  // A real kernel compile takes seconds; SIGKILL the worker 100ms in.
  // The request deadline is deliberately huge: the assertion below is that
  // death is surfaced by EOF long before it, however loaded the machine.
  CompileService::Attempt att;
  const auto start = std::chrono::steady_clock::now();
  std::thread requester([&] {
    att = svc.compile(slow_source("victim"), out_path("victim"), 60000);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_EQ(::kill(pid1, SIGKILL), 0);
  requester.join();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();

  // Degraded, fast: EOF on the socket surfaces the death immediately — the
  // caller is NOT held to the 60s request deadline (and the "died" note
  // proves the EOF classification ran, not the timeout). The bound is half
  // the deadline because a parallel ctest run oversubscribes the CPU.
  EXPECT_FALSE(att.serviced);
  EXPECT_NE(att.note.find("died"), std::string::npos) << att.note;
  EXPECT_LT(elapsed, 30000);

  // The dead worker is REAPED (no zombie left for process-table audits)...
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(fs::exists("/proc/" + std::to_string(pid1)))
      << "worker " << pid1 << " not reaped";

  // ...and its g++ child died with it (PR_SET_PDEATHSIG): nothing keeps
  // writing the output file, and no .tmp litter survives.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  EXPECT_FALSE(fs::exists(out_path("victim")));
  EXPECT_TRUE(list_with_suffix(scratch_, ".tmp").empty());

  // After the backoff the service restarts and serves warm again.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  const auto again =
      svc.compile(trivial_source("post"), out_path("post"), 0);
  ASSERT_TRUE(again.serviced) << again.note;
  EXPECT_TRUE(again.result.ok) << again.result.log;
  const auto st = svc.state();
  EXPECT_GE(st.restarts, 1);
  EXPECT_NE(st.worker_pid, pid1);
  EXPECT_EQ(st.consecutive_failures, 0);
}

TEST_F(CompileServiceTest, UnspawnableWorkerTripsBreakerAndForkExecServes) {
  env_.emplace_back(
      new EnvGuard("PYGB_COMPILED_BIN", "/nonexistent/pygb_compiled"));
  env_.emplace_back(new EnvGuard("PYGB_COMPILED_MAX_RESTARTS", "0"));
  auto& svc = CompileService::instance();
  svc.reset();

  // First attempt: spawn fails, and with a zero restart budget the service
  // breaker trips on the spot.
  const auto a1 = svc.compile(trivial_source("b1"), out_path("b1"), 0);
  EXPECT_FALSE(a1.serviced);
  EXPECT_NE(a1.note.find("breaker tripped"), std::string::npos) << a1.note;
  EXPECT_TRUE(svc.state().breaker_open);

  // Open breaker: short-circuit without another spawn attempt.
  const auto a2 = svc.compile(trivial_source("b2"), out_path("b2"), 0);
  EXPECT_FALSE(a2.serviced);
  EXPECT_NE(a2.note.find("breaker open"), std::string::npos) << a2.note;

  // The degradation ladder holds: compile_module() still succeeds via the
  // in-process fork/exec path. Service trouble costs latency, never
  // availability.
  const CompileResult cr =
      compile_module(trivial_source("ladder"), out_path("ladder"));
  EXPECT_TRUE(cr.ok) << cr.log;
  EXPECT_TRUE(fs::exists(out_path("ladder")));
}

TEST_F(CompileServiceTest, StaleProtocolWorkerIsRejectedNeverTrusted) {
  // The worker inherits PYGB_FAULTS and announces a wrong protocol version
  // in its handshake; the client must reject it outright (a stale binary
  // from an older build must not be trusted with requests).
  env_.emplace_back(
      new EnvGuard("PYGB_FAULTS", "compiled:stale_proto:p=1"));
  env_.emplace_back(new EnvGuard("PYGB_COMPILED_MAX_RESTARTS", "0"));
  auto& svc = CompileService::instance();
  svc.reset();
  faultinj::configure("");  // in-process sites stay disarmed

  const auto att = svc.compile(trivial_source("sp"), out_path("sp"), 0);
  EXPECT_FALSE(att.serviced);
  EXPECT_NE(att.note.find("version mismatch"), std::string::npos)
      << att.note;
  EXPECT_FALSE(svc.state().running);
}

// ---------------------------------------------------------------------------
// Background tiering: PYGB_TIER=async serves interp NOW, compiles behind.
// ---------------------------------------------------------------------------

class TierAsyncTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!compiler_available()) {
      GTEST_SKIP() << "no C++ compiler reachable";
    }
    auto& reg = Registry::instance();
    saved_mode_ = reg.mode();
    saved_dir_ = reg.cache_dir();
    scratch_ = (fs::temp_directory_path() /
                ("pygb_tier_test_" + std::to_string(::getpid())))
                   .string();
    fs::create_directories(scratch_);
    reg.set_cache_dir(scratch_ + "/cache");
    reg.clear_disk_cache();
    reg.set_mode(Mode::kAuto);
    reg.set_tier_async(true);
    reg.reset_stats();
  }
  void TearDown() override {
    auto& reg = Registry::instance();
    // Wait out any background build before yanking its scratch dir.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (reg.tier_pending_count() != 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    reg.set_tier_async(false);
    reg.clear_disk_cache();
    reg.set_cache_dir(saved_dir_);
    reg.set_mode(saved_mode_);
    std::error_code ec;
    fs::remove_all(scratch_, ec);
  }

  /// A compiler that cannot answer in under a second — proof that a call
  /// completing faster did not wait for it.
  fs::path write_slow_cxx() {
    const fs::path slow = fs::path(scratch_) / "slow_cxx.sh";
    write_file(slow,
               "#!/bin/sh\n"
               "case \"$*\" in *--version*) echo fake-g++ 1.0; exit 0;; "
               "esac\n"
               "sleep 1\n"
               "exec g++ \"$@\"\n");
    ::chmod(slow.c_str(), 0755);
    return slow;
  }

  /// uint16 mxm is outside the static set → kAuto must reach for the JIT.
  static std::int64_t uint16_mxm_corner() {
    Matrix a(2, 2, DType::kUInt16);
    a.set(0, 0, 3.0);
    a.set(0, 1, 2.0);
    a.set(1, 0, 5.0);
    Matrix c(2, 2, DType::kUInt16);
    c[None] = matmul(a, a);
    return c.get_element(0, 0).to_int64();
  }
  static constexpr std::int64_t kExpectedCorner = 3 * 3 + 2 * 5;

  Mode saved_mode_;
  std::string saved_dir_;
  std::string scratch_;
};

TEST_F(TierAsyncTest, ColdKeyServesInterpImmediatelyThenHotSwapsToJit) {
  auto& reg = Registry::instance();
  reg.clear_memory_cache();
  reg.reset_stats();

  EnvGuard cxx("PYGB_CXX", write_slow_cxx().string());
  ASSERT_TRUE(reg.compiler_available());

  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(uint16_mxm_corner(), kExpectedCorner);  // correct, via interp
  const auto first_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(first_ms, 900) << "first call waited for the compiler";

  auto st = reg.stats();
  EXPECT_GE(st.tier_deferred_serves, 1u);
  EXPECT_GE(st.tier_async_compiles, 1u);
  EXPECT_GE(st.interp_dispatches, 1u);

  // The background build lands; subsequent calls hot-swap to the JIT
  // module from the memory cache — still correct.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  bool swapped = false;
  while (std::chrono::steady_clock::now() < deadline) {
    EXPECT_EQ(uint16_mxm_corner(), kExpectedCorner);
    if (reg.stats().memory_hits >= 1) {
      swapped = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_TRUE(swapped) << "background tier build never landed";
  EXPECT_GE(reg.stats().compiles, 1u);
}

TEST_F(TierAsyncTest, RepeatColdCallsCoalesceOntoOneBackgroundBuild) {
  auto& reg = Registry::instance();
  reg.clear_memory_cache();
  reg.reset_stats();
  EnvGuard cxx("PYGB_CXX", write_slow_cxx().string());
  ASSERT_TRUE(reg.compiler_available());

  // Several cold calls in a burst: each serves interp, only ONE background
  // build is enqueued for the key.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(uint16_mxm_corner(), kExpectedCorner);
  }
  EXPECT_GE(reg.stats().tier_deferred_serves, 4u);
  EXPECT_EQ(reg.stats().tier_async_compiles, 1u);
  EXPECT_LE(reg.tier_pending_count(), 1u);
}

}  // namespace
