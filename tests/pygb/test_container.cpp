// Tests: the runtime-typed DSL containers — construction paths (Fig. 3),
// Python reference semantics, dtype handling, and conversions.
#include <gtest/gtest.h>

#include "generators/classic.hpp"
#include "pygb/pygb.hpp"

namespace {

using namespace pygb;  // NOLINT

TEST(DslMatrix, DefaultDtypeIsFP64) {
  Matrix m(3, 3);
  EXPECT_EQ(m.dtype(), DType::kFP64);
  EXPECT_EQ(m.nrows(), 3u);
  EXPECT_EQ(m.nvals(), 0u);
}

TEST(DslMatrix, DenseConstructionSkipsZeros) {
  // Fig. 3a: gb.Matrix([[1, 2, 3], [4, 5, 6], [7, 8, 9]]).
  Matrix m({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  EXPECT_EQ(m.nvals(), 9u);
  EXPECT_DOUBLE_EQ(m.get(1, 1), 5.0);
  Matrix sparse({{1, 0}, {0, 2}});
  EXPECT_EQ(sparse.nvals(), 2u);
}

TEST(DslMatrix, CooConstructionDeducesDtype) {
  // Fig. 3a: gb.Matrix((vals, (rows, cols)), shape=(r, c)).
  std::vector<std::int64_t> vals{10, 20};
  gbtl::IndexArray rows{0, 1}, cols{1, 0};
  Matrix m(vals, rows, cols, 2, 2);
  EXPECT_EQ(m.dtype(), DType::kInt64);
  EXPECT_EQ(m.get_element(0, 1).to_int64(), 10);
}

TEST(DslMatrix, FromEdgeListAndGenerators) {
  // Fig. 3b: gb.Matrix(nx.balanced_tree(r=2, h=2)).
  auto el = gen::balanced_tree(2, 2);
  Matrix m = Matrix::from_edge_list(el, DType::kInt32);
  EXPECT_EQ(m.dtype(), DType::kInt32);
  EXPECT_EQ(m.nrows(), 7u);
  EXPECT_EQ(m.nvals(), 6u);
}

TEST(DslMatrix, FromDense2D) {
  Matrix m = Matrix::from_dense({{0.0, 1.5}, {2.5, 0.0}});
  EXPECT_EQ(m.nvals(), 2u);
  EXPECT_DOUBLE_EQ(m.get(0, 1), 1.5);
}

TEST(DslMatrix, HandleCopySharesData) {
  // Python reference semantics: m2 = m aliases the same container.
  Matrix m(2, 2);
  Matrix m2 = m;
  m2.set(0, 0, 7.0);
  EXPECT_TRUE(m.same_object(m2));
  EXPECT_DOUBLE_EQ(m.get(0, 0), 7.0);
}

TEST(DslMatrix, DupDeepCopies) {
  Matrix m(2, 2);
  m.set(0, 0, 1.0);
  Matrix d = m.dup();
  EXPECT_FALSE(m.same_object(d));
  EXPECT_TRUE(m.equals(d));
  d.set(0, 0, 2.0);
  EXPECT_DOUBLE_EQ(m.get(0, 0), 1.0);
}

TEST(DslMatrix, AstypeCastsValues) {
  Matrix m({{1.7, 0.0}, {0.0, 2.2}});
  Matrix i = m.astype(DType::kInt32);
  EXPECT_EQ(i.dtype(), DType::kInt32);
  EXPECT_EQ(i.get_element(0, 0).to_int64(), 1);
  EXPECT_EQ(i.get_element(1, 1).to_int64(), 2);
  EXPECT_EQ(i.nvals(), 2u);
}

TEST(DslMatrix, EqualsRequiresSameDtype) {
  Matrix a({{1, 0}, {0, 2}}, DType::kFP64);
  Matrix b({{1, 0}, {0, 2}}, DType::kInt64);
  EXPECT_FALSE(a.equals(b));
  EXPECT_TRUE(a.equals(b.astype(DType::kFP64)));
}

TEST(DslMatrix, SetGetRemoveElement) {
  Matrix m(2, 2, DType::kInt64);
  m.set(1, 1, Scalar(std::int64_t{1} << 60));
  EXPECT_TRUE(m.has_element(1, 1));
  EXPECT_EQ(m.get_element(1, 1).to_int64(), std::int64_t{1} << 60);
  m.remove_element(1, 1);
  EXPECT_EQ(m.nvals(), 0u);
}

TEST(DslMatrix, TypedAccessChecksDtype) {
  Matrix m(2, 2, DType::kFP32);
  EXPECT_NO_THROW(m.typed<float>());
  EXPECT_THROW(m.typed<double>(), std::logic_error);
}

TEST(DslMatrix, UndefinedHandleThrows) {
  Matrix m;
  EXPECT_FALSE(m.defined());
  EXPECT_THROW(m.nrows(), std::logic_error);
}

TEST(DslMatrix, ToCooRoundTrip) {
  Matrix m({{0, 1}, {2, 0}});
  auto coo = m.to_coo();
  EXPECT_EQ(coo.nnz(), 2u);
  Matrix back = Matrix::from_coo(coo);
  EXPECT_TRUE(m.equals(back));
}

TEST(DslVector, ConstructionPaths) {
  Vector v(4);
  EXPECT_EQ(v.dtype(), DType::kFP64);
  Vector dense({1, 0, 3}, DType::kInt64);
  EXPECT_EQ(dense.nvals(), 2u);
  std::vector<float> vals{1.5f, 2.5f};
  gbtl::IndexArray idx{0, 3};
  Vector coo(vals, idx, 5);
  EXPECT_EQ(coo.dtype(), DType::kFP32);
  EXPECT_FLOAT_EQ(static_cast<float>(coo.get(3)), 2.5f);
  Vector fd = Vector::from_dense({0.0, 2.0, 0.0});
  EXPECT_EQ(fd.nvals(), 1u);
}

TEST(DslVector, HandleSemanticsAndDup) {
  Vector v(3);
  Vector alias = v;
  alias.set(0, 5.0);
  EXPECT_DOUBLE_EQ(v.get(0), 5.0);
  Vector d = v.dup();
  d.set(0, 9.0);
  EXPECT_DOUBLE_EQ(v.get(0), 5.0);
}

TEST(DslVector, AstypeAndEquals) {
  Vector v({1.9, 0.0, 3.1});
  Vector i = v.astype(DType::kInt8);
  EXPECT_EQ(i.get_element(0).to_int64(), 1);
  EXPECT_EQ(i.get_element(2).to_int64(), 3);
  EXPECT_FALSE(v.equals(i));
}

TEST(DslVector, ElementAccessErrors) {
  Vector v(2);
  EXPECT_THROW(v.get(0), gbtl::NoValueException);
  EXPECT_THROW(v.set(5, 1.0), gbtl::IndexOutOfBoundsException);
}

TEST(DslScalarRoundTrip, AllDtypesStoreAndRead) {
  for (int k = 0; k < kNumDTypes; ++k) {
    const auto dt = static_cast<DType>(k);
    Matrix m(2, 2, dt);
    m.set(0, 0, Scalar(1.0, dt));
    EXPECT_EQ(m.get(0, 0), 1.0) << display_name(dt);
    EXPECT_EQ(m.dtype(), dt);
  }
}

}  // namespace
