// Tests: the bracket syntax — masks (plain, complemented, coerced), the
// replace flag from context, += accumulation and its fallback, slices, and
// indexed assign/extract.
#include <gtest/gtest.h>

#include "pygb/pygb.hpp"

namespace {

using namespace pygb;  // NOLINT

TEST(Masks, PlainMatrixMask) {
  Matrix a({{1, 1}, {1, 1}});
  Matrix c(2, 2);
  Matrix mask(2, 2, DType::kBool);
  mask.set(0, 0, Scalar(true));
  c[mask] = a + a;
  EXPECT_EQ(c.nvals(), 1u);
  EXPECT_DOUBLE_EQ(c.get(0, 0), 2.0);
}

TEST(Masks, ComplementedMask) {
  Matrix a({{1, 1}, {1, 1}});
  Matrix c(2, 2);
  Matrix mask(2, 2, DType::kBool);
  mask.set(0, 0, Scalar(true));
  c[~mask] = a + a;
  EXPECT_EQ(c.nvals(), 3u);
  EXPECT_FALSE(c.has_element(0, 0));
}

TEST(Masks, NonBoolMaskCoercedToTruthiness) {
  // §III: container masks have "data ... coerced to boolean values".
  Matrix a({{1, 1}, {1, 1}});
  Matrix c(2, 2);
  Matrix mask(2, 2, DType::kFP64);
  mask.set(0, 0, 2.5);   // truthy
  mask.set(0, 1, 0.0);   // stored falsy
  c[mask] = a + a;
  EXPECT_EQ(c.nvals(), 1u);
  EXPECT_TRUE(c.has_element(0, 0));
}

TEST(Masks, NoneKeepsContainerIdentity) {
  Matrix a({{1, 0}, {0, 1}});
  Matrix c(2, 2);
  Matrix alias = c;
  c[None] = a + a;
  EXPECT_TRUE(c.same_object(alias));
  EXPECT_EQ(c.nvals(), 2u);
}

TEST(Masks, ReplaceFromContextClearsMaskedOut) {
  Vector w({5, 5, 5});
  Vector u({1, 1, 1});
  Vector mask(3, DType::kBool);
  mask.set(0, Scalar(true));
  {
    With ctx(Replace);
    w[mask] = u + u;
  }
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_DOUBLE_EQ(w.get(0), 2.0);
}

TEST(Masks, MergeKeepsMaskedOutByDefault) {
  Vector w({5, 5, 5});
  Vector u({1, 1, 1});
  Vector mask(3, DType::kBool);
  mask.set(0, Scalar(true));
  w[mask] = u + u;
  EXPECT_EQ(w.nvals(), 3u);
  EXPECT_DOUBLE_EQ(w.get(0), 2.0);
  EXPECT_DOUBLE_EQ(w.get(1), 5.0);
}

TEST(Masks, VectorComplementOfIntVector) {
  // The BFS pattern: frontier[~levels] with integer levels.
  Vector levels({1, 0, 2});  // index 1 has no stored value
  Vector w(3);
  Vector u({9, 9, 9});
  w[~levels] = u + u;
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_DOUBLE_EQ(w.get(1), 18.0);
}

TEST(Masks, AssignConstantThroughMask) {
  // Fig. 2: levels[frontier][:] = depth.
  Vector levels(4, DType::kInt64);
  Vector frontier(4, DType::kBool);
  frontier.set(1, Scalar(true));
  frontier.set(3, Scalar(true));
  levels[frontier][Slice::all()] = 2.0;
  EXPECT_EQ(levels.nvals(), 2u);
  EXPECT_EQ(levels.get_element(3).to_int64(), 2);
}

TEST(Masks, MaskedMatrixConstantAssign) {
  Matrix c(2, 2, DType::kInt32);
  Matrix mask(2, 2, DType::kBool);
  mask.set(1, 0, Scalar(true));
  c[mask] = 7.0;
  EXPECT_EQ(c.nvals(), 1u);
  EXPECT_EQ(c.get_element(1, 0).to_int64(), 7);
}

// Accumulator sweeps reach operator combinations outside the curated
// static kernel set: pin auto mode so a forced PYGB_JIT_MODE=static
// environment can't make them unservable.
class Accumulate : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& reg = jit::Registry::instance();
    saved_mode_ = reg.mode();
    reg.set_mode(jit::Mode::kAuto);
  }
  void TearDown() override {
    jit::Registry::instance().set_mode(saved_mode_);
  }

  jit::Mode saved_mode_{};
};

TEST_F(Accumulate, PlusEqualsUsesContextAccumulator) {
  Vector w({10, 10});
  Vector u({1, 2});
  {
    With ctx(Accumulator("Min"));
    w[None] += u + u;  // min(10, 2), min(10, 4)
  }
  EXPECT_DOUBLE_EQ(w.get(0), 2.0);
  EXPECT_DOUBLE_EQ(w.get(1), 4.0);
}

TEST_F(Accumulate, FallsBackToSemiringMonoid) {
  // Fig. 4a without the explicit Accumulator("Min").
  Vector w({10, 10});
  Vector u({1, 2});
  {
    With ctx(MinPlusSemiring());
    w[None] += apply(u, UnaryOp("Identity"));
  }
  EXPECT_DOUBLE_EQ(w.get(0), 1.0);
}

TEST_F(Accumulate, DefaultsToPlusWithEmptyContext) {
  Vector w({10, 10});
  Vector u({1, 2});
  w[None] += apply(u, UnaryOp("Identity"));
  EXPECT_DOUBLE_EQ(w.get(0), 11.0);
  EXPECT_DOUBLE_EQ(w.get(1), 12.0);
}

TEST_F(Accumulate, AccumKeepsEntriesAbsentFromResult) {
  Vector w({10, 0, 30});  // index 1 absent
  Vector u(3);
  u.set(0, 5.0);
  w[None] += apply(u, UnaryOp("Identity"));
  EXPECT_DOUBLE_EQ(w.get(0), 15.0);
  EXPECT_FALSE(w.has_element(1));
  EXPECT_DOUBLE_EQ(w.get(2), 30.0);  // kept under accumulation
}

TEST(Slices, ConstantFillAll) {
  // Fig. 7: page_rank[:] = 1.0 / rows.
  Vector v(4);
  v[Slice::all()] = 0.25;
  EXPECT_EQ(v.nvals(), 4u);
  EXPECT_DOUBLE_EQ(v.get(3), 0.25);
}

TEST(Slices, RangeAssignAndExtract) {
  Vector v(6);
  v[Slice(1, 4)] = 9.0;
  EXPECT_EQ(v.nvals(), 3u);
  EXPECT_FALSE(v.has_element(0));
  EXPECT_TRUE(v.has_element(3));
  Vector sub = v[Slice(2, 6)].extract();
  EXPECT_EQ(sub.size(), 4u);
  EXPECT_TRUE(sub.has_element(0));   // v[2]
  EXPECT_TRUE(sub.has_element(1));   // v[3]
  EXPECT_FALSE(sub.has_element(2));  // v[4]
}

TEST(Slices, SteppedSlice) {
  Vector v(6);
  v[Slice(0, 6, 2)] = 1.0;
  EXPECT_EQ(v.nvals(), 3u);
  EXPECT_TRUE(v.has_element(4));
  EXPECT_FALSE(v.has_element(3));
}

TEST(Slices, StopClampedToDimension) {
  Vector v(3);
  v[Slice(1, 100)] = 1.0;
  EXPECT_EQ(v.nvals(), 2u);
}

TEST(Slices, MatrixSubAssignFromExpression) {
  // §IV: C[2:4, 2:4] = A @ B forces a temporary, then assigns.
  Matrix c(4, 4);
  Matrix a({{1, 0}, {0, 1}});
  c(Slice(2, 4), Slice(2, 4)) = matmul(a, a);
  EXPECT_EQ(c.nvals(), 2u);
  EXPECT_DOUBLE_EQ(c.get(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(c.get(3, 3), 1.0);
}

TEST(Slices, MatrixSubExtract) {
  Matrix a({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  Matrix sub = a(Slice(0, 2), Slice(1, 3)).extract();
  EXPECT_EQ(sub.nrows(), 2u);
  EXPECT_DOUBLE_EQ(sub.get(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(sub.get(1, 1), 6.0);
}

TEST(Slices, ExplicitIndexArrays) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix c(3, 3);
  c(gbtl::IndexArray{2, 0}, gbtl::IndexArray{0, 2}) = a;
  EXPECT_DOUBLE_EQ(c.get(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(c.get(0, 2), 4.0);
}

TEST(Slices, VectorAssignContainer) {
  // Fig. 7: page_rank[:] = new_rank.
  Vector pr(3);
  Vector nr({0.1, 0.2, 0.7});
  pr[Slice::all()] = nr;
  EXPECT_TRUE(pr.equals(nr.dup()));
  EXPECT_FALSE(pr.same_object(nr));
}

TEST(Slices, SubVectorPlusEquals) {
  Vector v({1, 1, 1});
  Vector u({5, 5});
  gbtl::IndexArray idx{0, 2};
  v[idx] += u;
  EXPECT_DOUBLE_EQ(v.get(0), 6.0);
  EXPECT_DOUBLE_EQ(v.get(1), 1.0);
  EXPECT_DOUBLE_EQ(v.get(2), 6.0);
}

TEST(Slices, ZeroStepThrows) {
  EXPECT_THROW(Slice(0, 5, 0), gbtl::InvalidValueException);
}

TEST(Masks, MaskShapeMismatchSurfaces) {
  Matrix c(2, 2);
  Matrix a({{1, 0}, {0, 1}});
  Matrix mask(3, 3, DType::kBool);
  EXPECT_THROW((c[mask] = a + a), gbtl::DimensionException);
}

}  // namespace
