// Tests: the hardened disk tier of the Fig. 9 module cache — atomic
// publish, stamp verification with quarantine, auto-mode degradation to
// the interpreter, size-capped eviction, and litter cleanup. The
// cross-process coalescing path has its own ctest (cross_process_cache.sh,
// driving two concurrent pygb_cli processes).
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <vector>

#include "pygb/jit/cache.hpp"
#include "pygb/jit/codegen.hpp"
#include "pygb/jit/compiler.hpp"
#include "pygb/pygb.hpp"

namespace {

namespace fs = std::filesystem;
using namespace pygb;       // NOLINT
using namespace pygb::jit;  // NOLINT

std::vector<fs::path> list_with_extension(const std::string& dir,
                                          const std::string& ext) {
  std::vector<fs::path> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ext) out.push_back(entry.path());
  }
  return out;
}

void write_file(const fs::path& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

void make_executable(const fs::path& path) {
  ::chmod(path.c_str(), 0755);
}

class CacheHardeningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!compiler_available()) {
      GTEST_SKIP() << "no C++ compiler reachable; cache tests skipped";
    }
    auto& reg = Registry::instance();
    saved_mode_ = reg.mode();
    saved_dir_ = reg.cache_dir();
    scratch_ = (fs::temp_directory_path() /
                ("pygb_cache_test_" + std::to_string(::getpid())))
                   .string();
    cache_dir_ = scratch_ + "/cache";
    fs::create_directories(scratch_);
    reg.set_cache_dir(cache_dir_);
    reg.clear_disk_cache();
    reg.set_mode(Mode::kJit);
    reg.reset_stats();
  }
  void TearDown() override {
    auto& reg = Registry::instance();
    reg.clear_disk_cache();
    reg.set_cache_dir(saved_dir_);
    reg.set_mode(saved_mode_);
    std::error_code ec;
    fs::remove_all(scratch_, ec);
  }

  Mode saved_mode_;
  std::string saved_dir_;
  std::string scratch_;
  std::string cache_dir_;
};

TEST_F(CacheHardeningTest, TruncatedModuleQuarantinedAndRecompiled) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix c(2, 2);
  auto& reg = Registry::instance();

  c[None] = matmul(a, a);
  ASSERT_EQ(reg.stats().compiles, 1u);

  // Corrupt the published .so — a crashed writer or disk corruption. The
  // corruption replaces the file (new inode) rather than truncating in
  // place: the first dlopen may still have the old inode mmapped, and
  // shrinking a mapped file turns reads into SIGBUS.
  const auto sos = list_with_extension(cache_dir_, ".so");
  ASSERT_EQ(sos.size(), 1u);
  fs::remove(sos[0]);
  write_file(sos[0], "not an ELF object and carries no stamp");
  reg.clear_memory_cache();

  // Never crash, never run garbage: quarantine + recompile.
  c[None] = matmul(a, a);
  const auto st = reg.stats();
  EXPECT_EQ(st.compiles, 2u);
  EXPECT_EQ(st.cache_quarantines, 1u);
  EXPECT_DOUBLE_EQ(c.get(0, 0), 7.0);
  EXPECT_FALSE(list_with_extension(cache_dir_, ".bad").empty());
}

TEST_F(CacheHardeningTest, StampMismatchQuarantinedAndRecompiled) {
  // Plant a module at the exact published path whose embedded stamp is
  // wrong — what a key-hash collision or stale cache schema looks like.
  OpRequest req;
  req.func = func::kMxM;
  req.a = DType::kFP64;
  req.b = DType::kFP64;
  req.semiring = MinPlusSemiring();
  const std::string key = req.key();

  fs::create_directories(cache_dir_);
  const fs::path so_path = fs::path(cache_dir_) / (module_stem(key) + ".so");
  const fs::path src_path = fs::path(scratch_) / "bogus.cpp";
  write_file(src_path, generate_source(req, "bogus-stamp"));
  ASSERT_TRUE(compile_module(src_path.string(), so_path.string()).ok);

  auto& reg = Registry::instance();
  reg.reset_stats();
  ResolveInfo info;
  KernelFn fn = reg.get(req, &info);
  ASSERT_NE(fn, nullptr);
  const auto st = reg.stats();
  EXPECT_STREQ(info.backend, "jit-compile");  // planted file NOT trusted
  EXPECT_EQ(st.cache_quarantines, 1u);
  EXPECT_EQ(st.compiles, 1u);
  EXPECT_TRUE(fs::exists(so_path.string() + ".bad"));
}

TEST_F(CacheHardeningTest, ValidDiskModuleStillVerifiesAndLoads) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix c(2, 2);
  auto& reg = Registry::instance();
  c[None] = matmul(a, a);
  reg.clear_memory_cache();
  c[None] = matmul(a, a);
  const auto st = reg.stats();
  EXPECT_EQ(st.compiles, 1u);
  EXPECT_EQ(st.disk_hits, 1u);
  EXPECT_EQ(st.cache_quarantines, 0u);
  EXPECT_DOUBLE_EQ(c.get(0, 0), 7.0);
}

TEST_F(CacheHardeningTest, AutoModeDegradesToInterpreterOnFailedCompile) {
  // A compiler that answers --version but fails every compile: auto mode
  // must produce correct results via the interpreter, count the
  // degradation, and negative-cache the key (no compile storm).
  const fs::path fake = fs::path(scratch_) / "fake_cxx.sh";
  write_file(fake,
             "#!/bin/sh\n"
             "case \"$*\" in *--version*) echo fake-g++ 1.0; exit 0;; esac\n"
             "echo 'fake compiler always fails' >&2\n"
             "exit 1\n");
  make_executable(fake);
  const char* saved_cxx = std::getenv("PYGB_CXX");
  const std::string saved_cxx_value = saved_cxx ? saved_cxx : "";
  ::setenv("PYGB_CXX", fake.c_str(), 1);

  auto& reg = Registry::instance();
  reg.set_mode(Mode::kAuto);
  reg.clear_memory_cache();  // also clears the negative cache
  reg.reset_stats();
  ASSERT_TRUE(reg.compiler_available());  // the fake probe passes

  // uint16 mxm is outside the static set → auto reaches for the JIT.
  Matrix a(2, 2, DType::kUInt16);
  a.set(0, 0, 3.0);
  a.set(0, 1, 2.0);
  a.set(1, 0, 5.0);
  Matrix c(2, 2, DType::kUInt16);
  c[None] = matmul(a, a);  // must NOT throw mid-algorithm
  EXPECT_EQ(c.get_element(0, 0).to_int64(), 3 * 3 + 2 * 5);
  auto st = reg.stats();
  EXPECT_EQ(st.compiles, 1u);  // one doomed attempt
  EXPECT_GE(st.jit_fallbacks, 1u);
  EXPECT_GE(st.interp_dispatches, 1u);

  // Same key again: the negative cache skips the doomed compile entirely.
  c[None] = matmul(a, a);
  st = reg.stats();
  EXPECT_EQ(st.compiles, 1u);
  EXPECT_GE(st.jit_fallbacks, 2u);
  EXPECT_EQ(c.get_element(0, 0).to_int64(), 3 * 3 + 2 * 5);

  if (saved_cxx != nullptr) {
    ::setenv("PYGB_CXX", saved_cxx_value.c_str(), 1);
  } else {
    ::unsetenv("PYGB_CXX");
  }
}

TEST_F(CacheHardeningTest, JitModeStillThrowsOnFailedCompile) {
  const fs::path fake = fs::path(scratch_) / "fake_cxx2.sh";
  write_file(fake,
             "#!/bin/sh\n"
             "case \"$*\" in *--version*) echo fake-g++ 1.0; exit 0;; esac\n"
             "exit 1\n");
  make_executable(fake);
  const char* saved_cxx = std::getenv("PYGB_CXX");
  const std::string saved_cxx_value = saved_cxx ? saved_cxx : "";
  ::setenv("PYGB_CXX", fake.c_str(), 1);

  Matrix a(2, 2, DType::kUInt16);
  a.set(0, 0, 1.0);
  Matrix c(2, 2, DType::kUInt16);
  EXPECT_THROW(c[None] = matmul(a, a), NoKernelError);

  if (saved_cxx != nullptr) {
    ::setenv("PYGB_CXX", saved_cxx_value.c_str(), 1);
  } else {
    ::unsetenv("PYGB_CXX");
  }
}

TEST_F(CacheHardeningTest, EvictionKeepsCacheWithinMaxBytes) {
  ::setenv("PYGB_CACHE_MAX_BYTES", "1", 1);
  Matrix a({{1, 2}, {3, 4}});
  Matrix c64(2, 2);
  c64[None] = matmul(a, a);  // module 1 published (sole module: kept)
  EXPECT_EQ(list_with_extension(cache_dir_, ".so").size(), 1u);

  Matrix a32(2, 2, DType::kFP32);
  a32.set(0, 0, 2.0);
  Matrix c32(2, 2, DType::kFP32);
  c32[None] = matmul(a32, a32);  // module 2 published → module 1 evicted
  EXPECT_EQ(list_with_extension(cache_dir_, ".so").size(), 1u);
  EXPECT_DOUBLE_EQ(c32.get(0, 0), 4.0);
  ::unsetenv("PYGB_CACHE_MAX_BYTES");
}

TEST_F(CacheHardeningTest, StaleLitterCleanedFreshLitterKept) {
  fs::create_directories(cache_dir_);
  const fs::path stale_tmp = fs::path(cache_dir_) / "pygb_x.so.123.tmp";
  const fs::path stale_log = fs::path(cache_dir_) / "pygb_x.so.123.tmp.log";
  const fs::path fresh_tmp = fs::path(cache_dir_) / "pygb_y.so.456.tmp";
  const fs::path module = fs::path(cache_dir_) / "pygb_z.so";
  for (const auto& p : {stale_tmp, stale_log, fresh_tmp, module}) {
    write_file(p, "x");
  }
  const auto old_time =
      fs::file_time_type::clock::now() - std::chrono::hours(2);
  fs::last_write_time(stale_tmp, old_time);
  fs::last_write_time(stale_log, old_time);

  EXPECT_EQ(clean_cache_litter(cache_dir_), 2u);
  EXPECT_FALSE(fs::exists(stale_tmp));
  EXPECT_FALSE(fs::exists(stale_log));
  EXPECT_TRUE(fs::exists(fresh_tmp));  // may belong to a live compile
  EXPECT_TRUE(fs::exists(module));     // modules are never litter
}

TEST_F(CacheHardeningTest, StemAndStampCoverEnvironment) {
  const std::string stamp = cache_stamp();
  EXPECT_NE(stamp.find("pygb-cache-v"), std::string::npos);
  EXPECT_NE(stamp.find(compiler_identity()), std::string::npos);
  EXPECT_NE(stamp.find(compile_flags()), std::string::npos);
  EXPECT_NE(module_stamp("k1"), module_stamp("k2"));
  EXPECT_NE(module_stem("k1"), module_stem("k2"));
  EXPECT_EQ(module_stem("k1"), module_stem("k1"));
}

TEST(CacheCodegenStamp, EmittedOnlyWhenRequested) {
  OpRequest req;
  req.func = func::kApplyV;
  req.a = DType::kFP64;
  req.unary_op = UnaryOp("Identity");
  const std::string plain = generate_source(req);
  EXPECT_EQ(plain.find("pygb_module_stamp"), std::string::npos);
  const std::string stamped = generate_source(req, "line1\"quoted\\x");
  EXPECT_NE(stamped.find("extern \"C\" const char pygb_module_stamp[]"),
            std::string::npos);
  EXPECT_NE(stamped.find("line1\\\"quoted\\\\x"), std::string::npos);
}

TEST(CacheCompiler, DecodesExitStatusAndDropsLogOnSuccess) {
  if (!compiler_available()) GTEST_SKIP();
  const auto dir = fs::temp_directory_path() /
                   ("pygb_compiler_test_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  // Success: no .log litter left behind.
  const auto good_src = dir / "good.cpp";
  write_file(good_src, "extern \"C\" int pygb_probe() { return 7; }\n");
  const auto good_so = dir / "good.so";
  ASSERT_TRUE(compile_module(good_src.string(), good_so.string()).ok);
  EXPECT_FALSE(fs::exists(good_so.string() + ".log"));

  // A compiler exiting 42: the decoded status is reported, not the raw
  // wait(2) word (42 << 8 = 10752 before the fix).
  const auto fake = dir / "exit42.sh";
  write_file(fake, "#!/bin/sh\nexit 42\n");
  make_executable(fake);
  const char* saved_cxx = std::getenv("PYGB_CXX");
  const std::string saved_cxx_value = saved_cxx ? saved_cxx : "";
  ::setenv("PYGB_CXX", fake.c_str(), 1);
  const auto result =
      compile_module(good_src.string(), (dir / "bad.so").string());
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.log.find("exit status 42"), std::string::npos);
  if (saved_cxx != nullptr) {
    ::setenv("PYGB_CXX", saved_cxx_value.c_str(), 1);
  } else {
    ::unsetenv("PYGB_CXX");
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(CacheCompiler, AvailabilityProbeTracksCompilerChanges) {
  if (!compiler_available()) GTEST_SKIP();
  const char* saved_cxx = std::getenv("PYGB_CXX");
  const std::string saved_cxx_value = saved_cxx ? saved_cxx : "";

  ::setenv("PYGB_CXX", "/bin/false", 1);
  EXPECT_FALSE(compiler_available());  // once_flag would return stale true

  // A command that cannot even answer --version: identity falls back to
  // the command string itself.
  ::setenv("PYGB_CXX", "/nonexistent/pygb-no-such-cxx", 1);
  EXPECT_FALSE(compiler_available());
  EXPECT_EQ(compiler_identity(), "/nonexistent/pygb-no-such-cxx");

  if (saved_cxx != nullptr) {
    ::setenv("PYGB_CXX", saved_cxx_value.c_str(), 1);
  } else {
    ::unsetenv("PYGB_CXX");
  }
  EXPECT_TRUE(compiler_available());
  EXPECT_FALSE(compiler_identity().empty());
}

TEST(CacheEviction, EvictsFullStemFamilyIncludingLitter) {
  // Eviction must take the WHOLE stem family. Evicting only the .so (and
  // the well-known .cpp/.srcmap siblings) stranded .lock / .so.log /
  // .so.bad / orphaned .so.<pid>.tmp files forever: with the cap filled by
  // unevictable litter, every later pass thrashed live modules instead.
  const auto dir = fs::temp_directory_path() /
                   ("pygb_evict_test_" + std::to_string(::getpid()));
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir);
  auto plant = [&](const std::string& name, std::size_t bytes) {
    write_file(dir / name, std::string(bytes, 'x'));
  };
  const std::vector<std::string> old_family = {
      "aa11.so",     "aa11.cpp",    "aa11.srcmap",       "aa11.lock",
      "aa11.so.log", "aa11.so.bad", "aa11.so.12345.tmp",
  };
  plant("aa11.so", 400);
  for (std::size_t i = 1; i < old_family.size(); ++i) {
    plant(old_family[i], 100);
  }
  plant("bb22.so", 400);
  const auto now = fs::file_time_type::clock::now();
  fs::last_write_time(dir / "aa11.so", now - std::chrono::hours(2));
  fs::last_write_time(dir / "bb22.so", now);

  // Total 1400 bytes; cap 500 forces out the old family (1000 bytes, the
  // .so plus every sidecar), after which the directory fits.
  const std::uint64_t evicted = enforce_cache_cap(dir.string(), 500);
  EXPECT_EQ(evicted, 1000u);
  for (const std::string& name : old_family) {
    EXPECT_FALSE(fs::exists(dir / name)) << name << " stranded";
  }
  EXPECT_TRUE(fs::exists(dir / "bb22.so"));  // newest is never evicted
  fs::remove_all(dir, ec);
}

}  // namespace
