// Table I reproduction: every GraphBLAS operation row, written in the DSL
// notation, must agree with the equivalent native GBTL call.
#include <gtest/gtest.h>

#include "gbtl/gbtl.hpp"
#include "pygb/pygb.hpp"

namespace {

using namespace pygb;  // NOLINT

Matrix dsl_a() { return Matrix({{1, 0, 2}, {0, 3, 0}, {4, 0, 5}}); }
Matrix dsl_b() { return Matrix({{0, 1, 0}, {2, 0, 3}, {0, 4, 0}}); }
Matrix dsl_mask() {
  Matrix m(3, 3, DType::kBool);
  m.set(0, 1, Scalar(true));
  m.set(1, 0, Scalar(true));
  m.set(2, 2, Scalar(true));
  return m;
}

gbtl::Matrix<double>& native(Matrix& m) { return m.typed<double>(); }

TEST(TableI, Mxm) {
  // C[M, z] = A @ B
  Matrix a = dsl_a(), b = dsl_b(), mask = dsl_mask();
  Matrix c_dsl(3, 3);
  {
    With ctx(ArithmeticSemiring(), Replace);
    c_dsl[mask] = matmul(a, b);
  }
  gbtl::Matrix<double> c_nat(3, 3);
  gbtl::mxm(c_nat, mask.typed<bool>(), gbtl::NoAccumulate{},
            gbtl::ArithmeticSemiring<double>{}, native(a), native(b),
            gbtl::OutputControl::kReplace);
  EXPECT_TRUE(c_dsl.typed<double>() == c_nat);
}

TEST(TableI, Mxv) {
  // w[m, z] = A @ u
  Matrix a = dsl_a();
  Vector u({1, 2, 3});
  Vector w_dsl(3);
  w_dsl[None] = matmul(a, u);
  gbtl::Vector<double> w_nat(3);
  gbtl::mxv(w_nat, gbtl::NoMask{}, gbtl::NoAccumulate{},
            gbtl::ArithmeticSemiring<double>{}, native(a), u.typed<double>());
  EXPECT_TRUE(w_dsl.typed<double>() == w_nat);
}

TEST(TableI, EWiseMultMatrixAndVector) {
  // C[M, z] = A * B ; w[m, z] = u * v
  Matrix a = dsl_a(), b = dsl_b();
  Matrix c_dsl(3, 3);
  c_dsl[None] = a * b;
  gbtl::Matrix<double> c_nat(3, 3);
  gbtl::eWiseMult(c_nat, gbtl::NoMask{}, gbtl::NoAccumulate{},
                  gbtl::Times<double>{}, native(a), native(b));
  EXPECT_TRUE(c_dsl.typed<double>() == c_nat);

  Vector u({1, 0, 3}), v({4, 5, 6});
  Vector w_dsl(3);
  w_dsl[None] = u * v;
  gbtl::Vector<double> w_nat(3);
  gbtl::eWiseMult(w_nat, gbtl::NoMask{}, gbtl::NoAccumulate{},
                  gbtl::Times<double>{}, u.typed<double>(),
                  v.typed<double>());
  EXPECT_TRUE(w_dsl.typed<double>() == w_nat);
}

TEST(TableI, EWiseAddMatrixAndVector) {
  // C[M, z] = A + B ; w[m, z] = u + v
  Matrix a = dsl_a(), b = dsl_b();
  Matrix c_dsl(3, 3);
  c_dsl[None] = a + b;
  gbtl::Matrix<double> c_nat(3, 3);
  gbtl::eWiseAdd(c_nat, gbtl::NoMask{}, gbtl::NoAccumulate{},
                 gbtl::Plus<double>{}, native(a), native(b));
  EXPECT_TRUE(c_dsl.typed<double>() == c_nat);

  Vector u({1, 0, 3}), v({4, 5, 6});
  Vector w_dsl(3);
  w_dsl[None] = u + v;
  gbtl::Vector<double> w_nat(3);
  gbtl::eWiseAdd(w_nat, gbtl::NoMask{}, gbtl::NoAccumulate{},
                 gbtl::Plus<double>{}, u.typed<double>(), v.typed<double>());
  EXPECT_TRUE(w_dsl.typed<double>() == w_nat);
}

TEST(TableI, ReduceRow) {
  // w[m, z] = reduce(monoid, A)
  Matrix a = dsl_a();
  Vector w_dsl(3);
  w_dsl[None] = reduce_rows(a, PlusMonoid());
  gbtl::Vector<double> w_nat(3);
  gbtl::reduce(w_nat, gbtl::NoMask{}, gbtl::NoAccumulate{},
               gbtl::PlusMonoid<double>{}, native(a));
  EXPECT_TRUE(w_dsl.typed<double>() == w_nat);
}

TEST(TableI, ReduceScalar) {
  // s = reduce(A) ; s = reduce(u)
  Matrix a = dsl_a();
  double s_nat = 0;
  gbtl::reduce(s_nat, gbtl::NoAccumulate{}, gbtl::PlusMonoid<double>{},
               native(a));
  EXPECT_DOUBLE_EQ(reduce(a).to_double(), s_nat);

  Vector u({1, 0, 3});
  double su_nat = 0;
  gbtl::reduce(su_nat, gbtl::NoAccumulate{}, gbtl::PlusMonoid<double>{},
               u.typed<double>());
  EXPECT_DOUBLE_EQ(reduce(u).to_double(), su_nat);
}

TEST(TableI, Apply) {
  // C[M, z] = apply(A) ; w[m, z] = apply(u)
  Matrix a = dsl_a();
  Matrix c_dsl(3, 3);
  {
    With ctx(UnaryOp("AdditiveInverse"));
    c_dsl[None] = apply(a);
  }
  gbtl::Matrix<double> c_nat(3, 3);
  gbtl::apply(c_nat, gbtl::NoMask{}, gbtl::NoAccumulate{},
              gbtl::AdditiveInverse<double>{}, native(a));
  EXPECT_TRUE(c_dsl.typed<double>() == c_nat);

  Vector u({1, 0, 3});
  Vector w_dsl(3);
  {
    With ctx(UnaryOp("Times", 2.0));
    w_dsl[None] = apply(u);
  }
  gbtl::Vector<double> w_nat(3);
  gbtl::apply(w_nat, gbtl::NoMask{}, gbtl::NoAccumulate{},
              gbtl::BinaryOpBind2nd<double, gbtl::Times<double>>(2.0),
              u.typed<double>());
  EXPECT_TRUE(w_dsl.typed<double>() == w_nat);
}

TEST(TableI, Transpose) {
  // C[M, z] = A.T
  Matrix a = dsl_a();
  Matrix c_dsl(3, 3);
  c_dsl[None] = transposed(a);
  gbtl::Matrix<double> c_nat(3, 3);
  gbtl::transpose(c_nat, gbtl::NoMask{}, gbtl::NoAccumulate{}, native(a));
  EXPECT_TRUE(c_dsl.typed<double>() == c_nat);
}

TEST(TableI, Extract) {
  // C[M, z] = A[i, j] ; w = u[i]
  Matrix a = dsl_a();
  Matrix c_dsl = a(Slice(0, 2), Slice(1, 3)).extract();
  gbtl::Matrix<double> c_nat(2, 2);
  gbtl::extract(c_nat, gbtl::NoMask{}, gbtl::NoAccumulate{}, native(a),
                gbtl::IndexArray{0, 1}, gbtl::IndexArray{1, 2});
  EXPECT_TRUE(c_dsl.typed<double>() == c_nat);

  Vector u({1, 0, 3, 4});
  Vector w_dsl = u[Slice(1, 4)].extract();
  gbtl::Vector<double> w_nat(3);
  gbtl::extract(w_nat, gbtl::NoMask{}, gbtl::NoAccumulate{},
                u.typed<double>(), gbtl::IndexArray{1, 2, 3});
  EXPECT_TRUE(w_dsl.typed<double>() == w_nat);
}

TEST(TableI, AssignRegion) {
  // C[M, z](i, j) = A ; w[m, z](i) = u
  Matrix src({{9, 8}, {7, 6}});
  Matrix c_dsl({{1, 1, 1}, {1, 1, 1}, {1, 1, 1}});
  c_dsl(Slice(0, 2), Slice(1, 3)) = src;
  Matrix c_nat_h({{1, 1, 1}, {1, 1, 1}, {1, 1, 1}});
  gbtl::assign(c_nat_h.typed<double>(), gbtl::NoMask{},
               gbtl::NoAccumulate{}, src.typed<double>(),
               gbtl::IndexArray{0, 1}, gbtl::IndexArray{1, 2});
  EXPECT_TRUE(c_dsl.equals(c_nat_h));

  Vector u_src({5, 6});
  Vector w_dsl({1, 1, 1, 1});
  w_dsl[gbtl::IndexArray{0, 2}] = u_src;
  gbtl::Vector<double> w_nat{1, 1, 1, 1};
  gbtl::assign(w_nat, gbtl::NoMask{}, gbtl::NoAccumulate{},
               u_src.typed<double>(), gbtl::IndexArray{0, 2});
  EXPECT_TRUE(w_dsl.typed<double>() == w_nat);
}

TEST(TableI, AssignConstant) {
  // w[m, z][i] = s
  Vector w_dsl(4);
  Vector mask(4, DType::kBool);
  mask.set(1, Scalar(true));
  mask.set(2, Scalar(true));
  w_dsl[mask] = 3.5;
  gbtl::Vector<double> w_nat(4);
  gbtl::assign(w_nat, mask.typed<bool>(), gbtl::NoAccumulate{}, 3.5,
               gbtl::AllIndices{});
  EXPECT_TRUE(w_dsl.typed<double>() == w_nat);
}

TEST(TableI, AccumulationViaPlusEquals) {
  // The (+) column: C[M] += expr maps to a GBTL accumulator argument.
  Matrix a = dsl_a(), b = dsl_b();
  Matrix c_dsl({{10, 0, 0}, {0, 10, 0}, {0, 0, 10}});
  {
    With ctx(Accumulator("Plus"), ArithmeticSemiring());
    c_dsl[None] += matmul(a, b);
  }
  gbtl::Matrix<double> c_nat({{10, 0, 0}, {0, 10, 0}, {0, 0, 10}});
  gbtl::mxm(c_nat, gbtl::NoMask{}, gbtl::Plus<double>{},
            gbtl::ArithmeticSemiring<double>{}, native(a), native(b));
  EXPECT_TRUE(c_dsl.typed<double>() == c_nat);
}

}  // namespace
