// Tests: the postmortem half of pygb::obs — flight-recorder ring semantics
// (wraparound, truncation, seqlock-clean concurrent recording), the
// async-signal-safe dump, the schema-versioned JSON exporter (validated
// against the checked-in tests/pygb/metrics_schema.json), the Prometheus
// text exposition (strict line parser + histogram coherence), and crash
// reports (in-process report rendering plus fork-based end-to-end crashes,
// including N threads crashing concurrently producing exactly one report).
//
// Suites are named Obs* so the TSan CI job's -R filter picks them up.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "pygb/obs/crash.hpp"
#include "pygb/obs/export.hpp"
#include "pygb/obs/flightrec.hpp"
#include "pygb/obs/obs.hpp"

namespace {

namespace fs = std::filesystem;
using pygb::flightrec::Event;
using pygb::flightrec::EventKind;

std::vector<Event> events_with_detail(const std::string& detail) {
  std::vector<Event> out;
  for (const Event& e : pygb::flightrec::snapshot()) {
    if (detail == e.detail) out.push_back(e);
  }
  return out;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(ObsFlightRec, RecordsAndSnapshots) {
  const std::uint64_t before = pygb::flightrec::total_recorded();
  pygb::flightrec::record(EventKind::kOpEnd, "frt_basic", 1234, 0xabcdef,
                          pygb::flightrec::kBackendStatic);
  EXPECT_EQ(pygb::flightrec::total_recorded(), before + 1);

  const auto mine = events_with_detail("frt_basic");
  ASSERT_EQ(mine.size(), 1u);
  EXPECT_EQ(mine[0].kind, EventKind::kOpEnd);
  EXPECT_EQ(mine[0].v0, 1234u);
  EXPECT_EQ(mine[0].v1, 0xabcdefu);
  EXPECT_EQ(mine[0].a32, pygb::flightrec::kBackendStatic);
  EXPECT_GT(mine[0].seq, 0u);

  const std::string line = pygb::flightrec::format_event(mine[0]);
  EXPECT_NE(line.find("op_end"), std::string::npos);
  EXPECT_NE(line.find("frt_basic"), std::string::npos);
}

TEST(ObsFlightRec, DetailIsTruncatedNotOverrun) {
  const std::string longdetail(100, 'x');
  pygb::flightrec::record(EventKind::kGovernor, longdetail.c_str());
  bool found = false;
  for (const Event& e : pygb::flightrec::snapshot()) {
    const std::string d = e.detail;
    if (d.find("xxxx") != 0) continue;
    found = true;
    EXPECT_LT(d.size(), pygb::flightrec::kDetailBytes);
    EXPECT_EQ(d, std::string(d.size(), 'x'));
  }
  EXPECT_TRUE(found);
}

TEST(ObsFlightRec, RingWrapsKeepingNewest) {
  constexpr std::size_t kTotal = pygb::flightrec::kRingEvents + 44;
  for (std::size_t i = 0; i < kTotal; ++i) {
    pygb::flightrec::record(EventKind::kPool, "frt_wrap", i);
  }
  const auto mine = events_with_detail("frt_wrap");
  // This thread's whole ring was overwritten by the loop, so exactly one
  // ring's worth survives and it is the newest kRingEvents records.
  ASSERT_EQ(mine.size(), pygb::flightrec::kRingEvents);
  std::uint64_t min_v0 = ~std::uint64_t{0}, max_v0 = 0;
  for (const Event& e : mine) {
    min_v0 = std::min(min_v0, e.v0);
    max_v0 = std::max(max_v0, e.v0);
  }
  EXPECT_EQ(max_v0, kTotal - 1);
  EXPECT_EQ(min_v0, kTotal - pygb::flightrec::kRingEvents);
  // snapshot() sorts by seq.
  for (std::size_t i = 1; i < mine.size(); ++i) {
    EXPECT_LT(mine[i - 1].seq, mine[i].seq);
  }
}

TEST(ObsFlightRec, ConcurrentRecordingIsTornFree) {
  constexpr int kThreads = 8;
  constexpr std::size_t kPerThread = 1000;  // > kRingEvents: full overwrite
  const std::uint64_t before = pygb::flightrec::total_recorded();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        pygb::flightrec::record(EventKind::kModule, "frt_conc",
                                static_cast<std::uint64_t>(i),
                                static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GE(pygb::flightrec::total_recorded(),
            before + kThreads * kPerThread);

  const auto mine = events_with_detail("frt_conc");
  EXPECT_EQ(mine.size(), kThreads * pygb::flightrec::kRingEvents);
  std::map<std::uint16_t, std::uint64_t> last_seq_by_tid;
  for (const Event& e : mine) {
    // A torn slot would surface as a mixed payload; every surviving event
    // must be internally consistent.
    EXPECT_EQ(e.kind, EventKind::kModule);
    EXPECT_LT(e.v1, static_cast<std::uint64_t>(kThreads));
    EXPECT_LT(e.v0, kPerThread);
    auto [it, fresh] = last_seq_by_tid.emplace(e.tid, e.seq);
    if (!fresh) {
      EXPECT_LT(it->second, e.seq);  // per-ring order preserved
      it->second = e.seq;
    }
  }
  EXPECT_EQ(last_seq_by_tid.size(), static_cast<std::size_t>(kThreads));
}

TEST(ObsFlightRec, DumpToFdIsReadableText) {
  pygb::flightrec::record(EventKind::kBreaker, "frt_dump", 7, 9);
  const fs::path path =
      fs::temp_directory_path() / "pygb_flightrec_dump.txt";
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  pygb::flightrec::dump_to_fd(fd, 512);
  ::close(fd);
  const std::string text = read_file(path);
  fs::remove(path);
  EXPECT_NE(text.find("frt_dump"), std::string::npos);
  EXPECT_NE(text.find("breaker"), std::string::npos);
}

TEST(ObsFlightRec, BackendCodesRoundTrip) {
  using namespace pygb::flightrec;
  for (const char* name : {"static", "jit-memory", "jit-disk", "jit-compile",
                           "jit-wait", "interp"}) {
    const std::uint32_t code = backend_code(name);
    EXPECT_NE(code, kBackendUnknown) << name;
    EXPECT_STREQ(backend_name(code), name);
  }
  EXPECT_EQ(backend_code("martian"), kBackendUnknown);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

/// Pull the "required" counter names out of the checked-in schema without a
/// JSON library: the counters.required array is the only string array in
/// the file containing "registry_lookups".
std::vector<std::string> schema_required_counters() {
  const std::string schema =
      read_file(fs::path(PYGB_TEST_SOURCE_DIR) / "pygb" /
                "metrics_schema.json");
  const std::size_t anchor = schema.find("registry_lookups");
  EXPECT_NE(anchor, std::string::npos);
  const std::size_t open = schema.rfind('[', anchor);
  const std::size_t close = schema.find(']', anchor);
  EXPECT_NE(open, std::string::npos);
  EXPECT_NE(close, std::string::npos);
  std::vector<std::string> names;
  std::size_t pos = open;
  while (true) {
    const std::size_t q1 = schema.find('"', pos);
    if (q1 == std::string::npos || q1 > close) break;
    const std::size_t q2 = schema.find('"', q1 + 1);
    names.push_back(schema.substr(q1 + 1, q2 - q1 - 1));
    pos = q2 + 1;
  }
  return names;
}

TEST(ObsExportJson, SnapshotCarriesSchemaAndRequiredCounters) {
  // Hermetic even when this test is the whole process (ctest runs each
  // case under its own --gtest_filter): put an event in the recorder so
  // the mirrored flight_events counter is provably nonzero.
  pygb::flightrec::record(EventKind::kGovernor, "export_json_test");
  pygb::obs::set_metrics_enabled(true);
  pygb::obs::record_value("kernel_ns/mxm/static", 1000);
  const std::string json = pygb::obs::metrics_json();
  pygb::obs::set_metrics_enabled(false);

  EXPECT_EQ(json.find("{\"schema\":\"pygb.metrics\",\"schema_version\":1,"),
            0u);
  const auto required = schema_required_counters();
  ASSERT_FALSE(required.empty());
  for (const std::string& name : required) {
    EXPECT_NE(json.find("\"" + name + "\":"), std::string::npos)
        << "exporter lost required counter " << name;
  }
  // flight_events mirrors the recorder, which is always on.
  EXPECT_EQ(json.find("\"flight_events\":0"), std::string::npos);
}

TEST(ObsExportJson, StableKeysMatchCounterNames) {
  const std::string json = pygb::obs::metrics_json();
  for (unsigned i = 0; i < pygb::obs::kCounterCount; ++i) {
    const char* name =
        pygb::obs::counter_name(static_cast<pygb::obs::Counter>(i));
    EXPECT_NE(json.find(std::string("\"") + name + "\":"),
              std::string::npos)
        << name;
  }
}

/// Strict Prometheus text-format parser: every line must be a well-formed
/// comment or sample, histogram buckets must be cumulative, and the +Inf
/// bucket must equal _count.
class PromParser {
 public:
  explicit PromParser(const std::string& text) : text_(text) {}

  bool parse(std::string* error) {
    std::istringstream in(text_);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty()) {
        *error = "blank line " + std::to_string(lineno);
        return false;
      }
      if (line.rfind("# TYPE ", 0) == 0) {
        if (!parse_type_line(line, error)) return false;
        continue;
      }
      if (line[0] == '#') {
        *error = "unknown comment at line " + std::to_string(lineno);
        return false;
      }
      if (!parse_sample(line, error)) return false;
    }
    return check_histograms(error);
  }

 private:
  static bool valid_name(const std::string& s) {
    if (s.empty()) return false;
    if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') {
      return false;
    }
    for (char c : s) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
          c != ':') {
        return false;
      }
    }
    return true;
  }

  bool parse_type_line(const std::string& line, std::string* error) {
    std::istringstream in(line);
    std::string hash, type_word, name, kind;
    in >> hash >> type_word >> name >> kind;
    if (!valid_name(name) ||
        (kind != "counter" && kind != "gauge" && kind != "histogram" &&
         kind != "summary" && kind != "untyped")) {
      *error = "bad TYPE line: " + line;
      return false;
    }
    types_[name] = kind;
    return true;
  }

  bool parse_sample(const std::string& line, std::string* error) {
    std::size_t pos = 0;
    while (pos < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[pos])) ||
            line[pos] == '_' || line[pos] == ':')) {
      ++pos;
    }
    const std::string name = line.substr(0, pos);
    if (!valid_name(name)) {
      *error = "bad metric name: " + line;
      return false;
    }
    std::map<std::string, std::string> labels;
    if (pos < line.size() && line[pos] == '{') {
      ++pos;
      while (pos < line.size() && line[pos] != '}') {
        std::size_t eq = line.find('=', pos);
        if (eq == std::string::npos || line[eq + 1] != '"') {
          *error = "bad label in: " + line;
          return false;
        }
        const std::string key = line.substr(pos, eq - pos);
        if (!valid_name(key)) {
          *error = "bad label name in: " + line;
          return false;
        }
        std::string value;
        std::size_t i = eq + 2;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') {
            if (i + 1 >= line.size()) break;
            ++i;
          }
          value += line[i++];
        }
        if (i >= line.size()) {
          *error = "unterminated label value in: " + line;
          return false;
        }
        labels[key] = value;
        pos = i + 1;
        if (pos < line.size() && line[pos] == ',') ++pos;
      }
      if (pos >= line.size() || line[pos] != '}') {
        *error = "unterminated label set in: " + line;
        return false;
      }
      ++pos;
    }
    if (pos >= line.size() || line[pos] != ' ') {
      *error = "missing value separator in: " + line;
      return false;
    }
    const std::string value_str = line.substr(pos + 1);
    double value = 0;
    if (value_str == "+Inf") {
      value = 1e308;
    } else {
      try {
        std::size_t used = 0;
        value = std::stod(value_str, &used);
        if (used != value_str.size()) throw std::invalid_argument("");
      } catch (...) {
        *error = "bad sample value in: " + line;
        return false;
      }
    }
    samples_.push_back({name, labels, value});
    return true;
  }

  struct Sample {
    std::string name;
    std::map<std::string, std::string> labels;
    double value;
  };

  static std::string series_key(const Sample& s) {
    std::string key;
    for (const auto& [k, v] : s.labels) {
      if (k == "le") continue;
      key += k + "=" + v + ";";
    }
    return key;
  }

  bool check_histograms(std::string* error) {
    // family+series -> buckets in emission order / count value
    std::map<std::string, std::vector<Sample>> buckets;
    std::map<std::string, double> counts;
    for (const Sample& s : samples_) {
      const bool is_bucket =
          s.name.size() > 7 &&
          s.name.compare(s.name.size() - 7, 7, "_bucket") == 0;
      if (is_bucket) {
        if (s.labels.find("le") == s.labels.end()) {
          *error = s.name + " sample without le label";
          return false;
        }
        buckets[s.name.substr(0, s.name.size() - 7) + "|" + series_key(s)]
            .push_back(s);
      } else if (s.name.size() > 6 &&
                 s.name.compare(s.name.size() - 6, 6, "_count") == 0) {
        counts[s.name.substr(0, s.name.size() - 6) + "|" + series_key(s)] =
            s.value;
      }
    }
    for (const auto& [key, series] : buckets) {
      double prev = -1;
      bool saw_inf = false;
      for (const Sample& s : series) {
        if (s.value < prev) {
          *error = "non-cumulative buckets for " + key;
          return false;
        }
        prev = s.value;
        if (s.labels.at("le") == "+Inf") saw_inf = true;
      }
      if (!saw_inf) {
        *error = "no +Inf bucket for " + key;
        return false;
      }
      const auto count = counts.find(key);
      if (count == counts.end() || count->second != series.back().value) {
        *error = "+Inf bucket != _count for " + key;
        return false;
      }
    }
    return true;
  }

  std::string text_;
  std::map<std::string, std::string> types_;
  std::vector<Sample> samples_;
};

TEST(ObsExportProm, ExpositionParsesStrictly) {
  pygb::obs::set_metrics_enabled(true);
  for (std::uint64_t v : {100u, 2000u, 2000u, 40000u, 1u << 20}) {
    pygb::obs::record_value("kernel_ns/mxm/static", v);
    pygb::obs::record_value("kernel_ns/ewise_add_mm/interp", v * 2);
    pygb::obs::record_value("compile_ns", v * 3);
  }
  const std::string text = pygb::obs::metrics_prometheus();
  pygb::obs::set_metrics_enabled(false);

  std::string error;
  PromParser parser(text);
  ASSERT_TRUE(parser.parse(&error)) << error << "\n--- exposition ---\n"
                                    << text;
  // The kernel family must be split into labels, not name-mangled.
  EXPECT_NE(text.find("pygb_kernel_ns_bucket{func=\"mxm\","
                      "backend=\"static\",le=\""),
            std::string::npos);
  EXPECT_NE(text.find("pygb_kernel_ns_count{func=\"ewise_add_mm\","
                      "backend=\"interp\"}"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE pygb_registry_lookups_total counter"),
            std::string::npos);
}

TEST(ObsExportProm, FlusherWritesAtomically) {
  const fs::path dir =
      fs::temp_directory_path() / "pygb_export_flush_test";
  fs::create_directories(dir);
  const fs::path json_path = dir / "metrics.json";
  const fs::path prom_path = dir / "metrics.prom";
  pygb::obs::set_export_paths(json_path.string(), prom_path.string());
  EXPECT_EQ(pygb::obs::flush_metrics_files(), 2);
  pygb::obs::set_export_paths("", "");

  const std::string json = read_file(json_path);
  EXPECT_NE(json.find("\"schema\":\"pygb.metrics\""), std::string::npos);
  std::string error;
  PromParser parser(read_file(prom_path));
  EXPECT_TRUE(parser.parse(&error)) << error;
  // No tmp litter left behind by the atomic rename.
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos);
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Crash reports
// ---------------------------------------------------------------------------

TEST(ObsCrash, ReportRendersAllSectionsInProcess) {
  pygb::flightrec::record(EventKind::kOpEnd, "crash_ctx", 42, 0x1234,
                          pygb::flightrec::kBackendInterp);
  const fs::path path = fs::temp_directory_path() / "pygb_crash_render.txt";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  pygb::crash::detail::write_report(
      fd, SIGSEGV, reinterpret_cast<const void*>(0xdead));
  ::close(fd);
  const std::string report = read_file(path);
  fs::remove(path);

  EXPECT_EQ(report.find("pygb crash report"), 0u);
  EXPECT_NE(report.find("schema: pygb.crash"), std::string::npos);
  EXPECT_NE(report.find("signal: 11 (SIGSEGV)"), std::string::npos);
  EXPECT_NE(report.find("fault_addr: 0x000000000000dead"),
            std::string::npos);
  EXPECT_NE(report.find("active_op:"), std::string::npos);
  EXPECT_NE(report.find("span_stack:"), std::string::npos);
  EXPECT_NE(report.find("backtrace:"), std::string::npos);
  EXPECT_NE(report.find("jit_frames:"), std::string::npos);
  EXPECT_NE(report.find("counters:"), std::string::npos);
  EXPECT_NE(report.find("flight_recorder:"), std::string::npos);
  EXPECT_NE(report.find("crash_ctx"), std::string::npos);
  const std::string tail = "end of report\n";
  ASSERT_GE(report.size(), tail.size());
  EXPECT_EQ(report.substr(report.size() - tail.size()), tail);
}

std::vector<fs::path> report_files(const fs::path& dir) {
  std::vector<fs::path> out;
  if (!fs::exists(dir)) return out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".report") out.push_back(entry.path());
  }
  return out;
}

TEST(ObsCrash, ForkedChildCrashLeavesOneCompleteReport) {
  const fs::path dir = fs::temp_directory_path() / "pygb_crash_fork_test";
  fs::remove_all(dir);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    pygb::crash::install(dir.c_str());
    volatile int* bad = nullptr;
    *bad = 1;  // SIGSEGV
    _exit(97);  // unreachable
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  const auto reports = report_files(dir);
  ASSERT_EQ(reports.size(), 1u);
  const std::string report = read_file(reports[0]);
  EXPECT_NE(report.find("signal: 11 (SIGSEGV)"), std::string::npos);
  EXPECT_NE(report.find("end of report\n"), std::string::npos);
  fs::remove_all(dir);
}

TEST(ObsCrash, ConcurrentCrashersProduceExactlyOneReport) {
  const fs::path dir = fs::temp_directory_path() / "pygb_crash_conc_test";
  fs::remove_all(dir);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    pygb::crash::install(dir.c_str());
    constexpr int kCrashers = 4;
    std::atomic<int> ready{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kCrashers; ++t) {
      threads.emplace_back([&ready] {
        ready.fetch_add(1);
        while (ready.load() < kCrashers) {
        }
        volatile int* bad = nullptr;
        *bad = 1;  // all threads fault as close to simultaneously as we can
      });
    }
    for (auto& th : threads) th.join();  // never returns: process dies
    _exit(97);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  const auto reports = report_files(dir);
  ASSERT_EQ(reports.size(), 1u) << "concurrent crashers must not race "
                                   "multiple or torn reports into the dir";
  const std::string report = read_file(reports[0]);
  EXPECT_NE(report.find("pygb crash report"), std::string::npos);
  const std::string tail = "end of report\n";
  ASSERT_GE(report.size(), tail.size());
  EXPECT_EQ(report.substr(report.size() - tail.size()), tail)
      << "report must be complete, not truncated by a racing crasher";
  fs::remove_all(dir);
}

}  // namespace
