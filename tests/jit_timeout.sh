#!/usr/bin/env bash
# JIT deadline test (robustness acceptance): with a compiler stub that
# sleeps forever, a REAL hung compiler child must be killed within
# PYGB_JIT_TIMEOUT_MS (plus the SIGTERM→SIGKILL grace), the whole child
# tree must be reaped (no surviving sleeps, no zombies), and:
#
#   * PYGB_JIT_MODE=jit   — the run fails fast with a classified error
#     (nonzero exit, bounded wall clock), instead of hanging forever;
#   * PYGB_JIT_MODE=auto  — the run SUCCEEDS via the interpreter fallback.
#
# usage: jit_timeout.sh <path-to-pygb_cli>
set -euo pipefail

CLI="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# A sleep duration nobody else on the machine plausibly uses, so a
# process-table scan can attribute survivors to this test alone.
SLEEP_SECS=86327

cat > "$TMP/hang_cxx.sh" <<EOF
#!/bin/sh
case "\$*" in *--version*) echo hang-g++ 1.0; exit 0;; esac
exec sleep $SLEEP_SECS
EOF
chmod +x "$TMP/hang_cxx.sh"

printf '0 1 1.0\n1 2 1.0\n2 0 1.0\n' > "$TMP/ring.txt"
export PYGB_CACHE_DIR="$TMP/cache"
export PYGB_CXX="$TMP/hang_cxx.sh"
export PYGB_JIT_TIMEOUT_MS=1500
export PYGB_JIT_RETRIES=0

no_survivors() {
  if pgrep -f "sleep $SLEEP_SECS" > /dev/null 2>&1; then
    echo "FAIL($1): hung compiler children survived the kill"
    pgrep -af "sleep $SLEEP_SECS" || true
    pkill -9 -f "sleep $SLEEP_SECS" || true
    exit 1
  fi
}

# Connected components drives dispatch keys OUTSIDE the static set, so
# auto mode must actually reach for the JIT (pagerank/bfs/sssp on fp64
# are fully covered by the static tier and would prove nothing).

# Leg 1 — jit mode: the first cold key hits the hung compiler; the
# deadline must kill it and the CLI must fail fast, not hang.
SECONDS=0
rc=0
PYGB_JIT_MODE=jit "$CLI" cc "$TMP/ring.txt" --tier dsl \
  > "$TMP/jit.out" 2>&1 || rc=$?
dur=$SECONDS
[ "$rc" -ne 0 ] || { echo "FAIL: jit mode exited 0 despite a hung compiler"; cat "$TMP/jit.out"; exit 1; }
[ "$dur" -le 20 ] || { echo "FAIL: jit mode took ${dur}s (unbounded wait?)"; exit 1; }
grep -qi "timed out" "$TMP/jit.out" || {
  echo "FAIL: jit-mode error does not mention the timeout"; cat "$TMP/jit.out"; exit 1; }
no_survivors "jit"

# The killed compile must not litter the cache with partial outputs.
tmp_count="$(find "$TMP/cache" -name '*.tmp' 2>/dev/null | wc -l)"
[ "$tmp_count" -eq 0 ] || { echo "FAIL: $tmp_count .tmp files leaked"; exit 1; }

# Leg 2 — auto mode: every hung compile degrades to the interpreter; the
# algorithm must complete correctly and report interpreted dispatches.
SECONDS=0
PYGB_JIT_MODE=auto "$CLI" cc "$TMP/ring.txt" --tier dsl \
  > "$TMP/auto.out" 2>&1
dur=$SECONDS
[ "$dur" -le 60 ] || { echo "FAIL: auto mode took ${dur}s"; exit 1; }
grep -q "components:" "$TMP/auto.out" || {
  echo "FAIL: auto mode did not produce a result"; cat "$TMP/auto.out"; exit 1; }
interp="$(sed -n 's/.*\[dispatch:.*[, ]\([0-9][0-9]*\) interpreted.*/\1/p' "$TMP/auto.out")"
[ -n "$interp" ] && [ "$interp" -gt 0 ] || {
  echo "FAIL: auto mode reported no interpreted dispatches"; cat "$TMP/auto.out"; exit 1; }
no_survivors "auto"

echo "PASS (jit leg ${rc} in bounded time; auto leg interpreted $interp ops)"
