// Tests: the assign and extract operation families, including the C API
// subtlety that assign's mask covers the WHOLE output container.
#include <gtest/gtest.h>

#include "reference.hpp"

namespace {

using namespace gbtl;  // NOLINT

TEST(AssignMatrix, RegionTakesSourceStructure) {
  Matrix<int> c({{1, 1, 1}, {1, 1, 1}, {1, 1, 1}});
  Matrix<int> a(2, 2);
  a.setElement(0, 0, 9);  // (0,1), (1,0), (1,1) absent in A
  IndexArray rows{0, 1};
  IndexArray cols{0, 1};
  assign(c, NoMask{}, NoAccumulate{}, a, rows, cols);
  EXPECT_EQ(c.extractElement(0, 0), 9);
  // Region positions not stored in A are DELETED.
  EXPECT_FALSE(c.hasElement(0, 1));
  EXPECT_FALSE(c.hasElement(1, 0));
  EXPECT_FALSE(c.hasElement(1, 1));
  // Outside the region untouched.
  EXPECT_EQ(c.extractElement(2, 2), 1);
  EXPECT_EQ(c.extractElement(0, 2), 1);
}

TEST(AssignMatrix, AccumKeepsRegionValues) {
  Matrix<int> c({{1, 1}, {1, 1}});
  Matrix<int> a(2, 2);
  a.setElement(0, 0, 9);
  assign(c, NoMask{}, Plus<int>{}, a, AllIndices{}, AllIndices{});
  EXPECT_EQ(c.extractElement(0, 0), 10);  // accumulated
  EXPECT_EQ(c.extractElement(0, 1), 1);   // kept (accum, absent in A)
  EXPECT_EQ(c.nvals(), 4u);
}

TEST(AssignMatrix, ScatterToPermutedIndices) {
  Matrix<int> c(3, 3);
  Matrix<int> a({{1, 2}, {3, 4}});
  IndexArray rows{2, 0};
  IndexArray cols{1, 2};
  assign(c, NoMask{}, NoAccumulate{}, a, rows, cols);
  EXPECT_EQ(c.extractElement(2, 1), 1);
  EXPECT_EQ(c.extractElement(2, 2), 2);
  EXPECT_EQ(c.extractElement(0, 1), 3);
  EXPECT_EQ(c.extractElement(0, 2), 4);
}

TEST(AssignMatrix, ShapeMismatchThrows) {
  Matrix<int> c(3, 3);
  Matrix<int> a(2, 2);
  IndexArray idx{0};
  EXPECT_THROW(assign(c, NoMask{}, NoAccumulate{}, a, idx, idx),
               DimensionException);
}

TEST(AssignMatrix, IndexOutOfBoundsThrows) {
  Matrix<int> c(3, 3);
  Matrix<int> a(1, 1);
  a.setElement(0, 0, 1);
  IndexArray bad{3};
  IndexArray ok{0};
  EXPECT_THROW(assign(c, NoMask{}, NoAccumulate{}, a, bad, ok),
               IndexOutOfBoundsException);
}

TEST(AssignMatrixConstant, FillsMaskedRegion) {
  Matrix<int> c(2, 3);
  Matrix<bool> mask(2, 3);
  mask.setElement(0, 0, true);
  mask.setElement(1, 2, true);
  assign(c, mask, NoAccumulate{}, 7, AllIndices{}, AllIndices{});
  EXPECT_EQ(c.nvals(), 2u);
  EXPECT_EQ(c.extractElement(0, 0), 7);
  EXPECT_EQ(c.extractElement(1, 2), 7);
}

TEST(AssignMatrixConstant, UnmaskedAllIndicesMakesDense) {
  Matrix<int> c(2, 2);
  assign(c, NoMask{}, NoAccumulate{}, 3, AllIndices{}, AllIndices{});
  EXPECT_EQ(c.nvals(), 4u);
}

TEST(AssignVector, BfsLevelAssignPattern) {
  // Fig. 2: levels<frontier> = depth.
  Vector<int> levels(5);
  levels.setElement(0, 1);
  Vector<bool> frontier(5);
  frontier.setElement(2, true);
  frontier.setElement(4, true);
  assign(levels, frontier, NoAccumulate{}, 2, AllIndices{});
  EXPECT_EQ(levels.extractElement(0), 1);  // outside mask, merge keeps
  EXPECT_EQ(levels.extractElement(2), 2);
  EXPECT_EQ(levels.extractElement(4), 2);
  EXPECT_EQ(levels.nvals(), 3u);
}

TEST(AssignVector, ContainerIntoSubrange) {
  Vector<int> w{1, 1, 1, 1, 1};
  Vector<int> u(2);
  u.setElement(0, 9);  // u(1) absent
  IndexArray idx{1, 3};
  assign(w, NoMask{}, NoAccumulate{}, u, idx);
  EXPECT_EQ(w.extractElement(1), 9);
  EXPECT_FALSE(w.hasElement(3));  // absent in u -> deleted in region
  EXPECT_EQ(w.extractElement(0), 1);
}

TEST(AssignVector, ReplaceClearsMaskedOutEverywhere) {
  Vector<int> w{1, 2, 3};
  Vector<bool> mask(3);
  mask.setElement(0, true);
  assign(w, mask, NoAccumulate{}, 9, AllIndices{},
         OutputControl::kReplace);
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_EQ(w.extractElement(0), 9);
}

TEST(AssignVector, AccumulateConstant) {
  Vector<int> w{10, 0, 30};
  assign(w, NoMask{}, Plus<int>{}, 5, AllIndices{});
  EXPECT_EQ(w.extractElement(0), 15);
  EXPECT_EQ(w.extractElement(1), 5);  // was absent -> takes value
  EXPECT_EQ(w.extractElement(2), 35);
}

TEST(ExtractMatrix, Submatrix) {
  Matrix<int> a({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  Matrix<int> c(2, 2);
  IndexArray rows{0, 2};
  IndexArray cols{1, 2};
  extract(c, NoMask{}, NoAccumulate{}, a, rows, cols);
  EXPECT_EQ(c.extractElement(0, 0), 2);
  EXPECT_EQ(c.extractElement(0, 1), 3);
  EXPECT_EQ(c.extractElement(1, 0), 8);
  EXPECT_EQ(c.extractElement(1, 1), 9);
}

TEST(ExtractMatrix, DuplicateIndicesReplicate) {
  Matrix<int> a({{1, 2}, {3, 4}});
  Matrix<int> c(2, 3);
  IndexArray rows{0, 0};
  IndexArray cols{1, 1, 0};
  extract(c, NoMask{}, NoAccumulate{}, a, rows, cols);
  EXPECT_EQ(c.extractElement(0, 0), 2);
  EXPECT_EQ(c.extractElement(0, 1), 2);
  EXPECT_EQ(c.extractElement(0, 2), 1);
  EXPECT_EQ(c.extractElement(1, 0), 2);
}

TEST(ExtractMatrix, SparsityPreserved) {
  Matrix<int> a(3, 3);
  a.setElement(1, 1, 5);
  Matrix<int> c(2, 2);
  IndexArray idx{0, 1};
  extract(c, NoMask{}, NoAccumulate{}, a, idx, idx);
  EXPECT_EQ(c.nvals(), 1u);
  EXPECT_EQ(c.extractElement(1, 1), 5);
}

TEST(ExtractMatrix, OutputShapeMismatchThrows) {
  Matrix<int> a(3, 3);
  Matrix<int> c(2, 2);
  IndexArray idx{0, 1, 2};
  EXPECT_THROW(extract(c, NoMask{}, NoAccumulate{}, a, idx, idx),
               DimensionException);
}

TEST(ExtractVector, Subvector) {
  Vector<int> u{10, 0, 30, 40};
  Vector<int> w(3);
  IndexArray idx{3, 1, 0};
  extract(w, NoMask{}, NoAccumulate{}, u, idx);
  EXPECT_EQ(w.extractElement(0), 40);
  EXPECT_FALSE(w.hasElement(1));
  EXPECT_EQ(w.extractElement(2), 10);
}

TEST(ExtractVector, ColumnOfMatrix) {
  Matrix<int> a({{1, 2}, {3, 4}, {5, 6}});
  Vector<int> w(3);
  extract(w, NoMask{}, NoAccumulate{}, a, AllIndices{}, IndexType{1});
  EXPECT_EQ(w.extractElement(0), 2);
  EXPECT_EQ(w.extractElement(1), 4);
  EXPECT_EQ(w.extractElement(2), 6);
}

TEST(ExtractVector, RowViaTransposeView) {
  Matrix<int> a({{1, 2}, {3, 4}});
  Vector<int> w(2);
  extract(w, NoMask{}, NoAccumulate{}, transpose(a), AllIndices{},
          IndexType{1});
  EXPECT_EQ(w.extractElement(0), 3);  // row 1 of a
  EXPECT_EQ(w.extractElement(1), 4);
}

TEST(ExtractRoundTrip, ExtractThenAssignRestores) {
  auto a = testref::random_matrix<int>(8, 8, 0.4, 77);
  IndexArray idx{1, 3, 5};
  Matrix<int> sub(3, 3);
  extract(sub, NoMask{}, NoAccumulate{}, a, idx, idx);
  Matrix<int> b = a;
  assign(b, NoMask{}, NoAccumulate{}, sub, idx, idx);
  EXPECT_EQ(a, b);
}

}  // namespace
