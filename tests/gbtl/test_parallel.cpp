// Tests: the multithreaded substrate backend (§IV's "multithreaded GBTL
// backend") — every parallel kernel must produce bit-identical results
// across worker counts, including exception propagation and the
// small-input sequential fast path.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "gbtl/detail/parallel.hpp"
#include "reference.hpp"

namespace {

using namespace gbtl;  // NOLINT
using testref::random_matrix;
using testref::random_vector;

/// RAII worker-count override.
class ThreadGuard {
 public:
  explicit ThreadGuard(unsigned n) : saved_(detail::num_threads()) {
    detail::set_num_threads(n);
  }
  ~ThreadGuard() { detail::set_num_threads(saved_); }

 private:
  unsigned saved_;
};

class ParallelKernels : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelKernels, GustavsonMxmMatchesSequential) {
  auto a = random_matrix<int>(300, 200, 0.05, 7);
  auto b = random_matrix<int>(200, 250, 0.05, 8);
  Matrix<int> seq(300, 250);
  mxm(seq, NoMask{}, NoAccumulate{}, ArithmeticSemiring<int>{}, a, b);

  ThreadGuard guard(GetParam());
  Matrix<int> par(300, 250);
  mxm(par, NoMask{}, NoAccumulate{}, ArithmeticSemiring<int>{}, a, b);
  EXPECT_EQ(seq, par);
}

TEST_P(ParallelKernels, DotKernelMatchesSequential) {
  auto a = random_matrix<int>(260, 120, 0.08, 9);
  auto b = random_matrix<int>(240, 120, 0.08, 10);
  Matrix<int> seq(260, 240);
  mxm(seq, NoMask{}, NoAccumulate{}, ArithmeticSemiring<int>{}, a,
      transpose(b));

  ThreadGuard guard(GetParam());
  Matrix<int> par(260, 240);
  mxm(par, NoMask{}, NoAccumulate{}, ArithmeticSemiring<int>{}, a,
      transpose(b));
  EXPECT_EQ(seq, par);
}

TEST_P(ParallelKernels, MaskedDotKernelMatchesSequential) {
  auto a = random_matrix<int>(220, 150, 0.08, 11);
  auto b = random_matrix<int>(220, 150, 0.08, 12);
  auto mask = random_matrix<bool>(220, 220, 0.3, 13, false, true);
  Matrix<int> seq(220, 220);
  mxm(seq, mask, NoAccumulate{}, ArithmeticSemiring<int>{}, a, transpose(b),
      OutputControl::kReplace);

  ThreadGuard guard(GetParam());
  Matrix<int> par(220, 220);
  mxm(par, mask, NoAccumulate{}, ArithmeticSemiring<int>{}, a, transpose(b),
      OutputControl::kReplace);
  EXPECT_EQ(seq, par);
}

TEST_P(ParallelKernels, MxvPullMatchesSequential) {
  auto a = random_matrix<int>(500, 400, 0.05, 14);
  auto u = random_vector<int>(400, 0.5, 15);
  Vector<int> seq(500);
  mxv(seq, NoMask{}, NoAccumulate{}, ArithmeticSemiring<int>{}, a, u);

  ThreadGuard guard(GetParam());
  Vector<int> par(500);
  mxv(par, NoMask{}, NoAccumulate{}, ArithmeticSemiring<int>{}, a, u);
  EXPECT_TRUE(seq == par);
}

TEST_P(ParallelKernels, MinPlusSemiringMatchesSequential) {
  auto a = random_matrix<double>(280, 280, 0.05, 16);
  auto u = random_vector<double>(280, 0.4, 17);
  Vector<double> seq(280);
  mxv(seq, NoMask{}, NoAccumulate{}, MinPlusSemiring<double>{}, a, u);

  ThreadGuard guard(GetParam());
  Vector<double> par(280);
  mxv(par, NoMask{}, NoAccumulate{}, MinPlusSemiring<double>{}, a, u);
  EXPECT_TRUE(seq == par);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ParallelKernels,
                         ::testing::Values(2u, 3u, 4u, 8u));

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadGuard guard(4);
  std::vector<std::atomic<int>> hits(1000);
  detail::parallel_for_rows(1000, [&](IndexType begin, IndexType end) {
    for (IndexType i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, TinyRangeRunsInline) {
  ThreadGuard guard(8);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  detail::parallel_for_rows(10, [&](IndexType, IndexType) {
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);  // below the per-thread minimum: no spawn
}

TEST(ParallelFor, PropagatesWorkerExceptions) {
  ThreadGuard guard(4);
  EXPECT_THROW(
      detail::parallel_for_rows(1000,
                                [&](IndexType begin, IndexType) {
                                  if (begin > 0) {
                                    throw std::runtime_error("worker boom");
                                  }
                                }),
      std::runtime_error);
}

TEST(ParallelFor, ThreadCountClampsToOne) {
  detail::set_num_threads(0);
  EXPECT_EQ(detail::num_threads(), 1u);
  detail::set_num_threads(1);
}

}  // namespace
