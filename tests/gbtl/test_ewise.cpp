// Tests: eWiseAdd (union) / eWiseMult (intersection), matrix and vector.
#include <gtest/gtest.h>

#include "reference.hpp"

namespace {

using namespace gbtl;  // NOLINT
using testref::random_matrix;
using testref::random_vector;

TEST(EWiseAdd, UnionSemanticsMatrix) {
  Matrix<int> a(2, 2);
  a.setElement(0, 0, 1);
  a.setElement(0, 1, 2);
  Matrix<int> b(2, 2);
  b.setElement(0, 1, 10);
  b.setElement(1, 0, 20);
  Matrix<int> c(2, 2);
  eWiseAdd(c, NoMask{}, NoAccumulate{}, Plus<int>{}, a, b);
  EXPECT_EQ(c.nvals(), 3u);
  EXPECT_EQ(c.extractElement(0, 0), 1);    // only in A
  EXPECT_EQ(c.extractElement(0, 1), 12);   // both: 2 + 10
  EXPECT_EQ(c.extractElement(1, 0), 20);   // only in B
}

TEST(EWiseMult, IntersectionSemanticsMatrix) {
  Matrix<int> a(2, 2);
  a.setElement(0, 0, 3);
  a.setElement(0, 1, 2);
  Matrix<int> b(2, 2);
  b.setElement(0, 1, 10);
  b.setElement(1, 0, 20);
  Matrix<int> c(2, 2);
  eWiseMult(c, NoMask{}, NoAccumulate{}, Times<int>{}, a, b);
  EXPECT_EQ(c.nvals(), 1u);
  EXPECT_EQ(c.extractElement(0, 1), 20);
}

TEST(EWiseAdd, UnionSemanticsVector) {
  Vector<int> u{1, 0, 3};
  Vector<int> v{0, 5, 7};
  Vector<int> w(3);
  eWiseAdd(w, NoMask{}, NoAccumulate{}, Plus<int>{}, u, v);
  EXPECT_EQ(w.nvals(), 3u);
  EXPECT_EQ(w.extractElement(0), 1);
  EXPECT_EQ(w.extractElement(1), 5);
  EXPECT_EQ(w.extractElement(2), 10);
}

TEST(EWiseMult, IntersectionSemanticsVector) {
  Vector<int> u{1, 0, 3};
  Vector<int> v{0, 5, 7};
  Vector<int> w(3);
  eWiseMult(w, NoMask{}, NoAccumulate{}, Times<int>{}, u, v);
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_EQ(w.extractElement(2), 21);
}

TEST(EWiseAdd, NonCommutativeOpKeepsOperandOrder) {
  Vector<int> u{10, 0};
  Vector<int> v{3, 0};
  Vector<int> w(2);
  eWiseAdd(w, NoMask{}, NoAccumulate{}, Minus<int>{}, u, v);
  EXPECT_EQ(w.extractElement(0), 7);
}

TEST(EWise, DtypeCastThroughOutput) {
  // int inputs, double output container: values cast on write.
  Matrix<int> a({{1, 0}, {0, 2}});
  Matrix<int> b({{3, 0}, {0, 4}});
  Matrix<double> c(2, 2);
  eWiseMult(c, NoMask{}, NoAccumulate{}, Times<int>{}, a, b);
  EXPECT_DOUBLE_EQ(c.extractElement(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(c.extractElement(1, 1), 8.0);
}

TEST(EWise, TransposedOperandsAreMaterialized) {
  Matrix<int> a({{1, 2}, {3, 4}});
  Matrix<int> c(2, 2);
  eWiseAdd(c, NoMask{}, NoAccumulate{}, Plus<int>{}, a, transpose(a));
  EXPECT_EQ(c.extractElement(0, 1), 5);  // 2 + 3
  EXPECT_EQ(c.extractElement(1, 0), 5);
  EXPECT_EQ(c.extractElement(0, 0), 2);
}

TEST(EWise, ShapeMismatchThrows) {
  Matrix<int> a(2, 2), b(2, 3), c(2, 2);
  EXPECT_THROW(eWiseAdd(c, NoMask{}, NoAccumulate{}, Plus<int>{}, a, b),
               DimensionException);
  Vector<int> u(2), v(3), w(2);
  EXPECT_THROW(eWiseMult(w, NoMask{}, NoAccumulate{}, Times<int>{}, u, v),
               DimensionException);
}

TEST(EWise, MaskAndAccumCompose) {
  Vector<int> u{1, 2, 3};
  Vector<int> v{10, 20, 30};
  Vector<int> w{100, 100, 100};
  Vector<bool> mask(3);
  mask.setElement(0, true);
  mask.setElement(2, true);
  eWiseAdd(w, mask, Plus<int>{}, Plus<int>{}, u, v);
  EXPECT_EQ(w.extractElement(0), 111);   // 100 + (1+10)
  EXPECT_EQ(w.extractElement(1), 100);   // masked out, merge keeps
  EXPECT_EQ(w.extractElement(2), 133);
}

TEST(EWiseProperty, AddIsUnionMultIsIntersection) {
  for (unsigned seed : {31u, 32u, 33u}) {
    auto a = random_matrix<int>(12, 12, 0.3, seed);
    auto b = random_matrix<int>(12, 12, 0.3, seed + 100);
    Matrix<int> sum(12, 12), prod(12, 12);
    eWiseAdd(sum, NoMask{}, NoAccumulate{}, Plus<int>{}, a, b);
    eWiseMult(prod, NoMask{}, NoAccumulate{}, Times<int>{}, a, b);
    for (IndexType i = 0; i < 12; ++i) {
      for (IndexType j = 0; j < 12; ++j) {
        const bool ha = a.hasElement(i, j), hb = b.hasElement(i, j);
        EXPECT_EQ(sum.hasElement(i, j), ha || hb);
        EXPECT_EQ(prod.hasElement(i, j), ha && hb);
        if (ha && hb) {
          EXPECT_EQ(sum.extractElement(i, j),
                    a.extractElement(i, j) + b.extractElement(i, j));
          EXPECT_EQ(prod.extractElement(i, j),
                    a.extractElement(i, j) * b.extractElement(i, j));
        }
      }
    }
  }
}

TEST(EWiseProperty, VectorUnionIntersection) {
  for (unsigned seed : {41u, 42u}) {
    auto u = random_vector<int>(40, 0.4, seed);
    auto v = random_vector<int>(40, 0.4, seed + 100);
    Vector<int> sum(40), prod(40);
    eWiseAdd(sum, NoMask{}, NoAccumulate{}, Max<int>{}, u, v);
    eWiseMult(prod, NoMask{}, NoAccumulate{}, Min<int>{}, u, v);
    for (IndexType i = 0; i < 40; ++i) {
      EXPECT_EQ(sum.hasElement(i), u.hasElement(i) || v.hasElement(i));
      EXPECT_EQ(prod.hasElement(i), u.hasElement(i) && v.hasElement(i));
    }
  }
}

}  // namespace
