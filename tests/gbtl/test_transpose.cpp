// Tests: the transpose operation (materializing) and its view interplay.
#include <gtest/gtest.h>

#include "reference.hpp"

namespace {

using namespace gbtl;  // NOLINT
using testref::random_matrix;

TEST(TransposeOp, Basic) {
  Matrix<int> a(2, 3);
  a.setElement(0, 2, 5);
  a.setElement(1, 0, 7);
  Matrix<int> c(3, 2);
  transpose(c, NoMask{}, NoAccumulate{}, a);
  EXPECT_EQ(c.nvals(), 2u);
  EXPECT_EQ(c.extractElement(2, 0), 5);
  EXPECT_EQ(c.extractElement(0, 1), 7);
}

TEST(TransposeOp, ViewInputCancels) {
  Matrix<int> a({{1, 2}, {3, 4}});
  Matrix<int> c(2, 2);
  transpose(c, NoMask{}, NoAccumulate{}, transpose(a));
  EXPECT_EQ(c, a);
}

TEST(TransposeOp, ShapeMismatchThrows) {
  Matrix<int> a(2, 3);
  Matrix<int> c(2, 3);
  EXPECT_THROW(transpose(c, NoMask{}, NoAccumulate{}, a),
               DimensionException);
}

TEST(TransposeOp, WithAccumAndMask) {
  Matrix<int> a({{1, 2}, {3, 4}});
  Matrix<int> c({{10, 10}, {10, 10}});
  Matrix<bool> mask(2, 2);
  mask.setElement(0, 1, true);
  transpose(c, mask, Plus<int>{}, a);
  EXPECT_EQ(c.extractElement(0, 1), 13);  // 10 + a(1,0)
  EXPECT_EQ(c.extractElement(0, 0), 10);
  EXPECT_EQ(c.extractElement(1, 1), 10);
}

TEST(TransposeOp, DoubleTransposeIdentityProperty) {
  for (unsigned seed : {91u, 92u}) {
    auto a = random_matrix<int>(7, 11, 0.4, seed);
    Matrix<int> t(11, 7), tt(7, 11);
    transpose(t, NoMask{}, NoAccumulate{}, a);
    transpose(tt, NoMask{}, NoAccumulate{}, t);
    EXPECT_EQ(tt, a);
  }
}

TEST(TransposeOp, MaterializeHelperAgreesWithView) {
  auto a = random_matrix<int>(6, 9, 0.5, 93);
  auto at = detail::materialize_transpose(a);
  auto view = gbtl::transpose(a);
  EXPECT_EQ(at.nrows(), view.nrows());
  EXPECT_EQ(at.ncols(), view.ncols());
  for (IndexType i = 0; i < at.nrows(); ++i) {
    for (IndexType j = 0; j < at.ncols(); ++j) {
      EXPECT_EQ(at.hasElement(i, j), view.hasElement(i, j));
      if (at.hasElement(i, j)) {
        EXPECT_EQ(at.extractElement(i, j), view.extractElement(i, j));
      }
    }
  }
}

}  // namespace
