// Unit tests: transpose and complement views + the mask-probing interface.
#include <gtest/gtest.h>

#include "gbtl/gbtl.hpp"

namespace {

using namespace gbtl;  // NOLINT

TEST(Views, TransposeViewAccess) {
  Matrix<int> a({{1, 2, 3}, {4, 5, 6}});
  auto at = transpose(a);
  EXPECT_EQ(at.nrows(), 3u);
  EXPECT_EQ(at.ncols(), 2u);
  EXPECT_EQ(at.nvals(), 6u);
  EXPECT_EQ(at.extractElement(2, 1), 6);
  EXPECT_TRUE(at.hasElement(0, 1));
}

TEST(Views, TransposeOfTransposeIsOriginal) {
  Matrix<int> a({{1, 2}, {3, 4}});
  const auto& back = transpose(transpose(a));
  EXPECT_EQ(&back, &a);
}

TEST(Views, MatrixMaskValueTruthiness) {
  Matrix<int> m(2, 2);
  m.setElement(0, 0, 1);
  m.setElement(0, 1, 0);  // stored zero is NOT a true mask entry
  EXPECT_TRUE(mask_value(m, 0, 0));
  EXPECT_FALSE(mask_value(m, 0, 1));
  EXPECT_FALSE(mask_value(m, 1, 1));  // absent
}

TEST(Views, ComplementInvertsMask) {
  Matrix<int> m(2, 2);
  m.setElement(0, 0, 1);
  auto cm = complement(m);
  EXPECT_FALSE(mask_value(cm, 0, 0));
  EXPECT_TRUE(mask_value(cm, 1, 1));
}

TEST(Views, ComplementOfComplementIsOriginal) {
  Matrix<int> m(2, 2);
  const auto& back = complement(complement(m));
  EXPECT_EQ(&back, &m);
  Vector<int> v(2);
  const auto& vback = complement(complement(v));
  EXPECT_EQ(&vback, &v);
}

TEST(Views, VectorMaskAndComplement) {
  Vector<double> v{0.0, 2.5, 0.0};
  v.setElement(0, 0.0);  // stored zero
  EXPECT_FALSE(mask_value(v, 0));
  EXPECT_TRUE(mask_value(v, 1));
  EXPECT_FALSE(mask_value(v, 2));
  auto cv = complement(v);
  EXPECT_TRUE(mask_value(cv, 0));
  EXPECT_FALSE(mask_value(cv, 1));
}

TEST(Views, NoMaskIsAllTrue) {
  NoMask nm;
  EXPECT_TRUE(mask_value(nm, 0, 0));
  EXPECT_TRUE(mask_value(nm, 123));
}

TEST(Views, MaskShapeChecks) {
  Matrix<int> c(2, 3);
  Matrix<bool> good(2, 3);
  Matrix<bool> bad(3, 2);
  EXPECT_NO_THROW(check_mask_shape(good, c));
  EXPECT_THROW(check_mask_shape(bad, c), DimensionException);
  EXPECT_THROW(check_mask_shape(complement(bad), c), DimensionException);
  EXPECT_NO_THROW(check_mask_shape(NoMask{}, c));

  Vector<int> w(4);
  Vector<bool> vgood(4);
  Vector<bool> vbad(3);
  EXPECT_NO_THROW(check_vec_mask_shape(vgood, w));
  EXPECT_THROW(check_vec_mask_shape(vbad, w), DimensionException);
}

TEST(Views, TraitDetection) {
  static_assert(is_transpose_view_v<TransposeView<Matrix<int>>>);
  static_assert(!is_transpose_view_v<Matrix<int>>);
  static_assert(is_nomask_v<NoMask>);
  static_assert(!is_nomask_v<Matrix<bool>>);
  SUCCEED();
}

}  // namespace
