// Shared dense reference models for the sparse-kernel property tests: an
// optional-valued dense matrix/vector with naive O(n^3) semiring multiply,
// used to cross-check the sparse kernels on random inputs.
#pragma once

#include <optional>
#include <random>
#include <vector>

#include "gbtl/gbtl.hpp"

namespace testref {

template <typename T>
using DenseM = std::vector<std::vector<std::optional<T>>>;
template <typename T>
using DenseV = std::vector<std::optional<T>>;

template <typename T>
DenseM<T> to_dense(const gbtl::Matrix<T>& m) {
  DenseM<T> out(m.nrows(), std::vector<std::optional<T>>(m.ncols()));
  for (gbtl::IndexType i = 0; i < m.nrows(); ++i) {
    for (const auto& [j, v] : m.row(i)) out[i][j] = v;
  }
  return out;
}

template <typename T>
DenseV<T> to_dense(const gbtl::Vector<T>& v) {
  DenseV<T> out(v.size());
  for (gbtl::IndexType i = 0; i < v.size(); ++i) {
    if (v.hasElement(i)) out[i] = v.extractElement(i);
  }
  return out;
}

template <typename T>
bool matches(const gbtl::Matrix<T>& m, const DenseM<T>& d) {
  if (m.nrows() != d.size()) return false;
  for (gbtl::IndexType i = 0; i < m.nrows(); ++i) {
    if (m.ncols() != d[i].size()) return false;
    for (gbtl::IndexType j = 0; j < m.ncols(); ++j) {
      const bool has = m.hasElement(i, j);
      if (has != d[i][j].has_value()) return false;
      if (has && m.extractElement(i, j) != *d[i][j]) return false;
    }
  }
  return true;
}

template <typename T>
bool matches(const gbtl::Vector<T>& v, const DenseV<T>& d) {
  if (v.size() != d.size()) return false;
  for (gbtl::IndexType i = 0; i < v.size(); ++i) {
    const bool has = v.hasElement(i);
    if (has != d[i].has_value()) return false;
    if (has && v.extractElement(i) != *d[i]) return false;
  }
  return true;
}

/// Naive reference C = A (+).(*) B over optional-valued dense operands.
template <typename T, typename SR>
DenseM<T> ref_mxm(const SR& sr, const DenseM<T>& a, const DenseM<T>& b) {
  const std::size_t n = a.size(), k = b.size(), m = b.empty() ? 0 : b[0].size();
  DenseM<T> c(n, std::vector<std::optional<T>>(m));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      std::optional<T> acc;
      for (std::size_t p = 0; p < k; ++p) {
        if (a[i][p] && b[p][j]) {
          const T prod = sr.mult(*a[i][p], *b[p][j]);
          acc = acc ? std::optional<T>(sr.add(*acc, prod))
                    : std::optional<T>(prod);
        }
      }
      c[i][j] = acc;
    }
  }
  return c;
}

template <typename T, typename SR>
DenseV<T> ref_mxv(const SR& sr, const DenseM<T>& a, const DenseV<T>& u) {
  DenseV<T> w(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::optional<T> acc;
    for (std::size_t j = 0; j < u.size(); ++j) {
      if (a[i][j] && u[j]) {
        const T prod = sr.mult(*a[i][j], *u[j]);
        acc = acc ? std::optional<T>(sr.add(*acc, prod))
                  : std::optional<T>(prod);
      }
    }
    w[i] = acc;
  }
  return w;
}

template <typename T>
DenseM<T> ref_transpose(const DenseM<T>& a) {
  const std::size_t n = a.size(), m = a.empty() ? 0 : a[0].size();
  DenseM<T> t(m, std::vector<std::optional<T>>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) t[j][i] = a[i][j];
  }
  return t;
}

/// Random sparse matrix with the given fill fraction (deterministic seed).
template <typename T>
gbtl::Matrix<T> random_matrix(gbtl::IndexType nrows, gbtl::IndexType ncols,
                              double fill, unsigned seed, T lo = T{1},
                              T hi = T{9}) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<long> val(static_cast<long>(lo),
                                          static_cast<long>(hi));
  gbtl::Matrix<T> m(nrows, ncols);
  for (gbtl::IndexType i = 0; i < nrows; ++i) {
    for (gbtl::IndexType j = 0; j < ncols; ++j) {
      if (coin(rng) < fill) m.setElement(i, j, static_cast<T>(val(rng)));
    }
  }
  return m;
}

template <typename T>
gbtl::Vector<T> random_vector(gbtl::IndexType size, double fill,
                              unsigned seed, T lo = T{1}, T hi = T{9}) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<long> val(static_cast<long>(lo),
                                          static_cast<long>(hi));
  gbtl::Vector<T> v(size);
  for (gbtl::IndexType i = 0; i < size; ++i) {
    if (coin(rng) < fill) v.setElement(i, static_cast<T>(val(rng)));
  }
  return v;
}

}  // namespace testref
