// Tests: apply (unary map, structure-preserving) and reduce (row / scalar).
#include <gtest/gtest.h>

#include "reference.hpp"

namespace {

using namespace gbtl;  // NOLINT
using testref::random_matrix;

TEST(Apply, PreservesStructure) {
  Matrix<int> a(2, 3);
  a.setElement(0, 1, 5);
  a.setElement(1, 2, -7);
  Matrix<int> c(2, 3);
  apply(c, NoMask{}, NoAccumulate{}, AdditiveInverse<int>{}, a);
  EXPECT_EQ(c.nvals(), 2u);
  EXPECT_EQ(c.extractElement(0, 1), -5);
  EXPECT_EQ(c.extractElement(1, 2), 7);
  EXPECT_FALSE(c.hasElement(0, 0));
}

TEST(Apply, CastingIdentity) {
  // PageRank's first step: copy an int graph into a double matrix.
  Matrix<int> a({{1, 0}, {0, 2}});
  Matrix<double> c(2, 2);
  apply(c, NoMask{}, NoAccumulate{}, Identity<int, double>{}, a);
  EXPECT_DOUBLE_EQ(c.extractElement(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c.extractElement(1, 1), 2.0);
}

TEST(Apply, BoundOperatorOnMatrix) {
  Matrix<double> a({{2, 0}, {0, 4}});
  Matrix<double> c(2, 2);
  apply(c, NoMask{}, NoAccumulate{},
        BinaryOpBind2nd<double, Times<double>>(0.85), a);
  EXPECT_DOUBLE_EQ(c.extractElement(0, 0), 1.7);
  EXPECT_DOUBLE_EQ(c.extractElement(1, 1), 3.4);
}

TEST(Apply, VectorWithMaskAndAccum) {
  Vector<int> u{1, 2, 3};
  Vector<int> w{10, 10, 10};
  Vector<bool> mask(3);
  mask.setElement(1, true);
  apply(w, mask, Plus<int>{}, Identity<int>{}, u);
  EXPECT_EQ(w.extractElement(0), 10);
  EXPECT_EQ(w.extractElement(1), 12);
  EXPECT_EQ(w.extractElement(2), 10);
}

TEST(Apply, TransposedInput) {
  Matrix<int> a(2, 3);
  a.setElement(0, 2, 9);
  Matrix<int> c(3, 2);
  apply(c, NoMask{}, NoAccumulate{}, Identity<int>{}, transpose(a));
  EXPECT_TRUE(c.hasElement(2, 0));
  EXPECT_EQ(c.extractElement(2, 0), 9);
}

TEST(Apply, ShapeMismatchThrows) {
  Matrix<int> a(2, 3), c(3, 3);
  EXPECT_THROW(apply(c, NoMask{}, NoAccumulate{}, Identity<int>{}, a),
               DimensionException);
}

TEST(ReduceRow, SumsRows) {
  Matrix<int> a({{1, 2, 3}, {0, 0, 0}, {4, 0, 5}});
  Vector<int> w(3);
  reduce(w, NoMask{}, NoAccumulate{}, PlusMonoid<int>{}, a);
  EXPECT_EQ(w.extractElement(0), 6);
  EXPECT_FALSE(w.hasElement(1));  // empty row -> no entry
  EXPECT_EQ(w.extractElement(2), 9);
}

TEST(ReduceRow, ColumnReduceViaTranspose) {
  Matrix<int> a({{1, 2}, {3, 4}});
  Vector<int> w(2);
  reduce(w, NoMask{}, NoAccumulate{}, PlusMonoid<int>{}, transpose(a));
  EXPECT_EQ(w.extractElement(0), 4);  // column 0 sum
  EXPECT_EQ(w.extractElement(1), 6);
}

TEST(ReduceRow, MinMonoid) {
  Matrix<int> a({{5, 2, 9}, {7, 0, 0}});
  Vector<int> w(2);
  reduce(w, NoMask{}, NoAccumulate{}, MinMonoid<int>{}, a);
  EXPECT_EQ(w.extractElement(0), 2);
  EXPECT_EQ(w.extractElement(1), 7);
}

TEST(ReduceScalar, MatrixSum) {
  Matrix<int> a({{1, 2}, {3, 4}});
  int s = 0;
  reduce(s, NoAccumulate{}, PlusMonoid<int>{}, a);
  EXPECT_EQ(s, 10);
}

TEST(ReduceScalar, EmptyMatrixLeavesValueUnchanged) {
  Matrix<int> a(2, 2);
  int s = 42;
  reduce(s, NoAccumulate{}, PlusMonoid<int>{}, a);
  EXPECT_EQ(s, 42);
}

TEST(ReduceScalar, AccumulatorCombines) {
  Matrix<int> a({{1, 2}, {3, 4}});
  int s = 100;
  reduce(s, Plus<int>{}, PlusMonoid<int>{}, a);
  EXPECT_EQ(s, 110);
}

TEST(ReduceScalar, VectorMaxAndMin) {
  Vector<int> u{4, 0, 9, 2};
  int mx = 0, mn = 0;
  reduce(mx, NoAccumulate{}, MaxMonoid<int>{}, u);
  reduce(mn, NoAccumulate{}, MinMonoid<int>{}, u);
  EXPECT_EQ(mx, 9);
  EXPECT_EQ(mn, 2);
}

TEST(ReduceScalar, TransposeDoesNotChangeTotal) {
  auto a = random_matrix<int>(9, 13, 0.4, 55);
  long s1 = 0, s2 = 0;
  reduce(s1, NoAccumulate{}, PlusMonoid<long>{}, a);
  reduce(s2, NoAccumulate{}, PlusMonoid<long>{}, transpose(a));
  EXPECT_EQ(s1, s2);
}

TEST(ReduceProperty, RowReduceThenScalarEqualsScalarReduce) {
  for (unsigned seed : {61u, 62u, 63u}) {
    auto a = random_matrix<int>(10, 14, 0.35, seed);
    Vector<int> rows(10);
    reduce(rows, NoMask{}, NoAccumulate{}, PlusMonoid<int>{}, a);
    int via_rows = 0, direct = 0;
    reduce(via_rows, NoAccumulate{}, PlusMonoid<int>{}, rows);
    reduce(direct, NoAccumulate{}, PlusMonoid<int>{}, a);
    EXPECT_EQ(via_rows, direct);
  }
}

}  // namespace
