// Tests: the Kronecker product operation and the Kronecker-power graph
// generator.
#include <gtest/gtest.h>

#include "gbtl/ops/kronecker.hpp"
#include "generators/kronecker.hpp"
#include "reference.hpp"

namespace {

using namespace gbtl;  // NOLINT

TEST(Kronecker, KnownSmallProduct) {
  Matrix<int> a({{1, 2}, {3, 0}});
  Matrix<int> b({{0, 5}, {6, 7}});
  Matrix<int> c(4, 4);
  kronecker(c, NoMask{}, NoAccumulate{}, Times<int>{}, a, b);
  // Block (0,0) = 1 * B, block (0,1) = 2 * B, block (1,0) = 3 * B,
  // block (1,1) absent (a(1,1) not stored).
  EXPECT_EQ(c.extractElement(0, 1), 5);
  EXPECT_EQ(c.extractElement(1, 0), 6);
  EXPECT_EQ(c.extractElement(0, 3), 10);
  EXPECT_EQ(c.extractElement(1, 3), 14);
  EXPECT_EQ(c.extractElement(3, 0), 18);
  EXPECT_FALSE(c.hasElement(2, 2));
  EXPECT_FALSE(c.hasElement(3, 3));
  EXPECT_EQ(c.nvals(), 3u * 3u);  // 3 stored in A times 3 stored in B
}

TEST(Kronecker, IdentityIsBlockDiagonalReplication) {
  auto eye = identity_matrix<int>(3);
  Matrix<int> b({{1, 2}, {3, 4}});
  Matrix<int> c(6, 6);
  kronecker(c, NoMask{}, NoAccumulate{}, Times<int>{}, eye, b);
  EXPECT_EQ(c.nvals(), 12u);
  EXPECT_EQ(c.extractElement(2, 3), 2);   // block (1,1) = B
  EXPECT_EQ(c.extractElement(5, 4), 3);   // block (2,2) = B
  EXPECT_FALSE(c.hasElement(0, 2));       // off-diagonal blocks empty
}

TEST(Kronecker, NonMultiplicativeOp) {
  Matrix<int> a(1, 1);
  a.setElement(0, 0, 10);
  Matrix<int> b({{1, 2}});
  Matrix<int> c(1, 2);
  kronecker(c, NoMask{}, NoAccumulate{}, Plus<int>{}, a, b);
  EXPECT_EQ(c.extractElement(0, 0), 11);
  EXPECT_EQ(c.extractElement(0, 1), 12);
}

TEST(Kronecker, ShapeMismatchThrows) {
  Matrix<int> a(2, 2), b(2, 2), c(3, 4);
  EXPECT_THROW(
      kronecker(c, NoMask{}, NoAccumulate{}, Times<int>{}, a, b),
      DimensionException);
}

TEST(Kronecker, MaskAndAccumCompose) {
  Matrix<int> a(1, 1);
  a.setElement(0, 0, 2);
  Matrix<int> b({{1, 1}, {1, 1}});
  Matrix<int> c({{10, 10}, {10, 10}});
  Matrix<bool> mask(2, 2);
  mask.setElement(0, 0, true);
  kronecker(c, mask, Plus<int>{}, Times<int>{}, a, b);
  EXPECT_EQ(c.extractElement(0, 0), 12);
  EXPECT_EQ(c.extractElement(1, 1), 10);  // masked out, merge keeps
}

TEST(Kronecker, NvalsIsProductProperty) {
  for (unsigned seed : {5u, 6u}) {
    auto a = testref::random_matrix<int>(5, 4, 0.4, seed);
    auto b = testref::random_matrix<int>(3, 6, 0.4, seed + 10);
    Matrix<int> c(15, 24);
    kronecker(c, NoMask{}, NoAccumulate{}, Times<int>{}, a, b);
    EXPECT_EQ(c.nvals(), a.nvals() * b.nvals());
    // Spot-check the index map on every stored entry of A and B.
    for (IndexType ia = 0; ia < a.nrows(); ++ia) {
      for (const auto& [ja, av] : a.row(ia)) {
        for (IndexType ib = 0; ib < b.nrows(); ++ib) {
          for (const auto& [jb, bv] : b.row(ib)) {
            EXPECT_EQ(c.extractElement(ia * 3 + ib, ja * 6 + jb), av * bv);
          }
        }
      }
    }
  }
}

TEST(KroneckerPower, SizesGrowExponentially) {
  auto init = pygb::gen::graph500_initiator<double>();
  auto g1 = pygb::gen::kronecker_power(init, 1);
  auto g3 = pygb::gen::kronecker_power(init, 3);
  EXPECT_EQ(g1.nrows(), 2u);
  EXPECT_EQ(g3.nrows(), 8u);
  EXPECT_EQ(g3.nvals(), 27u);  // 3^k stored entries
}

TEST(KroneckerPower, ZeroPowerThrows) {
  auto init = pygb::gen::graph500_initiator<double>();
  EXPECT_THROW(pygb::gen::kronecker_power(init, 0), std::invalid_argument);
}

TEST(KroneckerPower, DegreeSkewGrowsWithPower) {
  // Vertex 0 touches every level of the recursion: its out-degree is 2^k,
  // the defining skew of the Graph500 model.
  auto init = pygb::gen::graph500_initiator<double>();
  auto g4 = pygb::gen::kronecker_power(init, 4);
  EXPECT_EQ(g4.row(0).size(), 16u);
  // The last vertex's only edge recurses to column 0 at every level:
  // out-degree stays 1 while vertex 0's grows as 2^k — maximal skew.
  EXPECT_EQ(g4.row(g4.nrows() - 1).size(), 1u);
  EXPECT_EQ(g4.row(g4.nrows() - 1).front().first, 0u);
}

}  // namespace
