// Tests: gbtl::mxm — fixed cases, kernel-path coverage (Gustavson / dot /
// masked dot / transposed operands), and randomized property sweeps against
// the dense reference model.
#include <gtest/gtest.h>

#include "reference.hpp"

namespace {

using namespace gbtl;  // NOLINT
using testref::matches;
using testref::random_matrix;
using testref::ref_mxm;
using testref::ref_transpose;
using testref::to_dense;

TEST(Mxm, IdentityTimesMatrix) {
  Matrix<double> a({{1, 2}, {3, 4}});
  Matrix<double> eye = identity_matrix<double>(2);
  Matrix<double> c(2, 2);
  mxm(c, NoMask{}, NoAccumulate{}, ArithmeticSemiring<double>{}, eye, a);
  EXPECT_EQ(c, a);
  mxm(c, NoMask{}, NoAccumulate{}, ArithmeticSemiring<double>{}, a, eye);
  EXPECT_EQ(c, a);
}

TEST(Mxm, KnownSmallProduct) {
  Matrix<int> a({{1, 2}, {3, 4}});
  Matrix<int> b({{5, 6}, {7, 8}});
  Matrix<int> c(2, 2);
  mxm(c, NoMask{}, NoAccumulate{}, ArithmeticSemiring<int>{}, a, b);
  EXPECT_EQ(c.extractElement(0, 0), 19);
  EXPECT_EQ(c.extractElement(0, 1), 22);
  EXPECT_EQ(c.extractElement(1, 0), 43);
  EXPECT_EQ(c.extractElement(1, 1), 50);
}

TEST(Mxm, EmptyDotProductsProduceNoEntry) {
  // A's row structure misses B's column structure entirely -> empty C.
  Matrix<int> a(2, 2);
  a.setElement(0, 0, 1);
  Matrix<int> b(2, 2);
  b.setElement(1, 1, 1);
  Matrix<int> c(2, 2);
  mxm(c, NoMask{}, NoAccumulate{}, ArithmeticSemiring<int>{}, a, b);
  EXPECT_EQ(c.nvals(), 0u);
}

TEST(Mxm, DimensionMismatchThrows) {
  Matrix<int> a(2, 3), b(2, 2), c(2, 2);
  EXPECT_THROW(
      mxm(c, NoMask{}, NoAccumulate{}, ArithmeticSemiring<int>{}, a, b),
      DimensionException);
  Matrix<int> b2(3, 4);
  EXPECT_THROW(
      mxm(c, NoMask{}, NoAccumulate{}, ArithmeticSemiring<int>{}, a, b2),
      DimensionException);
}

TEST(Mxm, MaskShapeMismatchThrows) {
  Matrix<int> a(2, 2), b(2, 2), c(2, 2);
  Matrix<bool> mask(3, 3);
  EXPECT_THROW(
      mxm(c, mask, NoAccumulate{}, ArithmeticSemiring<int>{}, a, b),
      DimensionException);
}

TEST(Mxm, AccumulateMergesWithExisting) {
  Matrix<int> a({{1, 0}, {0, 1}});
  Matrix<int> c({{10, 20}, {0, 0}});
  // c += I * I = I under Plus accumulation.
  mxm(c, NoMask{}, Plus<int>{}, ArithmeticSemiring<int>{}, a, a);
  EXPECT_EQ(c.extractElement(0, 0), 11);  // 10 + 1
  EXPECT_EQ(c.extractElement(0, 1), 20);  // untouched (no product there)
  EXPECT_EQ(c.extractElement(1, 1), 1);   // new entry
}

TEST(Mxm, ReplaceClearsMaskedOut) {
  Matrix<int> a({{1, 1}, {1, 1}});
  Matrix<int> c({{5, 5}, {5, 5}});
  Matrix<bool> mask(2, 2);
  mask.setElement(0, 0, true);
  mxm(c, mask, NoAccumulate{}, ArithmeticSemiring<int>{}, a, a,
      OutputControl::kReplace);
  EXPECT_EQ(c.nvals(), 1u);
  EXPECT_EQ(c.extractElement(0, 0), 2);
}

TEST(Mxm, MergeKeepsMaskedOut) {
  Matrix<int> a({{1, 1}, {1, 1}});
  Matrix<int> c({{5, 5}, {5, 5}});
  Matrix<bool> mask(2, 2);
  mask.setElement(0, 0, true);
  mxm(c, mask, NoAccumulate{}, ArithmeticSemiring<int>{}, a, a,
      OutputControl::kMerge);
  EXPECT_EQ(c.nvals(), 4u);
  EXPECT_EQ(c.extractElement(0, 0), 2);
  EXPECT_EQ(c.extractElement(1, 1), 5);
}

TEST(Mxm, TriangleCountPatternMaskedDotKernel) {
  // Fig. 5: B<L> = L +.* L^T on the triangle graph 0-1-2.
  Matrix<int> l(3, 3);
  l.setElement(1, 0, 1);
  l.setElement(2, 0, 1);
  l.setElement(2, 1, 1);
  Matrix<int> b(3, 3);
  mxm(b, l, NoAccumulate{}, ArithmeticSemiring<int>{}, l, transpose(l));
  int tri = 0;
  reduce(tri, NoAccumulate{}, PlusMonoid<int>{}, b);
  EXPECT_EQ(tri, 1);
}

// ---- randomized sweeps over semirings and transposes ----------------------

struct MxmCase {
  double fill_a;
  double fill_b;
  unsigned seed;
};

class MxmRandom : public ::testing::TestWithParam<MxmCase> {};

TEST_P(MxmRandom, MatchesDenseReferenceArithmetic) {
  const auto p = GetParam();
  auto a = random_matrix<int>(13, 11, p.fill_a, p.seed);
  auto b = random_matrix<int>(11, 9, p.fill_b, p.seed + 1);
  Matrix<int> c(13, 9);
  ArithmeticSemiring<int> sr;
  mxm(c, NoMask{}, NoAccumulate{}, sr, a, b);
  EXPECT_TRUE(matches(c, ref_mxm(sr, to_dense(a), to_dense(b))));
}

TEST_P(MxmRandom, MatchesDenseReferenceMinPlus) {
  const auto p = GetParam();
  auto a = random_matrix<double>(10, 10, p.fill_a, p.seed);
  auto b = random_matrix<double>(10, 10, p.fill_b, p.seed + 2);
  Matrix<double> c(10, 10);
  MinPlusSemiring<double> sr;
  mxm(c, NoMask{}, NoAccumulate{}, sr, a, b);
  EXPECT_TRUE(matches(c, ref_mxm(sr, to_dense(a), to_dense(b))));
}

TEST_P(MxmRandom, BTransposedDotKernelMatchesGustavson) {
  const auto p = GetParam();
  auto a = random_matrix<int>(12, 8, p.fill_a, p.seed);
  auto b = random_matrix<int>(10, 8, p.fill_b, p.seed + 3);
  ArithmeticSemiring<int> sr;
  // Dot kernel: C = A * B^T.
  Matrix<int> c_dot(12, 10);
  mxm(c_dot, NoMask{}, NoAccumulate{}, sr, a, transpose(b));
  // Reference: materialize B^T and use the plain kernel.
  auto bt = gbtl::detail::materialize_transpose(b);
  Matrix<int> c_plain(12, 10);
  mxm(c_plain, NoMask{}, NoAccumulate{}, sr, a, bt);
  EXPECT_EQ(c_dot, c_plain);
}

TEST_P(MxmRandom, ATransposedMatchesReference) {
  const auto p = GetParam();
  auto a = random_matrix<int>(8, 12, p.fill_a, p.seed);
  auto b = random_matrix<int>(8, 7, p.fill_b, p.seed + 4);
  ArithmeticSemiring<int> sr;
  Matrix<int> c(12, 7);
  mxm(c, NoMask{}, NoAccumulate{}, sr, transpose(a), b);
  EXPECT_TRUE(
      matches(c, ref_mxm(sr, ref_transpose(to_dense(a)), to_dense(b))));
}

TEST_P(MxmRandom, BothTransposedMatchesReference) {
  const auto p = GetParam();
  auto a = random_matrix<int>(9, 12, p.fill_a, p.seed);
  auto b = random_matrix<int>(7, 9, p.fill_b, p.seed + 5);
  ArithmeticSemiring<int> sr;
  Matrix<int> c(12, 7);
  mxm(c, NoMask{}, NoAccumulate{}, sr, transpose(a), transpose(b));
  EXPECT_TRUE(matches(c, ref_mxm(sr, ref_transpose(to_dense(a)),
                                 ref_transpose(to_dense(b)))));
}

TEST_P(MxmRandom, MaskedComputationEqualsMaskedFullProduct) {
  const auto p = GetParam();
  auto a = random_matrix<int>(10, 10, p.fill_a, p.seed);
  auto b = random_matrix<int>(10, 10, p.fill_b, p.seed + 6);
  auto maskm = random_matrix<bool>(10, 10, 0.4, p.seed + 7, false, true);
  ArithmeticSemiring<int> sr;

  Matrix<int> masked(10, 10);
  mxm(masked, maskm, NoAccumulate{}, sr, a, transpose(b),
      OutputControl::kReplace);

  Matrix<int> full(10, 10);
  mxm(full, NoMask{}, NoAccumulate{}, sr, a, transpose(b));
  for (IndexType i = 0; i < 10; ++i) {
    for (IndexType j = 0; j < 10; ++j) {
      const bool in_mask = mask_value(maskm, i, j);
      if (in_mask && full.hasElement(i, j)) {
        EXPECT_EQ(masked.extractElement(i, j), full.extractElement(i, j));
      } else {
        EXPECT_FALSE(masked.hasElement(i, j));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MxmRandom,
    ::testing::Values(MxmCase{0.1, 0.1, 1}, MxmCase{0.3, 0.3, 2},
                      MxmCase{0.5, 0.2, 3}, MxmCase{0.8, 0.8, 4},
                      MxmCase{1.0, 1.0, 5}, MxmCase{0.05, 0.9, 6}));

}  // namespace
