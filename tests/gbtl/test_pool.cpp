// Tests: the persistent worker pool behind parallel_for_rows
// (gbtl/detail/pool.{hpp,cpp}) — lifecycle (lazy start, resize visibility,
// clean shutdown), static/dynamic schedules, exception propagation, nested
// calls degrading to inline, the injected PoolApi table, and bit-identical
// results for the newly parallel eWise/apply/reduce kernels across worker
// counts and schedules.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <system_error>
#include <thread>
#include <vector>

#include "gbtl/detail/parallel.hpp"
#include "gbtl/detail/pool.hpp"
#include "gbtl/gbtl.hpp"
#include "reference.hpp"

namespace {

using namespace gbtl;  // NOLINT
using testref::random_matrix;
using testref::random_vector;

/// RAII worker-count override.
class ThreadGuard {
 public:
  explicit ThreadGuard(unsigned n) : saved_(detail::num_threads()) {
    detail::set_num_threads(n);
  }
  ~ThreadGuard() { detail::set_num_threads(saved_); }

 private:
  unsigned saved_;
};

/// RAII schedule override.
class ScheduleGuard {
 public:
  explicit ScheduleGuard(detail::Schedule s) : saved_(detail::schedule()) {
    detail::set_schedule(s);
  }
  ~ScheduleGuard() { detail::set_schedule(saved_); }

 private:
  detail::Schedule saved_;
};

/// OS thread count of this process, or -1 when /proc is unreadable.
int task_count() {
  std::error_code ec;
  std::filesystem::directory_iterator it("/proc/self/task", ec);
  if (ec) return -1;
  int n = 0;
  for (const auto& entry : it) {
    (void)entry;
    ++n;
  }
  return n;
}

/// Run one pool operation and assert every index was visited exactly once.
void run_coverage_op(IndexType n) {
  std::vector<std::atomic<int>> hits(n);
  detail::parallel_for_rows(n, [&](IndexType begin, IndexType end) {
    for (IndexType i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(PoolLifecycle, StartsLazilyAndJoinsOnShutdown) {
  detail::set_num_threads(1);  // drain any pool a prior test started
  const int base = task_count();
  if (base < 0) GTEST_SKIP() << "/proc/self/task unreadable";

  detail::set_num_threads(4);
  EXPECT_EQ(task_count(), base);  // lazy: no workers until first operation

  run_coverage_op(1000);
  EXPECT_EQ(task_count(), base + 3);  // caller + 3 parked workers

  run_coverage_op(1000);
  EXPECT_EQ(task_count(), base + 3);  // reused, not respawned

  detail::set_num_threads(1);
  EXPECT_EQ(task_count(), base);  // shrink drains and joins the complement
}

TEST(PoolLifecycle, ResizeIsVisibleToTheNextOperation) {
  detail::set_num_threads(1);
  const int base = task_count();
  if (base < 0) GTEST_SKIP() << "/proc/self/task unreadable";

  detail::set_num_threads(4);
  run_coverage_op(1000);
  EXPECT_EQ(task_count(), base + 3);

  // Regression (set_num_threads used to be invisible to running machinery):
  // the old complement must be joined and the new size must take effect on
  // the very next parallel operation.
  detail::set_num_threads(2);
  EXPECT_EQ(task_count(), base);
  run_coverage_op(1000);
  EXPECT_EQ(task_count(), base + 1);

  detail::set_num_threads(1);
  EXPECT_EQ(task_count(), base);
}

TEST(PoolLifecycle, ConcurrentResizeWhileOperationsRun) {
  // Flip the worker count from another host thread while this thread keeps
  // submitting operations: resizes serialize behind in-flight operations,
  // every operation still covers its range exactly once, and nothing
  // deadlocks or crashes.
  ThreadGuard guard(4);
  std::atomic<bool> done{false};
  std::thread flipper([&] {
    unsigned n = 2;
    while (!done.load()) {
      detail::set_num_threads(n);
      n = n == 5 ? 2 : n + 1;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (int round = 0; round < 50; ++round) {
    run_coverage_op(2000);
  }
  done.store(true);
  flipper.join();
}

class PoolExceptions : public ::testing::TestWithParam<detail::Schedule> {};

TEST_P(PoolExceptions, PropagateAndLeaveThePoolUsable) {
  ThreadGuard guard(4);
  ScheduleGuard sched(GetParam());
  EXPECT_THROW(
      detail::parallel_for_rows(1000,
                                [&](IndexType begin, IndexType) {
                                  if (begin > 0) {
                                    throw std::runtime_error("worker boom");
                                  }
                                }),
      std::runtime_error);
  // The failed operation drained fully: the next one runs normally.
  run_coverage_op(1000);
}

INSTANTIATE_TEST_SUITE_P(Schedules, PoolExceptions,
                         ::testing::Values(detail::Schedule::kStatic,
                                           detail::Schedule::kDynamic));

TEST(PoolSchedules, DynamicCoversRangeExactlyOnce) {
  ThreadGuard guard(4);
  ScheduleGuard sched(detail::Schedule::kDynamic);
  run_coverage_op(10000);
}

TEST(PoolSchedules, DynamicMatchesStaticBitExact) {
  auto a = random_matrix<double>(400, 300, 0.05, 31);
  auto b = random_matrix<double>(300, 350, 0.05, 32);
  Matrix<double> seq(400, 350);
  mxm(seq, NoMask{}, NoAccumulate{}, ArithmeticSemiring<double>{}, a, b);

  for (const unsigned threads : {2u, 4u}) {
    ThreadGuard guard(threads);
    for (const auto sched :
         {detail::Schedule::kStatic, detail::Schedule::kDynamic}) {
      ScheduleGuard sg(sched);
      Matrix<double> par(400, 350);
      mxm(par, NoMask{}, NoAccumulate{}, ArithmeticSemiring<double>{}, a, b);
      EXPECT_EQ(seq, par) << "threads=" << threads << " sched="
                          << (sched == detail::Schedule::kStatic ? "static"
                                                                 : "dynamic");
    }
  }
}

TEST(PoolNesting, NestedParallelForRunsInline) {
  ThreadGuard guard(4);
  ScheduleGuard sched(detail::Schedule::kStatic);
  std::vector<std::atomic<int>> inner_hits(1000);
  std::atomic<int> outer_calls{0};
  std::atomic<bool> escaped{false};
  detail::parallel_for_rows(1000, [&](IndexType, IndexType) {
    outer_calls.fetch_add(1);
    const auto outer_thread = std::this_thread::get_id();
    detail::parallel_for_rows(1000, [&](IndexType begin, IndexType end) {
      if (std::this_thread::get_id() != outer_thread) escaped.store(true);
      for (IndexType i = begin; i < end; ++i) inner_hits[i].fetch_add(1);
    });
  });
  // Static schedule, 4 participants, 1000 rows: one outer block each, and
  // each block ran the full inner range inline on its own thread.
  EXPECT_EQ(outer_calls.load(), 4);
  EXPECT_FALSE(escaped.load());
  for (const auto& h : inner_hits) EXPECT_EQ(h.load(), outer_calls.load());
}

TEST(PoolApiTable, HostTableDispatchesOntoThePool) {
  // The same path a JIT module takes after pygb_module_set_pool injection:
  // plain C function pointers, no templates.
  const detail::PoolApi* api = detail::host_pool_api();
  ASSERT_NE(api, nullptr);
  EXPECT_EQ(api->abi_version, detail::kPoolAbiVersion);

  ThreadGuard guard(4);
  EXPECT_EQ(api->num_threads(), 4u);

  std::vector<std::atomic<int>> hits(1000);
  api->parallel_for(
      1000,
      [](void* ctx, IndexType begin, IndexType end) {
        auto* h = static_cast<std::vector<std::atomic<int>>*>(ctx);
        for (IndexType i = begin; i < end; ++i) (*h)[i].fetch_add(1);
      },
      &hits);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);

  api->set_num_threads(2);
  EXPECT_EQ(detail::num_threads(), 2u);
}

// --- The newly parallel kernels: bit-identical across worker counts. ---

class PoolKernels : public ::testing::TestWithParam<unsigned> {};

TEST_P(PoolKernels, EWiseAddMatrixMatchesSequential) {
  auto a = random_matrix<double>(400, 300, 0.05, 41);
  auto b = random_matrix<double>(400, 300, 0.05, 42);
  Matrix<double> seq(400, 300);
  eWiseAdd(seq, NoMask{}, NoAccumulate{}, Plus<double>{}, a, b);

  ThreadGuard guard(GetParam());
  Matrix<double> par(400, 300);
  eWiseAdd(par, NoMask{}, NoAccumulate{}, Plus<double>{}, a, b);
  EXPECT_EQ(seq, par);
}

TEST_P(PoolKernels, EWiseMultVectorMatchesSequential) {
  auto u = random_vector<double>(5000, 0.4, 43);
  auto v = random_vector<double>(5000, 0.4, 44);
  Vector<double> seq(5000);
  eWiseMult(seq, NoMask{}, NoAccumulate{}, Times<double>{}, u, v);

  ThreadGuard guard(GetParam());
  Vector<double> par(5000);
  eWiseMult(par, NoMask{}, NoAccumulate{}, Times<double>{}, u, v);
  EXPECT_TRUE(seq == par);
}

TEST_P(PoolKernels, ApplyMatrixMatchesSequential) {
  auto a = random_matrix<double>(400, 300, 0.05, 45);
  Matrix<double> seq(400, 300);
  apply(seq, NoMask{}, NoAccumulate{},
        BinaryOpBind2nd<double, Times<double>>(0.5), a);

  ThreadGuard guard(GetParam());
  Matrix<double> par(400, 300);
  apply(par, NoMask{}, NoAccumulate{},
        BinaryOpBind2nd<double, Times<double>>(0.5), a);
  EXPECT_EQ(seq, par);
}

TEST_P(PoolKernels, ReduceMatrixToVectorMatchesSequential) {
  auto a = random_matrix<double>(500, 400, 0.05, 46);
  Vector<double> seq(500);
  reduce(seq, NoMask{}, NoAccumulate{}, PlusMonoid<double>{}, a);

  ThreadGuard guard(GetParam());
  Vector<double> par(500);
  reduce(par, NoMask{}, NoAccumulate{}, PlusMonoid<double>{}, a);
  EXPECT_TRUE(seq == par);
}

TEST_P(PoolKernels, ReduceMatrixToScalarBitExact) {
  auto a = random_matrix<double>(500, 400, 0.05, 47);
  double seq = 0.0;
  reduce(seq, NoAccumulate{}, PlusMonoid<double>{}, a);

  ThreadGuard guard(GetParam());
  for (const auto sched :
       {detail::Schedule::kStatic, detail::Schedule::kDynamic}) {
    ScheduleGuard sg(sched);
    double par = 0.0;
    reduce(par, NoAccumulate{}, PlusMonoid<double>{}, a);
    EXPECT_EQ(seq, par);  // bit-exact: grouping fixed by matrix structure
  }
}

TEST_P(PoolKernels, ReduceVectorToScalarBitExact) {
  auto u = random_vector<double>(200000, 0.3, 48);
  double seq = 0.0;
  reduce(seq, NoAccumulate{}, PlusMonoid<double>{}, u);

  ThreadGuard guard(GetParam());
  for (const auto sched :
       {detail::Schedule::kStatic, detail::Schedule::kDynamic}) {
    ScheduleGuard sg(sched);
    double par = 0.0;
    reduce(par, NoAccumulate{}, PlusMonoid<double>{}, u);
    EXPECT_EQ(seq, par);  // bit-exact: grouping fixed by tile width
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, PoolKernels,
                         ::testing::Values(2u, 4u, 8u));

}  // namespace
