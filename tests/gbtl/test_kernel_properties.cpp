// Kernel property fuzzer for the backend axis (docs/BACKENDS.md): every
// test drives the same operation through the scalar and simd backends over
// adversarial sparsity shapes — empty rows/cols, a single dense row,
// near-hypersparse, fully dense, all-true/all-false masks, aliased
// outputs — and asserts the results are BIT-IDENTICAL (gbtl operator==
// compares stored structure and values exactly; no tolerance). The simd
// backend's kernels are constructed to preserve scalar fold orders, so any
// difference is a bug, doubles included.
//
// Also covered here:
//   * push-vs-pull mxv/vxm parity at input densities straddling the
//     direction-optimization crossover (PYGB_MXV_PULL_THRESHOLD, 0.10),
//     with the decision counters proving both directions actually ran;
//   * the L2-tiled Gustavson mxm forced on tiny matrices via the mutable
//     detail::mxm_tile_bytes() budget, checked bit-identical AND for the
//     CSR invariants (strictly ascending, duplicate-free rows);
//   * transpose-cache invalidation: a mutation after a pull must not
//     serve stale cached A^T data;
//   * the matrix-apply fast paths (same-type Identity copy, aliased
//     in-place C = f(C), in-place normalize_rows) vs the staged route.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "gbtl/detail/backend.hpp"
#include "gbtl/detail/pool.hpp"
#include "gbtl/gbtl.hpp"
#include "reference.hpp"

namespace {

using gbtl::IndexType;
using gbtl::Matrix;
using gbtl::Vector;
using gbtl::detail::Backend;

constexpr IndexType kN = 200;  // > 2 * kMinRowsPerThread so the pool fans out

// ---------------------------------------------------------------------------
// Adversarial shape corpus
// ---------------------------------------------------------------------------

struct NamedMatrix {
  const char* name;
  Matrix<double> m;
};

std::vector<NamedMatrix> adversarial_matrices() {
  std::vector<NamedMatrix> out;

  out.push_back({"empty", Matrix<double>(kN, kN)});

  {  // every odd row and every column >= kN/2 empty
    Matrix<double> m(kN, kN);
    for (IndexType i = 0; i < kN; i += 2) {
      for (IndexType j = 0; j < kN / 2; j += 3) {
        m.setElement(i, j, static_cast<double>(i + j + 1));
      }
    }
    out.push_back({"empty_rows_cols", std::move(m)});
  }

  {  // one fully dense row in an otherwise empty matrix
    Matrix<double> m(kN, kN);
    for (IndexType j = 0; j < kN; ++j) {
      m.setElement(kN / 2, j, static_cast<double>(j) * 0.5 + 1.0);
    }
    out.push_back({"single_dense_row", std::move(m)});
  }

  {  // one fully dense column (stresses the transpose/pull direction)
    Matrix<double> m(kN, kN);
    for (IndexType i = 0; i < kN; ++i) {
      m.setElement(i, 3, static_cast<double>(i) + 1.0);
    }
    out.push_back({"single_dense_col", std::move(m)});
  }

  {  // near-hypersparse: 3 entries in kN x kN
    Matrix<double> m(kN, kN);
    m.setElement(0, kN - 1, 2.0);
    m.setElement(kN - 1, 0, 3.0);
    m.setElement(kN / 3, kN / 7, 5.0);
    out.push_back({"near_hypersparse", std::move(m)});
  }

  out.push_back({"random_5pct",
                 testref::random_matrix<double>(kN, kN, 0.05, 42)});
  out.push_back({"random_50pct",
                 testref::random_matrix<double>(kN, kN, 0.5, 43)});

  {  // fully dense (hits every dense fast path)
    Matrix<double> m(kN, kN);
    for (IndexType i = 0; i < kN; ++i) {
      for (IndexType j = 0; j < kN; ++j) {
        m.setElement(i, j, static_cast<double>((i * 31 + j * 7) % 11) + 0.25);
      }
    }
    out.push_back({"dense", std::move(m)});
  }

  return out;
}

std::vector<std::pair<const char*, Vector<double>>> adversarial_vectors() {
  std::vector<std::pair<const char*, Vector<double>>> out;
  out.emplace_back("empty", Vector<double>(kN));
  {
    Vector<double> v(kN);
    v.setElement(kN / 2, 4.0);
    out.emplace_back("single", std::move(v));
  }
  out.emplace_back("sparse_5pct",
                   testref::random_vector<double>(kN, 0.05, 7));
  out.emplace_back("half", testref::random_vector<double>(kN, 0.5, 8));
  {
    Vector<double> v(kN);
    for (IndexType i = 0; i < kN; ++i) {
      v.setElement(i, static_cast<double>(i % 13) * 0.125 + 0.5);
    }
    out.emplace_back("dense", std::move(v));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Fixture: run a closure once per backend, restore global state after
// ---------------------------------------------------------------------------

class KernelProperties : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_backend_ = gbtl::detail::default_backend();
    saved_tile_bytes_ = gbtl::detail::mxm_tile_bytes();
  }
  void TearDown() override {
    gbtl::detail::set_default_backend(saved_backend_);
    gbtl::detail::mxm_tile_bytes() = saved_tile_bytes_;
  }

  /// Run `fn` under the scalar backend, then under simd; both results are
  /// returned for bit-exact comparison by the caller.
  template <typename Fn>
  auto both(Fn&& fn) {
    gbtl::detail::set_default_backend(Backend::kScalar);
    auto scalar = fn();
    gbtl::detail::set_default_backend(Backend::kSimd);
    auto simd = fn();
    return std::make_pair(std::move(scalar), std::move(simd));
  }

  Backend saved_backend_{};
  std::uint64_t saved_tile_bytes_ = 0;
};

/// Strictly ascending, duplicate-free column indices in every stored row —
/// the CSR invariant every kernel must maintain (the tiled mxm appends
/// per-tile fragments, so this is where a violation would show up).
template <typename T>
::testing::AssertionResult csr_invariants_hold(const Matrix<T>& m) {
  for (IndexType i = 0; i < m.nrows(); ++i) {
    const auto& row = m.row(i);
    for (std::size_t k = 1; k < row.size(); ++k) {
      if (!(row[k - 1].first < row[k].first)) {
        return ::testing::AssertionFailure()
               << "row " << i << " not strictly ascending at slot " << k
               << " (" << row[k - 1].first << " then " << row[k].first << ")";
      }
    }
    for (const auto& [j, v] : row) {
      if (j >= m.ncols()) {
        return ::testing::AssertionFailure()
               << "row " << i << " column " << j << " out of bounds";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// mxv / vxm: scalar vs simd over the whole corpus, both orientations
// ---------------------------------------------------------------------------

TEST_F(KernelProperties, MxvScalarVsSimdBitIdentical) {
  const gbtl::ArithmeticSemiring<double> sr;
  for (const auto& [mname, a] : adversarial_matrices()) {
    for (const auto& [vname, u] : adversarial_vectors()) {
      auto [scalar, simd] = both([&] {
        Vector<double> w(kN);
        gbtl::mxv(w, gbtl::NoMask{}, gbtl::NoAccumulate{}, sr, a, u);
        return w;
      });
      EXPECT_TRUE(scalar == simd)
          << "mxv diverged: A=" << mname << " u=" << vname;

      auto [scalar_t, simd_t] = both([&] {
        Vector<double> w(kN);
        gbtl::mxv(w, gbtl::NoMask{}, gbtl::NoAccumulate{}, sr,
                  gbtl::transpose(a), u);
        return w;
      });
      EXPECT_TRUE(scalar_t == simd_t)
          << "mxv(A^T) diverged: A=" << mname << " u=" << vname;

      auto [scalar_v, simd_v] = both([&] {
        Vector<double> w(kN);
        gbtl::vxm(w, gbtl::NoMask{}, gbtl::NoAccumulate{}, sr, u, a);
        return w;
      });
      EXPECT_TRUE(scalar_v == simd_v)
          << "vxm diverged: A=" << mname << " u=" << vname;
    }
  }
}

// At densities straddling the pull crossover (default threshold 0.10) the
// simd backend switches direction; scalar always pushes at the transposed
// orientation. Bit-equality across the sweep IS push-vs-pull parity, and
// the decision counters prove both directions actually executed.
TEST_F(KernelProperties, PushPullParityAtDensityCrossover) {
  const gbtl::ArithmeticSemiring<double> sr;
  const auto a = testref::random_matrix<double>(kN, kN, 0.08, 99);
  const auto ref_at = testref::ref_transpose(testref::to_dense(a));

  gbtl::detail::reset_mxv_decisions();
  bool saw_push = false, saw_pull = false;
  for (double density : {0.02, 0.08, 0.095, 0.105, 0.12, 0.3, 1.0}) {
    Vector<double> u(kN);
    const auto want =
        static_cast<IndexType>(density * static_cast<double>(kN));
    for (IndexType i = 0; i < want; ++i) {
      // spread stored entries across the index space
      u.setElement((i * 7919) % kN, static_cast<double>(i % 9) + 1.0);
    }
    const auto pull_before = gbtl::detail::mxv_pull_decisions();
    const auto push_before = gbtl::detail::mxv_push_decisions();
    auto [scalar, simd] = both([&] {
      Vector<double> w(kN);
      gbtl::mxv(w, gbtl::NoMask{}, gbtl::NoAccumulate{}, sr,
                gbtl::transpose(a), u);
      return w;
    });
    EXPECT_TRUE(scalar == simd)
        << "push/pull parity broke at density " << density;
    EXPECT_TRUE(testref::matches(
        simd, testref::ref_mxv(sr, ref_at, testref::to_dense(u))))
        << "simd result wrong vs dense reference at density " << density;
    saw_pull |= gbtl::detail::mxv_pull_decisions() > pull_before;
    saw_push |= gbtl::detail::mxv_push_decisions() > push_before;
  }
  EXPECT_TRUE(saw_push) << "sweep never exercised the push direction";
  EXPECT_TRUE(saw_pull) << "sweep never exercised the pull direction";
}

// ---------------------------------------------------------------------------
// Masks: all-true, all-false, plain and complement, merge and replace
// ---------------------------------------------------------------------------

TEST_F(KernelProperties, MaskedMxvExtremeMasks) {
  const gbtl::ArithmeticSemiring<double> sr;
  const auto a = testref::random_matrix<double>(kN, kN, 0.1, 17);
  const auto u = testref::random_vector<double>(kN, 0.6, 18);

  Vector<bool> all_true(kN);
  Vector<bool> all_false(kN);  // no stored entries == nothing passes
  for (IndexType i = 0; i < kN; ++i) all_true.setElement(i, true);

  for (const auto* mask_name : {"all_true", "all_false"}) {
    const auto& mask =
        mask_name[4] == 't' ? all_true : all_false;  // "all_True"
    for (const auto outp :
         {gbtl::OutputControl::kMerge, gbtl::OutputControl::kReplace}) {
      auto [scalar, simd] = both([&] {
        auto w = testref::random_vector<double>(kN, 0.3, 19);
        gbtl::mxv(w, mask, gbtl::NoAccumulate{}, sr, gbtl::transpose(a), u,
                  outp);
        return w;
      });
      EXPECT_TRUE(scalar == simd)
          << "masked mxv diverged: mask=" << mask_name
          << " outp=" << static_cast<int>(outp);

      auto [scalar_c, simd_c] = both([&] {
        auto w = testref::random_vector<double>(kN, 0.3, 19);
        gbtl::mxv(w, gbtl::complement(mask), gbtl::NoAccumulate{}, sr,
                  gbtl::transpose(a), u, outp);
        return w;
      });
      EXPECT_TRUE(scalar_c == simd_c)
          << "complement-masked mxv diverged: mask=" << mask_name
          << " outp=" << static_cast<int>(outp);
    }
  }
}

// ---------------------------------------------------------------------------
// Aliased outputs: w = A·w and accumulated w += u ⊕ w
// ---------------------------------------------------------------------------

TEST_F(KernelProperties, AliasedOutputsBitIdentical) {
  const gbtl::ArithmeticSemiring<double> sr;
  const auto a = testref::random_matrix<double>(kN, kN, 0.1, 23);

  auto [scalar, simd] = both([&] {
    auto w = testref::random_vector<double>(kN, 0.8, 24);
    gbtl::mxv(w, gbtl::NoMask{}, gbtl::NoAccumulate{}, sr, a, w);
    return w;
  });
  EXPECT_TRUE(scalar == simd) << "aliased w = A*w diverged";

  auto [scalar2, simd2] = both([&] {
    auto w = testref::random_vector<double>(kN, 1.0, 25);
    gbtl::eWiseAdd(w, gbtl::NoMask{}, gbtl::Plus<double>{},
                   gbtl::Plus<double>{}, w, w);
    return w;
  });
  EXPECT_TRUE(scalar2 == simd2) << "aliased accumulated w += w+w diverged";
}

// ---------------------------------------------------------------------------
// mxm: forced L2 tiling, masked row-skip, transposed operands
// ---------------------------------------------------------------------------

TEST_F(KernelProperties, TiledMxmBitIdenticalAndCsrClean) {
  const gbtl::ArithmeticSemiring<double> sr;
  for (const auto& [aname, a] : adversarial_matrices()) {
    for (double bfill : {0.02, 0.3}) {
      const auto b = testref::random_matrix<double>(kN, kN, bfill, 57);
      // Budget of 1 byte forces the minimum tile width (64 columns), so
      // kN=200 columns split into 4 tiles.
      gbtl::detail::mxm_tile_bytes() = 1;
      auto [scalar, simd] = both([&] {
        Matrix<double> c(kN, kN);
        gbtl::mxm(c, gbtl::NoMask{}, gbtl::NoAccumulate{}, sr, a, b);
        return c;
      });
      EXPECT_TRUE(scalar == simd)
          << "tiled mxm diverged: A=" << aname << " bfill=" << bfill;
      EXPECT_TRUE(csr_invariants_hold(simd))
          << "tiled mxm broke CSR invariants: A=" << aname
          << " bfill=" << bfill;
    }
  }
}

TEST_F(KernelProperties, MaskedMxmRowSkipExtremeMasks) {
  const gbtl::ArithmeticSemiring<double> sr;
  const auto a = testref::random_matrix<double>(kN, kN, 0.1, 61);
  const auto b = testref::random_matrix<double>(kN, kN, 0.1, 62);

  Matrix<bool> all_true(kN, kN);
  Matrix<bool> all_false(kN, kN);  // empty: every row skippable
  Matrix<bool> half(kN, kN);       // alternating empty mask rows
  for (IndexType i = 0; i < kN; ++i) {
    for (IndexType j = 0; j < kN; ++j) all_true.setElement(i, j, true);
    if (i % 2 == 0) {
      for (IndexType j = 0; j < kN; j += 2) half.setElement(i, j, true);
    } else {
      half.setElement(i, 0, false);  // stored but falsy — must NOT pass
    }
  }

  gbtl::detail::mxm_tile_bytes() = 1;  // combine row-skip with tiling
  int idx = 0;
  for (const auto* mask : {&all_true, &all_false, &half}) {
    for (const auto outp :
         {gbtl::OutputControl::kMerge, gbtl::OutputControl::kReplace}) {
      auto [scalar, simd] = both([&] {
        auto c = testref::random_matrix<double>(kN, kN, 0.05, 63);
        gbtl::mxm(c, *mask, gbtl::NoAccumulate{}, sr, a, b, outp);
        return c;
      });
      EXPECT_TRUE(scalar == simd)
          << "masked mxm diverged: mask#" << idx
          << " outp=" << static_cast<int>(outp);
    }
    ++idx;
  }
}

TEST_F(KernelProperties, TransposedMxmUsesCachedTransposeCorrectly) {
  const gbtl::ArithmeticSemiring<double> sr;
  auto a = testref::random_matrix<double>(kN, kN, 0.1, 71);
  const auto b = testref::random_matrix<double>(kN, kN, 0.1, 72);

  auto run = [&] {
    Matrix<double> c(kN, kN);
    gbtl::mxm(c, gbtl::NoMask{}, gbtl::NoAccumulate{}, sr,
              gbtl::transpose(a), b);
    return c;
  };
  auto [scalar, simd] = both(run);
  EXPECT_TRUE(scalar == simd) << "mxm(A^T, B) diverged";

  // Mutate A: the cached transpose must be invalidated, not served stale.
  a.setElement(0, 0, 123.0);
  auto [scalar2, simd2] = both(run);
  EXPECT_TRUE(scalar2 == simd2) << "mxm(A^T, B) diverged after mutation";
  EXPECT_FALSE(scalar == scalar2) << "mutation had no effect — bad test";
}

// Same stale-cache property for the mxv pull path, which builds the cache.
TEST_F(KernelProperties, TransposeCacheInvalidatedOnMutation) {
  const gbtl::ArithmeticSemiring<double> sr;
  auto a = testref::random_matrix<double>(kN, kN, 0.1, 81);
  const auto u = testref::random_vector<double>(kN, 1.0, 82);  // dense: pull

  auto run = [&] {
    Vector<double> w(kN);
    gbtl::mxv(w, gbtl::NoMask{}, gbtl::NoAccumulate{}, sr,
              gbtl::transpose(a), u);
    return w;
  };
  auto [scalar, simd] = both(run);
  EXPECT_TRUE(scalar == simd);

  a.setElement(2, 2, 77.0);
  auto [scalar2, simd2] = both(run);
  EXPECT_TRUE(scalar2 == simd2) << "stale cached transpose after mutation";
  EXPECT_FALSE(scalar == scalar2) << "mutation had no effect — bad test";
}

// ---------------------------------------------------------------------------
// eWise / apply / reduce dense fast paths (and their scalar fallbacks)
// ---------------------------------------------------------------------------

TEST_F(KernelProperties, EwiseApplyReduceScalarVsSimd) {
  for (const auto& [uname, u] : adversarial_vectors()) {
    for (const auto& [vname, v] : adversarial_vectors()) {
      auto [sa, va] = both([&] {
        Vector<double> w(kN);
        gbtl::eWiseAdd(w, gbtl::NoMask{}, gbtl::NoAccumulate{},
                       gbtl::Plus<double>{}, u, v);
        return w;
      });
      EXPECT_TRUE(sa == va) << "eWiseAdd Plus: u=" << uname << " v=" << vname;

      auto [sm, vm] = both([&] {
        Vector<double> w(kN);
        gbtl::eWiseMult(w, gbtl::NoMask{}, gbtl::NoAccumulate{},
                        gbtl::Times<double>{}, u, v);
        return w;
      });
      EXPECT_TRUE(sm == vm)
          << "eWiseMult Times: u=" << uname << " v=" << vname;

      // Min has NO vector form on purpose (vminpd tie semantics) — the
      // simd backend must fall back and still agree.
      auto [smin, vmin] = both([&] {
        Vector<double> w(kN);
        gbtl::eWiseAdd(w, gbtl::NoMask{}, gbtl::NoAccumulate{},
                       gbtl::Min<double>{}, u, v);
        return w;
      });
      EXPECT_TRUE(smin == vmin)
          << "eWiseAdd Min: u=" << uname << " v=" << vname;
    }

    auto [sap, vap] = both([&] {
      Vector<double> w(kN);
      gbtl::apply(w, gbtl::NoMask{}, gbtl::NoAccumulate{},
                  gbtl::BinaryOpBind2nd<double, gbtl::Times<double>>(0.85),
                  u);
      return w;
    });
    EXPECT_TRUE(sap == vap) << "apply Times-bind2nd: u=" << uname;

    auto [sneg, vneg] = both([&] {
      Vector<double> w(kN);
      gbtl::apply(w, gbtl::NoMask{}, gbtl::NoAccumulate{},
                  gbtl::AdditiveInverse<double>{}, u);
      return w;
    });
    EXPECT_TRUE(sneg == vneg) << "apply AdditiveInverse: u=" << uname;

    auto [sred, vred] = both([&] {
      double acc = -1.0;
      gbtl::reduce(acc, gbtl::NoAccumulate{}, gbtl::PlusMonoid<double>{}, u);
      return acc;
    });
    EXPECT_EQ(sred, vred) << "reduce Plus: u=" << uname;
  }
}

// The simd backend short-circuits two matrix-apply shapes: same-type
// Identity (container copy) and aliased C = f(C) (in-place value
// overwrite, no staging). Both must be bit-identical to the staged scalar
// path, and the in-place form must invalidate the transpose snapshot like
// any other mutator.
TEST_F(KernelProperties, MatrixApplyFastPathsScalarVsSimd) {
  for (const auto& [name, a] : adversarial_matrices()) {
    // Identity copy (not aliased).
    auto [sid, vid] = both([&] {
      Matrix<double> c(kN, kN);
      gbtl::apply(c, gbtl::NoMask{}, gbtl::NoAccumulate{},
                  gbtl::Identity<double>{}, a);
      return c;
    });
    EXPECT_TRUE(sid == vid) << "apply Identity copy: a=" << name;
    EXPECT_TRUE(csr_invariants_hold(vid)) << "a=" << name;

    // Aliased in-place rescale (PageRank's damping step shape).
    auto [ssc, vsc] = both([&] {
      Matrix<double> c(a);
      gbtl::apply(c, gbtl::NoMask{}, gbtl::NoAccumulate{},
                  gbtl::BinaryOpBind2nd<double, gbtl::Times<double>>(0.85),
                  c);
      return c;
    });
    EXPECT_TRUE(ssc == vsc) << "aliased apply Times-bind2nd: a=" << name;
    EXPECT_TRUE(csr_invariants_hold(vsc)) << "a=" << name;

    // normalize_rows takes an in-place route under simd.
    auto [snr, vnr] = both([&] {
      Matrix<double> c(a);
      gbtl::normalize_rows(c);
      return c;
    });
    EXPECT_TRUE(snr == vnr) << "normalize_rows: a=" << name;
  }

  // transform_rows-backed mutation must drop the cached transpose: pull a
  // dense mxv (seeding the snapshot), rescale in place, pull again.
  const gbtl::ArithmeticSemiring<double> sr;
  auto a = testref::random_matrix<double>(kN, kN, 0.1, 83);
  const auto u = testref::random_vector<double>(kN, 1.0, 84);
  auto run = [&] {
    Vector<double> w(kN);
    gbtl::mxv(w, gbtl::NoMask{}, gbtl::NoAccumulate{}, sr,
              gbtl::transpose(a), u);
    return w;
  };
  auto [s1, v1] = both(run);
  EXPECT_TRUE(s1 == v1);
  {
    gbtl::detail::BackendScope simd_scope(gbtl::detail::Backend::kSimd);
    gbtl::apply(a, gbtl::NoMask{}, gbtl::NoAccumulate{},
                gbtl::BinaryOpBind2nd<double, gbtl::Times<double>>(2.0), a);
  }
  auto [s2, v2] = both(run);
  EXPECT_TRUE(s2 == v2) << "stale cached transpose after in-place apply";
  EXPECT_FALSE(s1 == s2) << "in-place apply had no effect — bad test";
}

}  // namespace
