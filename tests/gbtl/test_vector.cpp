// Unit tests: gbtl::Vector container semantics.
#include <gtest/gtest.h>

#include "gbtl/gbtl.hpp"

namespace {

using gbtl::IndexArray;
using gbtl::Vector;

TEST(GbtlVector, ConstructEmpty) {
  Vector<double> v(5);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v.nvals(), 0u);
}

TEST(GbtlVector, ZeroSizeThrows) {
  EXPECT_THROW(Vector<double>(0), gbtl::InvalidValueException);
}

TEST(GbtlVector, DenseConstructorSkipsZeros) {
  Vector<int> v{1, 0, 3, 0, 5};
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v.nvals(), 3u);
  EXPECT_FALSE(v.hasElement(1));
  EXPECT_EQ(v.extractElement(4), 5);
}

TEST(GbtlVector, DenseConstructorCustomZero) {
  Vector<int> v({-1, 2, -1}, -1);
  EXPECT_EQ(v.nvals(), 1u);
  EXPECT_EQ(v.extractElement(1), 2);
}

TEST(GbtlVector, SetGetRemove) {
  Vector<double> v(3);
  v.setElement(1, 4.5);
  EXPECT_TRUE(v.hasElement(1));
  EXPECT_DOUBLE_EQ(v.extractElement(1), 4.5);
  v.setElement(1, 5.5);
  EXPECT_EQ(v.nvals(), 1u);
  v.removeElement(1);
  EXPECT_EQ(v.nvals(), 0u);
  v.removeElement(1);  // no-op
}

TEST(GbtlVector, ExtractMissingThrows) {
  Vector<double> v(3);
  EXPECT_THROW(v.extractElement(0), gbtl::NoValueException);
}

TEST(GbtlVector, OutOfBoundsThrows) {
  Vector<double> v(3);
  EXPECT_THROW(v.setElement(3, 1.0), gbtl::IndexOutOfBoundsException);
  EXPECT_THROW(v.hasElement(9), gbtl::IndexOutOfBoundsException);
}

TEST(GbtlVector, BuildWithDuplicates) {
  Vector<int> v(4);
  IndexArray is{2, 2, 0};
  std::vector<int> vs{5, 7, 1};
  v.build(is, vs);  // default dup: last wins
  EXPECT_EQ(v.nvals(), 2u);
  EXPECT_EQ(v.extractElement(2), 7);

  v.build(is, vs, gbtl::Plus<int>{});
  EXPECT_EQ(v.extractElement(2), 12);
}

TEST(GbtlVector, BuildMismatchedLengthsThrows) {
  Vector<int> v(4);
  IndexArray is{0, 1};
  std::vector<int> vs{1};
  EXPECT_THROW(v.build(is, vs), gbtl::InvalidValueException);
}

TEST(GbtlVector, EqualityIncludesStructure) {
  Vector<int> a{1, 0, 3};
  Vector<int> b{1, 0, 3};
  EXPECT_TRUE(a == b);
  b.setElement(1, 0);  // stored zero != absent
  EXPECT_FALSE(a == b);
}

TEST(GbtlVector, ExtractTuples) {
  Vector<int> v{0, 7, 0, 9};
  IndexArray is;
  std::vector<int> vs;
  v.extractTuples(is, vs);
  ASSERT_EQ(is.size(), 2u);
  EXPECT_EQ(is[0], 1u);
  EXPECT_EQ(vs[0], 7);
  EXPECT_EQ(is[1], 3u);
  EXPECT_EQ(vs[1], 9);
}

TEST(GbtlVector, ClearKeepsSize) {
  Vector<int> v{1, 2, 3};
  v.clear();
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.nvals(), 0u);
}

TEST(GbtlVector, BoolVectorStoredFalse) {
  Vector<bool> v(2);
  v.setElement(0, false);
  EXPECT_EQ(v.nvals(), 1u);
  EXPECT_FALSE(v.extractElement(0));
}

}  // namespace
