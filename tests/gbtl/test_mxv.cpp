// Tests: gbtl::mxv / gbtl::vxm — pull and push kernels, transposed
// operands, masks, accumulators, and the Fig. 1 BFS ply.
#include <gtest/gtest.h>

#include "reference.hpp"

namespace {

using namespace gbtl;  // NOLINT
using testref::matches;
using testref::random_matrix;
using testref::random_vector;
using testref::ref_mxv;
using testref::ref_transpose;
using testref::to_dense;

TEST(Mxv, KnownSmallProduct) {
  Matrix<int> a({{1, 2}, {3, 4}});
  Vector<int> u{5, 6};
  Vector<int> w(2);
  mxv(w, NoMask{}, NoAccumulate{}, ArithmeticSemiring<int>{}, a, u);
  EXPECT_EQ(w.extractElement(0), 17);
  EXPECT_EQ(w.extractElement(1), 39);
}

TEST(Mxv, Fig1BfsPly) {
  // Fig. 1: one ply of BFS from source vertex 4 (1-based) = index 3.
  // Directed edges of the example graph.
  Matrix<bool> a(7, 7);
  const std::pair<int, int> edges[] = {{0, 1}, {0, 3}, {1, 4}, {1, 6},
                                       {2, 5}, {3, 0}, {3, 2}, {3, 5},
                                       {4, 5}, {5, 2}, {6, 2}, {6, 3}};
  for (auto [s, d] : edges) a.setElement(s, d, true);
  Vector<bool> v(7);
  v.setElement(3, true);
  Vector<bool> next(7);
  // v^T A == A^T v: neighbours of vertex 3 -> {0, 2, 5}.
  mxv(next, NoMask{}, NoAccumulate{}, LogicalSemiring<bool>{}, transpose(a),
      v);
  EXPECT_EQ(next.nvals(), 3u);
  EXPECT_TRUE(next.extractElement(0));
  EXPECT_TRUE(next.extractElement(2));
  EXPECT_TRUE(next.extractElement(5));
}

TEST(Mxv, EmptyInputGivesEmptyOutput) {
  Matrix<int> a({{1, 2}, {3, 4}});
  Vector<int> u(2);  // no stored values
  Vector<int> w(2);
  mxv(w, NoMask{}, NoAccumulate{}, ArithmeticSemiring<int>{}, a, u);
  EXPECT_EQ(w.nvals(), 0u);
}

TEST(Mxv, DimensionMismatchThrows) {
  Matrix<int> a(2, 3);
  Vector<int> u(2), w(2);
  EXPECT_THROW(
      mxv(w, NoMask{}, NoAccumulate{}, ArithmeticSemiring<int>{}, a, u),
      DimensionException);
  Vector<int> u3(3), w3(3);
  EXPECT_THROW(
      mxv(w3, NoMask{}, NoAccumulate{}, ArithmeticSemiring<int>{}, a, u3),
      DimensionException);
}

TEST(Mxv, AccumulatorMin) {
  // The SSSP relaxation step: w = w min (A min.+ u).
  Matrix<double> a(2, 2);
  a.setElement(0, 1, 5.0);
  Vector<double> w{10.0, 3.0};
  Vector<double> u{0.0, 2.0};
  u.setElement(0, 0.0);  // ensure stored zero at index 0
  mxv(w, NoMask{}, Min<double>{}, MinPlusSemiring<double>{}, a, u);
  // Row 0 dot: a(0,1)+u(1) = 7 -> min(10, 7) = 7. Row 1: empty -> keeps 3.
  EXPECT_DOUBLE_EQ(w.extractElement(0), 7.0);
  EXPECT_DOUBLE_EQ(w.extractElement(1), 3.0);
}

TEST(Mxv, OutputAliasedWithInputIsSafe) {
  // frontier = A^T frontier with the same vector on both sides.
  Matrix<bool> a(3, 3);
  a.setElement(0, 1, true);
  a.setElement(1, 2, true);
  Vector<bool> f(3);
  f.setElement(0, true);
  mxv(f, NoMask{}, NoAccumulate{}, LogicalSemiring<bool>{}, transpose(a), f,
      OutputControl::kReplace);
  EXPECT_EQ(f.nvals(), 1u);
  EXPECT_TRUE(f.extractElement(1));
}

TEST(Vxm, KnownSmallProduct) {
  Matrix<int> a({{1, 2}, {3, 4}});
  Vector<int> u{5, 6};
  Vector<int> w(2);
  vxm(w, NoMask{}, NoAccumulate{}, ArithmeticSemiring<int>{}, u, a);
  EXPECT_EQ(w.extractElement(0), 23);  // 5*1 + 6*3
  EXPECT_EQ(w.extractElement(1), 34);  // 5*2 + 6*4
}

TEST(Vxm, EqualsMxvOfTranspose) {
  auto a = random_matrix<int>(9, 7, 0.4, 11);
  auto u = random_vector<int>(9, 0.6, 12);
  Vector<int> w1(7), w2(7);
  vxm(w1, NoMask{}, NoAccumulate{}, ArithmeticSemiring<int>{}, u, a);
  mxv(w2, NoMask{}, NoAccumulate{}, ArithmeticSemiring<int>{}, transpose(a),
      u);
  EXPECT_TRUE(w1 == w2);
}

TEST(Vxm, NonCommutativeMultUsesVectorAsLeftOperand) {
  // With the Second multiply, vxm picks the matrix value (right operand);
  // mxv(transpose) with the same semiring would pick the vector value.
  Matrix<int> a(2, 2);
  a.setElement(0, 1, 42);
  Vector<int> u(2);
  u.setElement(0, 7);
  Vector<int> w(2);
  vxm(w, NoMask{}, NoAccumulate{}, MinSelect2ndSemiring<int>{}, u, a);
  EXPECT_EQ(w.extractElement(1), 42);

  Vector<int> w2(2);
  mxv(w2, NoMask{}, NoAccumulate{}, MinSelect2ndSemiring<int>{},
      transpose(a), u);
  EXPECT_EQ(w2.extractElement(1), 7);
}

// ---- randomized sweeps -----------------------------------------------------

struct MvCase {
  double fill_a;
  double fill_u;
  unsigned seed;
};

class MxvRandom : public ::testing::TestWithParam<MvCase> {};

TEST_P(MxvRandom, PullKernelMatchesReference) {
  const auto p = GetParam();
  auto a = random_matrix<int>(15, 12, p.fill_a, p.seed);
  auto u = random_vector<int>(12, p.fill_u, p.seed + 1);
  Vector<int> w(15);
  ArithmeticSemiring<int> sr;
  mxv(w, NoMask{}, NoAccumulate{}, sr, a, u);
  EXPECT_TRUE(matches(w, ref_mxv(sr, to_dense(a), to_dense(u))));
}

TEST_P(MxvRandom, PushKernelMatchesReference) {
  const auto p = GetParam();
  auto a = random_matrix<int>(12, 15, p.fill_a, p.seed);
  auto u = random_vector<int>(12, p.fill_u, p.seed + 2);
  Vector<int> w(15);
  ArithmeticSemiring<int> sr;
  mxv(w, NoMask{}, NoAccumulate{}, sr, transpose(a), u);
  EXPECT_TRUE(matches(w, ref_mxv(sr, ref_transpose(to_dense(a)),
                                 to_dense(u))));
}

TEST_P(MxvRandom, MaskedReplaceAndMergeSemantics) {
  const auto p = GetParam();
  auto a = random_matrix<int>(10, 10, p.fill_a, p.seed);
  auto u = random_vector<int>(10, p.fill_u, p.seed + 3);
  auto w0 = random_vector<int>(10, 0.5, p.seed + 4);
  auto mask = random_vector<bool>(10, 0.5, p.seed + 5, false, true);
  ArithmeticSemiring<int> sr;

  Vector<int> full(10);
  mxv(full, NoMask{}, NoAccumulate{}, sr, a, u);

  for (auto outp : {OutputControl::kMerge, OutputControl::kReplace}) {
    Vector<int> w = w0;
    mxv(w, mask, NoAccumulate{}, sr, a, u, outp);
    for (IndexType i = 0; i < 10; ++i) {
      if (mask_value(mask, i)) {
        EXPECT_EQ(w.hasElement(i), full.hasElement(i));
        if (full.hasElement(i)) {
          EXPECT_EQ(w.extractElement(i), full.extractElement(i));
        }
      } else if (outp == OutputControl::kMerge) {
        EXPECT_EQ(w.hasElement(i), w0.hasElement(i));
        if (w0.hasElement(i)) {
          EXPECT_EQ(w.extractElement(i), w0.extractElement(i));
        }
      } else {
        EXPECT_FALSE(w.hasElement(i));
      }
    }
  }
}

TEST_P(MxvRandom, VxmTransposedMatchesPlainMxv) {
  const auto p = GetParam();
  auto a = random_matrix<int>(11, 9, p.fill_a, p.seed);
  auto u = random_vector<int>(9, p.fill_u, p.seed + 6);
  Vector<int> w1(11), w2(11);
  ArithmeticSemiring<int> sr;
  vxm(w1, NoMask{}, NoAccumulate{}, sr, u, transpose(a));
  mxv(w2, NoMask{}, NoAccumulate{}, sr, a, u);
  EXPECT_TRUE(w1 == w2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MxvRandom,
    ::testing::Values(MvCase{0.1, 0.3, 21}, MvCase{0.4, 0.6, 22},
                      MvCase{0.7, 0.2, 23}, MvCase{1.0, 1.0, 24},
                      MvCase{0.3, 0.05, 25}));

}  // namespace
