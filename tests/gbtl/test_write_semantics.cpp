// Exhaustive parameterized sweep of the GraphBLAS output-write discipline
// (DESIGN.md §6): accumulate × mask kind × replace/merge, cross-checked
// against a transparently-written dense model for every stored/absent
// combination of C and T.
#include <gtest/gtest.h>

#include <optional>

#include "gbtl/detail/write_backend.hpp"
#include "gbtl/gbtl.hpp"

namespace {

using namespace gbtl;  // NOLINT

enum class MaskMode { kNone, kPlain, kComp };
enum class AccumMode { kNone, kPlus };

struct WriteCase {
  MaskMode mask;
  AccumMode accum;
  OutputControl outp;
};

/// Dense model of the discipline for one position.
std::optional<int> model(std::optional<int> c, std::optional<int> t,
                         bool masked_in, AccumMode accum,
                         OutputControl outp) {
  if (!masked_in) {
    return outp == OutputControl::kMerge ? c : std::nullopt;
  }
  if (accum == AccumMode::kNone) return t;
  if (c && t) return *c + *t;
  if (t) return t;
  return c;
}

class WriteSemantics : public ::testing::TestWithParam<WriteCase> {};

TEST_P(WriteSemantics, VectorAllCombinations) {
  const auto p = GetParam();
  // Position layout: every combination of (c present, t present, mask true)
  // appears at least once in 8 slots.
  Vector<int> c(8), t(8);
  Vector<bool> mask(8);
  for (IndexType i = 0; i < 8; ++i) {
    if (i & 1) c.setElement(i, 100 + static_cast<int>(i));
    if (i & 2) t.setElement(i, 1 + static_cast<int>(i));
    if (i & 4) mask.setElement(i, true);
  }

  Vector<int> out = c;
  auto run = [&](const auto& m) {
    if (p.accum == AccumMode::kNone) {
      detail::write_vector_result(out, t, m, NoAccumulate{}, p.outp);
    } else {
      detail::write_vector_result(out, t, m, Plus<int>{}, p.outp);
    }
  };
  switch (p.mask) {
    case MaskMode::kNone:
      run(NoMask{});
      break;
    case MaskMode::kPlain:
      run(mask);
      break;
    case MaskMode::kComp:
      run(complement(mask));
      break;
  }

  for (IndexType i = 0; i < 8; ++i) {
    bool masked_in = true;
    if (p.mask == MaskMode::kPlain) masked_in = (i & 4) != 0;
    if (p.mask == MaskMode::kComp) masked_in = (i & 4) == 0;
    const std::optional<int> cv =
        (i & 1) ? std::optional<int>(100 + static_cast<int>(i))
                : std::nullopt;
    const std::optional<int> tv =
        (i & 2) ? std::optional<int>(1 + static_cast<int>(i)) : std::nullopt;
    const auto want = model(cv, tv, masked_in, p.accum, p.outp);
    EXPECT_EQ(out.hasElement(i), want.has_value()) << "slot " << i;
    if (want) EXPECT_EQ(out.extractElement(i), *want) << "slot " << i;
  }
}

TEST_P(WriteSemantics, MatrixAllCombinations) {
  const auto p = GetParam();
  // Same 8-combination layout spread over a 2x4 matrix.
  Matrix<int> c(2, 4), t(2, 4);
  Matrix<bool> mask(2, 4);
  auto pos = [](IndexType k) {
    return std::pair<IndexType, IndexType>{k / 4, k % 4};
  };
  for (IndexType k = 0; k < 8; ++k) {
    auto [i, j] = pos(k);
    if (k & 1) c.setElement(i, j, 100 + static_cast<int>(k));
    if (k & 2) t.setElement(i, j, 1 + static_cast<int>(k));
    if (k & 4) mask.setElement(i, j, true);
  }

  Matrix<int> out = c;
  auto run = [&](const auto& m) {
    if (p.accum == AccumMode::kNone) {
      detail::write_matrix_result(out, t, m, NoAccumulate{}, p.outp);
    } else {
      detail::write_matrix_result(out, t, m, Plus<int>{}, p.outp);
    }
  };
  switch (p.mask) {
    case MaskMode::kNone:
      run(NoMask{});
      break;
    case MaskMode::kPlain:
      run(mask);
      break;
    case MaskMode::kComp:
      run(complement(mask));
      break;
  }

  for (IndexType k = 0; k < 8; ++k) {
    auto [i, j] = pos(k);
    bool masked_in = true;
    if (p.mask == MaskMode::kPlain) masked_in = (k & 4) != 0;
    if (p.mask == MaskMode::kComp) masked_in = (k & 4) == 0;
    const std::optional<int> cv =
        (k & 1) ? std::optional<int>(100 + static_cast<int>(k))
                : std::nullopt;
    const std::optional<int> tv =
        (k & 2) ? std::optional<int>(1 + static_cast<int>(k)) : std::nullopt;
    const auto want = model(cv, tv, masked_in, p.accum, p.outp);
    EXPECT_EQ(out.hasElement(i, j), want.has_value()) << "slot " << k;
    if (want) EXPECT_EQ(out.extractElement(i, j), *want) << "slot " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, WriteSemantics,
    ::testing::Values(
        WriteCase{MaskMode::kNone, AccumMode::kNone, OutputControl::kMerge},
        WriteCase{MaskMode::kNone, AccumMode::kNone,
                  OutputControl::kReplace},
        WriteCase{MaskMode::kNone, AccumMode::kPlus, OutputControl::kMerge},
        WriteCase{MaskMode::kPlain, AccumMode::kNone,
                  OutputControl::kMerge},
        WriteCase{MaskMode::kPlain, AccumMode::kNone,
                  OutputControl::kReplace},
        WriteCase{MaskMode::kPlain, AccumMode::kPlus,
                  OutputControl::kMerge},
        WriteCase{MaskMode::kPlain, AccumMode::kPlus,
                  OutputControl::kReplace},
        WriteCase{MaskMode::kComp, AccumMode::kNone, OutputControl::kMerge},
        WriteCase{MaskMode::kComp, AccumMode::kNone,
                  OutputControl::kReplace},
        WriteCase{MaskMode::kComp, AccumMode::kPlus,
                  OutputControl::kReplace}));

TEST(WriteSemantics, StoredFalseMaskValueIsMaskedOut) {
  Vector<int> c(2), t(2);
  t.setElement(0, 1);
  t.setElement(1, 2);
  Vector<bool> mask(2);
  mask.setElement(0, true);
  mask.setElement(1, false);  // stored false is NOT masked in
  detail::write_vector_result(c, t, mask, NoAccumulate{},
                              OutputControl::kMerge);
  EXPECT_TRUE(c.hasElement(0));
  EXPECT_FALSE(c.hasElement(1));
}

TEST(WriteSemantics, NonBoolMaskUsesTruthiness) {
  Vector<int> c(3), t(3);
  for (IndexType i = 0; i < 3; ++i) t.setElement(i, 7);
  Vector<double> mask(3);
  mask.setElement(0, 2.5);  // truthy
  mask.setElement(1, 0.0);  // falsy stored value
  detail::write_vector_result(c, t, mask, NoAccumulate{},
                              OutputControl::kMerge);
  EXPECT_TRUE(c.hasElement(0));
  EXPECT_FALSE(c.hasElement(1));
  EXPECT_FALSE(c.hasElement(2));
}

}  // namespace
