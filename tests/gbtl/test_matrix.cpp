// Unit tests: gbtl::Matrix container semantics.
#include <gtest/gtest.h>

#include "gbtl/gbtl.hpp"

namespace {

using gbtl::IndexArray;
using gbtl::IndexType;
using gbtl::Matrix;

TEST(GbtlMatrix, ConstructEmpty) {
  Matrix<double> m(3, 4);
  EXPECT_EQ(m.nrows(), 3u);
  EXPECT_EQ(m.ncols(), 4u);
  EXPECT_EQ(m.nvals(), 0u);
}

TEST(GbtlMatrix, ZeroDimensionThrows) {
  EXPECT_THROW(Matrix<double>(0, 3), gbtl::InvalidValueException);
  EXPECT_THROW(Matrix<double>(3, 0), gbtl::InvalidValueException);
}

TEST(GbtlMatrix, DenseConstructorSkipsZeros) {
  Matrix<int> m({{1, 0, 2}, {0, 0, 0}, {3, 4, 5}});
  EXPECT_EQ(m.nrows(), 3u);
  EXPECT_EQ(m.ncols(), 3u);
  EXPECT_EQ(m.nvals(), 5u);
  EXPECT_TRUE(m.hasElement(0, 0));
  EXPECT_FALSE(m.hasElement(0, 1));
  EXPECT_EQ(m.extractElement(2, 1), 4);
}

TEST(GbtlMatrix, DenseConstructorCustomZero) {
  // With zero = -1, the -1 entries are treated as implied and not stored.
  Matrix<int> m({{-1, 5}, {7, -1}}, -1);
  EXPECT_EQ(m.nvals(), 2u);
  EXPECT_FALSE(m.hasElement(0, 0));
  EXPECT_EQ(m.extractElement(0, 1), 5);
}

TEST(GbtlMatrix, RaggedDenseThrows) {
  EXPECT_THROW(Matrix<int>({{1, 2}, {3}}), gbtl::DimensionException);
}

TEST(GbtlMatrix, SetGetRemove) {
  Matrix<double> m(2, 2);
  m.setElement(0, 1, 2.5);
  EXPECT_TRUE(m.hasElement(0, 1));
  EXPECT_DOUBLE_EQ(m.extractElement(0, 1), 2.5);
  m.setElement(0, 1, 3.5);  // overwrite keeps nvals
  EXPECT_EQ(m.nvals(), 1u);
  EXPECT_DOUBLE_EQ(m.extractElement(0, 1), 3.5);
  m.removeElement(0, 1);
  EXPECT_EQ(m.nvals(), 0u);
  EXPECT_FALSE(m.hasElement(0, 1));
  m.removeElement(0, 1);  // no-op
  EXPECT_EQ(m.nvals(), 0u);
}

TEST(GbtlMatrix, ExtractMissingThrows) {
  Matrix<double> m(2, 2);
  EXPECT_THROW(m.extractElement(0, 0), gbtl::NoValueException);
}

TEST(GbtlMatrix, OutOfBoundsThrows) {
  Matrix<double> m(2, 2);
  EXPECT_THROW(m.setElement(2, 0, 1.0), gbtl::IndexOutOfBoundsException);
  EXPECT_THROW(m.hasElement(0, 2), gbtl::IndexOutOfBoundsException);
  EXPECT_THROW(m.extractElement(5, 5), gbtl::IndexOutOfBoundsException);
}

TEST(GbtlMatrix, BuildFromCoordinates) {
  Matrix<double> m(3, 3);
  IndexArray is{0, 1, 2, 0};
  IndexArray js{0, 1, 2, 2};
  std::vector<double> vs{1, 2, 3, 9};
  m.build(is, js, vs);
  EXPECT_EQ(m.nvals(), 4u);
  EXPECT_DOUBLE_EQ(m.extractElement(0, 2), 9);
}

TEST(GbtlMatrix, BuildDuplicatesDefaultLastWins) {
  Matrix<int> m(2, 2);
  IndexArray is{0, 0};
  IndexArray js{1, 1};
  std::vector<int> vs{5, 7};
  m.build(is, js, vs);
  EXPECT_EQ(m.nvals(), 1u);
  EXPECT_EQ(m.extractElement(0, 1), 7);
}

TEST(GbtlMatrix, BuildDuplicatesWithPlusDup) {
  Matrix<int> m(2, 2);
  IndexArray is{0, 0, 0};
  IndexArray js{1, 1, 1};
  std::vector<int> vs{5, 7, 1};
  m.build(is, js, vs, gbtl::Plus<int>{});
  EXPECT_EQ(m.extractElement(0, 1), 13);
}

TEST(GbtlMatrix, BuildOutOfRangeThrows) {
  Matrix<int> m(2, 2);
  IndexArray is{2};
  IndexArray js{0};
  std::vector<int> vs{1};
  EXPECT_THROW(m.build(is, js, vs), gbtl::IndexOutOfBoundsException);
}

TEST(GbtlMatrix, BuildMismatchedLengthsThrows) {
  Matrix<int> m(2, 2);
  IndexArray is{0, 1};
  IndexArray js{0};
  std::vector<int> vs{1, 2};
  EXPECT_THROW(m.build(is, js, vs), gbtl::InvalidValueException);
}

TEST(GbtlMatrix, ClearKeepsShape) {
  Matrix<int> m({{1, 2}, {3, 4}});
  m.clear();
  EXPECT_EQ(m.nvals(), 0u);
  EXPECT_EQ(m.nrows(), 2u);
  EXPECT_EQ(m.ncols(), 2u);
}

TEST(GbtlMatrix, EqualityStructureAndValues) {
  Matrix<int> a({{1, 0}, {0, 2}});
  Matrix<int> b({{1, 0}, {0, 2}});
  Matrix<int> c({{1, 0}, {0, 3}});
  Matrix<int> d({{1, 2}, {0, 2}});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(GbtlMatrix, ExtractTuplesRowMajorOrder) {
  Matrix<int> m({{0, 1}, {2, 0}});
  IndexArray is, js;
  std::vector<int> vs;
  m.extractTuples(is, js, vs);
  ASSERT_EQ(is.size(), 2u);
  EXPECT_EQ(is[0], 0u);
  EXPECT_EQ(js[0], 1u);
  EXPECT_EQ(vs[0], 1);
  EXPECT_EQ(is[1], 1u);
  EXPECT_EQ(js[1], 0u);
  EXPECT_EQ(vs[1], 2);
}

TEST(GbtlMatrix, SetRowReplacesAndUpdatesNvals) {
  Matrix<int> m({{1, 2}, {3, 4}});
  typename Matrix<int>::Row row{{1, 9}};
  m.setRow(0, std::move(row));
  EXPECT_EQ(m.nvals(), 3u);
  EXPECT_FALSE(m.hasElement(0, 0));
  EXPECT_EQ(m.extractElement(0, 1), 9);
}

TEST(GbtlMatrix, RowsStaySortedUnderRandomInsertion) {
  Matrix<int> m(1, 100);
  for (int j : {57, 3, 99, 0, 42, 17, 88, 5}) {
    m.setElement(0, static_cast<IndexType>(j), j);
  }
  const auto& row = m.row(0);
  for (std::size_t k = 1; k < row.size(); ++k) {
    EXPECT_LT(row[k - 1].first, row[k].first);
  }
}

TEST(GbtlMatrix, BoolMatrixWorks) {
  Matrix<bool> m(2, 2);
  m.setElement(0, 0, true);
  m.setElement(1, 1, false);  // stored false is a stored value
  EXPECT_EQ(m.nvals(), 2u);
  EXPECT_TRUE(m.extractElement(0, 0));
  EXPECT_FALSE(m.extractElement(1, 1));
}

}  // namespace
