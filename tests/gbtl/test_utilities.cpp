// Tests: GBTL utility helpers (normalize_rows, split, identity, banded).
#include <gtest/gtest.h>

#include <sstream>

#include "gbtl/gbtl.hpp"

namespace {

using namespace gbtl;  // NOLINT

TEST(NormalizeRows, RowsSumToOne) {
  Matrix<double> m({{1, 1, 2}, {0, 0, 0}, {5, 0, 0}});
  normalize_rows(m);
  EXPECT_DOUBLE_EQ(m.extractElement(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(m.extractElement(0, 2), 0.5);
  EXPECT_DOUBLE_EQ(m.extractElement(2, 0), 1.0);
  EXPECT_EQ(m.row(1).size(), 0u);  // empty rows untouched
}

TEST(NormalizeRows, ZeroSumRowLeftAlone) {
  Matrix<double> m(2, 2);
  m.setElement(0, 0, 1.0);
  m.setElement(0, 1, -1.0);
  normalize_rows(m);
  EXPECT_DOUBLE_EQ(m.extractElement(0, 0), 1.0);  // sum 0: untouched
}

TEST(Split, StrictTriangles) {
  Matrix<int> a({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  Matrix<int> lo(3, 3), hi(3, 3);
  split(a, lo, hi);
  EXPECT_EQ(lo.nvals(), 3u);
  EXPECT_EQ(hi.nvals(), 3u);
  EXPECT_EQ(lo.extractElement(1, 0), 4);
  EXPECT_EQ(lo.extractElement(2, 1), 8);
  EXPECT_EQ(hi.extractElement(0, 2), 3);
  EXPECT_FALSE(lo.hasElement(1, 1));  // diagonal dropped
  EXPECT_FALSE(hi.hasElement(0, 0));
}

TEST(Split, NonSquareThrows) {
  Matrix<int> a(2, 3), lo(2, 3), hi(2, 3);
  EXPECT_THROW(split(a, lo, hi), DimensionException);
}

TEST(IdentityMatrix, DiagonalOnly) {
  auto eye = identity_matrix<double>(4, 2.5);
  EXPECT_EQ(eye.nvals(), 4u);
  EXPECT_DOUBLE_EQ(eye.extractElement(2, 2), 2.5);
  EXPECT_FALSE(eye.hasElement(0, 1));
}

TEST(BandedMatrix, TriDiagonal) {
  // scipy.sparse.diags([1,1,1], [-1,0,1], shape=(3,3)) analog (Fig. 3b).
  auto m = banded_matrix<int>(3, {{-1, 1}, {0, 1}, {1, 1}});
  EXPECT_EQ(m.nvals(), 7u);
  EXPECT_EQ(m.extractElement(0, 0), 1);
  EXPECT_EQ(m.extractElement(0, 1), 1);
  EXPECT_EQ(m.extractElement(1, 0), 1);
  EXPECT_FALSE(m.hasElement(0, 2));
}

TEST(BandedMatrix, OffsetClipping) {
  auto m = banded_matrix<int>(3, {{2, 9}});
  EXPECT_EQ(m.nvals(), 1u);
  EXPECT_EQ(m.extractElement(0, 2), 9);
}

TEST(PrintDense, SmokeFormat) {
  Matrix<int> m(2, 2);
  m.setElement(0, 0, 3);
  std::ostringstream os;
  print_dense(os, m);
  EXPECT_EQ(os.str(), "3 .\n. .\n");
}

}  // namespace
