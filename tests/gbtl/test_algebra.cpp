// Unit + property tests: the Fig. 6 operator algebra — binary/unary
// functors, monoid laws (identity, associativity, commutativity), and
// semiring laws (annihilator, distribution samples).
#include <gtest/gtest.h>

#include <vector>

#include "gbtl/algebra.hpp"

namespace {

using namespace gbtl;  // NOLINT

TEST(Algebra, ArithmeticBinaryOps) {
  EXPECT_EQ(Plus<int>{}(3, 4), 7);
  EXPECT_EQ(Minus<int>{}(3, 4), -1);
  EXPECT_EQ(Times<int>{}(3, 4), 12);
  EXPECT_EQ(Div<int>{}(12, 4), 3);
  EXPECT_DOUBLE_EQ(Div<double>{}(1.0, 4.0), 0.25);
  EXPECT_EQ(Min<int>{}(3, 4), 3);
  EXPECT_EQ(Max<int>{}(3, 4), 4);
  EXPECT_EQ(First<int>{}(3, 4), 3);
  EXPECT_EQ(Second<int>{}(3, 4), 4);
}

TEST(Algebra, LogicalBinaryOps) {
  EXPECT_TRUE(LogicalOr<int>{}(0, 2));
  EXPECT_FALSE(LogicalOr<int>{}(0, 0));
  EXPECT_TRUE(LogicalAnd<int>{}(1, 2));
  EXPECT_FALSE(LogicalAnd<int>{}(1, 0));
  EXPECT_TRUE(LogicalXor<int>{}(1, 0));
  EXPECT_FALSE(LogicalXor<int>{}(1, 5));
}

TEST(Algebra, ComparisonBinaryOpsYieldBool) {
  EXPECT_TRUE((Equal<int>{}(2, 2)));
  EXPECT_TRUE((NotEqual<int>{}(2, 3)));
  EXPECT_TRUE((GreaterThan<int>{}(3, 2)));
  EXPECT_TRUE((LessThan<int>{}(2, 3)));
  EXPECT_TRUE((GreaterEqual<int>{}(3, 3)));
  EXPECT_TRUE((LessEqual<int>{}(3, 3)));
  static_assert(
      std::is_same_v<decltype(Equal<int>{}(1, 2)), bool>,
      "comparisons default to bool output");
}

TEST(Algebra, HeterogeneousTypeOps) {
  // (int, double) -> float, per the three-type template signature.
  const auto r = Plus<int, double, float>{}(2, 0.5);
  static_assert(std::is_same_v<decltype(r), const float>);
  EXPECT_FLOAT_EQ(r, 2.5f);
  EXPECT_EQ((Min<std::int64_t, std::int8_t, std::int64_t>{}(100, int8_t{5})),
            5);
}

TEST(Algebra, UnaryOps) {
  EXPECT_EQ((Identity<int>{}(7)), 7);
  EXPECT_DOUBLE_EQ((Identity<int, double>{}(7)), 7.0);
  EXPECT_EQ((AdditiveInverse<int>{}(7)), -7);
  EXPECT_DOUBLE_EQ((MultiplicativeInverse<double>{}(4.0)), 0.25);
  EXPECT_TRUE((LogicalNot<int>{}(0)));
  EXPECT_FALSE((LogicalNot<int>{}(3)));
}

TEST(Algebra, BindAdaptors) {
  BinaryOpBind2nd<double, Times<double>> scale(0.5);
  EXPECT_DOUBLE_EQ(scale(8.0), 4.0);
  BinaryOpBind2nd<double, Minus<double>> sub(1.0);
  EXPECT_DOUBLE_EQ(sub(8.0), 7.0);
  BinaryOpBind1st<double, Minus<double>> rsub(1.0);
  EXPECT_DOUBLE_EQ(rsub(8.0), -7.0);
}

TEST(Algebra, MonoidIdentities) {
  EXPECT_EQ(PlusMonoid<int>::identity(), 0);
  EXPECT_EQ(TimesMonoid<int>::identity(), 1);
  EXPECT_EQ(MinMonoid<int>::identity(), std::numeric_limits<int>::max());
  EXPECT_EQ(MaxMonoid<int>::identity(), std::numeric_limits<int>::lowest());
  EXPECT_EQ(MinMonoid<double>::identity(),
            std::numeric_limits<double>::max());
  EXPECT_FALSE(LogicalOrMonoid<bool>::identity());
  EXPECT_TRUE(LogicalAndMonoid<bool>::identity());
  EXPECT_FALSE(LogicalXorMonoid<bool>::identity());
}

// Property sweep: monoid laws over a value sample.
template <typename MonoidT>
void check_monoid_laws(const std::vector<typename MonoidT::ScalarType>& xs) {
  MonoidT m;
  using T = typename MonoidT::ScalarType;
  const T id = MonoidT::identity();
  for (T a : xs) {
    EXPECT_EQ(m(a, id), a) << "right identity";
    EXPECT_EQ(m(id, a), a) << "left identity";
    for (T b : xs) {
      EXPECT_EQ(m(a, b), m(b, a)) << "commutativity";
      for (T c : xs) {
        EXPECT_EQ(m(m(a, b), c), m(a, m(b, c))) << "associativity";
      }
    }
  }
}

TEST(AlgebraProperty, MonoidLaws) {
  const std::vector<int> xs{-3, 0, 1, 7, 100};
  check_monoid_laws<PlusMonoid<int>>(xs);
  check_monoid_laws<TimesMonoid<int>>({-2, 0, 1, 3});
  check_monoid_laws<MinMonoid<int>>(xs);
  check_monoid_laws<MaxMonoid<int>>(xs);
  check_monoid_laws<LogicalOrMonoid<bool>>({false, true});
  check_monoid_laws<LogicalAndMonoid<bool>>({false, true});
}

// Property sweep: semiring laws — ⊕-identity is ⊗-annihilator, and ⊗
// distributes over ⊕ on the sample.
template <typename SR>
void check_semiring_laws(const std::vector<typename SR::ScalarType>& xs) {
  SR sr;
  using T = typename SR::ScalarType;
  const T zero = SR::zero();
  for (T a : xs) {
    EXPECT_EQ(sr.mult(a, zero), zero) << "right annihilator";
    EXPECT_EQ(sr.mult(zero, a), zero) << "left annihilator";
    for (T b : xs) {
      for (T c : xs) {
        EXPECT_EQ(sr.mult(a, sr.add(b, c)), sr.add(sr.mult(a, b), sr.mult(a, c)))
            << "left distributivity";
      }
    }
  }
}

TEST(AlgebraProperty, ArithmeticSemiringLaws) {
  check_semiring_laws<ArithmeticSemiring<int>>({-2, 0, 1, 5});
}

TEST(AlgebraProperty, LogicalSemiringLaws) {
  check_semiring_laws<LogicalSemiring<bool>>({false, true});
}

TEST(AlgebraProperty, MinPlusSemiringLaws) {
  // Annihilator of + in the min-plus ring is +inf (Min identity); use
  // values far from overflow.
  check_semiring_laws<MinPlusSemiring<double>>({0.0, 1.0, 5.0, 100.0});
}

TEST(AlgebraProperty, MaxTimesSemiringOnNonNegatives) {
  MaxTimesSemiring<double> sr;
  EXPECT_DOUBLE_EQ(sr.add(2.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(sr.mult(2.0, 3.0), 6.0);
}

TEST(Algebra, SelectSemirings) {
  MinSelect2ndSemiring<int> s2;
  EXPECT_EQ(s2.mult(7, 3), 3);
  EXPECT_EQ(s2.add(7, 3), 3);
  MinSelect1stSemiring<int> s1;
  EXPECT_EQ(s1.mult(7, 3), 7);
  MaxSelect1stSemiring<int> m1;
  EXPECT_EQ(m1.add(7, 3), 7);
  MaxSelect2ndSemiring<int> m2;
  EXPECT_EQ(m2.mult(7, 3), 3);
}

TEST(Algebra, ConceptsMatch) {
  static_assert(MonoidType<PlusMonoid<int>>);
  static_assert(MonoidType<MinMonoid<double>>);
  static_assert(SemiringType<ArithmeticSemiring<int>>);
  static_assert(SemiringType<LogicalSemiring<bool>>);
  SUCCEED();
}

}  // namespace
