// tests/serve/test_protocol.cpp — the pygb_serve acceptance suite:
// adversarial frame corpus (mirroring io/test_malformed_inputs.cpp: typed
// status out, no crash, no declared-length allocation), request grammar,
// admission control / AIMD window, per-request governor isolation, an
// in-process end-to-end server smoke, and the SIGTERM metrics-flush
// regression (docs/SERVING.md).
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "pygb/governor.hpp"
#include "pygb/obs/export.hpp"
#include "pygb/obs/obs.hpp"
#include "serve/admission.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"

namespace {

namespace fs = std::filesystem;
using namespace pygb::serve;  // NOLINT
namespace gov = pygb::governor;

// ---------------------------------------------------------------------------
// Framing: every malformed byte stream must come back as a typed
// FrameStatus — never a partial payload, never a crash, and an oversized
// DECLARED length must be rejected before any payload is read.
// ---------------------------------------------------------------------------

class FramePair : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  void send_raw(const void* data, std::size_t n) {
    ASSERT_EQ(::write(fds_[0], data, n), static_cast<ssize_t>(n));
  }
  void close_writer() {
    ::close(fds_[0]);
    fds_[0] = -1;
  }
  int reader() const { return fds_[1]; }

  int fds_[2] = {-1, -1};
};

TEST_F(FramePair, RoundTrip) {
  ASSERT_TRUE(write_frame(fds_[0], "hello frames"));
  std::string payload;
  EXPECT_EQ(read_frame(reader(), payload, 1024), FrameStatus::kOk);
  EXPECT_EQ(payload, "hello frames");
}

TEST_F(FramePair, EmptyFrameIsOk) {
  ASSERT_TRUE(write_frame(fds_[0], ""));
  std::string payload = "stale";
  EXPECT_EQ(read_frame(reader(), payload, 1024), FrameStatus::kOk);
  EXPECT_TRUE(payload.empty());
}

TEST_F(FramePair, CleanEofIsClosed) {
  close_writer();
  std::string payload;
  EXPECT_EQ(read_frame(reader(), payload, 1024), FrameStatus::kClosed);
}

TEST_F(FramePair, TruncatedLengthPrefix) {
  const unsigned char two[2] = {0x10, 0x00};
  send_raw(two, sizeof two);
  close_writer();
  std::string payload;
  EXPECT_EQ(read_frame(reader(), payload, 1024), FrameStatus::kTruncated);
  EXPECT_TRUE(payload.empty());
}

TEST_F(FramePair, MidFrameDisconnect) {
  // Declares 100 bytes, delivers 10, dies.
  const unsigned char prefix[4] = {100, 0, 0, 0};
  send_raw(prefix, sizeof prefix);
  send_raw("0123456789", 10);
  close_writer();
  std::string payload;
  EXPECT_EQ(read_frame(reader(), payload, 1024), FrameStatus::kTruncated);
  EXPECT_TRUE(payload.empty());  // no partial payload escapes
}

TEST_F(FramePair, OversizedDeclaredLengthRejectedBeforePayload) {
  // Declares 4 GiB-ish. The reader must reject on the prefix alone — the
  // payload bytes are never requested (nothing else is written here, so a
  // read attempt would block forever and the test would time out).
  const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};
  send_raw(prefix, sizeof prefix);
  std::string payload;
  EXPECT_EQ(read_frame(reader(), payload, max_request_bytes()),
            FrameStatus::kTooLarge);
  EXPECT_TRUE(payload.empty());
}

TEST_F(FramePair, GarbageProgramBytesParseToTypedError) {
  ASSERT_TRUE(write_frame(fds_[0], "\x7f\x45\x4c\x46 not a program \xff"));
  std::string payload;
  ASSERT_EQ(read_frame(reader(), payload, 1024), FrameStatus::kOk);
  Request req;
  std::string error;
  EXPECT_FALSE(parse_request(payload, req, error));
  EXPECT_NE(error.find("magic"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Request / response grammar
// ---------------------------------------------------------------------------

TEST(ServeGrammar, RequestRoundTrip) {
  Request req;
  req.algo = "pagerank";
  req.graph = "rmat:6";
  req.damping = 0.9;
  req.mem_limit_bytes = 1 << 20;
  req.timeout_ms = 1234;
  Request parsed;
  std::string error;
  ASSERT_TRUE(parse_request(render_request(req), parsed, error)) << error;
  EXPECT_EQ(parsed.algo, "pagerank");
  EXPECT_EQ(parsed.graph, "rmat:6");
  EXPECT_DOUBLE_EQ(parsed.damping, 0.9);
  EXPECT_EQ(parsed.mem_limit_bytes, 1u << 20);
  EXPECT_EQ(parsed.timeout_ms, 1234u);
}

TEST(ServeGrammar, RejectsUnknownKeysAndBadNumbers) {
  Request req;
  std::string error;
  EXPECT_FALSE(parse_request("pygb-serve/1\nalgo=bfs\ngraph=er:8\nfoo=1\n",
                             req, error));
  EXPECT_NE(error.find("unknown request key"), std::string::npos);
  EXPECT_FALSE(parse_request(
      "pygb-serve/1\nalgo=bfs\ngraph=er:8\nsource=12x\n", req, error));
  EXPECT_FALSE(parse_request(
      "pygb-serve/1\nalgo=bfs\ngraph=er:8\ndamping=1.5\n", req, error));
  EXPECT_FALSE(parse_request("pygb-serve/1\ngraph=er:8\n", req, error));
  EXPECT_NE(error.find("algo"), std::string::npos);
  EXPECT_FALSE(parse_request("pygb-serve/1\nalgo=evil\ngraph=er:8\n", req,
                             error));
}

TEST(ServeGrammar, ResponseRoundTripWithResultLines) {
  Response resp;
  resp.code = Code::kOk;
  resp.elapsed_ms = 42;
  resp.result = "nrows=64\ndepth=3\n";
  Response parsed;
  std::string error;
  ASSERT_TRUE(parse_response(resp.render(), parsed, error)) << error;
  EXPECT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.elapsed_ms, 42u);
  EXPECT_NE(parsed.result.find("depth=3"), std::string::npos);

  Response overloaded;
  overloaded.code = Code::kOverloaded;
  overloaded.error = "queue full\nwith a sneaky newline";
  overloaded.retry_after_ms = 250;
  ASSERT_TRUE(parse_response(overloaded.render(), parsed, error)) << error;
  EXPECT_EQ(parsed.code, Code::kOverloaded);
  EXPECT_EQ(parsed.retry_after_ms, 250u);
  EXPECT_EQ(parsed.error.find('\n'), std::string::npos);  // sanitized
}

// ---------------------------------------------------------------------------
// Admission control + AIMD window
// ---------------------------------------------------------------------------

TEST(ServeAdmission, QueueCapSheds) {
  AdmissionConfig cfg;
  cfg.max_queue = 4;
  cfg.retry_after_ms = 99;
  AdmissionController ctl(cfg, 2);
  EXPECT_TRUE(ctl.try_admit(0).admitted);
  EXPECT_TRUE(ctl.try_admit(3).admitted);
  const Verdict v = ctl.try_admit(4);
  EXPECT_FALSE(v.admitted);
  EXPECT_EQ(v.retry_after_ms, 99u);
  EXPECT_NE(v.reason.find("queue full"), std::string::npos);
}

TEST(ServeAdmission, AimdWindowHalvesOnTransientAndRecovers) {
  AdmissionConfig cfg;
  AdmissionController ctl(cfg, 8);
  EXPECT_EQ(ctl.window(), 8u);
  ASSERT_TRUE(ctl.acquire_slot(10));
  ctl.release_slot(/*transient_failure=*/true);
  EXPECT_EQ(ctl.window(), 4u);
  ASSERT_TRUE(ctl.acquire_slot(10));
  ctl.release_slot(true);
  EXPECT_EQ(ctl.window(), 2u);
  // Multiplicative decrease floors at 1 — the server always probes.
  ASSERT_TRUE(ctl.acquire_slot(10));
  ctl.release_slot(true);
  ASSERT_TRUE(ctl.acquire_slot(10));
  ctl.release_slot(true);
  EXPECT_EQ(ctl.window(), 1u);
  // Additive recovery, capped at the worker count.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(ctl.acquire_slot(10));
    ctl.release_slot(false);
  }
  EXPECT_EQ(ctl.window(), 8u);
}

TEST(ServeAdmission, NarrowWindowBoundsConcurrencyAndTimesOut) {
  AdmissionConfig cfg;
  AdmissionController ctl(cfg, 4);
  ASSERT_TRUE(ctl.acquire_slot(10));
  ctl.release_slot(true);  // window: 2
  ctl.release_slot(true);  // window: 1 (extra release is clamped)
  ASSERT_TRUE(ctl.acquire_slot(10));
  EXPECT_FALSE(ctl.acquire_slot(20));  // window full → bounded wait → shed
  ctl.release_slot(false);
  EXPECT_TRUE(ctl.acquire_slot(10));
  ctl.release_slot(false);
}

// ---------------------------------------------------------------------------
// Per-request governor isolation (the PoolApi v4 spine)
// ---------------------------------------------------------------------------

TEST(ServeIsolation, StickyCancelHitsOnlyItsOwnContext) {
  gov::RequestContext a, b;
  a.cancel();
  {
    gov::ThreadBind bind(&a);
    EXPECT_THROW(gov::checkpoint(), gov::Cancelled);
    // Sticky: NOT consumed — the request's next op dies too.
    EXPECT_THROW(gov::checkpoint(), gov::Cancelled);
  }
  {
    gov::ThreadBind bind(&b);
    EXPECT_NO_THROW(gov::checkpoint());  // the other tenant is untouched
  }
  EXPECT_NO_THROW(gov::checkpoint());  // and so is the default context
}

TEST(ServeIsolation, RequestDeadlineFiresBetweenOps) {
  gov::RequestContext ctx;
  ctx.set_request_deadline_ms(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  gov::ThreadBind bind(&ctx);
  EXPECT_THROW(gov::checkpoint(), gov::DeadlineExceeded);
}

TEST(ServeIsolation, RequestBudgetIsolatedFromProcessGauge) {
  const std::uint64_t base = gov::stats().mem_current_bytes;
  gov::RequestContext ctx;
  ctx.set_mem_limit_bytes(1000);
  gov::ThreadBind bind(&ctx);
  EXPECT_THROW(gov::mem_reserve(2000), gov::ResourceExhausted);
  // The refused charge retained nothing anywhere.
  EXPECT_EQ(ctx.mem_current_bytes(), 0u);
  EXPECT_EQ(gov::stats().mem_current_bytes, base);
  // An admitted charge lands on BOTH gauges (request budget + process).
  gov::mem_reserve(500);
  EXPECT_EQ(ctx.mem_current_bytes(), 500u);
  EXPECT_EQ(gov::stats().mem_current_bytes, base + 500);
  gov::mem_release(500);
  EXPECT_EQ(ctx.mem_current_bytes(), 0u);
  EXPECT_EQ(gov::stats().mem_current_bytes, base);
}

TEST(ServeIsolation, GlobalCancelDoesNotTouchBoundTenants) {
  gov::RequestContext ctx;
  gov::cancel();  // aimed at the default context
  {
    gov::ThreadBind bind(&ctx);
    EXPECT_NO_THROW(gov::checkpoint());
  }
  // The default context still owes one Cancelled (one-shot, consumed).
  EXPECT_THROW(gov::checkpoint(), gov::Cancelled);
  EXPECT_NO_THROW(gov::checkpoint());
}

// ---------------------------------------------------------------------------
// End-to-end: in-process server over a real Unix socket
// ---------------------------------------------------------------------------

class ServeSmoke : public ::testing::Test {
 protected:
  void SetUp() override {
    sock_ = "/tmp/pygb_serve_test_" + std::to_string(::getpid()) + ".sock";
    ServerConfig cfg;
    cfg.target = "unix:" + sock_;
    cfg.threads = 2;
    cfg.request_timeout_ms = 10000;
    cfg.drain_ms = 2000;
    server_ = std::make_unique<Server>(cfg);
    std::string error;
    ASSERT_TRUE(server_->start(error)) << error;
    runner_ = std::thread([this] { exit_code_ = server_->run(); });
  }
  void TearDown() override {
    if (runner_.joinable()) {
      server_->request_shutdown();
      runner_.join();
    }
    EXPECT_EQ(exit_code_, 0);  // every shutdown in this suite drains clean
    server_.reset();
    ::unlink(sock_.c_str());
  }

  Response call(const Request& req) {
    std::string error;
    const int fd = connect_client("unix:" + sock_, error);
    EXPECT_GE(fd, 0) << error;
    Response resp;
    if (fd < 0) return resp;
    EXPECT_TRUE(write_frame(fd, render_request(req)));
    std::string payload;
    EXPECT_EQ(read_frame(fd, payload, max_request_bytes()), FrameStatus::kOk);
    EXPECT_TRUE(parse_response(payload, resp, error)) << error;
    ::close(fd);
    return resp;
  }

  std::string sock_;
  std::unique_ptr<Server> server_;
  std::thread runner_;
  int exit_code_ = -1;
};

TEST_F(ServeSmoke, MixedAlgorithmsReturnTypedOkResults) {
  Request bfs;
  bfs.algo = "bfs";
  bfs.graph = "ring:32";
  Response r = call(bfs);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_NE(r.result.find("nrows=32"), std::string::npos);
  EXPECT_NE(r.result.find("reached=32"), std::string::npos);

  Request pr;
  pr.algo = "pagerank";
  pr.graph = "er:64";
  pr.max_iters = 30;
  r = call(pr);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_NE(r.result.find("sum="), std::string::npos);

  Request sssp;
  sssp.algo = "sssp";
  sssp.graph = "ring:32";
  r = call(sssp);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_NE(r.result.find("checksum="), std::string::npos);
}

TEST_F(ServeSmoke, MalformedAndHostileInputsGetTypedReplies) {
  std::string error;
  // Unknown algorithm → invalid_request.
  Request bad;
  bad.algo = "bfs";
  bad.graph = "nope:1";
  Response r = call(bad);
  EXPECT_EQ(r.code, Code::kInvalidRequest);
  EXPECT_NE(r.error.find("unknown graph family"), std::string::npos);

  // Oversized declared frame → typed invalid_request, connection served.
  int fd = connect_client("unix:" + sock_, error);
  ASSERT_GE(fd, 0) << error;
  const unsigned char huge[4] = {0xff, 0xff, 0xff, 0x7f};
  ASSERT_EQ(::write(fd, huge, 4), 4);
  std::string payload;
  ASSERT_EQ(read_frame(fd, payload, max_request_bytes()), FrameStatus::kOk);
  Response resp;
  ASSERT_TRUE(parse_response(payload, resp, error)) << error;
  EXPECT_EQ(resp.code, Code::kInvalidRequest);
  EXPECT_NE(resp.error.find("PYGB_SERVE_MAX_REQUEST_BYTES"),
            std::string::npos);
  ::close(fd);

  // Raw garbage payload → typed invalid_request.
  fd = connect_client("unix:" + sock_, error);
  ASSERT_GE(fd, 0) << error;
  ASSERT_TRUE(write_frame(fd, "GET / HTTP/1.1\r\n\r\n"));
  ASSERT_EQ(read_frame(fd, payload, max_request_bytes()), FrameStatus::kOk);
  ASSERT_TRUE(parse_response(payload, resp, error)) << error;
  EXPECT_EQ(resp.code, Code::kInvalidRequest);
  ::close(fd);

  // Mid-frame disconnect: server must just move on (no reply owed) —
  // proven by the next request working.
  fd = connect_client("unix:" + sock_, error);
  ASSERT_GE(fd, 0) << error;
  const unsigned char prefix[4] = {100, 0, 0, 0};
  ASSERT_EQ(::write(fd, prefix, 4), 4);
  ::close(fd);
  Request ok;
  ok.algo = "bfs";
  ok.graph = "ring:16";
  EXPECT_TRUE(call(ok).ok());
}

TEST_F(ServeSmoke, PerRequestDeadlineReturnsTypedDeadlineExceeded) {
  Request req;
  req.algo = "pagerank";
  req.graph = "er:256";
  req.threshold = 0.0;      // never converges
  req.max_iters = 1000000;  // bounded by the deadline instead
  req.timeout_ms = 50;
  const Response r = call(req);
  EXPECT_EQ(r.code, Code::kDeadlineExceeded) << r.error;
  // One tenant's deadline left the server fully serviceable.
  Request ok;
  ok.algo = "bfs";
  ok.graph = "ring:16";
  EXPECT_TRUE(call(ok).ok());
}

TEST_F(ServeSmoke, PerRequestBudgetReturnsTypedResourceExhausted) {
  Request req;
  req.algo = "pagerank";
  req.graph = "er:256";
  req.max_iters = 30;
  req.mem_limit_bytes = 64;  // absurdly small: first staging charge trips
  const Response r = call(req);
  EXPECT_EQ(r.code, Code::kResourceExhausted) << r.error;
  EXPECT_NE(r.error.find("request budget"), std::string::npos) << r.error;
  Request ok;
  ok.algo = "bfs";
  ok.graph = "ring:16";
  EXPECT_TRUE(call(ok).ok());
}

// ---------------------------------------------------------------------------
// Satellite regression: the at-exit metrics flush must also run when the
// process dies to SIGTERM (install_termination_flush), preserving the
// killed-by-signal wait status.
// ---------------------------------------------------------------------------

TEST(TerminationFlush, SigtermFlushesMetricsAndPreservesWaitStatus) {
  const std::string path = "/tmp/pygb_term_flush_" +
                           std::to_string(::getpid()) + ".json";
  ::unlink(path.c_str());
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: arm the flush exactly like a daemon would, then die to
    // SIGTERM with no chance for atexit to run.
    pygb::obs::set_metrics_enabled(true);
    pygb::obs::set_export_paths(path, "");
    pygb::obs::install_termination_flush();
    ::raise(SIGTERM);
    ::_exit(97);  // unreachable if the handler re-raises correctly
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  EXPECT_TRUE(WIFSIGNALED(status));  // still "killed by SIGTERM"
  EXPECT_EQ(WTERMSIG(status), SIGTERM);
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "metrics file missing after SIGTERM";
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("pygb.metrics"), std::string::npos);
  ::unlink(path.c_str());
}

}  // namespace
