#!/usr/bin/env bash
# End-to-end crash attribution (observability acceptance): a fault-injected
# SIGSEGV *inside a freshly JIT-compiled kernel* must produce a report in
# PYGB_CRASH_DIR that attributes the faulting pc back to the DSL function,
# the module key, and the generated-source kernel line — i.e. the
# kernel_entry_guard null-deref fires FROM MODULE CODE, the loader's module
# map resolves it, and the async-signal-safe handler writes the whole story
# down before the process dies with the default SIGSEGV disposition.
#
# usage: crash_report.sh <path-to-pygb_cli>
set -euo pipefail

CLI="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() { echo "FAIL: $1"; shift; for f in "$@"; do echo "--- $f"; cat "$f" || true; done; exit 1; }

printf '0 1 1.0\n1 2 1.0\n2 0 1.0\n2 1 1.0\n' > "$TMP/ring.txt"

export PYGB_CACHE_DIR="$TMP/cache"
export PYGB_CRASH_DIR="$TMP/crash"
export PYGB_JIT_MODE=jit            # force the JIT tier: no static bailout
export PYGB_FAULTS="kernel_crash:fail:p=1"

# --tier whole dispatches the whole algorithm as ONE DSL function
# ("algo_pagerank"), so the crashing module is deterministically known.
rc=0
"$CLI" pagerank "$TMP/ring.txt" --tier whole \
  > "$TMP/run.out" 2>&1 || rc=$?

# 139 = 128 + SIGSEGV: the handler must re-raise with the default
# disposition, not swallow the signal.
[ "$rc" -eq 139 ] || fail "expected SIGSEGV death (139), got rc=$rc" "$TMP/run.out"

REPORTS=("$TMP"/crash/*.report)
[ -e "${REPORTS[0]}" ] || fail "no crash report written to PYGB_CRASH_DIR" "$TMP/run.out"
[ "${#REPORTS[@]}" -eq 1 ] || fail "expected exactly one report, got ${#REPORTS[@]}"
REPORT="${REPORTS[0]}"

require() {
  grep -q "$1" "$REPORT" || fail "report missing: $1" "$REPORT"
}

require "^pygb crash report"
require "^schema: pygb.crash"
require "^signal: 11 (SIGSEGV)"

# The heart of the test — JIT-frame attribution. The faulting pc must land
# inside the dlopen'd module and resolve to the DSL function, the module
# key, and the #line-anchored kernel line of the generated source.
grep -q "(no frames inside JIT modules)" "$REPORT" && \
  fail "crash was not attributed to the JIT module" "$REPORT"
require "func: algo_pagerank"
require "module_key: algo_pagerank|"
grep -Eq "generated_line: [1-9][0-9]*" "$REPORT" || \
  fail "report missing a nonzero generated_line" "$REPORT"

# The module map section must list the loaded module too.
require "^jit_modules:"
require "func=algo_pagerank"

# Flight recorder tail: the compile, the kernel-entry note dropped from
# inside the module via the injected PoolApi, and the fault firing must
# all be visible in the moments before death.
require "^flight_recorder:"
require "compile_end"
require "kernel_crash"

# Completeness: a concurrently-dying process must never leave a torn file.
tail -n 1 "$REPORT" | grep -q "end of report" || \
  fail "report is truncated" "$REPORT"

# The cache kept the generated source AND its .srcmap sidecar, so the
# report's pointer ("dsl_source: see .srcmap sidecar ...") is honest.
SRCMAPS=$(find "$TMP/cache" -name '*.srcmap' | wc -l)
[ "$SRCMAPS" -ge 1 ] || fail ".srcmap sidecar missing from the cache"
grep -q "algo_pagerank" "$TMP"/cache/*.srcmap || \
  fail ".srcmap sidecar does not name the DSL function"

echo "PASS: crash attributed to algo_pagerank (report: $(basename "$REPORT"))"
