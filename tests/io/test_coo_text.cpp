// Tests: the triplet-text fast path and the boxed "Python list" slow path
// (Fig. 11 ingestion pipelines), including their equivalence.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "io/coo_text.hpp"

namespace {

using namespace pygb::io;  // NOLINT

class CooTextFile : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("pygb_coo_test_" + std::to_string(::getpid()) + ".txt"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CooTextFile, WriteReadRoundTrip) {
  Coo coo;
  coo.nrows = 5;
  coo.ncols = 4;
  coo.rows = {0, 2, 4};
  coo.cols = {1, 3, 0};
  coo.vals = {1.5, 2.0, -3.25};
  write_coo_text(path_, coo);
  Coo back = read_coo_text(path_);
  EXPECT_EQ(back.nrows, 5u);
  EXPECT_EQ(back.ncols, 4u);
  ASSERT_EQ(back.nnz(), 3u);
  EXPECT_DOUBLE_EQ(back.vals[2], -3.25);
}

TEST_F(CooTextFile, ShapeInferredWithoutHeader) {
  {
    std::ofstream out(path_);
    out << "0 1 1.0\n3 2 2.0\n";
  }
  Coo coo = read_coo_text(path_);
  EXPECT_EQ(coo.nrows, 4u);
  EXPECT_EQ(coo.ncols, 3u);
}

TEST_F(CooTextFile, BadLineThrows) {
  {
    std::ofstream out(path_);
    out << "0 1\n";
  }
  EXPECT_THROW(read_coo_text(path_), std::runtime_error);
}

TEST_F(CooTextFile, MissingFileThrows) {
  EXPECT_THROW(read_coo_text("/nonexistent/x.txt"), std::runtime_error);
}

TEST_F(CooTextFile, PylistPathMatchesFastPath) {
  Coo coo;
  coo.nrows = 6;
  coo.ncols = 6;
  coo.rows = {0, 1, 5};
  coo.cols = {5, 0, 2};
  coo.vals = {1.0, 2.5, 3.0};
  write_coo_text(path_, coo);

  const Coo fast = read_coo_text(path_);
  const auto lists = read_file_as_pylists(path_);
  const Coo slow = pylists_to_coo(lists);

  EXPECT_EQ(fast.nrows, slow.nrows);
  EXPECT_EQ(fast.ncols, slow.ncols);
  ASSERT_EQ(fast.nnz(), slow.nnz());
  for (std::size_t k = 0; k < fast.nnz(); ++k) {
    EXPECT_EQ(fast.rows[k], slow.rows[k]);
    EXPECT_EQ(fast.cols[k], slow.cols[k]);
    EXPECT_DOUBLE_EQ(fast.vals[k], slow.vals[k]);
  }
}

TEST(PyLists, TokensAreBoxedWithRuntimeTypes) {
  // Integers box to long long, reals to double, everything else to string.
  const auto lists = [&] {
    const auto path = std::filesystem::temp_directory_path() /
                      "pygb_boxed_test.txt";
    {
      std::ofstream out(path);
      out << "12 3.5 hello\n";
    }
    auto r = read_file_as_pylists(path.string());
    std::filesystem::remove(path);
    return r;
  }();
  ASSERT_EQ(lists.size(), 1u);
  ASSERT_EQ(lists[0].size(), 3u);
  EXPECT_TRUE(std::holds_alternative<long long>(*lists[0][0]));
  EXPECT_TRUE(std::holds_alternative<double>(*lists[0][1]));
  EXPECT_TRUE(std::holds_alternative<std::string>(*lists[0][2]));
}

TEST(PyLists, CooToPylistsRoundTrip) {
  Coo coo;
  coo.nrows = 3;
  coo.ncols = 3;
  coo.rows = {0, 2};
  coo.cols = {1, 2};
  coo.vals = {4.0, 5.5};
  const auto lists = coo_to_pylists(coo);
  ASSERT_EQ(lists.size(), 2u);
  EXPECT_EQ(std::get<long long>(*lists[0][0]), 0);
  EXPECT_EQ(std::get<long long>(*lists[0][1]), 1);
  EXPECT_DOUBLE_EQ(std::get<double>(*lists[0][2]), 4.0);
  // Feeding the extract back through the slow parser restores the data
  // (shape is inferred since the header row is absent).
  Coo back = pylists_to_coo(lists);
  ASSERT_EQ(back.nnz(), 2u);
  EXPECT_DOUBLE_EQ(back.vals[1], 5.5);
}

TEST(PyLists, NonNumericTripletThrows) {
  std::vector<PyList> lists;
  PyList row;
  row.push_back(std::make_unique<PyValue>(std::string("x")));
  row.push_back(std::make_unique<PyValue>(1LL));
  row.push_back(std::make_unique<PyValue>(2.0));
  lists.push_back(std::move(row));
  EXPECT_THROW(pylists_to_coo(lists), std::runtime_error);
}

}  // namespace
