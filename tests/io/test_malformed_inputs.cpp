// Tests: adversarial/malformed ingestion corpus (docs/ROBUSTNESS.md).
// Every case must surface as a typed pygb::io::ParseError (or a governor
// ResourceExhausted for oversized-but-well-formed input), with no partial
// output and no allocation sized by an untrusted header field. The suite
// also runs under the ASan+UBSan CI job.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "io/coo_text.hpp"
#include "io/errors.hpp"
#include "io/matrix_market.hpp"
#include "pygb/governor.hpp"

namespace {

using pygb::io::Coo;
using pygb::io::ParseError;
using pygb::io::read_coo_text;
using pygb::io::read_matrix_market;

/// Restore an unlimited budget no matter how the test exits.
class BudgetGuard {
 public:
  explicit BudgetGuard(std::uint64_t limit) {
    pygb::governor::set_mem_limit_bytes(limit);
  }
  ~BudgetGuard() { pygb::governor::set_mem_limit_bytes(0); }
};

std::string temp_file(const std::string& name, const std::string& contents) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary);
  out << contents;
  return path;
}

Coo parse_mm(const std::string& text) {
  std::istringstream in(text);
  return read_matrix_market(in, "test");
}

// --- Matrix Market ---------------------------------------------------------

TEST(MalformedMM, BadBannerIsTyped) {
  EXPECT_THROW(parse_mm("%%NotMatrixMarket matrix coordinate real general\n"
                        "2 2 1\n1 1 1\n"),
               ParseError);
}

TEST(MalformedMM, ParseErrorIsARuntimeError) {
  // Callers written against the old untyped throw keep working.
  EXPECT_THROW(parse_mm("garbage"), std::runtime_error);
}

TEST(MalformedMM, HugeNnzClaimDoesNotPreallocate) {
  // A 60-byte file claiming ~10^13 entries. The reserve must be clamped to
  // what the stream could hold, so with a modest 1 MiB budget in force the
  // failure is the typed truncation error, NOT a budget rejection (and
  // certainly not a terabyte allocation).
  BudgetGuard budget(1u << 20);
  EXPECT_THROW(parse_mm("%%MatrixMarket matrix coordinate real general\n"
                        "1000 1000 9999999999999\n"
                        "1 1 1.0\n"),
               ParseError);
}

TEST(MalformedMM, OversizedInputHitsTheBudgetBeforeAllocating) {
  // Well-formed file, absurdly small budget: the governor rejects the
  // staged-array charge up front.
  BudgetGuard budget(16);
  EXPECT_THROW(parse_mm("%%MatrixMarket matrix coordinate real general\n"
                        "3 3 3\n"
                        "1 1 1\n2 2 2\n3 3 3\n"),
               pygb::governor::ResourceExhausted);
}

TEST(MalformedMM, TruncatedEntryList) {
  EXPECT_THROW(parse_mm("%%MatrixMarket matrix coordinate real general\n"
                        "3 3 3\n"
                        "1 1 1.0\n"),
               ParseError);
}

TEST(MalformedMM, TruncatedEntryValue) {
  EXPECT_THROW(parse_mm("%%MatrixMarket matrix coordinate real general\n"
                        "3 3 1\n"
                        "1 1\n"),
               ParseError);
}

TEST(MalformedMM, IndexOutOfRange) {
  EXPECT_THROW(parse_mm("%%MatrixMarket matrix coordinate real general\n"
                        "3 3 1\n"
                        "4 1 1.0\n"),
               ParseError);
}

TEST(MalformedMM, NegativeIndexRejectedBeforeUnsignedWrap) {
  // -1 cast to IndexType would be 2^64-1; the range check must fire first.
  EXPECT_THROW(parse_mm("%%MatrixMarket matrix coordinate real general\n"
                        "3 3 1\n"
                        "-1 1 1.0\n"),
               ParseError);
}

TEST(MalformedMM, NegativeDimensions) {
  EXPECT_THROW(parse_mm("%%MatrixMarket matrix coordinate real general\n"
                        "-3 3 1\n1 1 1.0\n"),
               ParseError);
}

TEST(MalformedMM, NegativeNnz) {
  EXPECT_THROW(parse_mm("%%MatrixMarket matrix coordinate real general\n"
                        "3 3 -1\n"),
               ParseError);
}

TEST(MalformedMM, NonFiniteIntegerFieldRejected) {
  EXPECT_THROW(parse_mm("%%MatrixMarket matrix coordinate integer general\n"
                        "2 2 2\n"
                        "1 1 nan\n"
                        "2 2 inf\n"),
               ParseError);
}

TEST(MalformedMM, NonFiniteRealFieldStillParses) {
  // IEEE specials are representable in a real field; only the integer
  // field rejects them.
  Coo coo = parse_mm("%%MatrixMarket matrix coordinate real general\n"
                     "2 2 1\n"
                     "1 1 nan\n");
  ASSERT_EQ(coo.nnz(), 1u);
  EXPECT_TRUE(std::isnan(coo.vals[0]));
}

TEST(MalformedMM, GarbageEntryLine) {
  EXPECT_THROW(parse_mm("%%MatrixMarket matrix coordinate real general\n"
                        "3 3 1\n"
                        "one one 1.0\n"),
               ParseError);
}

TEST(MalformedMM, CrlfLineEndingsParse) {
  Coo coo = parse_mm("%%MatrixMarket matrix coordinate real general\r\n"
                     "% comment\r\n"
                     "2 2 2\r\n"
                     "1 2 5.5\r\n"
                     "2 1 -2\r\n");
  EXPECT_EQ(coo.nrows, 2u);
  ASSERT_EQ(coo.nnz(), 2u);
  EXPECT_DOUBLE_EQ(coo.vals[0], 5.5);
}

TEST(MalformedMM, EmptyFile) {
  EXPECT_THROW(parse_mm(""), ParseError);
}

// --- COO text --------------------------------------------------------------

TEST(MalformedCooText, NegativeIndexRejected) {
  const auto path = temp_file("neg_index.coo", "# 3 3\n-1 2 1.0\n");
  EXPECT_THROW(read_coo_text(path), ParseError);
  std::remove(path.c_str());
}

TEST(MalformedCooText, IndexOutsideDeclaredShape) {
  const auto path = temp_file("oob_index.coo", "# 3 3\n5 1 1.0\n");
  EXPECT_THROW(read_coo_text(path), ParseError);
  std::remove(path.c_str());
}

TEST(MalformedCooText, NegativeHeaderDims) {
  const auto path = temp_file("neg_dims.coo", "# -3 3\n1 1 1.0\n");
  EXPECT_THROW(read_coo_text(path), ParseError);
  std::remove(path.c_str());
}

TEST(MalformedCooText, GarbageTripletLine) {
  const auto path = temp_file("garbage.coo", "# 3 3\nnot a triplet\n");
  EXPECT_THROW(read_coo_text(path), ParseError);
  std::remove(path.c_str());
}

TEST(MalformedCooText, BudgetRejectionBeforeGrowth) {
  const auto path = temp_file("budget.coo", "# 3 3\n0 0 1.0\n1 1 2.0\n");
  BudgetGuard budget(1024);  // below the first 4096-entry charge batch
  EXPECT_THROW(read_coo_text(path), pygb::governor::ResourceExhausted);
  std::remove(path.c_str());
}

TEST(MalformedCooText, WellFormedStillParses) {
  const auto path = temp_file("ok.coo", "# 2 2\n0 1 5.5\n1 0 -2\n");
  Coo coo = read_coo_text(path);
  EXPECT_EQ(coo.nrows, 2u);
  ASSERT_EQ(coo.nnz(), 2u);
  std::remove(path.c_str());
}

}  // namespace
