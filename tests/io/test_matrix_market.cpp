// Tests: Matrix Market reader/writer.
#include <gtest/gtest.h>

#include <sstream>

#include "io/matrix_market.hpp"

namespace {

using pygb::io::Coo;
using pygb::io::read_matrix_market;
using pygb::io::to_matrix;
using pygb::io::write_matrix_market;

TEST(MatrixMarket, ReadGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 3 2\n"
      "1 2 5.5\n"
      "3 1 -2\n");
  Coo coo = read_matrix_market(in, "test");
  EXPECT_EQ(coo.nrows, 3u);
  EXPECT_EQ(coo.ncols, 3u);
  ASSERT_EQ(coo.nnz(), 2u);
  EXPECT_EQ(coo.rows[0], 0u);
  EXPECT_EQ(coo.cols[0], 1u);
  EXPECT_DOUBLE_EQ(coo.vals[0], 5.5);
  EXPECT_EQ(coo.rows[1], 2u);
  EXPECT_EQ(coo.cols[1], 0u);
}

TEST(MatrixMarket, SymmetricExpansion) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 4\n"
      "3 3 7\n");  // diagonal entry not duplicated
  Coo coo = read_matrix_market(in, "test");
  EXPECT_EQ(coo.nnz(), 3u);
  auto m = to_matrix<double>(coo);
  EXPECT_DOUBLE_EQ(m.extractElement(1, 0), 4);
  EXPECT_DOUBLE_EQ(m.extractElement(0, 1), 4);
  EXPECT_DOUBLE_EQ(m.extractElement(2, 2), 7);
}

TEST(MatrixMarket, PatternGetsUnitValues) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "1 1\n");
  Coo coo = read_matrix_market(in, "test");
  ASSERT_EQ(coo.nnz(), 1u);
  EXPECT_DOUBLE_EQ(coo.vals[0], 1.0);
}

TEST(MatrixMarket, IntegerField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 1\n"
      "2 2 42\n");
  Coo coo = read_matrix_market(in, "test");
  EXPECT_DOUBLE_EQ(coo.vals[0], 42.0);
}

TEST(MatrixMarket, ErrorOnMissingBanner) {
  std::istringstream in("2 2 0\n");
  EXPECT_THROW(read_matrix_market(in, "test"), std::runtime_error);
}

TEST(MatrixMarket, ErrorOnUnsupportedField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate complex general\n2 2 0\n");
  EXPECT_THROW(read_matrix_market(in, "test"), std::runtime_error);
}

TEST(MatrixMarket, ErrorOnBadIndex) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in, "test"), std::runtime_error);
}

TEST(MatrixMarket, ErrorOnTruncatedEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in, "test"), std::runtime_error);
}

TEST(MatrixMarket, RoundTrip) {
  Coo coo;
  coo.nrows = 4;
  coo.ncols = 5;
  coo.rows = {0, 2, 3};
  coo.cols = {1, 4, 0};
  coo.vals = {1.5, -2.0, 7.0};
  std::ostringstream out;
  write_matrix_market(out, coo);
  std::istringstream in(out.str());
  Coo back = read_matrix_market(in, "roundtrip");
  EXPECT_EQ(back.nrows, coo.nrows);
  EXPECT_EQ(back.ncols, coo.ncols);
  ASSERT_EQ(back.nnz(), coo.nnz());
  for (std::size_t k = 0; k < coo.nnz(); ++k) {
    EXPECT_EQ(back.rows[k], coo.rows[k]);
    EXPECT_EQ(back.cols[k], coo.cols[k]);
    EXPECT_DOUBLE_EQ(back.vals[k], coo.vals[k]);
  }
}

TEST(MatrixMarket, FileNotFoundThrows) {
  EXPECT_THROW(read_matrix_market("/nonexistent/path.mtx"),
               std::runtime_error);
}

TEST(CooConversion, ToMatrixAndBack) {
  Coo coo;
  coo.nrows = 3;
  coo.ncols = 3;
  coo.rows = {0, 1};
  coo.cols = {1, 2};
  coo.vals = {2.0, 3.0};
  auto m = to_matrix<int>(coo);
  EXPECT_EQ(m.extractElement(0, 1), 2);
  auto back = pygb::io::from_matrix(m);
  EXPECT_EQ(back.nnz(), 2u);
  EXPECT_EQ(back.nrows, 3u);
  EXPECT_DOUBLE_EQ(back.vals[1], 3.0);
}

}  // namespace
