#!/usr/bin/env bash
# Regenerate every paper table/figure and ablation (EXPERIMENTS.md data).
# Usage: scripts/run_experiments.sh [build-dir] [output-file]
set -euo pipefail
BUILD="${1:-build}"
OUT="${2:-bench_output.txt}"
{
  echo "# pygb experiment run: $(date -u +%Y-%m-%dT%H:%M:%SZ)"
  echo "# host: $(uname -srm), $(nproc) cpu(s)"
  for b in "$BUILD"/bench/bench_*; do
    [ -x "$b" ] || continue
    echo
    echo "===== $(basename "$b") ====="
    "$b"
  done
} 2>&1 | tee "$OUT"
