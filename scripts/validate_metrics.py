#!/usr/bin/env python3
"""Validate a pygb.metrics JSON snapshot against the checked-in schema.

Usage:
  validate_metrics.py SNAPSHOT.json [--schema tests/pygb/metrics_schema.json]

The schema file uses a small, self-contained subset of JSON Schema
(type / required / properties / additionalProperties / patternProperties /
const / minimum), validated here with only the standard library so CI
needs no extra packages.
"""

import argparse
import json
import os
import re
import sys


def fail(path, msg):
    raise SystemExit(f"validation failed at {path or '$'}: {msg}")


TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
}


def validate(value, schema, path=""):
    if "const" in schema and value != schema["const"]:
        fail(path, f"expected {schema['const']!r}, got {value!r}")
    if "type" in schema:
        check = TYPE_CHECKS.get(schema["type"])
        if check is None:
            fail(path, f"schema uses unsupported type {schema['type']!r}")
        if not check(value):
            fail(path, f"expected {schema['type']}, got "
                       f"{type(value).__name__}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool):
        if value < schema["minimum"]:
            fail(path, f"{value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                fail(path, f"missing required member {key!r}")
        props = schema.get("properties", {})
        patterns = {
            re.compile(p): s
            for p, s in schema.get("patternProperties", {}).items()
        }
        additional = schema.get("additionalProperties", True)
        for key, member in value.items():
            member_path = f"{path}.{key}" if path else key
            if key in props:
                validate(member, props[key], member_path)
                continue
            matched = False
            for pattern, sub in patterns.items():
                if pattern.search(key):
                    validate(member, sub, member_path)
                    matched = True
                    break
            if matched:
                continue
            if additional is False:
                fail(member_path, "unexpected member")
            if isinstance(additional, dict):
                validate(member, additional, member_path)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]")


def default_schema_path():
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.join(here, "..", "tests", "pygb", "metrics_schema.json")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("snapshot")
    parser.add_argument("--schema", default=default_schema_path())
    args = parser.parse_args()

    with open(args.schema, "r", encoding="utf-8") as f:
        schema = json.load(f)
    with open(args.snapshot, "r", encoding="utf-8") as f:
        doc = json.load(f)

    # Bench artifacts embed a snapshot under "metrics"; accept both.
    if doc.get("schema") == "pygb.bench":
        doc = doc["metrics"]
    validate(doc, schema)
    print(f"{args.snapshot}: valid pygb.metrics snapshot "
          f"({len(doc.get('counters', {}))} counters, "
          f"{len(doc.get('histograms', {}))} histograms)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
