#!/usr/bin/env python3
"""Merge and compare BENCH_<name>.json artifacts (bench/bench_json.hpp).

Usage:
  bench_compare.py merge OUT.json BENCH_a.json [BENCH_b.json ...]
      Combine several artifacts into one {"schema":"pygb.bench-merged"}
      document keyed by bench name (CI uploads one file per run).

  bench_compare.py compare BASE.json HEAD.json [--threshold 0.10]
      Print per-benchmark real_ns deltas between two artifacts (or two
      merged documents). Exits 1 if any shared benchmark regressed by more
      than the threshold (default 10%).

Only the Python standard library is used.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    schema = doc.get("schema")
    if schema == "pygb.bench":
        return {doc["bench"]: doc}
    if schema == "pygb.bench-merged":
        return doc["benches"]
    raise SystemExit(f"{path}: unknown schema {schema!r}")


def flatten(benches):
    """{bench}/{benchmark-name} -> record"""
    out = {}
    for bench_name, doc in benches.items():
        for rec in doc.get("benchmarks", []):
            out[f"{bench_name}/{rec['name']}"] = rec
    return out


def cmd_merge(args):
    merged = {}
    for path in args.inputs:
        for name, doc in load(path).items():
            if name in merged:
                print(f"warning: duplicate bench {name!r}, keeping last",
                      file=sys.stderr)
            merged[name] = doc
    out = {
        "schema": "pygb.bench-merged",
        "schema_version": 1,
        "benches": merged,
    }
    with open(args.output, "w", encoding="utf-8") as f:
        json.dump(out, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"merged {len(merged)} bench artifact(s) into {args.output}")
    return 0


def cmd_compare(args):
    base = flatten(load(args.base))
    head = flatten(load(args.head))
    shared = sorted(set(base) & set(head))
    if not shared:
        print("no shared benchmarks between the two artifacts",
              file=sys.stderr)
        return 1

    regressions = []
    print(f"{'benchmark':60s} {'base ns':>14s} {'head ns':>14s} {'delta':>8s}")
    for name in shared:
        # Older artifacts (or records written mid-migration) may lack the
        # metric entirely — skip with a warning instead of a KeyError.
        b = base[name].get("real_ns")
        h = head[name].get("real_ns")
        if b is None or h is None:
            print(f"warning: {name}: missing real_ns "
                  f"(base={b!r}, head={h!r}), skipping", file=sys.stderr)
            continue
        if not b:
            continue
        delta = (h - b) / b
        marker = ""
        if delta > args.threshold:
            marker = "  REGRESSED"
            regressions.append((name, delta))
        print(f"{name:60s} {b:14.0f} {h:14.0f} {delta:+7.1%}{marker}")

    only_base = sorted(set(base) - set(head))
    only_head = sorted(set(head) - set(base))
    if only_base:
        print(f"only in base: {len(only_base)} benchmark(s)")
    if only_head:
        print(f"only in head: {len(only_head)} benchmark(s)")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        return 1
    print("\nno regressions beyond the threshold")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_merge = sub.add_parser("merge")
    p_merge.add_argument("output")
    p_merge.add_argument("inputs", nargs="+")
    p_merge.set_defaults(func=cmd_merge)

    p_cmp = sub.add_parser("compare")
    p_cmp.add_argument("base")
    p_cmp.add_argument("head")
    p_cmp.add_argument("--threshold", type=float, default=0.10)
    p_cmp.set_defaults(func=cmd_compare)

    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
