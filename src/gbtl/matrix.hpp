// gbtl/matrix.hpp — sparse Matrix container.
//
// Storage is LIL (list-of-lists): one sorted vector of (column, value)
// entries per row, the same layout as GBTL's LilSparseMatrix backend. This
// gives O(log nnz(row)) element access, cheap row-wise iteration for the
// sparse kernels, and straightforward incremental mutation for assign.
#pragma once

#include <algorithm>
#include <cassert>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <ostream>
#include <utility>
#include <vector>

#include "gbtl/algebra.hpp"
#include "gbtl/types.hpp"

namespace gbtl {

template <ScalarType T>
class Matrix {
 public:
  using ScalarT = T;
  using ScalarType_ = T;  // historical alias used by some templates
  using ScalarType = T;
  /// One stored entry: (column index, value). Rows keep these sorted by
  /// column index with no duplicates.
  using Entry = std::pair<IndexType, T>;
  using Row = std::vector<Entry>;

  Matrix() : nrows_(0), ncols_(0), nvals_(0) {}

  /// Construct an empty (no stored values) nrows x ncols matrix.
  Matrix(IndexType nrows, IndexType ncols)
      : nrows_(nrows), ncols_(ncols), nvals_(0), rows_(nrows) {
    if (nrows == 0 || ncols == 0) {
      throw InvalidValueException("Matrix dimensions must be positive");
    }
  }

  /// Construct from dense 2-D initializer data; `zero` designates the
  /// implied-zero value that is NOT stored (GBTL's dense constructor).
  Matrix(std::initializer_list<std::initializer_list<T>> data, T zero = T{})
      : nrows_(data.size()), nvals_(0) {
    ncols_ = nrows_ ? data.begin()->size() : 0;
    if (nrows_ == 0 || ncols_ == 0) {
      throw InvalidValueException("dense init data must be non-empty");
    }
    rows_.resize(nrows_);
    IndexType i = 0;
    for (const auto& row : data) {
      if (row.size() != ncols_) {
        throw DimensionException("ragged dense init data");
      }
      IndexType j = 0;
      for (const T& v : row) {
        if (v != zero) {
          rows_[i].emplace_back(j, v);
          ++nvals_;
        }
        ++j;
      }
      ++i;
    }
  }

  IndexType nrows() const noexcept { return nrows_; }
  IndexType ncols() const noexcept { return ncols_; }
  std::size_t nvals() const noexcept { return nvals_; }

  /// Remove every stored value, keeping the shape.
  void clear() noexcept {
    invalidate_transpose_cache();
    for (auto& r : rows_) r.clear();
    nvals_ = 0;
  }

  /// Populate from coordinate data. Duplicate (i,j) pairs are combined with
  /// `dup` (defaults to keeping the last value, via Second semantics when
  /// dup is not supplied GBTL uses the dup op; we default to Plus-like
  /// "last wins" replaced by an explicit callable).
  template <typename RAIteratorI, typename RAIteratorJ, typename RAIteratorV,
            typename DupT = Second<T>>
  void build(RAIteratorI i_it, RAIteratorJ j_it, RAIteratorV v_it,
             std::size_t n, DupT dup = DupT{}) {
    clear();
    for (std::size_t k = 0; k < n; ++k, ++i_it, ++j_it, ++v_it) {
      const IndexType i = static_cast<IndexType>(*i_it);
      const IndexType j = static_cast<IndexType>(*j_it);
      const T v = static_cast<T>(*v_it);
      if (i >= nrows_ || j >= ncols_) {
        throw IndexOutOfBoundsException("build coordinate outside matrix");
      }
      auto& row = rows_[i];
      auto pos = lower_bound_col(row, j);
      if (pos != row.end() && pos->first == j) {
        pos->second = dup(pos->second, v);
      } else {
        row.insert(pos, {j, v});
        ++nvals_;
      }
    }
  }

  /// Convenience build from index/value vectors.
  template <typename DupT = Second<T>>
  void build(const IndexArray& is, const IndexArray& js,
             const std::vector<T>& vs, DupT dup = DupT{}) {
    if (is.size() != js.size() || js.size() != vs.size()) {
      throw InvalidValueException("build arrays must be the same length");
    }
    build(is.begin(), js.begin(), vs.begin(), is.size(), dup);
  }

  bool hasElement(IndexType i, IndexType j) const {
    check_bounds(i, j);
    const auto& row = rows_[i];
    auto pos = lower_bound_col(row, j);
    return pos != row.end() && pos->first == j;
  }

  /// Return the stored value at (i, j); throws NoValueException if absent.
  T extractElement(IndexType i, IndexType j) const {
    check_bounds(i, j);
    const auto& row = rows_[i];
    auto pos = lower_bound_col(row, j);
    if (pos == row.end() || pos->first != j) {
      throw NoValueException("Matrix::extractElement");
    }
    return pos->second;
  }

  void setElement(IndexType i, IndexType j, const T& v) {
    check_bounds(i, j);
    invalidate_transpose_cache();
    auto& row = rows_[i];
    auto pos = lower_bound_col(row, j);
    if (pos != row.end() && pos->first == j) {
      pos->second = v;
    } else {
      row.insert(pos, {j, v});
      ++nvals_;
    }
  }

  /// Remove the stored value at (i, j) if present (no-op otherwise).
  void removeElement(IndexType i, IndexType j) {
    check_bounds(i, j);
    invalidate_transpose_cache();
    auto& row = rows_[i];
    auto pos = lower_bound_col(row, j);
    if (pos != row.end() && pos->first == j) {
      row.erase(pos);
      --nvals_;
    }
  }

  /// Read-only access to a row's sorted entry list (kernel fast path).
  const Row& row(IndexType i) const {
    assert(i < nrows_);
    return rows_[i];
  }

  /// Replace a row wholesale with pre-sorted, duplicate-free entries.
  /// Used by the sparse kernels that build outputs row-at-a-time.
  void setRow(IndexType i, Row&& entries) {
    assert(i < nrows_);
    invalidate_transpose_cache();
    assert(std::is_sorted(entries.begin(), entries.end(),
                          [](const Entry& a, const Entry& b) {
                            return a.first < b.first;
                          }));
    nvals_ -= rows_[i].size();
    rows_[i] = std::move(entries);
    nvals_ += rows_[i].size();
  }

  /// Structural + value equality (same shape, same stored entries).
  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.nrows_ == b.nrows_ && a.ncols_ == b.ncols_ &&
           a.nvals_ == b.nvals_ && a.rows_ == b.rows_;
  }

  // --- cached transpose (backend axis, docs/BACKENDS.md) -------------------
  //
  // The simd backend's direction-optimized mxv/vxm pulls over A^T when the
  // input vector is dense; iterative algorithms (PageRank's per-iteration
  // vxm, BFS's repeated mxv) reuse one materialization. The cache is an
  // immutable snapshot invalidated by every mutator; copies share the
  // mutex but own their cache pointer, so mutating a copy never corrupts
  // the original's snapshot. Concurrent READERS (the lazy-DAG planner runs
  // independent components on pool threads) serialize on the mutex; a
  // mutation concurrent with any other access is a container-contract
  // violation exactly as for rows_ itself.

  /// Current snapshot of this matrix's transpose, or null. The returned
  /// shared_ptr keeps the snapshot alive across later invalidation.
  std::shared_ptr<const Matrix<T>> transpose_cache() const {
    if (!transpose_mu_) return nullptr;  // moved-from survivor
    std::lock_guard<std::mutex> lock(*transpose_mu_);
    return transpose_cache_;
  }

  /// Install a snapshot; first writer wins under contention. Returns the
  /// snapshot actually cached.
  std::shared_ptr<const Matrix<T>> set_transpose_cache(
      std::shared_ptr<const Matrix<T>> t) const {
    if (!transpose_mu_) return t;
    std::lock_guard<std::mutex> lock(*transpose_mu_);
    if (!transpose_cache_) transpose_cache_ = std::move(t);
    return transpose_cache_;
  }

  /// Count one pull-direction request against this matrix and return the
  /// running total. The direction optimizer (ops/mxv.hpp) only pays for a
  /// transpose materialization on the second request, so a matrix consumed
  /// by a single operation never builds a snapshot it would use once.
  unsigned note_transpose_want() const {
    if (!transpose_mu_) return 1;  // moved-from survivor
    std::lock_guard<std::mutex> lock(*transpose_mu_);
    return ++transpose_want_;
  }

  /// Apply `f(i, row)` to every row in place. `f` may overwrite stored
  /// VALUES but must not change the structure (indices, sizes, ordering) —
  /// nvals bookkeeping is not revisited. A mutator like any other: the
  /// transpose snapshot is invalidated.
  template <typename F>
  void transform_rows(F&& f) {
    invalidate_transpose_cache();
    for (IndexType i = 0; i < nrows_; ++i) f(i, rows_[i]);
  }

  /// Extract contents back to coordinate arrays (row-major order).
  void extractTuples(IndexArray& is, IndexArray& js, std::vector<T>& vs) const {
    is.clear();
    js.clear();
    vs.clear();
    is.reserve(nvals_);
    js.reserve(nvals_);
    vs.reserve(nvals_);
    for (IndexType i = 0; i < nrows_; ++i) {
      for (const auto& [j, v] : rows_[i]) {
        is.push_back(i);
        js.push_back(j);
        vs.push_back(v);
      }
    }
  }

  /// Debug printing of the sparse structure.
  friend std::ostream& operator<<(std::ostream& os, const Matrix& m) {
    os << "Matrix " << detail::dim_str(m.nrows_, m.ncols_) << ", nvals="
       << m.nvals_ << "\n";
    for (IndexType i = 0; i < m.nrows_; ++i) {
      for (const auto& [j, v] : m.rows_[i]) {
        os << "  (" << i << "," << j << ") = " << +v << "\n";
      }
    }
    return os;
  }

 private:
  static typename Row::const_iterator lower_bound_col(const Row& row,
                                                      IndexType j) {
    return std::lower_bound(
        row.begin(), row.end(), j,
        [](const Entry& e, IndexType col) { return e.first < col; });
  }
  static typename Row::iterator lower_bound_col(Row& row, IndexType j) {
    return std::lower_bound(
        row.begin(), row.end(), j,
        [](const Entry& e, IndexType col) { return e.first < col; });
  }

  void check_bounds(IndexType i, IndexType j) const {
    if (i >= nrows_ || j >= ncols_) {
      throw IndexOutOfBoundsException("(" + std::to_string(i) + "," +
                                      std::to_string(j) + ") outside " +
                                      detail::dim_str(nrows_, ncols_));
    }
  }

  void invalidate_transpose_cache() noexcept { transpose_cache_.reset(); }

  IndexType nrows_;
  IndexType ncols_;
  std::size_t nvals_;
  std::vector<Row> rows_;
  /// Mutable: logically derived data, maintained from const accessors.
  mutable std::shared_ptr<const Matrix<T>> transpose_cache_;
  /// Pull-direction interest count (guarded by transpose_mu_).
  mutable unsigned transpose_want_ = 0;
  mutable std::shared_ptr<std::mutex> transpose_mu_ =
      std::make_shared<std::mutex>();
};

}  // namespace gbtl
