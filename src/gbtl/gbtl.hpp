// gbtl/gbtl.hpp — umbrella header for the GBTL substrate: containers,
// algebra, views, every GraphBLAS operation, and utilities.
#pragma once

#include "gbtl/algebra.hpp"
#include "gbtl/matrix.hpp"
#include "gbtl/ops/apply.hpp"
#include "gbtl/ops/assign.hpp"
#include "gbtl/ops/ewise.hpp"
#include "gbtl/ops/extract.hpp"
#include "gbtl/ops/kronecker.hpp"
#include "gbtl/ops/mxm.hpp"
#include "gbtl/ops/mxv.hpp"
#include "gbtl/ops/reduce.hpp"
#include "gbtl/ops/transpose_op.hpp"
#include "gbtl/types.hpp"
#include "gbtl/utilities.hpp"
#include "gbtl/vector.hpp"
#include "gbtl/views.hpp"
