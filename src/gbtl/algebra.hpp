// gbtl/algebra.hpp — the operator algebra of GBTL's algebra.hpp: the four
// unary operators and seventeen binary operators of PyGB Fig. 6, monoids
// (binary op + identity), and semirings (add monoid + multiply op).
//
// Everything here is a stateless (or value-capturing) functor so that the
// compiler can inline the whole semiring into the sparse kernels; this is
// the "no runtime cost for generic typing" property the paper relies on.
#pragma once

#include <algorithm>
#include <limits>
#include <type_traits>

#include "gbtl/types.hpp"

namespace gbtl {

// ---------------------------------------------------------------------------
// Unary operators (Fig. 6: Identity, AdditiveInverse, MultiplicativeInverse,
// LogicalNot). Each is templated on distinct argument/result types so that
// `apply` can cast, mirroring GBTL's Identity<T, OutT>.
// ---------------------------------------------------------------------------

template <typename T, typename OutT = T>
struct Identity {
  constexpr OutT operator()(const T& v) const {
    return static_cast<OutT>(v);
  }
};

template <typename T, typename OutT = T>
struct AdditiveInverse {
  constexpr OutT operator()(const T& v) const {
    return static_cast<OutT>(-static_cast<OutT>(v));
  }
};

template <typename T, typename OutT = T>
struct MultiplicativeInverse {
  constexpr OutT operator()(const T& v) const {
    return static_cast<OutT>(static_cast<OutT>(1) / static_cast<OutT>(v));
  }
};

template <typename T, typename OutT = T>
struct LogicalNot {
  constexpr OutT operator()(const T& v) const {
    return static_cast<OutT>(!static_cast<bool>(v));
  }
};

// ---------------------------------------------------------------------------
// Binary operators (Fig. 6). Signature: (T1, T2) -> OutT with the common
// homogeneous default. Division by zero follows C++ semantics (UB for
// integers avoided by callers; IEEE inf for floats).
// ---------------------------------------------------------------------------

template <typename T1, typename T2 = T1, typename OutT = T1>
struct Plus {
  constexpr OutT operator()(const T1& a, const T2& b) const {
    return static_cast<OutT>(a + b);
  }
};

template <typename T1, typename T2 = T1, typename OutT = T1>
struct Minus {
  constexpr OutT operator()(const T1& a, const T2& b) const {
    return static_cast<OutT>(a - b);
  }
};

template <typename T1, typename T2 = T1, typename OutT = T1>
struct Times {
  constexpr OutT operator()(const T1& a, const T2& b) const {
    return static_cast<OutT>(a * b);
  }
};

template <typename T1, typename T2 = T1, typename OutT = T1>
struct Div {
  constexpr OutT operator()(const T1& a, const T2& b) const {
    return static_cast<OutT>(a / b);
  }
};

template <typename T1, typename T2 = T1, typename OutT = T1>
struct Min {
  constexpr OutT operator()(const T1& a, const T2& b) const {
    // std::min over the common type; result cast to OutT.
    using CT = std::common_type_t<T1, T2>;
    return static_cast<OutT>(
        std::min<CT>(static_cast<CT>(a), static_cast<CT>(b)));
  }
};

template <typename T1, typename T2 = T1, typename OutT = T1>
struct Max {
  constexpr OutT operator()(const T1& a, const T2& b) const {
    using CT = std::common_type_t<T1, T2>;
    return static_cast<OutT>(
        std::max<CT>(static_cast<CT>(a), static_cast<CT>(b)));
  }
};

/// Returns the first argument (GraphBLAS FIRST — select left operand).
template <typename T1, typename T2 = T1, typename OutT = T1>
struct First {
  constexpr OutT operator()(const T1& a, const T2&) const {
    return static_cast<OutT>(a);
  }
};

/// Returns the second argument (GraphBLAS SECOND — select right operand).
template <typename T1, typename T2 = T1, typename OutT = T1>
struct Second {
  constexpr OutT operator()(const T1&, const T2& b) const {
    return static_cast<OutT>(b);
  }
};

template <typename T1, typename T2 = T1, typename OutT = T1>
struct LogicalOr {
  constexpr OutT operator()(const T1& a, const T2& b) const {
    return static_cast<OutT>(static_cast<bool>(a) || static_cast<bool>(b));
  }
};

template <typename T1, typename T2 = T1, typename OutT = T1>
struct LogicalAnd {
  constexpr OutT operator()(const T1& a, const T2& b) const {
    return static_cast<OutT>(static_cast<bool>(a) && static_cast<bool>(b));
  }
};

template <typename T1, typename T2 = T1, typename OutT = T1>
struct LogicalXor {
  constexpr OutT operator()(const T1& a, const T2& b) const {
    return static_cast<OutT>(static_cast<bool>(a) != static_cast<bool>(b));
  }
};

template <typename T1, typename T2 = T1, typename OutT = bool>
struct Equal {
  constexpr OutT operator()(const T1& a, const T2& b) const {
    return static_cast<OutT>(a == b);
  }
};

template <typename T1, typename T2 = T1, typename OutT = bool>
struct NotEqual {
  constexpr OutT operator()(const T1& a, const T2& b) const {
    return static_cast<OutT>(a != b);
  }
};

template <typename T1, typename T2 = T1, typename OutT = bool>
struct GreaterThan {
  constexpr OutT operator()(const T1& a, const T2& b) const {
    return static_cast<OutT>(a > b);
  }
};

template <typename T1, typename T2 = T1, typename OutT = bool>
struct LessThan {
  constexpr OutT operator()(const T1& a, const T2& b) const {
    return static_cast<OutT>(a < b);
  }
};

template <typename T1, typename T2 = T1, typename OutT = bool>
struct GreaterEqual {
  constexpr OutT operator()(const T1& a, const T2& b) const {
    return static_cast<OutT>(a >= b);
  }
};

template <typename T1, typename T2 = T1, typename OutT = bool>
struct LessEqual {
  constexpr OutT operator()(const T1& a, const T2& b) const {
    return static_cast<OutT>(a <= b);
  }
};

// ---------------------------------------------------------------------------
// Operator adaptors: bind a constant into one side of a binary op, turning
// it into a unary op. These implement GBTL's BinaryOp_Bind1st/Bind2nd used
// by PageRank (Fig. 8) and PyGB's `UnaryOp("Times", damping_factor)`.
// ---------------------------------------------------------------------------

template <typename T, typename BinaryOpT>
class BinaryOpBind1st {
 public:
  constexpr BinaryOpBind1st(T bound, BinaryOpT op = BinaryOpT{})
      : bound_(bound), op_(op) {}
  constexpr auto operator()(const T& rhs) const { return op_(bound_, rhs); }
  constexpr T bound() const { return bound_; }

 private:
  T bound_;
  BinaryOpT op_;
};

template <typename T, typename BinaryOpT>
class BinaryOpBind2nd {
 public:
  constexpr BinaryOpBind2nd(T bound, BinaryOpT op = BinaryOpT{})
      : bound_(bound), op_(op) {}
  constexpr auto operator()(const T& lhs) const { return op_(lhs, bound_); }
  constexpr T bound() const { return bound_; }

 private:
  T bound_;
  BinaryOpT op_;
};

// ---------------------------------------------------------------------------
// Monoids: a commutative associative binary op plus its identity element.
// GEN_GBTL_MONOID mirrors GBTL's GEN_GRAPHBLAS_MONOID macro used from the
// JIT binding (Fig. 9, operation_binding.cpp).
// ---------------------------------------------------------------------------

#define GEN_GBTL_MONOID(M_NAME, M_BINARYOP, M_IDENTITY)                      \
  template <typename T>                                                      \
  struct M_NAME {                                                            \
    using ScalarType = T;                                                    \
    using BinaryOpType = M_BINARYOP<T>;                                      \
    static constexpr T identity() { return static_cast<T>(M_IDENTITY); }    \
    constexpr T operator()(const T& a, const T& b) const {                   \
      return M_BINARYOP<T>{}(a, b);                                          \
    }                                                                        \
  };

GEN_GBTL_MONOID(PlusMonoid, Plus, 0)
GEN_GBTL_MONOID(TimesMonoid, Times, 1)
GEN_GBTL_MONOID(LogicalOrMonoid, LogicalOr, false)
GEN_GBTL_MONOID(LogicalAndMonoid, LogicalAnd, true)
GEN_GBTL_MONOID(LogicalXorMonoid, LogicalXor, false)

/// MinMonoid / MaxMonoid need numeric-limits identities, so they are spelled
/// out rather than macro-generated.
template <typename T>
struct MinMonoid {
  using ScalarType = T;
  using BinaryOpType = Min<T>;
  static constexpr T identity() { return std::numeric_limits<T>::max(); }
  constexpr T operator()(const T& a, const T& b) const {
    return Min<T>{}(a, b);
  }
};

template <typename T>
struct MaxMonoid {
  using ScalarType = T;
  using BinaryOpType = Max<T>;
  static constexpr T identity() { return std::numeric_limits<T>::lowest(); }
  constexpr T operator()(const T& a, const T& b) const {
    return Max<T>{}(a, b);
  }
};

/// Concept matched by any monoid defined above (has identity() + call).
template <typename M>
concept MonoidType = requires(M m, typename M::ScalarType v) {
  { M::identity() } -> std::convertible_to<typename M::ScalarType>;
  { m(v, v) } -> std::convertible_to<typename M::ScalarType>;
};

// ---------------------------------------------------------------------------
// Semirings: <add monoid, multiply binary op>. The identity of ⊕ is the
// annihilator of ⊗ (C API requirement). GEN_GBTL_SEMIRING mirrors GBTL's
// GEN_GRAPHBLAS_SEMIRING used from the JIT binding.
// ---------------------------------------------------------------------------

#define GEN_GBTL_SEMIRING(SR_NAME, ADD_MONOID, MULT_BINARYOP)                \
  template <typename D1, typename D2 = D1, typename D3 = D1>                 \
  struct SR_NAME {                                                           \
    using ScalarType = D3;                                                   \
    using AddMonoidType = ADD_MONOID<D3>;                                    \
    using MultOpType = MULT_BINARYOP<D1, D2, D3>;                            \
    static constexpr D3 zero() { return ADD_MONOID<D3>::identity(); }        \
    constexpr D3 add(const D3& a, const D3& b) const {                       \
      return ADD_MONOID<D3>{}(a, b);                                         \
    }                                                                        \
    constexpr D3 mult(const D1& a, const D2& b) const {                      \
      return MULT_BINARYOP<D1, D2, D3>{}(a, b);                              \
    }                                                                        \
  };

GEN_GBTL_SEMIRING(ArithmeticSemiring, PlusMonoid, Times)
GEN_GBTL_SEMIRING(LogicalSemiring, LogicalOrMonoid, LogicalAnd)
GEN_GBTL_SEMIRING(MinPlusSemiring, MinMonoid, Plus)
GEN_GBTL_SEMIRING(MaxTimesSemiring, MaxMonoid, Times)
GEN_GBTL_SEMIRING(MinSelect1stSemiring, MinMonoid, First)
GEN_GBTL_SEMIRING(MinSelect2ndSemiring, MinMonoid, Second)
GEN_GBTL_SEMIRING(MaxSelect1stSemiring, MaxMonoid, First)
GEN_GBTL_SEMIRING(MaxSelect2ndSemiring, MaxMonoid, Second)
GEN_GBTL_SEMIRING(MinTimesSemiring, MinMonoid, Times)
GEN_GBTL_SEMIRING(MaxPlusSemiring, MaxMonoid, Plus)

/// Concept matched by any semiring defined above.
template <typename SR>
concept SemiringType = requires(SR sr, typename SR::ScalarType v) {
  { SR::zero() } -> std::convertible_to<typename SR::ScalarType>;
  { sr.add(v, v) } -> std::convertible_to<typename SR::ScalarType>;
};

}  // namespace gbtl
