// gbtl/vector.hpp — sparse Vector container.
//
// Storage is bitmap + dense values, the layout of GBTL's BitmapSparseVector:
// a presence bitmap plus a value array of full length. This trades memory
// for O(1) random access, which the mxv/vxm and assign kernels rely on.
#pragma once

#include <algorithm>
#include <cassert>
#include <initializer_list>
#include <ostream>
#include <vector>

#include "gbtl/algebra.hpp"
#include "gbtl/types.hpp"

namespace gbtl {

template <ScalarType T>
class Vector {
 public:
  using ScalarT = T;
  using ScalarType = T;

  Vector() : size_(0), nvals_(0) {}

  /// Construct an empty (no stored values) vector of the given size.
  explicit Vector(IndexType size)
      : size_(size), nvals_(0), bitmap_(size, false), vals_(size) {
    if (size == 0) {
      throw InvalidValueException("Vector size must be positive");
    }
  }

  /// Construct from dense data; `zero` designates the implied-zero value
  /// that is NOT stored.
  Vector(std::initializer_list<T> data, T zero = T{})
      : size_(data.size()), nvals_(0), bitmap_(data.size(), false),
        vals_(data.size()) {
    if (size_ == 0) {
      throw InvalidValueException("dense init data must be non-empty");
    }
    IndexType i = 0;
    for (const T& v : data) {
      if (v != zero) {
        bitmap_[i] = true;
        vals_[i] = v;
        ++nvals_;
      }
      ++i;
    }
  }

  IndexType size() const noexcept { return size_; }
  std::size_t nvals() const noexcept { return nvals_; }

  void clear() noexcept {
    std::fill(bitmap_.begin(), bitmap_.end(), false);
    nvals_ = 0;
  }

  /// Populate from (index, value) coordinate data; duplicates combined by
  /// `dup` (default: last value wins).
  template <typename RAIteratorI, typename RAIteratorV,
            typename DupT = Second<T>>
  void build(RAIteratorI i_it, RAIteratorV v_it, std::size_t n,
             DupT dup = DupT{}) {
    clear();
    for (std::size_t k = 0; k < n; ++k, ++i_it, ++v_it) {
      const IndexType i = static_cast<IndexType>(*i_it);
      const T v = static_cast<T>(*v_it);
      if (i >= size_) {
        throw IndexOutOfBoundsException("build index outside vector");
      }
      if (bitmap_[i]) {
        vals_[i] = dup(vals_[i], v);
      } else {
        bitmap_[i] = true;
        vals_[i] = v;
        ++nvals_;
      }
    }
  }

  template <typename DupT = Second<T>>
  void build(const IndexArray& is, const std::vector<T>& vs,
             DupT dup = DupT{}) {
    if (is.size() != vs.size()) {
      throw InvalidValueException("build arrays must be the same length");
    }
    build(is.begin(), vs.begin(), is.size(), dup);
  }

  bool hasElement(IndexType i) const {
    check_bounds(i);
    return bitmap_[i];
  }

  /// Return the stored value at i; throws NoValueException if absent.
  T extractElement(IndexType i) const {
    check_bounds(i);
    if (!bitmap_[i]) throw NoValueException("Vector::extractElement");
    return vals_[i];
  }

  void setElement(IndexType i, const T& v) {
    check_bounds(i);
    if (!bitmap_[i]) {
      bitmap_[i] = true;
      ++nvals_;
    }
    vals_[i] = v;
  }

  /// Remove the stored value at i if present (no-op otherwise).
  void removeElement(IndexType i) {
    check_bounds(i);
    if (bitmap_[i]) {
      bitmap_[i] = false;
      --nvals_;
    }
  }

  /// Unchecked fast-path accessors for kernels (asserted in debug builds).
  bool has_unchecked(IndexType i) const {
    assert(i < size_);
    return bitmap_[i];
  }
  T value_unchecked(IndexType i) const {
    assert(i < size_ && bitmap_[i]);
    return vals_[i];
  }
  void set_unchecked(IndexType i, const T& v) {
    assert(i < size_);
    if (!bitmap_[i]) {
      bitmap_[i] = true;
      ++nvals_;
    }
    vals_[i] = v;
  }

  /// Every position stored? The simd backend's dense fast paths (apply,
  /// eWise, mxv's dense-input dot) key off this to skip presence probes
  /// and run contiguous loops over vals().
  bool fully_dense() const noexcept { return nvals_ == size_; }

  /// Raw dense value array (full length; positions without a stored value
  /// hold unspecified data — consult the bitmap or fully_dense() first).
  const T* vals() const noexcept { return vals_.data(); }

  /// Adopt `dense` as the stored values with EVERY position present.
  /// O(size/64) bitmap fill plus a move — the simd kernels stage results
  /// in a plain array and install them wholesale instead of per-element
  /// set_unchecked calls.
  void assign_dense(std::vector<T>&& dense) {
    assert(dense.size() == size_);
    vals_ = std::move(dense);
    std::fill(bitmap_.begin(), bitmap_.end(), true);
    nvals_ = size_;
  }

  friend bool operator==(const Vector& a, const Vector& b) {
    if (a.size_ != b.size_ || a.nvals_ != b.nvals_) return false;
    for (IndexType i = 0; i < a.size_; ++i) {
      if (a.bitmap_[i] != b.bitmap_[i]) return false;
      if (a.bitmap_[i] && a.vals_[i] != b.vals_[i]) return false;
    }
    return true;
  }

  /// Extract contents back to coordinate arrays (index order).
  void extractTuples(IndexArray& is, std::vector<T>& vs) const {
    is.clear();
    vs.clear();
    is.reserve(nvals_);
    vs.reserve(nvals_);
    for (IndexType i = 0; i < size_; ++i) {
      if (bitmap_[i]) {
        is.push_back(i);
        vs.push_back(vals_[i]);
      }
    }
  }

  friend std::ostream& operator<<(std::ostream& os, const Vector& v) {
    os << "Vector size=" << v.size_ << ", nvals=" << v.nvals_ << "\n";
    for (IndexType i = 0; i < v.size_; ++i) {
      if (v.bitmap_[i]) os << "  (" << i << ") = " << +v.vals_[i] << "\n";
    }
    return os;
  }

 private:
  void check_bounds(IndexType i) const {
    if (i >= size_) {
      throw IndexOutOfBoundsException("(" + std::to_string(i) +
                                      ") outside vector of size " +
                                      std::to_string(size_));
    }
  }

  IndexType size_;
  std::size_t nvals_;
  std::vector<bool> bitmap_;
  std::vector<T> vals_;
};

}  // namespace gbtl
