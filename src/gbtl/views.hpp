// gbtl/views.hpp — non-materializing views over containers: transpose of a
// matrix and logical complement of a mask, plus the uniform mask-probing
// interface the operation kernels use.
//
// Per the C API, a mask element is "true" when a value is stored at that
// position and it coerces to boolean true; complement() inverts that
// predicate without copying the container.
#pragma once

#include <type_traits>

#include "gbtl/matrix.hpp"
#include "gbtl/types.hpp"
#include "gbtl/vector.hpp"

namespace gbtl {

// ---------------------------------------------------------------------------
// TransposeView — A.T without copying. Kernels that can exploit the row
// layout of the underlying matrix unwrap it via inner().
// ---------------------------------------------------------------------------

template <typename MatrixT>
class TransposeView {
 public:
  using ScalarType = typename MatrixT::ScalarType;

  explicit TransposeView(const MatrixT& m) : m_(m) {}

  IndexType nrows() const noexcept { return m_.ncols(); }
  IndexType ncols() const noexcept { return m_.nrows(); }
  std::size_t nvals() const noexcept { return m_.nvals(); }

  bool hasElement(IndexType i, IndexType j) const {
    return m_.hasElement(j, i);
  }
  ScalarType extractElement(IndexType i, IndexType j) const {
    return m_.extractElement(j, i);
  }

  const MatrixT& inner() const noexcept { return m_; }

 private:
  const MatrixT& m_;
};

/// GBTL's GB::transpose(A) — view A as its transpose.
template <typename MatrixT>
TransposeView<MatrixT> transpose(const MatrixT& m) {
  return TransposeView<MatrixT>(m);
}

/// Transposing a transpose view yields the underlying matrix again.
template <typename MatrixT>
const MatrixT& transpose(const TransposeView<MatrixT>& v) {
  return v.inner();
}

// ---------------------------------------------------------------------------
// Complement views over masks.
// ---------------------------------------------------------------------------

template <typename MaskT>
class MatrixComplementView {
 public:
  explicit MatrixComplementView(const MaskT& m) : m_(m) {}
  const MaskT& inner() const noexcept { return m_; }
  IndexType nrows() const noexcept { return m_.nrows(); }
  IndexType ncols() const noexcept { return m_.ncols(); }

 private:
  const MaskT& m_;
};

template <typename MaskT>
class VectorComplementView {
 public:
  explicit VectorComplementView(const MaskT& m) : m_(m) {}
  const MaskT& inner() const noexcept { return m_; }
  IndexType size() const noexcept { return m_.size(); }

 private:
  const MaskT& m_;
};

/// GBTL's GB::complement(M) — invert a mask without copying it.
template <typename T>
MatrixComplementView<Matrix<T>> complement(const Matrix<T>& m) {
  return MatrixComplementView<Matrix<T>>(m);
}

template <typename T>
VectorComplementView<Vector<T>> complement(const Vector<T>& v) {
  return VectorComplementView<Vector<T>>(v);
}

/// Complementing a complement yields the original mask.
template <typename MaskT>
const MaskT& complement(const MatrixComplementView<MaskT>& v) {
  return v.inner();
}
template <typename MaskT>
const MaskT& complement(const VectorComplementView<MaskT>& v) {
  return v.inner();
}

// ---------------------------------------------------------------------------
// Trait helpers.
// ---------------------------------------------------------------------------

template <typename X>
struct is_transpose_view : std::false_type {};
template <typename M>
struct is_transpose_view<TransposeView<M>> : std::true_type {};
template <typename X>
inline constexpr bool is_transpose_view_v = is_transpose_view<X>::value;

template <typename X>
struct is_nomask : std::is_same<std::remove_cvref_t<X>, NoMask> {};
template <typename X>
inline constexpr bool is_nomask_v = is_nomask<X>::value;

// ---------------------------------------------------------------------------
// Uniform mask probing: mask_value(M, i, j) / mask_value(m, i).
// ---------------------------------------------------------------------------

inline constexpr bool mask_value(const NoMask&, IndexType, IndexType) {
  return true;
}
inline constexpr bool mask_value(const NoMask&, IndexType) { return true; }

template <typename U>
bool mask_value(const Matrix<U>& m, IndexType i, IndexType j) {
  return m.hasElement(i, j) && static_cast<bool>(m.extractElement(i, j));
}

template <typename U>
bool mask_value(const Vector<U>& m, IndexType i) {
  return m.hasElement(i) && static_cast<bool>(m.extractElement(i));
}

template <typename MaskT>
bool mask_value(const MatrixComplementView<MaskT>& m, IndexType i,
                IndexType j) {
  return !mask_value(m.inner(), i, j);
}

template <typename MaskT>
bool mask_value(const VectorComplementView<MaskT>& m, IndexType i) {
  return !mask_value(m.inner(), i);
}

// ---------------------------------------------------------------------------
// Mask shape validation (dimensions must match output when a mask is given).
// ---------------------------------------------------------------------------

template <typename CMatT>
void check_mask_shape(const NoMask&, const CMatT&) {}

template <typename U, typename CMatT>
void check_mask_shape(const Matrix<U>& m, const CMatT& c) {
  if (m.nrows() != c.nrows() || m.ncols() != c.ncols()) {
    throw DimensionException("mask shape does not match output");
  }
}

template <typename MaskT, typename CMatT>
void check_mask_shape(const MatrixComplementView<MaskT>& m, const CMatT& c) {
  check_mask_shape(m.inner(), c);
}

template <typename CVecT>
void check_vec_mask_shape(const NoMask&, const CVecT&) {}

template <typename U, typename CVecT>
void check_vec_mask_shape(const Vector<U>& m, const CVecT& c) {
  if (m.size() != c.size()) {
    throw DimensionException("mask size does not match output");
  }
}

template <typename MaskT, typename CVecT>
void check_vec_mask_shape(const VectorComplementView<MaskT>& m,
                          const CVecT& c) {
  check_vec_mask_shape(m.inner(), c);
}

}  // namespace gbtl
