// gbtl/utilities.hpp — helper routines used by the algorithms and examples:
// row normalization (PageRank), triangular splits (triangle counting),
// identity/diagonal constructors, and pretty-printing.
#pragma once

#include <ostream>
#include <utility>
#include <vector>

#include "gbtl/detail/backend.hpp"
#include "gbtl/matrix.hpp"
#include "gbtl/types.hpp"
#include "gbtl/vector.hpp"

namespace gbtl {

/// Scale every stored value so each row sums to 1 (rows with no stored
/// values are left empty). GBTL's GB::normalize_rows used by PageRank.
template <typename T>
void normalize_rows(Matrix<T>& m) {
  static_assert(std::is_floating_point_v<T>,
                "normalize_rows requires a floating-point matrix");
  // simd backend: scale stored values in place instead of rebuilding each
  // row. Same left-fold row sum, same per-element v / sum — bit-identical
  // to the reallocating path below.
  if (detail::simd_enabled()) {
    m.transform_rows([](IndexType, auto& row) {
      if (row.empty()) return;
      T sum{};
      for (const auto& [j, v] : row) sum += v;
      if (sum == T{}) return;
      for (auto& [j, v] : row) v = v / sum;
    });
    return;
  }
  for (IndexType i = 0; i < m.nrows(); ++i) {
    const auto& row = m.row(i);
    if (row.empty()) continue;
    T sum{};
    for (const auto& [j, v] : row) sum += v;
    if (sum == T{}) continue;
    typename Matrix<T>::Row scaled;
    scaled.reserve(row.size());
    for (const auto& [j, v] : row) scaled.emplace_back(j, v / sum);
    m.setRow(i, std::move(scaled));
  }
}

/// Split a square matrix into strictly-lower and strictly-upper triangular
/// parts (the diagonal is dropped) — the L used by triangle counting.
template <typename T>
void split(const Matrix<T>& a, Matrix<T>& lower, Matrix<T>& upper) {
  if (a.nrows() != a.ncols()) {
    throw DimensionException("split requires a square matrix");
  }
  if (lower.nrows() != a.nrows() || lower.ncols() != a.ncols() ||
      upper.nrows() != a.nrows() || upper.ncols() != a.ncols()) {
    throw DimensionException("split outputs must match input shape");
  }
  lower.clear();
  upper.clear();
  typename Matrix<T>::Row lo, hi;
  for (IndexType i = 0; i < a.nrows(); ++i) {
    lo.clear();
    hi.clear();
    for (const auto& [j, v] : a.row(i)) {
      if (j < i) {
        lo.emplace_back(j, v);
      } else if (j > i) {
        hi.emplace_back(j, v);
      }
    }
    if (!lo.empty()) lower.setRow(i, typename Matrix<T>::Row(lo));
    if (!hi.empty()) upper.setRow(i, typename Matrix<T>::Row(hi));
  }
}

/// n x n identity matrix scaled by `val`.
template <typename T>
Matrix<T> identity_matrix(IndexType n, T val = T{1}) {
  Matrix<T> m(n, n);
  for (IndexType i = 0; i < n; ++i) m.setElement(i, i, val);
  return m;
}

/// Diagonal matrix from a vector of (offset, value) bands — the
/// scipy.sparse.diags analog used in Fig. 3b. Each band b places `value`
/// at positions (i, i + offset) that fall inside the n x n matrix.
template <typename T>
Matrix<T> banded_matrix(IndexType n,
                        const std::vector<std::pair<long, T>>& bands) {
  Matrix<T> m(n, n);
  for (const auto& [offset, value] : bands) {
    for (IndexType i = 0; i < n; ++i) {
      const long j = static_cast<long>(i) + offset;
      if (j >= 0 && j < static_cast<long>(n)) {
        m.setElement(i, static_cast<IndexType>(j), value);
      }
    }
  }
  return m;
}

/// Print a matrix densely (dots for absent entries) — small-matrix debug aid.
template <typename T>
void print_dense(std::ostream& os, const Matrix<T>& m) {
  for (IndexType i = 0; i < m.nrows(); ++i) {
    for (IndexType j = 0; j < m.ncols(); ++j) {
      if (m.hasElement(i, j)) {
        os << +m.extractElement(i, j);
      } else {
        os << '.';
      }
      os << (j + 1 == m.ncols() ? '\n' : ' ');
    }
  }
}

}  // namespace gbtl
