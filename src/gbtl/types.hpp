// gbtl/types.hpp — fundamental index types, exceptions, and concepts shared
// by every GBTL container and operation.
//
// This substrate implements the semantics of the GraphBLAS C API
// specification (Buluc et al., 2017) in templated C++20, following the
// structure of the GraphBLAS Template Library (GBTL) that the PyGB paper
// compiles to.
#pragma once

#include <concepts>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace gbtl {

/// Index type used for all row/column positions, mirroring GrB_Index.
using IndexType = std::uint64_t;

/// Ordered list of indices (used by assign/extract index arguments).
using IndexArray = std::vector<IndexType>;

/// Sentinel meaning "all indices" — GrB_ALL / GBTL's AllIndices().
struct AllIndices {};

/// Thrown when operand dimensions do not conform (GrB_DIMENSION_MISMATCH).
class DimensionException : public std::runtime_error {
 public:
  explicit DimensionException(const std::string& msg)
      : std::runtime_error("gbtl: dimension mismatch: " + msg) {}
};

/// Thrown when an index is out of bounds (GrB_INDEX_OUT_OF_BOUNDS).
class IndexOutOfBoundsException : public std::out_of_range {
 public:
  explicit IndexOutOfBoundsException(const std::string& msg)
      : std::out_of_range("gbtl: index out of bounds: " + msg) {}
};

/// Thrown when extractElement finds no stored value (GrB_NO_VALUE).
class NoValueException : public std::runtime_error {
 public:
  explicit NoValueException(const std::string& msg)
      : std::runtime_error("gbtl: no stored value: " + msg) {}
};

/// Thrown for invalid arguments (GrB_INVALID_VALUE).
class InvalidValueException : public std::invalid_argument {
 public:
  explicit InvalidValueException(const std::string& msg)
      : std::invalid_argument("gbtl: invalid value: " + msg) {}
};

/// Scalar types storable in GBTL containers: the 11 GraphBLAS PODs
/// (bool, u/int 8..64, float, double) plus anything arithmetic-like.
template <typename T>
concept ScalarType = std::is_arithmetic_v<T>;

/// Output write discipline for masked operations (C API "replace" flag).
/// MERGE keeps masked-out entries of the output; REPLACE clears them.
enum class OutputControl : std::uint8_t { kMerge, kReplace };

/// Tag type: no accumulator — the operation result overwrites (subject to
/// mask semantics) rather than being combined with prior output values.
struct NoAccumulate {};

/// Tag type: no write mask — every element of the output is writable.
struct NoMask {
  // NoMask behaves as an all-true mask of any shape.
  static constexpr bool value_at(IndexType, IndexType) noexcept {
    return true;
  }
};

namespace detail {

/// Checked conversion helper for building error messages.
inline std::string dim_str(IndexType r, IndexType c) {
  return std::to_string(r) + "x" + std::to_string(c);
}

}  // namespace detail

}  // namespace gbtl
