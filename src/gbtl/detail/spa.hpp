// gbtl/detail/spa.hpp — sparse accumulator (SPA) used by the row-at-a-time
// matrix-multiply kernels: a dense value array plus an occupancy flag array
// and a touched-index list, reset in O(touched) between rows.
#pragma once

#include <algorithm>
#include <vector>

#include "gbtl/detail/pool.hpp"
#include "gbtl/types.hpp"

namespace gbtl::detail {

template <typename T>
class SparseAccumulator {
 public:
  explicit SparseAccumulator(IndexType size)
      : charge_(size * (sizeof(T) + 1)), vals_(size), occupied_(size, false) {
    touched_.reserve(64);
  }

  /// Accumulate v at position j with the monoid `add`; first touch stores v.
  template <typename AddT>
  void accumulate(IndexType j, const T& v, AddT add) {
    if (occupied_[j]) {
      vals_[j] = add(vals_[j], v);
    } else {
      occupied_[j] = true;
      vals_[j] = v;
      touched_.push_back(j);
    }
  }

  bool occupied(IndexType j) const { return occupied_[j]; }
  const T& value(IndexType j) const { return vals_[j]; }
  std::size_t touched_count() const { return touched_.size(); }

  /// Emit touched (index, value) pairs sorted by index into `out`
  /// (cleared first), then reset the accumulator.
  template <typename Row>
  void extract_sorted_and_reset(Row& out) {
    std::sort(touched_.begin(), touched_.end());
    out.clear();
    out.reserve(touched_.size());
    for (IndexType j : touched_) {
      out.emplace_back(j, vals_[j]);
      occupied_[j] = false;
    }
    touched_.clear();
  }

  /// Append-variant of extract_sorted_and_reset for the L2-tiled multiply:
  /// tiles of one output row arrive left to right, so appending each
  /// sorted tile keeps the whole row sorted. `out` is NOT cleared.
  template <typename Row>
  void extract_sorted_append(Row& out) {
    std::sort(touched_.begin(), touched_.end());
    out.reserve(out.size() + touched_.size());
    for (IndexType j : touched_) {
      out.emplace_back(j, vals_[j]);
      occupied_[j] = false;
    }
    touched_.clear();
  }

  /// Reset without extracting.
  void reset() {
    for (IndexType j : touched_) occupied_[j] = false;
    touched_.clear();
  }

 private:
  // Declared before the arrays so the governor budget charge (which may
  // throw ResourceExhausted) is taken BEFORE the dense allocations happen.
  ScopedMemCharge charge_;
  std::vector<T> vals_;
  std::vector<bool> occupied_;
  std::vector<IndexType> touched_;
};

}  // namespace gbtl::detail
