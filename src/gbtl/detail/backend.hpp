// gbtl/detail/backend.hpp — the kernel-backend axis (docs/BACKENDS.md).
//
// A "backend" selects which implementation strategy the substrate kernels
// use for the SAME mathematical operation: `scalar` is the seed's plain
// row loops; `simd` adds AVX2-width inner loops, direction-optimized mxv
// (push vs pull chosen from input-vector density), L2-tiled SpGEMM, and
// masked push-down. Results are BIT-IDENTICAL across backends by
// construction — every ⊕-fold keeps the scalar backend's operand order —
// so a backend is a pure performance choice, never a semantics choice.
//
// Like the worker pool, this header is compiled both into the repo
// (GBTL_POOL_LINKED) and into dlopen'd JIT modules:
//
//   * in-process, the default backend comes from PYGB_BACKEND (read once)
//     and can be overridden programmatically (set_default_backend) or per
//     op via a pygb::BackendHint context entry; eval.cpp resolves the
//     request's backend and installs a BackendScope around the kernel.
//   * a JIT module never reads the environment: its dispatch key carries
//     the backend (`|be=simd`), and codegen bakes an explicit BackendScope
//     into the generated kernel body, so a cached module always runs the
//     backend it was keyed under, whatever the host environment says now.
//
// Kernels must read the active backend ONCE at entry on the calling
// thread (into a const local captured by any parallel lambdas): worker
// threads executing a module's loops would otherwise consult the module's
// own thread-local slot, which nothing ever set.
//
// A future GPU backend slots in here: add an enumerator, teach
// parse_backend/backend_name the token, and give the kernels a branch —
// the dispatch key, registry, and codegen plumbing are backend-agnostic.
#pragma once

#include <cstdlib>
#include <cstring>

namespace gbtl::detail {

enum class Backend : unsigned char { kScalar = 0, kSimd = 1 };

inline const char* backend_name(Backend b) noexcept {
  return b == Backend::kSimd ? "simd" : "scalar";
}

/// "scalar"/"simd" (anything else, including null, is scalar).
inline Backend parse_backend(const char* name) noexcept {
  if (name != nullptr && std::strcmp(name, "simd") == 0) {
    return Backend::kSimd;
  }
  return Backend::kScalar;
}

namespace backend_impl {

/// Process-wide default. In-process builds seed it from PYGB_BACKEND once;
/// module builds never touch the environment (the baked BackendScope is
/// authoritative there). Plain (non-atomic) on purpose: it is written by
/// tests/benches between operations, never concurrently with kernels.
inline Backend& default_slot() noexcept {
  static Backend def =
#if defined(GBTL_POOL_LINKED)
      parse_backend(std::getenv("PYGB_BACKEND"));
#else
      Backend::kScalar;
#endif
  return def;
}

struct TlsState {
  Backend backend = Backend::kScalar;
  bool overridden = false;
};

inline TlsState& tls() noexcept {
  thread_local TlsState state;
  return state;
}

}  // namespace backend_impl

inline Backend default_backend() noexcept {
  return backend_impl::default_slot();
}

/// Programmatic override of the PYGB_BACKEND default (tests, benches,
/// long-lived embedders). Affects subsequent operations on every thread
/// that has no BackendScope installed.
inline void set_default_backend(Backend b) noexcept {
  backend_impl::default_slot() = b;
}

/// The backend kernels on THIS thread should use right now: the innermost
/// BackendScope, or the process default.
inline Backend active_backend() noexcept {
  const auto& state = backend_impl::tls();
  return state.overridden ? state.backend : default_backend();
}

inline bool simd_enabled() noexcept {
  return active_backend() == Backend::kSimd;
}

/// RAII thread-local backend override. Installed by eval.cpp's dispatch
/// around every kernel invocation (in-process) and baked into generated
/// module bodies by codegen (JIT).
class BackendScope {
 public:
  explicit BackendScope(Backend b) noexcept : saved_(backend_impl::tls()) {
    backend_impl::tls() = {b, true};
  }
  ~BackendScope() { backend_impl::tls() = saved_; }
  BackendScope(const BackendScope&) = delete;
  BackendScope& operator=(const BackendScope&) = delete;

 private:
  backend_impl::TlsState saved_;
};

/// AVX2 availability, probed once. The simd backend stays fully functional
/// without it — the intrinsic paths fall back to the identical-order
/// scalar loops — so algorithmic choices (push/pull, tiling, mask
/// push-down) are exercised on every machine.
inline bool cpu_has_avx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
#else
  return false;
#endif
}

}  // namespace gbtl::detail
