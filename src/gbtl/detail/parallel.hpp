// gbtl/detail/parallel.hpp — the optional multithreaded substrate backend.
//
// §IV of the paper notes that "it may be more suitable in some situations
// to use a multithreaded GBTL backend instead of multithreading in
// Python". This header provides that backend's entry point: a
// block-partitioned parallel_for over row ranges used by every row-wise
// kernel (mxm, mxv-pull, eWiseAdd/eWiseMult, apply, reduce). Work runs on
// the persistent worker pool in detail/pool.{hpp,cpp} — workers are
// started once, parked between operations, and partitioned statically or
// dynamically (GBTL_SCHEDULE) — instead of spawning and joining fresh
// std::threads per call. The worker count comes from GBTL_NUM_THREADS
// (default 1 = fully sequential, no thread machinery touched);
// set_num_threads resizes the pool at run time.
//
// Kernels parallelize by writing disjoint row slots of a staging buffer;
// shared container state (nvals bookkeeping) is only touched in the
// sequential assembly pass, so no locks are needed, and results are
// bit-identical for every worker count and schedule.
//
// The dlopen constraint: JIT-generated modules compile this header with a
// bare `g++ -shared` that never links libpygb, so nothing here may assume
// the pool (or pygb::obs) objects are present. pool.hpp gates on
// GBTL_POOL_LINKED — in-repo targets call the pool directly; generated
// modules go through a host-injected function table and fall back to
// inline sequential loops when no table was injected.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>

#include "gbtl/detail/pool.hpp"
#include "gbtl/types.hpp"

// Per-worker observability spans. Gated on PYGB_OBS_HOOKS (defined for all
// in-repo targets) because JIT-generated modules compile this header
// without libpygb — the obs symbols would be unresolvable inside the
// dlopen'd module. Worker spans inside JIT kernels are therefore not
// traced; everything in-process is.
#if defined(PYGB_OBS_HOOKS)
#include "pygb/obs/obs.hpp"
#define GBTL_WORKER_SPAN(span_name, begin_row, end_row)                  \
  ::pygb::obs::Span gbtl_worker_span_(span_name);                        \
  if (gbtl_worker_span_.active()) {                                      \
    gbtl_worker_span_                                                    \
        .attr("begin", static_cast<std::uint64_t>(begin_row))            \
        .attr("end", static_cast<std::uint64_t>(end_row));               \
  }
#else
#define GBTL_WORKER_SPAN(span_name, begin_row, end_row)
#endif

namespace gbtl::detail {

/// Current worker-thread count (1 = sequential execution on the caller).
inline unsigned num_threads() { return pool_num_threads(); }

/// Override the worker count (values < 1 clamp to 1). Visible immediately:
/// the pool drains, joins its old complement, and restarts lazily at the
/// new size on the next parallel operation.
inline void set_num_threads(unsigned n) { pool_set_num_threads(n); }

#if defined(GBTL_POOL_LINKED)
/// Current partitioning mode (GBTL_SCHEDULE or set_schedule).
inline Schedule schedule() { return pool_schedule(); }
/// Override the partitioning mode for subsequent parallel operations.
inline void set_schedule(Schedule s) { pool_set_schedule(s); }
#endif

/// Run f(begin, end) over a partition of [0, n) on the worker pool. With
/// one thread (or tiny n) the call runs inline on the caller; f may be
/// invoked several times per worker (dynamic schedule hands out chunks).
/// Exceptions thrown by workers are rethrown on the caller after the
/// operation drains. Nested calls run inline (no oversubscription).
/// Sequential-path chunk width: large enough that the per-chunk governor
/// checkpoint is noise, small enough that a deadline or cancel lands
/// promptly even when the whole range runs inline on the caller.
inline constexpr IndexType kSequentialCheckpointRows = 8192;

template <typename F>
void parallel_for_rows(IndexType n, F&& f) {
  if (n < 2 * kMinRowsPerThread || pool_num_threads() <= 1) {
    // Inline path. Kernels already tolerate multiple f invocations over
    // disjoint sub-ranges (the dynamic schedule does exactly this), so
    // chunking here changes no result — it only gives the governor the
    // same checkpoint cadence the pooled path gets at chunk boundaries.
    pool_checkpoint();
    if (n == 0) {
      f(IndexType{0}, IndexType{0});
      return;
    }
    for (IndexType begin = 0; begin < n;
         begin += kSequentialCheckpointRows) {
      const IndexType end = begin + kSequentialCheckpointRows < n
                                ? begin + kSequentialCheckpointRows
                                : n;
      if (begin != 0) pool_checkpoint();
      f(begin, end);
    }
    return;
  }
  using Fn = std::remove_reference_t<F>;
  pool_parallel_for(
      n,
      [](void* ctx, IndexType begin, IndexType end) {
        GBTL_WORKER_SPAN("parallel.worker", begin, end)
        (*static_cast<Fn*>(ctx))(begin, end);
      },
      const_cast<void*>(static_cast<const void*>(&f)));
}

}  // namespace gbtl::detail
