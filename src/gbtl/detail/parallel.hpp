// gbtl/detail/parallel.hpp — the optional multithreaded substrate backend.
//
// §IV of the paper notes that "it may be more suitable in some situations
// to use a multithreaded GBTL backend instead of multithreading in
// Python". This header provides that backend: a block-partitioned
// parallel_for over row ranges used by the heavy kernels (mxm, mxv). The
// worker count comes from GBTL_NUM_THREADS (default 1 = fully sequential,
// no thread machinery touched); set_num_threads overrides at run time.
//
// Kernels parallelize by writing disjoint row slots of a staging buffer;
// shared container state (nvals bookkeeping) is only touched in the
// sequential assembly pass, so no locks are needed.
#pragma once

#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "gbtl/types.hpp"

// Per-worker observability spans. Gated on PYGB_OBS_HOOKS (defined for all
// in-repo targets) because JIT-generated modules compile this header with a
// bare `g++ -shared` that never links libpygb — the obs symbols would be
// unresolvable inside the dlopen'd module. Worker spans inside JIT kernels
// are therefore not traced; everything in-process is.
#if defined(PYGB_OBS_HOOKS)
#include "pygb/obs/obs.hpp"
#define GBTL_WORKER_SPAN(span_name, begin_row, end_row)                  \
  ::pygb::obs::Span gbtl_worker_span_(span_name);                        \
  if (gbtl_worker_span_.active()) {                                      \
    gbtl_worker_span_                                                    \
        .attr("begin", static_cast<std::uint64_t>(begin_row))            \
        .attr("end", static_cast<std::uint64_t>(end_row));               \
  }
#else
#define GBTL_WORKER_SPAN(span_name, begin_row, end_row)
#endif

namespace gbtl::detail {

inline std::atomic<unsigned>& thread_count_slot() {
  static std::atomic<unsigned> count = [] {
    const char* v = std::getenv("GBTL_NUM_THREADS");
    const long parsed = (v != nullptr && *v != '\0') ? std::atol(v) : 1;
    return static_cast<unsigned>(parsed < 1 ? 1 : parsed);
  }();
  return count;
}

/// Current worker-thread count (1 = sequential execution on the caller).
inline unsigned num_threads() { return thread_count_slot().load(); }

/// Override the worker count (values < 1 clamp to 1).
inline void set_num_threads(unsigned n) {
  thread_count_slot().store(n < 1 ? 1 : n);
}

/// Run f(begin, end) over a block partition of [0, n). With one thread (or
/// tiny n) the call runs inline on the caller. Exceptions thrown by
/// workers are rethrown on the caller after all threads join.
template <typename F>
void parallel_for_rows(IndexType n, F&& f) {
  const unsigned requested = num_threads();
  // Below this many rows the spawn cost dwarfs any possible win.
  constexpr IndexType kMinRowsPerThread = 64;
  unsigned workers = requested;
  if (workers > 1 && n / workers < kMinRowsPerThread) {
    workers = static_cast<unsigned>(
        n / kMinRowsPerThread > 0 ? n / kMinRowsPerThread : 1);
  }
  if (workers <= 1) {
    f(IndexType{0}, n);
    return;
  }

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  std::exception_ptr first_error;
  std::atomic<bool> has_error{false};

  auto run_block = [&](IndexType begin, IndexType end) {
    GBTL_WORKER_SPAN("parallel.worker", begin, end)
    try {
      f(begin, end);
    } catch (...) {
      if (!has_error.exchange(true)) first_error = std::current_exception();
    }
  };

  const IndexType chunk = (n + workers - 1) / workers;
  for (unsigned t = 1; t < workers; ++t) {
    const IndexType begin = t * chunk;
    if (begin >= n) break;
    const IndexType end = std::min(n, begin + chunk);
    threads.emplace_back(run_block, begin, end);
  }
  run_block(0, std::min(n, chunk));
  for (auto& th : threads) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace gbtl::detail
