// gbtl/detail/transpose_cache.hpp — get-or-build a matrix's cached A^T.
//
// The simd backend's pull-direction mxv/vxm iterates rows of A^T. Iterative
// algorithms (PageRank, BFS) hit the same matrix every step, so the
// transpose is materialized once and snapshotted on the source matrix
// (Matrix::transpose_cache). Row-major traversal of A emits entries into
// each output row in ascending source-row order, so every row of the
// result is already sorted — the same invariant materialize_transpose in
// mxm.hpp relies on.
#pragma once

#include <memory>
#include <utility>

#include "gbtl/detail/pool.hpp"
#include "gbtl/matrix.hpp"
#include "gbtl/types.hpp"

namespace gbtl::detail {

/// Return a shared snapshot of a's transpose, building (and caching) it on
/// first use. Cancellation/deadline aborts the build before any cache is
/// installed, so a governor-interrupted op leaves no partial snapshot.
template <typename T>
std::shared_ptr<const Matrix<T>> cached_transpose(const Matrix<T>& a) {
  if (auto hit = a.transpose_cache()) return hit;

  using Entry = typename Matrix<T>::Entry;
  using Row = typename Matrix<T>::Row;
  // Entries move from A's rows to A^T's; charge the transposed copy plus
  // the per-row headers before allocating.
  ScopedMemCharge charge(a.nvals() * sizeof(Entry) +
                         static_cast<std::size_t>(a.ncols()) * sizeof(Row));

  std::vector<Row> cols(a.ncols());
  {
    // Degree pass so each output row reserves exactly once.
    std::vector<std::size_t> degree(a.ncols(), 0);
    for (IndexType i = 0; i < a.nrows(); ++i) {
      for (const auto& [j, v] : a.row(i)) ++degree[j];
    }
    for (IndexType j = 0; j < a.ncols(); ++j) cols[j].reserve(degree[j]);
  }
  for (IndexType i = 0; i < a.nrows(); ++i) {
    pool_checkpoint();
    for (const auto& [j, v] : a.row(i)) cols[j].emplace_back(i, v);
  }

  auto t = std::make_shared<Matrix<T>>(a.ncols(), a.nrows());
  for (IndexType j = 0; j < a.ncols(); ++j) {
    if (!cols[j].empty()) t->setRow(j, std::move(cols[j]));
  }
  // First writer wins if two threads raced to build.
  return a.set_transpose_cache(std::move(t));
}

/// Amortization-aware variant for the mxv/vxm direction optimizer: returns
/// an existing snapshot immediately, but defers the O(nnz) build until the
/// matrix has seen TWO pull-eligible requests (returning null — push
/// instead — on the first). A matrix consumed by a single operation, like
/// PageRank's per-call transition matrix, never pays for a transpose it
/// would traverse once; iterative reuse (BFS plies, multi-step solvers)
/// builds on the second step and pulls from then on.
template <typename T>
std::shared_ptr<const Matrix<T>> cached_transpose_if_amortized(
    const Matrix<T>& a) {
  if (auto hit = a.transpose_cache()) return hit;
  if (a.note_transpose_want() < 2) return nullptr;
  return cached_transpose(a);
}

}  // namespace gbtl::detail
