// gbtl/detail/pool.cpp — persistent worker-pool implementation (see
// pool.hpp for the design contract).
//
// Concurrency protocol:
//
//   * submit_mu_ serializes whole operations. The submitting thread holds
//     it from publication until every worker has acknowledged the job, so
//     a Job can live on the submitter's stack. Other host threads that
//     fail the try_lock run their operation inline instead of queueing —
//     the machine is already saturated.
//   * job_mu_ + job_cv_ park idle workers; jobs are published by bumping
//     job_seq_ under job_mu_. done_cv_ signals the submitter when the last
//     worker acknowledges (remaining_ reaching zero).
//   * t_in_pool_task marks threads currently executing pool work (workers
//     for their lifetime, the submitter while it participates); nested
//     parallel_for calls from such threads run inline rather than
//     deadlocking on submit_mu_ or oversubscribing the machine.
//
// Exception discipline: the first exception thrown by any participant is
// captured (has_error claims the slot, error publishes under job_mu_ via
// the acknowledgement) and rethrown on the submitting thread after the
// operation drains; remaining participants stop claiming work.
#include "gbtl/detail/pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <vector>

#include "pygb/faultinj.hpp"
#include "pygb/governor.hpp"
#include "pygb/obs/flightrec.hpp"

namespace gbtl::detail {

namespace {

thread_local bool t_in_pool_task = false;

unsigned env_thread_count() {
  const char* v = std::getenv("GBTL_NUM_THREADS");
  const long parsed = (v != nullptr && *v != '\0') ? std::atol(v) : 1;
  return static_cast<unsigned>(parsed < 1 ? 1 : parsed);
}

Schedule env_schedule() {
  const char* v = std::getenv("GBTL_SCHEDULE");
  if (v != nullptr && std::string_view(v) == "dynamic") {
    return Schedule::kDynamic;
  }
  return Schedule::kStatic;
}

/// One parallel_for in flight. Lives on the submitter's stack; workers
/// only touch it between publication and their acknowledgement.
struct Job {
  PoolTaskFn fn = nullptr;
  void* ctx = nullptr;
  IndexType n = 0;
  IndexType chunk = 0;        ///< block (static) or claim unit (dynamic)
  unsigned participants = 0;  ///< submitter + workers doing real work
  Schedule sched = Schedule::kStatic;
  /// The submitter's bound governor context (nullptr = default): workers
  /// re-bind it for the job's duration so checkpoints and memory charges
  /// inside kernels route to the submitting tenant, not the process-wide
  /// scope (per-request isolation, docs/SERVING.md).
  pygb::governor::RequestContext* gov_ctx = nullptr;
  std::atomic<IndexType> next{0};  ///< dynamic-mode claim cursor
  std::atomic<bool> has_error{false};
  std::exception_ptr error;  ///< written by the has_error winner only
};

class WorkerPool {
 public:
  static WorkerPool& instance() {
    static WorkerPool pool;
    return pool;
  }

  unsigned count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  void set_count(unsigned n) {
    n = n < 1 ? 1 : n;
    // Blocks until any in-flight operation drains, so a resize is never
    // concurrent with running tasks.
    std::lock_guard submit(submit_mu_);
    if (n == count_.load(std::memory_order_relaxed) && workers_running()) {
      return;
    }
    stop_workers();
    count_.store(n, std::memory_order_relaxed);
    pygb::flightrec::record(pygb::flightrec::EventKind::kPool, "resize", n);
    // The new complement starts lazily on the next parallel operation.
  }

  Schedule sched() const noexcept {
    return sched_.load(std::memory_order_relaxed);
  }
  void set_sched(Schedule s) noexcept {
    sched_.store(s, std::memory_order_relaxed);
  }

  void parallel_for(IndexType n, PoolTaskFn fn, void* ctx) {
    if (n == 0) return;
    // Chaos hook: a submit that throws must propagate to the caller
    // without wedging the pool (or any registry in-flight record above
    // it). Thrown before publication, like a real resource failure would.
    if (pygb::faultinj::check(pygb::faultinj::site::kPoolSubmit)) {
      throw std::runtime_error("gbtl: fault injected at pool_submit");
    }
    const unsigned requested = count();
    unsigned workers = requested;
    if (workers > 1 && n / workers < kMinRowsPerThread) {
      const IndexType fit = n / kMinRowsPerThread;
      workers = static_cast<unsigned>(fit > 0 ? fit : 1);
    }
    if (workers <= 1 || t_in_pool_task) {
      fn(ctx, IndexType{0}, n);
      return;
    }

    std::unique_lock submit(submit_mu_, std::try_to_lock);
    if (!submit.owns_lock()) {
      // Another host thread owns the pool; don't queue behind it.
      fn(ctx, IndexType{0}, n);
      return;
    }
    ensure_started();
    if (threads_.empty()) {  // thread creation failed: degrade gracefully
      fn(ctx, IndexType{0}, n);
      return;
    }

    Job job;
    job.fn = fn;
    job.ctx = ctx;
    job.n = n;
    job.gov_ctx = pygb::governor::bound_context();
    job.sched = sched();
    job.participants = std::min<unsigned>(
        workers, static_cast<unsigned>(threads_.size()) + 1);
    if (job.sched == Schedule::kDynamic) {
      // Several claims per participant to absorb skew, but never chunks so
      // small that cursor traffic dominates.
      const IndexType per =
          job.n / static_cast<IndexType>(job.participants * 4);
      job.chunk = std::max(per, kMinRowsPerThread);
    } else {
      job.chunk = (job.n + job.participants - 1) / job.participants;
    }

    {
      std::lock_guard publish(job_mu_);
      current_ = &job;
      remaining_ = static_cast<unsigned>(threads_.size());
      ++job_seq_;
    }
    job_cv_.notify_all();

    t_in_pool_task = true;
    run_participant(job, 0);
    t_in_pool_task = false;

    {
      std::unique_lock wait(job_mu_);
      done_cv_.wait(wait, [&] { return remaining_ == 0; });
      current_ = nullptr;
    }
    if (job.error) std::rethrow_exception(job.error);
  }

 private:
  WorkerPool()
      : count_(env_thread_count()), sched_(env_schedule()) {}

  ~WorkerPool() {
    std::lock_guard submit(submit_mu_);
    stop_workers();
  }

  bool workers_running() const { return !threads_.empty(); }

  /// Spawn the worker complement if it isn't running (submit_mu_ held).
  void ensure_started() {
    if (!threads_.empty()) return;
    const unsigned n = count_.load(std::memory_order_relaxed);
    if (n <= 1) return;
    threads_.reserve(n - 1);
    try {
      for (unsigned i = 1; i < n; ++i) {
        threads_.emplace_back([this, i] { worker_main(i); });
      }
      // Pool lifecycle events only — never per-parallel_for, which would
      // flush the rings' useful tail within one op.
      pygb::flightrec::record(pygb::flightrec::EventKind::kPool, "start", n);
    } catch (...) {
      stop_workers();  // partial spawn: fall back to inline execution
    }
  }

  /// Drain and join every worker (submit_mu_ held).
  void stop_workers() {
    {
      std::lock_guard publish(job_mu_);
      stop_ = true;
    }
    job_cv_.notify_all();
    for (auto& th : threads_) th.join();
    threads_.clear();
    std::lock_guard publish(job_mu_);
    stop_ = false;
  }

  void worker_main(unsigned index) {
    t_in_pool_task = true;
    // seen starts at 0 while job_seq_ survives pool restarts, so the wake
    // predicate must also require a live job: a worker spawned into a
    // process that already ran jobs would otherwise wake to a stale
    // sequence number with current_ == nullptr. current_ stays set until
    // every worker (this one included) has acknowledged, so no worker can
    // sleep through a job.
    std::uint64_t seen = 0;
    std::unique_lock lock(job_mu_);
    while (true) {
      job_cv_.wait(lock, [&] {
        return stop_ || (current_ != nullptr && job_seq_ != seen);
      });
      if (stop_) return;
      seen = job_seq_;
      Job* job = current_;
      lock.unlock();
      if (index < job->participants) run_participant(*job, index);
      lock.lock();
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }

  // Worker obs spans are emitted by the trampoline in parallel_for_rows
  // (compiled into the caller, which can reach pygb::obs; this file must
  // not assume libpygb is linked).
  static void run_participant(Job& job, unsigned index) {
    // Adopt the submitter's governor context (nullptr = default) so this
    // participant's checkpoints, deadlines, and memory charges belong to
    // the right tenant; restored before acknowledging the job, while the
    // submitter still owns the context's lifetime.
    pygb::governor::ThreadBind bind(job.gov_ctx);
    try {
      if (job.sched == Schedule::kStatic) {
        const IndexType begin =
            static_cast<IndexType>(index) * job.chunk;
        if (begin >= job.n) return;
        const IndexType end = std::min(job.n, begin + job.chunk);
        if (!job.has_error.load(std::memory_order_relaxed)) {
          // Governor checkpoint at the chunk boundary: a cancelled or
          // past-deadline op aborts before the chunk starts; the throw is
          // captured below like any kernel exception.
          pygb::governor::checkpoint();
          job.fn(job.ctx, begin, end);
        }
      } else {
        while (!job.has_error.load(std::memory_order_relaxed)) {
          const IndexType begin =
              job.next.fetch_add(job.chunk, std::memory_order_relaxed);
          if (begin >= job.n) break;
          const IndexType end = std::min(job.n, begin + job.chunk);
          pygb::governor::checkpoint();
          job.fn(job.ctx, begin, end);
        }
      }
    } catch (...) {
      if (!job.has_error.exchange(true)) {
        job.error = std::current_exception();
      }
    }
  }

  std::mutex submit_mu_;  ///< one operation (and one resize) at a time

  std::mutex job_mu_;
  std::condition_variable job_cv_;   ///< workers park here between jobs
  std::condition_variable done_cv_;  ///< submitter waits for the drain
  Job* current_ = nullptr;           ///< guarded by job_mu_
  std::uint64_t job_seq_ = 0;        ///< guarded by job_mu_
  unsigned remaining_ = 0;           ///< unacknowledged workers, job_mu_
  bool stop_ = false;                ///< guarded by job_mu_

  std::vector<std::thread> threads_;  ///< guarded by submit_mu_
  std::atomic<unsigned> count_;
  std::atomic<Schedule> sched_;
};

void api_parallel_for(IndexType n, PoolTaskFn fn, void* ctx) {
  WorkerPool::instance().parallel_for(n, fn, ctx);
}
unsigned api_num_threads() { return WorkerPool::instance().count(); }
void api_set_num_threads(unsigned n) { WorkerPool::instance().set_count(n); }
void api_checkpoint() { pygb::governor::checkpoint(); }
void api_mem_reserve(std::uint64_t bytes) {
  pygb::governor::mem_reserve(bytes);
}
void api_mem_release(std::uint64_t bytes) {
  pygb::governor::mem_release(bytes);
}
int api_fault_check(const char* site) {
  return static_cast<int>(pygb::faultinj::check(site).action);
}
void* api_request_current() {
  return static_cast<void*>(pygb::governor::bound_context());
}
void api_request_adopt(void* ctx) {
  // Raw (non-scoped) adopt for module-spawned threads; the module is
  // responsible for adopting nullptr before the context dies.
  pygb::governor::detail::t_bound =
      static_cast<pygb::governor::RequestContext*>(ctx);
}
// Leaf atomics for the mxv direction-optimization decisions (the simd
// backend's push-vs-pull choice, gbtl/ops/mxv.hpp). They live HERE — not in
// pygb::obs — because the notes arrive through this routing layer from both
// in-repo kernels and dlopen'd modules, and gbtl_pool cannot link obs;
// obs.cpp mirrors them into its counter table (kMxvPushDecisions /
// kMxvPullDecisions) the same way it mirrors the governor's stats.
std::atomic<std::uint64_t> g_mxv_push_decisions{0};
std::atomic<std::uint64_t> g_mxv_pull_decisions{0};

void note_counters(const char* what) {
  if (std::strcmp(what, "mxv_push") == 0) {
    g_mxv_push_decisions.fetch_add(1, std::memory_order_relaxed);
  } else if (std::strcmp(what, "mxv_pull") == 0) {
    g_mxv_pull_decisions.fetch_add(1, std::memory_order_relaxed);
  }
}

void api_flight_note(const char* what, std::uint64_t v0, std::uint64_t v1) {
  note_counters(what);
  pygb::flightrec::record(pygb::flightrec::EventKind::kModule, what, v0, v1);
}

}  // namespace

unsigned pool_num_threads() { return WorkerPool::instance().count(); }

void pool_set_num_threads(unsigned n) { WorkerPool::instance().set_count(n); }

void pool_parallel_for(IndexType n, PoolTaskFn fn, void* ctx) {
  WorkerPool::instance().parallel_for(n, fn, ctx);
}

Schedule pool_schedule() { return WorkerPool::instance().sched(); }

void pool_set_schedule(Schedule s) { WorkerPool::instance().set_sched(s); }

void pool_checkpoint() { pygb::governor::checkpoint(); }

void pool_mem_reserve(std::uint64_t bytes) {
  pygb::governor::mem_reserve(bytes);
}

void pool_mem_release(std::uint64_t bytes) noexcept {
  pygb::governor::mem_release(bytes);
}

int pool_fault_check(const char* site) noexcept {
  return static_cast<int>(pygb::faultinj::check(site).action);
}

void pool_flight_note(const char* what, std::uint64_t v0,
                      std::uint64_t v1) noexcept {
  note_counters(what);
  pygb::flightrec::record(pygb::flightrec::EventKind::kModule, what, v0, v1);
}

std::uint64_t mxv_push_decisions() noexcept {
  return g_mxv_push_decisions.load(std::memory_order_relaxed);
}
std::uint64_t mxv_pull_decisions() noexcept {
  return g_mxv_pull_decisions.load(std::memory_order_relaxed);
}
void reset_mxv_decisions() noexcept {
  g_mxv_push_decisions.store(0, std::memory_order_relaxed);
  g_mxv_pull_decisions.store(0, std::memory_order_relaxed);
}

void* pool_request_current() noexcept {
  return static_cast<void*>(pygb::governor::bound_context());
}

void pool_request_adopt(void* ctx) noexcept { api_request_adopt(ctx); }

const PoolApi* host_pool_api() {
  static const PoolApi api{kPoolAbiVersion,    &api_parallel_for,
                           &api_num_threads,   &api_set_num_threads,
                           &api_checkpoint,    &api_mem_reserve,
                           &api_mem_release,   &api_fault_check,
                           &api_flight_note,   &api_request_current,
                           &api_request_adopt};
  return &api;
}

}  // namespace gbtl::detail
