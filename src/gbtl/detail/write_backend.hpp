// gbtl/detail/write_backend.hpp — the one place that implements the
// GraphBLAS output-write discipline shared by every operation:
//
//   T = op(inputs)                      (computed by the caller)
//   Z = accum ? (C (+) T) : T          (union-merge; accum where both exist)
//   C = mask/replace merge of Z into C (true: take Z; false: keep or clear)
//
// Centralizing this logic keeps each kernel focused on producing T and
// guarantees identical mask/accumulate/replace behaviour across operations.
#pragma once

#include <type_traits>
#include <utility>
#include <vector>

#include "gbtl/matrix.hpp"
#include "gbtl/types.hpp"
#include "gbtl/vector.hpp"
#include "gbtl/views.hpp"

namespace gbtl::detail {

/// True when AccumT is the NoAccumulate tag rather than a binary op.
template <typename AccumT>
inline constexpr bool no_accum_v =
    std::is_same_v<std::remove_cvref_t<AccumT>, NoAccumulate>;

/// Merge the computed result T into the output matrix C under mask M with
/// accumulator `accum` and the given output control. T must have the same
/// shape as C. T's scalar type is cast into C's on write.
template <typename CT, typename TT, typename MaskT, typename AccumT>
void write_matrix_result(Matrix<CT>& c, const Matrix<TT>& t, const MaskT& m,
                         AccumT accum, OutputControl outp) {
  check_mask_shape(m, c);
  if (t.nrows() != c.nrows() || t.ncols() != c.ncols()) {
    throw DimensionException("internal: result shape mismatch");
  }

  using CRow = typename Matrix<CT>::Row;
  for (IndexType i = 0; i < c.nrows(); ++i) {
    const auto& crow = c.row(i);
    const auto& trow = t.row(i);
    CRow out;
    out.reserve(crow.size() + trow.size());

    auto ci = crow.begin();
    auto ti = trow.begin();
    // Walk the union of stored positions in C and T (sorted two-pointer
    // merge); positions stored in neither need no action under any mode.
    while (ci != crow.end() || ti != trow.end()) {
      IndexType j;
      bool has_c = false, has_t = false;
      CT cv{};
      TT tv{};
      if (ti == trow.end() || (ci != crow.end() && ci->first < ti->first)) {
        j = ci->first;
        cv = ci->second;
        has_c = true;
        ++ci;
      } else if (ci == crow.end() || ti->first < ci->first) {
        j = ti->first;
        tv = ti->second;
        has_t = true;
        ++ti;
      } else {
        j = ci->first;
        cv = ci->second;
        tv = ti->second;
        has_c = has_t = true;
        ++ci;
        ++ti;
      }

      const bool masked_in = mask_value(m, i, j);
      if (!masked_in) {
        // Outside the mask: merge keeps the old value, replace drops it.
        if (has_c && outp == OutputControl::kMerge) out.emplace_back(j, cv);
        continue;
      }
      if constexpr (no_accum_v<AccumT>) {
        // No accumulator: masked-in positions take exactly T's structure.
        if (has_t) out.emplace_back(j, static_cast<CT>(tv));
      } else {
        if (has_c && has_t) {
          out.emplace_back(j, static_cast<CT>(accum(cv, tv)));
        } else if (has_t) {
          out.emplace_back(j, static_cast<CT>(tv));
        } else {
          out.emplace_back(j, cv);  // accumulate keeps prior output values
        }
      }
    }
    c.setRow(i, std::move(out));
  }
}

/// Vector counterpart of write_matrix_result.
template <typename CT, typename TT, typename MaskT, typename AccumT>
void write_vector_result(Vector<CT>& c, const Vector<TT>& t, const MaskT& m,
                         AccumT accum, OutputControl outp) {
  check_vec_mask_shape(m, c);
  if (t.size() != c.size()) {
    throw DimensionException("internal: result size mismatch");
  }

  for (IndexType i = 0; i < c.size(); ++i) {
    const bool has_c = c.has_unchecked(i);
    const bool has_t = t.has_unchecked(i);
    if (!has_c && !has_t) continue;

    const bool masked_in = mask_value(m, i);
    if (!masked_in) {
      if (has_c && outp == OutputControl::kReplace) c.removeElement(i);
      continue;
    }
    if constexpr (no_accum_v<AccumT>) {
      if (has_t) {
        c.set_unchecked(i, static_cast<CT>(t.value_unchecked(i)));
      } else {
        c.removeElement(i);
      }
    } else {
      if (has_c && has_t) {
        c.set_unchecked(i, static_cast<CT>(accum(c.value_unchecked(i),
                                                 t.value_unchecked(i))));
      } else if (has_t) {
        c.set_unchecked(i, static_cast<CT>(t.value_unchecked(i)));
      }
      // has_c only: accumulate keeps the prior value — nothing to do.
    }
  }
}

}  // namespace gbtl::detail
