// gbtl/detail/pool.hpp — the persistent worker pool behind the
// multithreaded substrate backend.
//
// The pool replaces the spawn/join-per-call threading of the original
// parallel_for_rows: GBTL_NUM_THREADS - 1 workers are started lazily on
// the first parallel operation, parked on a condition variable between
// operations, and reused for every subsequent parallel_for_rows. Two
// partitioning modes are supported (GBTL_SCHEDULE, overridable with
// set_schedule):
//
//   static  — one contiguous block of rows per participant (the default;
//             lowest overhead, ideal for uniform row costs);
//   dynamic — participants claim fixed-size chunks off a shared atomic
//             cursor, which load-balances skew-heavy row distributions
//             (RMAT/Kronecker power-law graphs).
//
// Results never depend on the schedule or the worker count: kernels write
// disjoint per-row (or per-tile) staging slots and all combining happens
// in a deterministic sequential tail on the caller.
//
// Two builds see this header (the dlopen constraint documented in
// parallel.hpp):
//
//   * in-repo targets (GBTL_POOL_LINKED defined) link detail/pool.cpp and
//     call the pool_* entry points below directly;
//   * JIT-generated modules are compiled with a bare `g++ -shared` that
//     never links libpygb. They receive the host's pool through a function
//     table (PoolApi) injected right after dlopen via the
//     pygb_module_set_pool export (defined in pygb/jit/glue.hpp); until —
//     or unless — that injection happens, they degrade to inline
//     sequential loops.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "gbtl/types.hpp"

namespace gbtl::detail {

/// Task callback: run rows [begin, end) of the submitted range. A single
/// parallel_for call may invoke it many times (once per chunk).
using PoolTaskFn = void (*)(void* ctx, IndexType begin, IndexType end);

/// Row-partitioning strategy for one parallel_for (see header comment).
enum class Schedule : unsigned { kStatic = 0, kDynamic = 1 };

/// Below this many rows per worker the dispatch cost dwarfs any win; the
/// pool clamps its participant count so every block is at least this tall,
/// and parallel_for_rows runs ranges shorter than twice this inline.
inline constexpr IndexType kMinRowsPerThread = 64;

/// C-layout function table handed to dlopen'd JIT modules so their kernels
/// dispatch onto the host's pool instead of looping sequentially. The ABI
/// version is checked by the module before accepting the table.
///
/// v2 adds the pygb::governor routing (docs/ROBUSTNESS.md): checkpoint()
/// and mem_reserve() may throw host exceptions; they unwind through the
/// module's frames safely because host and module share one g++ unwinder
/// (the same contract that already lets pool worker exceptions rethrow
/// across the boundary). A v1 module handed this table rejects it and
/// degrades to sequential, ungoverned execution — the cache schema bump
/// (pygb/jit/cache.hpp) retires those modules anyway.
///
/// v3 adds the observability routing (docs/OBSERVABILITY.md): fault_check()
/// lets generated kernels carry pygb::faultinj sites (the kernel_crash site
/// behind the crash-attribution test), and flight_note() lets them drop
/// events into the host's flight recorder. Both are noexcept and cheap;
/// without an injected pool they no-op, exactly like the governor hooks.
///
/// v4 adds per-request governor context routing (docs/SERVING.md): the
/// checkpoint/mem_reserve/mem_release entries above are now CONTEXT
/// SENSITIVE on the host side — they act on the calling thread's bound
/// pygb::governor::RequestContext (the pool re-binds the submitter's
/// context on every worker for a job's duration, so this is transparent to
/// kernels). request_current()/request_adopt() expose the binding itself
/// for module code that spawns its own threads and must carry the tenant
/// across. The table stays append-only: a v3 module handed this table
/// works unchanged (its governor calls route per-request automatically);
/// a v4 module handed a v3 table skips the new entries.
struct PoolApi {
  unsigned abi_version;
  void (*parallel_for)(IndexType n, PoolTaskFn fn, void* ctx);
  unsigned (*num_threads)();
  void (*set_num_threads)(unsigned n);
  // -- v2: governor routing --
  void (*checkpoint)();                       ///< cancellation/deadline point
  void (*mem_reserve)(std::uint64_t bytes);   ///< budget charge (may throw)
  void (*mem_release)(std::uint64_t bytes);   ///< return a charge (noexcept)
  // -- v3: observability routing --
  int (*fault_check)(const char* site);       ///< pygb::faultinj action code
  void (*flight_note)(const char* what, std::uint64_t v0,
                      std::uint64_t v1);      ///< flight-recorder event
  // -- v4: per-request governor context routing --
  void* (*request_current)();        ///< opaque RequestContext* of caller
  void (*request_adopt)(void* ctx);  ///< bind ctx (nullptr = default) here
};

inline constexpr unsigned kPoolAbiVersion = 4;

/// The injection export generated modules carry (see pygb/jit/glue.hpp);
/// pygb::jit::load_kernel dlsym's this name after every successful dlopen.
inline constexpr const char* kPoolInjectSymbol = "pygb_module_set_pool";

#if defined(GBTL_POOL_LINKED)

// Implemented in detail/pool.cpp (linked into every in-repo target through
// the gbtl interface library).

/// Current worker count (1 = fully sequential, no thread machinery).
/// Initialized from GBTL_NUM_THREADS on first use.
unsigned pool_num_threads();

/// Resize the pool (values < 1 clamp to 1). Takes effect immediately:
/// running workers are drained and joined; the new complement is started
/// lazily on the next parallel operation.
void pool_set_num_threads(unsigned n);

/// Run fn(ctx, begin, end) over a partition of [0, n) on the pool.
/// Worker exceptions are captured and the first one is rethrown on the
/// caller after the operation completes. Nested calls (from inside a pool
/// task) and calls while another host thread owns the pool run inline.
void pool_parallel_for(IndexType n, PoolTaskFn fn, void* ctx);

/// Current partitioning mode. Initialized from GBTL_SCHEDULE
/// ("static" | "dynamic", default static) on first use.
Schedule pool_schedule();
void pool_set_schedule(Schedule s);

/// The function table injected into JIT modules (stable for the process
/// lifetime).
const PoolApi* host_pool_api();

/// Governor routing (pygb::governor; docs/ROBUSTNESS.md). Kernels and
/// algorithms call these instead of including governor.hpp directly so the
/// SAME header line compiles in JIT modules, where the calls route through
/// the injected PoolApi (and no-op if the host never injected it).
void pool_checkpoint();
void pool_mem_reserve(std::uint64_t bytes);
void pool_mem_release(std::uint64_t bytes) noexcept;

/// Observability routing (pygb::faultinj / pygb::flightrec). Same
/// same-header-both-builds contract as the governor hooks above.
int pool_fault_check(const char* site) noexcept;
void pool_flight_note(const char* what, std::uint64_t v0,
                      std::uint64_t v1) noexcept;

/// Per-request context routing (PoolApi v4): the calling thread's bound
/// pygb::governor::RequestContext as an opaque pointer, and a way to adopt
/// one on a thread the pool does not manage. In-repo code should prefer
/// pygb::governor::{bound_context, ThreadBind} directly; these exist so
/// the SAME call compiles inside JIT modules.
void* pool_request_current() noexcept;
void pool_request_adopt(void* ctx) noexcept;

/// mxv direction-optimization decision counters (gbtl/ops/mxv.hpp). Kept
/// here because flight notes from BOTH in-repo kernels and dlopen'd
/// modules funnel through this layer; pygb::obs mirrors them into its
/// counter table for `--stats`.
std::uint64_t mxv_push_decisions() noexcept;
std::uint64_t mxv_pull_decisions() noexcept;
void reset_mxv_decisions() noexcept;

#else  // !GBTL_POOL_LINKED — a JIT module compiled without libpygb.

/// The host-injected pool table (null until pygb_module_set_pool runs).
inline std::atomic<const PoolApi*>& pool_api_slot() {
  static std::atomic<const PoolApi*> api{nullptr};
  return api;
}

namespace poolfallback {
/// Thread-count fallback used only when the host never injected its pool
/// (a stale cached module or a standalone compile of generated source).
inline std::atomic<unsigned>& thread_count_slot() {
  static std::atomic<unsigned> count = [] {
    const char* v = std::getenv("GBTL_NUM_THREADS");
    const long parsed = (v != nullptr && *v != '\0') ? std::atol(v) : 1;
    return static_cast<unsigned>(parsed < 1 ? 1 : parsed);
  }();
  return count;
}
}  // namespace poolfallback

inline unsigned pool_num_threads() {
  if (const PoolApi* api = pool_api_slot().load(std::memory_order_acquire)) {
    return api->num_threads();
  }
  return poolfallback::thread_count_slot().load();
}

inline void pool_set_num_threads(unsigned n) {
  if (const PoolApi* api = pool_api_slot().load(std::memory_order_acquire)) {
    api->set_num_threads(n);
    return;
  }
  poolfallback::thread_count_slot().store(n < 1 ? 1 : n);
}

inline void pool_parallel_for(IndexType n, PoolTaskFn fn, void* ctx) {
  if (const PoolApi* api = pool_api_slot().load(std::memory_order_acquire)) {
    api->parallel_for(n, fn, ctx);
    return;
  }
  fn(ctx, IndexType{0}, n);  // no pool injected: inline sequential loop
}

// Governor routing through the injected table. Without an injected pool
// the module runs ungoverned (same degrade philosophy as the sequential
// loop above): uncancellable, unbudgeted, but correct.
inline void pool_checkpoint() {
  if (const PoolApi* api = pool_api_slot().load(std::memory_order_acquire)) {
    api->checkpoint();
  }
}

inline void pool_mem_reserve(std::uint64_t bytes) {
  if (const PoolApi* api = pool_api_slot().load(std::memory_order_acquire)) {
    api->mem_reserve(bytes);
  }
}

inline void pool_mem_release(std::uint64_t bytes) noexcept {
  if (const PoolApi* api = pool_api_slot().load(std::memory_order_acquire)) {
    api->mem_release(bytes);
  }
}

// Observability routing. Gated on abi_version >= 3 so a module built
// against this header still tolerates an older injected table (it just
// loses fault sites and flight events, not correctness).
inline int pool_fault_check(const char* site) noexcept {
  if (const PoolApi* api = pool_api_slot().load(std::memory_order_acquire)) {
    if (api->abi_version >= 3 && api->fault_check != nullptr) {
      return api->fault_check(site);
    }
  }
  return 0;
}

inline void pool_flight_note(const char* what, std::uint64_t v0,
                             std::uint64_t v1) noexcept {
  if (const PoolApi* api = pool_api_slot().load(std::memory_order_acquire)) {
    if (api->abi_version >= 3 && api->flight_note != nullptr) {
      api->flight_note(what, v0, v1);
    }
  }
}

// Per-request context routing. Gated on abi_version >= 4: an older
// injected table simply cannot carry a tenant binding across
// module-spawned threads (governor calls still route correctly on host
// and pool threads, where the host manages the binding).
inline void* pool_request_current() noexcept {
  if (const PoolApi* api = pool_api_slot().load(std::memory_order_acquire)) {
    if (api->abi_version >= 4 && api->request_current != nullptr) {
      return api->request_current();
    }
  }
  return nullptr;
}

inline void pool_request_adopt(void* ctx) noexcept {
  if (const PoolApi* api = pool_api_slot().load(std::memory_order_acquire)) {
    if (api->abi_version >= 4 && api->request_adopt != nullptr) {
      api->request_adopt(ctx);
    }
  }
}

#endif  // GBTL_POOL_LINKED

/// RAII budget charge for kernel staging buffers, built on the routed
/// entry points above so it works identically in-repo and inside JIT
/// modules. charge() raises pygb::governor::ResourceExhausted BEFORE the
/// caller allocates; the destructor returns whatever was granted.
class ScopedMemCharge {
 public:
  ScopedMemCharge() = default;
  explicit ScopedMemCharge(std::uint64_t bytes) { charge(bytes); }
  ScopedMemCharge(const ScopedMemCharge&) = delete;
  ScopedMemCharge& operator=(const ScopedMemCharge&) = delete;
  ScopedMemCharge(ScopedMemCharge&& other) noexcept : bytes_(other.bytes_) {
    other.bytes_ = 0;
  }
  ~ScopedMemCharge() { release(); }

  void charge(std::uint64_t bytes) {
    pool_mem_reserve(bytes);
    bytes_ += bytes;
  }
  void release() noexcept {
    if (bytes_ != 0) {
      pool_mem_release(bytes_);
      bytes_ = 0;
    }
  }

 private:
  std::uint64_t bytes_ = 0;
};

}  // namespace gbtl::detail
