// gbtl/detail/simd.hpp — AVX2-width inner loops for the dense elementwise
// hot paths of the `simd` backend (docs/BACKENDS.md).
//
// Scope is deliberately narrow: only per-element-INDEPENDENT work is
// vectorized (eWise add/mult over fully dense vectors, apply with a plain
// or bound arithmetic op). Lane-parallel ⊕-reductions are excluded on
// purpose — reassociating a float fold would break the bit-identity
// guarantee the differential and property suites pin down. Min/Max are
// also excluded: `vminpd`/`vmaxpd` resolve ties (and ±0.0) toward the
// second operand while std::min/max keep the first, which is visible at
// the bit level.
//
// Every vectorized op here is bit-exact per lane (IEEE +, -, *, / and
// sign-flip are deterministic elementwise), so scalar and simd backends
// produce identical bytes.
//
// The AVX2 bodies are concrete functions carrying
// __attribute__((target("avx2"))) — no global -mavx2 flag, so this header
// stays safe to compile into JIT modules with the stock g++ invocation —
// and every caller falls back to its own scalar loop when cpu_has_avx2()
// is false (or on non-x86).
#pragma once

#include <cstddef>
#include <type_traits>

#include "gbtl/algebra.hpp"
#include "gbtl/detail/backend.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define GBTL_SIMD_X86 1
#endif

namespace gbtl::detail {

// --- which (op, dtype) pairs vectorize -------------------------------------

enum class VecBin : int { kNone = -1, kAdd = 0, kSub, kMul, kDiv };
enum class VecUn : int {
  kNone = -1,
  kCopy = 0,  ///< Identity
  kNeg,       ///< AdditiveInverse (sign-bit flip: exact -x)
  kAddS,      ///< x + s
  kSubS,      ///< x - s
  kRsubS,     ///< s - x
  kMulS,      ///< x * s
  kDivS,      ///< x / s
  kRdivS,     ///< s / x
};

template <typename T>
inline constexpr bool vec_dtype_v =
    std::is_same_v<T, double> || std::is_same_v<T, float>;

template <typename Op, typename T>
struct VecBinOf {
  static constexpr VecBin kind = VecBin::kNone;
};
template <typename T>
struct VecBinOf<Plus<T, T, T>, T> {
  static constexpr VecBin kind = VecBin::kAdd;
};
template <typename T>
struct VecBinOf<Minus<T, T, T>, T> {
  static constexpr VecBin kind = VecBin::kSub;
};
template <typename T>
struct VecBinOf<Times<T, T, T>, T> {
  static constexpr VecBin kind = VecBin::kMul;
};
template <typename T>
struct VecBinOf<Div<T, T, T>, T> {
  static constexpr VecBin kind = VecBin::kDiv;
};

// --- AVX2 bodies ------------------------------------------------------------

#if defined(GBTL_SIMD_X86)

__attribute__((target("avx2"))) inline void avx2_bin_f64(
    VecBin kind, const double* a, const double* b, double* out,
    std::size_t n) {
  std::size_t i = 0;
  switch (kind) {
    case VecBin::kAdd:
      for (; i + 4 <= n; i += 4) {
        _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(a + i),
                                                _mm256_loadu_pd(b + i)));
      }
      for (; i < n; ++i) out[i] = a[i] + b[i];
      break;
    case VecBin::kSub:
      for (; i + 4 <= n; i += 4) {
        _mm256_storeu_pd(out + i, _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                                _mm256_loadu_pd(b + i)));
      }
      for (; i < n; ++i) out[i] = a[i] - b[i];
      break;
    case VecBin::kMul:
      for (; i + 4 <= n; i += 4) {
        _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(a + i),
                                                _mm256_loadu_pd(b + i)));
      }
      for (; i < n; ++i) out[i] = a[i] * b[i];
      break;
    case VecBin::kDiv:
      for (; i + 4 <= n; i += 4) {
        _mm256_storeu_pd(out + i, _mm256_div_pd(_mm256_loadu_pd(a + i),
                                                _mm256_loadu_pd(b + i)));
      }
      for (; i < n; ++i) out[i] = a[i] / b[i];
      break;
    case VecBin::kNone:
      break;
  }
}

__attribute__((target("avx2"))) inline void avx2_bin_f32(
    VecBin kind, const float* a, const float* b, float* out, std::size_t n) {
  std::size_t i = 0;
  switch (kind) {
    case VecBin::kAdd:
      for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(a + i),
                                                _mm256_loadu_ps(b + i)));
      }
      for (; i < n; ++i) out[i] = a[i] + b[i];
      break;
    case VecBin::kSub:
      for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(out + i, _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                                _mm256_loadu_ps(b + i)));
      }
      for (; i < n; ++i) out[i] = a[i] - b[i];
      break;
    case VecBin::kMul:
      for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                                _mm256_loadu_ps(b + i)));
      }
      for (; i < n; ++i) out[i] = a[i] * b[i];
      break;
    case VecBin::kDiv:
      for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(out + i, _mm256_div_ps(_mm256_loadu_ps(a + i),
                                                _mm256_loadu_ps(b + i)));
      }
      for (; i < n; ++i) out[i] = a[i] / b[i];
      break;
    case VecBin::kNone:
      break;
  }
}

__attribute__((target("avx2"))) inline void avx2_un_f64(
    VecUn kind, const double* a, double s, double* out, std::size_t n) {
  std::size_t i = 0;
  const __m256d vs = _mm256_set1_pd(s);
  const __m256d sign = _mm256_set1_pd(-0.0);
  switch (kind) {
    case VecUn::kCopy:
      for (; i + 4 <= n; i += 4) {
        _mm256_storeu_pd(out + i, _mm256_loadu_pd(a + i));
      }
      for (; i < n; ++i) out[i] = a[i];
      break;
    case VecUn::kNeg:
      for (; i + 4 <= n; i += 4) {
        _mm256_storeu_pd(out + i,
                         _mm256_xor_pd(_mm256_loadu_pd(a + i), sign));
      }
      for (; i < n; ++i) out[i] = -a[i];
      break;
    case VecUn::kAddS:
      for (; i + 4 <= n; i += 4) {
        _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(a + i), vs));
      }
      for (; i < n; ++i) out[i] = a[i] + s;
      break;
    case VecUn::kSubS:
      for (; i + 4 <= n; i += 4) {
        _mm256_storeu_pd(out + i, _mm256_sub_pd(_mm256_loadu_pd(a + i), vs));
      }
      for (; i < n; ++i) out[i] = a[i] - s;
      break;
    case VecUn::kRsubS:
      for (; i + 4 <= n; i += 4) {
        _mm256_storeu_pd(out + i, _mm256_sub_pd(vs, _mm256_loadu_pd(a + i)));
      }
      for (; i < n; ++i) out[i] = s - a[i];
      break;
    case VecUn::kMulS:
      for (; i + 4 <= n; i += 4) {
        _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(a + i), vs));
      }
      for (; i < n; ++i) out[i] = a[i] * s;
      break;
    case VecUn::kDivS:
      for (; i + 4 <= n; i += 4) {
        _mm256_storeu_pd(out + i, _mm256_div_pd(_mm256_loadu_pd(a + i), vs));
      }
      for (; i < n; ++i) out[i] = a[i] / s;
      break;
    case VecUn::kRdivS:
      for (; i + 4 <= n; i += 4) {
        _mm256_storeu_pd(out + i, _mm256_div_pd(vs, _mm256_loadu_pd(a + i)));
      }
      for (; i < n; ++i) out[i] = s / a[i];
      break;
    case VecUn::kNone:
      break;
  }
}

__attribute__((target("avx2"))) inline void avx2_un_f32(
    VecUn kind, const float* a, float s, float* out, std::size_t n) {
  std::size_t i = 0;
  const __m256 vs = _mm256_set1_ps(s);
  const __m256 sign = _mm256_set1_ps(-0.0f);
  switch (kind) {
    case VecUn::kCopy:
      for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(out + i, _mm256_loadu_ps(a + i));
      }
      for (; i < n; ++i) out[i] = a[i];
      break;
    case VecUn::kNeg:
      for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(out + i,
                         _mm256_xor_ps(_mm256_loadu_ps(a + i), sign));
      }
      for (; i < n; ++i) out[i] = -a[i];
      break;
    case VecUn::kAddS:
      for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(a + i), vs));
      }
      for (; i < n; ++i) out[i] = a[i] + s;
      break;
    case VecUn::kSubS:
      for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(out + i, _mm256_sub_ps(_mm256_loadu_ps(a + i), vs));
      }
      for (; i < n; ++i) out[i] = a[i] - s;
      break;
    case VecUn::kRsubS:
      for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(out + i, _mm256_sub_ps(vs, _mm256_loadu_ps(a + i)));
      }
      for (; i < n; ++i) out[i] = s - a[i];
      break;
    case VecUn::kMulS:
      for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), vs));
      }
      for (; i < n; ++i) out[i] = a[i] * s;
      break;
    case VecUn::kDivS:
      for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(out + i, _mm256_div_ps(_mm256_loadu_ps(a + i), vs));
      }
      for (; i < n; ++i) out[i] = a[i] / s;
      break;
    case VecUn::kRdivS:
      for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(out + i, _mm256_div_ps(vs, _mm256_loadu_ps(a + i)));
      }
      for (; i < n; ++i) out[i] = s / a[i];
      break;
    case VecUn::kNone:
      break;
  }
}

#endif  // GBTL_SIMD_X86

// --- typed entry points -----------------------------------------------------

/// out[i] = op(a[i], b[i]) for i < n via AVX2, when `Op` is a homogeneous
/// float/double +,-,*,/ and the CPU has AVX2. Returns false otherwise —
/// the caller runs its (bit-identical) scalar loop.
template <typename Op, typename T>
inline bool vec_binary_dense(const T* a, const T* b, T* out, std::size_t n) {
#if defined(GBTL_SIMD_X86)
  constexpr VecBin kind = VecBinOf<Op, T>::kind;
  if constexpr (kind != VecBin::kNone && vec_dtype_v<T>) {
    if (!cpu_has_avx2()) return false;
    if constexpr (std::is_same_v<T, double>) {
      avx2_bin_f64(kind, a, b, out, n);
    } else {
      avx2_bin_f32(kind, a, b, out, n);
    }
    return true;
  }
#endif
  (void)a;
  (void)b;
  (void)out;
  (void)n;
  return false;
}

/// Unary-kind extraction for apply: plain Identity/AdditiveInverse, and
/// the BinaryOpBind1st/2nd adaptors over +,-,*,/ (the PageRank teleport
/// `x + s` and damping `x * s` shapes).
template <typename F, typename T>
struct VecUnOf {
  static constexpr VecUn kind = VecUn::kNone;
  static T bound(const F&) { return T{}; }
};
template <typename T>
struct VecUnOf<Identity<T, T>, T> {
  static constexpr VecUn kind = VecUn::kCopy;
  static T bound(const Identity<T, T>&) { return T{}; }
};
template <typename T>
struct VecUnOf<AdditiveInverse<T, T>, T> {
  static constexpr VecUn kind = VecUn::kNeg;
  static T bound(const AdditiveInverse<T, T>&) { return T{}; }
};
template <typename T>
struct VecUnOf<BinaryOpBind2nd<T, Plus<T, T, T>>, T> {
  static constexpr VecUn kind = VecUn::kAddS;
  static T bound(const BinaryOpBind2nd<T, Plus<T, T, T>>& f) {
    return f.bound();
  }
};
template <typename T>
struct VecUnOf<BinaryOpBind2nd<T, Minus<T, T, T>>, T> {
  static constexpr VecUn kind = VecUn::kSubS;
  static T bound(const BinaryOpBind2nd<T, Minus<T, T, T>>& f) {
    return f.bound();
  }
};
template <typename T>
struct VecUnOf<BinaryOpBind2nd<T, Times<T, T, T>>, T> {
  static constexpr VecUn kind = VecUn::kMulS;
  static T bound(const BinaryOpBind2nd<T, Times<T, T, T>>& f) {
    return f.bound();
  }
};
template <typename T>
struct VecUnOf<BinaryOpBind2nd<T, Div<T, T, T>>, T> {
  static constexpr VecUn kind = VecUn::kDivS;
  static T bound(const BinaryOpBind2nd<T, Div<T, T, T>>& f) {
    return f.bound();
  }
};
template <typename T>
struct VecUnOf<BinaryOpBind1st<T, Plus<T, T, T>>, T> {
  static constexpr VecUn kind = VecUn::kAddS;  // s + x == x + s bitwise
  static T bound(const BinaryOpBind1st<T, Plus<T, T, T>>& f) {
    return f.bound();
  }
};
template <typename T>
struct VecUnOf<BinaryOpBind1st<T, Minus<T, T, T>>, T> {
  static constexpr VecUn kind = VecUn::kRsubS;
  static T bound(const BinaryOpBind1st<T, Minus<T, T, T>>& f) {
    return f.bound();
  }
};
template <typename T>
struct VecUnOf<BinaryOpBind1st<T, Times<T, T, T>>, T> {
  static constexpr VecUn kind = VecUn::kMulS;  // s * x == x * s bitwise
  static T bound(const BinaryOpBind1st<T, Times<T, T, T>>& f) {
    return f.bound();
  }
};
template <typename T>
struct VecUnOf<BinaryOpBind1st<T, Div<T, T, T>>, T> {
  static constexpr VecUn kind = VecUn::kRdivS;
  static T bound(const BinaryOpBind1st<T, Div<T, T, T>>& f) {
    return f.bound();
  }
};

/// out[i] = f(a[i]) for i < n via AVX2 when `F` is one of the recognized
/// unary shapes over float/double. Returns false otherwise.
template <typename F, typename T>
inline bool vec_unary_dense(const F& f, const T* a, T* out, std::size_t n) {
#if defined(GBTL_SIMD_X86)
  constexpr VecUn kind = VecUnOf<F, T>::kind;
  if constexpr (kind != VecUn::kNone && vec_dtype_v<T>) {
    if (!cpu_has_avx2()) return false;
    const T s = VecUnOf<F, T>::bound(f);
    if constexpr (std::is_same_v<T, double>) {
      avx2_un_f64(kind, a, s, out, n);
    } else {
      avx2_un_f32(kind, a, s, out, n);
    }
    return true;
  }
#endif
  (void)f;
  (void)a;
  (void)out;
  (void)n;
  return false;
}

}  // namespace gbtl::detail
