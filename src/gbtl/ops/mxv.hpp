// gbtl/ops/mxv.hpp — masked matrix-vector and vector-matrix multiply:
//   w<m, z> = w (+) A ⊕.⊗ u        (mxv)
//   w<m, z> = w (+) u ⊕.⊗ A        (vxm)
//
// Kernels:
//   * mxv, A row-major       — per-row "pull" dot against u's O(1) lookup.
//   * mxv, A transposed      — "push" scatter over the stored entries of u
//                              (the BFS frontier expansion of Fig. 2:
//                              frontier = graph.T @ frontier).
//   * vxm is mxv with the multiply's argument order swapped, so vxm(A) uses
//     the push kernel and vxm(A^T) the pull kernel.
#pragma once

#include "gbtl/algebra.hpp"
#include "gbtl/detail/parallel.hpp"
#include "gbtl/detail/write_backend.hpp"
#include "gbtl/matrix.hpp"
#include "gbtl/types.hpp"
#include "gbtl/vector.hpp"
#include "gbtl/views.hpp"

namespace gbtl {

namespace detail {

/// Pull kernel: t[i] = ⊕_j mult(A(i,j), u(j)) over stored matches.
/// MultFlip=false computes mult(a, u); true computes mult(u, a) (for vxm).
/// Output rows are independent, so the row loop is block-parallel when
/// GBTL_NUM_THREADS > 1 (workers fill disjoint staging slots; the vector's
/// shared nvals bookkeeping is updated in the sequential assembly pass).
template <bool MultFlip, typename D3, typename AT, typename UT,
          typename SemiringT>
Vector<D3> mv_pull(const SemiringT& sr, const Matrix<AT>& a,
                   const Vector<UT>& u) {
  Vector<D3> t(a.nrows());
  ScopedMemCharge charge(a.nrows() * (1 + sizeof(D3)));
  std::vector<unsigned char> present(a.nrows(), 0);
  std::vector<D3> vals(a.nrows());
  detail::parallel_for_rows(a.nrows(), [&](IndexType begin, IndexType end) {
    for (IndexType i = begin; i < end; ++i) {
      pool_checkpoint();
      bool found = false;
      D3 acc{};
      for (const auto& [j, av] : a.row(i)) {
        if (!u.has_unchecked(j)) continue;
        D3 prod;
        if constexpr (MultFlip) {
          prod = static_cast<D3>(sr.mult(u.value_unchecked(j), av));
        } else {
          prod = static_cast<D3>(sr.mult(av, u.value_unchecked(j)));
        }
        acc = found ? sr.add(acc, prod) : prod;
        found = true;
      }
      if (found) {
        present[i] = 1;
        vals[i] = acc;
      }
    }
  });
  for (IndexType i = 0; i < a.nrows(); ++i) {
    if (present[i]) t.set_unchecked(i, vals[i]);
  }
  return t;
}

/// Push kernel: t[j] ⊕= mult(A(i,j), u(i)) for stored u(i) — computes
/// A^T·u (or u·A) touching only rows where u has entries. Scatter targets
/// collide across rows, so this kernel stays sequential (a parallel
/// version would need per-worker accumulators merged with ⊕).
template <bool MultFlip, typename D3, typename AT, typename UT,
          typename SemiringT>
Vector<D3> mv_push(const SemiringT& sr, const Matrix<AT>& a,
                   const Vector<UT>& u) {
  Vector<D3> t(a.ncols());
  ScopedMemCharge charge(a.ncols() / 8 + 1);  // vector<bool> bitmap
  std::vector<bool> present(a.ncols(), false);
  for (IndexType i = 0; i < a.nrows(); ++i) {
    pool_checkpoint();
    if (!u.has_unchecked(i)) continue;
    const UT uv = u.value_unchecked(i);
    for (const auto& [j, av] : a.row(i)) {
      D3 prod;
      if constexpr (MultFlip) {
        prod = static_cast<D3>(sr.mult(uv, av));
      } else {
        prod = static_cast<D3>(sr.mult(av, uv));
      }
      if (present[j]) {
        t.set_unchecked(j, sr.add(t.value_unchecked(j), prod));
      } else {
        present[j] = true;
        t.set_unchecked(j, prod);
      }
    }
  }
  return t;
}

}  // namespace detail

/// w<m, z> = w (+) A ⊕.⊗ u. A may be a Matrix or TransposeView.
template <typename WT, typename MaskT, typename AccumT, typename SemiringT,
          typename AMatT, typename UT>
void mxv(Vector<WT>& w, const MaskT& mask, AccumT accum, const SemiringT& sr,
         const AMatT& a, const Vector<UT>& u,
         OutputControl outp = OutputControl::kMerge) {
  constexpr bool a_trans = is_transpose_view_v<std::remove_cvref_t<AMatT>>;
  if (detail::generic_ncols(a) != u.size()) {
    throw DimensionException("mxv: ncols(A) != size(u)");
  }
  if (w.size() != detail::generic_nrows(a)) {
    throw DimensionException("mxv: size(w) != nrows(A)");
  }
  Vector<WT> t = [&] {
    if constexpr (a_trans) {
      return detail::mv_push<false, WT>(sr, a.inner(), u);
    } else {
      return detail::mv_pull<false, WT>(sr, a, u);
    }
  }();
  detail::write_vector_result(w, t, mask, accum, outp);
}

/// w<m, z> = w (+) u ⊕.⊗ A (row vector times matrix).
template <typename WT, typename MaskT, typename AccumT, typename SemiringT,
          typename UT, typename AMatT>
void vxm(Vector<WT>& w, const MaskT& mask, AccumT accum, const SemiringT& sr,
         const Vector<UT>& u, const AMatT& a,
         OutputControl outp = OutputControl::kMerge) {
  constexpr bool a_trans = is_transpose_view_v<std::remove_cvref_t<AMatT>>;
  if (detail::generic_nrows(a) != u.size()) {
    throw DimensionException("vxm: nrows(A) != size(u)");
  }
  if (w.size() != detail::generic_ncols(a)) {
    throw DimensionException("vxm: size(w) != ncols(A)");
  }
  Vector<WT> t = [&] {
    if constexpr (a_trans) {
      return detail::mv_pull<true, WT>(sr, a.inner(), u);
    } else {
      return detail::mv_push<true, WT>(sr, a, u);
    }
  }();
  detail::write_vector_result(w, t, mask, accum, outp);
}

}  // namespace gbtl
