// gbtl/ops/mxv.hpp — masked matrix-vector and vector-matrix multiply:
//   w<m, z> = w (+) A ⊕.⊗ u        (mxv)
//   w<m, z> = w (+) u ⊕.⊗ A        (vxm)
//
// Kernels:
//   * mxv, A row-major       — per-row "pull" dot against u's O(1) lookup.
//   * mxv, A transposed      — "push" scatter over the stored entries of u
//                              (the BFS frontier expansion of Fig. 2:
//                              frontier = graph.T @ frontier).
//   * vxm is mxv with the multiply's argument order swapped, so vxm(A) uses
//     the push kernel and vxm(A^T) the pull kernel.
//
// Under the simd backend (docs/BACKENDS.md) the push-orientation sites are
// DIRECTION-OPTIMIZED: when the input vector is dense enough
// (PYGB_MXV_PULL_THRESHOLD, default 0.10 of the vector's size) the kernel
// pulls over a cached materialization of A^T instead of scattering — the
// GraphBLAST push/pull heuristic. The two directions are bit-identical by
// construction: push folds contributions into t[j] in ascending stored-i
// order with a first-touch store, and pull over A^T folds row j's entries
// (ascending i, by the transpose-materialization invariant) with the same
// left-fold and the same mult operand order. Each decision is recorded as
// a flight-recorder note and an obs counter (mxv_push_decisions /
// mxv_pull_decisions). The simd backend also pushes vector masks down into
// the kernels: write_vector_result never reads t at masked-out positions,
// so those entries are legal to skip computing.
#pragma once

#include <cstdlib>

#include "gbtl/algebra.hpp"
#include "gbtl/detail/backend.hpp"
#include "gbtl/detail/parallel.hpp"
#include "gbtl/detail/transpose_cache.hpp"
#include "gbtl/detail/write_backend.hpp"
#include "gbtl/matrix.hpp"
#include "gbtl/types.hpp"
#include "gbtl/vector.hpp"
#include "gbtl/views.hpp"

namespace gbtl {

namespace detail {

/// Input-vector density at or above which the push-orientation sites pull
/// over the cached transpose instead. 0 forces pull everywhere stored
/// entries exist; values > 1 force push. Eligibility alone doesn't build
/// the transpose: the first eligible request on a matrix still pushes
/// (cached_transpose_if_amortized), so single-use matrices never pay the
/// O(nnz) materialization.
inline double mxv_pull_threshold() noexcept {
  static const double t = [] {
    const char* v = std::getenv("PYGB_MXV_PULL_THRESHOLD");
    return (v != nullptr && *v != '\0') ? std::atof(v) : 0.10;
  }();
  return t;
}

inline bool mxv_should_pull(std::size_t nvals, IndexType size) noexcept {
  return size != 0 && static_cast<double>(nvals) >=
                          mxv_pull_threshold() * static_cast<double>(size);
}

/// Pull kernel: t[i] = ⊕_j mult(A(i,j), u(j)) over stored matches.
/// MultFlip=false computes mult(a, u); true computes mult(u, a) (for vxm).
/// Output rows are independent, so the row loop is block-parallel when
/// GBTL_NUM_THREADS > 1 (workers fill disjoint staging slots; the vector's
/// shared nvals bookkeeping is updated in the sequential assembly pass).
///
/// `mask` + `mask_pushdown`: with push-down enabled, masked-out output
/// positions are skipped entirely (write_vector_result never reads them).
/// `dense_u` skips the per-entry presence probes — legal only when every
/// position of u is stored; the fold order is unchanged either way.
template <bool MultFlip, typename D3, typename AT, typename UT,
          typename SemiringT, typename MaskT = NoMask>
Vector<D3> mv_pull(const SemiringT& sr, const Matrix<AT>& a,
                   const Vector<UT>& u, const MaskT& mask = NoMask{},
                   bool mask_pushdown = false, bool dense_u = false) {
  Vector<D3> t(a.nrows());
  ScopedMemCharge charge(a.nrows() * (1 + sizeof(D3)));
  std::vector<unsigned char> present(a.nrows(), 0);
  std::vector<D3> vals(a.nrows());
  detail::parallel_for_rows(a.nrows(), [&](IndexType begin, IndexType end) {
    for (IndexType i = begin; i < end; ++i) {
      pool_checkpoint();
      if (mask_pushdown && !mask_value(mask, i)) continue;
      bool found = false;
      D3 acc{};
      if (dense_u) {
        const auto& row = a.row(i);
        if (!row.empty()) {
          found = true;
          auto it = row.begin();
          if constexpr (MultFlip) {
            acc = static_cast<D3>(sr.mult(u.value_unchecked(it->first),
                                          it->second));
            for (++it; it != row.end(); ++it) {
              acc = sr.add(acc, static_cast<D3>(sr.mult(
                                    u.value_unchecked(it->first),
                                    it->second)));
            }
          } else {
            acc = static_cast<D3>(sr.mult(it->second,
                                          u.value_unchecked(it->first)));
            for (++it; it != row.end(); ++it) {
              acc = sr.add(acc, static_cast<D3>(sr.mult(
                                    it->second,
                                    u.value_unchecked(it->first))));
            }
          }
        }
      } else {
        for (const auto& [j, av] : a.row(i)) {
          if (!u.has_unchecked(j)) continue;
          D3 prod;
          if constexpr (MultFlip) {
            prod = static_cast<D3>(sr.mult(u.value_unchecked(j), av));
          } else {
            prod = static_cast<D3>(sr.mult(av, u.value_unchecked(j)));
          }
          acc = found ? sr.add(acc, prod) : prod;
          found = true;
        }
      }
      if (found) {
        present[i] = 1;
        vals[i] = acc;
      }
    }
  });
  for (IndexType i = 0; i < a.nrows(); ++i) {
    if (present[i]) t.set_unchecked(i, vals[i]);
  }
  return t;
}

/// Push kernel: t[j] ⊕= mult(A(i,j), u(i)) for stored u(i) — computes
/// A^T·u (or u·A) touching only rows where u has entries. Scatter targets
/// collide across rows, so this kernel stays sequential (a parallel
/// version would need per-worker accumulators merged with ⊕).
template <bool MultFlip, typename D3, typename AT, typename UT,
          typename SemiringT, typename MaskT = NoMask>
Vector<D3> mv_push(const SemiringT& sr, const Matrix<AT>& a,
                   const Vector<UT>& u, const MaskT& mask = NoMask{},
                   bool mask_pushdown = false) {
  Vector<D3> t(a.ncols());
  ScopedMemCharge charge(a.ncols() / 8 + 1);  // vector<bool> bitmap
  std::vector<bool> present(a.ncols(), false);
  for (IndexType i = 0; i < a.nrows(); ++i) {
    pool_checkpoint();
    if (!u.has_unchecked(i)) continue;
    const UT uv = u.value_unchecked(i);
    for (const auto& [j, av] : a.row(i)) {
      if (mask_pushdown && !mask_value(mask, j)) continue;
      D3 prod;
      if constexpr (MultFlip) {
        prod = static_cast<D3>(sr.mult(uv, av));
      } else {
        prod = static_cast<D3>(sr.mult(av, uv));
      }
      if (present[j]) {
        t.set_unchecked(j, sr.add(t.value_unchecked(j), prod));
      } else {
        present[j] = true;
        t.set_unchecked(j, prod);
      }
    }
  }
  return t;
}

}  // namespace detail

/// w<m, z> = w (+) A ⊕.⊗ u. A may be a Matrix or TransposeView.
template <typename WT, typename MaskT, typename AccumT, typename SemiringT,
          typename AMatT, typename UT>
void mxv(Vector<WT>& w, const MaskT& mask, AccumT accum, const SemiringT& sr,
         const AMatT& a, const Vector<UT>& u,
         OutputControl outp = OutputControl::kMerge) {
  constexpr bool a_trans = is_transpose_view_v<std::remove_cvref_t<AMatT>>;
  if (detail::generic_ncols(a) != u.size()) {
    throw DimensionException("mxv: ncols(A) != size(u)");
  }
  if (w.size() != detail::generic_nrows(a)) {
    throw DimensionException("mxv: size(w) != nrows(A)");
  }
  // Read the backend ONCE on the calling thread (worker threads must not
  // consult their own, unset thread-local slot).
  const bool simd = detail::simd_enabled();
  Vector<WT> t = [&] {
    if constexpr (a_trans) {
      // Push-orientation site (A^T·u): direction-optimize under simd.
      if (simd && detail::mxv_should_pull(u.nvals(), u.size())) {
        if (auto at = detail::cached_transpose_if_amortized(a.inner())) {
          detail::pool_flight_note("mxv_pull", u.nvals(), u.size());
          return detail::mv_pull<false, WT>(sr, *at, u, mask, simd,
                                            u.nvals() == u.size());
        }
      }
      if (simd) detail::pool_flight_note("mxv_push", u.nvals(), u.size());
      return detail::mv_push<false, WT>(sr, a.inner(), u, mask, simd);
    } else {
      return detail::mv_pull<false, WT>(sr, a, u, mask, simd,
                                        simd && u.nvals() == u.size());
    }
  }();
  detail::write_vector_result(w, t, mask, accum, outp);
}

/// w<m, z> = w (+) u ⊕.⊗ A (row vector times matrix).
template <typename WT, typename MaskT, typename AccumT, typename SemiringT,
          typename UT, typename AMatT>
void vxm(Vector<WT>& w, const MaskT& mask, AccumT accum, const SemiringT& sr,
         const Vector<UT>& u, const AMatT& a,
         OutputControl outp = OutputControl::kMerge) {
  constexpr bool a_trans = is_transpose_view_v<std::remove_cvref_t<AMatT>>;
  if (detail::generic_nrows(a) != u.size()) {
    throw DimensionException("vxm: nrows(A) != size(u)");
  }
  if (w.size() != detail::generic_ncols(a)) {
    throw DimensionException("vxm: size(w) != ncols(A)");
  }
  const bool simd = detail::simd_enabled();
  Vector<WT> t = [&] {
    if constexpr (a_trans) {
      return detail::mv_pull<true, WT>(sr, a.inner(), u, mask, simd,
                                       simd && u.nvals() == u.size());
    } else {
      // Push-orientation site (u·A = A^T·u): direction-optimize under simd.
      if (simd && detail::mxv_should_pull(u.nvals(), u.size())) {
        if (auto at = detail::cached_transpose_if_amortized(a)) {
          detail::pool_flight_note("mxv_pull", u.nvals(), u.size());
          return detail::mv_pull<true, WT>(sr, *at, u, mask, simd,
                                           u.nvals() == u.size());
        }
      }
      if (simd) detail::pool_flight_note("mxv_push", u.nvals(), u.size());
      return detail::mv_push<true, WT>(sr, a, u, mask, simd);
    }
  }();
  detail::write_vector_result(w, t, mask, accum, outp);
}

}  // namespace gbtl
