// gbtl/ops/transpose_op.hpp — the transpose *operation* (as opposed to the
// TransposeView in views.hpp):
//   C<M, z> = C (+) A^T
// materializes the flipped structure and writes it under the standard
// output discipline.
#pragma once

#include "gbtl/detail/write_backend.hpp"
#include "gbtl/matrix.hpp"
#include "gbtl/ops/mxm.hpp"  // materialize_transpose
#include "gbtl/types.hpp"
#include "gbtl/views.hpp"

namespace gbtl {

namespace detail {

/// Cast-copy a matrix to a (possibly different) scalar type.
template <typename OutT, typename InT>
Matrix<OutT> apply_copy_cast(const Matrix<InT>& a) {
  Matrix<OutT> out(a.nrows(), a.ncols());
  typename Matrix<OutT>::Row row;
  for (IndexType i = 0; i < a.nrows(); ++i) {
    const auto& ra = a.row(i);
    if (ra.empty()) continue;
    row.clear();
    row.reserve(ra.size());
    for (const auto& [j, v] : ra) row.emplace_back(j, static_cast<OutT>(v));
    out.setRow(i, std::move(row));
    row = {};
  }
  return out;
}

}  // namespace detail

/// C<M, z> = C (+) A^T. Passing a TransposeView cancels the transpose
/// (C = A), matching the C API's handling of a transposed input descriptor.
template <typename CT, typename MaskT, typename AccumT, typename AMatT>
void transpose(Matrix<CT>& c, const MaskT& mask, AccumT accum, const AMatT& a,
               OutputControl outp = OutputControl::kMerge) {
  constexpr bool a_trans = is_transpose_view_v<std::remove_cvref_t<AMatT>>;
  if (c.nrows() != detail::generic_ncols(a) ||
      c.ncols() != detail::generic_nrows(a)) {
    throw DimensionException("transpose: output shape != A^T shape");
  }
  if constexpr (a_trans) {
    auto t = detail::apply_copy_cast<CT>(a.inner());
    detail::write_matrix_result(c, t, mask, accum, outp);
  } else {
    auto t = detail::materialize_transpose(a);
    detail::write_matrix_result(c, t, mask, accum, outp);
  }
}

}  // namespace gbtl
