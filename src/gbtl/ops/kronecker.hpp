// gbtl/ops/kronecker.hpp — Kronecker product (the GrB_kronecker companion
// operation added to GraphBLAS after the paper's C API 1.x; included here
// because it composes directly with the generators: Kronecker powers of a
// small initiator matrix are the Graph500 graph model):
//
//   C<M, z> = C (+) A ⊗kron B,   C(ia*nb + ib, ja*mb + jb) = op(A(ia,ja),
//                                                               B(ib,jb))
#pragma once

#include <utility>

#include "gbtl/detail/write_backend.hpp"
#include "gbtl/matrix.hpp"
#include "gbtl/ops/mxm.hpp"  // resolve_matrix
#include "gbtl/types.hpp"
#include "gbtl/views.hpp"

namespace gbtl {

namespace detail {

template <typename D3, typename AT, typename BT, typename BinaryOpT>
Matrix<D3> kron_compute(const BinaryOpT& op, const Matrix<AT>& a,
                        const Matrix<BT>& b) {
  Matrix<D3> t(a.nrows() * b.nrows(), a.ncols() * b.ncols());
  typename Matrix<D3>::Row out;
  for (IndexType ia = 0; ia < a.nrows(); ++ia) {
    const auto& ra = a.row(ia);
    if (ra.empty()) continue;
    for (IndexType ib = 0; ib < b.nrows(); ++ib) {
      const auto& rb = b.row(ib);
      if (rb.empty()) continue;
      out.clear();
      out.reserve(ra.size() * rb.size());
      // ja ascending, jb ascending => output columns already sorted.
      for (const auto& [ja, av] : ra) {
        for (const auto& [jb, bv] : rb) {
          out.emplace_back(ja * b.ncols() + jb,
                           static_cast<D3>(op(av, bv)));
        }
      }
      t.setRow(ia * b.nrows() + ib, std::move(out));
      out = {};
    }
  }
  return t;
}

}  // namespace detail

/// C<M, z> = C (+) kron(A, B) with ⊗ = `op`. A and B may be transpose
/// views (kron(A^T, B^T) == kron(A, B)^T is NOT applied automatically; the
/// views are materialized).
template <typename CT, typename MaskT, typename AccumT, typename BinaryOpT,
          typename AMatT, typename BMatT>
void kronecker(Matrix<CT>& c, const MaskT& mask, AccumT accum,
               const BinaryOpT& op, const AMatT& a, const BMatT& b,
               OutputControl outp = OutputControl::kMerge) {
  decltype(auto) ra = detail::resolve_matrix(a);
  decltype(auto) rb = detail::resolve_matrix(b);
  if (c.nrows() != ra.nrows() * rb.nrows() ||
      c.ncols() != ra.ncols() * rb.ncols()) {
    throw DimensionException("kronecker: output shape != (na*nb, ma*mb)");
  }
  auto t = detail::kron_compute<CT>(op, ra, rb);
  detail::write_matrix_result(c, t, mask, accum, outp);
}

}  // namespace gbtl
