// gbtl/ops/reduce.hpp — monoid reductions:
//   w<m, z> = w (+) [⊕_j A(:, j)]   (matrix rows → vector)
//   s = s (+) [⊕_{i,j} A(i, j)]     (matrix → scalar)
//   s = s (+) [⊕_i u(i)]            (vector → scalar)
// Column reduction is expressed by passing transpose(A). A row (or the whole
// container) with no stored values contributes no entry / leaves s as-is.
#pragma once

#include "gbtl/detail/write_backend.hpp"
#include "gbtl/matrix.hpp"
#include "gbtl/ops/mxm.hpp"  // materialize_transpose / resolve helpers
#include "gbtl/types.hpp"
#include "gbtl/vector.hpp"
#include "gbtl/views.hpp"

namespace gbtl {

/// Row-wise reduce of a matrix into a vector.
template <typename WT, typename MaskT, typename AccumT, typename MonoidT,
          typename AMatT>
void reduce(Vector<WT>& w, const MaskT& mask, AccumT accum,
            const MonoidT& monoid, const AMatT& a,
            OutputControl outp = OutputControl::kMerge) {
  if (w.size() != detail::generic_nrows(a)) {
    throw DimensionException("reduce: size(w) != nrows(A)");
  }
  decltype(auto) ra = detail::resolve_matrix(a);
  using D3 = typename MonoidT::ScalarType;
  Vector<D3> t(w.size());
  for (IndexType i = 0; i < ra.nrows(); ++i) {
    const auto& row = ra.row(i);
    if (row.empty()) continue;
    D3 acc = static_cast<D3>(row.front().second);
    for (auto it = row.begin() + 1; it != row.end(); ++it) {
      acc = monoid(acc, static_cast<D3>(it->second));
    }
    t.set_unchecked(i, acc);
  }
  detail::write_vector_result(w, t, mask, accum, outp);
}

/// Reduce a whole matrix into a scalar. With NoAccumulate the result
/// replaces `val`; with an accumulator it is combined into `val`. If the
/// matrix stores no values, `val` is left unchanged (GrB_NO_VALUE-like
/// behaviour matching GBTL).
template <typename ValueT, typename AccumT, typename MonoidT, typename AMatT>
void reduce(ValueT& val, AccumT accum, const MonoidT& monoid, const AMatT& a) {
  decltype(auto) ra = detail::resolve_matrix(a);
  using D3 = typename MonoidT::ScalarType;
  if (ra.nvals() == 0) return;
  D3 acc = MonoidT::identity();
  for (IndexType i = 0; i < ra.nrows(); ++i) {
    for (const auto& [j, v] : ra.row(i)) {
      acc = monoid(acc, static_cast<D3>(v));
    }
  }
  if constexpr (detail::no_accum_v<AccumT>) {
    val = static_cast<ValueT>(acc);
  } else {
    val = static_cast<ValueT>(accum(val, acc));
  }
}

/// Reduce a vector into a scalar (same conventions as the matrix overload).
template <typename ValueT, typename AccumT, typename MonoidT, typename UT>
void reduce(ValueT& val, AccumT accum, const MonoidT& monoid,
            const Vector<UT>& u) {
  using D3 = typename MonoidT::ScalarType;
  if (u.nvals() == 0) return;
  D3 acc = MonoidT::identity();
  for (IndexType i = 0; i < u.size(); ++i) {
    if (u.has_unchecked(i)) {
      acc = monoid(acc, static_cast<D3>(u.value_unchecked(i)));
    }
  }
  if constexpr (detail::no_accum_v<AccumT>) {
    val = static_cast<ValueT>(acc);
  } else {
    val = static_cast<ValueT>(accum(val, acc));
  }
}

}  // namespace gbtl
