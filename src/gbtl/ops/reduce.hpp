// gbtl/ops/reduce.hpp — monoid reductions:
//   w<m, z> = w (+) [⊕_j A(:, j)]   (matrix rows → vector)
//   s = s (+) [⊕_{i,j} A(i, j)]     (matrix → scalar)
//   s = s (+) [⊕_i u(i)]            (vector → scalar)
// Column reduction is expressed by passing transpose(A). A row (or the whole
// container) with no stored values contributes no entry / leaves s as-is.
//
// Parallel discipline: workers fold fixed partials (one per matrix row, one
// per kScalarReduceTile-sized vector tile) into disjoint staging slots; the
// partials are then combined left-to-right in a sequential tail on the
// caller. The partial structure does not depend on the worker count or
// schedule, so scalar results are bit-identical for every GBTL_NUM_THREADS
// — including floating-point monoids, whose grouping is fixed by the
// row/tile boundaries rather than by the partition.
#pragma once

#include <algorithm>
#include <type_traits>
#include <utility>
#include <vector>

#include "gbtl/detail/backend.hpp"
#include "gbtl/detail/parallel.hpp"
#include "gbtl/detail/write_backend.hpp"
#include "gbtl/matrix.hpp"
#include "gbtl/ops/mxm.hpp"  // materialize_transpose / resolve helpers
#include "gbtl/types.hpp"
#include "gbtl/vector.hpp"
#include "gbtl/views.hpp"

namespace gbtl {

namespace detail {

/// Tile width for vector → scalar reductions: partials are folded per tile
/// so the combine order is a function of the vector length alone.
inline constexpr IndexType kScalarReduceTile = 1024;

/// Fold one matrix row with a monoid (empty row → (false, unspecified)).
template <typename D3, typename RowT, typename MonoidT>
std::pair<bool, D3> reduce_row(const MonoidT& monoid, const RowT& row) {
  if (row.empty()) return {false, D3{}};
  D3 acc = static_cast<D3>(row.front().second);
  for (auto it = row.begin() + 1; it != row.end(); ++it) {
    acc = monoid(acc, static_cast<D3>(it->second));
  }
  return {true, acc};
}

}  // namespace detail

/// Row-wise reduce of a matrix into a vector.
template <typename WT, typename MaskT, typename AccumT, typename MonoidT,
          typename AMatT>
void reduce(Vector<WT>& w, const MaskT& mask, AccumT accum,
            const MonoidT& monoid, const AMatT& a,
            OutputControl outp = OutputControl::kMerge) {
  if (w.size() != detail::generic_nrows(a)) {
    throw DimensionException("reduce: size(w) != nrows(A)");
  }
  decltype(auto) ra = detail::resolve_matrix(a);
  using D3 = typename MonoidT::ScalarType;
  Vector<D3> t(w.size());
  detail::ScopedMemCharge charge(ra.nrows() * (1 + sizeof(D3)));
  std::vector<unsigned char> present(ra.nrows(), 0);
  std::vector<D3> vals(ra.nrows());
  detail::parallel_for_rows(ra.nrows(), [&](IndexType begin, IndexType end) {
    for (IndexType i = begin; i < end; ++i) {
      detail::pool_checkpoint();
      auto [found, acc] = detail::reduce_row<D3>(monoid, ra.row(i));
      if (found) {
        present[i] = 1;
        vals[i] = acc;
      }
    }
  });
  for (IndexType i = 0; i < ra.nrows(); ++i) {
    if (present[i]) t.set_unchecked(i, vals[i]);
  }
  detail::write_vector_result(w, t, mask, accum, outp);
}

/// Reduce a whole matrix into a scalar. With NoAccumulate the result
/// replaces `val`; with an accumulator it is combined into `val`. If the
/// matrix stores no values, `val` is left unchanged (GrB_NO_VALUE-like
/// behaviour matching GBTL).
template <typename ValueT, typename AccumT, typename MonoidT, typename AMatT>
void reduce(ValueT& val, AccumT accum, const MonoidT& monoid, const AMatT& a) {
  decltype(auto) ra = detail::resolve_matrix(a);
  using D3 = typename MonoidT::ScalarType;
  if (ra.nvals() == 0) return;
  // Per-row partials combined in row order: the grouping is fixed by the
  // matrix structure, so the result is identical at every thread count.
  detail::ScopedMemCharge charge(ra.nrows() * (1 + sizeof(D3)));
  std::vector<unsigned char> present(ra.nrows(), 0);
  std::vector<D3> partial(ra.nrows());
  detail::parallel_for_rows(ra.nrows(), [&](IndexType begin, IndexType end) {
    for (IndexType i = begin; i < end; ++i) {
      detail::pool_checkpoint();
      auto [found, row_acc] = detail::reduce_row<D3>(monoid, ra.row(i));
      if (found) {
        present[i] = 1;
        partial[i] = row_acc;
      }
    }
  });
  D3 acc = MonoidT::identity();
  for (IndexType i = 0; i < ra.nrows(); ++i) {
    if (present[i]) acc = monoid(acc, partial[i]);
  }
  if constexpr (detail::no_accum_v<AccumT>) {
    val = static_cast<ValueT>(acc);
  } else {
    val = static_cast<ValueT>(accum(val, acc));
  }
}

/// Reduce a vector into a scalar (same conventions as the matrix overload).
template <typename ValueT, typename AccumT, typename MonoidT, typename UT>
void reduce(ValueT& val, AccumT accum, const MonoidT& monoid,
            const Vector<UT>& u) {
  using D3 = typename MonoidT::ScalarType;
  if (u.nvals() == 0) return;
  // Fixed-width tile partials combined in tile order: the grouping depends
  // only on the vector length, never on the partition (see header comment).
  const IndexType tiles =
      (u.size() + detail::kScalarReduceTile - 1) / detail::kScalarReduceTile;
  detail::ScopedMemCharge charge(tiles * (1 + sizeof(D3)));
  std::vector<unsigned char> present(tiles, 0);
  std::vector<D3> partial(tiles);
  // simd-backend fast path: with every position stored, the presence probes
  // are pure overhead — fold the contiguous value array directly. Same
  // tile boundaries and left-fold order as the probing loop, so the result
  // is bit-identical. Backend is read ONCE here on the calling thread.
  // (Vector<bool> packs its values; no contiguous array to walk.)
  constexpr bool kDenseOk = !std::is_same_v<UT, bool>;
  const bool dense = kDenseOk && detail::simd_enabled() && u.fully_dense();
  detail::parallel_for_rows(tiles, [&](IndexType begin, IndexType end) {
    for (IndexType tile = begin; tile < end; ++tile) {
      detail::pool_checkpoint();
      const IndexType lo = tile * detail::kScalarReduceTile;
      const IndexType hi =
          std::min(u.size(), lo + detail::kScalarReduceTile);
      if constexpr (kDenseOk) {
        if (dense) {
          const UT* vp = u.vals();
          D3 tile_acc = static_cast<D3>(vp[lo]);
          for (IndexType i = lo + 1; i < hi; ++i) {
            tile_acc = monoid(tile_acc, static_cast<D3>(vp[i]));
          }
          present[tile] = 1;
          partial[tile] = tile_acc;
          continue;
        }
      }
      bool found = false;
      D3 tile_acc{};
      for (IndexType i = lo; i < hi; ++i) {
        if (!u.has_unchecked(i)) continue;
        const D3 v = static_cast<D3>(u.value_unchecked(i));
        tile_acc = found ? monoid(tile_acc, v) : v;
        found = true;
      }
      if (found) {
        present[tile] = 1;
        partial[tile] = tile_acc;
      }
    }
  });
  D3 acc = MonoidT::identity();
  for (IndexType tile = 0; tile < tiles; ++tile) {
    if (present[tile]) acc = monoid(acc, partial[tile]);
  }
  if constexpr (detail::no_accum_v<AccumT>) {
    val = static_cast<ValueT>(acc);
  } else {
    val = static_cast<ValueT>(accum(val, acc));
  }
}

}  // namespace gbtl
