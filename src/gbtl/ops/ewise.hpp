// gbtl/ops/ewise.hpp — element-wise operations:
//   eWiseAdd  : union of structures, ⊕ where both stored  (C = A + B)
//   eWiseMult : intersection of structures, ⊗              (C = A * B)
// for matrix-matrix and vector-vector operand pairs, with the standard
// mask/accumulate/replace output discipline. Transposed matrix inputs are
// materialized first (they are rare in practice and the C API permits them).
//
// Rows (matrix forms) and index blocks (vector forms) are independent, so
// the merge loops run on the worker pool: each worker writes disjoint
// staging slots and the result container is assembled sequentially
// afterwards (Vector/Matrix nvals bookkeeping is not thread-safe).
#pragma once

#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "gbtl/detail/backend.hpp"
#include "gbtl/detail/parallel.hpp"
#include "gbtl/detail/simd.hpp"
#include "gbtl/detail/write_backend.hpp"
#include "gbtl/matrix.hpp"
#include "gbtl/ops/mxm.hpp"  // materialize_transpose
#include "gbtl/types.hpp"
#include "gbtl/vector.hpp"
#include "gbtl/views.hpp"

namespace gbtl {

namespace detail {

template <typename D3, typename AT, typename BT, typename BinaryOpT>
Matrix<D3> ewise_add_matrix(const BinaryOpT& op, const Matrix<AT>& a,
                            const Matrix<BT>& b) {
  Matrix<D3> t(a.nrows(), a.ncols());
  ScopedMemCharge charge(a.nrows() * sizeof(typename Matrix<D3>::Row));
  std::vector<typename Matrix<D3>::Row> out_rows(a.nrows());
  detail::parallel_for_rows(a.nrows(), [&](IndexType begin, IndexType end) {
    for (IndexType i = begin; i < end; ++i) {
      pool_checkpoint();
      const auto& ra = a.row(i);
      const auto& rb = b.row(i);
      if (ra.empty() && rb.empty()) continue;
      auto& out = out_rows[i];
      out.reserve(ra.size() + rb.size());
      auto ia = ra.begin();
      auto ib = rb.begin();
      while (ia != ra.end() || ib != rb.end()) {
        if (ib == rb.end() || (ia != ra.end() && ia->first < ib->first)) {
          out.emplace_back(ia->first, static_cast<D3>(ia->second));
          ++ia;
        } else if (ia == ra.end() || ib->first < ia->first) {
          out.emplace_back(ib->first, static_cast<D3>(ib->second));
          ++ib;
        } else {
          out.emplace_back(ia->first,
                           static_cast<D3>(op(ia->second, ib->second)));
          ++ia;
          ++ib;
        }
      }
    }
  });
  for (IndexType i = 0; i < a.nrows(); ++i) {
    if (!out_rows[i].empty()) t.setRow(i, std::move(out_rows[i]));
  }
  return t;
}

template <typename D3, typename AT, typename BT, typename BinaryOpT>
Matrix<D3> ewise_mult_matrix(const BinaryOpT& op, const Matrix<AT>& a,
                             const Matrix<BT>& b) {
  Matrix<D3> t(a.nrows(), a.ncols());
  ScopedMemCharge charge(a.nrows() * sizeof(typename Matrix<D3>::Row));
  std::vector<typename Matrix<D3>::Row> out_rows(a.nrows());
  detail::parallel_for_rows(a.nrows(), [&](IndexType begin, IndexType end) {
    for (IndexType i = begin; i < end; ++i) {
      pool_checkpoint();
      const auto& ra = a.row(i);
      const auto& rb = b.row(i);
      if (ra.empty() || rb.empty()) continue;
      auto& out = out_rows[i];
      auto ia = ra.begin();
      auto ib = rb.begin();
      while (ia != ra.end() && ib != rb.end()) {
        if (ia->first < ib->first) {
          ++ia;
        } else if (ib->first < ia->first) {
          ++ib;
        } else {
          out.emplace_back(ia->first,
                           static_cast<D3>(op(ia->second, ib->second)));
          ++ia;
          ++ib;
        }
      }
    }
  });
  for (IndexType i = 0; i < a.nrows(); ++i) {
    if (!out_rows[i].empty()) t.setRow(i, std::move(out_rows[i]));
  }
  return t;
}

/// simd-backend fast path shared by the vector eWise kernels: both inputs
/// fully dense ⇒ the op applies at EVERY position (union and intersection
/// coincide), so the result is a contiguous vectorizable loop. Bit-exact:
/// the AVX2 lanes compute the same IEEE operation per element as the
/// scalar loop — no reassociation. Returns nullopt when the op/dtype has
/// no vector form; the caller falls through to the generic merge.
template <typename D3, typename AT, typename BT, typename BinaryOpT>
std::optional<Vector<D3>> ewise_dense_simd(const BinaryOpT& op,
                                           const Vector<AT>& a,
                                           const Vector<BT>& b) {
  if constexpr (std::is_same_v<AT, BT> && std::is_same_v<AT, D3> &&
                vec_dtype_v<D3>) {
    if (simd_enabled() && a.fully_dense() && b.fully_dense()) {
      ScopedMemCharge charge(a.size() * sizeof(D3));
      std::vector<D3> out(a.size());
      if (vec_binary_dense<BinaryOpT, D3>(a.vals(), b.vals(), out.data(),
                                          a.size())) {
        Vector<D3> t(a.size());
        t.assign_dense(std::move(out));
        return t;
      }
    }
  } else {
    (void)op;
    (void)a;
    (void)b;
  }
  return std::nullopt;
}

template <typename D3, typename AT, typename BT, typename BinaryOpT>
Vector<D3> ewise_add_vector(const BinaryOpT& op, const Vector<AT>& a,
                            const Vector<BT>& b) {
  if (auto fast = ewise_dense_simd<D3>(op, a, b)) return std::move(*fast);
  Vector<D3> t(a.size());
  ScopedMemCharge charge(a.size() * (1 + sizeof(D3)));
  std::vector<unsigned char> present(a.size(), 0);
  std::vector<D3> vals(a.size());
  detail::parallel_for_rows(a.size(), [&](IndexType begin, IndexType end) {
    for (IndexType i = begin; i < end; ++i) {
      const bool ha = a.has_unchecked(i);
      const bool hb = b.has_unchecked(i);
      if (ha && hb) {
        present[i] = 1;
        vals[i] = static_cast<D3>(op(a.value_unchecked(i),
                                     b.value_unchecked(i)));
      } else if (ha) {
        present[i] = 1;
        vals[i] = static_cast<D3>(a.value_unchecked(i));
      } else if (hb) {
        present[i] = 1;
        vals[i] = static_cast<D3>(b.value_unchecked(i));
      }
    }
  });
  for (IndexType i = 0; i < a.size(); ++i) {
    if (present[i]) t.set_unchecked(i, vals[i]);
  }
  return t;
}

template <typename D3, typename AT, typename BT, typename BinaryOpT>
Vector<D3> ewise_mult_vector(const BinaryOpT& op, const Vector<AT>& a,
                             const Vector<BT>& b) {
  if (auto fast = ewise_dense_simd<D3>(op, a, b)) return std::move(*fast);
  Vector<D3> t(a.size());
  ScopedMemCharge charge(a.size() * (1 + sizeof(D3)));
  std::vector<unsigned char> present(a.size(), 0);
  std::vector<D3> vals(a.size());
  detail::parallel_for_rows(a.size(), [&](IndexType begin, IndexType end) {
    for (IndexType i = begin; i < end; ++i) {
      if (a.has_unchecked(i) && b.has_unchecked(i)) {
        present[i] = 1;
        vals[i] = static_cast<D3>(op(a.value_unchecked(i),
                                     b.value_unchecked(i)));
      }
    }
  });
  for (IndexType i = 0; i < a.size(); ++i) {
    if (present[i]) t.set_unchecked(i, vals[i]);
  }
  return t;
}

template <typename AMatT, typename BMatT, typename CMatT>
void check_ewise_matrix_shapes(const AMatT& a, const BMatT& b,
                               const CMatT& c) {
  if (generic_nrows(a) != generic_nrows(b) ||
      generic_ncols(a) != generic_ncols(b)) {
    throw DimensionException("eWise: A and B shapes differ");
  }
  if (c.nrows() != generic_nrows(a) || c.ncols() != generic_ncols(a)) {
    throw DimensionException("eWise: output shape differs from inputs");
  }
}

}  // namespace detail

/// C<M, z> = C (+) (A ⊕ B): union structure, op where both stored.
/// The op may be a BinaryOp, a Monoid, or a Semiring's add (monoids and
/// semirings are callable as binary ops on their scalar type).
template <typename CT, typename MaskT, typename AccumT, typename BinaryOpT,
          typename AMatT, typename BMatT>
void eWiseAdd(Matrix<CT>& c, const MaskT& mask, AccumT accum,
              const BinaryOpT& op, const AMatT& a, const BMatT& b,
              OutputControl outp = OutputControl::kMerge) {
  detail::check_ewise_matrix_shapes(a, b, c);
  decltype(auto) ra = detail::resolve_matrix(a);
  decltype(auto) rb = detail::resolve_matrix(b);
  auto t = detail::ewise_add_matrix<CT>(op, ra, rb);
  detail::write_matrix_result(c, t, mask, accum, outp);
}

/// w<m, z> = w (+) (u ⊕ v).
template <typename WT, typename MaskT, typename AccumT, typename BinaryOpT,
          typename UT, typename VT>
void eWiseAdd(Vector<WT>& w, const MaskT& mask, AccumT accum,
              const BinaryOpT& op, const Vector<UT>& u, const Vector<VT>& v,
              OutputControl outp = OutputControl::kMerge) {
  if (u.size() != v.size() || w.size() != u.size()) {
    throw DimensionException("eWiseAdd: vector sizes differ");
  }
  auto t = detail::ewise_add_vector<WT>(op, u, v);
  detail::write_vector_result(w, t, mask, accum, outp);
}

/// C<M, z> = C (+) (A ⊗ B): intersection structure.
template <typename CT, typename MaskT, typename AccumT, typename BinaryOpT,
          typename AMatT, typename BMatT>
void eWiseMult(Matrix<CT>& c, const MaskT& mask, AccumT accum,
               const BinaryOpT& op, const AMatT& a, const BMatT& b,
               OutputControl outp = OutputControl::kMerge) {
  detail::check_ewise_matrix_shapes(a, b, c);
  decltype(auto) ra = detail::resolve_matrix(a);
  decltype(auto) rb = detail::resolve_matrix(b);
  auto t = detail::ewise_mult_matrix<CT>(op, ra, rb);
  detail::write_matrix_result(c, t, mask, accum, outp);
}

/// w<m, z> = w (+) (u ⊗ v).
template <typename WT, typename MaskT, typename AccumT, typename BinaryOpT,
          typename UT, typename VT>
void eWiseMult(Vector<WT>& w, const MaskT& mask, AccumT accum,
               const BinaryOpT& op, const Vector<UT>& u, const Vector<VT>& v,
               OutputControl outp = OutputControl::kMerge) {
  if (u.size() != v.size() || w.size() != u.size()) {
    throw DimensionException("eWiseMult: vector sizes differ");
  }
  auto t = detail::ewise_mult_vector<WT>(op, u, v);
  detail::write_vector_result(w, t, mask, accum, outp);
}

}  // namespace gbtl
