// gbtl/ops/mxm.hpp — masked matrix-matrix multiply over a semiring:
//   C<M, z> = C (+) A ⊕.⊗ B
//
// Kernel selection:
//   * A, B in row layout      — Gustavson row-at-a-time with an SPA.
//   * B transposed            — dot-product kernel over sorted row pairs;
//                               when a plain (non-complemented) matrix mask
//                               is present only masked-in (i, j) dots are
//                               computed (the triangle-count fast path,
//                               B[L] = L @ L.T of Fig. 5).
//   * A transposed            — A^T is materialized once (O(nnz)) and the
//                               Gustavson kernel is used.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <utility>
#include <vector>

#include "gbtl/algebra.hpp"
#include "gbtl/detail/backend.hpp"
#include "gbtl/detail/parallel.hpp"
#include "gbtl/detail/spa.hpp"
#include "gbtl/detail/transpose_cache.hpp"
#include "gbtl/detail/write_backend.hpp"
#include "gbtl/matrix.hpp"
#include "gbtl/types.hpp"
#include "gbtl/views.hpp"

namespace gbtl {

namespace detail {

/// SPA working-set budget for the simd backend's L2-tiled Gustavson
/// kernel. Mutable slot (PYGB_MXM_TILE_BYTES seeds it) so the property
/// tests can force tiling on tiny matrices.
inline std::uint64_t& mxm_tile_bytes() noexcept {
  static std::uint64_t bytes = [] {
    const char* v = std::getenv("PYGB_MXM_TILE_BYTES");
    return (v != nullptr && *v != '\0')
               ? static_cast<std::uint64_t>(std::atoll(v))
               : std::uint64_t{256} * 1024;
  }();
  return bytes;
}

/// True when a plain-mask row stores no truthy value — the whole output
/// row is masked out and (write_matrix_result never reading masked-out T
/// entries) legal to skip computing.
template <typename Row>
bool mask_row_all_out(const Row& r) {
  for (const auto& [j, v] : r) {
    if (static_cast<bool>(v)) return false;
  }
  return true;
}

/// Materialize the transpose of a sparse matrix (O(nnz + nrows + ncols)).
template <typename T>
Matrix<T> materialize_transpose(const Matrix<T>& a) {
  Matrix<T> at(a.ncols(), a.nrows());
  // Two-pass: count per-output-row, then fill in order. Filling in row-major
  // input order appends strictly increasing column indices per output row,
  // so rows stay sorted without per-insert searches.
  ScopedMemCharge charge(
      a.ncols() * sizeof(typename Matrix<T>::Row) +
      a.nvals() * sizeof(std::pair<IndexType, T>));
  std::vector<typename Matrix<T>::Row> out_rows(a.ncols());
  for (IndexType i = 0; i < a.nrows(); ++i) {
    pool_checkpoint();
    for (const auto& [j, v] : a.row(i)) out_rows[j].emplace_back(i, v);
  }
  for (IndexType j = 0; j < a.ncols(); ++j) {
    at.setRow(j, std::move(out_rows[j]));
  }
  return at;
}

/// Resolve an operand that may be a TransposeView into a concrete Matrix
/// (materializing when needed) so row-layout kernels can run on it.
template <typename MatT>
decltype(auto) resolve_matrix(const MatT& a) {
  if constexpr (is_transpose_view_v<std::remove_cvref_t<MatT>>) {
    return materialize_transpose(a.inner());
  } else {
    return (a);  // parenthesized: returns const Matrix<T>&
  }
}

/// Gustavson kernel: T = A · B, both row-major. Result scalar type D3.
/// Rows are computed independently (block-parallel when GBTL_NUM_THREADS
/// > 1; each worker owns its SPA) and assembled sequentially.
///
/// Under the simd backend (`simd`):
///   * when B is wide enough that the SPA working set exceeds
///     mxm_tile_bytes(), each output row is computed in L2-sized column
///     tiles — A's row is re-walked per tile with a lower_bound into B's
///     rows, so only the tile's SPA pages stay hot. Bit-identical to the
///     untiled loop: per output column j the contributing k's arrive in
///     the same ascending-a-row order inside exactly one tile.
///   * a plain matrix mask whose row i stores no truthy entry skips row i
///     entirely (masked-out T entries are never read by the writer).
template <typename D3, typename AT, typename BT, typename SemiringT,
          typename MaskT = NoMask>
Matrix<D3> mxm_gustavson(const SemiringT& sr, const Matrix<AT>& a,
                         const Matrix<BT>& b, const MaskT& mask = NoMask{},
                         bool simd = false) {
  constexpr bool kRowMask = requires { mask.row(IndexType{0}); };
  Matrix<D3> t(a.nrows(), b.ncols());
  ScopedMemCharge charge(a.nrows() * sizeof(typename Matrix<D3>::Row));
  std::vector<typename Matrix<D3>::Row> out_rows(a.nrows());

  const IndexType ncols = b.ncols();
  IndexType tile_cols = ncols;
  if (simd) {
    const std::uint64_t per_col = sizeof(D3) + 1;  // SPA value + flag
    const std::uint64_t budget = mxm_tile_bytes();
    if (static_cast<std::uint64_t>(ncols) * per_col > budget) {
      tile_cols = static_cast<IndexType>(
          std::max<std::uint64_t>(64, budget / per_col));
    }
  }
  const bool tiled = tile_cols < ncols;

  detail::parallel_for_rows(a.nrows(), [&](IndexType begin, IndexType end) {
    SparseAccumulator<D3> spa(b.ncols());
    auto add = [&sr](const D3& x, const D3& y) { return sr.add(x, y); };
    auto tile_lower = [](const auto& rb, IndexType col) {
      return std::lower_bound(
          rb.begin(), rb.end(), col,
          [](const auto& e, IndexType c) { return e.first < c; });
    };
    for (IndexType i = begin; i < end; ++i) {
      pool_checkpoint();
      if constexpr (kRowMask) {
        if (simd && mask_row_all_out(mask.row(i))) continue;
      }
      const auto& ra = a.row(i);
      if (ra.empty()) continue;
      if (!tiled) {
        for (const auto& [k, av] : ra) {
          for (const auto& [j, bv] : b.row(k)) {
            spa.accumulate(j, static_cast<D3>(sr.mult(av, bv)), add);
          }
        }
        if (spa.touched_count() != 0) {
          spa.extract_sorted_and_reset(out_rows[i]);
        }
      } else {
        auto& out = out_rows[i];
        for (IndexType t0 = 0; t0 < ncols; t0 += tile_cols) {
          const IndexType t1 =
              t0 + tile_cols < ncols ? t0 + tile_cols : ncols;
          for (const auto& [k, av] : ra) {
            const auto& rb = b.row(k);
            for (auto it = tile_lower(rb, t0);
                 it != rb.end() && it->first < t1; ++it) {
              spa.accumulate(it->first,
                             static_cast<D3>(sr.mult(av, it->second)), add);
            }
          }
          if (spa.touched_count() != 0) spa.extract_sorted_append(out);
        }
      }
    }
  });
  for (IndexType i = 0; i < a.nrows(); ++i) {
    if (!out_rows[i].empty()) t.setRow(i, std::move(out_rows[i]));
  }
  return t;
}

/// Sorted-intersection dot product of two rows under a semiring.
/// Returns (found, value).
template <typename D3, typename RowA, typename RowB, typename SemiringT>
std::pair<bool, D3> row_dot(const SemiringT& sr, const RowA& ra,
                            const RowB& rb) {
  bool found = false;
  D3 acc{};
  auto ia = ra.begin();
  auto ib = rb.begin();
  while (ia != ra.end() && ib != rb.end()) {
    if (ia->first < ib->first) {
      ++ia;
    } else if (ib->first < ia->first) {
      ++ib;
    } else {
      const D3 prod = static_cast<D3>(sr.mult(ia->second, ib->second));
      acc = found ? sr.add(acc, prod) : prod;
      found = true;
      ++ia;
      ++ib;
    }
  }
  return {found, acc};
}

/// Dot kernel: T = A · B^T (b passed un-transposed, rows of b are the
/// columns of B^T). Computes every (i, j) pair.
template <typename D3, typename AT, typename BT, typename SemiringT>
Matrix<D3> mxm_dot_all(const SemiringT& sr, const Matrix<AT>& a,
                       const Matrix<BT>& b) {
  Matrix<D3> t(a.nrows(), b.nrows());
  ScopedMemCharge charge(a.nrows() * sizeof(typename Matrix<D3>::Row));
  std::vector<typename Matrix<D3>::Row> out_rows(a.nrows());
  detail::parallel_for_rows(a.nrows(), [&](IndexType begin, IndexType end) {
    for (IndexType i = begin; i < end; ++i) {
      pool_checkpoint();
      const auto& ra = a.row(i);
      if (ra.empty()) continue;
      for (IndexType j = 0; j < b.nrows(); ++j) {
        auto [found, val] = row_dot<D3>(sr, ra, b.row(j));
        if (found) out_rows[i].emplace_back(j, val);
      }
    }
  });
  for (IndexType i = 0; i < a.nrows(); ++i) {
    if (!out_rows[i].empty()) t.setRow(i, std::move(out_rows[i]));
  }
  return t;
}

/// Masked dot kernel: only positions where the plain matrix mask stores a
/// truthy value are computed (valid because masked-out T entries are never
/// written). This is the Fig. 5 triangle-counting fast path.
template <typename D3, typename AT, typename BT, typename MT,
          typename SemiringT>
Matrix<D3> mxm_dot_masked(const SemiringT& sr, const Matrix<AT>& a,
                          const Matrix<BT>& b, const Matrix<MT>& mask) {
  Matrix<D3> t(a.nrows(), b.nrows());
  ScopedMemCharge charge(a.nrows() * sizeof(typename Matrix<D3>::Row));
  std::vector<typename Matrix<D3>::Row> out_rows(a.nrows());
  detail::parallel_for_rows(a.nrows(), [&](IndexType begin, IndexType end) {
    for (IndexType i = begin; i < end; ++i) {
      pool_checkpoint();
      const auto& ra = a.row(i);
      if (ra.empty()) continue;
      for (const auto& [j, mv] : mask.row(i)) {
        if (!static_cast<bool>(mv)) continue;
        auto [found, val] = row_dot<D3>(sr, ra, b.row(j));
        if (found) out_rows[i].emplace_back(j, val);
      }
    }
  });
  for (IndexType i = 0; i < a.nrows(); ++i) {
    if (!out_rows[i].empty()) t.setRow(i, std::move(out_rows[i]));
  }
  return t;
}

/// Compute T for any combination of plain/transposed A and B.
template <typename D3, typename AMatT, typename BMatT, typename MaskT,
          typename SemiringT>
Matrix<D3> mxm_compute(const SemiringT& sr, const AMatT& a, const BMatT& b,
                       const MaskT& mask, bool simd = false) {
  constexpr bool a_trans = is_transpose_view_v<std::remove_cvref_t<AMatT>>;
  constexpr bool b_trans = is_transpose_view_v<std::remove_cvref_t<BMatT>>;
  if constexpr (!a_trans && !b_trans) {
    return mxm_gustavson<D3>(sr, a, b, mask, simd);
  } else if constexpr (!a_trans && b_trans) {
    if constexpr (requires { mask.row(IndexType{0}); }) {
      return mxm_dot_masked<D3>(sr, a, b.inner(), mask);
    } else {
      (void)mask;
      return mxm_dot_all<D3>(sr, a, b.inner());
    }
  } else if constexpr (a_trans && !b_trans) {
    if (simd) {
      // Cached snapshot: iterative algorithms multiplying by the same A^T
      // every step materialize the transpose once.
      auto at = cached_transpose(a.inner());
      return mxm_gustavson<D3>(sr, *at, b, mask, simd);
    }
    auto at = materialize_transpose(a.inner());
    return mxm_gustavson<D3>(sr, at, b);
  } else {
    // A^T · B^T = (B · A)^T — compute B·A then transpose the result. The
    // mask does not align with B·A's rows, so no push-down here.
    auto ba = mxm_gustavson<D3>(sr, b.inner(), a.inner(), NoMask{}, simd);
    return materialize_transpose(ba);
  }
}

template <typename X>
IndexType generic_nrows(const X& x) {
  return x.nrows();
}
template <typename X>
IndexType generic_ncols(const X& x) {
  return x.ncols();
}

}  // namespace detail

/// C<M, z> = C (+) A ⊕.⊗ B. A and B may be Matrix or TransposeView;
/// M may be NoMask, a Matrix, or a MatrixComplementView; accum may be
/// NoAccumulate or any binary functor; `outp` selects replace vs merge.
template <typename CT, typename MaskT, typename AccumT, typename SemiringT,
          typename AMatT, typename BMatT>
void mxm(Matrix<CT>& c, const MaskT& mask, AccumT accum, const SemiringT& sr,
         const AMatT& a, const BMatT& b,
         OutputControl outp = OutputControl::kMerge) {
  if (detail::generic_ncols(a) != detail::generic_nrows(b)) {
    throw DimensionException("mxm: ncols(A) != nrows(B)");
  }
  if (c.nrows() != detail::generic_nrows(a) ||
      c.ncols() != detail::generic_ncols(b)) {
    throw DimensionException("mxm: output shape != nrows(A) x ncols(B)");
  }
  // Read the backend ONCE on the calling thread (worker threads must not
  // consult their own, unset thread-local slot).
  auto t = detail::mxm_compute<CT>(sr, a, b, mask, detail::simd_enabled());
  detail::write_matrix_result(c, t, mask, accum, outp);
}

}  // namespace gbtl
