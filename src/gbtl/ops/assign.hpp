// gbtl/ops/assign.hpp — the assign operation family:
//   C<M, z>(I, J) = C(I, J) (+) A      (matrix into region)
//   C<M, z>(I, J) = C(I, J) (+) s      (constant into region)
//   w<m, z>(I)    = w(I) (+) u         (vector into region)
//   w<m, z>(I)    = w(I) (+) s         (constant into region; BFS's
//                                       levels<frontier> = depth)
// Per the C API, the mask applies to the WHOLE output container (unlike
// subassign); positions outside (I, J) are untouched except for replace
// clearing masked-out entries.
#pragma once

#include <vector>

#include "gbtl/detail/write_backend.hpp"
#include "gbtl/matrix.hpp"
#include "gbtl/types.hpp"
#include "gbtl/vector.hpp"
#include "gbtl/views.hpp"

namespace gbtl {

namespace detail {

/// Resolve AllIndices or an explicit IndexArray into a concrete list.
inline IndexArray resolve_indices(const AllIndices&, IndexType dim) {
  IndexArray out(dim);
  for (IndexType i = 0; i < dim; ++i) out[i] = i;
  return out;
}
inline const IndexArray& resolve_indices(const IndexArray& idx, IndexType) {
  return idx;
}

inline void check_indices(const IndexArray& idx, IndexType dim,
                          const char* what) {
  for (IndexType i : idx) {
    if (i >= dim) {
      throw IndexOutOfBoundsException(std::string(what) + " index " +
                                      std::to_string(i) + " >= " +
                                      std::to_string(dim));
    }
  }
}

}  // namespace detail

/// C<M, z>(I, J) = C(I, J) (+) A. Shape of A must be |I| x |J|.
template <typename CT, typename MaskT, typename AccumT, typename AT,
          typename RowIdxT, typename ColIdxT>
void assign(Matrix<CT>& c, const MaskT& mask, AccumT accum,
            const Matrix<AT>& a, const RowIdxT& row_idx_arg,
            const ColIdxT& col_idx_arg,
            OutputControl outp = OutputControl::kMerge) {
  const IndexArray& rows = detail::resolve_indices(row_idx_arg, c.nrows());
  const IndexArray& cols = detail::resolve_indices(col_idx_arg, c.ncols());
  detail::check_indices(rows, c.nrows(), "assign row");
  detail::check_indices(cols, c.ncols(), "assign col");
  if (a.nrows() != rows.size() || a.ncols() != cols.size()) {
    throw DimensionException("assign: A shape != |I| x |J|");
  }

  Matrix<CT> t = c;
  if constexpr (detail::no_accum_v<AccumT>) {
    // Without an accumulator the region takes exactly A's structure:
    // clear every (I, J) position first, then insert A's stored entries.
    std::vector<bool> col_in_region(c.ncols(), false);
    for (IndexType j : cols) col_in_region[j] = true;
    for (IndexType i : rows) {
      // Collect then remove to avoid invalidating row iteration.
      IndexArray to_remove;
      for (const auto& [j, v] : t.row(i)) {
        (void)v;
        if (col_in_region[j]) to_remove.push_back(j);
      }
      for (IndexType j : to_remove) t.removeElement(i, j);
    }
  }
  for (IndexType ii = 0; ii < rows.size(); ++ii) {
    for (const auto& [jj, v] : a.row(ii)) {
      const IndexType i = rows[ii];
      const IndexType j = cols[jj];
      if constexpr (detail::no_accum_v<AccumT>) {
        t.setElement(i, j, static_cast<CT>(v));
      } else {
        if (t.hasElement(i, j)) {
          t.setElement(i, j,
                       static_cast<CT>(accum(t.extractElement(i, j), v)));
        } else {
          t.setElement(i, j, static_cast<CT>(v));
        }
      }
    }
  }
  detail::write_matrix_result(c, t, mask, NoAccumulate{}, outp);
}

/// C<M, z>(I, J) = C(I, J) (+) s — constant assigned to every masked-in
/// position of the region.
template <typename CT, typename MaskT, typename AccumT, typename ValueT,
          typename RowIdxT, typename ColIdxT>
  requires ScalarType<ValueT>
void assign(Matrix<CT>& c, const MaskT& mask, AccumT accum, ValueT val,
            const RowIdxT& row_idx_arg, const ColIdxT& col_idx_arg,
            OutputControl outp = OutputControl::kMerge) {
  const IndexArray& rows = detail::resolve_indices(row_idx_arg, c.nrows());
  const IndexArray& cols = detail::resolve_indices(col_idx_arg, c.ncols());
  detail::check_indices(rows, c.nrows(), "assign row");
  detail::check_indices(cols, c.ncols(), "assign col");
  check_mask_shape(mask, c);

  Matrix<CT> t = c;
  for (IndexType i : rows) {
    for (IndexType j : cols) {
      if (!mask_value(mask, i, j)) continue;  // masked-out values never read
      if constexpr (detail::no_accum_v<AccumT>) {
        t.setElement(i, j, static_cast<CT>(val));
      } else {
        if (t.hasElement(i, j)) {
          t.setElement(i, j,
                       static_cast<CT>(accum(t.extractElement(i, j), val)));
        } else {
          t.setElement(i, j, static_cast<CT>(val));
        }
      }
    }
  }
  detail::write_matrix_result(c, t, mask, NoAccumulate{}, outp);
}

/// w<m, z>(I) = w(I) (+) u. Size of u must be |I|.
template <typename WT, typename MaskT, typename AccumT, typename UT,
          typename IdxT>
void assign(Vector<WT>& w, const MaskT& mask, AccumT accum,
            const Vector<UT>& u, const IdxT& idx_arg,
            OutputControl outp = OutputControl::kMerge) {
  const IndexArray& idx = detail::resolve_indices(idx_arg, w.size());
  detail::check_indices(idx, w.size(), "assign");
  if (u.size() != idx.size()) {
    throw DimensionException("assign: size(u) != |I|");
  }

  Vector<WT> t = w;
  for (IndexType ii = 0; ii < idx.size(); ++ii) {
    const IndexType i = idx[ii];
    if (u.has_unchecked(ii)) {
      const UT& v = u.value_unchecked(ii);
      if constexpr (detail::no_accum_v<AccumT>) {
        t.set_unchecked(i, static_cast<WT>(v));
      } else {
        if (t.has_unchecked(i)) {
          t.set_unchecked(i,
                          static_cast<WT>(accum(t.value_unchecked(i), v)));
        } else {
          t.set_unchecked(i, static_cast<WT>(v));
        }
      }
    } else if constexpr (detail::no_accum_v<AccumT>) {
      t.removeElement(i);  // region takes u's structure exactly
    }
  }
  detail::write_vector_result(w, t, mask, NoAccumulate{}, outp);
}

/// w<m, z>(I) = w(I) (+) s — Fig. 2's levels<frontier> = depth.
template <typename WT, typename MaskT, typename AccumT, typename ValueT,
          typename IdxT>
  requires ScalarType<ValueT>
void assign(Vector<WT>& w, const MaskT& mask, AccumT accum, ValueT val,
            const IdxT& idx_arg, OutputControl outp = OutputControl::kMerge) {
  const IndexArray& idx = detail::resolve_indices(idx_arg, w.size());
  detail::check_indices(idx, w.size(), "assign");
  check_vec_mask_shape(mask, w);

  Vector<WT> t = w;
  for (IndexType i : idx) {
    if (!mask_value(mask, i)) continue;
    if constexpr (detail::no_accum_v<AccumT>) {
      t.set_unchecked(i, static_cast<WT>(val));
    } else {
      if (t.has_unchecked(i)) {
        t.set_unchecked(i,
                        static_cast<WT>(accum(t.value_unchecked(i), val)));
      } else {
        t.set_unchecked(i, static_cast<WT>(val));
      }
    }
  }
  detail::write_vector_result(w, t, mask, NoAccumulate{}, outp);
}

}  // namespace gbtl
