// gbtl/ops/apply.hpp — apply a unary function to every stored value:
//   C<M, z> = C (+) f(A)
//   w<m, z> = w (+) f(u)
// The structure of the result is exactly the structure of the input; the
// unary op may change the scalar type (e.g. Identity<T, OutT> casting).
//
// Every stored value maps independently, so both forms run on the worker
// pool with disjoint staging slots and a sequential assembly pass (the
// shared nvals bookkeeping is not thread-safe).
#pragma once

#include <type_traits>
#include <utility>
#include <vector>

#include "gbtl/detail/backend.hpp"
#include "gbtl/detail/parallel.hpp"
#include "gbtl/detail/simd.hpp"
#include "gbtl/detail/write_backend.hpp"
#include "gbtl/matrix.hpp"
#include "gbtl/ops/mxm.hpp"  // materialize_transpose
#include "gbtl/types.hpp"
#include "gbtl/vector.hpp"
#include "gbtl/views.hpp"

namespace gbtl {

namespace detail {

template <typename D3, typename AT, typename UnaryOpT>
Matrix<D3> apply_matrix(const UnaryOpT& f, const Matrix<AT>& a) {
  // simd-backend fast path: a same-type Identity apply is a verbatim copy,
  // so take the container copy constructor (whole-row vector copies —
  // memcpy for these trivially copyable entries) instead of re-emplacing
  // every element. The copy even shares a's immutable transpose snapshot,
  // which is equally valid for identical contents.
  if constexpr (std::is_same_v<AT, D3> &&
                std::is_same_v<UnaryOpT, Identity<AT, D3>>) {
    if (simd_enabled()) {
      ScopedMemCharge copy_charge(
          a.nrows() * sizeof(typename Matrix<D3>::Row) +
          a.nvals() * sizeof(std::pair<IndexType, D3>));
      return Matrix<D3>(a);
    }
  }
  Matrix<D3> t(a.nrows(), a.ncols());
  ScopedMemCharge charge(a.nrows() * sizeof(typename Matrix<D3>::Row) +
                         a.nvals() * sizeof(std::pair<IndexType, D3>));
  std::vector<typename Matrix<D3>::Row> out_rows(a.nrows());
  detail::parallel_for_rows(a.nrows(), [&](IndexType begin, IndexType end) {
    for (IndexType i = begin; i < end; ++i) {
      pool_checkpoint();
      const auto& ra = a.row(i);
      if (ra.empty()) continue;
      auto& out = out_rows[i];
      out.reserve(ra.size());
      for (const auto& [j, v] : ra) {
        out.emplace_back(j, static_cast<D3>(f(v)));
      }
    }
  });
  for (IndexType i = 0; i < a.nrows(); ++i) {
    if (!out_rows[i].empty()) t.setRow(i, std::move(out_rows[i]));
  }
  return t;
}

template <typename D3, typename UT, typename UnaryOpT>
Vector<D3> apply_vector(const UnaryOpT& f, const Vector<UT>& u) {
  // simd-backend fast path: a fully dense input maps to a fully dense
  // output, so the recognized unary forms (identity/negate/bind-constant
  // arithmetic) run as one contiguous AVX2 loop. Per-element IEEE-exact —
  // same value as f(v) at every position.
  if constexpr (std::is_same_v<UT, D3> && vec_dtype_v<D3>) {
    if (simd_enabled() && u.fully_dense()) {
      ScopedMemCharge fast_charge(u.size() * sizeof(D3));
      std::vector<D3> out(u.size());
      if (vec_unary_dense(f, u.vals(), out.data(), u.size())) {
        Vector<D3> fast(u.size());
        fast.assign_dense(std::move(out));
        return fast;
      }
    }
  }
  Vector<D3> t(u.size());
  ScopedMemCharge charge(u.size() * (1 + sizeof(D3)));
  std::vector<unsigned char> present(u.size(), 0);
  std::vector<D3> vals(u.size());
  detail::parallel_for_rows(u.size(), [&](IndexType begin, IndexType end) {
    for (IndexType i = begin; i < end; ++i) {
      if (u.has_unchecked(i)) {
        present[i] = 1;
        vals[i] = static_cast<D3>(f(u.value_unchecked(i)));
      }
    }
  });
  for (IndexType i = 0; i < u.size(); ++i) {
    if (present[i]) t.set_unchecked(i, vals[i]);
  }
  return t;
}

}  // namespace detail

/// C<M, z> = C (+) f(A). A may be a Matrix or TransposeView.
template <typename CT, typename MaskT, typename AccumT, typename UnaryOpT,
          typename AMatT>
void apply(Matrix<CT>& c, const MaskT& mask, AccumT accum, const UnaryOpT& f,
           const AMatT& a, OutputControl outp = OutputControl::kMerge) {
  if (c.nrows() != detail::generic_nrows(a) ||
      c.ncols() != detail::generic_ncols(a)) {
    throw DimensionException("apply: output shape differs from input");
  }
  // simd-backend fast path: an unmasked, unaccumulated apply whose output
  // aliases its input (C = f(C), the shape of in-place rescales like
  // PageRank's damping step) overwrites stored values directly — no
  // staging matrix, no row reallocation. Element-for-element the same
  // static_cast<CT>(f(v)) as the staged path, and with NoMask +
  // NoAccumulate the staged result would replace C wholesale anyway
  // (merge and replace coincide), so the result is bit-identical.
  if constexpr (std::is_same_v<MaskT, NoMask> &&
                std::is_same_v<AccumT, NoAccumulate> &&
                std::is_same_v<AMatT, Matrix<CT>>) {
    if (detail::simd_enabled() &&
        static_cast<const void*>(&c) == static_cast<const void*>(&a)) {
      c.transform_rows([&f](IndexType, auto& row) {
        detail::pool_checkpoint();
        for (auto& [j, v] : row) v = static_cast<CT>(f(v));
      });
      return;
    }
  }
  decltype(auto) ra = detail::resolve_matrix(a);
  auto t = detail::apply_matrix<CT>(f, ra);
  detail::write_matrix_result(c, t, mask, accum, outp);
}

/// w<m, z> = w (+) f(u).
template <typename WT, typename MaskT, typename AccumT, typename UnaryOpT,
          typename UT>
void apply(Vector<WT>& w, const MaskT& mask, AccumT accum, const UnaryOpT& f,
           const Vector<UT>& u, OutputControl outp = OutputControl::kMerge) {
  if (w.size() != u.size()) {
    throw DimensionException("apply: output size differs from input");
  }
  auto t = detail::apply_vector<WT>(f, u);
  detail::write_vector_result(w, t, mask, accum, outp);
}

}  // namespace gbtl
