// gbtl/ops/extract.hpp — the extract operation family:
//   C<M, z> = C (+) A(I, J)   (submatrix; I/J may repeat indices)
//   w<m, z> = w (+) u(I)      (subvector)
//   w<m, z> = w (+) A(I, j)   (matrix column; pass transpose(A) for a row)
#pragma once

#include <utility>
#include <vector>

#include "gbtl/detail/write_backend.hpp"
#include "gbtl/matrix.hpp"
#include "gbtl/ops/assign.hpp"  // resolve_indices / check_indices
#include "gbtl/types.hpp"
#include "gbtl/vector.hpp"
#include "gbtl/views.hpp"

namespace gbtl {

/// C<M, z> = C (+) A(I, J). Output shape must be |I| x |J|.
template <typename CT, typename MaskT, typename AccumT, typename AT,
          typename RowIdxT, typename ColIdxT>
void extract(Matrix<CT>& c, const MaskT& mask, AccumT accum,
             const Matrix<AT>& a, const RowIdxT& row_idx_arg,
             const ColIdxT& col_idx_arg,
             OutputControl outp = OutputControl::kMerge) {
  const IndexArray& rows = detail::resolve_indices(row_idx_arg, a.nrows());
  const IndexArray& cols = detail::resolve_indices(col_idx_arg, a.ncols());
  detail::check_indices(rows, a.nrows(), "extract row");
  detail::check_indices(cols, a.ncols(), "extract col");
  if (c.nrows() != rows.size() || c.ncols() != cols.size()) {
    throw DimensionException("extract: output shape != |I| x |J|");
  }

  // Invert the column selection: source column j -> list of output columns
  // (J may select the same source column several times).
  std::vector<std::vector<IndexType>> out_cols_of(a.ncols());
  for (IndexType jj = 0; jj < cols.size(); ++jj) {
    out_cols_of[cols[jj]].push_back(jj);
  }

  Matrix<CT> t(rows.size(), cols.size());
  typename Matrix<CT>::Row out;
  for (IndexType ii = 0; ii < rows.size(); ++ii) {
    out.clear();
    for (const auto& [j, v] : a.row(rows[ii])) {
      for (IndexType jj : out_cols_of[j]) {
        out.emplace_back(jj, static_cast<CT>(v));
      }
    }
    if (!out.empty()) {
      std::sort(out.begin(), out.end(),
                [](const auto& x, const auto& y) { return x.first < y.first; });
      t.setRow(ii, std::move(out));
      out = {};
    }
  }
  detail::write_matrix_result(c, t, mask, accum, outp);
}

/// w<m, z> = w (+) u(I). Output size must be |I|.
template <typename WT, typename MaskT, typename AccumT, typename UT,
          typename IdxT>
void extract(Vector<WT>& w, const MaskT& mask, AccumT accum,
             const Vector<UT>& u, const IdxT& idx_arg,
             OutputControl outp = OutputControl::kMerge) {
  const IndexArray& idx = detail::resolve_indices(idx_arg, u.size());
  detail::check_indices(idx, u.size(), "extract");
  if (w.size() != idx.size()) {
    throw DimensionException("extract: output size != |I|");
  }

  Vector<WT> t(w.size());
  for (IndexType ii = 0; ii < idx.size(); ++ii) {
    if (u.has_unchecked(idx[ii])) {
      t.set_unchecked(ii, static_cast<WT>(u.value_unchecked(idx[ii])));
    }
  }
  detail::write_vector_result(w, t, mask, accum, outp);
}

/// w<m, z> = w (+) A(I, j) — extract (part of) column j of A. Pass
/// transpose(A) to extract a row. A must expose hasElement/extractElement.
template <typename WT, typename MaskT, typename AccumT, typename AMatT,
          typename IdxT>
void extract(Vector<WT>& w, const MaskT& mask, AccumT accum, const AMatT& a,
             const IdxT& idx_arg, IndexType col,
             OutputControl outp = OutputControl::kMerge) {
  const IndexArray& idx = detail::resolve_indices(idx_arg, a.nrows());
  detail::check_indices(idx, a.nrows(), "extract");
  if (col >= a.ncols()) {
    throw IndexOutOfBoundsException("extract: column outside matrix");
  }
  if (w.size() != idx.size()) {
    throw DimensionException("extract: output size != |I|");
  }

  Vector<WT> t(w.size());
  for (IndexType ii = 0; ii < idx.size(); ++ii) {
    if (a.hasElement(idx[ii], col)) {
      t.set_unchecked(ii, static_cast<WT>(a.extractElement(idx[ii], col)));
    }
  }
  detail::write_vector_result(w, t, mask, accum, outp);
}

}  // namespace gbtl
