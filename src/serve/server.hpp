// serve/server.hpp — the pygb_serve server loop: accept, admit, execute,
// degrade, drain (docs/SERVING.md).
//
// The engineering goal is DEGRADE, NEVER DIE. Every way a request can go
// wrong — malformed frames, oversized declarations, unknown algorithms,
// budget exhaustion, deadlines, client disconnects, compile trouble under
// load — ends in a typed reply (or a closed socket the client abandoned),
// never in a dead server or a torn result:
//
//   * ADMISSION (serve/admission.hpp) runs in the accept loop: past the
//     queue cap or the memory high-water mark the connection gets an
//     `overloaded` reply with a retry hint, WITHOUT its request being read.
//   * ISOLATION: each admitted request executes under its own
//     governor::RequestContext — label, optional memory budget, and a
//     whole-request deadline (req.timeout_ms or
//     PYGB_SERVE_REQUEST_TIMEOUT_MS). The gbtl pool propagates the binding
//     to its workers (PoolApi v4), so one tenant's OOM/deadline/cancel
//     cannot abort another tenant's op — and the governor's no-partial-
//     output guarantee holds per request.
//   * CANCELLATION: a monitor thread polls active connections for hangup;
//     a dropped client gets exactly its own context cancelled, and the
//     worker unwinds at the next governor checkpoint.
//   * DRAIN: request_shutdown() (async-signal-safe; wired to SIGTERM by
//     tools/pygb_serve.cpp) stops accepting, answers queued connections
//     with `shutting_down`, lets in-flight requests finish under
//     PYGB_SERVE_DRAIN_MS, cancels stragglers past the cap, flushes the
//     metrics files, and run() returns 0.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/admission.hpp"
#include "serve/session.hpp"

namespace pygb::serve {

struct ServerConfig {
  /// "unix:<path>" or "tcp:<port>" ("tcp:0" binds an ephemeral port;
  /// Server::endpoint() reports the real one).
  std::string target = "unix:/tmp/pygb_serve.sock";
  std::uint64_t threads = 4;              ///< PYGB_SERVE_THREADS
  std::uint64_t request_timeout_ms = 30000;  ///< PYGB_SERVE_REQUEST_TIMEOUT_MS
  std::uint64_t drain_ms = 5000;          ///< PYGB_SERVE_DRAIN_MS
  AdmissionConfig admission;
  SessionConfig session;

  /// Resolve every knob but `target` from the environment.
  static ServerConfig from_env();
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + spawn workers and the disconnect monitor. False (and
  /// `error`) on any setup failure; safe to destroy afterwards.
  bool start(std::string& error);

  /// The accept loop. Blocks until request_shutdown(), then drains and
  /// returns the process exit code (0 = clean drain).
  int run();

  /// ASYNC-SIGNAL-SAFE shutdown trigger (one write(2) to a self-pipe).
  void request_shutdown() noexcept;

  /// The bound endpoint ("tcp:<real port>" after "tcp:0").
  std::string endpoint() const { return endpoint_; }
  const ServerConfig& config() const noexcept { return cfg_; }

 private:
  struct Active;  // fd → context registration (server.cpp)

  void worker_main();
  void monitor_main();
  void serve_one(int fd);
  void reply_and_close(int fd, Code code, const std::string& error,
                       std::uint64_t retry_after_ms);

  ServerConfig cfg_;
  GraphCache graphs_;
  AdmissionController admission_;
  std::string endpoint_;
  std::string unix_path_;  ///< unlinked on shutdown when nonempty

  int listen_fd_ = -1;
  int wake_rd_ = -1;  ///< self-pipe: request_shutdown() writes, run() polls
  int wake_wr_ = -1;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  ///< accepted fds awaiting a worker
  bool stopping_ = false;    ///< guarded by queue_mu_

  std::atomic<std::uint64_t> next_request_id_{0};
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<bool> monitor_stop_{false};

  Active* active_ = nullptr;
  std::vector<std::thread> workers_;
  std::thread monitor_;
  bool started_ = false;
};

}  // namespace pygb::serve
