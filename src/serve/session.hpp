// serve/session.hpp — request execution for pygb_serve: graph resolution
// (with a bounded shared cache) and algorithm dispatch with typed-error
// mapping (docs/SERVING.md).
//
// Graph specs a request may name:
//
//   rmat:<scale>[:<edge_factor>]  — gen::rmat power-law graph (2^scale
//                                   vertices; scale capped by
//                                   PYGB_SERVE_MAX_SCALE, default 20)
//   er:<n>                        — gen::paper_graph Erdős–Rényi, n vertices
//   ring:<n> | path:<n> | star:<n>— deterministic classic families
//   file:<path>                   — Matrix Market file; DISABLED unless
//                                   PYGB_SERVE_ALLOW_FILES=1 (a network
//                                   server must not read arbitrary paths a
//                                   client names by default)
//
// Graphs are SHARED infrastructure, not tenant state: they are built and
// cached under the DEFAULT governor context (an explicit ThreadBind to
// nullptr around construction), so a graph build charges the process-wide
// gauge — where admission control can see it — and is never billed to, or
// aborted by, the single tenant who happened to ask first. The cache is a
// small LRU (PYGB_SERVE_GRAPH_CACHE entries); each entry holds a
// governor::MemCharge sized to the adjacency footprint, so eviction
// returns the memory to the gauge.
//
// execute() runs INSIDE the caller's bound RequestContext: every
// checkpoint, deadline, budget charge, and cancellation inside the
// algorithm routes to that tenant. Governor aborts and parse failures come
// back as typed Response codes — never exceptions — so the server loop
// upstairs cannot be killed by anything a request does.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>

#include "pygb/container.hpp"
#include "pygb/governor.hpp"
#include "serve/protocol.hpp"

namespace pygb::serve {

/// Knobs, resolved once at server start.
struct SessionConfig {
  std::uint64_t graph_cache_cap = 8;  ///< PYGB_SERVE_GRAPH_CACHE (min 1)
  std::uint64_t max_scale = 20;       ///< PYGB_SERVE_MAX_SCALE (rmat cap)
  bool allow_files = false;           ///< PYGB_SERVE_ALLOW_FILES=1

  static SessionConfig from_env();
};

/// Bounded LRU of resolved graphs, shared by all workers. Thread-safe.
class GraphCache {
 public:
  explicit GraphCache(const SessionConfig& cfg) : cfg_(cfg) {}

  /// Resolve `spec` to an adjacency matrix (cache hit or build+insert).
  /// Throws std::invalid_argument on malformed/disallowed specs and
  /// governor::ResourceExhausted when a build would cross the process
  /// budget. Returned Matrix shares storage with the cache entry (pygb
  /// containers are shared_ptr-backed), so eviction never invalidates a
  /// graph a request is still using.
  Matrix get(const std::string& spec);

  std::size_t size() const;

 private:
  struct Entry {
    std::string spec;
    Matrix graph;
    governor::MemCharge charge;
  };

  SessionConfig cfg_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
};

/// Run one parsed request to a response. Never throws: every failure mode
/// maps to a typed Code (governor aborts → deadline_exceeded /
/// resource_exhausted / cancelled; bad specs → invalid_request; anything
/// else → internal). `request_id` tags flight-recorder events.
Response execute(const Request& req, GraphCache& cache,
                 std::uint64_t request_id);

}  // namespace pygb::serve
