// serve/admission.cpp — queue/memory gates and the AIMD concurrency window
// (admission.hpp).
#include "serve/admission.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "pygb/governor.hpp"
#include "pygb/jit/registry.hpp"

namespace pygb::serve {

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  if (const char* v = std::getenv(name)) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end != v && *end == '\0') return parsed;
  }
  return fallback;
}

}  // namespace

AdmissionConfig AdmissionConfig::from_env() {
  AdmissionConfig cfg;
  cfg.max_queue = env_u64("PYGB_SERVE_MAX_QUEUE", cfg.max_queue);
  const std::uint64_t mem_limit = governor::mem_limit_bytes();
  cfg.mem_high_water_bytes = env_u64(
      "PYGB_SERVE_MEM_HIGH_WATER_BYTES",
      mem_limit != 0 ? mem_limit - mem_limit / 10 : 0);
  cfg.retry_after_ms =
      env_u64("PYGB_SERVE_RETRY_AFTER_MS", cfg.retry_after_ms);
  return cfg;
}

AdmissionController::AdmissionController(const AdmissionConfig& cfg,
                                         std::uint64_t max_concurrency)
    : cfg_(cfg),
      max_window_(std::max<std::uint64_t>(1, max_concurrency)),
      window_(max_window_) {}

Verdict AdmissionController::try_admit(std::uint64_t queue_depth) {
  Verdict v;
  if (cfg_.max_queue != 0 && queue_depth >= cfg_.max_queue) {
    v.admitted = false;
    v.reason = "queue full (" + std::to_string(queue_depth) + " >= " +
               std::to_string(cfg_.max_queue) + ", PYGB_SERVE_MAX_QUEUE)";
    v.retry_after_ms = cfg_.retry_after_ms;
    return v;
  }
  if (cfg_.mem_high_water_bytes != 0) {
    const std::uint64_t used = governor::stats().mem_current_bytes;
    if (used >= cfg_.mem_high_water_bytes) {
      v.admitted = false;
      v.reason = "memory pressure (" + std::to_string(used) + " >= " +
                 std::to_string(cfg_.mem_high_water_bytes) +
                 " bytes, PYGB_SERVE_MEM_HIGH_WATER_BYTES)";
      // Memory drains as in-flight requests finish; hint a longer retry
      // than the queue case so retries land after charges release.
      v.retry_after_ms = cfg_.retry_after_ms * 4;
      return v;
    }
  }
  return v;
}

bool AdmissionController::acquire_slot(std::uint64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (in_flight_ >= window_ && !draining_) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      if (in_flight_ < window_ && !draining_) break;  // raced a release
      return false;
    }
  }
  if (draining_) return false;
  ++in_flight_;
  return true;
}

void AdmissionController::release_slot(bool transient_failure) noexcept {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (in_flight_ > 0) --in_flight_;
    if (transient_failure) {
      window_ = std::max<std::uint64_t>(1, window_ / 2);
    } else if (window_ < max_window_) {
      // Additive growth — but held flat while background tier builds are
      // pending (PYGB_TIER=async): each pending build is a g++ the latency
      // signal hasn't priced in yet, and growing the window on top of it
      // is how a warm-up storm turns into an overload. With tiering off
      // the count is always zero and AIMD behaves exactly as before.
      if (jit::Registry::instance().tier_pending_count() == 0) {
        ++window_;
      }
    }
  }
  cv_.notify_all();
}

void AdmissionController::wakeup() noexcept {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  cv_.notify_all();
}

std::uint64_t AdmissionController::window() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return window_;
}

std::uint64_t AdmissionController::in_flight() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

}  // namespace pygb::serve
