// serve/protocol.cpp — framing and payload grammar (protocol.hpp).
#include "serve/protocol.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace pygb::serve {

namespace {

/// Read exactly n bytes; returns bytes read (short on EOF), -1 on error.
ssize_t read_full(int fd, char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r == 0) break;  // EOF
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    got += static_cast<std::size_t>(r);
  }
  return static_cast<ssize_t>(got);
}

bool write_full(int fd, const char* buf, std::size_t n) {
  std::size_t put = 0;
  while (put < n) {
    const ssize_t w = ::write(fd, buf + put, n - put);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    put += static_cast<std::size_t>(w);
  }
  return true;
}

/// Strict full-string unsigned parse ("", "12x", "-3" all fail).
bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty() || s[0] == '-') return false;
  char* end = nullptr;
  const std::string tmp(s);
  errno = 0;
  const unsigned long long v = std::strtoull(tmp.c_str(), &end, 10);
  if (errno != 0 || end != tmp.c_str() + tmp.size()) return false;
  out = v;
  return true;
}

bool parse_f64(std::string_view s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string tmp(s);
  errno = 0;
  const double v = std::strtod(tmp.c_str(), &end);
  if (errno != 0 || end != tmp.c_str() + tmp.size()) return false;
  out = v;
  return true;
}

/// One-line sanitization for values embedded in key=value payloads.
std::string one_line(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out += (c == '\n' || c == '\r') ? ' ' : c;
  return out;
}

}  // namespace

std::uint64_t max_request_bytes() {
  static const std::uint64_t cap = [] {
    if (const char* v = std::getenv("PYGB_SERVE_MAX_REQUEST_BYTES")) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(v, &end, 10);
      if (end != v && parsed > 0) return static_cast<std::uint64_t>(parsed);
    }
    return std::uint64_t{64 * 1024};
  }();
  return cap;
}

const char* frame_status_name(FrameStatus s) noexcept {
  switch (s) {
    case FrameStatus::kOk:
      return "ok";
    case FrameStatus::kClosed:
      return "closed";
    case FrameStatus::kTruncated:
      return "truncated";
    case FrameStatus::kTooLarge:
      return "too-large";
    case FrameStatus::kIoError:
      return "io-error";
  }
  return "?";
}

FrameStatus read_frame(int fd, std::string& payload,
                       std::uint64_t max_bytes) {
  payload.clear();
  unsigned char prefix[4];
  const ssize_t got =
      read_full(fd, reinterpret_cast<char*>(prefix), sizeof prefix);
  if (got < 0) return FrameStatus::kIoError;
  if (got == 0) return FrameStatus::kClosed;
  if (got < static_cast<ssize_t>(sizeof prefix)) {
    return FrameStatus::kTruncated;
  }
  const std::uint32_t len = static_cast<std::uint32_t>(prefix[0]) |
                            (static_cast<std::uint32_t>(prefix[1]) << 8) |
                            (static_cast<std::uint32_t>(prefix[2]) << 16) |
                            (static_cast<std::uint32_t>(prefix[3]) << 24);
  // The cap guards the ALLOCATION: an adversarial 4 GiB declaration is
  // rejected before a single payload byte is read or reserved.
  if (len > max_bytes) return FrameStatus::kTooLarge;
  if (len == 0) return FrameStatus::kOk;
  payload.resize(len);
  const ssize_t body = read_full(fd, payload.data(), len);
  if (body < 0) {
    payload.clear();
    return FrameStatus::kIoError;
  }
  if (body < static_cast<ssize_t>(len)) {
    payload.clear();
    return FrameStatus::kTruncated;
  }
  return FrameStatus::kOk;
}

bool write_frame(int fd, std::string_view payload) {
  if (payload.size() > 0xffffffffULL) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const unsigned char prefix[4] = {
      static_cast<unsigned char>(len & 0xff),
      static_cast<unsigned char>((len >> 8) & 0xff),
      static_cast<unsigned char>((len >> 16) & 0xff),
      static_cast<unsigned char>((len >> 24) & 0xff),
  };
  if (!write_full(fd, reinterpret_cast<const char*>(prefix), sizeof prefix)) {
    return false;
  }
  return write_full(fd, payload.data(), payload.size());
}

const char* code_name(Code c) noexcept {
  switch (c) {
    case Code::kOk:
      return "ok";
    case Code::kOverloaded:
      return "overloaded";
    case Code::kShuttingDown:
      return "shutting_down";
    case Code::kInvalidRequest:
      return "invalid_request";
    case Code::kDeadlineExceeded:
      return "deadline_exceeded";
    case Code::kResourceExhausted:
      return "resource_exhausted";
    case Code::kCancelled:
      return "cancelled";
    case Code::kInternal:
      return "internal";
  }
  return "?";
}

namespace {

bool code_from_name(std::string_view name, Code& out) {
  for (Code c : {Code::kOk, Code::kOverloaded, Code::kShuttingDown,
                 Code::kInvalidRequest, Code::kDeadlineExceeded,
                 Code::kResourceExhausted, Code::kCancelled,
                 Code::kInternal}) {
    if (name == code_name(c)) {
      out = c;
      return true;
    }
  }
  return false;
}

/// Split payload into trimmed lines (tolerates trailing \n and \r\n).
std::vector<std::string_view> payload_lines(std::string_view payload) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start < payload.size()) {
    std::size_t end = payload.find('\n', start);
    if (end == std::string_view::npos) end = payload.size();
    std::string_view line = payload.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) lines.push_back(line);
    start = end + 1;
  }
  return lines;
}

}  // namespace

bool parse_request(std::string_view payload, Request& out,
                   std::string& error) {
  out = Request{};
  const auto lines = payload_lines(payload);
  if (lines.empty() || lines[0] != kMagic) {
    error = "bad magic: expected first line '" + std::string(kMagic) + "'";
    return false;
  }
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      error = "malformed line (want key=value): '" + std::string(line) + "'";
      return false;
    }
    const std::string_view key = line.substr(0, eq);
    const std::string_view val = line.substr(eq + 1);
    bool num_ok = true;
    if (key == "algo") {
      out.algo = std::string(val);
    } else if (key == "graph") {
      out.graph = std::string(val);
    } else if (key == "source") {
      num_ok = parse_u64(val, out.source);
    } else if (key == "damping") {
      num_ok = parse_f64(val, out.damping) && out.damping >= 0.0 &&
               out.damping < 1.0;
    } else if (key == "threshold") {
      num_ok = parse_f64(val, out.threshold) && out.threshold >= 0.0;
    } else if (key == "max_iters") {
      num_ok = parse_u64(val, out.max_iters) && out.max_iters > 0;
    } else if (key == "mem_limit") {
      num_ok = parse_u64(val, out.mem_limit_bytes);
    } else if (key == "timeout_ms") {
      num_ok = parse_u64(val, out.timeout_ms);
    } else {
      // Unknown keys are REJECTED, not ignored: a typo'd knob silently
      // running with defaults is how "bounded" requests turn unbounded.
      error = "unknown request key '" + std::string(key) + "'";
      return false;
    }
    if (!num_ok) {
      error = "bad value for '" + std::string(key) + "': '" +
              std::string(val) + "'";
      return false;
    }
  }
  if (out.algo != "bfs" && out.algo != "sssp" && out.algo != "pagerank" &&
      out.algo != "tc" && out.algo != "cc") {
    error = out.algo.empty()
                ? "missing algo"
                : "unknown algo '" + out.algo +
                      "' (want bfs|sssp|pagerank|tc|cc)";
    return false;
  }
  if (out.graph.empty()) {
    error = "missing graph";
    return false;
  }
  return true;
}

std::string render_request(const Request& req) {
  std::string out = kMagic;
  out += "\nalgo=" + one_line(req.algo);
  out += "\ngraph=" + one_line(req.graph);
  if (req.source != 0) out += "\nsource=" + std::to_string(req.source);
  if (req.damping != 0.85) {
    out += "\ndamping=" + std::to_string(req.damping);
  }
  if (req.threshold != 1e-5) {
    out += "\nthreshold=" + std::to_string(req.threshold);
  }
  if (req.max_iters != 100) {
    out += "\nmax_iters=" + std::to_string(req.max_iters);
  }
  if (req.mem_limit_bytes != 0) {
    out += "\nmem_limit=" + std::to_string(req.mem_limit_bytes);
  }
  if (req.timeout_ms != 0) {
    out += "\ntimeout_ms=" + std::to_string(req.timeout_ms);
  }
  out += "\n";
  return out;
}

std::string Response::render() const {
  std::string out = kMagic;
  out += "\ncode=";
  out += code_name(code);
  if (!error.empty()) out += "\nerror=" + one_line(error);
  if (retry_after_ms != 0) {
    out += "\nretry_after_ms=" + std::to_string(retry_after_ms);
  }
  out += "\nelapsed_ms=" + std::to_string(elapsed_ms);
  if (!result.empty()) {
    out += "\n";
    out += result;
    if (out.back() == '\n') out.pop_back();
  }
  out += "\n";
  return out;
}

bool parse_response(std::string_view payload, Response& out,
                    std::string& error) {
  out = Response{};
  out.result.clear();
  const auto lines = payload_lines(payload);
  if (lines.empty() || lines[0] != kMagic) {
    error = "bad magic in response";
    return false;
  }
  bool saw_code = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      error = "malformed response line '" + std::string(line) + "'";
      return false;
    }
    const std::string_view key = line.substr(0, eq);
    const std::string_view val = line.substr(eq + 1);
    if (key == "code") {
      if (!code_from_name(val, out.code)) {
        error = "unknown response code '" + std::string(val) + "'";
        return false;
      }
      saw_code = true;
    } else if (key == "error") {
      out.error = std::string(val);
    } else if (key == "retry_after_ms") {
      if (!parse_u64(val, out.retry_after_ms)) {
        error = "bad retry_after_ms";
        return false;
      }
    } else if (key == "elapsed_ms") {
      if (!parse_u64(val, out.elapsed_ms)) {
        error = "bad elapsed_ms";
        return false;
      }
    } else {
      out.result += std::string(line) + "\n";
    }
  }
  if (!saw_code) {
    error = "response missing code";
    return false;
  }
  return true;
}

int connect_client(const std::string& target, std::string& error) {
  if (target.rfind("unix:", 0) == 0) {
    const std::string path = target.substr(5);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
      error = "unix socket path too long: " + path;
      return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      error = std::string("socket: ") + std::strerror(errno);
      return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      error = "connect " + path + ": " + std::strerror(errno);
      ::close(fd);
      return -1;
    }
    return fd;
  }
  if (target.rfind("tcp:", 0) == 0) {
    std::uint64_t port = 0;
    if (!parse_u64(target.substr(4), port) || port == 0 || port > 65535) {
      error = "bad tcp port in '" + target + "'";
      return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      error = std::string("socket: ") + std::strerror(errno);
      return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      error = "connect " + target + ": " + std::strerror(errno);
      ::close(fd);
      return -1;
    }
    return fd;
  }
  error = "bad target '" + target + "' (want unix:<path> or tcp:<port>)";
  return -1;
}

}  // namespace pygb::serve
