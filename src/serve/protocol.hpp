// serve/protocol.hpp — the pygb_serve wire protocol (docs/SERVING.md).
//
// Transport: a stream socket (Unix or local TCP). Each direction carries
// FRAMES: a 4-byte little-endian payload length followed by that many
// bytes of UTF-8 text. Text because the payloads are tiny (a DSL program
// request, a result summary) and a human can drive the server with a
// 5-line Python client; framed because a robust server must never scan a
// byte stream for delimiters an adversarial client controls.
//
// Request payload ("pygb-serve/1" magic, then key=value lines):
//
//   pygb-serve/1
//   algo=pagerank
//   graph=rmat:8
//   damping=0.85
//
// Response payload (same shape; `code` is the machine-readable verdict):
//
//   pygb-serve/1
//   code=ok
//   elapsed_ms=12
//   nrows=256
//   checksum=0x3fa...
//
// Robustness contract (exercised by tests/serve/test_protocol.cpp):
//   * a declared length above PYGB_SERVE_MAX_REQUEST_BYTES is rejected
//     BEFORE any payload byte is read — a client cannot make the server
//     allocate what it declares;
//   * truncated prefixes / mid-frame disconnects surface as typed
//     FrameStatus values, never partial payloads;
//   * parse_request() rejects unknown keys, bad numbers, and out-of-range
//     values with a message — garbage in, a typed `invalid_request` out.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace pygb::serve {

/// First line of every request and response payload.
inline constexpr const char* kMagic = "pygb-serve/1";

/// PYGB_SERVE_MAX_REQUEST_BYTES — largest request payload the server will
/// read (default 64 KiB; a DSL program request is ~100 bytes).
std::uint64_t max_request_bytes();

/// Outcome of reading one frame off a socket.
enum class FrameStatus {
  kOk,         ///< payload delivered
  kClosed,     ///< clean EOF before any byte of this frame
  kTruncated,  ///< EOF mid-prefix or mid-payload (client died / lied)
  kTooLarge,   ///< declared length exceeds the cap; nothing was read after
  kIoError,    ///< read()/write() failed (errno-level)
};
const char* frame_status_name(FrameStatus s) noexcept;

/// Read one frame (blocking). On kOk, `payload` holds the bytes; on any
/// other status `payload` is cleared. `max_bytes` caps the DECLARED
/// length — the guard runs before the payload read.
FrameStatus read_frame(int fd, std::string& payload, std::uint64_t max_bytes);

/// Write one frame (blocking, handles short writes). False on I/O error.
bool write_frame(int fd, std::string_view payload);

/// Machine-readable response verdicts. Wire strings are stable.
enum class Code {
  kOk,
  kOverloaded,         ///< admission control shed this request; retry later
  kShuttingDown,       ///< server draining; retry against a peer
  kInvalidRequest,     ///< malformed frame/program — do not retry as-is
  kDeadlineExceeded,   ///< request deadline hit (transient)
  kResourceExhausted,  ///< memory budget hit (transient)
  kCancelled,          ///< client disconnect or drain cap cancelled it
  kInternal,           ///< unexpected server-side failure
};
const char* code_name(Code c) noexcept;

/// A parsed client request. Field defaults are the wire defaults: a
/// request only carries the keys it wants to override.
struct Request {
  std::string algo;           ///< bfs | sssp | pagerank | tc | cc
  std::string graph;          ///< graph spec, e.g. "rmat:8" (session.hpp)
  std::uint64_t source = 0;   ///< bfs/sssp start vertex
  double damping = 0.85;      ///< pagerank
  double threshold = 1e-5;    ///< pagerank convergence
  std::uint64_t max_iters = 100;  ///< pagerank iteration cap
  std::uint64_t mem_limit_bytes = 0;  ///< per-request budget (0 = none)
  std::uint64_t timeout_ms = 0;  ///< whole-request deadline (0 = server default)
};

/// A response, renderable to and parseable from a payload.
struct Response {
  Code code = Code::kInternal;
  std::string error;               ///< human message when code != ok
  std::uint64_t retry_after_ms = 0;  ///< backpressure hint (overloaded)
  std::uint64_t elapsed_ms = 0;
  std::string result;  ///< extra "key=value\n" lines (ok results)

  bool ok() const noexcept { return code == Code::kOk; }
  std::string render() const;
};

/// Parse a request payload. Returns false and fills `error` on any
/// violation (bad magic, unknown key, malformed number, missing algo).
bool parse_request(std::string_view payload, Request& out, std::string& error);

/// Render a request payload (the client side; omits defaulted fields).
std::string render_request(const Request& req);

/// Parse a response payload (the client side). Unknown keys land in
/// `out.result` verbatim — result summaries are algo-specific.
bool parse_response(std::string_view payload, Response& out,
                    std::string& error);

/// Connect a blocking client socket. `target` is "unix:<path>" or
/// "tcp:<port>" (loopback). Returns the fd, or -1 with `error` filled.
int connect_client(const std::string& target, std::string& error);

}  // namespace pygb::serve
