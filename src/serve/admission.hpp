// serve/admission.hpp — admission control and load shedding for pygb_serve
// (docs/SERVING.md).
//
// Two gates, checked in order the moment a connection becomes a request:
//
//   1. QUEUE DEPTH — PYGB_SERVE_MAX_QUEUE caps the number of accepted
//      connections waiting for a worker. Past the cap, the server replies
//      `overloaded` (with a retry_after_ms hint) WITHOUT reading the
//      request payload: shedding must cost less than serving, or shedding
//      is just slower serving.
//   2. MEMORY HIGH WATER — PYGB_SERVE_MEM_HIGH_WATER_BYTES (default: 90%
//      of PYGB_MEM_LIMIT_BYTES) sheds new work while the governor's
//      process-wide gauge is above the mark. In-flight requests keep their
//      charges; new tenants wait. This turns "the next request would have
//      OOM-aborted three tenants' ops" into "one tenant saw a typed
//      overloaded reply and retried".
//
// Plus an AIMD CONCURRENCY WINDOW between admission and execution: a
// request holds a slot while it runs. Transient failures (compile timeouts
// under load, breaker opens, governor rejections) HALVE the window;
// successes grow it back by one, up to the worker count. This is the
// slow-start half of graceful degradation: after a breaker-open storm the
// server probes its way back to full concurrency instead of stampeding the
// compiler with PYGB_SERVE_THREADS simultaneous recompiles.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

namespace pygb::serve {

/// Knobs, resolved once at server start.
struct AdmissionConfig {
  std::uint64_t max_queue = 64;  ///< PYGB_SERVE_MAX_QUEUE (0 = no cap)
  /// PYGB_SERVE_MEM_HIGH_WATER_BYTES; 0 = disabled. Defaults to 90% of
  /// PYGB_MEM_LIMIT_BYTES when that limit is set.
  std::uint64_t mem_high_water_bytes = 0;
  std::uint64_t retry_after_ms = 250;  ///< hint in overloaded replies

  static AdmissionConfig from_env();
};

/// One admission decision. When !admitted, `reason` is a human message and
/// `retry_after_ms` the backpressure hint for the typed reply.
struct Verdict {
  bool admitted = true;
  std::string reason;
  std::uint64_t retry_after_ms = 0;
};

/// The gate. Thread-safe; one instance per server.
class AdmissionController {
 public:
  AdmissionController(const AdmissionConfig& cfg,
                      std::uint64_t max_concurrency);

  /// Gate 1+2: may this connection become a request right now?
  /// `queue_depth` is the caller's count of accepted-but-unserved
  /// connections (the controller does not own the queue).
  Verdict try_admit(std::uint64_t queue_depth);

  /// Block until a concurrency slot inside the current AIMD window frees,
  /// or `timeout_ms` passes (false = shed as overloaded). A wakeup()
  /// (server drain) also returns false immediately.
  bool acquire_slot(std::uint64_t timeout_ms);

  /// Return a slot. `transient_failure` = the request died to a transient
  /// cause (deadline, budget, compile trouble) — halves the window;
  /// otherwise the window grows by one toward max_concurrency.
  void release_slot(bool transient_failure) noexcept;

  /// Release every waiter with failure (drain path).
  void wakeup() noexcept;

  std::uint64_t window() const noexcept;
  std::uint64_t in_flight() const noexcept;

 private:
  AdmissionConfig cfg_;
  const std::uint64_t max_window_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t window_;       ///< current AIMD cap on in_flight_
  std::uint64_t in_flight_ = 0;
  bool draining_ = false;
};

}  // namespace pygb::serve
