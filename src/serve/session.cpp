// serve/session.cpp — graph-spec resolution, the shared LRU, and the
// typed-error execution path (session.hpp).
#include "serve/session.hpp"

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <utility>
#include <vector>

#include "algorithms/dsl_algorithms.hpp"
#include "generators/classic.hpp"
#include "generators/erdos_renyi.hpp"
#include "generators/rmat.hpp"
#include "io/matrix_market.hpp"
#include "pygb/obs/flightrec.hpp"
#include "pygb/utilities.hpp"

namespace pygb::serve {

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  if (const char* v = std::getenv(name)) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end != v && *end == '\0') return parsed;
  }
  return fallback;
}

std::uint64_t spec_number(const std::string& spec, const std::string& field) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(field.c_str(), &end, 10);
  if (field.empty() || errno != 0 || end != field.c_str() + field.size()) {
    throw std::invalid_argument("bad number in graph spec '" + spec + "'");
  }
  return v;
}

/// Parse and build one graph (no caching, no charging — GraphCache::get
/// owns those). Throws std::invalid_argument on malformed specs.
Matrix build_graph(const std::string& spec, const SessionConfig& cfg) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    throw std::invalid_argument("bad graph spec '" + spec +
                                "' (want family:args)");
  }
  const std::string family = spec.substr(0, colon);
  const std::string rest = spec.substr(colon + 1);

  if (family == "rmat") {
    gen::RmatParams p;
    const std::size_t colon2 = rest.find(':');
    const std::string scale_s =
        colon2 == std::string::npos ? rest : rest.substr(0, colon2);
    p.scale = static_cast<unsigned>(spec_number(spec, scale_s));
    if (colon2 != std::string::npos) {
      p.edge_factor =
          static_cast<std::size_t>(spec_number(spec, rest.substr(colon2 + 1)));
      if (p.edge_factor == 0 || p.edge_factor > 64) {
        throw std::invalid_argument("edge_factor out of range in '" + spec +
                                    "' (want 1..64)");
      }
    }
    if (p.scale > cfg.max_scale) {
      throw std::invalid_argument(
          "rmat scale " + std::to_string(p.scale) + " exceeds cap " +
          std::to_string(cfg.max_scale) + " (PYGB_SERVE_MAX_SCALE)");
    }
    return Matrix::from_edge_list(gen::rmat(p));
  }
  if (family == "er" || family == "ring" || family == "path" ||
      family == "star") {
    const std::uint64_t n = spec_number(spec, rest);
    // Same cap as rmat, expressed in vertices: request-named sizes must be
    // bounded or one client's spec is the server's OOM.
    const std::uint64_t max_n = std::uint64_t{1} << cfg.max_scale;
    if (n < 2 || n > max_n) {
      throw std::invalid_argument("graph size " + std::to_string(n) +
                                  " out of range in '" + spec + "' (want 2.." +
                                  std::to_string(max_n) + ")");
    }
    const auto nn = static_cast<gbtl::IndexType>(n);
    if (family == "er") {
      return Matrix::from_edge_list(
          gen::paper_graph(nn, /*seed=*/42, /*symmetric=*/true, 1.0, 5.0));
    }
    if (family == "ring") {
      return Matrix::from_edge_list(gen::cycle_graph(nn, /*symmetric=*/true));
    }
    if (family == "path") {
      return Matrix::from_edge_list(gen::path_graph(nn, /*symmetric=*/true));
    }
    return Matrix::from_edge_list(gen::star_graph(nn, /*symmetric=*/true));
  }
  if (family == "file") {
    if (!cfg.allow_files) {
      throw std::invalid_argument(
          "file: graph specs are disabled (set PYGB_SERVE_ALLOW_FILES=1)");
    }
    return Matrix::from_coo(io::read_matrix_market(rest));
  }
  throw std::invalid_argument("unknown graph family '" + family + "' in '" +
                              spec + "'");
}

/// Adjacency footprint estimate for the cache entry's governor charge:
/// CSR-ish index+value storage per edge plus row pointers.
std::uint64_t graph_bytes(const Matrix& m) {
  return static_cast<std::uint64_t>(m.nvals()) * 16 +
         static_cast<std::uint64_t>(m.nrows()) * 8;
}

double vector_sum(const Vector& v) {
  double sum = 0.0;
  const gbtl::IndexType n = v.size();
  for (gbtl::IndexType i = 0; i < n; ++i) {
    if (v.has_element(i)) sum += v.get(i);
  }
  return sum;
}

}  // namespace

SessionConfig SessionConfig::from_env() {
  SessionConfig cfg;
  cfg.graph_cache_cap =
      std::max<std::uint64_t>(1, env_u64("PYGB_SERVE_GRAPH_CACHE", 8));
  cfg.max_scale = env_u64("PYGB_SERVE_MAX_SCALE", 20);
  if (const char* v = std::getenv("PYGB_SERVE_ALLOW_FILES")) {
    cfg.allow_files = v[0] == '1' && v[1] == '\0';
  }
  return cfg;
}

Matrix GraphCache::get(const std::string& spec) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      if (it->spec == spec) {
        lru_.splice(lru_.begin(), lru_, it);
        return lru_.front().graph;
      }
    }
  }
  // Build OUTSIDE the lock (a scale-20 rmat takes seconds; concurrent
  // requests for other graphs must not queue behind it — a duplicate
  // build of the SAME spec is possible and benign, the loser's entry just
  // gets evicted first) and OUTSIDE any request context: the graph is
  // shared infrastructure, charged to the process-wide gauge and immune to
  // this tenant's deadline/cancel.
  governor::ThreadBind unbind(nullptr);
  Entry entry;
  entry.spec = spec;
  entry.graph = build_graph(spec, cfg_);
  entry.charge.add(graph_bytes(entry.graph));  // may throw ResourceExhausted

  std::lock_guard<std::mutex> lock(mu_);
  lru_.push_front(std::move(entry));
  while (lru_.size() > cfg_.graph_cache_cap) {
    lru_.pop_back();  // ~MemCharge returns the bytes to the gauge
  }
  return lru_.front().graph;
}

std::size_t GraphCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

Response execute(const Request& req, GraphCache& cache,
                 std::uint64_t request_id) {
  const auto start = std::chrono::steady_clock::now();
  Response resp;
  try {
    Matrix graph = cache.get(req.graph);
    const gbtl::IndexType n = graph.nrows();
    if (req.source >= static_cast<std::uint64_t>(n)) {
      throw std::invalid_argument("source " + std::to_string(req.source) +
                                  " out of range (graph has " +
                                  std::to_string(n) + " vertices)");
    }
    const auto src = static_cast<gbtl::IndexType>(req.source);
    std::string result = "nrows=" + std::to_string(n) + "\n";

    if (req.algo == "bfs") {
      Vector frontier(n, DType::kBool);
      frontier.set(src, Scalar(true));
      Vector levels(n, DType::kInt64);
      const auto depth = algo::dsl_bfs(graph, std::move(frontier), levels);
      result += "depth=" + std::to_string(depth) + "\n";
      result += "reached=" + std::to_string(levels.nvals()) + "\n";
    } else if (req.algo == "sssp") {
      Vector path(n, DType::kFP64);
      path.set(src, 0.0);
      algo::dsl_sssp(graph, path);
      result += "reached=" + std::to_string(path.nvals()) + "\n";
      result += "checksum=" + std::to_string(vector_sum(path)) + "\n";
    } else if (req.algo == "pagerank") {
      Vector ranks = algo::dsl_page_rank(
          graph, req.damping, req.threshold,
          static_cast<unsigned>(req.max_iters));
      result += "nvals=" + std::to_string(ranks.nvals()) + "\n";
      result += "sum=" + std::to_string(vector_sum(ranks)) + "\n";
    } else if (req.algo == "tc") {
      auto [lower, upper] = split_triangles(graph);
      (void)upper;
      result +=
          "triangles=" + std::to_string(algo::dsl_triangle_count(lower)) +
          "\n";
    } else if (req.algo == "cc") {
      Vector labels(n, DType::kInt64);
      const auto comps = algo::dsl_connected_components(graph, labels);
      result += "components=" + std::to_string(comps) + "\n";
    } else {
      throw std::invalid_argument("unknown algo '" + req.algo + "'");
    }
    resp.code = Code::kOk;
    resp.result = std::move(result);
  } catch (const governor::Cancelled& e) {
    resp.code = Code::kCancelled;
    resp.error = e.what();
  } catch (const governor::DeadlineExceeded& e) {
    resp.code = Code::kDeadlineExceeded;
    resp.error = e.what();
  } catch (const governor::ResourceExhausted& e) {
    resp.code = Code::kResourceExhausted;
    resp.error = e.what();
  } catch (const std::invalid_argument& e) {
    resp.code = Code::kInvalidRequest;
    resp.error = e.what();
  } catch (const std::exception& e) {
    resp.code = Code::kInternal;
    resp.error = e.what();
  }
  resp.elapsed_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  flightrec::record(flightrec::EventKind::kServe,
                    resp.ok() ? "done" : "error", request_id,
                    flightrec::fnv1a(req.algo.c_str()));
  return resp;
}

}  // namespace pygb::serve
