// serve/server.cpp — accept/admit/execute/drain (server.hpp).
#include "serve/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "pygb/governor.hpp"
#include "pygb/obs/export.hpp"
#include "pygb/obs/flightrec.hpp"
#include "pygb/obs/obs.hpp"

#ifndef POLLRDHUP
#define POLLRDHUP 0x2000  // Linux value; glibc hides it without _GNU_SOURCE
#endif

namespace pygb::serve {

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  if (const char* v = std::getenv(name)) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end != v && *end == '\0') return parsed;
  }
  return fallback;
}

}  // namespace

/// fd → bound context, for the disconnect monitor. A context is only
/// registered while its worker is executing, and the worker removes it
/// BEFORE the context leaves scope — so the monitor can never cancel
/// through a dangling pointer.
struct Server::Active {
  struct Entry {
    governor::RequestContext* ctx;
    bool hup = false;  ///< count each disconnect once
  };
  std::mutex mu;
  std::unordered_map<int, Entry> by_fd;

  void add(int fd, governor::RequestContext* ctx) {
    std::lock_guard<std::mutex> lock(mu);
    by_fd[fd] = Entry{ctx};
  }
  void remove(int fd) {
    std::lock_guard<std::mutex> lock(mu);
    by_fd.erase(fd);
  }
  void cancel_all() {
    std::lock_guard<std::mutex> lock(mu);
    for (auto& [fd, e] : by_fd) e.ctx->cancel();
  }
};

ServerConfig ServerConfig::from_env() {
  ServerConfig cfg;
  cfg.threads = std::max<std::uint64_t>(
      1, env_u64("PYGB_SERVE_THREADS", cfg.threads));
  cfg.request_timeout_ms =
      env_u64("PYGB_SERVE_REQUEST_TIMEOUT_MS", cfg.request_timeout_ms);
  cfg.drain_ms = env_u64("PYGB_SERVE_DRAIN_MS", cfg.drain_ms);
  cfg.admission = AdmissionConfig::from_env();
  cfg.session = SessionConfig::from_env();
  return cfg;
}

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      graphs_(cfg_.session),
      admission_(cfg_.admission, cfg_.threads),
      active_(new Active) {}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
  // start() failed or run() completed: both leave the threads joined.
  delete active_;
}

bool Server::start(std::string& error) {
  // A client that vanishes mid-reply must cost the worker an EPIPE, not
  // the process a SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);

  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];

  if (cfg_.target.rfind("unix:", 0) == 0) {
    const std::string path = cfg_.target.substr(5);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
      error = "unix socket path too long: " + path;
      return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ::unlink(path.c_str());  // stale socket from a killed predecessor
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0 ||
        ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0) {
      error = "bind " + path + ": " + std::strerror(errno);
      return false;
    }
    unix_path_ = path;
    endpoint_ = cfg_.target;
  } else if (cfg_.target.rfind("tcp:", 0) == 0) {
    char* end = nullptr;
    const long port = std::strtol(cfg_.target.c_str() + 4, &end, 10);
    if (end == cfg_.target.c_str() + 4 || *end != '\0' || port < 0 ||
        port > 65535) {
      error = "bad tcp port in '" + cfg_.target + "'";
      return false;
    }
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0) {
      error = "bind " + cfg_.target + ": " + std::strerror(errno);
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    endpoint_ = "tcp:" + std::to_string(ntohs(bound.sin_port));
  } else {
    error = "bad target '" + cfg_.target + "' (want unix:<path>|tcp:<port>)";
    return false;
  }

  if (::listen(listen_fd_, 128) != 0) {
    error = std::string("listen: ") + std::strerror(errno);
    return false;
  }

  workers_.reserve(cfg_.threads);
  for (std::uint64_t i = 0; i < cfg_.threads; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
  monitor_ = std::thread([this] { monitor_main(); });
  started_ = true;
  return true;
}

void Server::request_shutdown() noexcept {
  if (wake_wr_ >= 0) {
    const char b = 's';
    [[maybe_unused]] const ssize_t w = ::write(wake_wr_, &b, 1);
  }
}

void Server::reply_and_close(int fd, Code code, const std::string& error,
                             std::uint64_t retry_after_ms) {
  Response resp;
  resp.code = code;
  resp.error = error;
  resp.retry_after_ms = retry_after_ms;
  write_frame(fd, resp.render());
  ::close(fd);
}

int Server::run() {
  if (!started_) return 1;
  pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_rd_, POLLIN, 0}};
  bool drain = false;
  while (!drain) {
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) {
      drain = true;
      break;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;

    std::uint64_t depth;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      depth = pending_.size();
    }
    const Verdict v = admission_.try_admit(depth);
    if (!v.admitted) {
      obs::counter_add(obs::Counter::kServeRejected);
      flightrec::record(flightrec::EventKind::kServe, "reject", depth);
      reply_and_close(conn, Code::kOverloaded, v.reason, v.retry_after_ms);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      pending_.push_back(conn);
    }
    queue_cv_.notify_one();
  }

  // -- graceful drain -------------------------------------------------------
  flightrec::record(flightrec::EventKind::kServe, "drain");
  ::close(listen_fd_);
  listen_fd_ = -1;

  std::deque<int> leftover;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
    leftover.swap(pending_);
  }
  queue_cv_.notify_all();
  admission_.wakeup();
  for (int fd : leftover) {
    obs::counter_add(obs::Counter::kServeRejected);
    reply_and_close(fd, Code::kShuttingDown, "server draining",
                    cfg_.admission.retry_after_ms);
  }

  // Let in-flight requests finish under the drain deadline, then cancel
  // the stragglers — they unwind at their next checkpoint and still get a
  // typed `cancelled` reply before their socket closes.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(cfg_.drain_ms);
  while (in_flight_.load(std::memory_order_relaxed) != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (in_flight_.load(std::memory_order_relaxed) != 0) {
    active_->cancel_all();
  }
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  monitor_stop_.store(true, std::memory_order_relaxed);
  monitor_.join();

  obs::flush_metrics_files();
  return 0;
}

void Server::worker_main() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stopping_ and nothing left
      fd = pending_.front();
      pending_.pop_front();
      if (stopping_) {
        // Raced the drain sweep; this connection never started executing.
        lock.unlock();
        obs::counter_add(obs::Counter::kServeRejected);
        reply_and_close(fd, Code::kShuttingDown, "server draining",
                        cfg_.admission.retry_after_ms);
        continue;
      }
    }
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    serve_one(fd);
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Server::serve_one(int fd) {
  std::string payload;
  const FrameStatus fs = read_frame(fd, payload, max_request_bytes());
  switch (fs) {
    case FrameStatus::kOk:
      break;
    case FrameStatus::kClosed:
      // Connected and left without a word; nothing to reply to.
      ::close(fd);
      return;
    case FrameStatus::kTooLarge:
      reply_and_close(fd, Code::kInvalidRequest,
                      "declared frame length exceeds " +
                          std::to_string(max_request_bytes()) +
                          " bytes (PYGB_SERVE_MAX_REQUEST_BYTES)",
                      0);
      return;
    case FrameStatus::kTruncated:
    case FrameStatus::kIoError:
      obs::counter_add(obs::Counter::kServeDisconnects);
      flightrec::record(flightrec::EventKind::kServe, "disconnect");
      ::close(fd);
      return;
  }

  Request req;
  std::string perr;
  if (!parse_request(payload, req, perr)) {
    obs::counter_add(obs::Counter::kServeRejected);
    reply_and_close(fd, Code::kInvalidRequest, perr, 0);
    return;
  }

  // The AIMD window: bounded wait for a concurrency slot. After transient
  // trouble the window narrows, so a recompile storm probes with one
  // request instead of stampeding with all of them.
  if (!admission_.acquire_slot(cfg_.admission.retry_after_ms)) {
    obs::counter_add(obs::Counter::kServeRejected);
    flightrec::record(flightrec::EventKind::kServe, "reject");
    reply_and_close(fd, Code::kOverloaded, "no execution slot (window " +
                        std::to_string(admission_.window()) + ")",
                    cfg_.admission.retry_after_ms);
    return;
  }

  const std::uint64_t id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  obs::counter_add(obs::Counter::kServeAdmitted);
  flightrec::record(flightrec::EventKind::kServe, "admit", id);

  governor::RequestContext ctx;
  const std::string label = "req-" + std::to_string(id);
  ctx.set_label(label.c_str());
  if (req.mem_limit_bytes != 0) ctx.set_mem_limit_bytes(req.mem_limit_bytes);
  const std::uint64_t timeout =
      req.timeout_ms != 0 ? req.timeout_ms : cfg_.request_timeout_ms;
  if (timeout != 0) ctx.set_request_deadline_ms(timeout);

  active_->add(fd, &ctx);
  Response resp;
  {
    obs::Span span("serve.request");
    span.attr("id", id).attr("algo", req.algo).attr("graph", req.graph);
    governor::ThreadBind bind(&ctx);
    resp = execute(req, graphs_, id);
    span.attr("code", code_name(resp.code));
  }
  active_->remove(fd);

  if (resp.code == Code::kCancelled) {
    obs::counter_add(obs::Counter::kServeCancelled);
    flightrec::record(flightrec::EventKind::kServe, "cancel", id);
  }
  bool stopping;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping = stopping_;
  }
  if (stopping) {
    obs::counter_add(obs::Counter::kServeDrained);
  }
  write_frame(fd, resp.render());
  ::close(fd);

  const bool transient = resp.code == Code::kDeadlineExceeded ||
                         resp.code == Code::kResourceExhausted;
  admission_.release_slot(transient);
}

void Server::monitor_main() {
  // Poll every active connection for hangup (~50 ms cadence). A dropped
  // client cancels exactly its own request's context; the worker unwinds
  // at the next governor checkpoint with no partial output.
  while (!monitor_stop_.load(std::memory_order_relaxed)) {
    std::vector<pollfd> fds;
    {
      std::lock_guard<std::mutex> lock(active_->mu);
      fds.reserve(active_->by_fd.size());
      for (const auto& [fd, e] : active_->by_fd) {
        if (!e.hup) fds.push_back({fd, POLLRDHUP, 0});
      }
    }
    if (!fds.empty() && ::poll(fds.data(), fds.size(), 0) > 0) {
      std::lock_guard<std::mutex> lock(active_->mu);
      for (const pollfd& p : fds) {
        if ((p.revents & (POLLRDHUP | POLLHUP | POLLERR | POLLNVAL)) == 0) {
          continue;
        }
        auto it = active_->by_fd.find(p.fd);
        if (it == active_->by_fd.end() || it->second.hup) continue;
        it->second.hup = true;
        it->second.ctx->cancel();
        obs::counter_add(obs::Counter::kServeDisconnects);
        flightrec::record(flightrec::EventKind::kServe, "disconnect");
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

}  // namespace pygb::serve
