// io/errors.hpp — typed error for the ingestion paths. Malformed or
// adversarial input files (bad banners, truncated entry lists, indices that
// overflow IndexType, nnz headers claiming more entries than the stream
// could possibly hold) must surface as ParseError, never as a crash, an
// unbounded allocation, or a partially-mutated output. Oversized-but-
// well-formed inputs that trip the governor budget raise
// pygb::governor::ResourceExhausted instead.
#pragma once

#include <stdexcept>
#include <string>

namespace pygb::io {

/// Malformed input. Derived from std::runtime_error so existing callers
/// that catch the old untyped throw keep working; new callers can tell
/// "bad file" apart from IO failures and governor rejections.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& msg) : std::runtime_error(msg) {}
};

}  // namespace pygb::io
