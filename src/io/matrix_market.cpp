#include "io/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace pygb::io {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

[[noreturn]] void fail(const std::string& what, const std::string& msg) {
  throw std::runtime_error("matrix market (" + what + "): " + msg);
}

}  // namespace

Coo read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open file");
  return read_matrix_market(in, path);
}

Coo read_matrix_market(std::istream& in, const std::string& what) {
  std::string line;
  if (!std::getline(in, line)) fail(what, "empty file");

  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") fail(what, "missing %%MatrixMarket banner");
  if (lower(object) != "matrix" || lower(format) != "coordinate") {
    fail(what, "only 'matrix coordinate' files are supported");
  }
  field = lower(field);
  symmetry = lower(symmetry);
  const bool pattern = field == "pattern";
  if (!pattern && field != "real" && field != "integer") {
    fail(what, "unsupported field type '" + field + "'");
  }
  const bool symmetric = symmetry == "symmetric";
  if (!symmetric && symmetry != "general") {
    fail(what, "unsupported symmetry '" + symmetry + "'");
  }

  // Skip comments, read the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  long long nrows = 0, ncols = 0, nnz = 0;
  if (!(size_line >> nrows >> ncols >> nnz) || nrows <= 0 || ncols <= 0 ||
      nnz < 0) {
    fail(what, "bad size line '" + line + "'");
  }

  Coo coo;
  coo.nrows = static_cast<gbtl::IndexType>(nrows);
  coo.ncols = static_cast<gbtl::IndexType>(ncols);
  coo.rows.reserve(static_cast<std::size_t>(nnz) * (symmetric ? 2 : 1));
  coo.cols.reserve(coo.rows.capacity());
  coo.vals.reserve(coo.rows.capacity());

  for (long long k = 0; k < nnz; ++k) {
    long long i = 0, j = 0;
    double v = 1.0;
    if (!(in >> i >> j)) fail(what, "truncated entry list");
    if (!pattern && !(in >> v)) fail(what, "truncated entry value");
    if (i < 1 || i > nrows || j < 1 || j > ncols) {
      fail(what, "entry index out of range");
    }
    coo.rows.push_back(static_cast<gbtl::IndexType>(i - 1));
    coo.cols.push_back(static_cast<gbtl::IndexType>(j - 1));
    coo.vals.push_back(v);
    if (symmetric && i != j) {
      coo.rows.push_back(static_cast<gbtl::IndexType>(j - 1));
      coo.cols.push_back(static_cast<gbtl::IndexType>(i - 1));
      coo.vals.push_back(v);
    }
  }
  return coo;
}

void write_matrix_market(const std::string& path, const Coo& coo) {
  std::ofstream out(path);
  if (!out) fail(path, "cannot open file for writing");
  write_matrix_market(out, coo);
}

void write_matrix_market(std::ostream& out, const Coo& coo) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << coo.nrows << ' ' << coo.ncols << ' ' << coo.nnz() << '\n';
  for (std::size_t k = 0; k < coo.nnz(); ++k) {
    out << coo.rows[k] + 1 << ' ' << coo.cols[k] + 1 << ' ' << coo.vals[k]
        << '\n';
  }
}

}  // namespace pygb::io
