#include "io/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "io/errors.hpp"
#include "pygb/governor.hpp"

namespace pygb::io {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

[[noreturn]] void fail(const std::string& what, const std::string& msg) {
  throw ParseError("matrix market (" + what + "): " + msg);
}

/// Checked narrowing for header-supplied 64-bit values. IndexType is
/// unsigned, so the dangerous inputs are negatives (which would wrap to
/// huge indices) — the caller has already range-checked magnitudes.
gbtl::IndexType to_index(long long v, const std::string& what,
                         const char* field) {
  if (v < 0) fail(what, std::string("negative ") + field);
  return static_cast<gbtl::IndexType>(v);
}

/// Bytes each coordinate entry occupies in the staged Coo arrays
/// (IndexType row + IndexType col + double val).
constexpr std::uint64_t kBytesPerEntry =
    sizeof(gbtl::IndexType) * 2 + sizeof(double);

/// The nnz header of an untrusted file must not size a reserve() on its
/// own: "1 1 9999999999999" is a 20-byte file claiming terabytes. Clamp
/// the claim to what the remaining stream bytes could possibly encode —
/// the minimum well-formed entry is "1 1\n" (4 bytes) for pattern files
/// and "1 1 1\n" (6 bytes) otherwise. For non-seekable streams the claim
/// is still bounded by the governor charge below; the reserve is merely
/// allowed to be optimistic.
std::uint64_t clamp_reserve_to_stream(std::istream& in, std::uint64_t claimed,
                                      bool pattern) {
  const std::uint64_t min_entry_bytes = pattern ? 4 : 6;
  const auto here = in.tellg();
  if (here < 0) return claimed;  // non-seekable stream: only the charge caps
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(here);
  if (end < 0 || end < here) return claimed;
  const std::uint64_t remaining = static_cast<std::uint64_t>(end - here);
  return std::min(claimed, remaining / min_entry_bytes + 1);
}

}  // namespace

Coo read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open file");
  return read_matrix_market(in, path);
}

Coo read_matrix_market(std::istream& in, const std::string& what) {
  std::string line;
  if (!std::getline(in, line)) fail(what, "empty file");

  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") fail(what, "missing %%MatrixMarket banner");
  if (lower(object) != "matrix" || lower(format) != "coordinate") {
    fail(what, "only 'matrix coordinate' files are supported");
  }
  field = lower(field);
  symmetry = lower(symmetry);
  const bool pattern = field == "pattern";
  const bool integer = field == "integer";
  if (!pattern && field != "real" && !integer) {
    fail(what, "unsupported field type '" + field + "'");
  }
  const bool symmetric = symmetry == "symmetric";
  if (!symmetric && symmetry != "general") {
    fail(what, "unsupported symmetry '" + symmetry + "'");
  }

  // Skip comments, read the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  long long nrows = 0, ncols = 0, nnz = 0;
  if (!(size_line >> nrows >> ncols >> nnz) || nrows <= 0 || ncols <= 0 ||
      nnz < 0) {
    fail(what, "bad size line '" + line + "'");
  }

  Coo coo;
  coo.nrows = to_index(nrows, what, "row count");
  coo.ncols = to_index(ncols, what, "column count");

  // Size the reserve from the nnz claim, but never beyond what the stream
  // could actually contain, and charge it against the governor budget
  // BEFORE allocating (incremental top-ups below cover symmetric growth
  // past the initial estimate).
  const std::uint64_t expansion = symmetric ? 2 : 1;
  const std::uint64_t reserve_n =
      clamp_reserve_to_stream(in, static_cast<std::uint64_t>(nnz), pattern) *
      expansion;
  governor::MemCharge charge(reserve_n * kBytesPerEntry);
  coo.rows.reserve(static_cast<std::size_t>(reserve_n));
  coo.cols.reserve(static_cast<std::size_t>(reserve_n));
  coo.vals.reserve(static_cast<std::size_t>(reserve_n));

  std::string tok;
  for (long long k = 0; k < nnz; ++k) {
    governor::checkpoint();
    long long i = 0, j = 0;
    double v = 1.0;
    if (!(in >> i >> j)) fail(what, "truncated entry list");
    if (!pattern) {
      // Parsed via strtod rather than operator>> so IEEE specials ("nan",
      // "inf") and overflowing literals ("1e999") reach the finiteness
      // check below instead of silently failing extraction.
      if (!(in >> tok)) fail(what, "truncated entry value");
      char* end = nullptr;
      v = std::strtod(tok.c_str(), &end);
      if (end == tok.c_str() || *end != '\0') {
        fail(what, "bad entry value '" + tok + "'");
      }
    }
    if (i < 1 || i > nrows || j < 1 || j > ncols) {
      fail(what, "entry index out of range");
    }
    if (integer && !std::isfinite(v)) {
      fail(what, "non-finite value in integer field");
    }
    if (coo.vals.size() == coo.vals.capacity()) {
      // The stream held more entries than the clamp estimated (dense
      // whitespace, symmetric expansion) — charge the doubling before the
      // vectors perform it.
      charge.add(std::max<std::uint64_t>(coo.vals.capacity(), 16) *
                 kBytesPerEntry);
    }
    coo.rows.push_back(static_cast<gbtl::IndexType>(i - 1));
    coo.cols.push_back(static_cast<gbtl::IndexType>(j - 1));
    coo.vals.push_back(v);
    if (symmetric && i != j) {
      coo.rows.push_back(static_cast<gbtl::IndexType>(j - 1));
      coo.cols.push_back(static_cast<gbtl::IndexType>(i - 1));
      coo.vals.push_back(v);
    }
  }
  return coo;
}

void write_matrix_market(const std::string& path, const Coo& coo) {
  std::ofstream out(path);
  if (!out) fail(path, "cannot open file for writing");
  write_matrix_market(out, coo);
}

void write_matrix_market(std::ostream& out, const Coo& coo) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << coo.nrows << ' ' << coo.ncols << ' ' << coo.nnz() << '\n';
  for (std::size_t k = 0; k < coo.nnz(); ++k) {
    out << coo.rows[k] + 1 << ' ' << coo.cols[k] + 1 << ' ' << coo.vals[k]
        << '\n';
  }
}

}  // namespace pygb::io
