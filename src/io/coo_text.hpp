// io/coo_text.hpp — the two ingestion paths benchmarked in Fig. 11:
//
//   * read_coo_text        — the "native C++" path: stream triplets straight
//                            from disk into index/value arrays.
//   * read_file_as_pylists — the "Python" path: every line is tokenized
//                            into a list of individually heap-boxed dynamic
//                            values (our stand-in for CPython's list of
//                            PyObject*), which is then converted to
//                            coordinates in a second pass.
//
// File format: optional first line "nrows ncols" prefixed by '#', then one
// "row col value" triplet per line.
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "io/coo.hpp"

namespace pygb::io {

/// Fast path: stream a triplet file directly into a Coo.
Coo read_coo_text(const std::string& path);

/// Write a triplet file with a "# nrows ncols" header.
void write_coo_text(const std::string& path, const Coo& coo);

/// A boxed dynamic value, the moral equivalent of a PyObject*: every token
/// is a separate heap allocation carrying a runtime type tag.
using PyValue = std::variant<long long, double, std::string>;
using BoxedValue = std::unique_ptr<PyValue>;

/// A "Python list" of boxed values (one file line → one list).
using PyList = std::vector<BoxedValue>;

/// Slow path, stage 1: read a file into per-line token lists, boxing each
/// token (ints parse to long long, reals to double, rest stay strings).
std::vector<PyList> read_file_as_pylists(const std::string& path);

/// Slow path, stage 2: interpret the boxed lists as "# nrows ncols" +
/// triplets, with per-element dynamic type dispatch on every access.
Coo pylists_to_coo(const std::vector<PyList>& lists);

/// Slow path, stage 3 (Fig. 11 "extract"): convert a Coo back into boxed
/// per-element lists, the analog of extracting matrix data to Python lists.
std::vector<PyList> coo_to_pylists(const Coo& coo);

}  // namespace pygb::io
