#include "io/coo_text.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "io/errors.hpp"
#include "pygb/governor.hpp"

namespace pygb::io {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& msg) {
  throw ParseError("coo text (" + path + "): " + msg);
}

/// Bytes one staged entry occupies (row + col index, double value).
constexpr std::uint64_t kBytesPerEntry =
    sizeof(gbtl::IndexType) * 2 + sizeof(double);

/// Charge the governor budget in batches as the triplet arrays grow; the
/// file carries no trustworthy size claim, so the charge is incremental.
constexpr std::size_t kChargeBatch = 4096;

/// Box one token the way a Python tokenizer would: try int, then float,
/// else keep the string.
BoxedValue box_token(const std::string& tok) {
  long long iv = 0;
  auto [p_int, ec_int] = std::from_chars(tok.data(), tok.data() + tok.size(), iv);
  if (ec_int == std::errc{} && p_int == tok.data() + tok.size()) {
    return std::make_unique<PyValue>(iv);
  }
  try {
    std::size_t pos = 0;
    const double dv = std::stod(tok, &pos);
    if (pos == tok.size()) return std::make_unique<PyValue>(dv);
  } catch (const std::exception&) {
    // fall through to string
  }
  return std::make_unique<PyValue>(tok);
}

/// Dynamic numeric coercion — the per-access type dispatch a Python loop
/// pays when consuming heterogeneous list elements.
double as_double(const PyValue& v, const char* what) {
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* i = std::get_if<long long>(&v)) {
    return static_cast<double>(*i);
  }
  throw std::runtime_error(std::string("expected numeric token for ") + what);
}

long long as_int(const PyValue& v, const char* what) {
  if (const auto* i = std::get_if<long long>(&v)) return *i;
  if (const auto* d = std::get_if<double>(&v)) {
    return static_cast<long long>(*d);
  }
  throw std::runtime_error(std::string("expected integer token for ") + what);
}

}  // namespace

Coo read_coo_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open file");
  Coo coo;
  std::string line;
  bool have_header = false;
  governor::MemCharge charge;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream hdr(line.substr(1));
      long long r = 0, c = 0;
      if (hdr >> r >> c) {
        if (r < 0 || c < 0) fail(path, "negative dimension in header");
        coo.nrows = static_cast<gbtl::IndexType>(r);
        coo.ncols = static_cast<gbtl::IndexType>(c);
        have_header = true;
      }
      continue;
    }
    std::istringstream ls(line);
    long long i = 0, j = 0;
    double v = 0;
    if (!(ls >> i >> j >> v)) fail(path, "bad triplet line '" + line + "'");
    if (i < 0 || j < 0) fail(path, "negative index in triplet");
    if (have_header &&
        (static_cast<gbtl::IndexType>(i) >= coo.nrows ||
         static_cast<gbtl::IndexType>(j) >= coo.ncols)) {
      fail(path, "triplet index out of declared range");
    }
    if (coo.nnz() % kChargeBatch == 0) {
      governor::checkpoint();
      charge.add(kChargeBatch * kBytesPerEntry);
    }
    coo.rows.push_back(static_cast<gbtl::IndexType>(i));
    coo.cols.push_back(static_cast<gbtl::IndexType>(j));
    coo.vals.push_back(v);
  }
  if (!have_header) {
    // Infer the shape from the data.
    gbtl::IndexType mr = 0, mc = 0;
    for (std::size_t k = 0; k < coo.nnz(); ++k) {
      mr = std::max(mr, coo.rows[k] + 1);
      mc = std::max(mc, coo.cols[k] + 1);
    }
    coo.nrows = mr;
    coo.ncols = mc;
  }
  return coo;
}

void write_coo_text(const std::string& path, const Coo& coo) {
  std::ofstream out(path);
  if (!out) fail(path, "cannot open file for writing");
  out << "# " << coo.nrows << ' ' << coo.ncols << '\n';
  for (std::size_t k = 0; k < coo.nnz(); ++k) {
    out << coo.rows[k] << ' ' << coo.cols[k] << ' ' << coo.vals[k] << '\n';
  }
}

std::vector<PyList> read_file_as_pylists(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open file");
  std::vector<PyList> lists;
  std::string line, tok;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    PyList toks;
    std::istringstream ls(line);
    while (ls >> tok) toks.push_back(box_token(tok));
    lists.push_back(std::move(toks));
  }
  return lists;
}

Coo pylists_to_coo(const std::vector<PyList>& lists) {
  Coo coo;
  bool have_header = false;
  for (const auto& row : lists) {
    if (row.empty()) continue;
    if (!have_header && row.size() >= 3 &&
        std::holds_alternative<std::string>(*row[0]) &&
        std::get<std::string>(*row[0]) == "#") {
      coo.nrows = static_cast<gbtl::IndexType>(as_int(*row[1], "nrows"));
      coo.ncols = static_cast<gbtl::IndexType>(as_int(*row[2], "ncols"));
      have_header = true;
      continue;
    }
    if (row.size() != 3) {
      throw std::runtime_error("pylists_to_coo: expected 3 tokens per line");
    }
    coo.rows.push_back(
        static_cast<gbtl::IndexType>(as_int(*row[0], "row index")));
    coo.cols.push_back(
        static_cast<gbtl::IndexType>(as_int(*row[1], "col index")));
    coo.vals.push_back(as_double(*row[2], "value"));
  }
  if (!have_header) {
    gbtl::IndexType mr = 0, mc = 0;
    for (std::size_t k = 0; k < coo.nnz(); ++k) {
      mr = std::max(mr, coo.rows[k] + 1);
      mc = std::max(mc, coo.cols[k] + 1);
    }
    coo.nrows = mr;
    coo.ncols = mc;
  }
  return coo;
}

std::vector<PyList> coo_to_pylists(const Coo& coo) {
  std::vector<PyList> lists;
  lists.reserve(coo.nnz());
  for (std::size_t k = 0; k < coo.nnz(); ++k) {
    PyList row;
    row.push_back(
        std::make_unique<PyValue>(static_cast<long long>(coo.rows[k])));
    row.push_back(
        std::make_unique<PyValue>(static_cast<long long>(coo.cols[k])));
    row.push_back(std::make_unique<PyValue>(coo.vals[k]));
    lists.push_back(std::move(row));
  }
  return lists;
}

}  // namespace pygb::io
