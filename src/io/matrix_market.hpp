// io/matrix_market.hpp — Matrix Market (coordinate) reader/writer. Supports
// the `%%MatrixMarket matrix coordinate <real|integer|pattern>
// <general|symmetric>` header subset, 1-based indices, `%` comments.
#pragma once

#include <iosfwd>
#include <string>

#include "io/coo.hpp"

namespace pygb::io {

/// Parse a Matrix Market file. Symmetric files are expanded to general
/// form (both triangles); pattern files get value 1.0 per entry.
Coo read_matrix_market(const std::string& path);
Coo read_matrix_market(std::istream& in, const std::string& what);

/// Write coordinates as a general real Matrix Market file.
void write_matrix_market(const std::string& path, const Coo& coo);
void write_matrix_market(std::ostream& out, const Coo& coo);

}  // namespace pygb::io
