// io/coo.hpp — coordinate-format staging structure shared by all readers
// and writers, plus conversion templates to/from GBTL containers.
#pragma once

#include <string>
#include <vector>

#include "gbtl/matrix.hpp"
#include "gbtl/types.hpp"
#include "gbtl/vector.hpp"

namespace pygb::io {

/// A matrix in coordinate (triplet) form with double-precision staging
/// values; the final container cast happens in to_matrix<T>.
struct Coo {
  gbtl::IndexType nrows = 0;
  gbtl::IndexType ncols = 0;
  gbtl::IndexArray rows;
  gbtl::IndexArray cols;
  std::vector<double> vals;

  std::size_t nnz() const noexcept { return vals.size(); }
};

/// Build a typed GBTL matrix from staged coordinates.
template <typename T>
gbtl::Matrix<T> to_matrix(const Coo& coo) {
  gbtl::Matrix<T> m(coo.nrows, coo.ncols);
  std::vector<T> cast_vals(coo.vals.size());
  for (std::size_t k = 0; k < coo.vals.size(); ++k) {
    cast_vals[k] = static_cast<T>(coo.vals[k]);
  }
  m.build(coo.rows, coo.cols, cast_vals);
  return m;
}

/// Extract a typed GBTL matrix back into staged coordinates.
template <typename T>
Coo from_matrix(const gbtl::Matrix<T>& m) {
  Coo coo;
  coo.nrows = m.nrows();
  coo.ncols = m.ncols();
  std::vector<T> vals;
  m.extractTuples(coo.rows, coo.cols, vals);
  coo.vals.assign(vals.begin(), vals.end());
  return coo;
}

}  // namespace pygb::io
