// pygb/governor.hpp — per-operation resource governance and cooperative
// cancellation for the execution path (docs/ROBUSTNESS.md).
//
// PR 4 bounded JIT *compilation*; the governor bounds *execution*. Three
// services, all off by default and costing two relaxed atomic loads per
// checkpoint when disarmed (the same bargain as pygb::obs and
// pygb::faultinj):
//
//   * Memory budgets — PYGB_MEM_LIMIT_BYTES (or set_mem_limit_bytes /
//     `pygb_cli --mem-limit`). Kernels charge their dominant allocations
//     (staging row tables, SpA accumulators, interpreter staging copies,
//     IO ingest buffers) through mem_reserve() BEFORE allocating; a charge
//     that would cross the limit raises ResourceExhausted instead of
//     letting the process die on bad_alloc / the OOM killer.
//   * Deadlines — PYGB_OP_TIMEOUT_MS (or set_op_timeout_ms /
//     `--op-timeout`). An OpScope opened at kernel dispatch arms an
//     absolute steady-clock deadline; checkpoints sprinkled through the
//     execution path (pool chunk boundaries, kernel row loops, algorithm
//     iteration boundaries) raise DeadlineExceeded once it passes.
//   * Cancellation — cancel() marks the in-flight operation (or, when
//     idle, the next one) for abort at its next checkpoint, raising
//     Cancelled. Exactly one operation consumes each cancel request.
//
// Strong guarantee: checkpoints and charges live ONLY in compute phases —
// never in the sequential write/commit phase that publishes results — so
// an aborted operation leaves its output containers untouched.
//
// This is a LEAF module (depends only on pygb::faultinj): the gbtl worker
// pool and the io readers link it without pulling in libpygb. JIT modules
// reach it through the PoolApi v2 function table (gbtl/detail/pool.hpp).
//
// Error taxonomy (unified with PR 4's transient/permanent classification):
// ResourceExhausted and DeadlineExceeded are TRANSIENT — the environment
// (budget, machine load) rejected this run; the same request can succeed
// later with a bigger budget or a quieter machine. Cancelled is PERMANENT
// for the request — a caller explicitly asked for this work to stop.
//
// Deadline scope note: with concurrent host threads dispatching at once,
// the deadline and op-name slots are process-global — the outermost scope
// wins and concurrent ops share the earliest armed deadline. That is the
// intended semantic for a per-request cap on a serving path; per-thread
// budgets would need a token parameter threaded through every kernel ABI.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "pygb/faultinj.hpp"

namespace pygb::governor {

/// Base of the governor taxonomy. `transient()` mirrors the PR 4
/// classification: true = environmental, a retry may succeed (breaker
/// semantics would count, not condemn); false = deterministic for this
/// request.
class GovernorError : public std::runtime_error {
 public:
  GovernorError(const std::string& msg, bool transient)
      : std::runtime_error(msg), transient_(transient) {}
  bool transient() const noexcept { return transient_; }

 private:
  bool transient_;
};

/// A memory charge would cross PYGB_MEM_LIMIT_BYTES. Raised BEFORE the
/// allocation; transient (a bigger budget admits the same request).
class ResourceExhausted : public GovernorError {
 public:
  explicit ResourceExhausted(const std::string& msg)
      : GovernorError(msg, /*transient=*/true) {}
};

/// The operation outlived PYGB_OP_TIMEOUT_MS. Transient (machine load).
class DeadlineExceeded : public GovernorError {
 public:
  explicit DeadlineExceeded(const std::string& msg)
      : GovernorError(msg, /*transient=*/true) {}
};

/// The operation was cancelled via cancel(). Permanent for this request.
class Cancelled : public GovernorError {
 public:
  explicit Cancelled(const std::string& msg)
      : GovernorError(msg, /*transient=*/false) {}
};

/// Monotonic/gauge view of the governor, mirrored into pygb::obs counters
/// (ops_cancelled, ops_deadline_exceeded, mem_budget_rejections,
/// mem_peak_bytes) when libpygb is linked.
struct Stats {
  std::uint64_t ops_cancelled = 0;
  std::uint64_t ops_deadline_exceeded = 0;
  std::uint64_t mem_budget_rejections = 0;
  std::uint64_t mem_peak_bytes = 0;     ///< high-water mark of charges
  std::uint64_t mem_current_bytes = 0;  ///< live charges (gauge)
  std::uint64_t checkpoints = 0;        ///< slow-path checkpoint visits
};

namespace detail {

enum ArmBit : std::uint32_t {
  kDeadlineArmed = 1u << 0,
  kCancelArmed = 1u << 1,
};

/// Nonzero while a deadline or cancel request can fire. Checked (relaxed)
/// on the checkpoint fast path.
extern std::atomic<std::uint32_t> g_armed;

/// Slow path: fault-injection site, cancel check, deadline check.
/// Throws Cancelled / DeadlineExceeded / ResourceExhausted.
void checkpoint_slow();

}  // namespace detail

// -- configuration ---------------------------------------------------------

/// 0 = unlimited. Applies to the sum of live mem_reserve() charges.
void set_mem_limit_bytes(std::uint64_t bytes) noexcept;
std::uint64_t mem_limit_bytes() noexcept;

/// 0 = no deadline. Armed per-operation at OpScope entry.
void set_op_timeout_ms(std::uint64_t ms) noexcept;
std::uint64_t op_timeout_ms() noexcept;

/// Request cancellation of the in-flight operation (or, when idle, the
/// next one). Exactly one operation consumes the request.
void cancel() noexcept;
bool cancel_requested() noexcept;

/// Read PYGB_MEM_LIMIT_BYTES / PYGB_OP_TIMEOUT_MS. Runs once automatically
/// at static-init time (same pattern as pygb::faultinj).
void init_from_env();

// -- memory budget ---------------------------------------------------------

/// Charge `bytes` against the budget. Throws ResourceExhausted (and does
/// NOT retain the charge) if the limit would be crossed. Tracking is
/// always on, so mem_peak_bytes is meaningful even without a limit.
void mem_reserve(std::uint64_t bytes);

/// Return a previous charge. Clamped at zero: a release that was never
/// matched by a successful reserve (possible around PoolApi injection
/// races in JIT modules) must not wrap the gauge.
void mem_release(std::uint64_t bytes) noexcept;

/// RAII charge for host-side code (the gbtl headers use the PoolApi-routed
/// gbtl::detail::ScopedMemCharge instead so JIT modules resolve it too).
class MemCharge {
 public:
  MemCharge() = default;
  explicit MemCharge(std::uint64_t bytes) { add(bytes); }
  MemCharge(const MemCharge&) = delete;
  MemCharge& operator=(const MemCharge&) = delete;
  MemCharge(MemCharge&& other) noexcept : bytes_(other.bytes_) {
    other.bytes_ = 0;
  }
  ~MemCharge() { release(); }

  /// Grow the charge; throws ResourceExhausted without retaining `bytes`.
  void add(std::uint64_t bytes) {
    mem_reserve(bytes);
    bytes_ += bytes;
  }
  void release() noexcept {
    if (bytes_ != 0) {
      mem_release(bytes_);
      bytes_ = 0;
    }
  }
  std::uint64_t held() const noexcept { return bytes_; }

 private:
  std::uint64_t bytes_ = 0;
};

// -- checkpoints ------------------------------------------------------------

/// The cooperative cancellation point. Disarmed cost: two relaxed loads
/// and a branch. Armed: visits the `governor` fault-injection site, then
/// the cancel flag, then the deadline clock.
inline void checkpoint() {
  if (detail::g_armed.load(std::memory_order_relaxed) == 0 &&
      !faultinj::armed()) {
    return;
  }
  detail::checkpoint_slow();
}

/// Scoped per-operation governance, opened at kernel dispatch
/// (pygb/eval.cpp) around kernel EXECUTION — JIT resolution/compilation
/// keeps its own PR 4 deadline. Arms the deadline and latches the op name
/// for error messages; nested scopes (algorithms dispatching sub-ops)
/// attach to the outermost operation. The outermost destructor disarms
/// everything, so an aborted operation never poisons the next one.
class OpScope {
 public:
  explicit OpScope(const char* op_name);
  ~OpScope();
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

 private:
  bool active_ = false;
};

// -- introspection ----------------------------------------------------------

Stats stats() noexcept;
void reset_stats() noexcept;

/// Name of the op governed by the current outermost OpScope ("" if idle).
std::string current_op();

/// ASYNC-SIGNAL-SAFE twin of current_op() for the crash handler: copies
/// the op name into `buf` (always NUL-terminated) without locking or
/// allocating. A torn read during a concurrent OpScope transition yields a
/// truncated or mixed name — acceptable in a crash report, where the
/// alternative (taking g_name_mu in a signal context) can deadlock.
void current_op_unsafe(char* buf, std::size_t n) noexcept;

}  // namespace pygb::governor
