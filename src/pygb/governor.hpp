// pygb/governor.hpp — per-operation resource governance and cooperative
// cancellation for the execution path (docs/ROBUSTNESS.md).
//
// PR 4 bounded JIT *compilation*; the governor bounds *execution*. Three
// services, all off by default and costing a TLS read plus two relaxed
// atomic loads per checkpoint when disarmed (the same bargain as pygb::obs
// and pygb::faultinj):
//
//   * Memory budgets — PYGB_MEM_LIMIT_BYTES (or set_mem_limit_bytes /
//     `pygb_cli --mem-limit`). Kernels charge their dominant allocations
//     (staging row tables, SpA accumulators, interpreter staging copies,
//     IO ingest buffers) through mem_reserve() BEFORE allocating; a charge
//     that would cross the limit raises ResourceExhausted instead of
//     letting the process die on bad_alloc / the OOM killer.
//   * Deadlines — PYGB_OP_TIMEOUT_MS (or set_op_timeout_ms /
//     `--op-timeout`). An OpScope opened at kernel dispatch arms an
//     absolute steady-clock deadline; checkpoints sprinkled through the
//     execution path (pool chunk boundaries, kernel row loops, algorithm
//     iteration boundaries) raise DeadlineExceeded once it passes.
//   * Cancellation — cancel() marks the in-flight operation (or, when
//     idle, the next one) for abort at its next checkpoint, raising
//     Cancelled. Exactly one operation consumes each cancel request.
//
// Strong guarantee: checkpoints and charges live ONLY in compute phases —
// never in the sequential write/commit phase that publishes results — so
// an aborted operation leaves its output containers untouched.
//
// PER-REQUEST CONTEXTS (PR 9, the pygb_serve spine): every slot above
// lives in a RequestContext. The process has one built-in DEFAULT context
// — all the historical free functions operate on it, so a single-tenant
// process behaves exactly as before — and a serving path may stack-allocate
// one context per request, bind it to the executing thread with ThreadBind,
// and get an isolated budget/deadline/cancel scope: one tenant's OOM or
// disconnect cannot abort another tenant's op. The binding is thread-local
// and travels with work: the gbtl pool captures the submitter's binding at
// parallel_for and installs it on every worker for the job's duration
// (PoolApi v4), so checkpoints and charges inside JIT modules route to the
// right tenant with no kernel-ABI change. A bound thread answers ONLY to
// its own context (isolation); an unbound thread answers to the default
// context (legacy semantics). Memory is charged twice on bound threads —
// against the request's budget AND the default context's process-wide
// gauge — so PYGB_MEM_LIMIT_BYTES still caps the whole process and the
// admission-control high-water mark reads one number.
//
// This is a LEAF module (depends only on pygb::faultinj): the gbtl worker
// pool and the io readers link it without pulling in libpygb. JIT modules
// reach it through the PoolApi function table (gbtl/detail/pool.hpp).
//
// Error taxonomy (unified with PR 4's transient/permanent classification):
// ResourceExhausted and DeadlineExceeded are TRANSIENT — the environment
// (budget, machine load) rejected this run; the same request can succeed
// later with a bigger budget or a quieter machine. Cancelled is PERMANENT
// for the request — a caller explicitly asked for this work to stop.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

#include "pygb/faultinj.hpp"

namespace pygb::governor {

/// Base of the governor taxonomy. `transient()` mirrors the PR 4
/// classification: true = environmental, a retry may succeed (breaker
/// semantics would count, not condemn); false = deterministic for this
/// request.
class GovernorError : public std::runtime_error {
 public:
  GovernorError(const std::string& msg, bool transient)
      : std::runtime_error(msg), transient_(transient) {}
  bool transient() const noexcept { return transient_; }

 private:
  bool transient_;
};

/// A memory charge would cross PYGB_MEM_LIMIT_BYTES (or the bound
/// request's budget). Raised BEFORE the allocation; transient (a bigger
/// budget admits the same request).
class ResourceExhausted : public GovernorError {
 public:
  explicit ResourceExhausted(const std::string& msg)
      : GovernorError(msg, /*transient=*/true) {}
};

/// The operation outlived PYGB_OP_TIMEOUT_MS (or the bound request's
/// deadline). Transient (machine load).
class DeadlineExceeded : public GovernorError {
 public:
  explicit DeadlineExceeded(const std::string& msg)
      : GovernorError(msg, /*transient=*/true) {}
};

/// The operation was cancelled via cancel(). Permanent for this request.
class Cancelled : public GovernorError {
 public:
  explicit Cancelled(const std::string& msg)
      : GovernorError(msg, /*transient=*/false) {}
};

/// Monotonic/gauge view of the governor, mirrored into pygb::obs counters
/// (ops_cancelled, ops_deadline_exceeded, mem_budget_rejections,
/// mem_peak_bytes) when libpygb is linked. Event counters aggregate over
/// every context; the memory gauge/peak are the DEFAULT context's (i.e.
/// process-wide — request charges land there too).
struct Stats {
  std::uint64_t ops_cancelled = 0;
  std::uint64_t ops_deadline_exceeded = 0;
  std::uint64_t mem_budget_rejections = 0;
  std::uint64_t mem_peak_bytes = 0;     ///< high-water mark of charges
  std::uint64_t mem_current_bytes = 0;  ///< live charges (gauge)
  std::uint64_t checkpoints = 0;        ///< slow-path checkpoint visits
};

namespace detail {

enum ArmBit : std::uint32_t {
  kDeadlineArmed = 1u << 0,
  kCancelArmed = 1u << 1,
};

/// Slow path for the context the calling thread answers to: fault-injection
/// site, cancel check, deadline check. Throws Cancelled / DeadlineExceeded
/// / ResourceExhausted.
void checkpoint_slow();

}  // namespace detail

// -- per-request contexts ---------------------------------------------------

/// One tenant's governance scope: its own budget, deadline, cancel flag,
/// op bookkeeping, and memory gauge. A context serves ONE request (or, for
/// the built-in default instance, the whole process); it is not reusable
/// state — allocate a fresh one per request and keep it alive until every
/// thread bound to it has unbound (ThreadBind is strictly scoped, and the
/// pool unbinds workers before parallel_for returns, so stack lifetime
/// works).
///
/// Thread-safety: every member is individually atomic; configuration is
/// normally written before the context is bound, but cancel() and
/// set_request_deadline_ms() are safe from any thread at any time — that
/// is how a server's connection monitor kills a request mid-flight.
class RequestContext {
 public:
  RequestContext() = default;
  RequestContext(const RequestContext&) = delete;
  RequestContext& operator=(const RequestContext&) = delete;

  // -- configuration (usually set before binding) --
  void set_mem_limit_bytes(std::uint64_t bytes) noexcept {
    mem_limit_.store(bytes, std::memory_order_relaxed);
  }
  std::uint64_t mem_limit_bytes() const noexcept {
    return mem_limit_.load(std::memory_order_relaxed);
  }
  /// Per-operation timeout within this context; 0 falls back to the
  /// default context's timeout (so PYGB_OP_TIMEOUT_MS is a server-wide
  /// default a request can tighten but not escape... it CAN widen it: a
  /// nonzero per-request value wins outright, trusted callers only).
  void set_op_timeout_ms(std::uint64_t ms) noexcept {
    timeout_ms_.store(ms, std::memory_order_relaxed);
  }
  std::uint64_t op_timeout_ms() const noexcept {
    return timeout_ms_.load(std::memory_order_relaxed);
  }

  /// Arm a whole-request wall-clock cap, `ms` from now. Every op inside
  /// the request shares it (each OpScope arms min(op deadline, request
  /// deadline)), and checkpoints between ops honor it too. 0 disarms.
  void set_request_deadline_ms(std::uint64_t ms) noexcept;

  /// Milliseconds left on the armed whole-request deadline: 0 when none is
  /// armed, else at least 1 (an expired-but-armed deadline reports 1, so
  /// callers bounding slow work — the JIT clamps compile timeouts to this —
  /// can distinguish "unbounded" from "no budget left").
  std::uint64_t request_deadline_remaining_ms() const noexcept;

  /// Sticky cancellation of this context: every subsequent checkpoint on a
  /// bound thread throws Cancelled until the context dies. This is the
  /// client-disconnect path — unlike the default context's one-shot
  /// cancel(), it is NOT consumed by one op; a cancelled request must not
  /// run its next op either.
  void cancel() noexcept;
  bool cancel_requested() const noexcept {
    return sticky_cancel_.load(std::memory_order_relaxed) ||
           oneshot_cancel_.load(std::memory_order_relaxed);
  }

  /// Human label for error messages and spans ("req-42"). Set before
  /// binding; bounded copy, truncated silently.
  void set_label(const char* label) noexcept;

  // -- memory gauge --
  std::uint64_t mem_current_bytes() const noexcept {
    return mem_used_.load(std::memory_order_relaxed);
  }
  std::uint64_t mem_peak_bytes() const noexcept {
    return mem_peak_.load(std::memory_order_relaxed);
  }

  /// Charge `bytes` against THIS context's budget (throws
  /// ResourceExhausted without retaining the charge) — prefer the free
  /// mem_reserve(), which also maintains the process-wide gauge.
  void charge(std::uint64_t bytes);
  void uncharge(std::uint64_t bytes) noexcept;

  /// Nonzero while a deadline or cancel can fire here. Checkpoint fast
  /// path; relaxed.
  std::uint32_t armed_relaxed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

 private:
  friend void detail::checkpoint_slow();
  friend class OpScope;
  friend std::string current_op();
  friend void current_op_unsafe(char*, std::size_t) noexcept;
  friend void cancel() noexcept;
  friend bool cancel_requested() noexcept;
  friend void reset_stats() noexcept;

  std::string op_label() const;
  std::uint64_t op_elapsed_ms() const noexcept;

  // Configuration.
  std::atomic<std::uint64_t> mem_limit_{0};   // 0 = unlimited
  std::atomic<std::uint64_t> timeout_ms_{0};  // 0 = inherit default ctx
  std::atomic<std::uint64_t> request_deadline_ns_{0};  // absolute; 0 = none
  std::atomic<bool> oneshot_cancel_{false};  // legacy cancel() semantics
  std::atomic<bool> sticky_cancel_{false};   // RequestContext::cancel()
  std::atomic<bool> sticky_counted_{false};  // stats once per request

  // Memory gauge (always on; peak is meaningful without a limit).
  std::atomic<std::uint64_t> mem_used_{0};
  std::atomic<std::uint64_t> mem_peak_{0};

  // Per-operation state, owned by this context's outermost OpScope.
  std::atomic<std::uint32_t> armed_{0};
  std::atomic<int> depth_{0};
  std::atomic<std::uint64_t> deadline_ns_{0};  // absolute steady-clock; 0=off
  std::atomic<std::uint64_t> op_start_ns_{0};
  // First-abort latch: with 4 pool workers all tripping the same deadline,
  // only the winner counts the event (one op, one increment); the rest
  // still throw so the whole operation unwinds fast.
  std::atomic<bool> op_aborted_{false};

  // Cold: labels for error messages. Fixed buffers under a mutex so the
  // checkpoint slow path never allocates while reading them.
  mutable std::mutex name_mu_;
  char op_name_[128] = {0};
  char label_[64] = {0};
};

namespace detail {
/// The context unbound threads answer to; all the free functions below
/// operate on it. Exposed as an object (not an accessor) so the inline
/// checkpoint() fast path can read its armed word directly.
extern RequestContext g_default_ctx;
/// The calling thread's bound context; nullptr = default. Managed
/// exclusively by ThreadBind.
extern thread_local RequestContext* t_bound;
}  // namespace detail

/// The process-wide context behind the legacy free-function API.
inline RequestContext& default_context() noexcept {
  return detail::g_default_ctx;
}

/// The calling thread's bound context, or nullptr when unbound. The pool
/// captures this at parallel_for submission and re-binds it on workers.
inline RequestContext* bound_context() noexcept { return detail::t_bound; }

/// The context the calling thread answers to (bound or default).
inline RequestContext& current_context() noexcept {
  RequestContext* b = detail::t_bound;
  return b != nullptr ? *b : detail::g_default_ctx;
}

/// Scoped thread binding: checkpoints, OpScopes, and memory charges on
/// this thread route to `ctx` until destruction (nullptr re-binds the
/// default context). Restores the previous binding, so nesting works.
class ThreadBind {
 public:
  explicit ThreadBind(RequestContext* ctx) noexcept : prev_(detail::t_bound) {
    detail::t_bound = ctx;
  }
  ~ThreadBind() { detail::t_bound = prev_; }
  ThreadBind(const ThreadBind&) = delete;
  ThreadBind& operator=(const ThreadBind&) = delete;

 private:
  RequestContext* prev_;
};

// -- configuration (default context) ----------------------------------------

/// 0 = unlimited. Applies to the sum of live mem_reserve() charges.
void set_mem_limit_bytes(std::uint64_t bytes) noexcept;
std::uint64_t mem_limit_bytes() noexcept;

/// 0 = no deadline. Armed per-operation at OpScope entry.
void set_op_timeout_ms(std::uint64_t ms) noexcept;
std::uint64_t op_timeout_ms() noexcept;

/// Request cancellation of the default context's in-flight operation (or,
/// when idle, the next one). Exactly one operation consumes the request.
/// Does NOT touch bound request contexts — use RequestContext::cancel()
/// to kill a specific tenant.
void cancel() noexcept;
bool cancel_requested() noexcept;

/// Read PYGB_MEM_LIMIT_BYTES / PYGB_OP_TIMEOUT_MS. Runs once automatically
/// at static-init time (same pattern as pygb::faultinj).
void init_from_env();

// -- memory budget ----------------------------------------------------------

/// Charge `bytes` against the budget: the bound context's (if any), then
/// the default context's process-wide gauge. Throws ResourceExhausted (and
/// does NOT retain any part of the charge) if either limit would be
/// crossed. Tracking is always on, so mem_peak_bytes is meaningful even
/// without a limit.
void mem_reserve(std::uint64_t bytes);

/// Return a previous charge (to both gauges, mirroring mem_reserve).
/// Clamped at zero: a release that was never matched by a successful
/// reserve (possible around PoolApi injection races in JIT modules) must
/// not wrap the gauge.
void mem_release(std::uint64_t bytes) noexcept;

/// RAII charge for host-side code (the gbtl headers use the PoolApi-routed
/// gbtl::detail::ScopedMemCharge instead so JIT modules resolve it too).
class MemCharge {
 public:
  MemCharge() = default;
  explicit MemCharge(std::uint64_t bytes) { add(bytes); }
  MemCharge(const MemCharge&) = delete;
  MemCharge& operator=(const MemCharge&) = delete;
  MemCharge(MemCharge&& other) noexcept : bytes_(other.bytes_) {
    other.bytes_ = 0;
  }
  ~MemCharge() { release(); }

  /// Grow the charge; throws ResourceExhausted without retaining `bytes`.
  void add(std::uint64_t bytes) {
    mem_reserve(bytes);
    bytes_ += bytes;
  }
  void release() noexcept {
    if (bytes_ != 0) {
      mem_release(bytes_);
      bytes_ = 0;
    }
  }
  std::uint64_t held() const noexcept { return bytes_; }

 private:
  std::uint64_t bytes_ = 0;
};

// -- checkpoints ------------------------------------------------------------

/// The cooperative cancellation point. Disarmed cost: a TLS read, two
/// relaxed loads, and a branch. Armed: visits the `governor`
/// fault-injection site, then the current context's cancel flags, then its
/// deadline clock. A bound thread answers ONLY to its own context — that
/// is the isolation guarantee.
inline void checkpoint() {
  if (current_context().armed_relaxed() == 0 && !faultinj::armed()) {
    return;
  }
  detail::checkpoint_slow();
}

/// Scoped per-operation governance, opened at kernel dispatch
/// (pygb/eval.cpp) around kernel EXECUTION — JIT resolution/compilation
/// keeps its own PR 4 deadline. Arms the deadline and latches the op name
/// on the CURRENT context; nested scopes (algorithms dispatching sub-ops)
/// attach to the outermost operation. The outermost destructor disarms the
/// per-op state, so an aborted operation never poisons the next one —
/// while a request-level deadline or sticky cancel stays armed across ops.
class OpScope {
 public:
  explicit OpScope(const char* op_name);
  ~OpScope();
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

 private:
  RequestContext* ctx_ = nullptr;  ///< non-null while engaged
};

// -- introspection ----------------------------------------------------------

Stats stats() noexcept;
void reset_stats() noexcept;

/// Name of the op governed by the default context's current outermost
/// OpScope ("" if idle).
std::string current_op();

/// ASYNC-SIGNAL-SAFE twin of current_op() for the crash handler: copies
/// the op name into `buf` (always NUL-terminated) without locking or
/// allocating. A torn read during a concurrent OpScope transition yields a
/// truncated or mixed name — acceptable in a crash report, where the
/// alternative (taking the name mutex in a signal context) can deadlock.
/// Reads the CALLING thread's context, so a crash on a serving thread
/// attributes to that tenant's op.
void current_op_unsafe(char* buf, std::size_t n) noexcept;

}  // namespace pygb::governor
