// pygb/userops.hpp — user-defined operators (§VIII future work,
// implemented): the paper plans "user-defined operators for use in the
// PyGB operations ... implementing this feature requires either using an
// intermediate language such as Cython or forcing the user to write code
// directly in C++". This library takes the C++-snippet route and feeds it
// through the existing JIT: the operator body is a C++ expression over the
// operand names, compiled into the kernel module like any other operator.
//
//   UserBinaryOp saturating_add("sat_add",
//                               "a + b > 100 ? C(100) : C(a + b)");
//   c[None] = ewise_add(x, y, saturating_add);
//
// Inside the expression: `a` and `b` are the operands (types A and B for
// binary, `a` only for unary) and `C` names the output element type. The
// snippet is compiled as trusted code by the JIT backend; the static and
// interpreted backends cannot serve user ops and report NoKernelError.
#pragma once

#include <cctype>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace pygb {

namespace detail {

/// Stable FNV-1a hash of an operator body — part of the dispatch key so
/// that editing a user op's expression produces a fresh module instead of
/// reusing a stale cached one.
inline std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Operator names become part of generated struct identifiers.
inline void validate_identifier(const std::string& name) {
  if (name.empty() || (!std::isalpha(static_cast<unsigned char>(name[0])) &&
                       name[0] != '_')) {
    throw std::invalid_argument("pygb: user op name must be an identifier");
  }
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      throw std::invalid_argument(
          "pygb: user op name must be an identifier");
    }
  }
}

}  // namespace detail

/// A named binary operator whose body is a C++ expression over `a`, `b`
/// (operand values) and `C` (the output element type).
class UserBinaryOp {
 public:
  UserBinaryOp(std::string name, std::string cpp_expr)
      : name_(std::move(name)), expr_(std::move(cpp_expr)) {
    detail::validate_identifier(name_);
    if (expr_.empty()) {
      throw std::invalid_argument("pygb: user op expression is empty");
    }
  }

  const std::string& name() const noexcept { return name_; }
  const std::string& expr() const noexcept { return expr_; }

  /// Dispatch-key fragment: name + body hash, so the same name with an
  /// edited expression compiles a fresh module.
  std::string key() const {
    return "user:" + name_ + ":" + std::to_string(detail::fnv1a(expr_));
  }

 private:
  std::string name_;
  std::string expr_;
};

/// A named unary operator whose body is a C++ expression over `a` and `C`.
class UserUnaryOp {
 public:
  UserUnaryOp(std::string name, std::string cpp_expr)
      : name_(std::move(name)), expr_(std::move(cpp_expr)) {
    detail::validate_identifier(name_);
    if (expr_.empty()) {
      throw std::invalid_argument("pygb: user op expression is empty");
    }
  }

  const std::string& name() const noexcept { return name_; }
  const std::string& expr() const noexcept { return expr_; }
  std::string key() const {
    return "user:" + name_ + ":" + std::to_string(detail::fnv1a(expr_));
  }

 private:
  std::string name_;
  std::string expr_;
};

}  // namespace pygb
