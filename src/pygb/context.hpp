// pygb/context.hpp — the `with` block of PyGB: a thread-local stack of
// operator objects from which operations infer their semiring, monoid,
// binary/unary op, accumulator, and replace flag. An operation uses the
// entry with the highest precedence, i.e. the most deeply nested enclosing
// block with a matching operator kind — exactly the search the paper
// describes for `__add__` ("finds the BinaryOp, Monoid or Semiring object
// nearest to its scope").
//
// C++ has no `with` statement; the RAII guard `With` pushes its arguments
// for the lifetime of a scope:
//
//   {
//     pygb::With ctx(pygb::MinPlusSemiring(), pygb::Accumulator("Min"));
//     path[pygb::None] += matmul(graph.T(), path);
//   }  // operators popped here
#pragma once

#include <optional>
#include <variant>
#include <vector>

#include "gbtl/detail/backend.hpp"
#include "pygb/operators.hpp"

namespace pygb {

/// Token enabling replace semantics for operations in scope
/// (`with gb.Replace:` in PyGB).
struct ReplaceToken {};
inline constexpr ReplaceToken Replace{};

/// Token restoring merge semantics in a nested scope.
struct MergeToken {};
inline constexpr MergeToken Merge{};

/// Per-op kernel-backend hint (docs/BACKENDS.md): operations inside the
/// scope dispatch on this backend instead of the PYGB_BACKEND default.
///
///   pygb::With ctx(pygb::BackendHint(gbtl::detail::Backend::kSimd));
class BackendHint {
 public:
  explicit BackendHint(gbtl::detail::Backend b) : backend_(b) {}
  gbtl::detail::Backend backend() const { return backend_; }

 private:
  gbtl::detail::Backend backend_;
};

namespace detail {

using ContextEntry =
    std::variant<BinaryOp, UnaryOp, Monoid, Semiring, Accumulator,
                 ReplaceToken, MergeToken, BackendHint>;

/// The thread-local operator stack. Exposed for white-box tests; user code
/// interacts through `With` and the resolution helpers below.
std::vector<ContextEntry>& context_stack();

}  // namespace detail

/// RAII guard: pushes every argument onto the operator stack in order,
/// pops them on destruction. Non-copyable, non-movable — tie it to a scope.
class With {
 public:
  template <typename... Entries>
  explicit With(Entries&&... entries) : pushed_(sizeof...(entries)) {
    (detail::context_stack().emplace_back(std::forward<Entries>(entries)),
     ...);
  }
  ~With() {
    auto& stack = detail::context_stack();
    for (std::size_t k = 0; k < pushed_; ++k) stack.pop_back();
  }
  With(const With&) = delete;
  With& operator=(const With&) = delete;

 private:
  std::size_t pushed_;
};

// ---------------------------------------------------------------------------
// Resolution. Each returns the innermost matching entry, or the documented
// default when the stack holds none (GraphBLAS-conventional defaults so a
// bare quickstart works without any context).
// ---------------------------------------------------------------------------

/// For mxm/mxv/vxm: innermost Semiring; a Monoid also satisfies the search
/// (paired with its own op as multiply is NOT implied — instead the monoid's
/// op is used as ⊗ with the canonical add, which is rarely wanted), so only
/// Semiring entries match. Default: ArithmeticSemiring.
Semiring current_semiring();

/// For eWiseAdd (`A + B`): innermost BinaryOp, Monoid (its op), or Semiring
/// (its add-monoid op). Default: Plus.
BinaryOp current_add_op();

/// For eWiseMult (`A * B`): innermost BinaryOp, Monoid (its op), or
/// Semiring (its ⊗ op). Default: Times.
BinaryOp current_mult_op();

/// For reduce: innermost Monoid or Semiring (its add monoid). A bare
/// BinaryOp with a canonical identity also matches. Default: PlusMonoid.
Monoid current_monoid();

/// For apply: innermost UnaryOp. Default: Identity.
UnaryOp current_unary_op();

/// For `+=` accumulation: innermost Accumulator; falls back to the
/// innermost Monoid/Semiring add op (the paper's MinPlusSemiring → Min
/// fallback); nullopt when nothing in scope provides one.
std::optional<Accumulator> current_accumulator();

/// Innermost Replace/Merge token; defaults to merge (false).
bool current_replace();

/// Innermost BackendHint, or nullopt when none is in scope (the dispatcher
/// then uses gbtl::detail::default_backend()).
std::optional<gbtl::detail::Backend> current_backend();

/// Number of entries currently in scope (for tests and diagnostics).
std::size_t context_depth();

}  // namespace pygb
