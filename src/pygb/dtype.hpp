// pygb/dtype.hpp — the DSL's runtime type system: the 11 GraphBLAS plain
// old data types (NumPy dtype analog), C++ usual-arithmetic-conversion
// promotion rules, and a visitor that dispatches a callable over the
// concrete C++ type for a runtime tag.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace pygb {

/// Runtime scalar type tag — one per GraphBLAS POD type. The DSL falls back
/// to Int64/FP64 (Python's native int/float widths) when the user does not
/// specify a dtype at construction.
enum class DType : std::uint8_t {
  kBool,
  kInt8,
  kInt16,
  kInt32,
  kInt64,
  kUInt8,
  kUInt16,
  kUInt32,
  kUInt64,
  kFP32,
  kFP64,
};

inline constexpr int kNumDTypes = 11;

/// C++ spelling of the type (used verbatim by the JIT code generator).
const char* cpp_name(DType dt);

/// Short display name ("bool", "i8", ..., "f64").
const char* display_name(DType dt);

/// Parse a display or C++ name back to a tag; throws on unknown names.
DType parse_dtype(const std::string& name);

std::size_t size_of(DType dt);
bool is_floating(DType dt);
bool is_signed(DType dt);

/// Result type of combining two operands, following C++'s usual arithmetic
/// conversions (std::common_type) — the paper's "upcast ... according to
/// C++'s upcasting rules".
DType promote(DType a, DType b);

/// Marker passed to dtype visitors carrying the concrete type.
template <typename T>
struct TypeTag {
  using type = T;
};

/// Compile-time map from C++ type to runtime tag.
template <typename T>
constexpr DType dtype_of() {
  if constexpr (std::is_same_v<T, bool>) return DType::kBool;
  else if constexpr (std::is_same_v<T, std::int8_t>) return DType::kInt8;
  else if constexpr (std::is_same_v<T, std::int16_t>) return DType::kInt16;
  else if constexpr (std::is_same_v<T, std::int32_t>) return DType::kInt32;
  else if constexpr (std::is_same_v<T, std::int64_t>) return DType::kInt64;
  else if constexpr (std::is_same_v<T, std::uint8_t>) return DType::kUInt8;
  else if constexpr (std::is_same_v<T, std::uint16_t>) return DType::kUInt16;
  else if constexpr (std::is_same_v<T, std::uint32_t>) return DType::kUInt32;
  else if constexpr (std::is_same_v<T, std::uint64_t>) return DType::kUInt64;
  else if constexpr (std::is_same_v<T, float>) return DType::kFP32;
  else if constexpr (std::is_same_v<T, double>) return DType::kFP64;
  else static_assert(!sizeof(T*), "type is not a GraphBLAS POD type");
}

/// Invoke f(TypeTag<T>{}) with the concrete C++ type for the runtime tag.
template <typename F>
decltype(auto) visit_dtype(DType dt, F&& f) {
  switch (dt) {
    case DType::kBool: return f(TypeTag<bool>{});
    case DType::kInt8: return f(TypeTag<std::int8_t>{});
    case DType::kInt16: return f(TypeTag<std::int16_t>{});
    case DType::kInt32: return f(TypeTag<std::int32_t>{});
    case DType::kInt64: return f(TypeTag<std::int64_t>{});
    case DType::kUInt8: return f(TypeTag<std::uint8_t>{});
    case DType::kUInt16: return f(TypeTag<std::uint16_t>{});
    case DType::kUInt32: return f(TypeTag<std::uint32_t>{});
    case DType::kUInt64: return f(TypeTag<std::uint64_t>{});
    case DType::kFP32: return f(TypeTag<float>{});
    case DType::kFP64: return f(TypeTag<double>{});
  }
  throw std::logic_error("visit_dtype: corrupt DType tag");
}

/// A type-erased scalar value paired with its runtime type — the return of
/// reduce-to-scalar and the representation of bound constants. Values are
/// stored exactly (signed / unsigned / floating channel per tag).
class Scalar {
 public:
  Scalar() : dtype_(DType::kFP64) { storage_.f = 0.0; }

  template <typename T>
    requires std::is_arithmetic_v<T>
  explicit Scalar(T v) : dtype_(dtype_of<T>()) {
    if constexpr (std::is_floating_point_v<T>) {
      storage_.f = static_cast<double>(v);
    } else if constexpr (std::is_signed_v<T> || std::is_same_v<T, bool>) {
      storage_.i = static_cast<std::int64_t>(v);
    } else {
      storage_.u = static_cast<std::uint64_t>(v);
    }
  }

  /// Construct with an explicit tag (value converted to that type).
  template <typename T>
    requires std::is_arithmetic_v<T>
  Scalar(T v, DType dt) : dtype_(dt) {
    visit_dtype(dt, [&](auto tag) {
      using U = typename decltype(tag)::type;
      *this = Scalar(static_cast<U>(v));
      dtype_ = dt;
    });
  }

  DType dtype() const noexcept { return dtype_; }

  /// Convert the stored value to T (value-preserving where representable).
  template <typename T>
  T as() const {
    if (is_floating(dtype_)) return static_cast<T>(storage_.f);
    if (is_signed(dtype_) || dtype_ == DType::kBool) {
      return static_cast<T>(storage_.i);
    }
    return static_cast<T>(storage_.u);
  }

  double to_double() const { return as<double>(); }
  std::int64_t to_int64() const { return as<std::int64_t>(); }

  friend bool operator==(const Scalar& a, const Scalar& b) {
    return a.dtype_ == b.dtype_ && a.to_double() == b.to_double() &&
           a.to_int64() == b.to_int64();
  }

  std::string to_string() const;

 private:
  DType dtype_;
  union {
    double f;
    std::int64_t i;
    std::uint64_t u;
  } storage_;
};

}  // namespace pygb
