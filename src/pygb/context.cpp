#include "pygb/context.hpp"

namespace pygb {

namespace detail {

std::vector<ContextEntry>& context_stack() {
  thread_local std::vector<ContextEntry> stack;
  return stack;
}

}  // namespace detail

namespace {

/// Search the stack innermost-first, returning the first entry `f` accepts.
template <typename T, typename F>
std::optional<T> find_innermost(F&& f) {
  const auto& stack = detail::context_stack();
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (auto r = f(*it)) return r;
  }
  return std::nullopt;
}

}  // namespace

Semiring current_semiring() {
  auto r = find_innermost<Semiring>(
      [](const detail::ContextEntry& e) -> std::optional<Semiring> {
        if (const auto* sr = std::get_if<Semiring>(&e)) return *sr;
        return std::nullopt;
      });
  return r.value_or(ArithmeticSemiring());
}

BinaryOp current_add_op() {
  auto r = find_innermost<BinaryOp>(
      [](const detail::ContextEntry& e) -> std::optional<BinaryOp> {
        if (const auto* op = std::get_if<BinaryOp>(&e)) return *op;
        if (const auto* m = std::get_if<Monoid>(&e)) return m->op();
        if (const auto* sr = std::get_if<Semiring>(&e)) return sr->add().op();
        return std::nullopt;
      });
  return r.value_or(BinaryOp("Plus"));
}

BinaryOp current_mult_op() {
  auto r = find_innermost<BinaryOp>(
      [](const detail::ContextEntry& e) -> std::optional<BinaryOp> {
        if (const auto* op = std::get_if<BinaryOp>(&e)) return *op;
        if (const auto* m = std::get_if<Monoid>(&e)) return m->op();
        if (const auto* sr = std::get_if<Semiring>(&e)) return sr->mult();
        return std::nullopt;
      });
  return r.value_or(BinaryOp("Times"));
}

Monoid current_monoid() {
  auto r = find_innermost<Monoid>(
      [](const detail::ContextEntry& e) -> std::optional<Monoid> {
        if (const auto* m = std::get_if<Monoid>(&e)) return *m;
        if (const auto* sr = std::get_if<Semiring>(&e)) return sr->add();
        if (const auto* op = std::get_if<BinaryOp>(&e)) {
          // A bare BinaryOp matches when it has a canonical identity.
          try {
            return Monoid(*op);
          } catch (const std::invalid_argument&) {
            return std::nullopt;
          }
        }
        return std::nullopt;
      });
  return r.value_or(PlusMonoid());
}

UnaryOp current_unary_op() {
  auto r = find_innermost<UnaryOp>(
      [](const detail::ContextEntry& e) -> std::optional<UnaryOp> {
        if (const auto* f = std::get_if<UnaryOp>(&e)) return *f;
        return std::nullopt;
      });
  return r.value_or(UnaryOp(UnaryOpName::kIdentity));
}

std::optional<Accumulator> current_accumulator() {
  // Two passes: an explicit Accumulator anywhere in scope always beats the
  // monoid/semiring fallback — in Fig. 7's
  // `with gb.Accumulator("Second"), gb.Semiring(...)` both live in the
  // same block and the explicit accumulator must govern `+=`.
  auto explicit_acc = find_innermost<Accumulator>(
      [](const detail::ContextEntry& e) -> std::optional<Accumulator> {
        if (const auto* a = std::get_if<Accumulator>(&e)) return *a;
        return std::nullopt;
      });
  if (explicit_acc) return explicit_acc;
  return find_innermost<Accumulator>(
      [](const detail::ContextEntry& e) -> std::optional<Accumulator> {
        if (const auto* m = std::get_if<Monoid>(&e)) {
          return Accumulator(m->op());
        }
        if (const auto* sr = std::get_if<Semiring>(&e)) {
          return Accumulator(sr->add().op());
        }
        return std::nullopt;
      });
}

bool current_replace() {
  auto r = find_innermost<bool>(
      [](const detail::ContextEntry& e) -> std::optional<bool> {
        if (std::holds_alternative<ReplaceToken>(e)) return true;
        if (std::holds_alternative<MergeToken>(e)) return false;
        return std::nullopt;
      });
  return r.value_or(false);
}

std::optional<gbtl::detail::Backend> current_backend() {
  return find_innermost<gbtl::detail::Backend>(
      [](const detail::ContextEntry& e)
          -> std::optional<gbtl::detail::Backend> {
        if (const auto* h = std::get_if<BackendHint>(&e)) return h->backend();
        return std::nullopt;
      });
}

std::size_t context_depth() { return detail::context_stack().size(); }

}  // namespace pygb
