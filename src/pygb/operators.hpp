// pygb/operators.hpp — runtime operator objects, constructed from strings
// exactly as in PyGB Fig. 6:
//
//   auto PlusOp        = BinaryOp("Plus");
//   auto AdditiveInv   = UnaryOp("AdditiveInverse");
//   auto Scale         = UnaryOp("Times", 0.85);          // bind 2nd operand
//   auto PlusMonoid    = Monoid(PlusOp, 0);
//   auto ArithmeticSR  = Semiring(PlusMonoid, TimesOp);
//   auto PlusAccum     = Accumulator(PlusOp);
//
// These are descriptors, not functors: evaluation resolves them to concrete
// GBTL template instantiations through the dispatch/JIT layer.
#pragma once

#include <optional>
#include <string>

#include "pygb/dtype.hpp"

namespace pygb {

/// The 17 binary operators of GBTL's algebra.hpp (Fig. 6).
enum class BinaryOpName : std::uint8_t {
  kLogicalOr,
  kLogicalAnd,
  kLogicalXor,
  kEqual,
  kNotEqual,
  kGreaterThan,
  kLessThan,
  kGreaterEqual,
  kLessEqual,
  kTimes,
  kDiv,
  kPlus,
  kMinus,
  kMin,
  kMax,
  kFirst,
  kSecond,
};

/// The 4 true unary operators of GBTL's algebra.hpp (Fig. 6).
enum class UnaryOpName : std::uint8_t {
  kIdentity,
  kAdditiveInverse,
  kMultiplicativeInverse,
  kLogicalNot,
};

const char* to_string(BinaryOpName op);   ///< GBTL spelling, e.g. "Plus"
const char* to_string(UnaryOpName op);    ///< e.g. "AdditiveInverse"
BinaryOpName parse_binary_op(const std::string& name);
UnaryOpName parse_unary_op(const std::string& name);

/// True if the op always yields a boolean (comparison operators).
bool is_comparison(BinaryOpName op);

// ---------------------------------------------------------------------------

class BinaryOp {
 public:
  explicit BinaryOp(const std::string& name) : name_(parse_binary_op(name)) {}
  explicit BinaryOp(BinaryOpName name) : name_(name) {}

  BinaryOpName name() const noexcept { return name_; }
  std::string gbtl_name() const { return to_string(name_); }

  friend bool operator==(const BinaryOp&, const BinaryOp&) = default;

 private:
  BinaryOpName name_;
};

/// A unary operator: either one of the four true unary ops, or a binary op
/// with a constant bound to one side (PyGB's UnaryOp("Times", 0.85) /
/// GBTL's BinaryOp_Bind2nd).
class UnaryOp {
 public:
  explicit UnaryOp(const std::string& name);
  explicit UnaryOp(UnaryOpName name) : uop_(name) {}
  /// Bind `bound` as the SECOND operand of the named binary op.
  UnaryOp(const std::string& binary_name, Scalar bound);
  UnaryOp(BinaryOpName binary_name, Scalar bound);
  template <typename T>
    requires std::is_arithmetic_v<T>
  UnaryOp(const std::string& binary_name, T bound)
      : UnaryOp(binary_name, Scalar(bound)) {}

  bool is_bound() const noexcept { return bop_.has_value(); }
  UnaryOpName unary_name() const { return uop_.value(); }
  BinaryOpName bound_op() const { return bop_.value(); }
  const Scalar& bound_value() const { return bound_; }

  /// Stable text form used in dispatch keys. Includes the bound value.
  std::string key() const;

  /// Key without the bound value — what determines the compiled kernel
  /// (the constant itself travels as a runtime argument).
  std::string structural_key() const;

 private:
  std::optional<UnaryOpName> uop_;
  std::optional<BinaryOpName> bop_;
  Scalar bound_;
};

/// The identity element of a monoid: either an explicit value or one of the
/// numeric-limits identities ("MinIdentity" = +max for Min, "MaxIdentity" =
/// lowest for Max).
class MonoidIdentity {
 public:
  enum class Kind : std::uint8_t { kValue, kMaxLimit, kLowestLimit };

  MonoidIdentity(Scalar v) : kind_(Kind::kValue), value_(v) {}  // NOLINT
  template <typename T>
    requires std::is_arithmetic_v<T>
  MonoidIdentity(T v) : MonoidIdentity(Scalar(v)) {}  // NOLINT
  explicit MonoidIdentity(const std::string& name);
  static MonoidIdentity max_limit() { return MonoidIdentity(Kind::kMaxLimit); }
  static MonoidIdentity lowest_limit() {
    return MonoidIdentity(Kind::kLowestLimit);
  }

  Kind kind() const noexcept { return kind_; }
  const Scalar& value() const { return value_; }

  /// Stable text form used in dispatch keys ("v0", "v1", "max", "lowest").
  std::string key() const;
  /// C++ expression producing the identity for element type `cpp_type`
  /// (used by the JIT code generator).
  std::string cpp_expr(const std::string& cpp_type) const;

 private:
  explicit MonoidIdentity(Kind k) : kind_(k), value_(0.0) {}
  Kind kind_;
  Scalar value_;
};

/// A commutative binary op + identity. Monoid("Min") and similar infer the
/// canonical identity for ops that form monoids.
class Monoid {
 public:
  explicit Monoid(const std::string& op_name)
      : Monoid(BinaryOp(op_name)) {}
  explicit Monoid(BinaryOp op);
  Monoid(BinaryOp op, MonoidIdentity identity)
      : op_(op), identity_(identity) {}
  Monoid(const std::string& op_name, MonoidIdentity identity)
      : op_(op_name), identity_(identity) {}

  const BinaryOp& op() const noexcept { return op_; }
  const MonoidIdentity& identity() const noexcept { return identity_; }

  std::string key() const;

 private:
  BinaryOp op_;
  MonoidIdentity identity_;
};

/// Add monoid ⊕ + multiply op ⊗.
class Semiring {
 public:
  Semiring(Monoid add, BinaryOp mult) : add_(add), mult_(mult) {}
  Semiring(Monoid add, const std::string& mult) : add_(add), mult_(mult) {}
  Semiring(const std::string& add_op, const std::string& mult)
      : add_(Monoid(add_op)), mult_(mult) {}

  const Monoid& add() const noexcept { return add_; }
  const BinaryOp& mult() const noexcept { return mult_; }

  std::string key() const;

 private:
  Monoid add_;
  BinaryOp mult_;
};

/// A binary op used to combine operation results into existing output
/// values (the (+) of the C API notation).
class Accumulator {
 public:
  explicit Accumulator(const std::string& op_name) : op_(op_name) {}
  explicit Accumulator(BinaryOp op) : op_(op) {}

  const BinaryOp& op() const noexcept { return op_; }

 private:
  BinaryOp op_;
};

// ---------------------------------------------------------------------------
// Predefined operators mirroring PyGB/GBTL's catalog.
// ---------------------------------------------------------------------------

Monoid PlusMonoid();
Monoid TimesMonoid();
Monoid MinMonoid();
Monoid MaxMonoid();
Monoid LogicalOrMonoid();
Monoid LogicalAndMonoid();

Semiring ArithmeticSemiring();   ///< (Plus/0, Times)
Semiring LogicalSemiring();      ///< (LogicalOr/false, LogicalAnd)
Semiring MinPlusSemiring();      ///< (Min/+inf, Plus)
Semiring MaxTimesSemiring();     ///< (Max/lowest, Times)
Semiring MinSelect1stSemiring(); ///< (Min/+inf, First)
Semiring MinSelect2ndSemiring(); ///< (Min/+inf, Second)
Semiring MaxSelect1stSemiring(); ///< (Max/lowest, First)
Semiring MaxSelect2ndSemiring(); ///< (Max/lowest, Second)

}  // namespace pygb
