// pygb/faultinj.hpp — deterministic, env-gated fault injection for the
// Fig. 9 dispatch pipeline's chaos tests.
//
// Production code is littered with failure modes that are nearly
// impossible to reproduce on demand: a hung compiler, a dlopen that fails
// after a successful compile, a cache publish that loses the rename race,
// a worker-pool submit that throws. This module makes every one of them
// reproducible: named injection SITES are threaded through the compiler
// subprocess, the module loader, the cache publish/verify path, and the
// pool submit path, and an environment spec decides — deterministically —
// which sites fire and how.
//
// Spec syntax (PYGB_FAULTS, or pygb_cli --faults):
//
//   PYGB_FAULTS="compile:hang:p=1,dlopen:fail:p=0.5,seed=42"
//
//   rule  := <site> ':' <action> [':' 'p=' <probability>] [':' 'n=' <count>]
//   spec  := rule (',' rule)* [',' 'seed=' <uint64>]
//
//   sites    compile | compile_spawn | dlopen | cache_verify |
//            cache_publish | flock | pool_submit | governor | compiled
//   actions  hang  — the compiler child parks forever (timeout path)
//            fail  — the site reports failure (exit 1 / nullptr / throw)
//            slow  — the compiler child sleeps ~2s before exec'ing
//            corrupt — published bytes are garbled (verify/quarantine path)
//            crash — the compile-service worker _exits abruptly mid-request
//            stale_proto — the worker handshakes with a wrong protocol
//                    version (client must reject + restart, never parse on)
//   p=X      firing probability in [0,1] (default 1). Draws come from a
//            splitmix64 stream seeded by `seed` (default 0) and a global
//            draw counter, so a given (spec, call sequence) always fires
//            the same way — chaos runs are replayable.
//   n=K      fire at most K times, then the rule goes dormant (lets a
//            "transient" failure heal mid-run).
//
// Cost discipline: the hooks are compiled in ALWAYS (chaos coverage must
// test the binary that ships), but when no spec is configured every site
// reduces to one relaxed atomic load and a branch — the same bargain as
// pygb::obs tracing.
//
// Layering: this is a leaf module with no dependencies on the rest of
// pygb, so the gbtl worker pool (which must not link libpygb) can carry
// the pool_submit site too.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace pygb::faultinj {

enum class Action : std::uint8_t {
  kNone,
  kHang,
  kFail,
  kSlow,
  kCorrupt,
  kCrash,       ///< the acting process _exits abruptly (no reply, no cleanup)
  kStaleProto,  ///< speak a wrong protocol version (compile-service handshake)
};

const char* to_string(Action a) noexcept;

/// Canonical site names (call sites pass these literals; the parser
/// accepts any site string so new sites don't need parser changes).
namespace site {
inline constexpr const char* kCompile = "compile";
inline constexpr const char* kCompileSpawn = "compile_spawn";
inline constexpr const char* kDlopen = "dlopen";
inline constexpr const char* kCacheVerify = "cache_verify";
inline constexpr const char* kCachePublish = "cache_publish";
inline constexpr const char* kFlock = "flock";
inline constexpr const char* kPoolSubmit = "pool_submit";
/// Governor checkpoints (gbtl row loops, pool chunk boundaries, algorithm
/// iterations): `fail` = injected budget exhaustion (ResourceExhausted),
/// `hang`/`slow`/`corrupt` = injected deadline fire (DeadlineExceeded).
/// Combine with n=K to fire at exactly the Kth checkpoint.
inline constexpr const char* kGovernor = "governor";
/// Entry guard of every generated JIT kernel (pygb::jit::kernel_entry_guard,
/// reached through the injected PoolApi): any action dereferences null FROM
/// MODULE CODE — a real SIGSEGV inside the dlopen'd mapping, for the
/// crash-attribution pipeline (docs/OBSERVABILITY.md).
inline constexpr const char* kKernelCrash = "kernel_crash";
/// The persistent compile service (pygb/jit/compile_service.hpp), enacted
/// INSIDE the pygb_compiled worker so chaos runs exercise the client's
/// real death/hang/corruption detection and restart machinery:
/// `hang` parks before replying, `crash` _exits mid-request, `corrupt`
/// sends a garbage frame, `stale_proto` handshakes a wrong version,
/// `fail` reports a (fake) compiler failure, `slow` delays the reply ~2s.
inline constexpr const char* kCompiled = "compiled";
}  // namespace site

/// The verdict for one site visit. Evaluates false when nothing fires.
struct Decision {
  Action action = Action::kNone;
  explicit operator bool() const noexcept { return action != Action::kNone; }
};

namespace detail {
extern std::atomic<bool> g_armed;
Decision check_slow(const char* site) noexcept;
}  // namespace detail

/// True when a fault spec is configured (one relaxed load).
inline bool armed() noexcept {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Visit an injection site: returns what (if anything) should fail here.
/// This is THE hook call sites use; disarmed cost is a load + branch.
inline Decision check(const char* site) noexcept {
  if (!armed()) [[likely]] {
    return {};
  }
  return detail::check_slow(site);
}

/// Install a fault spec ("" disarms). Throws std::invalid_argument on a
/// malformed spec — a chaos run with a typo'd spec silently testing
/// nothing is worse than failing fast.
void configure(const std::string& spec);

/// The currently armed spec ("" when disarmed).
std::string current_spec();

/// Read PYGB_FAULTS once (idempotent; a bad env spec aborts with a
/// message rather than throwing from a static initializer).
void init_from_env();

/// Total faults fired since arming (any site). configure() resets it.
std::uint64_t fired_count() noexcept;

/// Bounded, replayable retry jitter (docs/ROBUSTNESS.md): a uniform draw
/// in [0,1) that is a pure function of (stream, index) and the jitter
/// seed. While a fault spec is armed, its `seed=N` anchors the draw — so a
/// chaos run replays its backoff schedule bit-identically; disarmed, the
/// seed is per-process entropy captured once. Callers spread correlated
/// retries (JIT compile backoff, breaker half-open probes) by keying
/// `stream` on what they retry and `index` on the attempt number, so N
/// server threads hammering the same cold key don't wake in lockstep.
double jitter_unit(std::uint64_t stream, std::uint64_t index) noexcept;

}  // namespace pygb::faultinj
