#include "pygb/operators.hpp"

#include <array>
#include <stdexcept>

namespace pygb {

namespace {

constexpr std::array<const char*, 17> kBinaryNames = {
    "LogicalOr", "LogicalAnd",   "LogicalXor", "Equal",     "NotEqual",
    "GreaterThan", "LessThan",   "GreaterEqual", "LessEqual", "Times",
    "Div",       "Plus",         "Minus",      "Min",       "Max",
    "First",     "Second",
};

constexpr std::array<const char*, 4> kUnaryNames = {
    "Identity",
    "AdditiveInverse",
    "MultiplicativeInverse",
    "LogicalNot",
};

}  // namespace

const char* to_string(BinaryOpName op) {
  return kBinaryNames[static_cast<std::size_t>(op)];
}

const char* to_string(UnaryOpName op) {
  return kUnaryNames[static_cast<std::size_t>(op)];
}

BinaryOpName parse_binary_op(const std::string& name) {
  for (std::size_t k = 0; k < kBinaryNames.size(); ++k) {
    if (name == kBinaryNames[k]) return static_cast<BinaryOpName>(k);
  }
  throw std::invalid_argument("pygb: unknown binary operator '" + name + "'");
}

UnaryOpName parse_unary_op(const std::string& name) {
  for (std::size_t k = 0; k < kUnaryNames.size(); ++k) {
    if (name == kUnaryNames[k]) return static_cast<UnaryOpName>(k);
  }
  throw std::invalid_argument("pygb: unknown unary operator '" + name + "'");
}

bool is_comparison(BinaryOpName op) {
  switch (op) {
    case BinaryOpName::kEqual:
    case BinaryOpName::kNotEqual:
    case BinaryOpName::kGreaterThan:
    case BinaryOpName::kLessThan:
    case BinaryOpName::kGreaterEqual:
    case BinaryOpName::kLessEqual:
      return true;
    default:
      return false;
  }
}

UnaryOp::UnaryOp(const std::string& name) : uop_(parse_unary_op(name)) {}

namespace {

/// Bound constants are cast to the output element type inside the kernel,
/// so only two dtype channels (float / integer) need distinct modules.
/// Canonicalizing here keeps the dispatch-key space small.
Scalar canonical_bound(const Scalar& v) {
  if (is_floating(v.dtype())) return Scalar(v.to_double());
  return Scalar(v.to_int64());
}

}  // namespace

UnaryOp::UnaryOp(const std::string& binary_name, Scalar bound)
    : bop_(parse_binary_op(binary_name)), bound_(canonical_bound(bound)) {}

UnaryOp::UnaryOp(BinaryOpName binary_name, Scalar bound)
    : bop_(binary_name), bound_(canonical_bound(bound)) {}

std::string UnaryOp::key() const {
  if (is_bound()) {
    return std::string("bind2nd:") + to_string(*bop_) + ":" +
           bound_.to_string();
  }
  return to_string(*uop_);
}

std::string UnaryOp::structural_key() const {
  if (is_bound()) {
    return std::string("bind2nd:") + to_string(*bop_) + ":" +
           display_name(bound_.dtype());
  }
  return to_string(*uop_);
}

MonoidIdentity::MonoidIdentity(const std::string& name)
    : kind_(Kind::kValue), value_(0.0) {
  // Named identities follow PyGB's "MinIdentity" convention: the identity
  // *of* the named monoid.
  if (name == "MinIdentity") {
    kind_ = Kind::kMaxLimit;
  } else if (name == "MaxIdentity") {
    kind_ = Kind::kLowestLimit;
  } else if (name == "PlusIdentity") {
    value_ = Scalar(0);
  } else if (name == "TimesIdentity") {
    value_ = Scalar(1);
  } else if (name == "LogicalOrIdentity") {
    value_ = Scalar(false);
  } else if (name == "LogicalAndIdentity") {
    value_ = Scalar(true);
  } else {
    throw std::invalid_argument("pygb: unknown identity name '" + name + "'");
  }
}

std::string MonoidIdentity::key() const {
  switch (kind_) {
    case Kind::kMaxLimit:
      return "max";
    case Kind::kLowestLimit:
      return "lowest";
    case Kind::kValue:
      return "v" + value_.to_string();
  }
  throw std::logic_error("MonoidIdentity: corrupt kind");
}

std::string MonoidIdentity::cpp_expr(const std::string& cpp_type) const {
  switch (kind_) {
    case Kind::kMaxLimit:
      return "std::numeric_limits<" + cpp_type + ">::max()";
    case Kind::kLowestLimit:
      return "std::numeric_limits<" + cpp_type + ">::lowest()";
    case Kind::kValue: {
      // Emit through a double or integer literal cast to the element type.
      if (is_floating(value_.dtype())) {
        return "static_cast<" + cpp_type + ">(" +
               std::to_string(value_.to_double()) + ")";
      }
      return "static_cast<" + cpp_type + ">(" +
             std::to_string(value_.to_int64()) + "LL)";
    }
  }
  throw std::logic_error("MonoidIdentity: corrupt kind");
}

Monoid::Monoid(BinaryOp op) : op_(op), identity_(Scalar(0)) {
  switch (op.name()) {
    case BinaryOpName::kPlus:
      identity_ = MonoidIdentity(Scalar(0));
      break;
    case BinaryOpName::kTimes:
      identity_ = MonoidIdentity(Scalar(1));
      break;
    case BinaryOpName::kMin:
      identity_ = MonoidIdentity::max_limit();
      break;
    case BinaryOpName::kMax:
      identity_ = MonoidIdentity::lowest_limit();
      break;
    case BinaryOpName::kLogicalOr:
    case BinaryOpName::kLogicalXor:
      identity_ = MonoidIdentity(Scalar(false));
      break;
    case BinaryOpName::kLogicalAnd:
      identity_ = MonoidIdentity(Scalar(true));
      break;
    default:
      throw std::invalid_argument(
          std::string("pygb: binary op '") + to_string(op.name()) +
          "' has no canonical identity; pass one explicitly");
  }
}

std::string Monoid::key() const {
  return op_.gbtl_name() + ":" + identity_.key();
}

std::string Semiring::key() const {
  return add_.key() + ":" + mult_.gbtl_name();
}

Monoid PlusMonoid() { return Monoid(BinaryOp("Plus")); }
Monoid TimesMonoid() { return Monoid(BinaryOp("Times")); }
Monoid MinMonoid() { return Monoid(BinaryOp("Min")); }
Monoid MaxMonoid() { return Monoid(BinaryOp("Max")); }
Monoid LogicalOrMonoid() { return Monoid(BinaryOp("LogicalOr")); }
Monoid LogicalAndMonoid() { return Monoid(BinaryOp("LogicalAnd")); }

Semiring ArithmeticSemiring() { return {PlusMonoid(), BinaryOp("Times")}; }
Semiring LogicalSemiring() {
  return {LogicalOrMonoid(), BinaryOp("LogicalAnd")};
}
Semiring MinPlusSemiring() { return {MinMonoid(), BinaryOp("Plus")}; }
Semiring MaxTimesSemiring() { return {MaxMonoid(), BinaryOp("Times")}; }
Semiring MinSelect1stSemiring() { return {MinMonoid(), BinaryOp("First")}; }
Semiring MinSelect2ndSemiring() { return {MinMonoid(), BinaryOp("Second")}; }
Semiring MaxSelect1stSemiring() { return {MaxMonoid(), BinaryOp("First")}; }
Semiring MaxSelect2ndSemiring() { return {MaxMonoid(), BinaryOp("Second")}; }

}  // namespace pygb
