// pygb/plan.hpp — the lazy op DAG and its fusion planner (ROADMAP item 1,
// the nonblocking-execution model of the Julia GraphBLAS paper).
//
// Inside a fusion::LazyScope, assignments whose right-hand side is a
// deferred expression RECORD a node instead of dispatching. The
// accumulated graph is executed at a materialization point:
//
//   * any read of an involved container (get / nvals / reduce / ...),
//   * any eager operation (masked assignment, extract, algorithms, ...),
//   * an explicit fusion::wait(),
//   * the LazyScope leaving scope.
//
// At that point the planner walks the recorded program: it eliminates
// dead intermediates (targets overwritten before any read), partitions
// the ops into independent components (no shared containers), fuses each
// component's fusible runs into generalized jit::FusedChainDescs — one
// compiled module per distinct chain shape, cached by the normal registry
// under the "o=dag" module-key axis — and schedules independent
// components concurrently on the worker pool. Every decision (fuse /
// split / materialize / dce) is visible as obs spans, counters, and
// flight-recorder events; fused execution runs through the ordinary
// dispatch path, so governor budgets, deadlines, and checkpoints apply
// exactly as in eager mode.
//
// The DAG is per-thread: a LazyScope defers only ops issued by the thread
// that opened it. Semantics are sequential: flushing executes the
// recorded ops in program order (fusion and parallel component execution
// are pure optimizations — results are element-exact vs eager execution).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "pygb/container.hpp"
#include "pygb/operators.hpp"

namespace pygb {

namespace detail {
struct ExprNode;
}

namespace fusion {

/// Master switch: the PYGB_FUSION environment variable ("off"/"0"/"false"
/// disables, anything else enables; default on), overridable per process.
/// When disabled, LazyScope is inert and every assignment stays eager.
bool enabled();
void set_enabled(bool on);

/// True when the calling thread is inside an enabled LazyScope (and not
/// currently flushing) — i.e. new deferrable assignments will be recorded.
bool lazy_active();

/// Number of recorded-but-unexecuted ops on the calling thread.
std::size_t pending_count();

/// Execute the calling thread's pending DAG now (explicit materialization
/// point). No-op when nothing is pending. Exceptions from deferred ops
/// (dimension errors, governor deadlines, ...) surface here.
void wait();

/// RAII lazy region. Scopes nest; every scope exit flushes. If the scope
/// unwinds due to an exception, pending ops are DISCARDED (not executed) —
/// flushing mid-unwind could throw again and terminate.
class LazyScope {
 public:
  LazyScope();
  ~LazyScope() noexcept(false);
  LazyScope(const LazyScope&) = delete;
  LazyScope& operator=(const LazyScope&) = delete;

 private:
  int unwind_baseline_;
};

namespace detail {

// --- recording hooks (called from the assignment layer) --------------------
// Try to record `target <mask,accum,replace>= node` on the calling
// thread's DAG. Returns true when deferred; false means the caller must
// execute eagerly (not in a lazy scope, masked, or the node is not a
// deferrable shape). Deferral never depends on the backend: flushing
// falls back to per-op eager execution when chains cannot be served.
bool try_defer(const Matrix& target, const MatrixMaskArg& mask,
               const std::optional<Accumulator>& accum, bool replace,
               std::shared_ptr<const pygb::detail::ExprNode> node);
bool try_defer(const Vector& target, const VectorMaskArg& mask,
               const std::optional<Accumulator>& accum, bool replace,
               std::shared_ptr<const pygb::detail::ExprNode> node);

// --- materialization hooks -------------------------------------------------
// sync_read/sync_write: a container is about to be read / mutated in
// place; flush if the pending DAG involves it. sync_point: an eager
// operation (masked assign, extract, algorithm, chain, ...) is about to
// dispatch; flush everything so program order is preserved.
void sync_read(const void* raw);
void sync_write(const void* raw);
void sync_point();

// --- expression-lifetime registry (snapshot-on-mutate) ---------------------
// Free-standing MatrixExpr/VectorExpr objects register their nodes here;
// when a container is mutated in place, live nodes holding it as an
// operand get that operand swapped for a snapshot copy first.
void register_expr(const std::shared_ptr<pygb::detail::ExprNode>& node);
void snapshot_exprs_for(const void* raw);

}  // namespace detail

}  // namespace fusion
}  // namespace pygb
