// pygb/slicing.hpp — the Python slice analog used for indexed assign and
// extract: page_rank[:] = 1/n, C[2:4, 2:4] = A @ B, w[0:10:2] = u.
#pragma once

#include <optional>

#include "gbtl/types.hpp"

namespace pygb {

/// Half-open index range with stride; Slice::all() is Python's `:`.
class Slice {
 public:
  /// `[start, stop)` with the given (positive) step.
  Slice(gbtl::IndexType start, gbtl::IndexType stop, gbtl::IndexType step = 1)
      : start_(start), stop_(stop), step_(step) {
    if (step == 0) {
      throw gbtl::InvalidValueException("slice step must be nonzero");
    }
  }

  /// The full range `:`.
  static Slice all() { return Slice(); }

  bool is_all() const noexcept { return all_; }

  /// Expand to a concrete index list over a dimension of size `dim`.
  /// Stops are clamped to the dimension (Python slicing semantics).
  gbtl::IndexArray resolve(gbtl::IndexType dim) const {
    gbtl::IndexArray out;
    const gbtl::IndexType start = all_ ? 0 : start_;
    const gbtl::IndexType stop = all_ ? dim : std::min(stop_, dim);
    for (gbtl::IndexType i = start; i < stop; i += step_) out.push_back(i);
    return out;
  }

  /// True when the slice selects every index of a dimension of size `dim`.
  bool covers_all(gbtl::IndexType dim) const {
    return all_ || (start_ == 0 && step_ == 1 && stop_ >= dim);
  }

 private:
  Slice() : all_(true) {}
  bool all_ = false;
  gbtl::IndexType start_ = 0;
  gbtl::IndexType stop_ = 0;
  gbtl::IndexType step_ = 1;
};

}  // namespace pygb
