#include "pygb/fused.hpp"

#include <stdexcept>

#include "pygb/eval.hpp"
#include "pygb/interp_sim.hpp"
#include "pygb/jit/registry.hpp"
#include "pygb/obs/flightrec.hpp"
#include "pygb/obs/obs.hpp"

namespace pygb {

using jit::ChainParam;
using jit::ChainStatement;

FusedChain::FusedChain(std::string name)
    : desc_(std::make_shared<jit::FusedChainDesc>()) {
  detail::validate_identifier(name);
  desc_->name = std::move(name);
}

int FusedChain::matrix_param(const std::string& name, DType dtype) {
  desc_->params.push_back({ChainParam::Kind::kMatrix, dtype, name});
  return static_cast<int>(desc_->params.size() - 1);
}

int FusedChain::vector_param(const std::string& name, DType dtype) {
  desc_->params.push_back({ChainParam::Kind::kVector, dtype, name});
  return static_cast<int>(desc_->params.size() - 1);
}

int FusedChain::scalar_param(const std::string& name, DType dtype) {
  desc_->params.push_back({ChainParam::Kind::kScalar, dtype, name});
  return static_cast<int>(desc_->params.size() - 1);
}

void FusedChain::check_param(int idx, ChainParam::Kind kind,
                             const char* what) const {
  if (idx < 0 || idx >= static_cast<int>(desc_->params.size())) {
    throw std::out_of_range(std::string("pygb: chain parameter index for ") +
                            what + " out of range");
  }
  if (desc_->params[static_cast<std::size_t>(idx)].kind != kind) {
    throw std::invalid_argument(
        std::string("pygb: chain parameter kind mismatch for ") + what);
  }
}

namespace {

bool is_vector_param(const jit::FusedChainDesc& desc, int idx) {
  if (idx < 0 || idx >= static_cast<int>(desc.params.size())) {
    throw std::out_of_range("pygb: chain parameter index out of range");
  }
  return desc.params[static_cast<std::size_t>(idx)].kind ==
         ChainParam::Kind::kVector;
}

}  // namespace

ChainStatement& FusedChain::new_statement(const char* func, int target,
                                          int a, int b) {
  ChainStatement st;
  st.func = func;
  st.target = target;
  st.a = a;
  st.b = b;
  desc_->statements.push_back(std::move(st));
  return desc_->statements.back();
}

void FusedChain::vxm(int target, int a, int b, const Semiring& sr,
                     std::optional<Accumulator> accum, bool b_transposed) {
  check_param(target, ChainParam::Kind::kVector, "vxm target");
  check_param(a, ChainParam::Kind::kVector, "vxm vector operand");
  check_param(b, ChainParam::Kind::kMatrix, "vxm matrix operand");
  auto& st = new_statement(jit::func::kVxM, target, a, b);
  st.semiring = sr;
  st.b_transposed = b_transposed;
  if (accum) st.accum = accum->op();
}

void FusedChain::mxv(int target, int a, int b, const Semiring& sr,
                     std::optional<Accumulator> accum, bool a_transposed) {
  check_param(target, ChainParam::Kind::kVector, "mxv target");
  check_param(a, ChainParam::Kind::kMatrix, "mxv matrix operand");
  check_param(b, ChainParam::Kind::kVector, "mxv vector operand");
  auto& st = new_statement(jit::func::kMxV, target, a, b);
  st.semiring = sr;
  st.a_transposed = a_transposed;
  if (accum) st.accum = accum->op();
}

void FusedChain::mxm(int target, int a, int b, const Semiring& sr,
                     bool a_transposed, bool b_transposed) {
  check_param(target, ChainParam::Kind::kMatrix, "mxm target");
  check_param(a, ChainParam::Kind::kMatrix, "mxm operand A");
  check_param(b, ChainParam::Kind::kMatrix, "mxm operand B");
  auto& st = new_statement(jit::func::kMxM, target, a, b);
  st.semiring = sr;
  st.a_transposed = a_transposed;
  st.b_transposed = b_transposed;
}

void FusedChain::ewise_add(int target, int a, int b, const BinaryOp& op) {
  const bool vectors = is_vector_param(*desc_, target);
  const auto kind =
      vectors ? ChainParam::Kind::kVector : ChainParam::Kind::kMatrix;
  check_param(target, kind, "ewise_add target");
  check_param(a, kind, "ewise_add operand A");
  check_param(b, kind, "ewise_add operand B");
  auto& st = new_statement(
      vectors ? jit::func::kEWiseAddVV : jit::func::kEWiseAddMM, target, a,
      b);
  st.binary_op = op;
}

void FusedChain::ewise_mult(int target, int a, int b, const BinaryOp& op) {
  const bool vectors = is_vector_param(*desc_, target);
  const auto kind =
      vectors ? ChainParam::Kind::kVector : ChainParam::Kind::kMatrix;
  check_param(target, kind, "ewise_mult target");
  check_param(a, kind, "ewise_mult operand A");
  check_param(b, kind, "ewise_mult operand B");
  auto& st = new_statement(
      vectors ? jit::func::kEWiseMultVV : jit::func::kEWiseMultMM, target,
      a, b);
  st.binary_op = op;
}

void FusedChain::apply(int target, int a, UnaryOpName f) {
  const bool vectors = is_vector_param(*desc_, target);
  const auto kind =
      vectors ? ChainParam::Kind::kVector : ChainParam::Kind::kMatrix;
  check_param(target, kind, "apply target");
  check_param(a, kind, "apply operand");
  auto& st = new_statement(
      vectors ? jit::func::kApplyV : jit::func::kApplyM, target, a, -1);
  st.plain_unary = f;
}

void FusedChain::apply_bound(int target, int a, const BinaryOp& op,
                             int scalar_param) {
  const bool vectors = is_vector_param(*desc_, target);
  const auto kind =
      vectors ? ChainParam::Kind::kVector : ChainParam::Kind::kMatrix;
  check_param(target, kind, "apply_bound target");
  check_param(a, kind, "apply_bound operand");
  check_param(scalar_param, ChainParam::Kind::kScalar,
              "apply_bound scalar");
  auto& st = new_statement(
      vectors ? jit::func::kApplyV : jit::func::kApplyM, target, a, -1);
  st.bound_op = op;
  st.scalar = scalar_param;
}

void FusedChain::assign_constant(int target, int scalar_param) {
  check_param(target, ChainParam::Kind::kVector, "assign_constant target");
  check_param(scalar_param, ChainParam::Kind::kScalar,
              "assign_constant scalar");
  auto& st = new_statement(jit::func::kAssignVS, target, -1, -1);
  st.scalar = scalar_param;
}

void FusedChain::reduce(int a, const Monoid& monoid) {
  check_param(a, ChainParam::Kind::kVector, "reduce operand");
  auto& st = new_statement(jit::func::kReduceVS, -1, a, -1);
  st.monoid = monoid;
}

FusedChain::RunResult FusedChain::run(
    const std::vector<ChainArg>& args) const {
  if (args.size() != desc_->params.size()) {
    throw ChainBindingError(
        "pygb: chain expects " + std::to_string(desc_->params.size()) +
        " arguments, got " + std::to_string(args.size()));
  }

  std::vector<const void*> ptrs(args.size(), nullptr);
  std::vector<double> scalars(args.size(), 0.0);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const ChainParam& p = desc_->params[i];
    switch (p.kind) {
      case ChainParam::Kind::kMatrix: {
        const auto* m = std::get_if<Matrix>(&args[i]);
        if (m == nullptr || !m->defined()) {
          throw ChainBindingError("pygb: chain argument " +
                                  std::to_string(i) +
                                  " must be a defined Matrix");
        }
        if (m->dtype() != p.dtype) {
          throw ChainBindingError(
              "pygb: chain argument " + std::to_string(i) + " ('" + p.name +
              "') dtype mismatch: expected " +
              std::string(display_name(p.dtype)) + ", got " +
              display_name(m->dtype()));
        }
        ptrs[i] = m->raw();
        break;
      }
      case ChainParam::Kind::kVector: {
        const auto* v = std::get_if<Vector>(&args[i]);
        if (v == nullptr || !v->defined()) {
          throw ChainBindingError("pygb: chain argument " +
                                  std::to_string(i) +
                                  " must be a defined Vector");
        }
        if (v->dtype() != p.dtype) {
          throw ChainBindingError(
              "pygb: chain argument " + std::to_string(i) + " ('" + p.name +
              "') dtype mismatch: expected " +
              std::string(display_name(p.dtype)) + ", got " +
              display_name(v->dtype()));
        }
        ptrs[i] = v->raw();
        break;
      }
      case ChainParam::Kind::kScalar: {
        // A bare double binds only to kFP64 parameters; a typed Scalar
        // must match the declared dtype exactly (the chain was compiled
        // at that width — silent widening/narrowing would change results).
        if (const auto* s = std::get_if<double>(&args[i])) {
          if (p.dtype != DType::kFP64) {
            throw ChainBindingError(
                "pygb: chain argument " + std::to_string(i) + " ('" +
                p.name + "') is a " + std::string(display_name(p.dtype)) +
                " scalar; bind a typed Scalar, not a double literal");
          }
          scalars[i] = *s;
        } else if (const auto* sc = std::get_if<Scalar>(&args[i])) {
          if (sc->dtype() != p.dtype) {
            throw ChainBindingError(
                "pygb: chain argument " + std::to_string(i) + " ('" +
                p.name + "') dtype mismatch: expected " +
                std::string(display_name(p.dtype)) + ", got " +
                display_name(sc->dtype()));
          }
          scalars[i] = sc->to_double();
        } else {
          throw ChainBindingError("pygb: chain argument " +
                                  std::to_string(i) + " must be a scalar");
        }
        break;
      }
    }
  }

  RunResult result;
  result.scalar = Scalar(detail::run_chain_raw(desc_, ptrs, scalars).f);
  return result;
}

namespace detail {

jit::ScalarSlot run_chain_raw(
    const std::shared_ptr<const jit::FusedChainDesc>& desc,
    const std::vector<const void*>& ptrs,
    const std::vector<double>& scalars) {
  jit::OpRequest req;
  req.func = jit::func::kFusedChain;
  req.chain = desc;
  jit::KernelArgs kargs;
  jit::ScalarSlot slot;
  kargs.chain_ptrs = ptrs.data();
  kargs.chain_scalars = scalars.data();
  kargs.scalar_out = &slot;
  kargs.request = &req;

  obs::Span span("chain.run");
  if (span.active()) {
    span.attr("chain", desc->name)
        .attr("statements",
              static_cast<std::uint64_t>(desc->statements.size()))
        .attr("params", static_cast<std::uint64_t>(desc->params.size()));
  }
  flightrec::record(flightrec::EventKind::kChain, desc->name.c_str(),
                    static_cast<std::uint64_t>(desc->statements.size()),
                    static_cast<std::uint64_t>(desc->params.size()));
  // One dispatch for the whole chain (interp_pause runs inside).
  dispatch(req, kargs);
  return slot;
}

}  // namespace detail

}  // namespace pygb
