// pygb/faultinj.cpp — spec parsing and the deterministic firing engine.
#include "pygb/faultinj.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "pygb/obs/flightrec.hpp"

namespace pygb::faultinj {

namespace {

struct Rule {
  std::string site;
  Action action = Action::kFail;
  /// Firing threshold scaled to 2^32: a draw below it fires. p=1 maps to
  /// UINT32_MAX + 1 (always), p=0 to 0 (never).
  std::uint64_t threshold = std::uint64_t{1} << 32;
  std::uint64_t budget = ~std::uint64_t{0};  ///< n= remaining fires
};

struct Engine {
  std::mutex mu;
  std::vector<Rule> rules;
  std::string spec;
  std::uint64_t seed = 0;
  std::uint64_t draws = 0;  ///< global draw counter: determinism anchor
  std::uint64_t fired = 0;
};

/// Leaked on purpose (at-exit safety, same discipline as pygb::obs).
Engine& engine() {
  static auto* e = new Engine();
  return *e;
}

/// splitmix64 of (seed, draw index): every draw is a pure function of the
/// spec seed and how many draws preceded it — replayable across runs.
std::uint64_t mix(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Action parse_action(std::string_view word) {
  if (word == "hang") return Action::kHang;
  if (word == "fail") return Action::kFail;
  if (word == "slow") return Action::kSlow;
  if (word == "corrupt") return Action::kCorrupt;
  if (word == "crash") return Action::kCrash;
  if (word == "stale_proto") return Action::kStaleProto;
  throw std::invalid_argument("pygb: unknown fault action '" +
                              std::string(word) + "'");
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace

namespace detail {

std::atomic<bool> g_armed{false};

Decision check_slow(const char* site) noexcept {
  auto& e = engine();
  std::lock_guard lock(e.mu);
  for (auto& rule : e.rules) {
    if (rule.site != site) continue;
    if (rule.budget == 0) continue;
    const std::uint64_t draw =
        mix(e.seed, e.draws++) & 0xffffffffULL;  // 32-bit uniform draw
    if (draw >= rule.threshold) continue;
    --rule.budget;
    ++e.fired;
    flightrec::record(flightrec::EventKind::kFault, site, e.fired,
                      static_cast<std::uint64_t>(rule.action));
    return Decision{rule.action};
  }
  return {};
}

}  // namespace detail

const char* to_string(Action a) noexcept {
  switch (a) {
    case Action::kNone:
      return "none";
    case Action::kHang:
      return "hang";
    case Action::kFail:
      return "fail";
    case Action::kSlow:
      return "slow";
    case Action::kCorrupt:
      return "corrupt";
    case Action::kCrash:
      return "crash";
    case Action::kStaleProto:
      return "stale_proto";
  }
  return "?";
}

void configure(const std::string& spec) {
  std::vector<Rule> rules;
  std::uint64_t seed = 0;
  for (std::string_view item : split(spec, ',')) {
    if (item.empty()) continue;
    if (item.substr(0, 5) == "seed=") {
      seed = std::strtoull(std::string(item.substr(5)).c_str(), nullptr, 10);
      continue;
    }
    const auto fields = split(item, ':');
    if (fields.size() < 2 || fields[0].empty()) {
      throw std::invalid_argument("pygb: malformed fault rule '" +
                                  std::string(item) +
                                  "' (want site:action[:p=..][:n=..])");
    }
    Rule rule;
    rule.site = std::string(fields[0]);
    rule.action = parse_action(fields[1]);
    for (std::size_t i = 2; i < fields.size(); ++i) {
      const std::string_view f = fields[i];
      if (f.substr(0, 2) == "p=") {
        const double p = std::strtod(std::string(f.substr(2)).c_str(), nullptr);
        if (p < 0.0 || p > 1.0) {
          throw std::invalid_argument(
              "pygb: fault probability out of [0,1] in '" + std::string(item) +
              "'");
        }
        rule.threshold =
            static_cast<std::uint64_t>(p * 4294967296.0);  // p * 2^32
      } else if (f.substr(0, 2) == "n=") {
        rule.budget =
            std::strtoull(std::string(f.substr(2)).c_str(), nullptr, 10);
      } else {
        throw std::invalid_argument("pygb: unknown fault modifier '" +
                                    std::string(f) + "' in '" +
                                    std::string(item) + "'");
      }
    }
    rules.push_back(std::move(rule));
  }

  auto& e = engine();
  std::lock_guard lock(e.mu);
  e.rules = std::move(rules);
  e.spec = spec;
  e.seed = seed;
  e.draws = 0;
  e.fired = 0;
  detail::g_armed.store(!e.rules.empty(), std::memory_order_relaxed);
}

std::string current_spec() {
  auto& e = engine();
  std::lock_guard lock(e.mu);
  return e.rules.empty() ? std::string() : e.spec;
}

std::uint64_t fired_count() noexcept {
  auto& e = engine();
  std::lock_guard lock(e.mu);
  return e.fired;
}

double jitter_unit(std::uint64_t stream, std::uint64_t index) noexcept {
  std::uint64_t seed;
  if (armed()) {
    auto& e = engine();
    std::lock_guard lock(e.mu);
    seed = e.seed;  // PYGB_FAULTS seed=N: replayable chaos schedules
  } else {
    // Process entropy, captured once: cheap, allocation-free, and distinct
    // across processes (time) and ASLR images (heap address).
    static const std::uint64_t entropy = [] {
      const auto t =
          std::chrono::steady_clock::now().time_since_epoch().count();
      return mix(static_cast<std::uint64_t>(t),
                 reinterpret_cast<std::uintptr_t>(&engine()));
    }();
    seed = entropy;
  }
  const std::uint64_t z = mix(seed ^ stream, index);
  return static_cast<double>(z >> 11) * 0x1.0p-53;  // 53 bits → [0,1)
}

void init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* spec = std::getenv("PYGB_FAULTS");
    if (spec == nullptr || *spec == '\0') return;
    try {
      configure(spec);
      std::fprintf(stderr, "pygb: fault injection armed: %s\n", spec);
    } catch (const std::exception& e) {
      // A typo'd spec must not silently run a chaos suite with no chaos.
      std::fprintf(stderr, "pygb: fatal: bad PYGB_FAULTS spec: %s\n",
                   e.what());
      std::abort();
    }
  });
}

namespace {
/// Arm from the environment during static init of any linking binary.
struct EnvActivation {
  EnvActivation() { init_from_env(); }
} g_env_activation;
}  // namespace

}  // namespace pygb::faultinj
