// pygb/utilities.hpp — DSL-level utility routines (PyGB's gb.utilities):
// typed pass-throughs to the GBTL helpers used by the example algorithms.
#pragma once

#include "gbtl/utilities.hpp"
#include "pygb/container.hpp"

namespace pygb {

/// gb.utilities.normalize_rows(m) — scale each row to sum 1 (PageRank
/// Fig. 7 line 9). Requires a floating-point dtype.
inline void normalize_rows(Matrix& m) {
  if (!is_floating(m.dtype())) {
    throw std::invalid_argument(
        "pygb: normalize_rows requires a floating-point matrix");
  }
  if (m.dtype() == DType::kFP64) {
    gbtl::normalize_rows(m.typed<double>());
  } else {
    gbtl::normalize_rows(m.typed<float>());
  }
}

/// Split an undirected adjacency into strictly-lower/upper triangles
/// (triangle counting Fig. 5 setup).
inline std::pair<Matrix, Matrix> split_triangles(const Matrix& a) {
  Matrix lower(a.nrows(), a.ncols(), a.dtype());
  Matrix upper(a.nrows(), a.ncols(), a.dtype());
  visit_dtype(a.dtype(), [&](auto tag) {
    using T = typename decltype(tag)::type;
    gbtl::split(a.typed<T>(), lower.typed<T>(), upper.typed<T>());
  });
  return {lower, upper};
}

}  // namespace pygb
