// pygb/eval.hpp — internal evaluation entry points: expression node →
// OpRequest → registry kernel → invocation. Used by the assignment proxies
// and expression terminals; exposed (under detail) for white-box tests.
#pragma once

#include <optional>

#include "pygb/container.hpp"
#include "pygb/expr.hpp"
#include "pygb/jit/module_key.hpp"

namespace pygb::detail {

/// Resolve a kernel for an assembled request and invoke it, emitting the
/// dispatch-pipeline spans and kernel-latency histograms when observability
/// is on (pygb/obs). The shared dispatch core for eval_into, assign/extract,
/// whole-algorithm entry points, and fused chains.
void dispatch(jit::OpRequest& req, jit::KernelArgs& args);

/// Evaluate `node` into `target` under mask/accumulator/replace.
void eval_into(Matrix& target, const MatrixMaskArg& mask,
               const std::optional<Accumulator>& accum, bool replace,
               const ExprNode& node);
void eval_into(Vector& target, const VectorMaskArg& mask,
               const std::optional<Accumulator>& accum, bool replace,
               const ExprNode& node);

/// Constant and container assignment over an index region (null = all).
void assign_constant(Matrix& target, const MatrixMaskArg& mask,
                     const std::optional<Accumulator>& accum, bool replace,
                     Scalar value, const gbtl::IndexArray* rows,
                     const gbtl::IndexArray* cols);
void assign_container(Matrix& target, const MatrixMaskArg& mask,
                      const std::optional<Accumulator>& accum, bool replace,
                      const Matrix& a, const gbtl::IndexArray* rows,
                      const gbtl::IndexArray* cols);
void assign_constant(Vector& target, const VectorMaskArg& mask,
                     const std::optional<Accumulator>& accum, bool replace,
                     Scalar value, const gbtl::IndexArray* idx);
void assign_container(Vector& target, const VectorMaskArg& mask,
                      const std::optional<Accumulator>& accum, bool replace,
                      const Vector& u, const gbtl::IndexArray* idx);

/// Extract A(rows, cols) into a fresh container of A's dtype.
Matrix extract_sub(const Matrix& a, const gbtl::IndexArray* rows,
                   const gbtl::IndexArray* cols, gbtl::IndexType out_rows,
                   gbtl::IndexType out_cols);
Vector extract_sub(const Vector& u, const gbtl::IndexArray* idx,
                   gbtl::IndexType out_size);

/// Full reductions (immediate).
Scalar reduce_scalar(const Matrix& a, const Monoid& monoid);
Scalar reduce_scalar(const Vector& u, const Monoid& monoid);

/// Whole-algorithm dispatch (the Fig. 10 middle series): one registry
/// lookup + one kernel call runs the entire native algorithm.
gbtl::IndexType dispatch_algo_bfs(const Matrix& graph,
                                  const Vector& frontier, Vector& levels);
void dispatch_algo_sssp(const Matrix& graph, Vector& path);
unsigned dispatch_algo_pagerank(const Matrix& graph, Vector& rank,
                                double damping, double threshold,
                                unsigned max_iters);
Scalar dispatch_algo_tc(const Matrix& lower);
gbtl::IndexType dispatch_algo_cc(const Matrix& graph, Vector& labels);

}  // namespace pygb::detail
