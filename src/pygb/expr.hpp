// pygb/expr.hpp — deferred expression objects (§IV "deferred operator
// evaluation"). Building `matmul(A, B)` or `A + B` performs NO work: it
// captures the operands and the operator resolved from the enclosing
// context (the with-block capture the paper describes) into a runtime
// expression node. The node is evaluated — through the dispatch/JIT layer —
// when a terminating operation consumes it: assignment into a (masked /
// indexed) target, materialization via eval(), or use as an operand of
// another expression.
#pragma once

#include <memory>
#include <optional>

#include "pygb/container.hpp"
#include "pygb/context.hpp"
#include "pygb/userops.hpp"

namespace pygb {

namespace detail {

struct ExprNode {
  enum class Kind : std::uint8_t {
    kMxM,
    kMxV,
    kVxM,
    kEWiseAddMM,
    kEWiseAddVV,
    kEWiseMultMM,
    kEWiseMultVV,
    kApplyM,
    kApplyV,
    kReduceMV,      ///< row-reduce a matrix into a vector
    kMatrixRef,     ///< a bare container on the right-hand side
    kVectorRef,
    kTransposeM,    ///< A.T used as a value: transpose operation
  };

  explicit ExprNode(Kind k) : kind(k) {}

  Kind kind;

  // Operands (those that apply to `kind`).
  std::optional<Matrix> ma;
  std::optional<Matrix> mb;
  std::optional<Vector> va;
  std::optional<Vector> vb;
  bool a_transposed = false;
  bool b_transposed = false;

  // Operators captured from the context at construction time.
  std::optional<Semiring> semiring;
  std::optional<BinaryOp> binary_op;
  std::optional<UnaryOp> unary_op;
  std::optional<Monoid> monoid;
  // Explicit user-defined operators (§VIII; JIT backend only).
  std::optional<UserBinaryOp> user_binary;
  std::optional<UserUnaryOp> user_unary;

  /// Element type the expression produces when no target dictates one
  /// (C++ usual arithmetic conversions over the operand dtypes).
  DType result_dtype() const;
  /// Result shape.
  gbtl::IndexType result_nrows() const;
  gbtl::IndexType result_ncols() const;  ///< matrix results only
};

}  // namespace detail

namespace fusion::detail {
/// Registers a live expression node with the snapshot registry
/// (pygb/plan.cpp): if an operand container is mutated before the node is
/// materialized, the registry swaps the operand for a snapshot copy so the
/// node keeps seeing build-time values (snapshot-on-mutate).
void register_expr(const std::shared_ptr<pygb::detail::ExprNode>& node);
}  // namespace fusion::detail

/// A deferred matrix-valued expression (value-semantic node handle).
///
/// The node holds its operand containers by value (shared handles), so the
/// inputs stay alive for as long as the expression does; mutating an input
/// before materialization snapshots it first (see docs/FUSION.md).
class MatrixExpr {
 public:
  explicit MatrixExpr(std::shared_ptr<detail::ExprNode> node)
      : node_(std::move(node)) {
    fusion::detail::register_expr(node_);
  }

  const detail::ExprNode& node() const { return *node_; }
  std::shared_ptr<const detail::ExprNode> share_node() const {
    return node_;
  }

  /// Terminal evaluation into a fresh container.
  Matrix eval() const;

 private:
  std::shared_ptr<detail::ExprNode> node_;
};

/// A deferred vector-valued expression.
class VectorExpr {
 public:
  explicit VectorExpr(std::shared_ptr<detail::ExprNode> node)
      : node_(std::move(node)) {
    fusion::detail::register_expr(node_);
  }

  const detail::ExprNode& node() const { return *node_; }
  std::shared_ptr<const detail::ExprNode> share_node() const {
    return node_;
  }

  Vector eval() const;

 private:
  std::shared_ptr<detail::ExprNode> node_;
};

// ---------------------------------------------------------------------------
// Expression builders. Each captures its operator from the context stack at
// construction (current_semiring / current_add_op / ...).
// ---------------------------------------------------------------------------

/// A @ B — matrix multiply over the context semiring.
MatrixExpr matmul(const Matrix& a, const Matrix& b);
MatrixExpr matmul(const TransposedMatrix& a, const Matrix& b);
MatrixExpr matmul(const Matrix& a, const TransposedMatrix& b);
MatrixExpr matmul(const TransposedMatrix& a, const TransposedMatrix& b);

/// A @ u / u @ A — matrix-vector and vector-matrix products.
VectorExpr matmul(const Matrix& a, const Vector& u);
VectorExpr matmul(const TransposedMatrix& a, const Vector& u);
VectorExpr matmul(const Vector& u, const Matrix& a);
VectorExpr matmul(const Vector& u, const TransposedMatrix& a);

/// A + B — eWiseAdd with the context add-role operator.
MatrixExpr operator+(const Matrix& a, const Matrix& b);
VectorExpr operator+(const Vector& u, const Vector& v);

/// A * B — eWiseMult with the context mult-role operator.
MatrixExpr operator*(const Matrix& a, const Matrix& b);
VectorExpr operator*(const Vector& u, const Vector& v);

/// apply(A) — unary apply with the context unary op (or an explicit one).
MatrixExpr apply(const Matrix& a);
MatrixExpr apply(const Matrix& a, const UnaryOp& op);
VectorExpr apply(const Vector& u);
VectorExpr apply(const Vector& u, const UnaryOp& op);

/// reduce(A) / reduce(u) — full reduction to a scalar with the context
/// monoid (Table I "reduce (scalar)"). Evaluates immediately.
Scalar reduce(const Matrix& a);
Scalar reduce(const Matrix& a, const Monoid& monoid);
Scalar reduce(const Vector& u);
Scalar reduce(const Vector& u, const Monoid& monoid);

/// reduce(monoid, A) — row-wise reduction into a vector (Table I
/// "reduce (row)"). Deferred.
VectorExpr reduce_rows(const Matrix& a);
VectorExpr reduce_rows(const Matrix& a, const Monoid& monoid);

/// transpose(A) as a value: C[M] = transpose(A). (A.T() inside products is
/// handled without materialization; this is the standalone operation.)
MatrixExpr transposed(const Matrix& a);
MatrixExpr transposed(const TransposedMatrix& a);

// ---------------------------------------------------------------------------
// User-defined operators (§VIII future work, implemented): element-wise and
// apply operations whose operator body is a C++ expression compiled by the
// JIT backend. See userops.hpp for the expression contract.
// ---------------------------------------------------------------------------

MatrixExpr ewise_add(const Matrix& a, const Matrix& b,
                     const UserBinaryOp& op);
MatrixExpr ewise_mult(const Matrix& a, const Matrix& b,
                      const UserBinaryOp& op);
VectorExpr ewise_add(const Vector& u, const Vector& v,
                     const UserBinaryOp& op);
VectorExpr ewise_mult(const Vector& u, const Vector& v,
                      const UserBinaryOp& op);
MatrixExpr apply(const Matrix& a, const UserUnaryOp& op);
VectorExpr apply(const Vector& u, const UserUnaryOp& op);

// ---------------------------------------------------------------------------
// "Terminating operations": combining an expression with anything forces
// its evaluation first (§IV). These overloads evaluate and recurse.
// ---------------------------------------------------------------------------

inline MatrixExpr matmul(const MatrixExpr& a, const Matrix& b) {
  return matmul(a.eval(), b);
}
inline MatrixExpr matmul(const Matrix& a, const MatrixExpr& b) {
  return matmul(a, b.eval());
}
inline MatrixExpr operator+(const MatrixExpr& a, const Matrix& b) {
  return a.eval() + b;
}
inline MatrixExpr operator+(const Matrix& a, const MatrixExpr& b) {
  return a + b.eval();
}
inline MatrixExpr operator*(const MatrixExpr& a, const Matrix& b) {
  return a.eval() * b;
}
inline MatrixExpr operator*(const Matrix& a, const MatrixExpr& b) {
  return a * b.eval();
}
inline VectorExpr operator+(const VectorExpr& a, const Vector& b) {
  return a.eval() + b;
}
inline VectorExpr operator+(const Vector& a, const VectorExpr& b) {
  return a + b.eval();
}
inline VectorExpr operator*(const VectorExpr& a, const Vector& b) {
  return a.eval() * b;
}
inline VectorExpr operator*(const Vector& a, const VectorExpr& b) {
  return a * b.eval();
}
inline Scalar reduce(const MatrixExpr& a) { return reduce(a.eval()); }
inline Scalar reduce(const VectorExpr& u) { return reduce(u.eval()); }

}  // namespace pygb
