#include "pygb/dtype.hpp"

#include <array>
#include <sstream>

namespace pygb {

namespace {

struct DTypeInfo {
  const char* cpp;
  const char* display;
  std::size_t size;
  bool floating;
  bool is_signed;
};

constexpr std::array<DTypeInfo, kNumDTypes> kInfo = {{
    {"bool", "bool", 1, false, false},
    {"int8_t", "i8", 1, false, true},
    {"int16_t", "i16", 2, false, true},
    {"int32_t", "i32", 4, false, true},
    {"int64_t", "i64", 8, false, true},
    {"uint8_t", "u8", 1, false, false},
    {"uint16_t", "u16", 2, false, false},
    {"uint32_t", "u32", 4, false, false},
    {"uint64_t", "u64", 8, false, false},
    {"float", "f32", 4, true, true},
    {"double", "f64", 8, true, true},
}};

const DTypeInfo& info(DType dt) { return kInfo[static_cast<std::size_t>(dt)]; }

}  // namespace

const char* cpp_name(DType dt) { return info(dt).cpp; }
const char* display_name(DType dt) { return info(dt).display; }
std::size_t size_of(DType dt) { return info(dt).size; }
bool is_floating(DType dt) { return info(dt).floating; }
bool is_signed(DType dt) { return info(dt).is_signed; }

DType parse_dtype(const std::string& name) {
  for (int k = 0; k < kNumDTypes; ++k) {
    const auto dt = static_cast<DType>(k);
    if (name == info(dt).cpp || name == info(dt).display) return dt;
  }
  // NumPy-style aliases.
  if (name == "float64") return DType::kFP64;
  if (name == "float32") return DType::kFP32;
  if (name == "int") return DType::kInt64;
  throw std::invalid_argument("pygb: unknown dtype name '" + name + "'");
}

DType promote(DType a, DType b) {
  return visit_dtype(a, [&](auto ta) {
    return visit_dtype(b, [&](auto tb) {
      using A = typename decltype(ta)::type;
      using B = typename decltype(tb)::type;
      if constexpr (std::is_same_v<A, B>) {
        return dtype_of<A>();
      } else {
        // Usual arithmetic conversions: the type of A{} + B{}.
        using R = decltype(std::declval<A>() + std::declval<B>());
        return dtype_of<R>();
      }
    });
  });
}

std::string Scalar::to_string() const {
  std::ostringstream os;
  os << display_name(dtype_) << '(';
  if (is_floating(dtype_)) {
    os << to_double();
  } else if (is_signed(dtype_) || dtype_ == DType::kBool) {
    os << to_int64();
  } else {
    os << as<std::uint64_t>();
  }
  os << ')';
  return os.str();
}

}  // namespace pygb
