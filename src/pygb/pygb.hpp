// pygb/pygb.hpp — umbrella header for the PyGB DSL: runtime-typed
// containers, operator objects, the context stack, deferred expressions,
// the dispatch/JIT layer, and DSL utilities.
#pragma once

#include "pygb/container.hpp"
#include "pygb/context.hpp"
#include "pygb/dtype.hpp"
#include "pygb/eval.hpp"
#include "pygb/expr.hpp"
#include "pygb/fused.hpp"
#include "pygb/interp_sim.hpp"
#include "pygb/jit/registry.hpp"
#include "pygb/operators.hpp"
#include "pygb/plan.hpp"
#include "pygb/slicing.hpp"
#include "pygb/utilities.hpp"
