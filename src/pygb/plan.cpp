// pygb/plan.cpp — lazy op DAG recording and the fusion planner.
//
// Recording: fusion::detail::try_defer appends {target, accum, node} to a
// thread-local program. Flushing replays that program with sequential
// semantics, but first plans it:
//
//   1. Dead-store elimination: an unmasked, non-accumulating write whose
//      target is overwritten before any read is dropped (sound because an
//      unmasked NoAccumulate write replaces the target's contents exactly
//      — see gbtl/detail/write_backend.hpp).
//   2. Component partitioning: ops that share no containers are
//      independent; independent components run concurrently on the worker
//      pool when it has threads to spare.
//   3. Chain fusion: within a component, maximal runs of fusible ops
//      become one jit::FusedChainDesc (origin "dag") dispatched as a
//      single kernel through the ordinary registry/JIT cache. Runs are
//      capped at PYGB_FUSION_MAX_CHAIN statements (default 16) so module
//      keys stay bounded; a cap hit is a visible "split" decision.
//
// When chains cannot be served (interp/static backends, no compiler, or a
// JIT failure at flush time) the planner falls back to per-op eager
// replay in program order — results never depend on the backend.
#include "pygb/plan.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <numeric>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "gbtl/detail/pool.hpp"
#include "pygb/eval.hpp"
#include "pygb/expr.hpp"
#include "pygb/fused.hpp"
#include "pygb/jit/registry.hpp"
#include "pygb/obs/flightrec.hpp"
#include "pygb/obs/obs.hpp"

namespace pygb::fusion {

using pygb::detail::ExprNode;

namespace {

bool env_enabled_default() {
  const char* v = std::getenv("PYGB_FUSION");
  if (v == nullptr || *v == '\0') return true;
  return !(std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
           std::strcmp(v, "false") == 0 || std::strcmp(v, "OFF") == 0);
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> f{env_enabled_default()};
  return f;
}

std::size_t max_chain_len() {
  static const std::size_t n = [] {
    const char* v = std::getenv("PYGB_FUSION_MAX_CHAIN");
    long parsed = (v != nullptr && *v != '\0') ? std::atol(v) : 16;
    if (parsed < 2) parsed = 2;
    return static_cast<std::size_t>(parsed);
  }();
  return n;
}

// --- the per-thread recorded program ---------------------------------------

struct PendingOp {
  bool is_vector = false;
  std::optional<Matrix> mt;  ///< target handle (keeps the container alive)
  std::optional<Vector> vt;
  std::optional<Accumulator> accum;
  bool replace = false;  ///< captured for fidelity; no-op without a mask
  std::shared_ptr<const ExprNode> node;

  const void* target_raw() const {
    return is_vector ? vt->raw() : mt->raw();
  }
};

struct TlsState {
  int depth = 0;        ///< LazyScope nesting on this thread
  bool in_flush = false;
  std::vector<PendingOp> pending;
  std::unordered_set<const void*> involved;  ///< targets + operands
};

TlsState& tls() {
  static thread_local TlsState t;
  return t;
}

// --- node shape queries ----------------------------------------------------

/// Operand raw pointers of a node (at most two).
template <typename Fn>
void for_each_operand(const ExprNode& n, Fn&& fn) {
  if (n.ma) fn(n.ma->raw());
  if (n.mb) fn(n.mb->raw());
  if (n.va) fn(n.va->raw());
  if (n.vb) fn(n.vb->raw());
}

bool node_reads(const ExprNode& n, const void* raw) {
  bool hit = false;
  for_each_operand(n, [&](const void* r) { hit = hit || r == raw; });
  return hit;
}

/// Can this node become one jit::ChainStatement? (Everything deferrable is
/// also chain-fusible; non-fusible shapes — user ops, transposes outside
/// matmul, row-reduce — stay eager so exceptions and backend behavior
/// match eager mode exactly.)
bool node_deferrable(const ExprNode& n) {
  using K = ExprNode::Kind;
  if (n.user_binary || n.user_unary) return false;
  switch (n.kind) {
    case K::kMxM:
    case K::kMxV:
    case K::kVxM:
      return true;  // transpose flags are supported inside chains
    case K::kEWiseAddMM:
    case K::kEWiseMultMM:
      return !n.a_transposed && !n.b_transposed;
    case K::kEWiseAddVV:
    case K::kEWiseMultVV:
      return true;
    case K::kApplyM:
    case K::kMatrixRef:
      return !n.a_transposed;
    case K::kApplyV:
    case K::kVectorRef:
      return true;
    default:
      return false;  // kReduceMV, kTransposeM: no chain statement form
  }
}

// --- plan stage 1: dead-store elimination ----------------------------------

/// Marks ops whose target is overwritten (unmasked, no accumulator) before
/// any later op reads it. Returns the eliminated count.
std::size_t eliminate_dead_stores(std::vector<PendingOp>& ops,
                                  std::vector<char>& dead) {
  std::size_t eliminated = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const void* raw = ops[i].target_raw();
    for (std::size_t j = i + 1; j < ops.size(); ++j) {
      if (node_reads(*ops[j].node, raw)) break;  // value observed: live
      if (ops[j].target_raw() == raw) {
        if (ops[j].accum) break;  // accumulate reads the old target: live
        dead[i] = 1;
        ++eliminated;
        break;
      }
    }
  }
  return eliminated;
}

// --- plan stage 2: independent components ----------------------------------

struct Dsu {
  std::vector<int> parent;
  explicit Dsu(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      x = parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
    }
    return x;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[static_cast<std::size_t>(b)] = a;
  }
};

/// Groups live op indices into connected components over shared container
/// pointers; within each component program order is preserved.
std::vector<std::vector<std::size_t>> partition_components(
    const std::vector<PendingOp>& ops, const std::vector<char>& dead) {
  Dsu dsu(ops.size());
  std::unordered_map<const void*, int> owner;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (dead[i]) continue;
    auto claim = [&](const void* raw) {
      auto [it, inserted] = owner.emplace(raw, static_cast<int>(i));
      if (!inserted) dsu.unite(it->second, static_cast<int>(i));
    };
    claim(ops[i].target_raw());
    for_each_operand(*ops[i].node, claim);
  }
  std::unordered_map<int, std::size_t> slot;
  std::vector<std::vector<std::size_t>> components;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (dead[i]) continue;
    const int root = dsu.find(static_cast<int>(i));
    auto [it, inserted] = slot.emplace(root, components.size());
    if (inserted) components.emplace_back();
    components[it->second].push_back(i);
  }
  return components;
}

// --- plan stage 3: chain building ------------------------------------------

struct ChainBuild {
  std::shared_ptr<jit::FusedChainDesc> desc =
      std::make_shared<jit::FusedChainDesc>();
  std::vector<const void*> ptrs;
  std::vector<double> scalars;
  std::unordered_map<const void*, int> param_of;
};

int chain_param(ChainBuild& b, const Matrix& m) {
  auto it = b.param_of.find(m.raw());
  if (it != b.param_of.end()) return it->second;
  const int idx = static_cast<int>(b.desc->params.size());
  b.desc->params.push_back({jit::ChainParam::Kind::kMatrix, m.dtype(),
                            "p" + std::to_string(idx)});
  b.ptrs.push_back(m.raw());
  b.scalars.push_back(0.0);
  b.param_of.emplace(m.raw(), idx);
  return idx;
}

int chain_param(ChainBuild& b, const Vector& v) {
  auto it = b.param_of.find(v.raw());
  if (it != b.param_of.end()) return it->second;
  const int idx = static_cast<int>(b.desc->params.size());
  b.desc->params.push_back({jit::ChainParam::Kind::kVector, v.dtype(),
                            "p" + std::to_string(idx)});
  b.ptrs.push_back(v.raw());
  b.scalars.push_back(0.0);
  b.param_of.emplace(v.raw(), idx);
  return idx;
}

int chain_scalar(ChainBuild& b, const Scalar& value, DType dtype) {
  const int idx = static_cast<int>(b.desc->params.size());
  b.desc->params.push_back(
      {jit::ChainParam::Kind::kScalar, dtype, "s" + std::to_string(idx)});
  b.ptrs.push_back(nullptr);
  b.scalars.push_back(value.to_double());
  return idx;
}

void add_chain_statement(ChainBuild& b, const PendingOp& op) {
  const ExprNode& n = *op.node;
  using K = ExprNode::Kind;
  jit::ChainStatement st;
  st.target = op.is_vector ? chain_param(b, *op.vt) : chain_param(b, *op.mt);
  const DType target_dtype = op.is_vector ? op.vt->dtype() : op.mt->dtype();
  if (op.accum) st.accum = op.accum->op();
  switch (n.kind) {
    case K::kMxM:
      st.func = jit::func::kMxM;
      st.a = chain_param(b, *n.ma);
      st.b = chain_param(b, *n.mb);
      st.semiring = n.semiring;
      st.a_transposed = n.a_transposed;
      st.b_transposed = n.b_transposed;
      break;
    case K::kMxV:
      st.func = jit::func::kMxV;
      st.a = chain_param(b, *n.ma);
      st.b = chain_param(b, *n.vb);
      st.semiring = n.semiring;
      st.a_transposed = n.a_transposed;
      break;
    case K::kVxM:
      st.func = jit::func::kVxM;
      st.a = chain_param(b, *n.va);
      st.b = chain_param(b, *n.mb);
      st.semiring = n.semiring;
      st.b_transposed = n.b_transposed;
      break;
    case K::kEWiseAddMM:
    case K::kEWiseMultMM:
      st.func = n.kind == K::kEWiseAddMM ? jit::func::kEWiseAddMM
                                         : jit::func::kEWiseMultMM;
      st.a = chain_param(b, *n.ma);
      st.b = chain_param(b, *n.mb);
      st.binary_op = n.binary_op;
      break;
    case K::kEWiseAddVV:
    case K::kEWiseMultVV:
      st.func = n.kind == K::kEWiseAddVV ? jit::func::kEWiseAddVV
                                         : jit::func::kEWiseMultVV;
      st.a = chain_param(b, *n.va);
      st.b = chain_param(b, *n.vb);
      st.binary_op = n.binary_op;
      break;
    case K::kApplyM:
    case K::kMatrixRef:
    case K::kApplyV:
    case K::kVectorRef: {
      const bool vec = n.kind == K::kApplyV || n.kind == K::kVectorRef;
      st.func = vec ? jit::func::kApplyV : jit::func::kApplyM;
      st.a = vec ? chain_param(b, *n.va) : chain_param(b, *n.ma);
      const bool is_ref = n.kind == K::kMatrixRef || n.kind == K::kVectorRef;
      if (is_ref) {
        st.plain_unary = UnaryOpName::kIdentity;
      } else if (n.unary_op->is_bound()) {
        st.bound_op = BinaryOp(n.unary_op->bound_op());
        st.scalar = chain_scalar(b, n.unary_op->bound_value(), target_dtype);
      } else {
        st.plain_unary = n.unary_op->unary_name();
      }
      break;
    }
    default:
      throw std::logic_error("pygb: non-fusible node reached chain build");
  }
  b.desc->statements.push_back(std::move(st));
}

// --- execution --------------------------------------------------------------

/// Chains go through the JIT only; interp/static refuse them by design.
bool chains_servable() {
  auto& reg = jit::Registry::instance();
  switch (reg.mode()) {
    case jit::Mode::kJit:
      return true;
    case jit::Mode::kAuto:
      return reg.compiler_available();
    default:
      return false;
  }
}

void exec_eager(PendingOp& op) {
  obs::counter_add(obs::Counter::kFusionEagerOps, 1);
  if (op.is_vector) {
    pygb::detail::eval_into(*op.vt, VectorMaskArg{}, op.accum, op.replace,
                            *op.node);
  } else {
    pygb::detail::eval_into(*op.mt, MatrixMaskArg{}, op.accum, op.replace,
                            *op.node);
  }
}

/// One fused run: build the chain, dispatch it once; degrade to per-op
/// eager replay if no backend will serve the chain (visible decision).
void exec_fused_run(std::vector<PendingOp>& ops,
                    const std::vector<std::size_t>& run) {
  ChainBuild b;
  b.desc->name = "dag";
  b.desc->origin = "dag";
  for (std::size_t idx : run) add_chain_statement(b, ops[idx]);
  flightrec::record(flightrec::EventKind::kFusionPlan, "fuse",
                    static_cast<std::uint64_t>(b.desc->statements.size()),
                    static_cast<std::uint64_t>(b.desc->params.size()));
  try {
    pygb::detail::run_chain_raw(b.desc, b.ptrs, b.scalars);
    obs::counter_add(obs::Counter::kFusionChains, 1);
    obs::counter_add(obs::Counter::kFusionFusedStatements, run.size());
  } catch (const jit::NoKernelError&) {
    flightrec::record(flightrec::EventKind::kFusionPlan, "fallback",
                      static_cast<std::uint64_t>(run.size()), 0);
    for (std::size_t idx : run) exec_eager(ops[idx]);
  }
}

void exec_component(std::vector<PendingOp>& ops,
                    const std::vector<std::size_t>& component, bool fuse) {
  if (!fuse) {
    for (std::size_t idx : component) exec_eager(ops[idx]);
    return;
  }
  // Greedy maximal runs: every deferred op is chain-fusible, so the only
  // split points are the PYGB_FUSION_MAX_CHAIN cap.
  std::vector<std::size_t> run;
  auto submit = [&] {
    if (run.empty()) return;
    if (run.size() == 1) {
      flightrec::record(flightrec::EventKind::kFusionPlan, "eager", 1, 0);
      exec_eager(ops[run[0]]);
    } else {
      exec_fused_run(ops, run);
    }
    run.clear();
  };
  for (std::size_t idx : component) {
    if (run.size() >= max_chain_len()) {
      flightrec::record(flightrec::EventKind::kFusionPlan, "split",
                        static_cast<std::uint64_t>(run.size()), 0);
      submit();
    }
    run.push_back(idx);
  }
  submit();
}

void flush_tls() {
  TlsState& t = tls();
  t.involved.clear();
  if (t.pending.empty()) return;
  t.in_flush = true;
  struct FlushGuard {
    TlsState& t;
    ~FlushGuard() { t.in_flush = false; }
  } guard{t};
  std::vector<PendingOp> ops = std::move(t.pending);
  t.pending.clear();

  obs::counter_add(obs::Counter::kFusionFlushes, 1);
  obs::Span span("fusion.flush");

  std::vector<char> dead(ops.size(), 0);
  const std::size_t eliminated = eliminate_dead_stores(ops, dead);
  if (eliminated > 0) {
    obs::counter_add(obs::Counter::kFusionDce, eliminated);
    flightrec::record(flightrec::EventKind::kFusionPlan, "dce",
                      static_cast<std::uint64_t>(eliminated), 0);
  }

  const auto components = partition_components(ops, dead);
  const bool fuse = chains_servable();
  const bool parallel =
      components.size() > 1 && gbtl::detail::pool_num_threads() > 1;
  flightrec::record(flightrec::EventKind::kFusionPlan, "flush",
                    static_cast<std::uint64_t>(ops.size()),
                    static_cast<std::uint64_t>(components.size()),
                    parallel ? 1u : 0u);
  if (span.active()) {
    span.attr("pending", static_cast<std::uint64_t>(ops.size()))
        .attr("dce", static_cast<std::uint64_t>(eliminated))
        .attr("components", static_cast<std::uint64_t>(components.size()))
        .attr("fuse", fuse ? "chain" : "eager")
        .attr("parallel", parallel ? "yes" : "no");
  }

  if (parallel) {
    // Components share no containers, so any interleaving is equivalent
    // to program order. The pool rethrows the first failure at the join;
    // nested parallel-for calls inside kernels run inline.
    struct Ctx {
      std::vector<PendingOp>* ops;
      const std::vector<std::vector<std::size_t>>* components;
      bool fuse;
    } ctx{&ops, &components, fuse};
    gbtl::detail::pool_parallel_for(
        static_cast<gbtl::IndexType>(components.size()),
        [](void* p, gbtl::IndexType begin, gbtl::IndexType end) {
          auto& c = *static_cast<Ctx*>(p);
          for (gbtl::IndexType i = begin; i < end; ++i) {
            exec_component(*c.ops, (*c.components)[i], c.fuse);
          }
        },
        &ctx);
  } else {
    for (const auto& component : components) {
      exec_component(ops, component, fuse);
    }
  }
}

// --- deferral ---------------------------------------------------------------

void note_involved(TlsState& t, const PendingOp& op) {
  t.involved.insert(op.target_raw());
  for_each_operand(*op.node, [&](const void* r) { t.involved.insert(r); });
}

bool defer_common(PendingOp&& op) {
  TlsState& t = tls();
  if (t.depth <= 0 || t.in_flush || !enabled_flag().load()) return false;
  if (!op.node || !node_deferrable(*op.node)) return false;
  t.pending.push_back(std::move(op));
  note_involved(t, t.pending.back());
  obs::counter_add(obs::Counter::kFusionDeferred, 1);
  return true;
}

// --- expression-lifetime registry (snapshot-on-mutate) ---------------------

struct ExprRegistry {
  std::mutex mu;
  std::unordered_map<const void*, std::vector<std::weak_ptr<ExprNode>>>
      by_raw;
};

ExprRegistry& expr_registry() {
  static ExprRegistry* r = new ExprRegistry();  // leaked: outlives statics
  return *r;
}

}  // namespace

// --- public API -------------------------------------------------------------

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }
void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

bool lazy_active() {
  const TlsState& t = tls();
  return t.depth > 0 && !t.in_flush && enabled();
}

std::size_t pending_count() { return tls().pending.size(); }

void wait() {
  if (!tls().in_flush) flush_tls();
}

LazyScope::LazyScope() : unwind_baseline_(std::uncaught_exceptions()) {
  ++tls().depth;
}

LazyScope::~LazyScope() noexcept(false) {
  TlsState& t = tls();
  --t.depth;
  if (std::uncaught_exceptions() > unwind_baseline_) {
    // Unwinding: running deferred ops could throw a second exception and
    // terminate. Pending work is discarded — visibly.
    if (!t.pending.empty()) {
      flightrec::record(flightrec::EventKind::kFusionPlan, "discard",
                        static_cast<std::uint64_t>(t.pending.size()), 0);
      t.pending.clear();
      t.involved.clear();
    }
    return;
  }
  wait();
}

namespace detail {

bool try_defer(const Matrix& target, const MatrixMaskArg& mask,
               const std::optional<Accumulator>& accum, bool replace,
               std::shared_ptr<const ExprNode> node) {
  if (mask.kind != MatrixMaskArg::Kind::kNone) return false;
  PendingOp op;
  op.is_vector = false;
  op.mt = target;
  op.accum = accum;
  op.replace = replace;
  op.node = std::move(node);
  return defer_common(std::move(op));
}

bool try_defer(const Vector& target, const VectorMaskArg& mask,
               const std::optional<Accumulator>& accum, bool replace,
               std::shared_ptr<const ExprNode> node) {
  if (mask.kind != VectorMaskArg::Kind::kNone) return false;
  PendingOp op;
  op.is_vector = true;
  op.vt = target;
  op.accum = accum;
  op.replace = replace;
  op.node = std::move(node);
  return defer_common(std::move(op));
}

void sync_point() {
  TlsState& t = tls();
  if (t.in_flush || t.pending.empty()) return;
  flush_tls();
}

void sync_read(const void* raw) {
  TlsState& t = tls();
  if (t.in_flush || t.pending.empty()) return;
  if (t.involved.count(raw) != 0) flush_tls();
}

void sync_write(const void* raw) {
  TlsState& t = tls();
  if (!t.in_flush && !t.pending.empty() && t.involved.count(raw) != 0) {
    flush_tls();
  }
  snapshot_exprs_for(raw);
}

void register_expr(const std::shared_ptr<ExprNode>& node) {
  if (!node) return;
  auto& reg = expr_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for_each_operand(*node, [&](const void* raw) {
    auto& bucket = reg.by_raw[raw];
    if (bucket.size() >= 8) {
      bucket.erase(std::remove_if(bucket.begin(), bucket.end(),
                                  [](const std::weak_ptr<ExprNode>& w) {
                                    return w.expired();
                                  }),
                   bucket.end());
    }
    bucket.push_back(node);
  });
}

void snapshot_exprs_for(const void* raw) {
  auto& reg = expr_registry();
  std::vector<std::shared_ptr<ExprNode>> live;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    auto it = reg.by_raw.find(raw);
    if (it == reg.by_raw.end()) return;
    live.reserve(it->second.size());
    for (const auto& w : it->second) {
      if (auto n = w.lock()) live.push_back(std::move(n));
    }
    reg.by_raw.erase(it);
  }
  // Copy-on-write: the about-to-change operand is replaced by a private
  // snapshot so the expression keeps observing build-time values.
  for (const auto& n : live) {
    if (n->ma && n->ma->raw() == raw) n->ma = n->ma->dup();
    if (n->mb && n->mb->raw() == raw) n->mb = n->mb->dup();
    if (n->va && n->va->raw() == raw) n->va = n->va->dup();
    if (n->vb && n->vb->raw() == raw) n->vb = n->vb->dup();
  }
}

}  // namespace detail

}  // namespace pygb::fusion
