// pygb/jit/breaker.hpp — per-key circuit breaker for the JIT build path.
//
// A key whose compile keeps failing must not tax every caller with a full
// (deadline-bounded, but still expensive) compile attempt per dispatch.
// The registry consults this breaker before reaching for the JIT in kAuto
// mode; the classic three-state machine applies, per dispatch key:
//
//   CLOSED     builds allowed. Failures increment a consecutive counter;
//              reaching the threshold (PYGB_BREAKER_THRESHOLD, default 3)
//              OPENs the circuit for a TTL.
//   OPEN       builds short-circuit (kAuto goes straight to the
//              interpreter; compiled-only requests fail fast with the
//              recorded cause). After the TTL (PYGB_BREAKER_TTL_MS,
//              default 15s) the next caller transitions to HALF-OPEN.
//   HALF-OPEN  exactly ONE caller gets a probe build; everyone else keeps
//              short-circuiting. Probe success closes the circuit; probe
//              failure re-opens it for another TTL.
//
// Failure CLASS matters (see subprocess.hpp's transient classification):
//
//   * permanent — the compiler deterministically rejected the generated
//     source (a codegen bug, a broken toolchain). Retrying cannot help:
//     the circuit opens IMMEDIATELY and never half-opens. This subsumes
//     the registry's old `failed_jit_keys_` negative cache.
//   * transient — timeout, OOM-kill, spawn failure, tmpdir-full. The key
//     is not doomed; failures count toward the threshold and an open
//     circuit heals through the half-open probe.
//
// Accounting discipline: exactly one on_success/on_failure per BUILD
// attempt (the in-flight leader reports; coalesced waiters receiving the
// leader's result must not, or one hang would be counted N times).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace pygb::jit {

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

const char* to_string(BreakerState s) noexcept;

class CircuitBreaker {
 public:
  struct Config {
    int failure_threshold = 3;  ///< consecutive failures before opening
    int open_ttl_ms = 15000;    ///< open duration before a half-open probe
  };
  /// PYGB_BREAKER_THRESHOLD / PYGB_BREAKER_TTL_MS, with the defaults above.
  static Config config_from_env();

  explicit CircuitBreaker(Config cfg) : cfg_(cfg) {}
  CircuitBreaker() : CircuitBreaker(config_from_env()) {}

  enum class Decision : std::uint8_t {
    kAllow,         ///< closed: build normally
    kProbe,         ///< half-open: this caller carries the probe
    kShortCircuit,  ///< open (or probe already claimed): skip the JIT
  };

  /// Gate one build attempt for `key`. kProbe claims the half-open probe
  /// slot; the claimer MUST later report on_success or on_failure (the
  /// slot is released either way).
  Decision acquire(const std::string& key);

  /// Report a completed build attempt (leader only — never waiters).
  void on_success(const std::string& key);
  void on_failure(const std::string& key, bool transient,
                  const std::string& cause);

  BreakerState state(const std::string& key) const;
  /// Why the circuit is open — folded into fail-fast error messages.
  std::string describe(const std::string& key) const;

  /// Forget everything (cache clears; a new compiler may work) and
  /// re-read the PYGB_BREAKER_* knobs.
  void reset();

 private:
  using Clock = std::chrono::steady_clock;

  struct KeyState {
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    bool permanent = false;       ///< never half-opens
    bool probe_inflight = false;  ///< half-open slot claimed
    Clock::time_point open_until{};
    std::string cause;  ///< last failure description
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, KeyState> keys_;
  Config cfg_;
};

}  // namespace pygb::jit
