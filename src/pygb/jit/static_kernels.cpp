// Build-time kernel registration: umbrella + the whole-algorithm kernels.
#include "pygb/jit/static_kernels.hpp"

namespace pygb::jit {

void register_static_kernels(Registry& registry) {
  static_reg::register_mxm(registry);
  static_reg::register_mxv_vxm(registry);
  static_reg::register_ewise(registry);
  static_reg::register_apply_reduce(registry);
  static_reg::register_assign_extract(registry);
  static_reg::register_algorithms(registry);
}

namespace static_reg {

namespace {

template <typename CT, typename AT>
void reg_algos(Registry& r) {
  {
    OpRequest req;
    req.func = func::kAlgoBfs;
    req.c = dtype_of<CT>();
    req.a = dtype_of<AT>();
    req.b = DType::kBool;
    r.register_static(req.key(), &run_algo_bfs<CT, AT>);
  }
  {
    OpRequest req;
    req.func = func::kAlgoTriangleCount;
    req.c = dtype_of<CT>();
    req.a = dtype_of<AT>();
    r.register_static(req.key(), &run_algo_tc<CT, AT>);
  }
  {
    OpRequest req;
    req.func = func::kAlgoConnectedComponents;
    req.c = dtype_of<CT>();
    req.a = dtype_of<AT>();
    r.register_static(req.key(), &run_algo_cc<CT, AT>);
  }
}

template <typename CT, typename AT>
void reg_float_algos(Registry& r) {
  {
    OpRequest req;
    req.func = func::kAlgoSssp;
    req.c = dtype_of<CT>();
    req.a = dtype_of<AT>();
    r.register_static(req.key(), &run_algo_sssp<CT, AT>);
  }
  {
    OpRequest req;
    req.func = func::kAlgoPagerank;
    req.c = dtype_of<CT>();
    req.a = dtype_of<AT>();
    r.register_static(req.key(), &run_algo_pagerank<CT, AT>);
  }
}

}  // namespace

void register_algorithms(Registry& r) {
  reg_algos<std::int64_t, double>(r);
  reg_algos<std::int64_t, std::int64_t>(r);
  reg_algos<std::int64_t, bool>(r);
  reg_algos<std::int32_t, double>(r);
  reg_float_algos<double, double>(r);
  reg_float_algos<double, std::int64_t>(r);
  reg_float_algos<float, float>(r);
}

}  // namespace static_reg

}  // namespace pygb::jit
