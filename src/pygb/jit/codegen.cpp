#include "pygb/jit/codegen.hpp"

#include <sstream>
#include <stdexcept>

#include "pygb/jit/cache.hpp"

namespace pygb::jit {

namespace {

std::string ct(const OpRequest& r) { return cpp_name(r.c); }
std::string at(const OpRequest& r) {
  if (!r.a) throw std::invalid_argument("codegen: request lacks A dtype");
  return cpp_name(*r.a);
}
std::string bt(const OpRequest& r) {
  if (!r.b) throw std::invalid_argument("codegen: request lacks B dtype");
  return cpp_name(*r.b);
}

std::string binop_tpl(BinaryOpName op) {
  return std::string("gbtl::") + to_string(op);
}

std::string bool_lit(bool b) { return b ? "true" : "false"; }

/// Escape an arbitrary string into a C++ string literal body.
std::string cpp_string_escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// The exported verification symbol (empty stamp → none, for unit tests
/// exercising bare codegen). The payload carries the kStampMarker prefix
/// so load_kernel can find it by scanning the file before dlopen.
std::string stamp_symbol_def(const std::string& stamp) {
  if (stamp.empty()) return {};
  return "\nextern \"C\" const char pygb_module_stamp[] = \"" +
         cpp_string_escaped(std::string(kStampMarker) + stamp) + "\";\n";
}

std::string mask_kind_expr(MaskKind mk) {
  switch (mk) {
    case MaskKind::kNone:
      return "pygb::jit::MaskKind::kNone";
    case MaskKind::kMatrix:
      return "pygb::jit::MaskKind::kMatrix";
    case MaskKind::kMatrixComp:
      return "pygb::jit::MaskKind::kMatrixComp";
    case MaskKind::kVector:
      return "pygb::jit::MaskKind::kVector";
    case MaskKind::kVectorComp:
      return "pygb::jit::MaskKind::kVectorComp";
  }
  throw std::invalid_argument("codegen: corrupt mask kind");
}

/// Identity provider: named limits map to the shared providers; explicit
/// values get a module-local provider emitting the literal. `aux` collects
/// module-local struct definitions.
std::string identity_provider(const MonoidIdentity& id, std::ostringstream& aux,
                              int& aux_counter) {
  switch (id.kind()) {
    case MonoidIdentity::Kind::kMaxLimit:
      return "pygb::jit::IdMaxLimit";
    case MonoidIdentity::Kind::kLowestLimit:
      return "pygb::jit::IdLowestLimit";
    case MonoidIdentity::Kind::kValue: {
      const Scalar& v = id.value();
      const std::string name = "ModuleId" + std::to_string(aux_counter++);
      aux << "struct " << name << " {\n"
          << "  template <typename T>\n"
          << "  static constexpr T value() {\n"
          << "    return static_cast<T>(";
      if (is_floating(v.dtype())) {
        aux << v.to_double();
      } else {
        aux << v.to_int64() << "LL";
      }
      aux << ");\n  }\n};\n";
      return name;
    }
  }
  throw std::invalid_argument("codegen: corrupt identity kind");
}

std::string semiring_type(const OpRequest& r, std::ostringstream& aux,
                          int& aux_counter) {
  if (!r.semiring) throw std::invalid_argument("codegen: missing semiring");
  const Semiring& sr = *r.semiring;
  const std::string id =
      identity_provider(sr.add().identity(), aux, aux_counter);
  std::ostringstream os;
  os << "pygb::jit::GenericSemiring<" << at(r) << ", " << bt(r) << ", "
     << ct(r) << ", " << binop_tpl(sr.add().op().name()) << ", " << id
     << ", " << binop_tpl(sr.mult().name()) << ">";
  return os.str();
}

std::string monoid_type(const OpRequest& r, std::ostringstream& aux,
                        int& aux_counter) {
  if (!r.monoid) throw std::invalid_argument("codegen: missing monoid");
  const std::string id =
      identity_provider(r.monoid->identity(), aux, aux_counter);
  std::ostringstream os;
  os << "pygb::jit::GenericMonoid<" << ct(r) << ", "
     << binop_tpl(r.monoid->op().name()) << ", " << id << ">";
  return os.str();
}

std::string accum_type(const OpRequest& r) {
  if (!r.accum) return "gbtl::NoAccumulate";
  return binop_tpl(r.accum->name()) + "<" + ct(r) + ">";
}

/// Emit the definition of a user-defined binary operator struct (§VIII)
/// and return its name. The expression sees `a`, `b`, and the output
/// element type `C`.
std::string user_binary_struct(const UserBinaryOp& op,
                               std::ostringstream& aux) {
  const std::string name = "UserBinary_" + op.name();
  aux << "template <typename A, typename B, typename C>\n"
      << "struct " << name << " {\n"
      << "  constexpr C operator()(const A& a, const B& b) const {\n"
      << "    return static_cast<C>((" << op.expr() << "));\n"
      << "  }\n};\n";
  return name;
}

/// Same for a unary operator; the expression sees `a` and `C`.
std::string user_unary_struct(const UserUnaryOp& op,
                              std::ostringstream& aux) {
  const std::string name = "UserUnary_" + op.name();
  aux << "template <typename A, typename C>\n"
      << "struct " << name << " {\n"
      << "  constexpr C operator()(const A& a) const {\n"
      << "    return static_cast<C>((" << op.expr() << "));\n"
      << "  }\n};\n";
  return name;
}

std::string unary_maker(const OpRequest& r, std::ostringstream& aux) {
  if (r.user_unary) {
    return "pygb::jit::PlainUnary<" + user_unary_struct(*r.user_unary, aux) +
           ">";
  }
  if (!r.unary_op) throw std::invalid_argument("codegen: missing unary op");
  const UnaryOp& f = *r.unary_op;
  if (f.is_bound()) {
    return "pygb::jit::BoundSecond<" + binop_tpl(f.bound_op()) + ">";
  }
  return std::string("pygb::jit::PlainUnary<gbtl::") +
         to_string(f.unary_name()) + ">";
}

std::string ewise_op_tpl(const OpRequest& r, std::ostringstream& aux) {
  if (r.user_binary) return user_binary_struct(*r.user_binary, aux);
  if (!r.binary_op) throw std::invalid_argument("codegen: missing binary op");
  return binop_tpl(r.binary_op->name());
}

// ---------------------------------------------------------------------------
// Fused-chain generation (§V's planned lazy-evaluation feature): one
// translation unit executing every recorded statement back to back, with
// intermediate results flowing through the bound containers — no dispatch
// between steps.
// ---------------------------------------------------------------------------

std::string chain_semiring_type(const ChainStatement& st,
                                const FusedChainDesc& chain,
                                std::ostringstream& aux, int& aux_counter) {
  const std::string at = cpp_name(chain.params[st.a].dtype);
  const std::string btn = cpp_name(chain.params[st.b].dtype);
  const std::string ctn = cpp_name(chain.params[st.target].dtype);
  const std::string id =
      identity_provider(st.semiring->add().identity(), aux, aux_counter);
  return "pygb::jit::GenericSemiring<" + at + ", " + btn + ", " + ctn +
         ", " + binop_tpl(st.semiring->add().op().name()) + ", " + id +
         ", " + binop_tpl(st.semiring->mult().name()) + ">";
}

std::string chain_accum_expr(const ChainStatement& st,
                             const FusedChainDesc& chain) {
  if (!st.accum) return "gbtl::NoAccumulate{}";
  return binop_tpl(st.accum->name()) + "<" +
         cpp_name(chain.params[st.target].dtype) + ">{}";
}

std::string chain_operand(const FusedChainDesc& chain, int idx,
                          bool transposed) {
  std::string ref = "p" + std::to_string(idx);
  (void)chain;
  return transposed ? "gbtl::transpose(" + ref + ")" : ref;
}

std::string generate_chain_source(const FusedChainDesc& chain,
                                  const std::string& stamp) {
  std::ostringstream aux;
  std::ostringstream body;
  int aux_counter = 0;

  // Parameter bindings.
  for (std::size_t i = 0; i < chain.params.size(); ++i) {
    const ChainParam& p = chain.params[i];
    const std::string idx = std::to_string(i);
    switch (p.kind) {
      case ChainParam::Kind::kMatrix:
        body << "  auto& p" << idx << " = *static_cast<gbtl::Matrix<"
             << cpp_name(p.dtype)
             << ">*>(const_cast<void*>(args->chain_ptrs[" << idx
             << "]));  // " << p.name << "\n";
        break;
      case ChainParam::Kind::kVector:
        body << "  auto& p" << idx << " = *static_cast<gbtl::Vector<"
             << cpp_name(p.dtype)
             << ">*>(const_cast<void*>(args->chain_ptrs[" << idx
             << "]));  // " << p.name << "\n";
        break;
      case ChainParam::Kind::kScalar:
        body << "  const double s" << idx << " = args->chain_scalars["
             << idx << "];  // " << p.name << "\n";
        break;
    }
  }
  body << "\n";

  for (const ChainStatement& st : chain.statements) {
    const std::string tgt = "p" + std::to_string(st.target);
    const std::string ctn =
        st.target >= 0 ? cpp_name(chain.params[st.target].dtype) : "double";
    const std::string acc = chain_accum_expr(st, chain);

    if (st.func == func::kVxM) {
      body << "  gbtl::vxm(" << tgt << ", gbtl::NoMask{}, " << acc << ", "
           << chain_semiring_type(st, chain, aux, aux_counter) << "{}, "
           << chain_operand(chain, st.a, false) << ", "
           << chain_operand(chain, st.b, st.b_transposed) << ");\n";
    } else if (st.func == func::kMxV) {
      body << "  gbtl::mxv(" << tgt << ", gbtl::NoMask{}, " << acc << ", "
           << chain_semiring_type(st, chain, aux, aux_counter) << "{}, "
           << chain_operand(chain, st.a, st.a_transposed) << ", "
           << chain_operand(chain, st.b, false) << ");\n";
    } else if (st.func == func::kMxM) {
      body << "  gbtl::mxm(" << tgt << ", gbtl::NoMask{}, " << acc << ", "
           << chain_semiring_type(st, chain, aux, aux_counter) << "{}, "
           << chain_operand(chain, st.a, st.a_transposed) << ", "
           << chain_operand(chain, st.b, st.b_transposed) << ");\n";
    } else if (st.func == func::kEWiseAddVV || st.func == func::kEWiseAddMM ||
               st.func == func::kEWiseMultVV ||
               st.func == func::kEWiseMultMM) {
      const bool is_add =
          st.func == func::kEWiseAddVV || st.func == func::kEWiseAddMM;
      const std::string at = cpp_name(chain.params[st.a].dtype);
      const std::string btn = cpp_name(chain.params[st.b].dtype);
      body << "  gbtl::" << (is_add ? "eWiseAdd" : "eWiseMult") << "("
           << tgt << ", gbtl::NoMask{}, " << acc << ", "
           << binop_tpl(st.binary_op->name()) << "<" << at << ", " << btn
           << ", " << ctn << ">{}, " << chain_operand(chain, st.a, false)
           << ", " << chain_operand(chain, st.b, false) << ");\n";
    } else if (st.func == func::kApplyV || st.func == func::kApplyM) {
      const std::string at = cpp_name(chain.params[st.a].dtype);
      std::string f;
      if (st.bound_op) {
        f = "gbtl::BinaryOpBind2nd<" + ctn + ", " +
            binop_tpl(st.bound_op->name()) + "<" + ctn +
            ">>(static_cast<" + ctn + ">(s" + std::to_string(st.scalar) +
            "))";
      } else {
        f = std::string("gbtl::") + to_string(*st.plain_unary) + "<" + at +
            ", " + ctn + ">{}";
      }
      body << "  gbtl::apply(" << tgt << ", gbtl::NoMask{}, " << acc
           << ", " << f << ", " << chain_operand(chain, st.a, false)
           << ");\n";
    } else if (st.func == func::kAssignVS) {
      body << "  gbtl::assign(" << tgt << ", gbtl::NoMask{}, " << acc
           << ", static_cast<" << ctn << ">(s" << std::to_string(st.scalar)
           << "), gbtl::AllIndices{});\n";
    } else if (st.func == func::kReduceVS) {
      const std::string at = cpp_name(chain.params[st.a].dtype);
      const std::string id =
          identity_provider(st.monoid->identity(), aux, aux_counter);
      body << "  {\n    " << at << " acc_{};\n"
           << "    gbtl::reduce(acc_, gbtl::NoAccumulate{}, "
           << "pygb::jit::GenericMonoid<" << at << ", "
           << binop_tpl(st.monoid->op().name()) << ", " << id << ">{}, "
           << chain_operand(chain, st.a, false) << ");\n"
           << "    pygb::jit::write_scalar_out(args, acc_);\n  }\n";
    } else {
      throw std::invalid_argument("codegen: unsupported chain statement '" +
                                  st.func + "'");
    }
  }

  std::ostringstream src;
  src << "// Generated by pygb::jit (fused chain) for signature:\n"
      << "//   " << chain.signature() << "\n"
      << "#include \"pygb/jit/glue.hpp\"\n\n"
      << aux.str() << "\n"
      << "extern \"C\" void pygb_kernel(const pygb::jit::KernelArgs* args) "
         "{\n"
      << body.str() << "}\n"
      << stamp_symbol_def(stamp);
  return src.str();
}

}  // namespace

std::string generate_source(const OpRequest& req, const std::string& stamp) {
  if (req.chain) return generate_chain_source(*req.chain, stamp);
  std::ostringstream aux;   // module-local helper structs
  std::ostringstream inst;  // the run_* instantiation expression
  int aux_counter = 0;
  const std::string mk = mask_kind_expr(req.mask);
  const std::string acc = accum_type(req);

  const std::string& f = req.func;
  if (f == func::kMxM) {
    inst << "pygb::jit::run_mxm<" << ct(req) << ", " << at(req) << ", "
         << bt(req) << ", " << semiring_type(req, aux, aux_counter) << ", "
         << bool_lit(req.a_transposed) << ", " << bool_lit(req.b_transposed)
         << ", " << mk << ", " << acc << ">";
  } else if (f == func::kMxV) {
    inst << "pygb::jit::run_mxv<" << ct(req) << ", " << at(req) << ", "
         << bt(req) << ", " << semiring_type(req, aux, aux_counter) << ", "
         << bool_lit(req.a_transposed) << ", " << mk << ", " << acc << ">";
  } else if (f == func::kVxM) {
    inst << "pygb::jit::run_vxm<" << ct(req) << ", " << at(req) << ", "
         << bt(req) << ", " << semiring_type(req, aux, aux_counter) << ", "
         << bool_lit(req.b_transposed) << ", " << mk << ", " << acc << ">";
  } else if (f == func::kEWiseAddMM || f == func::kEWiseMultMM) {
    inst << "pygb::jit::run_ewise_mm<" << ct(req) << ", " << at(req) << ", "
         << bt(req) << ", " << ewise_op_tpl(req, aux) << ", "
         << bool_lit(f == func::kEWiseAddMM) << ", "
         << bool_lit(req.a_transposed) << ", " << bool_lit(req.b_transposed)
         << ", " << mk << ", " << acc << ">";
  } else if (f == func::kEWiseAddVV || f == func::kEWiseMultVV) {
    inst << "pygb::jit::run_ewise_vv<" << ct(req) << ", " << at(req) << ", "
         << bt(req) << ", " << ewise_op_tpl(req, aux) << ", "
         << bool_lit(f == func::kEWiseAddVV) << ", " << mk << ", " << acc
         << ">";
  } else if (f == func::kApplyM) {
    inst << "pygb::jit::run_apply_m<" << ct(req) << ", " << at(req) << ", "
         << unary_maker(req, aux) << ", " << bool_lit(req.a_transposed) << ", "
         << mk << ", " << acc << ">";
  } else if (f == func::kApplyV) {
    inst << "pygb::jit::run_apply_v<" << ct(req) << ", " << at(req) << ", "
         << unary_maker(req, aux) << ", " << mk << ", " << acc << ">";
  } else if (f == func::kReduceMS) {
    inst << "pygb::jit::run_reduce_m_s<" << ct(req) << ", " << at(req)
         << ", " << monoid_type(req, aux, aux_counter) << ", "
         << bool_lit(req.a_transposed) << ", " << acc << ">";
  } else if (f == func::kReduceVS) {
    inst << "pygb::jit::run_reduce_v_s<" << ct(req) << ", " << at(req)
         << ", " << monoid_type(req, aux, aux_counter) << ", " << acc << ">";
  } else if (f == func::kReduceMV) {
    inst << "pygb::jit::run_reduce_m_v<" << ct(req) << ", " << at(req)
         << ", " << monoid_type(req, aux, aux_counter) << ", "
         << bool_lit(req.a_transposed) << ", " << mk << ", " << acc << ">";
  } else if (f == func::kAssignMM) {
    inst << "pygb::jit::run_assign_mm<" << ct(req) << ", " << at(req) << ", "
         << mk << ", " << acc << ">";
  } else if (f == func::kAssignMS) {
    inst << "pygb::jit::run_assign_ms<" << ct(req) << ", " << mk << ", "
         << acc << ">";
  } else if (f == func::kAssignVV) {
    inst << "pygb::jit::run_assign_vv<" << ct(req) << ", " << at(req) << ", "
         << mk << ", " << acc << ">";
  } else if (f == func::kAssignVS) {
    inst << "pygb::jit::run_assign_vs<" << ct(req) << ", " << mk << ", "
         << acc << ">";
  } else if (f == func::kExtractMM) {
    inst << "pygb::jit::run_extract_mm<" << ct(req) << ", " << at(req)
         << ", " << mk << ", " << acc << ">";
  } else if (f == func::kExtractVV) {
    inst << "pygb::jit::run_extract_vv<" << ct(req) << ", " << at(req)
         << ", " << mk << ", " << acc << ">";
  } else if (f == func::kTransposeM) {
    inst << "pygb::jit::run_transpose_m<" << ct(req) << ", " << at(req)
         << ", " << bool_lit(req.a_transposed) << ", " << mk << ", " << acc
         << ">";
  } else if (f == func::kAlgoBfs) {
    inst << "pygb::jit::run_algo_bfs<" << ct(req) << ", " << at(req) << ">";
  } else if (f == func::kAlgoSssp) {
    inst << "pygb::jit::run_algo_sssp<" << ct(req) << ", " << at(req) << ">";
  } else if (f == func::kAlgoPagerank) {
    inst << "pygb::jit::run_algo_pagerank<" << ct(req) << ", " << at(req)
         << ">";
  } else if (f == func::kAlgoTriangleCount) {
    inst << "pygb::jit::run_algo_tc<" << ct(req) << ", " << at(req) << ">";
  } else if (f == func::kAlgoConnectedComponents) {
    inst << "pygb::jit::run_algo_cc<" << ct(req) << ", " << at(req) << ">";
  } else {
    throw std::invalid_argument("codegen: unknown func '" + f + "'");
  }

  std::ostringstream src;
  src << "// Generated by pygb::jit for key:\n"
      << "//   " << req.key() << "\n"
      << "#include \"pygb/jit/glue.hpp\"\n\n"
      << aux.str() << "\n"
      << "extern \"C\" void pygb_kernel(const pygb::jit::KernelArgs* args) "
         "{\n"
      << "  " << inst.str() << "(args);\n"
      << "}\n"
      << stamp_symbol_def(stamp);
  return src.str();
}

}  // namespace pygb::jit
