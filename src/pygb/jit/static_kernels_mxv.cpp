// Build-time registrations: mxv and vxm (vector mask kinds).
#include "pygb/jit/static_kernels.hpp"

namespace pygb::jit::static_reg {

namespace {

template <typename CT, typename AT, typename BT, typename Sr, typename Acc,
          bool ATr, MaskKind MK>
void reg_mxv_one(Registry& r) {
  OpRequest req;
  req.func = func::kMxV;
  req.c = dtype_of<CT>();
  req.a = dtype_of<AT>();
  req.b = dtype_of<BT>();
  req.a_transposed = ATr;
  req.mask = MK;
  req.semiring = Sr::descriptor();
  req.accum = Acc::descriptor();
  r.register_static(
      req.key(),
      &run_mxv<CT, AT, BT, typename Sr::template type<AT, BT, CT>, ATr, MK,
               typename Acc::template type<CT>>);
}

template <typename CT, typename AT, typename BT, typename Sr, typename Acc,
          bool BTr, MaskKind MK>
void reg_vxm_one(Registry& r) {
  OpRequest req;
  req.func = func::kVxM;
  req.c = dtype_of<CT>();
  req.a = dtype_of<AT>();
  req.b = dtype_of<BT>();
  req.b_transposed = BTr;
  req.mask = MK;
  req.semiring = Sr::descriptor();
  req.accum = Acc::descriptor();
  r.register_static(
      req.key(),
      &run_vxm<CT, AT, BT, typename Sr::template type<AT, BT, CT>, BTr, MK,
               typename Acc::template type<CT>>);
}

template <typename CT, typename AT, typename BT, typename Sr, typename Acc,
          bool Tr>
void reg_mv_masks(Registry& r) {
  reg_mxv_one<CT, AT, BT, Sr, Acc, Tr, MaskKind::kNone>(r);
  reg_mxv_one<CT, AT, BT, Sr, Acc, Tr, MaskKind::kVector>(r);
  reg_mxv_one<CT, AT, BT, Sr, Acc, Tr, MaskKind::kVectorComp>(r);
  reg_vxm_one<CT, BT, AT, Sr, Acc, Tr, MaskKind::kNone>(r);
  reg_vxm_one<CT, BT, AT, Sr, Acc, Tr, MaskKind::kVector>(r);
  reg_vxm_one<CT, BT, AT, Sr, Acc, Tr, MaskKind::kVectorComp>(r);
}

template <typename T, typename Sr, typename Acc>
void reg_mv_full(Registry& r) {
  reg_mv_masks<T, T, T, Sr, Acc, false>(r);
  reg_mv_masks<T, T, T, Sr, Acc, true>(r);
}

}  // namespace

void register_mxv_vxm(Registry& r) {
  for_types(DtCore{}, [&](auto tag) {
    using T = typename decltype(tag)::type;
    // Realistic semiring/accumulator pairings from the paper's algorithms.
    reg_mv_full<T, SrArithmetic, AccNone>(r);
    reg_mv_full<T, SrArithmetic, AccPlus>(r);
    reg_mv_full<T, SrArithmetic, AccSecond>(r);
    reg_mv_full<T, SrLogical, AccNone>(r);
    reg_mv_full<T, SrMinPlus, AccNone>(r);
    reg_mv_full<T, SrMinPlus, AccMin>(r);
    reg_mv_full<T, SrMinSelect2nd, AccMin>(r);
  });
  // Heterogeneous BFS frontier expansion: boolean frontier over a weighted
  // graph (c = bool, a = graph dtype, b = bool) under the logical semiring.
  for_types(TypeList<std::int32_t, std::int64_t, float, double>{},
            [&](auto tag) {
              using AT = typename decltype(tag)::type;
              reg_mv_masks<bool, AT, bool, SrLogical, AccNone, true>(r);
              reg_mv_masks<bool, AT, bool, SrLogical, AccNone, false>(r);
            });
  // float / int32 cores without the full sweep.
  reg_mv_full<float, SrArithmetic, AccNone>(r);
  reg_mv_full<std::int32_t, SrArithmetic, AccNone>(r);
}

}  // namespace pygb::jit::static_reg
