#include "pygb/jit/cache.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string_view>
#include <thread>
#include <vector>

#include "pygb/jit/compiler.hpp"
#include "pygb/jit/registry.hpp"
#include "pygb/jit/subprocess.hpp"
#include "pygb/obs/obs.hpp"

namespace pygb::jit {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kTmpSuffix = ".tmp";
constexpr std::string_view kLogSuffix = ".log";
constexpr std::string_view kBadSuffix = ".bad";

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace

std::string cache_stamp() {
  return "pygb-cache-v" + std::to_string(kCacheSchemaVersion) + "|" +
         compiler_identity() + "|" + compile_flags() + "|include=" +
         source_include_dir();
}

std::string module_stamp(const std::string& key) {
  return cache_stamp() + "|key=" + key;
}

std::string module_stem(const std::string& key) {
  return "pygb_" + hex64(key_hash(key)) + "_" + hex64(key_hash(cache_stamp()));
}

std::uint64_t cache_max_bytes() {
  const char* v = std::getenv("PYGB_CACHE_MAX_BYTES");
  if (v == nullptr || *v == '\0') return 0;
  return std::strtoull(v, nullptr, 10);
}

bool quarantine_module(const std::string& so_path) {
  std::error_code ec;
  const fs::path bad(so_path + std::string(kBadSuffix));
  fs::rename(so_path, bad, ec);
  if (!ec) return true;
  fs::remove(so_path, ec);
  return !fs::exists(so_path, ec);
}

std::chrono::hours cache_hygiene_horizon() {
  const char* v = std::getenv("PYGB_CACHE_HYGIENE_HOURS");
  if (v == nullptr || *v == '\0') return std::chrono::hours(1);
  const long parsed = std::strtol(v, nullptr, 10);
  return std::chrono::hours(parsed < 1 ? 1 : parsed);
}

std::size_t clean_cache_litter(const std::string& dir) {
  std::error_code ec;
  std::size_t removed = 0;
  const auto now = fs::file_time_type::clock::now();
  const auto stale_age = cache_hygiene_horizon();
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (!ends_with(name, kTmpSuffix) && !ends_with(name, kLogSuffix) &&
        !ends_with(name, kBadSuffix)) {
      continue;
    }
    const auto mtime = entry.last_write_time(ec);
    if (ec || now - mtime < stale_age) continue;
    if (fs::remove(entry.path(), ec) && !ec) ++removed;
  }
  return removed;
}

std::uint64_t enforce_cache_cap(const std::string& dir,
                                std::uint64_t max_bytes) {
  if (max_bytes == 0) return 0;
  std::error_code ec;

  struct Module {
    fs::path so;
    std::string stem;  ///< filename minus ".so": "pygb_<keyh>_<stamph>"
    fs::file_time_type mtime;
    std::uint64_t bytes = 0;    ///< every file carrying this stem
    std::vector<fs::path> files;  ///< the full stem family, .so included
  };
  std::vector<Module> modules;
  std::uint64_t total = 0;
  // Pass 1: find the published modules.
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::uint64_t sz = entry.file_size(ec);
    if (ec) continue;
    total += sz;
    if (entry.path().extension() == ".so") {
      Module m;
      m.so = entry.path();
      m.stem = entry.path().filename().string();
      m.stem.resize(m.stem.size() - 3);  // drop ".so"
      m.mtime = entry.last_write_time(ec);
      modules.push_back(std::move(m));
    }
  }
  if (total <= max_bytes || modules.size() <= 1) return 0;

  // Pass 2: attribute EVERY file to its stem family — not just the
  // .cpp/.srcmap siblings but also .lock, .so.log, .so.bad, and orphaned
  // .so.<pid>.tmp outputs. Evicting only the "known" extensions used to
  // strand those sidecars forever: the cap would then fill with
  // unevictable litter and thrash the actual modules. Stems are unique
  // hex pairs, so a "<stem>." prefix match cannot cross families.
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::uint64_t sz = entry.file_size(ec);
    if (ec) continue;
    const std::string name = entry.path().filename().string();
    for (Module& m : modules) {
      if (name.size() > m.stem.size() + 1 &&
          name.compare(0, m.stem.size(), m.stem) == 0 &&
          name[m.stem.size()] == '.') {
        m.bytes += sz;
        m.files.push_back(entry.path());
        break;
      }
    }
  }

  std::sort(modules.begin(), modules.end(),
            [](const Module& a, const Module& b) { return a.mtime < b.mtime; });
  std::uint64_t evicted = 0;
  // Oldest first; the newest module (back of the sorted list) is never
  // evicted — it is usually the one the caller just published. The whole
  // family goes together (a stale .lock is safe to drop: flock lives on
  // the inode, so a holder keeps its lock and the worst case is one
  // uncoalesced recompile of a module this pass already condemned).
  for (std::size_t i = 0; i + 1 < modules.size() && total - evicted > max_bytes;
       ++i) {
    for (const fs::path& p : modules[i].files) {
      const std::uint64_t sz = fs::file_size(p, ec);
      const std::uint64_t counted = ec ? 0 : sz;
      std::error_code rec;
      if (fs::remove(p, rec) && !rec) evicted += counted;
    }
  }
  return evicted;
}

CacheInfo cache_info(const std::string& dir) {
  CacheInfo info;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::uint64_t sz = entry.file_size(ec);
    if (!ec) info.total_bytes += sz;
    const std::string name = entry.path().filename().string();
    if (entry.path().extension() == ".so") {
      ++info.modules;
    } else if (ends_with(name, kBadSuffix)) {
      ++info.quarantined;
    } else if (ends_with(name, kLogSuffix)) {
      ++info.logs;
    }
  }
  return info;
}

int lock_timeout_ms() {
  const char* v = std::getenv("PYGB_LOCK_TIMEOUT_MS");
  if (v != nullptr && *v != '\0') {
    const long parsed = std::strtol(v, nullptr, 10);
    return parsed < 0 ? 0 : static_cast<int>(parsed);
  }
  return jit_timeout_ms() + 10000;
}

FileLock::FileLock(const std::string& path)
    : FileLock(path, lock_timeout_ms()) {}

FileLock::FileLock(const std::string& path, int timeout_ms) {
  fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd_ < 0) return;
  // Non-blocking attempts with backoff up to the deadline: a LIVE holder
  // wedged mid-compile (the crashed-holder case releases automatically
  // when its fd dies) must not wedge every peer process with it.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  int backoff_ms = 5;
  while (true) {
    if (::flock(fd_, LOCK_EX | LOCK_NB) == 0) {
      held_ = true;
      return;
    }
    if (errno != EWOULDBLOCK && errno != EINTR) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    if (timeout_ms != 0 && std::chrono::steady_clock::now() >= deadline) {
      // Deadline: keep the fd closed, report timed_out; the caller
      // proceeds with a private (uncoalesced) compile.
      timed_out_ = true;
      ::close(fd_);
      fd_ = -1;
      obs::counter_add(obs::Counter::kLockTimeouts);
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, 200);
  }
}

FileLock::~FileLock() {
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
}

}  // namespace pygb::jit
