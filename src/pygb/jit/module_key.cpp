#include "pygb/jit/module_key.hpp"

#include <sstream>

namespace pygb::jit {

const char* to_string(MaskKind mk) {
  switch (mk) {
    case MaskKind::kNone:
      return "none";
    case MaskKind::kMatrix:
      return "mat";
    case MaskKind::kMatrixComp:
      return "matc";
    case MaskKind::kVector:
      return "vec";
    case MaskKind::kVectorComp:
      return "vecc";
  }
  return "?";
}

std::string FusedChainDesc::signature() const {
  std::ostringstream os;
  os << "chain:" << name;
  for (const auto& p : params) {
    os << '|';
    switch (p.kind) {
      case ChainParam::Kind::kMatrix:
        os << 'M' << display_name(p.dtype);
        break;
      case ChainParam::Kind::kVector:
        os << 'V' << display_name(p.dtype);
        break;
      case ChainParam::Kind::kScalar:
        os << 'S' << display_name(p.dtype);
        break;
    }
  }
  if (!origin.empty()) os << "|o=" << origin;
  for (const auto& st : statements) {
    os << '|' << st.func << ':' << st.target << ',' << st.a << ',' << st.b
       << ',' << st.scalar << (st.a_transposed ? "T" : "")
       << (st.b_transposed ? "t" : "");
    if (st.semiring) os << ":sr=" << st.semiring->key();
    if (st.binary_op) os << ":op=" << st.binary_op->gbtl_name();
    if (st.plain_unary) os << ":f=" << to_string(*st.plain_unary);
    if (st.bound_op) os << ":bnd=" << st.bound_op->gbtl_name();
    if (st.monoid) os << ":mon=" << st.monoid->key();
    if (st.accum) os << ":acc=" << st.accum->gbtl_name();
  }
  return os.str();
}

std::string OpRequest::key() const {
  // The backend axis rides at the END of the key, and only when non-scalar:
  // scalar requests keep the exact pre-axis spelling, so module caches and
  // static-registry keys from before the axis existed remain valid. (`|b=`
  // is already the B-operand dtype token, hence `|be=`.)
  if (chain) {
    std::string sig = chain->signature();
    if (backend != gbtl::detail::Backend::kScalar) {
      sig += "|be=";
      sig += gbtl::detail::backend_name(backend);
    }
    return sig;
  }
  std::ostringstream os;
  os << func << "|c=" << display_name(c);
  if (a) os << "|a=" << display_name(*a) << (a_transposed ? "T" : "");
  if (b) os << "|b=" << display_name(*b) << (b_transposed ? "T" : "");
  os << "|m=" << to_string(mask);
  if (semiring) os << "|sr=" << semiring->key();
  if (monoid) os << "|mon=" << monoid->key();
  if (binary_op) os << "|op=" << binary_op->gbtl_name();
  if (unary_op) os << "|f=" << unary_op->structural_key();
  if (accum) os << "|acc=" << accum->gbtl_name();
  if (user_binary) os << "|op=" << user_binary->key();
  if (user_unary) os << "|f=" << user_unary->key();
  if (backend != gbtl::detail::Backend::kScalar) {
    os << "|be=" << gbtl::detail::backend_name(backend);
  }
  return os.str();
}

}  // namespace pygb::jit
