#include "pygb/jit/compiler.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>

#include "pygb/obs/obs.hpp"

#ifndef PYGB_SOURCE_INCLUDE_DIR
#define PYGB_SOURCE_INCLUDE_DIR ""
#endif

namespace pygb::jit {

namespace {

std::string env_or(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::string(v) : fallback;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Shell-quote a path (single quotes; embedded quotes escaped).
std::string quoted(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

}  // namespace

std::string compiler_command() { return env_or("PYGB_CXX", "g++"); }

std::string source_include_dir() {
  return env_or("PYGB_INCLUDE_DIR", PYGB_SOURCE_INCLUDE_DIR);
}

CompileResult compile_module(const std::string& source_path,
                             const std::string& output_path) {
  CompileResult result;
  const std::string log_path = output_path + ".log";
  std::ostringstream cmd;
  cmd << compiler_command() << " -std=c++20 -O2 -DNDEBUG -shared -fPIC"
      << " -I" << quoted(source_include_dir()) << ' ' << quoted(source_path)
      << " -o " << quoted(output_path) << " 2> " << quoted(log_path);

  obs::Span span("jit.compile");
  span.attr("source", source_path).attr("output", output_path);

  const auto start = std::chrono::steady_clock::now();
  const int rc = std::system(cmd.str().c_str());
  const auto end = std::chrono::steady_clock::now();
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.ok = (rc == 0);
  span.attr("ok", static_cast<std::int64_t>(result.ok ? 1 : 0));
  obs::record_value(
      "compile_ns",
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
              .count()));
  if (!result.ok) {
    result.log = "command: " + cmd.str() + "\n" + read_file(log_path);
  }
  return result;
}

bool compiler_available() {
  static std::once_flag probed;
  static bool available = false;
  std::call_once(probed, [] {
    const std::string cmd =
        compiler_command() + " --version > /dev/null 2>&1";
    available = (std::system(cmd.c_str()) == 0) &&
                !source_include_dir().empty();
  });
  return available;
}

}  // namespace pygb::jit
