#include "pygb/jit/compiler.hpp"

#include <sys/wait.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "pygb/obs/obs.hpp"

#ifndef PYGB_SOURCE_INCLUDE_DIR
#define PYGB_SOURCE_INCLUDE_DIR ""
#endif

namespace pygb::jit {

namespace {

std::string env_or(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::string(v) : fallback;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Shell-quote a path (single quotes; embedded quotes escaped).
std::string quoted(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

/// std::system returns a wait(2) status, not an exit code: decode it.
bool exited_zero(int rc) {
  return rc != -1 && WIFEXITED(rc) && WEXITSTATUS(rc) == 0;
}

std::string describe_status(int rc) {
  if (rc == -1) return "system() failed to launch a shell";
  if (WIFEXITED(rc)) {
    return "exit status " + std::to_string(WEXITSTATUS(rc));
  }
  if (WIFSIGNALED(rc)) {
    return "killed by signal " + std::to_string(WTERMSIG(rc));
  }
  return "unrecognized wait status " + std::to_string(rc);
}

/// Probe results keyed by what they depend on, so a PYGB_CXX /
/// PYGB_INCLUDE_DIR change mid-process re-probes (the old once_flag
/// cached the very first answer forever).
std::mutex g_probe_mu;
std::map<std::string, bool> g_available;       // "<cmd>\x1f<include dir>"
std::map<std::string, std::string> g_identity;  // "<cmd>"

}  // namespace

std::string compiler_command() { return env_or("PYGB_CXX", "g++"); }

std::string source_include_dir() {
  return env_or("PYGB_INCLUDE_DIR", PYGB_SOURCE_INCLUDE_DIR);
}

std::string compile_flags() {
  return "-std=c++20 -O2 -DNDEBUG -shared -fPIC";
}

CompileResult compile_module(const std::string& source_path,
                             const std::string& output_path) {
  CompileResult result;
  const std::string log_path = output_path + ".log";
  std::ostringstream cmd;
  cmd << compiler_command() << ' ' << compile_flags() << " -I"
      << quoted(source_include_dir()) << ' ' << quoted(source_path) << " -o "
      << quoted(output_path) << " 2> " << quoted(log_path);

  obs::Span span("jit.compile");
  span.attr("source", source_path).attr("output", output_path);

  const auto start = std::chrono::steady_clock::now();
  const int rc = std::system(cmd.str().c_str());
  const auto end = std::chrono::steady_clock::now();
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.ok = exited_zero(rc);
  span.attr("ok", static_cast<std::int64_t>(result.ok ? 1 : 0));
  obs::record_value(
      "compile_ns",
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
              .count()));
  std::error_code ec;
  if (result.ok) {
    std::filesystem::remove(log_path, ec);
  } else {
    result.log = "command: " + cmd.str() + "\ncompiler " +
                 describe_status(rc) + "\n" + read_file(log_path);
  }
  return result;
}

bool compiler_available() {
  const std::string include_dir = source_include_dir();
  const std::string key = compiler_command() + '\x1f' + include_dir;
  {
    std::lock_guard lock(g_probe_mu);
    if (auto it = g_available.find(key); it != g_available.end()) {
      return it->second;
    }
  }
  const std::string cmd = compiler_command() + " --version > /dev/null 2>&1";
  const bool available =
      exited_zero(std::system(cmd.c_str())) && !include_dir.empty();
  std::lock_guard lock(g_probe_mu);
  g_available.emplace(key, available);
  return available;
}

std::string compiler_identity() {
  const std::string cmd = compiler_command();
  {
    std::lock_guard lock(g_probe_mu);
    if (auto it = g_identity.find(cmd); it != g_identity.end()) {
      return it->second;
    }
  }
  std::string line;
  if (FILE* pipe = ::popen((cmd + " --version 2>/dev/null").c_str(), "r")) {
    char buf[256];
    if (std::fgets(buf, sizeof buf, pipe) != nullptr) line = buf;
    ::pclose(pipe);
  }
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.pop_back();
  }
  if (line.empty()) line = cmd;  // unprobeable: the command is the identity
  std::lock_guard lock(g_probe_mu);
  return g_identity.emplace(cmd, std::move(line)).first->second;
}

}  // namespace pygb::jit
