#include "pygb/jit/compiler.hpp"

#include <algorithm>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "pygb/faultinj.hpp"
#include "pygb/governor.hpp"
#include "pygb/jit/compile_service.hpp"
#include "pygb/jit/subprocess.hpp"
#include "pygb/obs/flightrec.hpp"
#include "pygb/obs/obs.hpp"

#ifndef PYGB_SOURCE_INCLUDE_DIR
#define PYGB_SOURCE_INCLUDE_DIR ""
#endif

namespace pygb::jit {

namespace {

std::string env_or(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::string(v) : fallback;
}

/// Render an argv for diagnostics. This string is NEVER executed — the
/// child is launched with execvp on the vector itself — so the quoting
/// here only has to be readable, not shell-correct.
std::string render_argv(const std::vector<std::string>& argv) {
  std::string out;
  for (const auto& arg : argv) {
    if (!out.empty()) out += ' ';
    if (arg.find(' ') != std::string::npos ||
        arg.find('\'') != std::string::npos) {
      out += '\'';
      out += arg;
      out += '\'';
    } else {
      out += arg;
    }
  }
  return out;
}

/// Probe results keyed by what they depend on, so a PYGB_CXX /
/// PYGB_INCLUDE_DIR change mid-process re-probes (the old once_flag
/// cached the very first answer forever).
std::mutex g_probe_mu;
std::map<std::string, bool> g_available;       // "<cmd>\x1f<include dir>"
std::map<std::string, std::string> g_identity;  // "<cmd>"

/// `<compiler> --version`, argv-based and deadline-bounded: a PYGB_CXX
/// pointing at a path with spaces probes correctly, and a compiler that
/// HANGS on --version is classified unavailable instead of wedging the
/// first dispatch that probes it.
RunOutcome probe_version(const std::string& command) {
  RunOptions opt;
  opt.argv = split_command(command);
  opt.argv.push_back("--version");
  opt.timeout_ms = 5000;
  opt.capture_stdout = true;
  return run_subprocess(opt);
}

}  // namespace

std::string compiler_command() { return env_or("PYGB_CXX", "g++"); }

std::string source_include_dir() {
  return env_or("PYGB_INCLUDE_DIR", PYGB_SOURCE_INCLUDE_DIR);
}

std::string compile_flags() {
  return "-std=c++20 -O2 -DNDEBUG -shared -fPIC";
}

namespace {

/// Compile deadline for this invocation: the configured JIT timeout,
/// clamped to whatever remains of the requesting context's whole-request
/// deadline (a governed request with 3s left must not start a 30s
/// compile — the fallback ladder should engage while the caller can still
/// use the answer).
int effective_compile_timeout_ms() {
  int timeout = jit_timeout_ms();
  const std::uint64_t remaining =
      governor::current_context().request_deadline_remaining_ms();
  if (remaining != 0) {
    const int rem = remaining > static_cast<std::uint64_t>(INT_MAX)
                        ? INT_MAX
                        : static_cast<int>(remaining);
    timeout = timeout <= 0 ? rem : std::min(timeout, rem);
  }
  return timeout;
}

}  // namespace

CompileResult compile_module(const std::string& source_path,
                             const std::string& output_path) {
  CompileResult result;
  const std::string log_path = output_path + ".log";
  const int timeout_ms = effective_compile_timeout_ms();

  // Persistent compile service first (PYGB_COMPILED=on): a warm worker
  // with the glue.hpp PCH already parsed. A SERVICE failure (worker dead,
  // hung, breaker open) falls through to the in-process runner below —
  // never to the user.
  auto& svc = CompileService::instance();
  if (svc.enabled()) {
    auto att = svc.compile(source_path, output_path, timeout_ms);
    if (att.serviced) {
      obs::record_value("compile_ns",
                        static_cast<std::uint64_t>(att.result.seconds * 1e9));
      std::error_code ec;
      if (att.result.ok) {
        std::filesystem::remove(log_path, ec);
      } else {
        std::ofstream out(log_path);
        out << att.result.log;
      }
      return att.result;
    }
    obs::counter_add(obs::Counter::kCompiledFallbacks);
    flightrec::record(flightrec::EventKind::kCompiled, "degrade");
    if (!att.note.empty()) {
      std::fprintf(stderr, "pygb: compile service unavailable (%s); %s\n",
                   att.note.c_str(),
                   "falling back to in-process compiler");
    }
  }

  RunOptions opt;
  opt.argv = split_command(compiler_command());
  for (const auto& flag : split_command(compile_flags())) {
    opt.argv.push_back(flag);
  }
  opt.argv.push_back("-I" + source_include_dir());
  opt.argv.push_back(source_path);
  opt.argv.push_back("-o");
  opt.argv.push_back(output_path);
  opt.timeout_ms = timeout_ms;
  opt.mem_limit_mb = jit_mem_limit_mb();
  opt.max_attempts = 1 + jit_max_retries();
  opt.fault_site = faultinj::site::kCompile;

  obs::Span span("jit.compile");
  span.attr("source", source_path).attr("output", output_path);

  const RunOutcome ro = run_subprocess(opt);
  result.ok = ro.ok();
  result.seconds = ro.seconds;
  result.timed_out = ro.status == RunStatus::kTimeout;
  result.transient = ro.transient;
  result.attempts = ro.attempts;
  span.attr("ok", static_cast<std::int64_t>(result.ok ? 1 : 0));
  span.attr("status", to_string(ro.status));
  span.attr("attempts", static_cast<std::int64_t>(ro.attempts));
  obs::record_value("compile_ns",
                    static_cast<std::uint64_t>(ro.seconds * 1e9));

  std::error_code ec;
  if (result.ok) {
    std::filesystem::remove(log_path, ec);
    return result;
  }

  // Failure: persist the diagnostics next to where the module would have
  // been (pygb_cli --cache-info counts these; the hygiene sweeper reaps
  // them after the horizon) and fold them into the in-memory result.
  std::ostringstream log;
  log << "command: " << render_argv(opt.argv) << "\ncompiler "
      << ro.describe();
  if (result.timed_out) {
    log << "\nkilled after "
        << static_cast<long long>(ro.seconds * 1000.0) << "ms (deadline "
        << opt.timeout_ms << "ms, PYGB_JIT_TIMEOUT_MS)";
  }
  if (ro.attempts > 1) log << "\nattempts: " << ro.attempts;
  log << "\n" << ro.captured;
  result.log = log.str();
  {
    std::ofstream out(log_path);
    out << result.log;
  }
  return result;
}

bool compiler_available() {
  const std::string include_dir = source_include_dir();
  const std::string key = compiler_command() + '\x1f' + include_dir;
  {
    std::lock_guard lock(g_probe_mu);
    if (auto it = g_available.find(key); it != g_available.end()) {
      return it->second;
    }
  }
  const bool available =
      probe_version(compiler_command()).ok() && !include_dir.empty();
  std::lock_guard lock(g_probe_mu);
  g_available.emplace(key, available);
  return available;
}

std::string compiler_identity() {
  const std::string cmd = compiler_command();
  {
    std::lock_guard lock(g_probe_mu);
    if (auto it = g_identity.find(cmd); it != g_identity.end()) {
      return it->second;
    }
  }
  const RunOutcome ro = probe_version(cmd);
  std::string line;
  if (ro.ok()) line = ro.out.substr(0, ro.out.find('\n'));
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.pop_back();
  }
  if (line.empty()) line = cmd;  // unprobeable: the command is the identity
  std::lock_guard lock(g_probe_mu);
  return g_identity.emplace(cmd, std::move(line)).first->second;
}

}  // namespace pygb::jit
