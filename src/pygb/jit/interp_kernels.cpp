// pygb/jit/interp_kernels.cpp — the interpreted dispatch backend.
//
// This is the design alternative §V of the paper rejects for performance: a
// single generic kernel that stages every container through a common
// runtime representation (double) and dispatches operators per element
// through runtime descriptors. We keep it because (a) it makes every
// request satisfiable without a compiler, and (b) benchmarking it against
// the compiled backends reproduces the paper's argument quantitatively
// (bench_ablation_backend).
//
// Documented limitation: integer values outside ±2^53 lose precision in
// the double staging. The compiled backends are exact.
#include <cmath>
#include <stdexcept>
#include <utility>

#include "gbtl/detail/pool.hpp"
#include "pygb/jit/glue.hpp"
#include "pygb/jit/registry.hpp"

namespace pygb::jit {

namespace {

using gbtl::Matrix;
using gbtl::Vector;

// --- staging ---------------------------------------------------------------

Matrix<double> stage_matrix(const void* p, DType dt) {
  return visit_dtype(dt, [&](auto tag) {
    using T = typename decltype(tag)::type;
    const auto& src = *static_cast<const Matrix<T>*>(p);
    // Governor charge for the double-staged copy, taken BEFORE the copy is
    // built so an oversized staging raises ResourceExhausted instead of
    // OOMing (transient: released once the stage completes; the gbtl ops
    // that consume the staged copy charge their own buffers).
    gbtl::detail::ScopedMemCharge charge(
        src.nrows() * sizeof(typename Matrix<double>::Row) +
        src.nvals() * sizeof(std::pair<gbtl::IndexType, double>));
    Matrix<double> out(src.nrows(), src.ncols());
    typename Matrix<double>::Row row;
    for (gbtl::IndexType i = 0; i < src.nrows(); ++i) {
      gbtl::detail::pool_checkpoint();
      const auto& r = src.row(i);
      if (r.empty()) continue;
      row.clear();
      row.reserve(r.size());
      for (const auto& [j, v] : r) row.emplace_back(j, static_cast<double>(v));
      out.setRow(i, std::move(row));
      row = {};
    }
    return out;
  });
}

Vector<double> stage_vector(const void* p, DType dt) {
  return visit_dtype(dt, [&](auto tag) {
    using T = typename decltype(tag)::type;
    const auto& src = *static_cast<const Vector<T>*>(p);
    gbtl::detail::ScopedMemCharge charge(src.size() * sizeof(double));
    Vector<double> out(src.size());
    for (gbtl::IndexType i = 0; i < src.size(); ++i) {
      if (src.has_unchecked(i)) {
        out.set_unchecked(i, static_cast<double>(src.value_unchecked(i)));
      }
    }
    return out;
  });
}

void unstage_matrix(void* p, DType dt, const Matrix<double>& m) {
  visit_dtype(dt, [&](auto tag) {
    using T = typename decltype(tag)::type;
    auto& dst = *static_cast<Matrix<T>*>(p);
    dst.clear();
    typename Matrix<T>::Row row;
    for (gbtl::IndexType i = 0; i < m.nrows(); ++i) {
      const auto& r = m.row(i);
      if (r.empty()) continue;
      row.clear();
      row.reserve(r.size());
      for (const auto& [j, v] : r) row.emplace_back(j, static_cast<T>(v));
      dst.setRow(i, std::move(row));
      row = {};
    }
  });
}

void unstage_vector(void* p, DType dt, const Vector<double>& v) {
  visit_dtype(dt, [&](auto tag) {
    using T = typename decltype(tag)::type;
    auto& dst = *static_cast<Vector<T>*>(p);
    dst.clear();
    for (gbtl::IndexType i = 0; i < v.size(); ++i) {
      if (v.has_unchecked(i)) {
        dst.set_unchecked(i, static_cast<T>(v.value_unchecked(i)));
      }
    }
  });
}

// --- runtime operators -------------------------------------------------------

struct RtBinary {
  BinaryOpName op;
  double operator()(double a, double b) const {
    switch (op) {
      case BinaryOpName::kLogicalOr:
        return static_cast<double>((a != 0.0) || (b != 0.0));
      case BinaryOpName::kLogicalAnd:
        return static_cast<double>((a != 0.0) && (b != 0.0));
      case BinaryOpName::kLogicalXor:
        return static_cast<double>((a != 0.0) != (b != 0.0));
      case BinaryOpName::kEqual:
        return static_cast<double>(a == b);
      case BinaryOpName::kNotEqual:
        return static_cast<double>(a != b);
      case BinaryOpName::kGreaterThan:
        return static_cast<double>(a > b);
      case BinaryOpName::kLessThan:
        return static_cast<double>(a < b);
      case BinaryOpName::kGreaterEqual:
        return static_cast<double>(a >= b);
      case BinaryOpName::kLessEqual:
        return static_cast<double>(a <= b);
      case BinaryOpName::kTimes:
        return a * b;
      case BinaryOpName::kDiv:
        return a / b;
      case BinaryOpName::kPlus:
        return a + b;
      case BinaryOpName::kMinus:
        return a - b;
      case BinaryOpName::kMin:
        return a < b ? a : b;
      case BinaryOpName::kMax:
        return a > b ? a : b;
      case BinaryOpName::kFirst:
        return a;
      case BinaryOpName::kSecond:
        return b;
    }
    throw std::logic_error("interp: corrupt binary op");
  }
};

struct RtUnary {
  const UnaryOp* f;
  double bound;
  double operator()(double x) const {
    if (f->is_bound()) return RtBinary{f->bound_op()}(x, bound);
    switch (f->unary_name()) {
      case UnaryOpName::kIdentity:
        return x;
      case UnaryOpName::kAdditiveInverse:
        return -x;
      case UnaryOpName::kMultiplicativeInverse:
        return 1.0 / x;
      case UnaryOpName::kLogicalNot:
        return static_cast<double>(x == 0.0);
    }
    throw std::logic_error("interp: corrupt unary op");
  }
};

struct RtSemiring {
  using ScalarType = double;
  RtBinary add_op;
  RtBinary mult_op;
  double add(double a, double b) const { return add_op(a, b); }
  double mult(double a, double b) const { return mult_op(a, b); }
};

double identity_value(const MonoidIdentity& id) {
  switch (id.kind()) {
    case MonoidIdentity::Kind::kMaxLimit:
      return std::numeric_limits<double>::max();
    case MonoidIdentity::Kind::kLowestLimit:
      return std::numeric_limits<double>::lowest();
    case MonoidIdentity::Kind::kValue:
      return id.value().to_double();
  }
  throw std::logic_error("interp: corrupt identity kind");
}

// --- runtime wrapper dispatch -------------------------------------------------

template <typename F>
decltype(auto) rt_mask_m(MaskKind mk, const void* mask, F&& f) {
  switch (mk) {
    case MaskKind::kNone:
      return f(gbtl::NoMask{});
    case MaskKind::kMatrix:
      return f(*static_cast<const Matrix<bool>*>(mask));
    case MaskKind::kMatrixComp:
      return f(gbtl::complement(*static_cast<const Matrix<bool>*>(mask)));
    default:
      throw std::logic_error("interp: vector mask on matrix op");
  }
}

template <typename F>
decltype(auto) rt_mask_v(MaskKind mk, const void* mask, F&& f) {
  switch (mk) {
    case MaskKind::kNone:
      return f(gbtl::NoMask{});
    case MaskKind::kVector:
      return f(*static_cast<const Vector<bool>*>(mask));
    case MaskKind::kVectorComp:
      return f(gbtl::complement(*static_cast<const Vector<bool>*>(mask)));
    default:
      throw std::logic_error("interp: matrix mask on vector op");
  }
}

template <typename F>
decltype(auto) rt_accum(const std::optional<BinaryOp>& acc, F&& f) {
  if (acc) return f(RtBinary{acc->name()});
  return f(gbtl::NoAccumulate{});
}

template <typename F>
decltype(auto) rt_trans(bool transposed, const Matrix<double>& m, F&& f) {
  if (transposed) return f(gbtl::transpose(m));
  return f(m);
}

template <typename F>
decltype(auto) rt_indices(const gbtl::IndexArray* idx, F&& f) {
  if (idx == nullptr) return f(gbtl::AllIndices{});
  return f(*idx);
}

// --- per-func execution -------------------------------------------------------

void exec(const KernelArgs* args) {
  const OpRequest& req = *args->request;
  if (req.chain) {
    throw NoKernelError(
        "pygb: fused chains are compiled units and require the JIT backend");
  }
  if (req.has_user_op()) {
    throw NoKernelError(
        "pygb: user-defined operators are C++ snippets and require the JIT "
        "backend (PYGB_JIT_MODE=jit or auto with a compiler available)");
  }
  const std::string& f = req.func;
  const auto outp = args->replace ? gbtl::OutputControl::kReplace
                                  : gbtl::OutputControl::kMerge;

  if (f == func::kMxM || f == func::kEWiseAddMM || f == func::kEWiseMultMM) {
    auto a = stage_matrix(args->a, *req.a);
    auto b = stage_matrix(args->b, *req.b);
    auto c = stage_matrix(args->c, req.c);
    rt_mask_m(req.mask, args->mask, [&](const auto& mask) {
      rt_accum(req.accum, [&](auto accum) {
        rt_trans(req.a_transposed, a, [&](const auto& av) {
          rt_trans(req.b_transposed, b, [&](const auto& bv) {
            if (f == func::kMxM) {
              RtSemiring sr{RtBinary{req.semiring->add().op().name()},
                            RtBinary{req.semiring->mult().name()}};
              gbtl::mxm(c, mask, accum, sr, av, bv, outp);
            } else if (f == func::kEWiseAddMM) {
              gbtl::eWiseAdd(c, mask, accum, RtBinary{req.binary_op->name()},
                             av, bv, outp);
            } else {
              gbtl::eWiseMult(c, mask, accum,
                              RtBinary{req.binary_op->name()}, av, bv, outp);
            }
          });
        });
      });
    });
    unstage_matrix(args->c, req.c, c);
    return;
  }

  if (f == func::kMxV || f == func::kVxM) {
    auto c = stage_vector(args->c, req.c);
    RtSemiring sr{RtBinary{req.semiring->add().op().name()},
                  RtBinary{req.semiring->mult().name()}};
    rt_mask_v(req.mask, args->mask, [&](const auto& mask) {
      rt_accum(req.accum, [&](auto accum) {
        if (f == func::kMxV) {
          auto a = stage_matrix(args->a, *req.a);
          auto u = stage_vector(args->b, *req.b);
          rt_trans(req.a_transposed, a, [&](const auto& av) {
            gbtl::mxv(c, mask, accum, sr, av, u, outp);
          });
        } else {
          auto u = stage_vector(args->a, *req.a);
          auto b = stage_matrix(args->b, *req.b);
          rt_trans(req.b_transposed, b, [&](const auto& bv) {
            gbtl::vxm(c, mask, accum, sr, u, bv, outp);
          });
        }
      });
    });
    unstage_vector(args->c, req.c, c);
    return;
  }

  if (f == func::kEWiseAddVV || f == func::kEWiseMultVV) {
    auto u = stage_vector(args->a, *req.a);
    auto v = stage_vector(args->b, *req.b);
    auto c = stage_vector(args->c, req.c);
    rt_mask_v(req.mask, args->mask, [&](const auto& mask) {
      rt_accum(req.accum, [&](auto accum) {
        if (f == func::kEWiseAddVV) {
          gbtl::eWiseAdd(c, mask, accum, RtBinary{req.binary_op->name()}, u,
                         v, outp);
        } else {
          gbtl::eWiseMult(c, mask, accum, RtBinary{req.binary_op->name()}, u,
                          v, outp);
        }
      });
    });
    unstage_vector(args->c, req.c, c);
    return;
  }

  if (f == func::kApplyM) {
    auto a = stage_matrix(args->a, *req.a);
    auto c = stage_matrix(args->c, req.c);
    RtUnary uop{&*req.unary_op, args->scalar_f};
    rt_mask_m(req.mask, args->mask, [&](const auto& mask) {
      rt_accum(req.accum, [&](auto accum) {
        rt_trans(req.a_transposed, a, [&](const auto& av) {
          gbtl::apply(c, mask, accum, uop, av, outp);
        });
      });
    });
    unstage_matrix(args->c, req.c, c);
    return;
  }

  if (f == func::kApplyV) {
    auto a = stage_vector(args->a, *req.a);
    auto c = stage_vector(args->c, req.c);
    RtUnary uop{&*req.unary_op, args->scalar_f};
    rt_mask_v(req.mask, args->mask, [&](const auto& mask) {
      rt_accum(req.accum, [&](auto accum) {
        gbtl::apply(c, mask, accum, uop, a, outp);
      });
    });
    unstage_vector(args->c, req.c, c);
    return;
  }

  if (f == func::kReduceMS || f == func::kReduceVS) {
    const RtBinary op{req.monoid->op().name()};
    const double id = identity_value(req.monoid->identity());
    double acc = id;
    std::size_t nvals = 0;
    if (f == func::kReduceMS) {
      auto a = stage_matrix(args->a, *req.a);
      nvals = a.nvals();
      for (gbtl::IndexType i = 0; i < a.nrows(); ++i) {
        for (const auto& [j, v] : a.row(i)) acc = op(acc, v);
      }
    } else {
      auto a = stage_vector(args->a, *req.a);
      nvals = a.nvals();
      for (gbtl::IndexType i = 0; i < a.size(); ++i) {
        if (a.has_unchecked(i)) acc = op(acc, a.value_unchecked(i));
      }
    }
    double val = args->has_scalar_seed ? args->scalar_out->f : 0.0;
    if (nvals != 0) {
      val = req.accum ? RtBinary{req.accum->name()}(val, acc) : acc;
    }
    args->scalar_out->f = val;
    args->scalar_out->i = static_cast<std::int64_t>(val);
    args->scalar_out->u = static_cast<std::uint64_t>(val);
    return;
  }

  if (f == func::kReduceMV) {
    auto a = stage_matrix(args->a, *req.a);
    auto c = stage_vector(args->c, req.c);
    struct RtMonoid {
      using ScalarType = double;
      RtBinary op;
      static double identity() { return 0.0; }  // unused by row-reduce
      double operator()(double x, double y) const { return op(x, y); }
    } monoid{RtBinary{req.monoid->op().name()}};
    rt_mask_v(req.mask, args->mask, [&](const auto& mask) {
      rt_accum(req.accum, [&](auto accum) {
        rt_trans(req.a_transposed, a, [&](const auto& av) {
          gbtl::reduce(c, mask, accum, monoid, av, outp);
        });
      });
    });
    unstage_vector(args->c, req.c, c);
    return;
  }

  if (f == func::kAssignMM || f == func::kAssignMS ||
      f == func::kExtractMM || f == func::kTransposeM) {
    auto c = stage_matrix(args->c, req.c);
    rt_mask_m(req.mask, args->mask, [&](const auto& mask) {
      rt_accum(req.accum, [&](auto accum) {
        rt_indices(args->row_indices, [&](const auto& rows) {
          rt_indices(args->col_indices, [&](const auto& cols) {
            if (f == func::kAssignMS) {
              gbtl::assign(c, mask, accum, args->scalar_f, rows, cols, outp);
            } else if (f == func::kAssignMM) {
              auto a = stage_matrix(args->a, *req.a);
              gbtl::assign(c, mask, accum, a, rows, cols, outp);
            } else if (f == func::kExtractMM) {
              auto a = stage_matrix(args->a, *req.a);
              gbtl::extract(c, mask, accum, a, rows, cols, outp);
            } else {
              auto a = stage_matrix(args->a, *req.a);
              rt_trans(req.a_transposed, a, [&](const auto& av) {
                gbtl::transpose(c, mask, accum, av, outp);
              });
            }
          });
        });
      });
    });
    unstage_matrix(args->c, req.c, c);
    return;
  }

  if (f == func::kAssignVV || f == func::kAssignVS ||
      f == func::kExtractVV) {
    auto c = stage_vector(args->c, req.c);
    rt_mask_v(req.mask, args->mask, [&](const auto& mask) {
      rt_accum(req.accum, [&](auto accum) {
        rt_indices(args->row_indices, [&](const auto& idx) {
          if (f == func::kAssignVS) {
            gbtl::assign(c, mask, accum, args->scalar_f, idx, outp);
          } else if (f == func::kAssignVV) {
            auto a = stage_vector(args->a, *req.a);
            gbtl::assign(c, mask, accum, a, idx, outp);
          } else {
            auto a = stage_vector(args->a, *req.a);
            gbtl::extract(c, mask, accum, a, idx, outp);
          }
        });
      });
    });
    unstage_vector(args->c, req.c, c);
    return;
  }

  if (f == func::kAlgoBfs) {
    auto graph = stage_matrix(args->a, *req.a);
    const auto& frontier = *static_cast<const Vector<bool>*>(args->b);
    Vector<double> levels(graph.nrows());
    const auto depth = pygb::algo::bfs(graph, frontier, levels);
    unstage_vector(args->c, req.c, levels);
    args->scalar_out->i = static_cast<std::int64_t>(depth);
    args->scalar_out->f = static_cast<double>(depth);
    args->scalar_out->u = depth;
    return;
  }
  if (f == func::kAlgoSssp) {
    auto graph = stage_matrix(args->a, *req.a);
    auto path = stage_vector(args->c, req.c);
    pygb::algo::sssp(graph, path);
    unstage_vector(args->c, req.c, path);
    return;
  }
  if (f == func::kAlgoPagerank) {
    auto graph = stage_matrix(args->a, *req.a);
    Vector<double> rank(graph.nrows());
    const unsigned iters = pygb::algo::page_rank(
        graph, rank, args->extra0, args->extra1,
        static_cast<unsigned>(args->extra2));
    unstage_vector(args->c, req.c, rank);
    args->scalar_out->i = static_cast<std::int64_t>(iters);
    return;
  }
  if (f == func::kAlgoTriangleCount) {
    auto l = stage_matrix(args->a, *req.a);
    const double count = pygb::algo::triangle_count<double>(l);
    args->scalar_out->f = count;
    args->scalar_out->i = static_cast<std::int64_t>(count);
    args->scalar_out->u = static_cast<std::uint64_t>(count);
    return;
  }

  throw std::invalid_argument("interp: unknown func '" + f + "'");
}

}  // namespace

KernelFn interp_kernel() { return &exec; }

}  // namespace pygb::jit
