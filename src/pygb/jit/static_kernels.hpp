// pygb/jit/static_kernels.hpp — shared machinery for the build-time kernel
// registrations, split across several translation units so the curated set
// compiles in parallel.
//
// The static backend intentionally covers only a curated slice of the
// combination space (the paper's §V point: covering all of it ahead of
// time is intractable — combination_space() quantifies this). Registration
// uses descriptor objects whose canonical keys are exactly the keys the
// DSL evaluator computes, so a static hit and a JIT module are
// interchangeable.
#pragma once

#include <optional>

#include "pygb/jit/glue.hpp"
#include "pygb/jit/registry.hpp"

namespace pygb::jit::static_reg {

template <typename... Ts>
struct TypeList {};

template <typename... Ts, typename F>
void for_types(TypeList<Ts...>, F&& f) {
  (f(pygb::TypeTag<Ts>{}), ...);
}

/// Wide dtype coverage for cheap kernels (no mask/accumulator variants).
using DtWide = TypeList<bool, std::int8_t, std::int32_t, std::int64_t,
                        std::uint32_t, std::uint64_t, float, double>;
/// Narrow coverage for kernels registered across all mask/accum/transpose
/// variants (the DSL's default dtypes plus bool masks' neighbours).
using DtCore = TypeList<bool, std::int64_t, double>;

// --- semiring specs: descriptor (for the key) + concrete glue type -------

struct SrArithmetic {
  static pygb::Semiring descriptor() { return pygb::ArithmeticSemiring(); }
  template <typename A, typename B, typename C>
  using type = GenericSemiring<A, B, C, gbtl::Plus, IdZero, gbtl::Times>;
};
struct SrLogical {
  static pygb::Semiring descriptor() { return pygb::LogicalSemiring(); }
  template <typename A, typename B, typename C>
  using type =
      GenericSemiring<A, B, C, gbtl::LogicalOr, IdFalse, gbtl::LogicalAnd>;
};
struct SrMinPlus {
  static pygb::Semiring descriptor() { return pygb::MinPlusSemiring(); }
  template <typename A, typename B, typename C>
  using type = GenericSemiring<A, B, C, gbtl::Min, IdMaxLimit, gbtl::Plus>;
};
struct SrMinSelect2nd {
  static pygb::Semiring descriptor() { return pygb::MinSelect2ndSemiring(); }
  template <typename A, typename B, typename C>
  using type = GenericSemiring<A, B, C, gbtl::Min, IdMaxLimit, gbtl::Second>;
};
struct SrMaxTimes {
  static pygb::Semiring descriptor() { return pygb::MaxTimesSemiring(); }
  template <typename A, typename B, typename C>
  using type = GenericSemiring<A, B, C, gbtl::Max, IdLowestLimit, gbtl::Times>;
};

// --- monoid specs ---------------------------------------------------------

struct MonPlus {
  static pygb::Monoid descriptor() { return pygb::PlusMonoid(); }
  template <typename C>
  using type = GenericMonoid<C, gbtl::Plus, IdZero>;
};
struct MonTimes {
  static pygb::Monoid descriptor() { return pygb::TimesMonoid(); }
  template <typename C>
  using type = GenericMonoid<C, gbtl::Times, IdOne>;
};
struct MonMin {
  static pygb::Monoid descriptor() { return pygb::MinMonoid(); }
  template <typename C>
  using type = GenericMonoid<C, gbtl::Min, IdMaxLimit>;
};
struct MonMax {
  static pygb::Monoid descriptor() { return pygb::MaxMonoid(); }
  template <typename C>
  using type = GenericMonoid<C, gbtl::Max, IdLowestLimit>;
};
struct MonLogicalOr {
  static pygb::Monoid descriptor() { return pygb::LogicalOrMonoid(); }
  template <typename C>
  using type = GenericMonoid<C, gbtl::LogicalOr, IdFalse>;
};

// --- accumulator specs ------------------------------------------------------

struct AccNone {
  static std::optional<pygb::BinaryOp> descriptor() { return std::nullopt; }
  template <typename C>
  using type = gbtl::NoAccumulate;
};
#define PYGB_ACC_SPEC(NAME)                                             \
  struct Acc##NAME {                                                    \
    static std::optional<pygb::BinaryOp> descriptor() {                 \
      return pygb::BinaryOp(#NAME);                                     \
    }                                                                   \
    template <typename C>                                               \
    using type = gbtl::NAME<C, C, C>;                                   \
  };
PYGB_ACC_SPEC(Plus)
PYGB_ACC_SPEC(Min)
PYGB_ACC_SPEC(Max)
PYGB_ACC_SPEC(Second)
PYGB_ACC_SPEC(Times)
#undef PYGB_ACC_SPEC

// --- binary op specs for eWise kernels -------------------------------------

#define PYGB_BOP_SPEC(NAME)                                             \
  struct Bop##NAME {                                                    \
    static pygb::BinaryOp descriptor() { return pygb::BinaryOp(#NAME); } \
    template <typename A, typename B, typename C>                       \
    using type = gbtl::NAME<A, B, C>;                                   \
  };
PYGB_BOP_SPEC(Plus)
PYGB_BOP_SPEC(Minus)
PYGB_BOP_SPEC(Times)
PYGB_BOP_SPEC(Div)
PYGB_BOP_SPEC(Min)
PYGB_BOP_SPEC(Max)
PYGB_BOP_SPEC(LogicalOr)
PYGB_BOP_SPEC(LogicalAnd)
#undef PYGB_BOP_SPEC

// --- registration entry points (one per translation unit) ------------------

void register_mxm(Registry& r);
void register_mxv_vxm(Registry& r);
void register_ewise(Registry& r);
void register_apply_reduce(Registry& r);
void register_assign_extract(Registry& r);
void register_algorithms(Registry& r);

}  // namespace pygb::jit::static_reg
