// pygb/jit/breaker.cpp — the three-state machine (see breaker.hpp).
#include "pygb/jit/breaker.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdlib>

#include "pygb/faultinj.hpp"
#include "pygb/obs/flightrec.hpp"
#include "pygb/obs/obs.hpp"

namespace pygb::jit {

namespace {

/// Circuit transitions are exactly what a postmortem wants to see, so each
/// one drops a flight event (detail = new state, v1 = key hash to match
/// compile/op events for the same dispatch key).
void record_transition(const char* state, const std::string& key) {
  flightrec::record(flightrec::EventKind::kBreaker, state, 0,
                    flightrec::fnv1a(key.c_str()));
}

}  // namespace

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<int>(std::strtol(v, nullptr, 10));
}

/// Stored failure causes are a TAIL, size-capped: a JIT failure message
/// leads with boilerplate (key, command line) and ends with the captured
/// compiler stderr — the part a human needs. And the breaker map lives for
/// the process, so an unbounded cause per key would let a chatty compiler
/// grow it without limit.
constexpr std::size_t kCauseCapBytes = 512;

std::string capped_cause_tail(const std::string& cause) {
  if (cause.size() <= kCauseCapBytes) return cause;
  return "…" + cause.substr(cause.size() - kCauseCapBytes);
}

}  // namespace

const char* to_string(BreakerState s) noexcept {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

CircuitBreaker::Config CircuitBreaker::config_from_env() {
  Config cfg;
  cfg.failure_threshold = std::max(1, env_int("PYGB_BREAKER_THRESHOLD", 3));
  cfg.open_ttl_ms = std::max(1, env_int("PYGB_BREAKER_TTL_MS", 15000));
  return cfg;
}

CircuitBreaker::Decision CircuitBreaker::acquire(const std::string& key) {
  std::lock_guard lock(mu_);
  auto it = keys_.find(key);
  if (it == keys_.end()) return Decision::kAllow;
  KeyState& ks = it->second;
  switch (ks.state) {
    case BreakerState::kClosed:
      return Decision::kAllow;
    case BreakerState::kOpen:
      if (!ks.permanent && Clock::now() >= ks.open_until) {
        ks.state = BreakerState::kHalfOpen;
        ks.probe_inflight = true;
        obs::counter_add(obs::Counter::kBreakerProbes);
        record_transition("half-open", key);
        return Decision::kProbe;
      }
      obs::counter_add(obs::Counter::kBreakerShortCircuits);
      return Decision::kShortCircuit;
    case BreakerState::kHalfOpen:
      if (!ks.probe_inflight) {
        ks.probe_inflight = true;
        obs::counter_add(obs::Counter::kBreakerProbes);
        return Decision::kProbe;
      }
      obs::counter_add(obs::Counter::kBreakerShortCircuits);
      return Decision::kShortCircuit;
  }
  return Decision::kAllow;
}

void CircuitBreaker::on_success(const std::string& key) {
  std::lock_guard lock(mu_);
  if (keys_.erase(key) != 0) {  // fully healed; no state is closed
    record_transition("closed", key);
  }
}

void CircuitBreaker::on_failure(const std::string& key, bool transient,
                                const std::string& cause) {
  std::lock_guard lock(mu_);
  KeyState& ks = keys_[key];
  ks.probe_inflight = false;
  ++ks.consecutive_failures;
  ks.cause = capped_cause_tail(cause);
  if (!transient) {
    // Deterministic rejection: retrying is futile until the caches are
    // cleared. Open now, never half-open (the old negative cache).
    if (ks.state != BreakerState::kOpen) {
      obs::counter_add(obs::Counter::kBreakerOpens);
      record_transition("open", key);
    }
    ks.state = BreakerState::kOpen;
    ks.permanent = true;
    return;
  }
  if (ks.state == BreakerState::kHalfOpen ||
      ks.consecutive_failures >= cfg_.failure_threshold) {
    // A failed probe re-opens; threshold crossings open. The TTL is
    // jittered in [0.75, 1.25) of the nominal value so that many server
    // threads (or many keys broken by one incident, e.g. a wedged
    // compiler) don't all reach half-open in the same instant and
    // thundering-herd the recompile path; the draw replays under a
    // PYGB_FAULTS seed (faultinj::jitter_unit).
    if (ks.state != BreakerState::kOpen) {
      obs::counter_add(obs::Counter::kBreakerOpens);
      record_transition("open", key);
    }
    ks.state = BreakerState::kOpen;
    const double spread =
        0.75 + 0.5 * faultinj::jitter_unit(
                         flightrec::fnv1a(key.c_str()),
                         static_cast<std::uint64_t>(ks.consecutive_failures));
    const auto ttl = std::chrono::milliseconds(std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               static_cast<double>(cfg_.open_ttl_ms) * spread)));
    ks.open_until = Clock::now() + ttl;
  }
}

BreakerState CircuitBreaker::state(const std::string& key) const {
  std::lock_guard lock(mu_);
  auto it = keys_.find(key);
  if (it == keys_.end()) return BreakerState::kClosed;
  // Report the observable state: an expired non-permanent open is one
  // acquire() away from half-open.
  return it->second.state;
}

std::string CircuitBreaker::describe(const std::string& key) const {
  std::lock_guard lock(mu_);
  auto it = keys_.find(key);
  if (it == keys_.end()) return "circuit closed";
  const KeyState& ks = it->second;
  std::string out = "circuit ";
  out += to_string(ks.state);
  if (ks.permanent) out += " (permanent failure)";
  out += " after " + std::to_string(ks.consecutive_failures) + " failure(s)";
  if (!ks.cause.empty()) out += "; last cause: " + ks.cause;
  return out;
}

void CircuitBreaker::reset() {
  std::lock_guard lock(mu_);
  keys_.clear();
  // Re-read the env knobs: a reset marks a fresh start (cache clear,
  // test fixture), and PYGB_BREAKER_* may have changed since construction.
  cfg_ = config_from_env();
}

}  // namespace pygb::jit
