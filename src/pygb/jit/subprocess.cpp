// pygb/jit/subprocess.cpp — fork/execvp with deadline, rlimits, process-
// group kill escalation, stderr capture, and errno-classified retry.
#include "pygb/jit/subprocess.hpp"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/prctl.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <thread>

#include "pygb/faultinj.hpp"
#include "pygb/obs/obs.hpp"

namespace pygb::jit {

namespace {

using Clock = std::chrono::steady_clock;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<int>(std::strtol(v, nullptr, 10));
}

/// Child stderr kept for diagnostics is capped: a compiler spewing
/// template errors at full tilt must not balloon the caller's memory.
constexpr std::size_t kCaptureCap = 64 * 1024;

int ms_until(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left < 0 ? 0 : static_cast<int>(left);
}

/// Drain whatever is readable on fd into out (respecting the cap).
/// Returns false once the fd reaches EOF (and closes it).
bool drain_fd(int& fd, std::string& out) {
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      if (out.size() < kCaptureCap) {
        out.append(buf, static_cast<std::size_t>(
                            std::min<ssize_t>(n, static_cast<ssize_t>(
                                                     kCaptureCap - out.size()))));
      }
      continue;
    }
    if (n == 0) {
      ::close(fd);
      fd = -1;
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    ::close(fd);
    fd = -1;
    return false;
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Transient spawn-level errnos: the machine was briefly out of a
/// resource; the same exec may well succeed in a moment.
bool transient_errno(int err) {
  return err == EAGAIN || err == ENOMEM || err == EMFILE || err == ENFILE ||
         err == ETXTBSY;
}

/// A compiler exiting nonzero is normally a deterministic diagnosis of
/// the source — permanent. The exception is environmental exhaustion
/// (tmpdir full, out of memory inside cc1plus), which the driver reports
/// on stderr; those are worth a retry and must not poison the key.
bool transient_compiler_text(const std::string& text) {
  return text.find("No space left on device") != std::string::npos ||
         text.find("cannot create temporary") != std::string::npos ||
         text.find("out of memory") != std::string::npos ||
         text.find("Cannot allocate memory") != std::string::npos;
}

/// Everything the child does between fork and exec. Only async-signal-
/// safe calls (we may be forking from a multithreaded process).
[[noreturn]] void child_exec(const RunOptions& options,
                             faultinj::Action fault, int err_w, int out_w,
                             int status_w) {
  ::setpgid(0, 0);  // own group, so the parent can kill the whole tree

  struct rlimit rl;
  if (options.timeout_ms > 0) {
    // Belt for the braces: a grandchild that double-forks out of the
    // process group still burns down its CPU budget on its own.
    rl.rlim_cur = rl.rlim_max =
        static_cast<rlim_t>(options.timeout_ms / 1000 + 5);
    ::setrlimit(RLIMIT_CPU, &rl);
  }
  if (options.mem_limit_mb > 0) {
    rl.rlim_cur = rl.rlim_max =
        static_cast<rlim_t>(options.mem_limit_mb) << 20;
    ::setrlimit(RLIMIT_AS, &rl);
  }
  rl.rlim_cur = rl.rlim_max = 0;  // a crashing compiler must not dump core
  ::setrlimit(RLIMIT_CORE, &rl);

  if (options.kill_on_parent_death) {
    // Die with the spawning thread (the compile-service worker is single-
    // threaded, so thread == process there). If the parent already died in
    // the fork window, the prctl cannot fire retroactively — check.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (::getppid() == 1) ::_exit(127);
  }

  while (::dup2(err_w, STDERR_FILENO) < 0 && errno == EINTR) {
  }
  if (out_w >= 0) {
    while (::dup2(out_w, STDOUT_FILENO) < 0 && errno == EINTR) {
    }
  } else if (int devnull = ::open("/dev/null", O_WRONLY); devnull >= 0) {
    ::dup2(devnull, STDOUT_FILENO);
    ::close(devnull);
  }
  ::close(err_w);
  if (out_w >= 0) ::close(out_w);

  // Enact the injected fault INSIDE the sandbox: the parent's deadline,
  // kill escalation, and reap machinery get exercised for real.
  switch (fault) {
    case faultinj::Action::kHang: {
      const char msg[] = "pygb faultinj: compile child hanging\n";
      (void)!::write(STDERR_FILENO, msg, sizeof msg - 1);
      ::close(status_w);  // "exec succeeded" as far as the parent knows
      while (true) ::pause();
    }
    case faultinj::Action::kFail: {
      const char msg[] = "pygb faultinj: compile child failing\n";
      (void)!::write(STDERR_FILENO, msg, sizeof msg - 1);
      ::_exit(1);
    }
    case faultinj::Action::kSlow: {
      struct timespec ts{2, 0};
      ::nanosleep(&ts, nullptr);
      break;
    }
    default:
      break;
  }

  std::vector<char*> argv;
  argv.reserve(options.argv.size() + 1);
  for (const auto& arg : options.argv) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);
  ::execvp(argv[0], argv.data());

  // exec failed: report errno through the CLOEXEC status pipe (the parent
  // distinguishes "compiler missing" from "compiler ran and failed").
  const int err = errno;
  (void)!::write(status_w, &err, sizeof err);
  ::_exit(127);
}

/// One launch, bounded by the deadline. Fills status/exit/signal/errno
/// and appends captured output; the caller owns retry policy.
void run_once(const RunOptions& options, RunOutcome& outcome) {
  int err_pipe[2] = {-1, -1};
  int out_pipe[2] = {-1, -1};
  int status_pipe[2] = {-1, -1};
  if (::pipe(err_pipe) != 0) {
    outcome.status = RunStatus::kSpawnFailed;
    outcome.spawn_errno = errno;
    outcome.transient = transient_errno(errno);
    return;
  }
  if (options.capture_stdout && ::pipe(out_pipe) != 0) {
    ::close(err_pipe[0]);
    ::close(err_pipe[1]);
    outcome.status = RunStatus::kSpawnFailed;
    outcome.spawn_errno = errno;
    outcome.transient = transient_errno(errno);
    return;
  }
  if (::pipe2(status_pipe, O_CLOEXEC) != 0) {
    for (int fd : {err_pipe[0], err_pipe[1], out_pipe[0], out_pipe[1]}) {
      if (fd >= 0) ::close(fd);
    }
    outcome.status = RunStatus::kSpawnFailed;
    outcome.spawn_errno = errno;
    outcome.transient = transient_errno(errno);
    return;
  }

  // Decide the injected fault BEFORE forking (the engine takes a mutex,
  // which must never be touched in a fork child of a threaded process).
  faultinj::Action fault = faultinj::Action::kNone;
  if (options.fault_site != nullptr) {
    if (auto d = faultinj::check(options.fault_site)) {
      fault = d.action;
      obs::counter_add(obs::Counter::kFaultsInjected);
    }
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    const int err = errno;
    for (int fd : {err_pipe[0], err_pipe[1], out_pipe[0], out_pipe[1],
                   status_pipe[0], status_pipe[1]}) {
      if (fd >= 0) ::close(fd);
    }
    outcome.status = RunStatus::kSpawnFailed;
    outcome.spawn_errno = err;
    outcome.transient = transient_errno(err);
    return;
  }
  if (pid == 0) {
    ::close(err_pipe[0]);
    if (out_pipe[0] >= 0) ::close(out_pipe[0]);
    ::close(status_pipe[0]);
    child_exec(options, fault, err_pipe[1], out_pipe[1], status_pipe[1]);
  }

  // Both sides race to move the child into its own group so that killpg
  // can never hit the parent's group; whichever setpgid lands first wins.
  ::setpgid(pid, pid);

  ::close(err_pipe[1]);
  if (out_pipe[1] >= 0) ::close(out_pipe[1]);
  ::close(status_pipe[1]);
  int err_r = err_pipe[0];
  int out_r = out_pipe[0];
  int status_r = status_pipe[0];
  set_nonblocking(err_r);
  if (out_r >= 0) set_nonblocking(out_r);
  set_nonblocking(status_r);

  const bool bounded = options.timeout_ms > 0;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(
                         bounded ? options.timeout_ms : 0);
  bool term_sent = false;
  bool kill_sent = false;
  Clock::time_point kill_at{};  // SIGKILL escalation time once TERM is out
  int exec_errno = 0;
  bool reaped = false;
  int wait_status = 0;

  while (!reaped) {
    // Reap without blocking, so pipe draining and the deadline stay live.
    const pid_t w = ::waitpid(pid, &wait_status, WNOHANG);
    if (w == pid) {
      reaped = true;
      break;
    }

    const auto now = Clock::now();
    if (bounded && !term_sent && now >= deadline) {
      obs::counter_add(obs::Counter::kJitTimeouts);
      if (::killpg(pid, SIGTERM) != 0) ::kill(pid, SIGTERM);
      term_sent = true;
      kill_at = now + std::chrono::milliseconds(options.kill_grace_ms);
    } else if (term_sent && !kill_sent && now >= kill_at) {
      obs::counter_add(obs::Counter::kJitKills);
      if (::killpg(pid, SIGKILL) != 0) ::kill(pid, SIGKILL);
      kill_sent = true;
      // SIGKILL cannot be ignored: the child WILL exit; reap it
      // synchronously and stop polling.
      while (::waitpid(pid, &wait_status, 0) < 0 && errno == EINTR) {
      }
      reaped = true;
      break;
    }

    struct pollfd fds[3];
    nfds_t nfds = 0;
    if (err_r >= 0) fds[nfds++] = {err_r, POLLIN, 0};
    if (out_r >= 0) fds[nfds++] = {out_r, POLLIN, 0};
    if (status_r >= 0) fds[nfds++] = {status_r, POLLIN, 0};

    int wait_ms = 50;  // floor so waitpid(WNOHANG) stays responsive
    if (term_sent && !kill_sent) {
      wait_ms = std::min(wait_ms, std::max(1, ms_until(kill_at)));
    } else if (bounded && !term_sent) {
      wait_ms = std::min(wait_ms, std::max(1, ms_until(deadline)));
    }
    if (nfds == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
      continue;
    }
    const int pr = ::poll(fds, nfds, wait_ms);
    if (pr < 0 && errno != EINTR) {
      std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
      continue;
    }
    for (nfds_t i = 0; pr > 0 && i < nfds; ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (fds[i].fd == err_r) {
        drain_fd(err_r, outcome.captured);
      } else if (fds[i].fd == out_r) {
        drain_fd(out_r, outcome.out);
      } else if (fds[i].fd == status_r) {
        int e = 0;
        const ssize_t n = ::read(status_r, &e, sizeof e);
        if (n == static_cast<ssize_t>(sizeof e)) exec_errno = e;
        if (n == 0 || (n < 0 && errno != EAGAIN && errno != EINTR)) {
          ::close(status_r);
          status_r = -1;
        }
      }
    }
  }

  // The child is gone; drain what it wrote before dying. A grandchild
  // holding the pipe open cannot stall us: these fds are non-blocking.
  if (err_r >= 0) {
    drain_fd(err_r, outcome.captured);
    if (err_r >= 0) ::close(err_r);
  }
  if (out_r >= 0) {
    drain_fd(out_r, outcome.out);
    if (out_r >= 0) ::close(out_r);
  }
  if (status_r >= 0) {
    int e = 0;
    if (::read(status_r, &e, sizeof e) == static_cast<ssize_t>(sizeof e)) {
      exec_errno = e;
    }
    ::close(status_r);
  }

  if (term_sent) {
    outcome.status = RunStatus::kTimeout;
    outcome.term_signal = kill_sent ? SIGKILL : SIGTERM;
    outcome.transient = true;  // the key is not doomed, this attempt was
    return;
  }
  if (exec_errno != 0) {
    outcome.status = RunStatus::kSpawnFailed;
    outcome.spawn_errno = exec_errno;
    outcome.transient = transient_errno(exec_errno);
    return;
  }
  if (WIFEXITED(wait_status)) {
    outcome.exit_code = WEXITSTATUS(wait_status);
    outcome.status =
        outcome.exit_code == 0 ? RunStatus::kOk : RunStatus::kExitNonzero;
    outcome.transient = outcome.exit_code != 0 &&
                        transient_compiler_text(outcome.captured);
    return;
  }
  if (WIFSIGNALED(wait_status)) {
    outcome.status = RunStatus::kSignaled;
    outcome.term_signal = WTERMSIG(wait_status);
    // Killed from outside (OOM killer, operator): the source is not at
    // fault; a later attempt may survive.
    outcome.transient = true;
    return;
  }
  outcome.status = RunStatus::kSignaled;
  outcome.transient = true;
}

}  // namespace

const char* to_string(RunStatus s) noexcept {
  switch (s) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kExitNonzero:
      return "exit-nonzero";
    case RunStatus::kSignaled:
      return "signaled";
    case RunStatus::kTimeout:
      return "timeout";
    case RunStatus::kSpawnFailed:
      return "spawn-failed";
  }
  return "?";
}

std::string RunOutcome::describe() const {
  switch (status) {
    case RunStatus::kOk:
      return "exit status 0";
    case RunStatus::kExitNonzero:
      return "exit status " + std::to_string(exit_code);
    case RunStatus::kSignaled:
      return "killed by signal " + std::to_string(term_signal);
    case RunStatus::kTimeout:
      return std::string("deadline exceeded (") +
             (term_signal == SIGKILL ? "SIGKILL" : "SIGTERM") +
             " sent to process group)";
    case RunStatus::kSpawnFailed:
      return std::string("failed to launch: ") + std::strerror(spawn_errno);
  }
  return "unrecognized outcome";
}

RunOutcome run_subprocess(const RunOptions& options) {
  RunOutcome outcome;
  if (options.argv.empty()) {
    outcome.spawn_errno = EINVAL;
    return outcome;
  }
  const int max_attempts = std::max(1, options.max_attempts);
  int backoff_ms = std::max(1, options.backoff_ms);
  const auto start = Clock::now();
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    outcome.status = RunStatus::kSpawnFailed;
    outcome.exit_code = -1;
    outcome.term_signal = 0;
    outcome.spawn_errno = 0;
    outcome.transient = false;
    run_once(options, outcome);
    outcome.attempts = attempt;
    if (outcome.ok()) break;
    // Retry only what a retry can fix: transient resource exhaustion.
    // A deadline expiry is transient for the BREAKER (the key is not
    // doomed) but is not retried here — the deadline was the caller's
    // whole time budget.
    const bool retryable =
        outcome.transient && outcome.status != RunStatus::kTimeout;
    if (!retryable || attempt == max_attempts) break;
    obs::counter_add(obs::Counter::kJitRetries);
    // Exponential backoff with bounded jitter in [0.5, 1.5) of the nominal
    // delay: N server threads that hit the same cold key (or the same
    // overloaded compiler) must not sleep identical schedules and retry in
    // lockstep. The draw is keyed on this command and the attempt number,
    // and replays exactly under a PYGB_FAULTS seed (faultinj::jitter_unit).
    std::uint64_t stream = 0xba0cc0ffULL;
    for (const std::string& arg : options.argv) {
      stream = stream * 1099511628211ULL ^ std::hash<std::string>{}(arg);
    }
    const double spread =
        0.5 + faultinj::jitter_unit(stream, static_cast<std::uint64_t>(attempt));
    const int delay_ms =
        std::max(1, static_cast<int>(static_cast<double>(backoff_ms) * spread));
    if (!outcome.captured.empty() && outcome.captured.back() != '\n') {
      outcome.captured += '\n';
    }
    outcome.captured += "pygb: transient failure (" + outcome.describe() +
                        "); retrying in " + std::to_string(delay_ms) +
                        "ms\n";
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    backoff_ms = std::min(backoff_ms * 2, 5000);
  }
  outcome.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return outcome;
}

int jit_timeout_ms() {
  const int v = env_int("PYGB_JIT_TIMEOUT_MS", 30000);
  return v < 0 ? 0 : v;
}

std::uint64_t jit_mem_limit_mb() {
  const int v = env_int("PYGB_JIT_MEM_LIMIT_MB", 0);
  return v < 0 ? 0 : static_cast<std::uint64_t>(v);
}

int jit_max_retries() {
  const int v = env_int("PYGB_JIT_RETRIES", 2);
  return v < 0 ? 0 : v;
}

SpawnOutcome spawn_supervised(const std::vector<std::string>& argv,
                              int stdio_fd) {
  SpawnOutcome out;
  if (argv.empty()) {
    out.spawn_errno = EINVAL;
    return out;
  }
  int status_pipe[2] = {-1, -1};
  if (::pipe2(status_pipe, O_CLOEXEC) != 0) {
    out.spawn_errno = errno;
    out.transient = transient_errno(errno);
    return out;
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    out.spawn_errno = errno;
    out.transient = transient_errno(errno);
    ::close(status_pipe[0]);
    ::close(status_pipe[1]);
    return out;
  }
  if (pid == 0) {
    // Child: the same sandbox posture as child_exec, minus the rlimits a
    // long-lived worker manages per-request itself (its compile children
    // get RLIMIT_CPU/AS through their own run_subprocess calls).
    ::close(status_pipe[0]);
    ::setpgid(0, 0);
    struct rlimit rl;
    rl.rlim_cur = rl.rlim_max = 0;
    ::setrlimit(RLIMIT_CORE, &rl);
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);  // never outlive the supervisor
    if (::getppid() == 1) ::_exit(127);
    if (stdio_fd >= 0) {
      while (::dup2(stdio_fd, STDIN_FILENO) < 0 && errno == EINTR) {
      }
      while (::dup2(stdio_fd, STDOUT_FILENO) < 0 && errno == EINTR) {
      }
      if (stdio_fd > STDOUT_FILENO) ::close(stdio_fd);
    }
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto& arg : argv) {
      cargv.push_back(const_cast<char*>(arg.c_str()));
    }
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());
    const int err = errno;
    (void)!::write(status_pipe[1], &err, sizeof err);
    ::_exit(127);
  }

  // Parent. Same setpgid race-closing as run_once.
  ::setpgid(pid, pid);
  ::close(status_pipe[1]);

  // The CLOEXEC pipe answers "did exec happen?": EOF = yes, an errno = no.
  int exec_errno = 0;
  ssize_t n;
  do {
    n = ::read(status_pipe[0], &exec_errno, sizeof exec_errno);
  } while (n < 0 && errno == EINTR);
  ::close(status_pipe[0]);
  if (n == static_cast<ssize_t>(sizeof exec_errno) && exec_errno != 0) {
    while (::waitpid(pid, nullptr, 0) < 0 && errno == EINTR) {
    }
    out.spawn_errno = exec_errno;
    out.transient = transient_errno(exec_errno);
    return out;
  }
  out.pid = pid;
  return out;
}

bool terminate_supervised(pid_t pid, int grace_ms) {
  if (pid <= 0) return true;
  int status = 0;
  // Already dead? Reap and report so callers can tell "it died on its own"
  // from "we had to kill it".
  pid_t w = ::waitpid(pid, &status, WNOHANG);
  if (w == pid || (w < 0 && errno == ECHILD)) return true;

  if (::killpg(pid, SIGTERM) != 0) ::kill(pid, SIGTERM);
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(std::max(0, grace_ms));
  while (Clock::now() < deadline) {
    w = ::waitpid(pid, &status, WNOHANG);
    if (w == pid || (w < 0 && errno == ECHILD)) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (::killpg(pid, SIGKILL) != 0) ::kill(pid, SIGKILL);
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  return false;
}

std::vector<std::string> split_command(const std::string& command) {
  std::vector<std::string> out;
  std::string word;
  for (char c : command) {
    if (c == ' ' || c == '\t') {
      if (!word.empty()) {
        out.push_back(word);
        word.clear();
      }
    } else {
      word += c;
    }
  }
  if (!word.empty()) out.push_back(word);
  return out;
}

}  // namespace pygb::jit
