// pygb/jit/registry.hpp — the module cache of Fig. 9's get_module():
// canonical key → kernel, checked in memory first, then on disk, with a
// g++ invocation on a miss. Three backends provide kernels:
//
//   * static — templates instantiated into this binary at build time (a
//     curated set; §V of the paper explains why covering every combination
//     ahead of time is infeasible — see static_combination_space()).
//   * jit    — source generated from the request, compiled to a shared
//     object, dlopen'd, and cached in memory and on disk.
//   * interp — a single generic kernel interpreting the request over
//     double-staged copies (the "union type" design the paper rejected;
//     kept as the always-available fallback and as an ablation subject).
//
// Mode selection: PYGB_JIT_MODE = auto | static | jit | interp
// (auto = static, then jit when a compiler is available, then interp).
//
// Concurrency: the registry mutex guards only the in-memory maps, never a
// compile. A cold key registers an in-flight record and compiles outside
// the lock; concurrent requests for the SAME key wait on that record,
// while requests for other keys (including memory-cache hits) proceed
// immediately. The wait is DEADLINE-BOUNDED (PYGB_JIT_TIMEOUT_MS plus a
// grace margin): a waiter whose leader hangs falls back to the
// interpreter (kAuto) or fails with a classified TransientJitError
// instead of blocking forever. Statistics live in pygb::obs relaxed
// atomic counters — the RegistryStats struct is a snapshot view of those.
//
// Robustness (docs/ROBUSTNESS.md): compiles run in a sandboxed subprocess
// (argv exec, wall-clock deadline with SIGTERM→SIGKILL escalation, child
// rlimits, transient-failure retry — pygb/jit/subprocess.hpp), and a
// per-key circuit breaker (pygb/jit/breaker.hpp) stops repeatedly-failing
// keys from taxing every caller: permanent compile errors open it
// immediately, transient ones after a threshold, with a half-open probe
// to heal.
//
// The disk tier is hardened for shared, long-lived deployments (see
// pygb/jit/cache.hpp and docs/CACHE.md): modules are compiled to a
// process-private temp name and atomically rename(2)d into place, a
// per-stem flock coalesces concurrent compiles across PROCESSES, every
// module embeds a verification stamp checked at load time (corrupt or
// wrong-environment files are quarantined and recompiled), and auto mode
// degrades to the interpreter instead of throwing when compilation is
// broken at runtime.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "pygb/jit/breaker.hpp"
#include "pygb/jit/module_key.hpp"

namespace pygb::jit {

enum class Mode : std::uint8_t { kAuto, kStatic, kJit, kInterp };

const char* to_string(Mode m);
Mode parse_mode(const std::string& name);

/// Raised when a backend cannot provide a kernel (e.g. static-only mode
/// with an unregistered combination — the paper's motivating failure).
class NoKernelError : public std::runtime_error {
 public:
  explicit NoKernelError(const std::string& msg) : std::runtime_error(msg) {}
};

/// A JIT failure that is environmental rather than deterministic — a
/// compile killed at the PYGB_JIT_TIMEOUT_MS deadline, an OOM-killed or
/// spawn-failed compiler child, a coalesced waiter abandoning a hung
/// leader. The key is NOT doomed: the circuit breaker counts these toward
/// its consecutive-failure threshold (and heals through a half-open
/// probe) instead of negative-caching the key forever.
class TransientJitError : public NoKernelError {
 public:
  using NoKernelError::NoKernelError;
};

/// Snapshot of the obs counters in the registry's historical shape.
struct RegistryStats {
  std::size_t lookups = 0;
  std::size_t static_hits = 0;
  std::size_t memory_hits = 0;      ///< previously dlopen'd JIT module
  std::size_t disk_hits = 0;        ///< .so found in the cache directory
  std::size_t compiles = 0;         ///< g++ invocations
  std::size_t interp_dispatches = 0;
  std::size_t jit_fallbacks = 0;    ///< auto-mode degradations to interp
  std::size_t cache_quarantines = 0;  ///< cached modules failing load/verify
  double compile_seconds = 0.0;     ///< total wall time inside g++
  std::size_t jit_timeouts = 0;     ///< compiles killed at the deadline
  std::size_t jit_retries = 0;      ///< transient compile failures retried
  std::size_t waiter_timeouts = 0;  ///< waiters abandoning a hung leader
  std::size_t breaker_opens = 0;    ///< circuit transitions to open
  std::size_t breaker_probes = 0;   ///< half-open probe builds granted
  std::size_t breaker_short_circuits = 0;  ///< fast-failed JIT requests
  std::size_t lock_timeouts = 0;    ///< flock deadline → private compile
  // Persistent compile service (pygb/jit/compile_service.hpp).
  std::size_t compiled_requests = 0;   ///< compiles offered to the service
  std::size_t compiled_served = 0;     ///< the worker answered
  std::size_t compiled_fallbacks = 0;  ///< degraded to in-process g++
  std::size_t compiled_restarts = 0;   ///< worker respawns
  std::size_t compiled_breaker_trips = 0;  ///< service breaker opened
  // Background tiering (PYGB_TIER=async).
  std::size_t tier_async_compiles = 0;   ///< background builds enqueued
  std::size_t tier_deferred_serves = 0;  ///< served interp while one pended
};

/// How a lookup was satisfied — filled for observability when the caller
/// passes a ResolveInfo to Registry::get().
struct ResolveInfo {
  const char* backend = "";  ///< static | jit-memory | jit-disk |
                             ///< jit-compile | jit-wait | interp
  std::string key;           ///< the canonical dispatch key
};

class Registry {
 public:
  /// Process-wide instance; mode and cache dir initialized from the
  /// PYGB_JIT_MODE / PYGB_CACHE_DIR environment variables.
  static Registry& instance();

  /// Resolve a kernel for the request, compiling if necessary. `info`
  /// (optional) receives the backend chosen and the dispatch key.
  KernelFn get(const OpRequest& req, ResolveInfo* info = nullptr);

  /// Register a build-time-instantiated kernel (static backend).
  void register_static(const std::string& key, KernelFn fn);

  Mode mode() const noexcept {
    return mode_.load(std::memory_order_relaxed);
  }
  void set_mode(Mode m) noexcept {
    mode_.store(m, std::memory_order_relaxed);
  }

  std::string cache_dir() const;
  void set_cache_dir(const std::string& dir);

  /// Drop in-memory JIT handles (disk cache untouched). For benchmarks
  /// that measure cold-vs-warm dispatch.
  void clear_memory_cache();
  /// Delete the on-disk module cache as well.
  void clear_disk_cache();

  RegistryStats stats() const;
  void reset_stats();

  /// Number of JIT compiles currently running (observability / tests).
  std::size_t inflight_count() const;

  // -- background tiering (PYGB_TIER=async) --
  //
  // With tiering on, a cold kAuto key does NOT block its first caller on
  // g++: the request is served from the interpreter immediately while a
  // dedicated background thread runs the build, which hot-swaps into the
  // memory cache through the same per-key in-flight record the blocking
  // path uses. First call: correct-but-slow; later calls: compiled.
  bool tier_async_enabled() const noexcept {
    return tier_async_.load(std::memory_order_relaxed);
  }
  void set_tier_async(bool on) noexcept {
    tier_async_.store(on, std::memory_order_relaxed);
  }
  /// Background builds queued or running right now. pygb_serve's admission
  /// controller holds AIMD window growth while this is nonzero (a box
  /// running g++ in the background has less headroom than its latency
  /// signal suggests).
  std::size_t tier_pending_count() const noexcept {
    return tier_pending_.load(std::memory_order_relaxed);
  }

  std::size_t static_kernel_count() const;
  bool compiler_available() const;

  /// The JIT circuit breaker (per-key failure gating; see breaker.hpp).
  /// Exposed for observability and tests; resolution consults it
  /// internally.
  CircuitBreaker& breaker() noexcept { return breaker_; }

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  struct InFlight;

  Registry();
  ~Registry();

  KernelFn resolve_static(const std::string& key) const;
  KernelFn resolve_jit(const OpRequest& req, const std::string& key,
                       const char** backend);
  /// Disk probe, codegen, g++, dlopen — runs with NO registry lock held.
  KernelFn build_module(const OpRequest& req, const std::string& key,
                        const std::string& cache_dir, const char** backend);
  /// Load an already-published module with stamp verification; a file
  /// that fails is quarantined (never retried) and nullptr returned.
  KernelFn try_load_published(const std::string& so_path,
                              const std::string& stamp);
  /// Auto-mode degradation bookkeeping: warn once per process.
  void warn_fallback_once(const char* what);

  // Background tiering internals.
  struct TierTask {
    OpRequest req;
    std::string key;
    std::string dir;
    std::shared_ptr<InFlight> flight;
  };
  /// Claim the key's in-flight record and queue a background build.
  /// Returns false when the key is already being built (fg or bg).
  bool tier_enqueue(const OpRequest& req, const std::string& key);
  void tier_thread_main();
  /// Leader bookkeeping for one background build (shared with the
  /// foreground owner path): fill the flight, publish to the memory
  /// cache, report to the breaker — but swallow errors (nobody is
  /// waiting; the interpreter already served them).
  void tier_build(TierTask& task);

  /// Guards memory_cache_, inflight_, and cache_dir_ — never held across
  /// a compile.
  mutable std::mutex mu_;
  /// Guards static_table_ (registration is normally pre-main/startup, but
  /// late register_static calls must not race resolve_static).
  mutable std::mutex static_mu_;
  std::atomic<Mode> mode_{Mode::kAuto};
  std::atomic<bool> fallback_warned_{false};
  std::string cache_dir_;
  std::unordered_map<std::string, KernelFn> static_table_;
  std::unordered_map<std::string, KernelFn> memory_cache_;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_;
  /// Per-key build-failure gating (supersedes the old failed_jit_keys_
  /// permanent negative cache): permanent failures open the circuit
  /// immediately, transient ones open it after a threshold and heal
  /// through a half-open probe. Reset with the caches.
  CircuitBreaker breaker_;

  // Background tiering: lazy-started worker thread + queue.
  std::atomic<bool> tier_async_{false};
  std::atomic<std::size_t> tier_pending_{0};
  mutable std::mutex tier_mu_;
  std::condition_variable tier_cv_;
  std::deque<TierTask> tier_queue_;
  bool tier_stop_ = false;
  bool tier_started_ = false;
  std::thread tier_thread_;
};

/// Defined in static_kernels.cpp: instantiate + register the curated set.
void register_static_kernels(Registry& registry);

/// Defined in interp_kernels.cpp: the generic interpreting kernel.
KernelFn interp_kernel();

/// The §V combinatorics: how many distinct (dtype, operator, transpose,
/// mask) combinations exist for the given operation — the number that makes
/// ahead-of-time instantiation infeasible and motivates the JIT.
std::uint64_t combination_space(const std::string& func);

/// Stable 64-bit FNV-1a hash of a dispatch key (module file names).
std::uint64_t key_hash(const std::string& key);

}  // namespace pygb::jit
