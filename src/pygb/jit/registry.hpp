// pygb/jit/registry.hpp — the module cache of Fig. 9's get_module():
// canonical key → kernel, checked in memory first, then on disk, with a
// g++ invocation on a miss. Three backends provide kernels:
//
//   * static — templates instantiated into this binary at build time (a
//     curated set; §V of the paper explains why covering every combination
//     ahead of time is infeasible — see static_combination_space()).
//   * jit    — source generated from the request, compiled to a shared
//     object, dlopen'd, and cached in memory and on disk.
//   * interp — a single generic kernel interpreting the request over
//     double-staged copies (the "union type" design the paper rejected;
//     kept as the always-available fallback and as an ablation subject).
//
// Mode selection: PYGB_JIT_MODE = auto | static | jit | interp
// (auto = static, then jit when a compiler is available, then interp).
//
// Concurrency: the registry mutex guards only the in-memory maps, never a
// compile. A cold key registers an in-flight record and compiles outside
// the lock; concurrent requests for the SAME key wait on that record,
// while requests for other keys (including memory-cache hits) proceed
// immediately. Statistics live in pygb::obs relaxed atomic counters — the
// RegistryStats struct is a snapshot view of those.
//
// The disk tier is hardened for shared, long-lived deployments (see
// pygb/jit/cache.hpp and docs/CACHE.md): modules are compiled to a
// process-private temp name and atomically rename(2)d into place, a
// per-stem flock coalesces concurrent compiles across PROCESSES, every
// module embeds a verification stamp checked at load time (corrupt or
// wrong-environment files are quarantined and recompiled), and auto mode
// degrades to the interpreter instead of throwing when compilation is
// broken at runtime.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "pygb/jit/module_key.hpp"

namespace pygb::jit {

enum class Mode : std::uint8_t { kAuto, kStatic, kJit, kInterp };

const char* to_string(Mode m);
Mode parse_mode(const std::string& name);

/// Raised when a backend cannot provide a kernel (e.g. static-only mode
/// with an unregistered combination — the paper's motivating failure).
class NoKernelError : public std::runtime_error {
 public:
  explicit NoKernelError(const std::string& msg) : std::runtime_error(msg) {}
};

/// Snapshot of the obs counters in the registry's historical shape.
struct RegistryStats {
  std::size_t lookups = 0;
  std::size_t static_hits = 0;
  std::size_t memory_hits = 0;      ///< previously dlopen'd JIT module
  std::size_t disk_hits = 0;        ///< .so found in the cache directory
  std::size_t compiles = 0;         ///< g++ invocations
  std::size_t interp_dispatches = 0;
  std::size_t jit_fallbacks = 0;    ///< auto-mode degradations to interp
  std::size_t cache_quarantines = 0;  ///< cached modules failing load/verify
  double compile_seconds = 0.0;     ///< total wall time inside g++
};

/// How a lookup was satisfied — filled for observability when the caller
/// passes a ResolveInfo to Registry::get().
struct ResolveInfo {
  const char* backend = "";  ///< static | jit-memory | jit-disk |
                             ///< jit-compile | jit-wait | interp
  std::string key;           ///< the canonical dispatch key
};

class Registry {
 public:
  /// Process-wide instance; mode and cache dir initialized from the
  /// PYGB_JIT_MODE / PYGB_CACHE_DIR environment variables.
  static Registry& instance();

  /// Resolve a kernel for the request, compiling if necessary. `info`
  /// (optional) receives the backend chosen and the dispatch key.
  KernelFn get(const OpRequest& req, ResolveInfo* info = nullptr);

  /// Register a build-time-instantiated kernel (static backend).
  void register_static(const std::string& key, KernelFn fn);

  Mode mode() const noexcept {
    return mode_.load(std::memory_order_relaxed);
  }
  void set_mode(Mode m) noexcept {
    mode_.store(m, std::memory_order_relaxed);
  }

  std::string cache_dir() const;
  void set_cache_dir(const std::string& dir);

  /// Drop in-memory JIT handles (disk cache untouched). For benchmarks
  /// that measure cold-vs-warm dispatch.
  void clear_memory_cache();
  /// Delete the on-disk module cache as well.
  void clear_disk_cache();

  RegistryStats stats() const;
  void reset_stats();

  /// Number of JIT compiles currently running (observability / tests).
  std::size_t inflight_count() const;

  std::size_t static_kernel_count() const;
  bool compiler_available() const;

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  struct InFlight;

  Registry();
  ~Registry();

  KernelFn resolve_static(const std::string& key) const;
  KernelFn resolve_jit(const OpRequest& req, const std::string& key,
                       const char** backend);
  /// Disk probe, codegen, g++, dlopen — runs with NO registry lock held.
  KernelFn build_module(const OpRequest& req, const std::string& key,
                        const std::string& cache_dir, const char** backend);
  /// Load an already-published module with stamp verification; a file
  /// that fails is quarantined (never retried) and nullptr returned.
  KernelFn try_load_published(const std::string& so_path,
                              const std::string& stamp);
  /// Auto-mode degradation bookkeeping: negative-cache the key, bump the
  /// fallback counter, warn once per process.
  void note_jit_failure(const std::string& key, const char* what);
  bool jit_failed_before(const std::string& key) const;

  /// Guards memory_cache_, inflight_, failed_jit_keys_, and cache_dir_ —
  /// never held across a compile.
  mutable std::mutex mu_;
  /// Guards static_table_ (registration is normally pre-main/startup, but
  /// late register_static calls must not race resolve_static).
  mutable std::mutex static_mu_;
  std::atomic<Mode> mode_{Mode::kAuto};
  std::atomic<bool> fallback_warned_{false};
  std::string cache_dir_;
  std::unordered_map<std::string, KernelFn> static_table_;
  std::unordered_map<std::string, KernelFn> memory_cache_;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_;
  /// Keys whose JIT build failed — auto mode goes straight to interp for
  /// these instead of paying a doomed compile per call. Cleared with the
  /// caches (a new compiler may succeed).
  std::unordered_set<std::string> failed_jit_keys_;
};

/// Defined in static_kernels.cpp: instantiate + register the curated set.
void register_static_kernels(Registry& registry);

/// Defined in interp_kernels.cpp: the generic interpreting kernel.
KernelFn interp_kernel();

/// The §V combinatorics: how many distinct (dtype, operator, transpose,
/// mask) combinations exist for the given operation — the number that makes
/// ahead-of-time instantiation infeasible and motivates the JIT.
std::uint64_t combination_space(const std::string& func);

/// Stable 64-bit FNV-1a hash of a dispatch key (module file names).
std::uint64_t key_hash(const std::string& key);

}  // namespace pygb::jit
