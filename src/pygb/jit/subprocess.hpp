// pygb/jit/subprocess.hpp — the sandboxed compiler runner behind Fig. 9's
// dynamic-compilation stage.
//
// The JIT used to launch g++ through std::system: a shell parses a
// string-concatenated command (quoting bugs become injection bugs), and
// the wait is UNBOUNDED — a hung or runaway compiler stalls the calling
// operation, and every coalesced waiter parked on its in-flight record,
// forever. That defeats the whole point of the kAuto degradation ladder:
// an interpreter fallback nobody can reach is no fallback.
//
// This runner makes every child invocation bounded and classified:
//
//   * fork/execvp with an argv VECTOR — no shell, no quoting, paths with
//     spaces/quotes/metacharacters are just bytes.
//   * a WALL-CLOCK DEADLINE (PYGB_JIT_TIMEOUT_MS, default 30s): on expiry
//     the child's process group gets SIGTERM, then SIGKILL after a short
//     grace — the tree dies, not just the direct child — and the child is
//     always reaped (no zombies).
//   * child RLIMITS: RLIMIT_CPU derived from the deadline (a detached
//     grandchild that escapes the group kill still dies on its own) and
//     RLIMIT_AS from PYGB_JIT_MEM_LIMIT_MB (a runaway template expansion
//     gets ENOMEM instead of triggering the OOM killer). Core dumps off.
//   * captured stderr (pipe, not a temp file) folded into the outcome for
//     diagnostics, with a size cap.
//   * errno-CLASSIFIED outcomes: transient failures (fork EAGAIN/ENOMEM,
//     tmpdir-full compiler exits, externally-signaled children) are
//     retried with bounded exponential backoff and marked `transient` so
//     the registry's circuit breaker can treat them differently from a
//     deterministic compile error. Deadline expiries are transient but
//     NOT retried — the deadline already consumed the caller's budget.
//
// pygb::faultinj site "compile" is enacted INSIDE the fork: hang parks
// the child before exec, fail exits it, slow delays the exec — so chaos
// tests drive the real kill/reap machinery, not a simulation of it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pygb::jit {

/// How a child invocation ended.
enum class RunStatus : std::uint8_t {
  kOk,           ///< exited 0
  kExitNonzero,  ///< exited with a nonzero code (e.g. compile error)
  kSignaled,     ///< killed by a signal we did not send (OOM killer, …)
  kTimeout,      ///< deadline expired; we killed the process group
  kSpawnFailed,  ///< fork/exec never produced a running child
};

const char* to_string(RunStatus s) noexcept;

struct RunOutcome {
  RunStatus status = RunStatus::kSpawnFailed;
  int exit_code = -1;     ///< kExitNonzero/kOk
  int term_signal = 0;    ///< kSignaled/kTimeout: what ended the child
  int spawn_errno = 0;    ///< kSpawnFailed: fork/exec errno
  bool transient = false; ///< worth retrying later (breaker classification)
  int attempts = 0;       ///< total child launches (retries included)
  double seconds = 0.0;   ///< wall time across all attempts
  std::string captured;   ///< child stderr (size-capped), all attempts
  std::string out;        ///< child stdout when capture_stdout was set

  bool ok() const noexcept { return status == RunStatus::kOk; }
  /// Human-readable one-liner ("exit status 42", "killed after 30000ms").
  std::string describe() const;
};

struct RunOptions {
  std::vector<std::string> argv;  ///< argv[0] resolved via PATH (execvp)
  int timeout_ms = 0;             ///< 0 = no deadline
  int kill_grace_ms = 1000;       ///< SIGTERM → SIGKILL escalation gap
  std::uint64_t mem_limit_mb = 0; ///< RLIMIT_AS for the child (0 = off)
  int max_attempts = 1;           ///< launches for transient failures
  int backoff_ms = 100;           ///< first retry delay; doubles per retry
  bool capture_stdout = false;    ///< collect stdout into RunOutcome::out
  /// faultinj site consulted once per launch and enacted in the child
  /// ("compile"); nullptr skips the hook entirely.
  const char* fault_site = nullptr;
  /// Deliver SIGKILL to the child when the spawning THREAD dies
  /// (PR_SET_PDEATHSIG). The persistent compile-service worker sets this on
  /// its g++ children: if the worker itself is SIGKILLed mid-compile, the
  /// orphaned compiler must not keep running and publish a half-supervised
  /// .tmp into the shared cache.
  bool kill_on_parent_death = false;
};

/// Run the child to completion (or deadline) and classify the outcome.
/// Never throws; never leaves a zombie; kills the child's whole process
/// group on timeout. Bumps obs counters jit_timeouts / jit_kills /
/// jit_retries as the corresponding events happen.
RunOutcome run_subprocess(const RunOptions& options);

/// PYGB_JIT_TIMEOUT_MS — wall-clock budget for one compiler invocation
/// (default 30000; 0 disables the deadline).
int jit_timeout_ms();

/// PYGB_JIT_MEM_LIMIT_MB — child address-space cap (default 0 = off).
std::uint64_t jit_mem_limit_mb();

/// PYGB_JIT_RETRIES — extra launches allowed for TRANSIENT failures
/// (default 2, so up to three attempts; 0 disables retry).
int jit_max_retries();

/// Split a command string on whitespace ("ccache g++" → {"ccache","g++"}).
/// PYGB_CXX historically accepted a shell-ish command prefix; argv-based
/// execution keeps that working without ever consulting a shell.
std::vector<std::string> split_command(const std::string& command);

// ---------------------------------------------------------------------------
// Long-lived supervised children (the persistent compile service)
// ---------------------------------------------------------------------------
//
// run_subprocess() owns a child's WHOLE lifetime; a supervisor that keeps a
// worker alive across many requests needs the same sandbox discipline split
// into spawn / kill halves. These helpers reuse the exact child setup above
// (own process group, core dumps off, CLOEXEC exec-errno status pipe,
// argv exec, SIGKILL-on-parent-death) without the deadline loop.

struct SpawnOutcome {
  pid_t pid = -1;       ///< running child, its own process group leader
  int spawn_errno = 0;  ///< fork or exec errno when pid < 0
  bool transient = false;  ///< spawn failure worth retrying (EAGAIN/ENOMEM…)
  bool ok() const noexcept { return pid > 0; }
};

/// Fork/exec a long-lived child with the sandbox discipline of
/// run_subprocess: its own process group (so the whole tree can be killed),
/// RLIMIT_CORE=0, PR_SET_PDEATHSIG(SIGKILL), and a CLOEXEC status pipe that
/// reports an exec errno back (so "worker binary missing" is diagnosed at
/// spawn time, not as an immediate protocol EOF). `stdio_fd`, when >= 0,
/// becomes the child's stdin AND stdout (the compile-service socketpair);
/// stderr passes through to the parent's.
SpawnOutcome spawn_supervised(const std::vector<std::string>& argv,
                              int stdio_fd);

/// End a supervised child: SIGTERM to its process group, `grace_ms` to
/// comply, then SIGKILL; always reaps (never leaves a zombie). Safe to call
/// on an already-dead pid (the reap is unconditional). Returns true when
/// the child had already exited before any signal was sent.
bool terminate_supervised(pid_t pid, int grace_ms);

}  // namespace pygb::jit
