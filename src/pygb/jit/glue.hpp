// pygb/jit/glue.hpp — the templated kernel bodies behind every compiled
// dispatch module. This header plays the role of PyGB's
// operation_binding.cpp (Fig. 9): generated JIT sources #include it and
// instantiate exactly one run_* template with concrete types; the static
// registry instantiates a curated set of the same templates at build time,
// guaranteeing identical semantics across backends.
//
// Kernels communicate exclusively through the standard-layout KernelArgs
// block; all compile-time variability (dtypes, operators, transposes, mask
// kind, accumulator) is in template parameters, and all run-time
// variability (replace flag, bound constants, index arrays, scalar seeds)
// is in the args.
#pragma once

#include <type_traits>

#include "algorithms/bfs.hpp"
#include "algorithms/connected_components.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/triangle_count.hpp"
#include "gbtl/gbtl.hpp"
#include "pygb/jit/module_key.hpp"

namespace pygb::jit {

// ---------------------------------------------------------------------------
// Identity providers for composed monoids/semirings.
// ---------------------------------------------------------------------------

struct IdZero {
  template <typename T>
  static constexpr T value() {
    return T{0};
  }
};
struct IdOne {
  template <typename T>
  static constexpr T value() {
    return T{1};
  }
};
struct IdTrue {
  template <typename T>
  static constexpr T value() {
    return static_cast<T>(true);
  }
};
struct IdFalse {
  template <typename T>
  static constexpr T value() {
    return static_cast<T>(false);
  }
};
struct IdMaxLimit {
  template <typename T>
  static constexpr T value() {
    return std::numeric_limits<T>::max();
  }
};
struct IdLowestLimit {
  template <typename T>
  static constexpr T value() {
    return std::numeric_limits<T>::lowest();
  }
};

/// Monoid composed from a gbtl binary-op template and an identity provider.
template <typename D3, template <class, class, class> class Op, typename IdT>
struct GenericMonoid {
  using ScalarType = D3;
  static constexpr D3 identity() { return IdT::template value<D3>(); }
  constexpr D3 operator()(const D3& a, const D3& b) const {
    return Op<D3, D3, D3>{}(a, b);
  }
};

/// Semiring composed from add/mult op templates and an identity provider.
template <typename D1, typename D2, typename D3,
          template <class, class, class> class AddOp, typename IdT,
          template <class, class, class> class MultOp>
struct GenericSemiring {
  using ScalarType = D3;
  static constexpr D3 zero() { return IdT::template value<D3>(); }
  constexpr D3 add(const D3& a, const D3& b) const {
    return AddOp<D3, D3, D3>{}(a, b);
  }
  constexpr D3 mult(const D1& a, const D2& b) const {
    return MultOp<D1, D2, D3>{}(a, b);
  }
};

// ---------------------------------------------------------------------------
// Args unpacking helpers.
// ---------------------------------------------------------------------------

template <typename T>
const gbtl::Matrix<T>& in_matrix(const void* p) {
  return *static_cast<const gbtl::Matrix<T>*>(p);
}
template <typename T>
gbtl::Matrix<T>& out_matrix(void* p) {
  return *static_cast<gbtl::Matrix<T>*>(p);
}
template <typename T>
const gbtl::Vector<T>& in_vector(const void* p) {
  return *static_cast<const gbtl::Vector<T>*>(p);
}
template <typename T>
gbtl::Vector<T>& out_vector(void* p) {
  return *static_cast<gbtl::Vector<T>*>(p);
}

/// Read the runtime scalar channel appropriate for T.
template <typename T>
T read_scalar(const KernelArgs* args) {
  if constexpr (std::is_floating_point_v<T>) {
    return static_cast<T>(args->scalar_f);
  } else {
    return static_cast<T>(args->scalar_i);
  }
}

/// Write a value into all channels of the scalar-out slot.
template <typename T>
void write_scalar_out(const KernelArgs* args, T v) {
  args->scalar_out->f = static_cast<double>(v);
  args->scalar_out->i = static_cast<std::int64_t>(v);
  args->scalar_out->u = static_cast<std::uint64_t>(v);
}

/// Read the scalar-out slot as a seed of type T.
template <typename T>
T read_scalar_seed(const KernelArgs* args) {
  if constexpr (std::is_floating_point_v<T>) {
    return static_cast<T>(args->scalar_out->f);
  } else if constexpr (std::is_signed_v<T> || std::is_same_v<T, bool>) {
    return static_cast<T>(args->scalar_out->i);
  } else {
    return static_cast<T>(args->scalar_out->u);
  }
}

inline gbtl::OutputControl outp_of(const KernelArgs* args) {
  return args->replace ? gbtl::OutputControl::kReplace
                       : gbtl::OutputControl::kMerge;
}

/// Invoke f with the typed mask object for the compile-time mask kind.
template <MaskKind MK, typename F>
decltype(auto) with_mask(const KernelArgs* args, F&& f) {
  if constexpr (MK == MaskKind::kNone) {
    return f(gbtl::NoMask{});
  } else if constexpr (MK == MaskKind::kMatrix) {
    return f(in_matrix<bool>(args->mask));
  } else if constexpr (MK == MaskKind::kMatrixComp) {
    return f(gbtl::complement(in_matrix<bool>(args->mask)));
  } else if constexpr (MK == MaskKind::kVector) {
    return f(in_vector<bool>(args->mask));
  } else {
    return f(gbtl::complement(in_vector<bool>(args->mask)));
  }
}

/// Invoke f with m or transpose(m) depending on the compile-time flag.
template <bool Trans, typename T, typename F>
decltype(auto) with_trans(const gbtl::Matrix<T>& m, F&& f) {
  if constexpr (Trans) {
    return f(gbtl::transpose(m));
  } else {
    return f(m);
  }
}

/// Resolve AllIndices (null pointer) vs explicit index arrays.
template <typename F>
decltype(auto) with_indices(const gbtl::IndexArray* idx, F&& f) {
  if (idx == nullptr) {
    return f(gbtl::AllIndices{});
  }
  return f(*idx);
}

// ---------------------------------------------------------------------------
// Accumulator adaptation: AccumT is gbtl::NoAccumulate or a binary functor
// type over CT (e.g. gbtl::Min<CT>), default-constructed at the call.
// ---------------------------------------------------------------------------

template <typename AccumT>
AccumT make_accum() {
  return AccumT{};
}

// ---------------------------------------------------------------------------
// Kernel bodies. Template parameter order is uniform:
//   CT (output), AT/BT (inputs), operator type(s), transposes, mask kind,
//   accumulator type.
// ---------------------------------------------------------------------------

template <typename CT, typename AT, typename BT, typename SemiringT,
          bool ATrans, bool BTrans, MaskKind MK, typename AccumT>
void run_mxm(const KernelArgs* args) {
  with_mask<MK>(args, [&](const auto& mask) {
    with_trans<ATrans>(in_matrix<AT>(args->a), [&](const auto& a) {
      with_trans<BTrans>(in_matrix<BT>(args->b), [&](const auto& b) {
        gbtl::mxm(out_matrix<CT>(args->c), mask, make_accum<AccumT>(),
                  SemiringT{}, a, b, outp_of(args));
      });
    });
  });
}

template <typename CT, typename AT, typename BT, typename SemiringT,
          bool ATrans, MaskKind MK, typename AccumT>
void run_mxv(const KernelArgs* args) {
  with_mask<MK>(args, [&](const auto& mask) {
    with_trans<ATrans>(in_matrix<AT>(args->a), [&](const auto& a) {
      gbtl::mxv(out_vector<CT>(args->c), mask, make_accum<AccumT>(),
                SemiringT{}, a, in_vector<BT>(args->b), outp_of(args));
    });
  });
}

template <typename CT, typename AT, typename BT, typename SemiringT,
          bool BTrans, MaskKind MK, typename AccumT>
void run_vxm(const KernelArgs* args) {
  with_mask<MK>(args, [&](const auto& mask) {
    with_trans<BTrans>(in_matrix<BT>(args->b), [&](const auto& b) {
      gbtl::vxm(out_vector<CT>(args->c), mask, make_accum<AccumT>(),
                SemiringT{}, in_vector<AT>(args->a), b, outp_of(args));
    });
  });
}

template <typename CT, typename AT, typename BT,
          template <class, class, class> class Op, bool IsAdd, bool ATrans,
          bool BTrans, MaskKind MK, typename AccumT>
void run_ewise_mm(const KernelArgs* args) {
  with_mask<MK>(args, [&](const auto& mask) {
    with_trans<ATrans>(in_matrix<AT>(args->a), [&](const auto& a) {
      with_trans<BTrans>(in_matrix<BT>(args->b), [&](const auto& b) {
        if constexpr (IsAdd) {
          gbtl::eWiseAdd(out_matrix<CT>(args->c), mask,
                         make_accum<AccumT>(), Op<AT, BT, CT>{}, a, b,
                         outp_of(args));
        } else {
          gbtl::eWiseMult(out_matrix<CT>(args->c), mask,
                          make_accum<AccumT>(), Op<AT, BT, CT>{}, a, b,
                          outp_of(args));
        }
      });
    });
  });
}

template <typename CT, typename AT, typename BT,
          template <class, class, class> class Op, bool IsAdd, MaskKind MK,
          typename AccumT>
void run_ewise_vv(const KernelArgs* args) {
  with_mask<MK>(args, [&](const auto& mask) {
    if constexpr (IsAdd) {
      gbtl::eWiseAdd(out_vector<CT>(args->c), mask, make_accum<AccumT>(),
                     Op<AT, BT, CT>{}, in_vector<AT>(args->a),
                     in_vector<BT>(args->b), outp_of(args));
    } else {
      gbtl::eWiseMult(out_vector<CT>(args->c), mask, make_accum<AccumT>(),
                      Op<AT, BT, CT>{}, in_vector<AT>(args->a),
                      in_vector<BT>(args->b), outp_of(args));
    }
  });
}

// Unary-op makers for apply: a plain unary functor, or a binary op with its
// second operand bound to the runtime constant.
template <template <class, class> class UOp>
struct PlainUnary {
  template <typename AT, typename CT>
  static auto make(const KernelArgs*) {
    return UOp<AT, CT>{};
  }
};

template <template <class, class, class> class BOp>
struct BoundSecond {
  template <typename AT, typename CT>
  static auto make(const KernelArgs* args) {
    const CT bound = read_scalar<CT>(args);
    return [bound](const AT& x) {
      return BOp<CT, CT, CT>{}(static_cast<CT>(x), bound);
    };
  }
};

template <typename CT, typename AT, typename OpMaker, bool ATrans,
          MaskKind MK, typename AccumT>
void run_apply_m(const KernelArgs* args) {
  auto f = OpMaker::template make<AT, CT>(args);
  with_mask<MK>(args, [&](const auto& mask) {
    with_trans<ATrans>(in_matrix<AT>(args->a), [&](const auto& a) {
      gbtl::apply(out_matrix<CT>(args->c), mask, make_accum<AccumT>(), f, a,
                  outp_of(args));
    });
  });
}

template <typename CT, typename AT, typename OpMaker, MaskKind MK,
          typename AccumT>
void run_apply_v(const KernelArgs* args) {
  auto f = OpMaker::template make<AT, CT>(args);
  with_mask<MK>(args, [&](const auto& mask) {
    gbtl::apply(out_vector<CT>(args->c), mask, make_accum<AccumT>(), f,
                in_vector<AT>(args->a), outp_of(args));
  });
}

template <typename CT, typename AT, typename MonoidT, bool ATrans,
          typename AccumT>
void run_reduce_m_s(const KernelArgs* args) {
  CT val = args->has_scalar_seed ? read_scalar_seed<CT>(args) : CT{};
  with_trans<ATrans>(in_matrix<AT>(args->a), [&](const auto& a) {
    gbtl::reduce(val, make_accum<AccumT>(), MonoidT{}, a);
  });
  write_scalar_out(args, val);
}

template <typename CT, typename AT, typename MonoidT, typename AccumT>
void run_reduce_v_s(const KernelArgs* args) {
  CT val = args->has_scalar_seed ? read_scalar_seed<CT>(args) : CT{};
  gbtl::reduce(val, make_accum<AccumT>(), MonoidT{}, in_vector<AT>(args->a));
  write_scalar_out(args, val);
}

template <typename CT, typename AT, typename MonoidT, bool ATrans,
          MaskKind MK, typename AccumT>
void run_reduce_m_v(const KernelArgs* args) {
  with_mask<MK>(args, [&](const auto& mask) {
    with_trans<ATrans>(in_matrix<AT>(args->a), [&](const auto& a) {
      gbtl::reduce(out_vector<CT>(args->c), mask, make_accum<AccumT>(),
                   MonoidT{}, a, outp_of(args));
    });
  });
}

template <typename CT, typename AT, MaskKind MK, typename AccumT>
void run_assign_mm(const KernelArgs* args) {
  with_mask<MK>(args, [&](const auto& mask) {
    with_indices(args->row_indices, [&](const auto& rows) {
      with_indices(args->col_indices, [&](const auto& cols) {
        gbtl::assign(out_matrix<CT>(args->c), mask, make_accum<AccumT>(),
                     in_matrix<AT>(args->a), rows, cols, outp_of(args));
      });
    });
  });
}

template <typename CT, MaskKind MK, typename AccumT>
void run_assign_ms(const KernelArgs* args) {
  const CT val = read_scalar<CT>(args);
  with_mask<MK>(args, [&](const auto& mask) {
    with_indices(args->row_indices, [&](const auto& rows) {
      with_indices(args->col_indices, [&](const auto& cols) {
        gbtl::assign(out_matrix<CT>(args->c), mask, make_accum<AccumT>(),
                     val, rows, cols, outp_of(args));
      });
    });
  });
}

template <typename CT, typename AT, MaskKind MK, typename AccumT>
void run_assign_vv(const KernelArgs* args) {
  with_mask<MK>(args, [&](const auto& mask) {
    with_indices(args->row_indices, [&](const auto& idx) {
      gbtl::assign(out_vector<CT>(args->c), mask, make_accum<AccumT>(),
                   in_vector<AT>(args->a), idx, outp_of(args));
    });
  });
}

template <typename CT, MaskKind MK, typename AccumT>
void run_assign_vs(const KernelArgs* args) {
  const CT val = read_scalar<CT>(args);
  with_mask<MK>(args, [&](const auto& mask) {
    with_indices(args->row_indices, [&](const auto& idx) {
      gbtl::assign(out_vector<CT>(args->c), mask, make_accum<AccumT>(), val,
                   idx, outp_of(args));
    });
  });
}

template <typename CT, typename AT, MaskKind MK, typename AccumT>
void run_extract_mm(const KernelArgs* args) {
  with_mask<MK>(args, [&](const auto& mask) {
    with_indices(args->row_indices, [&](const auto& rows) {
      with_indices(args->col_indices, [&](const auto& cols) {
        gbtl::extract(out_matrix<CT>(args->c), mask, make_accum<AccumT>(),
                      in_matrix<AT>(args->a), rows, cols, outp_of(args));
      });
    });
  });
}

template <typename CT, typename AT, MaskKind MK, typename AccumT>
void run_extract_vv(const KernelArgs* args) {
  with_mask<MK>(args, [&](const auto& mask) {
    with_indices(args->row_indices, [&](const auto& idx) {
      gbtl::extract(out_vector<CT>(args->c), mask, make_accum<AccumT>(),
                    in_vector<AT>(args->a), idx, outp_of(args));
    });
  });
}

template <typename CT, typename AT, bool ATrans, MaskKind MK,
          typename AccumT>
void run_transpose_m(const KernelArgs* args) {
  with_mask<MK>(args, [&](const auto& mask) {
    with_trans<ATrans>(in_matrix<AT>(args->a), [&](const auto& a) {
      gbtl::transpose(out_matrix<CT>(args->c), mask, make_accum<AccumT>(), a,
                      outp_of(args));
    });
  });
}

// ---------------------------------------------------------------------------
// Whole-algorithm entry points: the Fig. 10 "Python calls a complete C++
// algorithm" series — one dispatch for the entire outer loop.
// ---------------------------------------------------------------------------

/// c = levels Vector<CT>, a = graph Matrix<AT>, b = frontier Vector<bool>.
/// scalar_out.i receives the number of plies.
template <typename CT, typename AT>
void run_algo_bfs(const KernelArgs* args) {
  const auto depth = pygb::algo::bfs(in_matrix<AT>(args->a),
                                     in_vector<bool>(args->b),
                                     out_vector<CT>(args->c));
  write_scalar_out(args, static_cast<std::int64_t>(depth));
}

/// c = path Vector<CT> (pre-seeded), a = graph Matrix<AT>.
template <typename CT, typename AT>
void run_algo_sssp(const KernelArgs* args) {
  pygb::algo::sssp(in_matrix<AT>(args->a), out_vector<CT>(args->c));
}

/// c = rank Vector<CT>, a = graph Matrix<AT>; extra0 = damping,
/// extra1 = threshold, extra2 = max iterations. scalar_out.i = iterations.
template <typename CT, typename AT>
void run_algo_pagerank(const KernelArgs* args) {
  const unsigned iters = pygb::algo::page_rank(
      in_matrix<AT>(args->a), out_vector<CT>(args->c),
      static_cast<CT>(args->extra0), static_cast<CT>(args->extra1),
      static_cast<unsigned>(args->extra2));
  write_scalar_out(args, static_cast<std::int64_t>(iters));
}

/// a = L Matrix<AT>; scalar_out receives the triangle count as CT.
template <typename CT, typename AT>
void run_algo_tc(const KernelArgs* args) {
  const CT count = pygb::algo::triangle_count<CT>(in_matrix<AT>(args->a));
  write_scalar_out(args, count);
}

/// c = labels Vector<CT>, a = graph Matrix<AT>; scalar_out.i = rounds.
template <typename CT, typename AT>
void run_algo_cc(const KernelArgs* args) {
  const auto rounds = pygb::algo::connected_components(
      in_matrix<AT>(args->a), out_vector<CT>(args->c));
  write_scalar_out(args, static_cast<std::int64_t>(rounds));
}

// ---------------------------------------------------------------------------
// Kernel entry guard. Generated sources call this as the first statement
// of pygb_kernel: it drops a flight-recorder note (via the injected
// PoolApi, so the event lands in the HOST's rings) and honours the
// "kernel_crash" fault-injection site by dereferencing null FROM MODULE
// CODE — the faulting PC then lies inside the dlopen'd mapping, which is
// exactly what the crash-attribution test needs to exercise the loader's
// module map end to end. Disarmed, it costs two relaxed atomic loads.
// ---------------------------------------------------------------------------
inline void kernel_entry_guard(const char* func,
                               std::uint64_t key_hash) noexcept {
  gbtl::detail::pool_flight_note(func, 0, key_hash);
  if (gbtl::detail::pool_fault_check("kernel_crash") != 0) {
    volatile int* crash_here = nullptr;
    *crash_here = 0x7c;  // deliberate SIGSEGV inside the JIT module
  }
}

}  // namespace pygb::jit

// ---------------------------------------------------------------------------
// Pool injection export (JIT modules only).
//
// A generated module is compiled without GBTL_POOL_LINKED, so its copy of
// gbtl/detail/pool.hpp routes parallel_for through an atomic PoolApi slot
// that starts null (inline sequential fallback). The loader dlsym's this
// export (gbtl::detail::kPoolInjectSymbol) right after dlopen and hands the
// module the host's function table, so JIT kernels run on the same
// persistent worker pool as every in-process kernel. The ABI version gate
// keeps a newer host from poisoning an older cached module (and vice
// versa) — on mismatch the module simply stays sequential.
// ---------------------------------------------------------------------------
#if !defined(GBTL_POOL_LINKED)
extern "C" void pygb_module_set_pool(const gbtl::detail::PoolApi* api) {
  // The table is append-only, so any version at least as new as the one
  // this module was compiled against is safe to accept.
  if (api != nullptr &&
      api->abi_version >= gbtl::detail::kPoolAbiVersion) {
    gbtl::detail::pool_api_slot().store(api, std::memory_order_release);
  }
}
#endif
