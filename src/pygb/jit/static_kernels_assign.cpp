// Build-time registrations: assign, extract, transpose.
#include "pygb/jit/static_kernels.hpp"

namespace pygb::jit::static_reg {

namespace {

template <typename CT, typename AT, typename Acc, MaskKind MK>
void reg_assign_extract_matrix(Registry& r) {
  {
    OpRequest req;
    req.func = func::kAssignMM;
    req.c = dtype_of<CT>();
    req.a = dtype_of<AT>();
    req.mask = MK;
    req.accum = Acc::descriptor();
    r.register_static(req.key(),
                      &run_assign_mm<CT, AT, MK,
                                     typename Acc::template type<CT>>);
  }
  {
    OpRequest req;
    req.func = func::kExtractMM;
    req.c = dtype_of<CT>();
    req.a = dtype_of<AT>();
    req.mask = MK;
    req.accum = Acc::descriptor();
    r.register_static(req.key(),
                      &run_extract_mm<CT, AT, MK,
                                      typename Acc::template type<CT>>);
  }
}

template <typename CT, typename Acc, MaskKind MK>
void reg_assign_ms(Registry& r) {
  OpRequest req;
  req.func = func::kAssignMS;
  req.c = dtype_of<CT>();
  req.mask = MK;
  req.accum = Acc::descriptor();
  r.register_static(req.key(),
                    &run_assign_ms<CT, MK, typename Acc::template type<CT>>);
}

template <typename CT, typename AT, typename Acc, MaskKind MK>
void reg_assign_extract_vector(Registry& r) {
  {
    OpRequest req;
    req.func = func::kAssignVV;
    req.c = dtype_of<CT>();
    req.a = dtype_of<AT>();
    req.mask = MK;
    req.accum = Acc::descriptor();
    r.register_static(req.key(),
                      &run_assign_vv<CT, AT, MK,
                                     typename Acc::template type<CT>>);
  }
  {
    OpRequest req;
    req.func = func::kExtractVV;
    req.c = dtype_of<CT>();
    req.a = dtype_of<AT>();
    req.mask = MK;
    req.accum = Acc::descriptor();
    r.register_static(req.key(),
                      &run_extract_vv<CT, AT, MK,
                                      typename Acc::template type<CT>>);
  }
}

template <typename CT, typename Acc, MaskKind MK>
void reg_assign_vs(Registry& r) {
  OpRequest req;
  req.func = func::kAssignVS;
  req.c = dtype_of<CT>();
  req.mask = MK;
  req.accum = Acc::descriptor();
  r.register_static(req.key(),
                    &run_assign_vs<CT, MK, typename Acc::template type<CT>>);
}

template <typename CT, typename AT, typename Acc, MaskKind MK>
void reg_transpose(Registry& r) {
  OpRequest req;
  req.func = func::kTransposeM;
  req.c = dtype_of<CT>();
  req.a = dtype_of<AT>();
  req.mask = MK;
  req.accum = Acc::descriptor();
  r.register_static(req.key(),
                    &run_transpose_m<CT, AT, false, MK,
                                     typename Acc::template type<CT>>);
}

template <typename T, typename Acc>
void reg_all_masks(Registry& r) {
  reg_assign_extract_matrix<T, T, Acc, MaskKind::kNone>(r);
  reg_assign_extract_matrix<T, T, Acc, MaskKind::kMatrix>(r);
  reg_assign_extract_matrix<T, T, Acc, MaskKind::kMatrixComp>(r);
  reg_assign_ms<T, Acc, MaskKind::kNone>(r);
  reg_assign_ms<T, Acc, MaskKind::kMatrix>(r);
  reg_assign_ms<T, Acc, MaskKind::kMatrixComp>(r);
  reg_assign_extract_vector<T, T, Acc, MaskKind::kNone>(r);
  reg_assign_extract_vector<T, T, Acc, MaskKind::kVector>(r);
  reg_assign_extract_vector<T, T, Acc, MaskKind::kVectorComp>(r);
  reg_assign_vs<T, Acc, MaskKind::kNone>(r);
  reg_assign_vs<T, Acc, MaskKind::kVector>(r);
  reg_assign_vs<T, Acc, MaskKind::kVectorComp>(r);
  reg_transpose<T, T, Acc, MaskKind::kNone>(r);
  reg_transpose<T, T, Acc, MaskKind::kMatrix>(r);
  reg_transpose<T, T, Acc, MaskKind::kMatrixComp>(r);
}

}  // namespace

void register_assign_extract(Registry& r) {
  for_types(DtCore{}, [&](auto tag) {
    using T = typename decltype(tag)::type;
    reg_all_masks<T, AccNone>(r);
    reg_all_masks<T, AccPlus>(r);
    reg_all_masks<T, AccMin>(r);
    reg_all_masks<T, AccSecond>(r);
  });
  for_types(TypeList<std::int32_t, std::uint64_t, float>{}, [&](auto tag) {
    using T = typename decltype(tag)::type;
    reg_all_masks<T, AccNone>(r);
  });
}

}  // namespace pygb::jit::static_reg
