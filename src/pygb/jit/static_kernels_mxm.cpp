// Build-time registrations: mxm.
#include "pygb/jit/static_kernels.hpp"

namespace pygb::jit::static_reg {

namespace {

template <typename CT, typename AT, typename BT, typename Sr, typename Acc,
          bool ATr, bool BTr, MaskKind MK>
void reg_mxm_one(Registry& r) {
  OpRequest req;
  req.func = func::kMxM;
  req.c = dtype_of<CT>();
  req.a = dtype_of<AT>();
  req.b = dtype_of<BT>();
  req.a_transposed = ATr;
  req.b_transposed = BTr;
  req.mask = MK;
  req.semiring = Sr::descriptor();
  req.accum = Acc::descriptor();
  r.register_static(
      req.key(),
      &run_mxm<CT, AT, BT, typename Sr::template type<AT, BT, CT>, ATr, BTr,
               MK, typename Acc::template type<CT>>);
}

template <typename T, typename Sr, typename Acc, bool ATr, bool BTr>
void reg_mxm_masks(Registry& r) {
  reg_mxm_one<T, T, T, Sr, Acc, ATr, BTr, MaskKind::kNone>(r);
  reg_mxm_one<T, T, T, Sr, Acc, ATr, BTr, MaskKind::kMatrix>(r);
  reg_mxm_one<T, T, T, Sr, Acc, ATr, BTr, MaskKind::kMatrixComp>(r);
}

template <typename T, typename Sr, typename Acc>
void reg_mxm_trans(Registry& r) {
  reg_mxm_masks<T, Sr, Acc, false, false>(r);
  reg_mxm_masks<T, Sr, Acc, false, true>(r);
  reg_mxm_masks<T, Sr, Acc, true, false>(r);
}

}  // namespace

void register_mxm(Registry& r) {
  for_types(DtCore{}, [&](auto tag) {
    using T = typename decltype(tag)::type;
    reg_mxm_trans<T, SrArithmetic, AccNone>(r);
    reg_mxm_trans<T, SrLogical, AccNone>(r);
    reg_mxm_trans<T, SrMinPlus, AccNone>(r);
    // Accumulating mxm (merge into prior product) on the arithmetic ring.
    reg_mxm_masks<T, SrArithmetic, AccPlus, false, false>(r);
  });
  // int32 homogeneous without transpose variants (tests/examples).
  reg_mxm_masks<std::int32_t, SrArithmetic, AccNone, false, false>(r);
  reg_mxm_masks<std::int32_t, SrArithmetic, AccNone, false, true>(r);
  reg_mxm_masks<float, SrArithmetic, AccNone, false, false>(r);
}

}  // namespace pygb::jit::static_reg
