// pygb/jit/loader.hpp — the dlopen/dlsym stage of Fig. 9's module import,
// plus the MODULE MAP: a fixed-size, async-signal-safe registry of every
// JIT module's address range and provenance (dispatch key, DSL func,
// generated-source line), maintained at load time so the crash handler
// (pygb/obs/crash.hpp) can attribute a faulting PC inside a dlopen'd
// mapping back to the DSL expression that generated it.
#pragma once

#include <cstdint>
#include <string>

#include "pygb/jit/module_key.hpp"

namespace pygb::jit {

/// The symbol every generated module exports.
inline constexpr const char* kKernelSymbol = "pygb_kernel";

/// Provenance symbols compiled into every v5+ module (pygb/jit/codegen.cpp).
inline constexpr const char* kModuleKeySymbol = "pygb_module_key";
inline constexpr const char* kModuleFuncSymbol = "pygb_module_func";
inline constexpr const char* kModuleKernelLineSymbol =
    "pygb_module_kernel_line";

/// dlopen the shared object and resolve the kernel entry point. Returns
/// nullptr and fills *error on failure. Handles are kept open for the
/// process lifetime (modules are cached, never unloaded — matching
/// Python's importlib behaviour).
///
/// When `expected_stamp` is non-empty the module must export a
/// `pygb_module_stamp` string equal to it (see pygb/jit/cache.hpp). A
/// missing or mismatched stamp — a module built by a different compiler,
/// different flags, an older cache schema, or a 64-bit key-hash collision
/// — fails the load instead of silently running the wrong kernel.
///
/// A successfully loaded module carrying provenance symbols is entered
/// into modmap below (pre-v5 modules simply aren't attributable).
KernelFn load_kernel(const std::string& so_path, std::string* error,
                     const std::string& expected_stamp = {});

namespace modmap {

inline constexpr std::size_t kMaxModules = 256;
inline constexpr std::size_t kFuncBytes = 48;
inline constexpr std::size_t kKeyBytes = 512;
inline constexpr std::size_t kPathBytes = 512;

/// One loaded JIT module. POD with fixed buffers: the crash handler reads
/// entries from a signal context, so nothing here may allocate or point at
/// freeable memory. Strings longer than their buffer are truncated.
struct Entry {
  std::uintptr_t base = 0;      ///< dlopen load base
  std::uintptr_t end = 0;       ///< base + mapped extent
  std::uint64_t key_hash = 0;   ///< FNV-1a of key (matches flightrec tags)
  unsigned kernel_line = 0;     ///< physical kernel line in the .cpp
  char func[kFuncBytes] = {};   ///< DSL func name
  char key[kKeyBytes] = {};     ///< full dispatch key
  char so_path[kPathBytes] = {};  ///< the mapped .so (srcmap sits beside it)
};

/// Number of registered modules (monotonic; modules are never unloaded).
std::size_t count() noexcept;

/// Entry i (i < count()), or nullptr. ASYNC-SIGNAL-SAFE.
const Entry* at(std::size_t i) noexcept;

/// The module whose [base, end) contains pc, or nullptr for host code.
/// ASYNC-SIGNAL-SAFE: atomic loads and a bounded linear scan only.
const Entry* find(std::uintptr_t pc) noexcept;

}  // namespace modmap

}  // namespace pygb::jit
