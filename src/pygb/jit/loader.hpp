// pygb/jit/loader.hpp — the dlopen/dlsym stage of Fig. 9's module import.
#pragma once

#include <string>

#include "pygb/jit/module_key.hpp"

namespace pygb::jit {

/// The symbol every generated module exports.
inline constexpr const char* kKernelSymbol = "pygb_kernel";

/// dlopen the shared object and resolve the kernel entry point. Returns
/// nullptr and fills *error on failure. Handles are kept open for the
/// process lifetime (modules are cached, never unloaded — matching
/// Python's importlib behaviour).
///
/// When `expected_stamp` is non-empty the module must export a
/// `pygb_module_stamp` string equal to it (see pygb/jit/cache.hpp). A
/// missing or mismatched stamp — a module built by a different compiler,
/// different flags, an older cache schema, or a 64-bit key-hash collision
/// — fails the load instead of silently running the wrong kernel.
KernelFn load_kernel(const std::string& so_path, std::string* error,
                     const std::string& expected_stamp = {});

}  // namespace pygb::jit
