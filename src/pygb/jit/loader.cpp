#include "pygb/jit/loader.hpp"

#include <dlfcn.h>
#include <link.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <iterator>
#include <mutex>

#include "gbtl/detail/pool.hpp"
#include "pygb/faultinj.hpp"
#include "pygb/jit/cache.hpp"
#include "pygb/obs/flightrec.hpp"
#include "pygb/obs/obs.hpp"

namespace pygb::jit {

namespace modmap {

namespace {

Entry g_entries[kMaxModules];
std::atomic<std::size_t> g_count{0};
std::mutex g_register_mu;  ///< serializes writers; readers are lock-free

void copy_trunc(char* dst, std::size_t cap, const char* src) {
  std::strncpy(dst, src != nullptr ? src : "", cap - 1);
  dst[cap - 1] = '\0';
}

/// Mapped extent of the shared object loaded at `base`: the max
/// p_vaddr + p_memsz over its PT_LOAD segments (dlpi_addr == load base
/// for ET_DYN objects).
struct ExtentQuery {
  std::uintptr_t base;
  std::uintptr_t extent;
};

int extent_cb(struct dl_phdr_info* info, std::size_t, void* data) {
  auto* q = static_cast<ExtentQuery*>(data);
  if (static_cast<std::uintptr_t>(info->dlpi_addr) != q->base) return 0;
  for (int i = 0; i < info->dlpi_phnum; ++i) {
    const auto& ph = info->dlpi_phdr[i];
    if (ph.p_type != PT_LOAD) continue;
    const std::uintptr_t top = ph.p_vaddr + ph.p_memsz;
    if (top > q->extent) q->extent = top;
  }
  return 1;
}

}  // namespace

std::size_t count() noexcept {
  return g_count.load(std::memory_order_acquire);
}

const Entry* at(std::size_t i) noexcept {
  if (i >= count()) return nullptr;
  return &g_entries[i];
}

const Entry* find(std::uintptr_t pc) noexcept {
  const std::size_t n = count();
  for (std::size_t i = 0; i < n; ++i) {
    const Entry& e = g_entries[i];
    if (pc >= e.base && pc < e.end) return &e;
  }
  return nullptr;
}

}  // namespace modmap

namespace {

/// Enter a freshly dlopen'd module into the map. Best effort: a module
/// without provenance symbols (pre-v5 cache) simply isn't attributable.
void register_module(void* handle, void* kernel_sym,
                     const std::string& so_path) {
  const char* key =
      static_cast<const char*>(dlsym(handle, kModuleKeySymbol));
  const char* func =
      static_cast<const char*>(dlsym(handle, kModuleFuncSymbol));
  if (key == nullptr || func == nullptr) return;
  const unsigned* line =
      static_cast<const unsigned*>(dlsym(handle, kModuleKernelLineSymbol));

  Dl_info dli;
  if (dladdr(kernel_sym, &dli) == 0 || dli.dli_fbase == nullptr) return;
  modmap::ExtentQuery q{reinterpret_cast<std::uintptr_t>(dli.dli_fbase), 0};
  dl_iterate_phdr(modmap::extent_cb, &q);
  if (q.extent == 0) return;

  const std::uint64_t khash = flightrec::fnv1a(key);
  {
    std::lock_guard lock(modmap::g_register_mu);
    const std::size_t idx =
        modmap::g_count.load(std::memory_order_relaxed);
    if (idx >= modmap::kMaxModules) return;
    modmap::Entry& e = modmap::g_entries[idx];
    e.base = q.base;
    e.end = q.base + q.extent;
    e.key_hash = khash;
    e.kernel_line = line != nullptr ? *line : 0;
    modmap::copy_trunc(e.func, modmap::kFuncBytes, func);
    modmap::copy_trunc(e.key, modmap::kKeyBytes, key);
    modmap::copy_trunc(e.so_path, modmap::kPathBytes, so_path.c_str());
    // Publish AFTER the entry is complete: a signal-context reader that
    // sees the new count sees a fully written entry.
    modmap::g_count.store(idx + 1, std::memory_order_release);
  }
  flightrec::record(flightrec::EventKind::kModuleLoad, func, q.extent,
                    khash);
}

/// True when the file's bytes contain the NUL-terminated stamp payload.
/// Verification runs BEFORE dlopen on purpose: an unverified module must
/// never execute its initializers, and glibc resolves dlopen by path name
/// against already-loaded objects, so a bad file has to be rejected
/// without ever being mapped under its path. The trailing NUL makes a
/// shorter key's stamp unable to match inside a longer key's module.
bool file_carries_stamp(const std::string& path, const std::string& stamp) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::string needle = std::string(kStampMarker) + stamp;
  needle.push_back('\0');
  return bytes.find(needle) != std::string::npos;
}

}  // namespace

KernelFn load_kernel(const std::string& so_path, std::string* error,
                     const std::string& expected_stamp) {
  obs::Span span("jit.load");
  span.attr("module", so_path);
  if (faultinj::check(faultinj::site::kCacheVerify)) {
    obs::counter_add(obs::Counter::kFaultsInjected);
    if (error != nullptr) *error = "fault injected at cache_verify";
    return nullptr;
  }
  if (!expected_stamp.empty() &&
      !file_carries_stamp(so_path, expected_stamp)) {
    if (error != nullptr) {
      *error = "module lacks the expected verification stamp (built by a "
               "different compiler/flags/schema, a colliding key, or "
               "corrupt); want '" +
               expected_stamp + "'";
    }
    return nullptr;
  }
  if (faultinj::check(faultinj::site::kDlopen)) {
    obs::counter_add(obs::Counter::kFaultsInjected);
    if (error != nullptr) *error = "fault injected at dlopen";
    return nullptr;
  }
  void* handle = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    if (error != nullptr) {
      const char* msg = dlerror();
      *error = msg != nullptr ? msg : "dlopen failed";
    }
    return nullptr;
  }
  void* sym = dlsym(handle, kKernelSymbol);
  if (sym == nullptr) {
    if (error != nullptr) {
      const char* msg = dlerror();
      *error = msg != nullptr ? msg : "dlsym failed";
    }
    dlclose(handle);
    return nullptr;
  }
  // Hand the module the host's worker pool so its kernels parallelize on
  // the same persistent threads as in-process code. Missing export (a
  // module cached by an older schema) is fine — the module then runs its
  // parallel regions inline, which is always correct.
  if (void* inject = dlsym(handle, gbtl::detail::kPoolInjectSymbol)) {
    using InjectFn = void (*)(const gbtl::detail::PoolApi*);
    reinterpret_cast<InjectFn>(inject)(gbtl::detail::host_pool_api());
  }
  register_module(handle, sym, so_path);
  return reinterpret_cast<KernelFn>(sym);
}

}  // namespace pygb::jit
